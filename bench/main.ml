(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 8) on the synthetic SPEC2000 workloads,
   and measures real wall-clock instrumentation overhead with Bechamel.

   Usage:
     main.exe                      all tables and figures, then timing
     main.exe table1|table2|fig9|fig10|fig11|fig12|fig13|sec8.1
     main.exe timing               Bechamel wall-clock overheads
     main.exe --scale N ...        larger inputs (default 1)
     main.exe --bench a,b,c ...    restrict to some benchmarks
     main.exe --json FILE ...      machine-readable results (default
                                   BENCH_results.json; --no-json to skip)
     main.exe -j N | --shards N    evaluate benchmarks across N worker
                                   processes (machine-readable only: no
                                   tables, no wall-clock timing; the JSON
                                   is byte-identical at every -j)
     main.exe --seed N             PRNG seed recorded in the JSON and fed
                                   to shard workers (default 0)
     main.exe --smoke              machine-readable only, without forking
     main.exe --throughput         measure raw engine throughput (Minstr/s,
                                   VM and reference) per benchmark and
                                   record it in the JSON; ignored under -j
     main.exe --min-vm-ratio R     exit 1 if any benchmark's VM/reference
                                   throughput ratio is below R (requires
                                   --throughput)
     main.exe --min-layout-wins N  exit 1 unless at least N benchmarks'
                                   closed superblock+layout loop strictly
                                   drops taken transfers, and PPP's
                                   aggregate layout improvement is at
                                   least edge profiling's (reads the
                                   assembled JSON, so it works under -j)
     main.exe --sampling-sweep     evaluate PPP under bursty sampled
                                   collection at rates 1, 1/4, 1/16,
                                   1/64, 1/256 and record the
                                   accuracy-vs-overhead curve per
                                   benchmark in the JSON (deterministic,
                                   so it works under -j; the "sampling"
                                   action prints the table)
     main.exe --sweep-floor OV,OH  exit 1 unless some sampled rate
                                   (denom > 1) averages, across the
                                   swept benchmarks, overlap vs the
                                   unsampled estimate >= OV%% at
                                   overhead <= OH%% (reads the assembled
                                   JSON; fails if --sampling-sweep did
                                   not run)
     main.exe --tiered             run each benchmark once with the tier
                                   controller armed and record swap
                                   counts, instrumentation-cost savings
                                   and layout-proxy scores in the JSON
                                   (deterministic, so it works under
                                   -j); outside -j/--smoke it also
                                   measures the tiered single run vs the
                                   two-pass flow with the wall clock
                                   (the "tiered" action prints the
                                   table)
     main.exe --min-tiered-wins N  exit 1 unless the tiered run beats
                                   the two-pass flow on at least N
                                   benchmarks — by wall clock when the
                                   document carries tiered timing, by
                                   retired instrumentation cost
                                   otherwise (reads the assembled JSON;
                                   fails if --tiered did not run)
     main.exe --drift-sweep        run the re-optimization loop twice
                                   per benchmark — pristine profile
                                   hand-offs vs a sampled store merged
                                   with exponential decay — and record
                                   per-generation decision stability in
                                   the JSON (deterministic, so it works
                                   under -j; the "drift" action prints
                                   the table)
     main.exe --drift-floor S      exit 1 unless the drift loop's
                                   minimum decision stability, averaged
                                   across the swept benchmarks, is at
                                   least S%% (reads the assembled JSON;
                                   fails if --drift-sweep did not run)
     main.exe --baseline F --gate P
                                   compare against a previous BENCH_*.json
                                   and exit 1 if any cost-model overhead
                                   (or wall-clock ratio, when both sides
                                   have timing; or throughput ratio floor,
                                   when both sides have throughput)
                                   regressed by more than P%
     main.exe --no-cache           disable the per-benchmark analysis
                                   session (every analysis recomputed);
                                   results are byte-identical, only the
                                   preparation work and wall time differ
     main.exe --prepare-ms         print preparation wall-time per
                                   benchmark and record it per phase in
                                   the JSON (nondeterministic, so never
                                   recorded under -j) *)

module H = Ppp_harness.Pipeline
module R = Ppp_harness.Report
module Config = Ppp_core.Config
module Interp = Ppp_interp.Interp
module Instrument = Ppp_core.Instrument

let fmt = Format.std_formatter

(* {2 Wall-clock timing with Bechamel} *)

let time_quota = 0.5 (* seconds per test *)

let run_silently ?instrumentation p =
  (* For timing we disable profiling bookkeeping that the paper's
     methodology does not charge (edge collection, ground-truth traces). *)
  let config =
    {
      Interp.default_config with
      collect_edges = false;
      trace_paths = false;
      instrumentation;
    }
  in
  ignore (Interp.run ~config p)

let bechamel_tests (benches : R.prepared_bench list) =
  let open Bechamel in
  List.concat_map
    (fun (pb : R.prepared_bench) ->
      let name = pb.R.spec.Ppp_workloads.Spec.bench_name in
      let p = pb.R.prep.H.optimized in
      let ep = Option.get pb.R.prep.H.base_outcome.Interp.edge_profile in
      let instr config = (Instrument.instrument p ep config).Instrument.rt in
      let pp_rt = instr Config.pp in
      let tpp_rt = instr Config.tpp in
      let ppp_rt = instr Config.ppp in
      [
        Test.make ~name:(name ^ "/base") (Staged.stage (fun () -> run_silently p));
        Test.make ~name:(name ^ "/pp")
          (Staged.stage (fun () -> run_silently ~instrumentation:pp_rt p));
        Test.make ~name:(name ^ "/tpp")
          (Staged.stage (fun () -> run_silently ~instrumentation:tpp_rt p));
        Test.make ~name:(name ^ "/ppp")
          (Staged.stage (fun () -> run_silently ~instrumentation:ppp_rt p));
      ])
    benches

let run_bechamel tests =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second time_quota) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates = Hashtbl.create 32 in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Hashtbl.replace estimates name est
      | _ -> ())
    results;
  estimates

(* Runs the Bechamel suite, prints the overhead table, and returns the
   raw per-test nanosecond estimates for the JSON output. *)
let timing benches =
  Format.fprintf fmt
    "@[<v>Wall-clock interpreter timing (Bechamel, monotonic clock)@,";
  Format.fprintf fmt
    "Overhead = instrumented time / base time - 1; compare with Figure 12's cost-model overheads.@,@,";
  let estimates =
    run_bechamel
      (Bechamel.Test.make_grouped ~name:"overhead" ~fmt:"%s/%s"
         (bechamel_tests benches))
  in
  let get name = Hashtbl.find_opt estimates ("overhead/" ^ name) in
  Format.fprintf fmt "%-9s | %12s | %7s %7s %7s@," "bench" "base ns" "PP" "TPP"
    "PPP";
  List.iter
    (fun (pb : R.prepared_bench) ->
      let name = pb.R.spec.Ppp_workloads.Spec.bench_name in
      match
        ( get (name ^ "/base"),
          get (name ^ "/pp"),
          get (name ^ "/tpp"),
          get (name ^ "/ppp") )
      with
      | Some base, Some pp, Some tpp, Some ppp when base > 0.0 ->
          let ov x = 100.0 *. ((x /. base) -. 1.0) in
          Format.fprintf fmt "%-9s | %12.0f | %6.1f%% %6.1f%% %6.1f%%@," name base
            (ov pp) (ov tpp) (ov ppp)
      | _ -> Format.fprintf fmt "%-9s | (no estimate)@," name)
    benches;
  Format.fprintf fmt "@]@.";
  get

(* {2 Engine throughput: Minstr/s per engine}

   Raw interpreted instructions per second, per engine, on the optimized
   program with profiling bookkeeping off — the number the pre-lowered
   VM exists to improve. Each engine gets a warm-up run (which also
   yields the exact dyn_instrs of the workload), then repeated timed
   runs until [min_time] seconds total; the best run is reported so a
   single scheduler hiccup cannot poison the figure. *)

let throughput_one ~min_time (pb : R.prepared_bench) =
  let p = pb.R.prep.H.optimized in
  let config =
    { Interp.default_config with collect_edges = false; trace_paths = false }
  in
  let measure engine =
    let warm = Interp.run ~engine ~config p in
    let instrs = float_of_int warm.Interp.dyn_instrs in
    let best = ref 0.0 in
    let spent = ref 0.0 in
    while !spent < min_time do
      let t0 = Unix.gettimeofday () in
      ignore (Interp.run ~engine ~config p);
      let dt = Unix.gettimeofday () -. t0 in
      spent := !spent +. dt;
      if dt > 0.0 then best := Float.max !best (instrs /. dt)
    done;
    !best /. 1e6
  in
  let vm = measure Interp.Vm in
  let reference = measure Interp.Reference in
  (vm, reference, if reference > 0.0 then vm /. reference else 0.0)

let throughput ~min_time benches =
  Format.eprintf "engine throughput (best of >= %.2fs per engine):@." min_time;
  List.map
    (fun (pb : R.prepared_bench) ->
      let name = pb.R.spec.Ppp_workloads.Spec.bench_name in
      let vm, reference, ratio = throughput_one ~min_time pb in
      Format.eprintf
        "  %-9s | vm %8.2f Minstr/s | reference %8.2f Minstr/s | x%.2f@." name
        vm reference ratio;
      (name, (vm, reference, ratio)))
    benches

(* {2 Tiered single run vs the two-pass flow (wall clock)}

   The end-to-end claim of tiered execution: one run that starts
   instrumented and swaps hot routines mid-run should beat the two-pass
   flow (a full instrumented run, then a separate optimized run) on the
   wall clock, because the second pass's work happens inside the first.
   Best-of repeated runs until [min_time] per side, like [throughput]. *)

let tiered_timing_one ~min_time (pb : R.prepared_bench) =
  let prep = pb.R.prep in
  let p = prep.H.optimized in
  let inst = (R.tiered_of pb).R.tt_instrumented in
  let quiet cfg =
    { cfg with Interp.collect_edges = false; trace_paths = false }
  in
  let cfg_instr =
    quiet
      {
        Interp.default_config with
        instrumentation = Some inst.Instrument.rt;
      }
  in
  let cfg_plain = quiet Interp.default_config in
  let cfg_tiered =
    quiet
      {
        Interp.default_config with
        instrumentation = Some inst.Instrument.rt;
        tier =
          Some
            (Ppp_interp.Tier.spec ~threshold:R.tier_threshold
               ~plan:(H.tier_planner prep inst) ());
      }
  in
  let measure f =
    ignore (f ());
    (* warm-up *)
    let best = ref infinity in
    let spent = ref 0.0 in
    while !spent < min_time do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      spent := !spent +. dt;
      if dt > 0.0 then best := Float.min !best dt
    done;
    !best
  in
  let tiered = measure (fun () -> Interp.run ~config:cfg_tiered p) in
  let two_pass =
    measure (fun () ->
        ignore (Interp.run ~config:cfg_instr p);
        Interp.run ~config:cfg_plain p)
  in
  (tiered *. 1e9, two_pass *. 1e9,
   if two_pass > 0.0 then tiered /. two_pass else 0.0)

let tiered_timing ~min_time benches =
  Format.eprintf
    "tiered vs two-pass wall clock (best of >= %.2fs per side):@." min_time;
  List.map
    (fun (pb : R.prepared_bench) ->
      let name = pb.R.spec.Ppp_workloads.Spec.bench_name in
      let tiered, two_pass, ratio = tiered_timing_one ~min_time pb in
      Format.eprintf
        "  %-9s | tiered %10.0f ns | two-pass %10.0f ns | x%.2f%s@." name
        tiered two_pass ratio
        (if tiered < two_pass then "  (win)" else "");
      (name, (tiered, two_pass, ratio)))
    benches

(* {2 Machine-readable results: BENCH_*.json} *)

module J = Ppp_obs.Jsonx

let tiered_timing_json results name =
  match List.assoc_opt name results with
  | None -> None
  | Some (tiered, two_pass, ratio) ->
      Some
        (J.Obj
           [
             ("tiered_ns", J.Float tiered);
             ("two_pass_ns", J.Float two_pass);
             ("ratio", J.Float ratio);
           ])

let throughput_json results name =
  match List.assoc_opt name results with
  | None -> None
  | Some (vm, reference, ratio) ->
      Some
        (J.Obj
           [
             ("vm_minstr_s", J.Float vm);
             ("reference_minstr_s", J.Float reference);
             ("ratio", J.Float ratio);
           ])

(* Exit 1 when the VM fails to clear the requested speedup floor — the
   absolute companion to the Gate's relative throughput check. *)
let check_min_ratio ~floor results =
  let bad = List.filter (fun (_, (_, _, ratio)) -> ratio < floor) results in
  if bad <> [] then begin
    List.iter
      (fun (name, (_, _, ratio)) ->
        Format.eprintf
          "throughput: %s VM/reference ratio %.2f is below the floor %.2f@."
          name ratio floor)
      bad;
    exit 1
  end

(* Exit 1 unless path-guided layout pays off broadly enough: the layout
   PPP's estimated profile dictates must strictly drop taken transfers
   on at least [min_wins] benchmarks, and PPP's aggregate layout
   improvement must be at least edge profiling's. Reads the assembled
   document, so the check is byte-identical under -j. *)
let member_path j path =
  List.fold_left (fun j k -> Option.bind j (fun j -> J.member j k)) (Some j)
    path

let num j path =
  match member_path j path with
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

let check_layout_wins ~min_wins doc =
  let benches =
    J.to_list (Option.value ~default:(J.Arr []) (J.member doc "benchmarks"))
  in
  let wins =
    List.length
      (List.filter
         (fun b ->
           match
             (num b [ "layout"; "methods"; "ppp"; "taken" ],
              num b [ "layout"; "base"; "taken" ])
           with
           | Some ppp, Some base -> ppp < base
           | _ -> false)
         benches)
  in
  let loop_wins =
    List.length
      (List.filter
         (fun b ->
           member_path b [ "layout"; "closed_loop"; "taken_drop" ]
           = Some (J.Bool true))
         benches)
  in
  let agg m =
    List.fold_left
      (fun acc b ->
        match num b [ "layout"; "methods"; m; "improvement" ] with
        | Some f -> acc +. f
        | None -> acc)
      0.0 benches
  in
  let ppp = agg "ppp" in
  let edge = agg "edge" in
  Format.eprintf
    "layout: PPP's layout drops taken transfers on %d/%d benchmarks (closed \
     loop: %d); aggregate improvement edge %.3f ppp %.3f@."
    wins (List.length benches) loop_wins edge ppp;
  let failed = ref false in
  if wins < min_wins then begin
    Format.eprintf
      "layout: only %d benchmark(s) drop taken transfers under PPP's layout, \
       below the floor %d@."
      wins min_wins;
    failed := true
  end;
  if ppp < edge then begin
    Format.eprintf
      "layout: PPP's aggregate improvement %.3f is below edge profiling's \
       %.3f@."
      ppp edge;
    failed := true
  end;
  if !failed then exit 1

(* Exit 1 unless the sampled collector's accuracy-vs-overhead curve has a
   usable operating point: some sampled rate (denom > 1) whose average
   overlap vs the unsampled estimate — across every benchmark that
   carries a sweep — clears [min_overlap] percent while its average
   overhead stays at or below [max_overhead_pct] percent. Reads the
   assembled document, so the check is byte-identical under -j. *)
let check_sampling_floor ~min_overlap ~max_overhead_pct doc =
  let benches =
    J.to_list (Option.value ~default:(J.Arr []) (J.member doc "benchmarks"))
  in
  (* denom -> (sum overlap, sum overhead, count) over swept benchmarks *)
  let by_denom : (int, float * float * int) Hashtbl.t = Hashtbl.create 7 in
  List.iter
    (fun b ->
      match member_path b [ "sampling"; "rates" ] with
      | Some (J.Arr rates) ->
          List.iter
            (fun r ->
              match
                ( num r [ "denom" ],
                  num r [ "overlap_vs_full" ],
                  num r [ "overhead" ] )
              with
              | Some d, Some ov, Some oh when d > 1.5 ->
                  let d = int_of_float d in
                  let sov, soh, n =
                    Option.value ~default:(0.0, 0.0, 0)
                      (Hashtbl.find_opt by_denom d)
                  in
                  Hashtbl.replace by_denom d (sov +. ov, soh +. oh, n + 1)
              | _ -> ())
            rates
      | _ -> ())
    benches;
  let averages =
    Hashtbl.fold
      (fun d (sov, soh, n) acc ->
        let n' = float_of_int n in
        (d, sov /. n', 100. *. soh /. n') :: acc)
      by_denom []
    |> List.sort compare
  in
  if averages = [] then begin
    Format.eprintf
      "sampling: --sweep-floor given but no benchmark carries a sampling \
       sweep (run with --sampling-sweep)@.";
    exit 1
  end;
  let qualifying =
    List.filter
      (fun (_, ov, oh) -> ov >= min_overlap && oh <= max_overhead_pct)
      averages
  in
  List.iter
    (fun (d, ov, oh) ->
      Format.eprintf
        "sampling: rate 1/%-3d avg overlap %5.1f%%  avg overhead %5.2f%%%s@." d
        ov oh
        (if ov >= min_overlap && oh <= max_overhead_pct then "  (qualifies)"
         else ""))
    averages;
  match qualifying with
  | (d, ov, oh) :: _ ->
      Format.eprintf
        "sampling: floor met at 1/%d (overlap %.1f%% >= %g%%, overhead %.2f%% \
         <= %g%%)@."
        d ov min_overlap oh max_overhead_pct
  | [] ->
      Format.eprintf
        "sampling: no sampled rate averages overlap >= %g%% at overhead <= \
         %g%%@."
        min_overlap max_overhead_pct;
      exit 1

(* Exit 1 unless tiering actually pays: the tiered single run must beat
   the two-pass flow on at least [min_wins] benchmarks — by wall clock
   when the document carries the tiered timing comparison, by retired
   instrumentation cost otherwise (the deterministic proxy, which is
   what a sharded run has). Reads the assembled document. *)
let check_tiered_wins ~min_wins doc =
  let benches =
    J.to_list (Option.value ~default:(J.Arr []) (J.member doc "benchmarks"))
  in
  let results =
    List.filter_map
      (fun b ->
        match J.member b "tiered" with
        | None -> None
        | Some t ->
            let name =
              match J.member b "name" with Some (J.Str n) -> n | _ -> "?"
            in
            let wall =
              match
                ( num t [ "timing"; "tiered_ns" ],
                  num t [ "timing"; "two_pass_ns" ] )
              with
              | Some a, Some b -> Some (a < b)
              | _ -> None
            in
            let cost =
              match
                ( num t [ "tiered_instr_cost" ],
                  num t [ "untiered_instr_cost" ] )
              with
              | Some a, Some b -> a < b
              | _ -> false
            in
            Some (name, wall, cost))
      benches
  in
  if results = [] then begin
    Format.eprintf
      "tiered: --min-tiered-wins given but no benchmark carries a tiered \
       object (run with --tiered)@.";
    exit 1
  end;
  let by_wall = List.exists (fun (_, w, _) -> w <> None) results in
  let won (_, wall, cost) =
    match wall with Some w -> w | None -> cost
  in
  let wins = List.filter won results in
  Format.eprintf
    "tiered: single run beats two-pass on %d/%d benchmarks (by %s)@."
    (List.length wins) (List.length results)
    (if by_wall then "wall clock" else "retired instrumentation cost");
  if List.length wins < min_wins then begin
    List.iter
      (fun ((name, _, _) as r) ->
        if not (won r) then Format.eprintf "tiered: %s did not win@." name)
      results;
    Format.eprintf "tiered: %d win(s) is below the floor %d@."
      (List.length wins) min_wins;
    exit 1
  end

(* Exit 1 unless the drift loop keeps its placements stable enough: the
   sampled+decayed loop's generation-2 decision stability, averaged
   across the swept benchmarks, must be at least [min_stability]
   percent. Reads the assembled document. *)
let check_drift_floor ~min_stability doc =
  let benches =
    J.to_list (Option.value ~default:(J.Arr []) (J.member doc "benchmarks"))
  in
  let pts =
    List.filter_map
      (fun b ->
        match
          ( num b [ "drift"; "drift_stability" ],
            num b [ "drift"; "full_stability" ] )
        with
        | Some d, Some f -> Some (d, f)
        | _ -> None)
      benches
  in
  if pts = [] then begin
    Format.eprintf
      "drift: --drift-floor given but no benchmark carries a drift object \
       (run with --drift-sweep)@.";
    exit 1
  end;
  let n = float_of_int (List.length pts) in
  let avg f = List.fold_left (fun a p -> a +. f p) 0.0 pts /. n in
  let davg = 100. *. avg fst in
  let favg = 100. *. avg snd in
  Format.eprintf
    "drift: avg gen-2 stability %.1f%% (full-instrumentation loop %.1f%%) \
     over %d benchmarks@."
    davg favg (List.length pts);
  if davg < min_stability then begin
    Format.eprintf "drift: %.1f%% is below the floor %g%%@." davg min_stability;
    exit 1
  end

let timing_json get name =
  match
    ( get (name ^ "/base"),
      get (name ^ "/pp"),
      get (name ^ "/tpp"),
      get (name ^ "/ppp") )
  with
  | Some base, Some pp, Some tpp, Some ppp ->
      Some
        (J.Obj
           [
             ("base_ns", J.Float base);
             ("pp_ns", J.Float pp);
             ("tpp_ns", J.Float tpp);
             ("ppp_ns", J.Float ppp);
           ])
  | _ -> None

(* The whole document is canonicalized (objects key-sorted) before
   writing, so BENCH_*.json is byte-stable for a given tree: same rows
   at every -j, no field-order drift. *)
let write_doc ~path doc =
  Ppp_obs.Sink.write_json ~path (J.canonical doc);
  Format.eprintf "wrote %s@." path

(* {2 Sharded evaluation}

   Each worker prepares and evaluates one benchmark and sends its JSON
   row back as a string; evaluation is deterministic (the cost model,
   not the wall clock), so rows are identical whichever worker computes
   them and the assembled document is byte-identical at every -j. *)

module Shard = Ppp_harness.Shard
module Gate = Ppp_harness.Gate

let row_of_name ~scale ~sampling ~tiered ~drift name =
  match R.prepare_all ~scale ~names:[ name ] () with
  | [ pb ] -> J.to_string (R.bench_json_one ~sampling ~tiered ~drift pb)
  | _ -> assert false

let sharded_rows ~jobs ~seed ~scale ~sampling ~tiered ~drift names =
  let results =
    Shard.map ~jobs ~seed
      ~f:(fun ~seed:_ name -> row_of_name ~scale ~sampling ~tiered ~drift name)
      names
  in
  let lost = ref [] in
  let rows =
    List.filter_map
      (function
        | Ok row -> Some (J.of_string row)
        | Error d ->
            lost := d :: !lost;
            None)
      results
  in
  (rows, List.rev !lost)

let read_json path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  J.of_string text

(* Exit 1 on regression, so CI can gate on it. A metric the baseline has
   but the current run lacks is reported as a warning — or, under
   --strict, counted as a failure like any regression. *)
let run_gate ~baseline_path ~strict ~pct current =
  let baseline = read_json baseline_path in
  let r = Gate.run ~strict ~baseline ~current ~pct () in
  List.iter
    (fun w -> Format.eprintf "gate: warning: %a@." Gate.pp_warning w)
    r.Gate.warnings;
  match r.Gate.failures with
  | [] ->
      Format.eprintf "gate: no regressions beyond %g%% against %s@." pct
        baseline_path
  | fails ->
      Format.eprintf "gate: %d regression(s) beyond %g%% against %s@."
        (List.length fails) pct baseline_path;
      Format.eprintf "%a" Gate.pp_failures fails;
      exit 1

(* The session's warm-vs-cold work saving shows up here as wall time:
   compare a run with and without --no-cache. *)
let print_prepare_ms benches =
  Format.eprintf "prepare wall-time per benchmark:@.";
  let total =
    List.fold_left
      (fun acc (pb : R.prepared_bench) ->
        let ms = H.prepare_ms pb.R.prep in
        Format.eprintf "  %-9s | %8.1f ms@."
          pb.R.spec.Ppp_workloads.Spec.bench_name ms;
        acc +. ms)
      0.0 benches
  in
  Format.eprintf "  %-9s | %8.1f ms@." "total" total

(* {2 Argument handling} *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 1 in
  let names = ref None in
  let actions = ref [] in
  let json_path = ref (Some "BENCH_results.json") in
  let jobs = ref 1 in
  let seed = ref 0 in
  let smoke = ref false in
  let baseline = ref None in
  let gate_pct = ref 10.0 in
  let strict = ref false in
  let throughput_mode = ref false in
  let min_vm_ratio = ref None in
  let min_layout_wins = ref None in
  let no_cache = ref false in
  let prepare_ms = ref false in
  let sampling_sweep = ref false in
  let sweep_floor = ref None in
  let tiered = ref false in
  let min_tiered_wins = ref None in
  let drift_sweep = ref false in
  let drift_floor = ref None in
  let rec parse = function
    | [] -> ()
    | "--scale" :: n :: rest ->
        scale := int_of_string n;
        parse rest
    | "--bench" :: bs :: rest ->
        names := Some (String.split_on_char ',' bs);
        parse rest
    | "--json" :: f :: rest ->
        json_path := Some f;
        parse rest
    | "--no-json" :: rest ->
        json_path := None;
        parse rest
    | ("-j" | "--shards") :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | "--seed" :: n :: rest ->
        seed := int_of_string n;
        parse rest
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--baseline" :: f :: rest ->
        baseline := Some f;
        parse rest
    | "--gate" :: p :: rest ->
        gate_pct := float_of_string p;
        parse rest
    | "--strict" :: rest ->
        strict := true;
        parse rest
    | "--throughput" :: rest ->
        throughput_mode := true;
        parse rest
    | "--min-vm-ratio" :: r :: rest ->
        min_vm_ratio := Some (float_of_string r);
        parse rest
    | "--min-layout-wins" :: n :: rest ->
        min_layout_wins := Some (int_of_string n);
        parse rest
    | "--no-cache" :: rest ->
        no_cache := true;
        parse rest
    | "--prepare-ms" :: rest ->
        prepare_ms := true;
        parse rest
    | "--sampling-sweep" :: rest ->
        sampling_sweep := true;
        parse rest
    | "--sweep-floor" :: spec :: rest ->
        (match String.split_on_char ',' spec with
        | [ ov; oh ] ->
            sweep_floor := Some (float_of_string ov, float_of_string oh)
        | _ ->
            Format.eprintf
              "--sweep-floor expects OVERLAP,OVERHEAD (e.g. 90,1.5)@.";
            exit 2);
        parse rest
    | "--tiered" :: rest ->
        tiered := true;
        parse rest
    | "--min-tiered-wins" :: n :: rest ->
        min_tiered_wins := Some (int_of_string n);
        parse rest
    | "--drift-sweep" :: rest ->
        drift_sweep := true;
        parse rest
    | "--drift-floor" :: s :: rest ->
        drift_floor := Some (float_of_string s);
        parse rest
    | a :: rest ->
        actions := a :: !actions;
        parse rest
  in
  parse args;
  let actions = List.rev !actions in
  if !jobs > 1 || !smoke then begin
    (* Machine-readable only: tables and Bechamel timing are excluded so
       the output carries no wall-clock noise and no fork-order
       dependence. *)
    if actions <> [] then
      Format.eprintf "note: actions %s are ignored under -j/--smoke@."
        (String.concat ", " actions);
    let selected =
      match !names with
      | Some ns -> ns
      | None -> Ppp_workloads.Spec.names ()
    in
    if !throughput_mode && !jobs > 1 then
      Format.eprintf
        "note: --throughput is ignored under -j (wall-clock numbers from \
         concurrent workers would be noise)@.";
    if !tiered && !jobs > 1 then
      Format.eprintf
        "note: --tiered records only deterministic fields under -j (the \
         wall-clock comparison would be noise from concurrent workers)@.";
    let tp_results = ref [] in
    let rows, lost =
      if !jobs > 1 then begin
        if !prepare_ms then
          Format.eprintf
            "note: --prepare-ms is ignored under -j (wall-clock would break \
             the byte-identity of the sharded document)@.";
        sharded_rows ~jobs:!jobs ~seed:!seed ~scale:!scale
          ~sampling:!sampling_sweep ~tiered:!tiered ~drift:!drift_sweep
          selected
      end
      else begin
        let benches =
          R.prepare_all ~scale:!scale ~names:selected ~cache:(not !no_cache) ()
        in
        if !prepare_ms then print_prepare_ms benches;
        let throughput =
          if !throughput_mode then begin
            tp_results := throughput ~min_time:0.08 benches;
            throughput_json !tp_results
          end
          else fun _ -> None
        in
        ( List.map
            (fun pb ->
              R.bench_json_one ~throughput ~prepare:!prepare_ms
                ~sampling:!sampling_sweep ~tiered:!tiered
                ~drift:!drift_sweep pb)
            benches,
          [] )
      end
    in
    List.iter
      (fun d -> Format.eprintf "%a@." Ppp_resilience.Diagnostic.pp d)
      lost;
    let doc = J.canonical (R.bench_json_wrap ~scale:!scale ~seed:!seed rows) in
    (match !json_path with
    | None -> ()
    | Some path -> write_doc ~path doc);
    (match !baseline with
    | None -> ()
    | Some b -> run_gate ~baseline_path:b ~strict:!strict ~pct:!gate_pct doc);
    (match !min_vm_ratio with
    | Some floor when !tp_results <> [] ->
        check_min_ratio ~floor !tp_results
    | _ -> ());
    (match !min_layout_wins with
    | Some n -> check_layout_wins ~min_wins:n doc
    | None -> ());
    (match !sweep_floor with
    | Some (ov, oh) ->
        check_sampling_floor ~min_overlap:ov ~max_overhead_pct:oh doc
    | None -> ());
    (match !min_tiered_wins with
    | Some n -> check_tiered_wins ~min_wins:n doc
    | None -> ());
    (match !drift_floor with
    | Some s -> check_drift_floor ~min_stability:s doc
    | None -> ());
    if lost <> [] then exit 2
  end
  else begin
    let benches =
      R.prepare_all ~scale:!scale ?names:!names ~cache:(not !no_cache) ()
    in
    if !prepare_ms then print_prepare_ms benches;
    let timing_get = ref None in
    let run_timing () = timing_get := Some (timing benches) in
    let all_reports () =
      R.table1 fmt benches;
      R.table2 fmt benches;
      R.fig9_10_11 fmt benches;
      R.fig12 fmt benches;
      R.fig13 fmt benches;
      R.section8_1 fmt benches
    in
    (match actions with
    | [] ->
        all_reports ();
        run_timing ()
    | acts ->
        List.iter
          (function
            | "table1" -> R.table1 fmt benches
            | "table2" -> R.table2 fmt benches
            | "fig9" | "fig10" | "fig11" -> R.fig9_10_11 fmt benches
            | "fig12" -> R.fig12 fmt benches
            | "fig13" -> R.fig13 fmt benches
            | "sec8.1" -> R.section8_1 fmt benches
            | "sampling" -> R.sampling_report fmt benches
            | "tiered" -> R.tiered_report fmt benches
            | "drift" -> R.drift_report fmt benches
            | "tables" -> all_reports ()
            | "timing" -> run_timing ()
            | other -> Format.fprintf fmt "unknown action %s@." other)
          acts);
    let timing =
      match !timing_get with
      | None -> fun _ -> None
      | Some get -> timing_json get
    in
    let tp_results =
      if !throughput_mode then throughput ~min_time:0.25 benches else []
    in
    let throughput =
      if tp_results = [] then fun _ -> None else throughput_json tp_results
    in
    let tiered_timing_results =
      if !tiered then tiered_timing ~min_time:0.25 benches else []
    in
    let tiered_timing =
      if tiered_timing_results = [] then fun _ -> None
      else tiered_timing_json tiered_timing_results
    in
    let doc =
      J.canonical
        (R.bench_json_wrap ~scale:!scale ~seed:!seed
           (List.map
              (R.bench_json_one ~timing ~throughput ~prepare:!prepare_ms
                 ~sampling:!sampling_sweep ~tiered:!tiered ~tiered_timing
                 ~drift:!drift_sweep)
              benches))
    in
    (match !json_path with
    | None -> ()
    | Some path -> write_doc ~path doc);
    (match !baseline with
    | None -> ()
    | Some b -> run_gate ~baseline_path:b ~strict:!strict ~pct:!gate_pct doc);
    (match !min_vm_ratio with
    | Some floor when tp_results <> [] -> check_min_ratio ~floor tp_results
    | _ -> ());
    (match !min_layout_wins with
    | Some n -> check_layout_wins ~min_wins:n doc
    | None -> ());
    (match !sweep_floor with
    | Some (ov, oh) ->
        check_sampling_floor ~min_overlap:ov ~max_overhead_pct:oh doc
    | None -> ());
    (match !min_tiered_wins with
    | Some n -> check_tiered_wins ~min_wins:n doc
    | None -> ());
    match !drift_floor with
    | Some s -> check_drift_floor ~min_stability:s doc
    | None -> ()
  end
