(* pppc: the command-line driver.

   Programs are given either as a [.pir] file (see Ppp_ir.Parse for the
   grammar) or as [bench:NAME] to use one of the built-in SPEC-shaped
   workloads, e.g. [bench:bzip2]. *)

module Ir = Ppp_ir.Ir
module Interp = Ppp_interp.Interp
module Config = Ppp_core.Config
module H = Ppp_harness.Pipeline
module Metrics = Ppp_obs.Metrics
module Diagnostic = Ppp_resilience.Diagnostic
module Faults = Ppp_resilience.Faults
module Profile_io = Ppp_profile.Profile_io
module Shard = Ppp_harness.Shard
module Jsonx = Ppp_obs.Jsonx
module Trace = Ppp_obs.Trace
module Sink = Ppp_obs.Sink
module Session = Ppp_session.Session
module Telemetry = Ppp_interp.Telemetry
module Quality = Ppp_quality.Quality
module Quality_report = Ppp_harness.Quality_report
module Gate = Ppp_harness.Gate
module Report = Ppp_harness.Report
module Stale_match = Ppp_resilience.Stale_match
module Sampling = Ppp_interp.Sampling
module Daemon_client = Ppp_daemon.Client
module Daemon_ops = Ppp_daemon.Ops
module Daemon_chaos = Ppp_daemon.Chaos

open Cmdliner

exception Cli_error of string

let cli_error fmt = Format.kasprintf (fun s -> raise (Cli_error s)) fmt

let load_program spec ~scale =
  Trace.with_span ~args:[ ("program", spec) ] "parse" @@ fun () ->
  match String.index_opt spec ':' with
  | Some i when String.sub spec 0 i = "bench" ->
      let name = String.sub spec (i + 1) (String.length spec - i - 1) in
      (match Ppp_workloads.Spec.find_opt name with
      | Some b -> b.Ppp_workloads.Spec.build ~scale
      | None ->
          cli_error "unknown benchmark %S (run `pppc benches` to list them)"
            name)
  | _ -> (
      (* Well-formedness checking of a user-supplied program raises
         Invalid_argument from inside the parser; that is bad input, not
         a bug, so report it like a parse error. *)
      try Ppp_ir.Parse.program_of_file spec
      with Invalid_argument msg -> cli_error "ill-formed program: %s" msg)

let program_arg =
  let doc = "Input program: a .pir file, or bench:NAME for a built-in workload." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let scale_arg =
  let doc = "Iteration scale for built-in workloads." in
  Arg.(value & opt int 1 & info [ "scale" ] ~doc)

let no_cache_arg =
  let doc =
    "Disable the analysis session: every CFG view, dominator tree, loop \
     nest, flow context and placement decision is recomputed from \
     scratch instead of being served from the content-addressed store. \
     Results are byte-identical with and without the cache; only the \
     amount of work differs."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let session_of ~no_cache name = Session.create ~enabled:(not no_cache) ~name ()

(* Every file this driver writes goes through the atomic temp + fsync +
   rename path: a crash mid-write must never leave a torn dump or report
   that a later run has to salvage. *)
let write_file path text = Sink.write_atomic ~path text

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let engine_arg =
  let doc =
    "Execution engine: $(b,vm) (the pre-lowered flat VM, default) or \
     $(b,reference) (the tree-walking reference interpreter). Both \
     produce identical outcomes, profiles and costs; only wall-clock \
     speed differs."
  in
  Arg.(
    value
    & opt (enum [ ("vm", Interp.Vm); ("reference", Interp.Reference) ]) Interp.Vm
    & info [ "engine" ] ~doc)

(* Only errors with a user-actionable message are caught here; anything
   else is a bug and propagates with a backtrace (catching [Not_found]
   or [Invalid_argument] globally would mask failures anywhere in the
   pipeline). *)
let handle_errors f =
  try f () with
  | Interp.Runtime_error msg ->
      Format.eprintf "runtime error: %s@." msg;
      exit 2
  | Ppp_ir.Parse.Error e ->
      (* Surface parse problems like any other located diagnostic. *)
      let d =
        Diagnostic.make ~line:e.Ppp_ir.Parse.line ?token:e.Ppp_ir.Parse.token
          Diagnostic.Corrupt e.Ppp_ir.Parse.message
      in
      Format.eprintf "%a@." Diagnostic.pp d;
      exit 1
  | Jsonx.Parse_error msg ->
      Format.eprintf "error: malformed JSON: %s@." msg;
      exit 1
  | Unix.Unix_error (e, fn, arg) ->
      (* Surface OS failures as classified diagnostics, not raw
         exception text. *)
      let d =
        Diagnostic.errorf Diagnostic.Io "%s%s: %s" fn
          (if arg = "" then "" else Printf.sprintf " %S" arg)
          (Unix.error_message e)
      in
      Format.eprintf "%a@." Diagnostic.pp d;
      exit 2
  | Cli_error msg
  | Sys_error msg
  (* an unwritable --metrics-out/--trace-out surfaces from with_obs's
     cleanup wrapped by Fun.protect *)
  | Fun.Finally_raised (Sys_error msg) ->
      Format.eprintf "error: %s@." msg;
      exit 1

(* {2 Observability options, shared by run / profile / stats} *)

let obs_args =
  let metrics_out =
    let doc =
      "Enable metrics collection and write a snapshot of every counter, \
       gauge and histogram to $(docv) after the run (JSON; a .csv \
       extension selects CSV)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let trace_out =
    let doc =
      "Record per-phase spans and write a Chrome trace-event file to \
       $(docv); open it in chrome://tracing or https://ui.perfetto.dev."
    in
    Arg.(
      value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  Term.(const (fun m t -> (m, t)) $ metrics_out $ trace_out)

(* Run [f] under the requested observability, writing the sinks even if
   [f] fails partway (a truncated run is exactly when a trace helps). *)
let with_obs ?(force_metrics = false) (metrics_out, trace_out) f =
  if Option.is_some trace_out then begin
    Trace.start ();
    (* Name the process and thread rows so several pppc traces stay
       tellable apart when loaded into one viewer. *)
    Trace.label_process ~thread:"main" "pppc"
  end;
  if force_metrics || Option.is_some metrics_out then begin
    Metrics.set_enabled true;
    Metrics.reset ()
  end;
  let finish () =
    Trace.stop ();
    (match metrics_out with
    | Some path ->
        let snap = Metrics.snapshot () in
        if Filename.check_suffix path ".csv" then
          Sink.write_metrics_csv ~path snap
        else Sink.write_metrics_json ~path snap
    | None -> ());
    match trace_out with Some path -> Trace.write_file path | None -> ()
  in
  Fun.protect ~finally:finish f

(* {2 run} *)

let telemetry_arg =
  let doc =
    "Attach a live-telemetry snapshot ring to the VM, sampled every \
     $(docv) dynamic instructions. Outcomes are byte-identical with and \
     without the ring; a one-line summary goes to stderr, the series to \
     $(b,--telemetry-out) and (as counter events) to $(b,--trace-out)."
  in
  Arg.(value & opt (some int) None & info [ "telemetry" ] ~docv:"N" ~doc)

let telemetry_out_arg =
  let doc =
    "Write the telemetry sample series to $(docv) as JSON (implies \
     $(b,--telemetry) at a default interval of 1000)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-out" ] ~docv:"FILE" ~doc)

(* {2 tier flags (run / stats)} *)

let tier_up_arg =
  let doc =
    "Tiered in-VM re-optimization: the run starts with every routine in \
     its PPP-instrumented variant; routines whose frame-entry trip count \
     crosses the threshold are re-lowered hot-path-first (from their own \
     live counters) with instrumentation stripped, and swapped in at the \
     next call boundary or loop back-edge OSR point — one run, no second \
     pass. The program outcome is byte-identical to an untiered run."
  in
  Arg.(value & flag & info [ "tier-up" ] ~doc)

let tier_threshold_arg =
  let doc = "Frame-entry trip count at which a routine tiers up." in
  Arg.(
    value
    & opt int Ppp_interp.Tier.default_threshold
    & info [ "tier-threshold" ] ~docv:"N" ~doc)

let tier_budget_arg =
  let doc = "Maximum number of routines allowed to tier up (default: all)." in
  Arg.(value & opt (some int) None & info [ "tier-budget" ] ~docv:"N" ~doc)

let pp_tier_decisions ppf (ds : Ppp_interp.Tier.decision list) =
  List.iter
    (fun (d : Ppp_interp.Tier.decision) ->
      Format.fprintf ppf "  gen %d: %s at %d trips%s@." d.Ppp_interp.Tier.d_gen
        d.Ppp_interp.Tier.d_routine d.Ppp_interp.Tier.d_trips
        (if d.Ppp_interp.Tier.d_reordered then " (re-laid out)"
         else " (instrumentation stripped)"))
    ds

let run_cmd =
  let action spec scale engine telemetry telemetry_out tier_up tier_threshold
      tier_budget obs =
    if tier_up then
      handle_errors (fun () ->
          with_obs obs (fun () ->
              if tier_threshold < 1 then
                cli_error "--tier-threshold must be >= 1";
              let p = load_program spec ~scale in
              let prep = H.prepare_unoptimized ~name:spec p in
              let t =
                Trace.with_span "tiered-run" (fun () ->
                    H.tiered_run ~threshold:tier_threshold ?budget:tier_budget
                      prep Config.ppp)
              in
              let o = t.H.t_outcome in
              List.iter (fun v -> Format.printf "%d@." v) o.Interp.output;
              Format.printf "return: %s@."
                (match o.Interp.return_value with
                | Some v -> string_of_int v
                | None -> "(none)");
              Format.printf "instructions: %d  cost: %d  paths: %d@."
                o.Interp.dyn_instrs o.Interp.base_cost o.Interp.dyn_paths;
              Format.printf "tier: %d of %d routines tiered up (threshold %d)@."
                (List.length t.H.t_decisions)
                (List.length p.Ir.routines)
                tier_threshold;
              pp_tier_decisions Format.std_formatter t.H.t_decisions;
              Format.printf "instrumentation cost after tiering: %d@."
                o.Interp.instr_cost))
    else
    handle_errors (fun () ->
        with_obs obs (fun () ->
            let p = load_program spec ~scale in
            let ring =
              match (telemetry, telemetry_out) with
              | Some n, _ -> Some (Telemetry.create ~interval:n ())
              | None, Some _ -> Some (Telemetry.create ~interval:1000 ())
              | None, None -> None
            in
            let config = { Interp.default_config with telemetry = ring } in
            let o =
              Trace.with_span "run" (fun () -> Interp.run ~config ~engine p)
            in
            List.iter (fun v -> Format.printf "%d@." v) o.Interp.output;
            Format.printf "return: %s@."
              (match o.Interp.return_value with
              | Some v -> string_of_int v
              | None -> "(none)");
            Format.printf "instructions: %d  cost: %d  paths: %d@."
              o.Interp.dyn_instrs o.Interp.base_cost o.Interp.dyn_paths;
            match ring with
            | None -> ()
            | Some t ->
                Telemetry.emit_trace_counters t;
                Format.eprintf
                  "telemetry: %d samples taken (%d dropped by the ring), \
                   interval %d@."
                  (Telemetry.taken t) (Telemetry.dropped t)
                  (Telemetry.interval t);
                (match telemetry_out with
                | Some path ->
                    write_file path (Jsonx.to_string (Telemetry.to_json t) ^ "\n")
                | None -> ())))
  in
  let doc = "Execute a program and print its output and statistics." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const action $ program_arg $ scale_arg $ engine_arg $ telemetry_arg
      $ telemetry_out_arg $ tier_up_arg $ tier_threshold_arg $ tier_budget_arg
      $ obs_args)

(* {2 profile} *)

let method_arg =
  let methods =
    [ ("pp", Config.pp); ("tpp", Config.tpp); ("tpp-check", Config.tpp_original);
      ("ppp", Config.ppp) ]
  in
  let doc = "Profiling method: pp, tpp, tpp-check, or ppp." in
  Arg.(value & opt (enum methods) Config.ppp & info [ "method"; "m" ] ~doc)

let top_arg =
  let doc = "How many hot paths to print." in
  Arg.(value & opt int 10 & info [ "top" ] ~doc)

let profile_cmd =
  let action spec scale config top no_cache obs =
    handle_errors (fun () ->
        with_obs obs @@ fun () ->
        let p = load_program spec ~scale in
        let session = session_of ~no_cache spec in
        let prep = H.prepare_unoptimized ~session ~name:spec p in
        let ev = H.evaluate prep config in
        Format.printf "method: %s@." ev.H.config_name;
        Format.printf "overhead: %.1f%%  accuracy: %.1f%%  coverage: %.1f%%@."
          (100. *. ev.H.overhead) (100. *. ev.H.accuracy) (100. *. ev.H.coverage);
        Format.printf "dynamic paths instrumented: %.1f%% (%.1f%% hashed)@."
          (100. *. ev.H.frac_paths_instrumented)
          (100. *. ev.H.frac_paths_hashed);
        Format.printf "routines instrumented: %d / %d  (static actions: %d)@."
          ev.H.routines_instrumented ev.H.routines_total ev.H.static_actions;
        let hot =
          Ppp_flow.Score.hot_actual ~actual:(H.actual_profile prep)
            ~views:(H.views prep) ~metric:Ppp_profile.Metric.Branch_flow
            ~threshold:0.00125
        in
        Format.printf "@.hot paths (ground truth, branch flow):@.";
        List.iteri
          (fun i (rname, path, flow) ->
            if i < top then
              Format.printf "  %8d  %s %a@." flow rname
                (Ppp_profile.Path.pp (H.views prep rname))
                path)
          hot)
  in
  let doc =
    "Instrument a program with a path profiler, run it, and report \
     overhead, accuracy and coverage plus the hot paths."
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      const action $ program_arg $ scale_arg $ method_arg $ top_arg
      $ no_cache_arg $ obs_args)

(* {2 stats} *)

let stats_cmd =
  let format_arg =
    let doc = "Output format for the metrics snapshot: table, json or csv." in
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("json", `Json); ("csv", `Csv) ]) `Table
      & info [ "format"; "f" ] ~doc)
  in
  let action spec scale config fmt no_cache tier_up tier_threshold tier_budget
      obs =
    handle_errors (fun () ->
        with_obs ~force_metrics:true obs @@ fun () ->
        if tier_threshold < 1 then cli_error "--tier-threshold must be >= 1";
        let p = load_program spec ~scale in
        let session = session_of ~no_cache spec in
        let prep = H.prepare_unoptimized ~session ~name:spec p in
        let ev = H.evaluate prep config in
        Format.eprintf
          "%s: method %s  overhead %.1f%%  accuracy %.1f%%  coverage %.1f%%@."
          spec ev.H.config_name (100. *. ev.H.overhead) (100. *. ev.H.accuracy)
          (100. *. ev.H.coverage);
        (* With --tier-up, also execute one tiered run so the tier.*
           metric family below carries this program's swap activity
           rather than zeros. *)
        if tier_up then begin
          let t =
            H.tiered_run ~threshold:tier_threshold ?budget:tier_budget prep
              config
          in
          Format.eprintf
            "tiered: %d routines swapped, overhead %.1f%% (untiered %.1f%%)@."
            (List.length t.H.t_decisions)
            (100. *. Interp.overhead t.H.t_outcome)
            (100. *. ev.H.overhead);
          pp_tier_decisions Format.err_formatter t.H.t_decisions
        end;
        Format.eprintf "%a@." Session.pp_stats prep.H.session;
        let snap = Metrics.snapshot () in
        match fmt with
        | `Table -> Format.printf "%a@." Metrics.pp_snapshot snap
        | `Json ->
            Format.printf "%s@."
              (Ppp_obs.Jsonx.to_string (Sink.metrics_json snap))
        | `Csv -> Sink.pp_metrics_csv Format.std_formatter snap)
  in
  let doc =
    "Profile a program and dump the full metrics snapshot: interpreter \
     counters (dynamic instructions, paths, fuel, per-kind edge-action \
     executions), hash-table statistics (probes, collisions per try, cold \
     and lost counts) and placement counters (static actions, paths \
     numbered vs. hashed). The evaluation summary goes to stderr, the \
     snapshot to stdout."
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(
      const action $ program_arg $ scale_arg $ method_arg $ format_arg
      $ no_cache_arg $ tier_up_arg $ tier_threshold_arg $ tier_budget_arg
      $ obs_args)

(* {2 instrument} *)

let instrument_cmd =
  let action spec scale config =
    handle_errors (fun () ->
        let p = load_program spec ~scale in
        let o = Interp.run p in
        let ep = Option.get o.Interp.edge_profile in
        let inst = Ppp_core.Instrument.instrument p ep config in
        List.iter
          (fun (r : Ir.routine) ->
            let plan = Hashtbl.find inst.Ppp_core.Instrument.plans r.Ir.name in
            Format.printf "%a@.@." Ppp_core.Instrument.pp_plan plan)
          p.Ir.routines)
  in
  let doc =
    "Show the instrumentation a profiling method would place: per-edge      actions in the paper's notation, table kinds, elided obvious paths."
  in
  Cmd.v
    (Cmd.info "instrument" ~doc)
    Term.(const action $ program_arg $ scale_arg $ method_arg)

(* {2 collect} *)

let jobs_arg =
  let doc =
    "Number of forked worker processes. Only multi-workload work \
     ($(b,bench:all), fuzz-profile) shards; results are identical at \
     every $(docv) (workers that die are reported and skipped)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let mkdir_p dir =
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* {2 Talking to the resident daemon}

   Exit codes are part of the contract: 10 daemon unreachable (with
   --daemon-required), 11 request deadline exceeded, 12 work done but on
   the degraded in-process fallback path. *)

let daemon_args =
  let socket =
    let doc =
      "Send the request to the resident $(b,pppd) daemon listening on \
       $(docv) instead of computing in-process. A warm daemon serves \
       repeated requests from its persistent store and resumes \
       incremental optimization from persisted placement plans. If the \
       daemon is unreachable or sheds the request under load, the work \
       falls back to the in-process path and pppc exits with code 12."
    in
    Arg.(value & opt (some string) None & info [ "daemon" ] ~docv:"SOCKET" ~doc)
  in
  let deadline =
    let doc =
      "Wall-clock budget for the daemon request, in milliseconds; on \
       expiry pppc exits with code 11. The budget is enforced on both \
       sides of the socket."
    in
    Arg.(value & opt int 30_000 & info [ "daemon-deadline-ms" ] ~docv:"MS" ~doc)
  in
  let required =
    let doc =
      "Fail with exit code 10 instead of falling back to the in-process \
       path when the daemon is unreachable."
    in
    Arg.(value & flag & info [ "daemon-required" ] ~doc)
  in
  Term.(const (fun s d r -> (s, d, r)) $ socket $ deadline $ required)

(* Run [req] against the daemon and hand a successful reply to [accept].
   Unreachable/shed degrades to [fallback] (exit 12) unless [required]
   (exit 10); a timeout is terminal (exit 11): the budget is spent, so
   silently redoing the work in-process would break the bound. *)
let via_daemon ~socket ~deadline_ms ~required ~req ~accept ~fallback =
  match Daemon_client.call ~socket ~deadline_ms req with
  | Ok (body, meta) -> accept body meta
  | Error Daemon_client.Timeout ->
      Format.eprintf "%a@." Diagnostic.pp
        (Daemon_client.failure_diagnostic Daemon_client.Timeout);
      exit Daemon_client.Exit.request_timeout
  | Error (Daemon_client.Remote (_, ds)) ->
      Format.eprintf "%a@." Diagnostic.pp_list ds;
      exit 2
  | Error ((Daemon_client.Unreachable _ | Daemon_client.Shed) as f) ->
      Format.eprintf "%a@." Diagnostic.pp (Daemon_client.failure_diagnostic f);
      if required then exit Daemon_client.Exit.daemon_unreachable
      else begin
        Format.eprintf "%a@." Diagnostic.pp
          (Diagnostic.make ~severity:Diagnostic.Warning Diagnostic.Degraded
             "falling back to the in-process path");
        fallback ();
        exit Daemon_client.Exit.degraded
      end

(* Collect every built-in workload under the worker pool and merge the
   shards; [pppc collect bench:all]. *)
let collect_all ~scale ~jobs ~warm ~output ~shard_dir ~metrics_wanted ~sampling
    =
  let metrics = metrics_wanted || Option.is_some shard_dir in
  let c =
    Shard.collect_workloads ~jobs ~scale ~metrics ~warm ?sampling
      Ppp_workloads.Spec.all
  in
  (match shard_dir with
  | None -> ()
  | Some dir ->
      mkdir_p dir;
      List.iter
        (fun (name, dump) ->
          write_file (Filename.concat dir (name ^ ".ppp")) dump)
        c.Shard.shards;
      List.iter
        (fun (name, snap) ->
          Sink.write_metrics_json
            ~path:(Filename.concat dir (name ^ ".metrics.json"))
            snap)
        c.Shard.shard_metrics);
  if metrics_wanted then Metrics.absorb c.Shard.metrics;
  List.iter (fun d -> Format.eprintf "%a@." Diagnostic.pp d) c.Shard.lost;
  (match Profile_io.Raw.diagnostics c.Shard.raw with
  | [] -> ()
  | ds -> Format.eprintf "%a@." Diagnostic.pp_list ds);
  let text = Profile_io.Raw.to_string c.Shard.raw in
  (match output with None -> print_string text | Some path -> write_file path text);
  Format.eprintf "collected %d/%d workloads (-j %d): count mass %d, lost %d@."
    (List.length c.Shard.shards)
    (List.length Ppp_workloads.Spec.all)
    jobs
    (Profile_io.Raw.mass c.Shard.raw)
    (Profile_io.Raw.lost c.Shard.raw);
  if c.Shard.lost <> [] then exit 3

let collect_cmd =
  let output_arg =
    let doc = "Write the profile here instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  let v1_arg =
    let doc =
      "Write the legacy headerless v1 format (no CFG fingerprints, no \
       checksums) instead of v2."
    in
    Arg.(value & flag & info [ "v1" ] ~doc)
  in
  let shard_dir_arg =
    let doc =
      "With $(b,bench:all): also write every workload's own dump \
       (NAME.ppp) and metrics snapshot (NAME.metrics.json) into $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "shard-dir" ] ~docv:"DIR" ~doc)
  in
  let warm_arg =
    let doc =
      "With $(b,bench:all): warm an analysis session (CFG views, loop \
       nests, structural lowerings) per workload in the parent before \
       forking, so workers inherit the artifacts copy-on-write. The \
       merged dump is byte-identical either way."
    in
    Arg.(value & flag & info [ "warm" ] ~doc)
  in
  let sample_rate_arg =
    let doc =
      "Collect under bursty sampled PPP instrumentation at this rate \
       ($(b,1), $(b,1/16), or a bare denominator). $(b,1) (the default) \
       is exact collection; below 1, path counts in the dump are \
       inverse-rate estimates recovered from the sampled run, while the \
       edge profile stays exact. Distinct from the telemetry ring's \
       snapshot sampling ($(b,run --telemetry))."
    in
    Arg.(value & opt string "1" & info [ "sample-rate" ] ~docv:"RATE" ~doc)
  in
  let burst_arg =
    let doc =
      "Burst length for sampled collection: instrument $(docv) \
       consecutive frames per sampling period."
    in
    Arg.(
      value
      & opt int Sampling.default_burst
      & info [ "burst" ] ~docv:"N" ~doc)
  in
  let sample_seed_arg =
    let doc =
      "Seed for the sampled-collection phase PRNG (with $(b,bench:all), \
       the pool seed each workload's own seed derives from)."
    in
    Arg.(value & opt int 0 & info [ "sample-seed" ] ~docv:"N" ~doc)
  in
  let action spec scale engine output v1 jobs warm shard_dir sample_rate burst
      sample_seed obs (daemon, daemon_deadline_ms, daemon_required) =
    handle_errors (fun () ->
        let denom =
          match Sampling.parse_rate sample_rate with
          | Ok d -> d
          | Error msg -> cli_error "--sample-rate %s" msg
        in
        if burst < 1 then cli_error "--burst must be at least 1 (got %d)" burst;
        let sampling =
          if denom <= 1 then None
          else Some (Sampling.spec ~denom ~burst ~seed:sample_seed ())
        in
        if v1 && sampling <> None then
          cli_error
            "--v1 cannot carry sampled estimates (the v2 dump records exact \
             edges alongside estimated paths)";
        let local_single () =
          with_obs obs (fun () ->
              let p = load_program spec ~scale in
              match sampling with
              | Some spec ->
                  let raw = Shard.collect_sampled ~spec p in
                  let text = Profile_io.Raw.to_string raw in
                  (match output with
                  | None -> print_string text
                  | Some path -> write_file path text)
              | None ->
                  let o = Interp.run ~engine p in
                  let write ppf =
                    if v1 then begin
                      Ppp_profile.Profile_io.save_edges ppf p
                        (Option.get o.Interp.edge_profile);
                      Ppp_profile.Profile_io.save_paths ppf p
                        (Option.get o.Interp.path_profile)
                    end
                    else
                      Ppp_profile.Profile_io.save ?edges:o.Interp.edge_profile
                        ?paths:o.Interp.path_profile ppf p
                  in
                  (match output with
                  | None -> write Format.std_formatter
                  | Some path -> write_file path (Format.asprintf "%t" write)))
        in
        if spec = "bench:all" then begin
          if v1 then
            cli_error "--v1 is not supported with bench:all (shards merge in v2)";
          if daemon <> None then
            cli_error "--daemon serves one workload per request, not bench:all";
          with_obs obs (fun () ->
              collect_all ~scale ~jobs ~warm ~output ~shard_dir
                ~metrics_wanted:(Option.is_some (fst obs)) ~sampling)
        end
        else
          match daemon with
          | None -> local_single ()
          | Some socket -> (
              if v1 then cli_error "--v1 cannot be combined with --daemon";
              match String.index_opt spec ':' with
              | Some i when String.sub spec 0 i = "bench" ->
                  let bench =
                    String.sub spec (i + 1) (String.length spec - i - 1)
                  in
                  via_daemon ~socket ~deadline_ms:daemon_deadline_ms
                    ~required:daemon_required
                    ~req:
                      (Daemon_ops.Collect
                         { bench; scale; sample_rate = denom; burst;
                           sample_seed })
                    ~accept:(fun body _meta ->
                      match output with
                      | None -> print_string body
                      | Some path -> write_file path body)
                    ~fallback:local_single
              | _ ->
                  cli_error
                    "--daemon needs a bench:NAME program (got %S): the daemon \
                     does not read local files" spec))
  in
  let doc =
    "Run a program and dump its edge and path profiles as text (validated \
     v2 format: versioned header, CFG fingerprints, per-section CRC). \
     $(b,bench:all) collects every built-in workload — sharded across \
     $(b,-j) worker processes — and merges the shards into one dump whose \
     bytes are identical at every $(b,-j)."
  in
  Cmd.v (Cmd.info "collect" ~doc)
    Term.(
      const action $ program_arg $ scale_arg $ engine_arg $ output_arg $ v1_arg
      $ jobs_arg $ warm_arg $ shard_dir_arg $ sample_rate_arg $ burst_arg
      $ sample_seed_arg $ obs_args $ daemon_args)

(* {2 merge} *)

let merge_cmd =
  let files_arg =
    let doc = "Profile dumps (v1 or v2) to merge." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let output_arg =
    let doc = "Write the merged profile here instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  let decay_arg =
    let doc =
      "Fleet-style decayed merge: with $(docv) below 1, input $(i,i) of \
       $(i,n) (oldest first, in argument order) is pre-scaled by \
       $(docv)^($(i,n)-1-$(i,i)) before the commutative merge, so newer \
       dumps dominate; the scaled-away mass is accounted in the lost \
       ledger. $(b,1.0) (the default) is the plain order-independent \
       merge."
    in
    Arg.(value & opt float 1.0 & info [ "decay" ] ~docv:"D" ~doc)
  in
  let action files output decay (daemon, daemon_deadline_ms, daemon_required) =
    handle_errors @@ fun () ->
    if not (decay > 0.0 && decay <= 1.0) then
      cli_error "--decay must be in (0, 1] (got %g)" decay;
    let emit text = match output with
      | None -> print_string text
      | Some path -> write_file path text
    in
    let local () =
      let inputs =
        List.map (fun path -> Profile_io.Raw.parse (read_file path)) files
      in
      let merged =
        if decay < 1.0 then Profile_io.Raw.merge_decayed ~decay inputs
        else Profile_io.Raw.merge inputs
      in
      (match Profile_io.Raw.diagnostics merged with
      | [] -> ()
      | ds -> Format.eprintf "%a@." Diagnostic.pp_list ds);
      Format.eprintf "merged %d dumps: count mass %d, lost %d@."
        (List.length files)
        (Profile_io.Raw.mass merged)
        (Profile_io.Raw.lost merged);
      emit (Profile_io.Raw.to_string merged)
    in
    match daemon with
    | None -> local ()
    | Some socket ->
        let dumps = List.map read_file files in
        via_daemon ~socket ~deadline_ms:daemon_deadline_ms
          ~required:daemon_required
          ~req:(Daemon_ops.Merge { dumps; decay })
          ~accept:(fun body meta ->
            (match (List.assoc_opt "mass" meta, List.assoc_opt "lost" meta) with
            | Some (Jsonx.Int mass), Some (Jsonx.Int lost) ->
                Format.eprintf "merged %d dumps: count mass %d, lost %d@."
                  (List.length files) mass lost
            | _ -> ());
            emit body)
          ~fallback:local
  in
  let doc =
    "Merge profile dumps (e.g. per-shard dumps from $(b,collect \
     --shard-dir), or profiles of the same program from different runs) \
     into one canonical v2 dump: counts add (saturating), shards whose \
     CFG metadata disagrees are salvaged through stale matching, and \
     every problem is reported as a diagnostic on stderr. The merge is \
     order-independent, except under $(b,--decay) where argument order \
     is the age order (oldest first)."
  in
  Cmd.v (Cmd.info "merge" ~doc)
    Term.(const action $ files_arg $ output_arg $ decay_arg $ daemon_args)

(* {2 opt} *)

let opt_cmd =
  let output_arg =
    let doc = "Write the optimized program here instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  let superblocks_arg =
    let doc =
      "Also straighten each routine's hottest decoded path into a \
       superblock (tail duplication) before inlining, driven by the path \
       profile. Hot paths that no longer match the CFG are reported as \
       stale-path diagnostics and skipped, never fatal. Computed \
       in-process (the daemon protocol does not carry optimizer flags)."
    in
    Arg.(value & flag & info [ "superblocks" ] ~doc)
  in
  let layout_arg =
    let doc =
      "Also lay out each routine's VM code so its hottest decoded path \
       falls through, exiling cold blocks to the tail. Outcomes are \
       byte-identical with and without the layout; only the emission \
       order (and the taken-transfer / locality proxy) changes. Computed \
       in-process (the daemon protocol does not carry optimizer flags)."
    in
    Arg.(value & flag & info [ "layout" ] ~doc)
  in
  let profile_arg =
    let doc =
      "Drive inlining from this saved profile (v1 or v2, possibly stale) \
       instead of a fresh profiling run. Problems are reported as \
       diagnostics and the salvageable part of the profile is used, with \
       optimization aggressiveness degraded to the matched fraction."
    in
    Arg.(
      value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)
  in
  let iterate_arg =
    let doc =
      "Run $(docv) optimize-profile-re-instrument generations against \
       one shared analysis session: each generation re-optimizes from \
       the previous generation's saved profile (reloaded through the \
       stale matcher) and re-instruments only the routines the \
       optimizers dirtied, every untouched routine keeping its placement."
    in
    Arg.(value & opt int 1 & info [ "iterate" ] ~docv:"N" ~doc)
  in
  let action spec scale output profile iterate superblocks layout no_cache
      (daemon, daemon_deadline_ms, daemon_required) =
    handle_errors (fun () ->
        let flags = { H.default_flags with H.superblocks; H.layout } in
        let pp_sb_stats (s : Ppp_opt.Superblock.stats) =
          if superblocks then
            Format.eprintf
              "superblocks: straightened %d routines (%d blocks duplicated, \
               %d jumps merged, %d hot paths no longer matched)@."
              s.Ppp_opt.Superblock.routines_optimized
              s.Ppp_opt.Superblock.blocks_duplicated
              s.Ppp_opt.Superblock.jumps_merged
              (List.length s.Ppp_opt.Superblock.mismatches)
        in
        let pp_layout (prep : H.prepared) =
          if layout then
            Format.eprintf "layout: %d routines laid out for fall-through@."
              (match prep.H.layout with
              | Some t -> Hashtbl.length t
              | None -> 0)
        in
        let local () =
        let p = load_program spec ~scale in
        if iterate > 1 then begin
          if profile <> None then
            cli_error "--profile cannot be combined with --iterate";
          let session = session_of ~no_cache spec in
          let gens =
            H.reoptimize ~session ~flags ~iterations:iterate ~name:spec p
          in
          List.iter
            (fun (g : H.generation) ->
              Format.eprintf
                "gen %d: dirty %d, re-instrumented %d, reused %d plans, \
                 profile matched %.1f%%, instrumented overhead %.1f%%@."
                g.H.gen (List.length g.H.dirty) g.H.reinstrumented
                g.H.reused_plans
                (100. *. g.H.matched_fraction)
                (100. *. g.H.instr_overhead);
              pp_sb_stats g.H.prep.H.superblock_stats;
              pp_layout g.H.prep)
            gens;
          Format.eprintf "%a@." Session.pp_stats session;
          let last = List.nth gens (List.length gens - 1) in
          let text = Ppp_ir.Pp_ir.to_string last.H.prep.H.optimized in
          match output with
          | Some path -> write_file path text
          | None -> print_string text
        end
        else begin
        let session = session_of ~no_cache spec in
        let prep =
          match profile with
          | None -> H.prepare ~session ~flags ~name:spec p
          | Some path -> (
              match Profile_io.load p (read_file path) with
              | Error ds ->
                  Format.eprintf "%a@." Diagnostic.pp_list ds;
                  cli_error "profile %S could not be salvaged" path
              | Ok loaded ->
                  if loaded.Profile_io.diagnostics <> [] then
                    Format.eprintf "%a@." Diagnostic.pp_list
                      loaded.Profile_io.diagnostics;
                  Format.eprintf
                    "profile: %.1f%% of recorded counts matched (%d stale \
                     routines salvaged, %d counts dropped)@."
                    (100. *. loaded.Profile_io.matched_fraction)
                    loaded.Profile_io.stale_routines
                    loaded.Profile_io.dropped_counts;
                  H.prepare_with_profile ~session ~flags ~name:spec ~loaded p)
        in
        let text = Ppp_ir.Pp_ir.to_string prep.H.optimized in
        (match output with
        | Some path -> write_file path text
        | None -> print_string text);
        Format.eprintf
          "inlined %d sites (%.0f%% of dynamic calls); unrolled %d loops (avg \
           factor %.2f); speedup %.3f@."
          prep.H.inline_stats.Ppp_opt.Inline.sites_inlined
          (100. *. Ppp_opt.Inline.pct_dynamic_inlined prep.H.inline_stats)
          prep.H.unroll_stats.Ppp_opt.Unroll.loops_unrolled
          prep.H.unroll_stats.Ppp_opt.Unroll.avg_dynamic_factor
          (float_of_int prep.H.orig_outcome.Interp.base_cost
          /. float_of_int prep.H.base_outcome.Interp.base_cost);
        pp_sb_stats prep.H.superblock_stats;
        pp_layout prep
        end
        in
        match daemon with
        | Some _ when superblocks || layout ->
            (* The daemon request/reply protocol does not carry optimizer
               flags; rather than silently optimize without them, do the
               flagged work in-process. *)
            Format.eprintf "%a@." Diagnostic.pp
              (Diagnostic.make ~severity:Diagnostic.Warning Diagnostic.Degraded
                 "--superblocks/--layout are computed in-process; ignoring \
                  --daemon for this request");
            local ()
        | None -> local ()
        | Some socket ->
            let program =
              match String.index_opt spec ':' with
              | Some i when String.sub spec 0 i = "bench" ->
                  Ppp_ir.Pp_ir.to_string (load_program spec ~scale)
              | _ -> read_file spec
            in
            via_daemon ~socket ~deadline_ms:daemon_deadline_ms
              ~required:daemon_required
              ~req:
                (Daemon_ops.Opt
                   {
                     name = spec;
                     program;
                     profile = Option.map read_file profile;
                     iterate;
                     plans = None;
                   })
              ~accept:(fun body meta ->
                (match List.assoc_opt "plans_imported" meta with
                | Some (Jsonx.Int n) when n > 0 ->
                    Format.eprintf
                      "resumed from %d persisted placement plan%s@." n
                      (if n = 1 then "" else "s")
                | _ -> ());
                (match List.assoc_opt "served_from_store" meta with
                | Some (Jsonx.Bool true) ->
                    Format.eprintf "served from the daemon store@."
                | _ -> ());
                match output with
                | None -> print_string body
                | Some path -> write_file path body)
              ~fallback:local)
  in
  let doc =
    "Apply profile-guided inlining and unrolling; print the result. With \
     $(b,--iterate N), repeat the optimize-profile-re-instrument loop \
     incrementally against one analysis session."
  in
  Cmd.v (Cmd.info "opt" ~doc)
    Term.(
      const action $ program_arg $ scale_arg $ output_arg $ profile_arg
      $ iterate_arg $ superblocks_arg $ layout_arg $ no_cache_arg
      $ daemon_args)

(* {2 dot} *)

let dot_cmd =
  let routine_arg =
    let doc = "Routine to dump (default: the main routine)." in
    Arg.(value & opt (some string) None & info [ "routine"; "r" ] ~doc)
  in
  let heat_arg =
    let doc =
      "Run the program first and color edges by edge-profile frequency: \
       red for hot (at least 0.125% of total program flow, the paper's \
       hot-path threshold), blue for executed-but-cold, dashed gray for \
       never executed."
    in
    Arg.(value & flag & info [ "heat" ] ~doc)
  in
  let action spec scale routine heat =
    handle_errors (fun () ->
        let p = load_program spec ~scale in
        let rname = Option.value routine ~default:p.Ir.main in
        let r =
          match Ir.find_routine p rname with
          | Some r -> r
          | None -> cli_error "unknown routine %S" rname
        in
        let view = Ppp_ir.Cfg_view.of_routine r in
        let g = Ppp_ir.Cfg_view.graph view in
        let label v =
          match Ppp_ir.Cfg_view.block_of_node view v with
          | Some b -> r.Ir.blocks.(b).Ir.label
          | None -> "EXIT"
        in
        if heat then begin
          let module Edge_profile = Ppp_profile.Edge_profile in
          let o = Interp.run p in
          let ep = Option.get o.Interp.edge_profile in
          let total =
            List.fold_left
              (fun acc (r : Ir.routine) ->
                acc + Edge_profile.total (Edge_profile.routine ep r.Ir.name))
              0 p.Ir.routines
          in
          Ppp_cfg.Dot.pp_heat ~node_label:label ~name:rname
            ~freq:(Edge_profile.freq (Edge_profile.routine ep rname))
            ~total Format.std_formatter g
        end
        else
          Ppp_cfg.Dot.pp ~node_label:label ~name:rname Format.std_formatter g)
  in
  let doc =
    "Print a routine's control-flow graph in Graphviz format, optionally \
     heat-annotated from an edge profile ($(b,--heat))."
  in
  Cmd.v (Cmd.info "dot" ~doc)
    Term.(const action $ program_arg $ scale_arg $ routine_arg $ heat_arg)

(* {2 emit (built-in workloads as .pir)} *)

let emit_cmd =
  let action spec scale =
    handle_errors (fun () ->
        let p = load_program spec ~scale in
        print_string (Ppp_ir.Pp_ir.to_string p))
  in
  let doc = "Print a program (e.g. a built-in workload) as .pir text." in
  Cmd.v (Cmd.info "emit" ~doc) Term.(const action $ program_arg $ scale_arg)

(* {2 fuzz-profile} *)

(* The fault-injection harness: for every built-in workload, collect a
   pristine v2 profile, perturb it with every fault kind, and require the
   loader to (a) never raise and (b) classify every injected fault as at
   least one diagnostic. Also starves the interpreter of fuel to check
   that exhaustion degrades instead of raising. *)
let fuzz_profile_cmd =
  let seed_arg =
    let doc = "PRNG seed; the same seed reproduces every perturbation." in
    Arg.(value & opt int 42 & info [ "seed" ] ~doc)
  in
  let out_arg =
    let doc = "Write a JSON report of every case and its diagnostics." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  (* One workload's whole fault matrix; pure in [seed], so it runs the
     same way in a shard worker as inline and the report is identical at
     every -j. Returns the JSON cases plus human-readable failure lines
     (printed by the parent — worker stdout/stderr must stay quiet). *)
  let fuzz_bench ~seed (b : Ppp_workloads.Spec.bench) =
    let r = Faults.rng ~seed in
    let bench = b.Ppp_workloads.Spec.bench_name in
    let cases = ref [] and fail_lines = ref [] in
    let record fault status diags =
      cases :=
        Jsonx.Obj
          [
            ("bench", Jsonx.Str bench);
            ("fault", Jsonx.Str fault);
            ("status", Jsonx.Str status);
            ("diagnostics", Diagnostic.list_to_json diags);
          ]
        :: !cases
    in
    let fail_case fault why =
      fail_lines :=
        Printf.sprintf "FAIL %-10s %-22s %s" bench fault why :: !fail_lines
    in
    let p = b.Ppp_workloads.Spec.build ~scale:1 in
    let o = Interp.run p in
    let pristine =
      Format.asprintf "%t" (fun ppf ->
          Profile_io.save ?edges:o.Interp.edge_profile
            ?paths:o.Interp.path_profile ppf p)
    in
    (* The unperturbed dump must load cleanly... *)
    (match Profile_io.load p pristine with
    | Ok l when l.Profile_io.diagnostics = [] -> record "none" "clean" []
    | Ok l ->
        fail_case "none" "diagnostics on a pristine profile";
        record "none" "dirty" l.Profile_io.diagnostics
    | Error ds ->
        fail_case "none" "pristine profile rejected";
        record "none" "rejected" ds
    | exception e ->
        fail_case "none" (Printexc.to_string e);
        record "none" "raised" []);
    (* ...and every perturbation must be classified, never thrown. *)
    List.iter
      (fun fault ->
        let fname = Faults.name fault in
        let mutated = Faults.apply r fault pristine in
        match Profile_io.load p mutated with
        | Ok l ->
            if l.Profile_io.diagnostics = [] then
              fail_case fname "fault loaded without a diagnostic";
            record fname "salvaged" l.Profile_io.diagnostics
        | Error ds ->
            if ds = [] then fail_case fname "rejected silently";
            record fname "rejected" ds
        | exception e ->
            fail_case fname (Printexc.to_string e);
            record fname "raised" [])
      Faults.all;
    (* Fuel starvation: a partial run is an outcome, not an error. *)
    (match Interp.run ~config:{ Interp.default_config with fuel = 100 } p with
    | o2 ->
        let status =
          match o2.Interp.termination with
          | Interp.Out_of_fuel _ -> "out-of-fuel"
          | Interp.Finished -> "finished"
        in
        record "starve-fuel" status []
    | exception e ->
        fail_case "starve-fuel" (Printexc.to_string e);
        record "starve-fuel" "raised" []);
    (List.rev !cases, List.rev !fail_lines)
  in
  let action seed out jobs =
    handle_errors @@ fun () ->
    let results =
      Shard.map ~jobs ~seed ~f:fuzz_bench Ppp_workloads.Spec.all
    in
    let failures = ref 0 in
    let cases = ref [] in
    List.iter2
      (fun (b : Ppp_workloads.Spec.bench) result ->
        match result with
        | Ok (bench_cases, fail_lines) ->
            cases := List.rev_append bench_cases !cases;
            List.iter
              (fun line ->
                incr failures;
                Format.eprintf "%s@." line)
              fail_lines
        | Error d ->
            incr failures;
            Format.eprintf "FAIL %-10s %-22s %a@." b.Ppp_workloads.Spec.bench_name
              "shard" Diagnostic.pp d;
            cases :=
              Jsonx.Obj
                [
                  ("bench", Jsonx.Str b.Ppp_workloads.Spec.bench_name);
                  ("fault", Jsonx.Str "shard");
                  ("status", Jsonx.Str "lost");
                  ("diagnostics", Diagnostic.list_to_json [ d ]);
                ]
              :: !cases)
      Ppp_workloads.Spec.all results;
    let report =
      Jsonx.Obj
        [
          ("seed", Jsonx.Int seed);
          ("failures", Jsonx.Int !failures);
          ("cases", Jsonx.Arr (List.rev !cases));
        ]
    in
    (match out with
    | Some path -> write_file path (Jsonx.to_string report ^ "\n")
    | None -> ());
    Format.printf "fuzz-profile: seed %d, %d cases, %d failures@." seed
      (List.length !cases) !failures;
    if !failures > 0 then exit 1
  in
  let doc =
    "Inject faults (truncation, bit flips, section reordering, renames, \
     dropped/duplicated registrations, garbage) into profiles of every \
     built-in workload and verify the loader classifies each one as a \
     diagnostic without ever raising; also checks fuel starvation \
     degrades gracefully. Workloads shard across $(b,-j) worker \
     processes; every workload's perturbations derive from --seed and \
     its own index, so the report is identical at every $(b,-j)."
  in
  Cmd.v
    (Cmd.info "fuzz-profile" ~doc)
    Term.(const action $ seed_arg $ out_arg $ jobs_arg)

(* {2 report} *)

(* Tiny JSON accessors for rendering: the report document is the source
   of truth, the HTML is a projection of it. *)
let jget j path =
  List.fold_left
    (fun acc k -> Option.bind acc (fun j -> Jsonx.member j k))
    (Some j) path

let jfloat j path =
  match jget j path with
  | Some (Jsonx.Float f) -> Some f
  | Some (Jsonx.Int i) -> Some (float_of_int i)
  | _ -> None

let jint j path = match jget j path with Some (Jsonx.Int i) -> Some i | _ -> None
let jstr j path = match jget j path with Some (Jsonx.Str s) -> Some s | _ -> None

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One self-contained page: the floor summary, then a per-workload table
   of every method's quality scores, with decision and telemetry counts
   where the report carries them. *)
let html_report doc =
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let num = function Some f -> Printf.sprintf "%.3f" f | None -> "-" in
  let pct = function Some f -> Printf.sprintf "%.1f" f | None -> "-" in
  out "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">";
  out "<title>ppp profile quality</title>\n";
  out
    "<style>body{font-family:sans-serif;margin:2em}table{border-collapse:collapse;margin:1em \
     0}td,th{border:1px solid #999;padding:4px \
     8px;text-align:right}th{background:#eee}td:first-child,th:first-child{text-align:left}caption{font-weight:bold;text-align:left;padding:4px \
     0}</style></head><body>\n";
  out "<h1>Profile quality report</h1>\n";
  out "<p>scale %s, hot threshold %s</p>\n"
    (match jint doc [ "scale" ] with Some i -> string_of_int i | None -> "-")
    (num (jfloat doc [ "hot_threshold" ]));
  out
    "<table><caption>Summary: weighted overlap vs measured truth, per \
     method over all workloads</caption>\n";
  out
    "<tr><th>method</th><th>mean overlap %%</th><th>min overlap \
     %%</th><th>workloads</th></tr>\n";
  List.iter
    (fun m ->
      out "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n" m
        (pct (jfloat doc [ "summary"; "methods"; m; "mean_overlap" ]))
        (pct (jfloat doc [ "summary"; "methods"; m; "min_overlap" ]))
        (match jint doc [ "summary"; "methods"; m; "workloads" ] with
        | Some i -> string_of_int i
        | None -> "-"))
    Quality_report.method_names;
  out "</table>\n";
  let benches =
    match Jsonx.member doc "benchmarks" with
    | Some (Jsonx.Arr bs) -> bs
    | _ -> []
  in
  List.iter
    (fun bj ->
      let name = Option.value ~default:"?" (jstr bj [ "name" ]) in
      let extra =
        List.filter_map
          (fun (label, path) ->
            Option.map
              (fun i -> Printf.sprintf "%s %d" label i)
              (jint bj path))
          [
            ("decisions", [ "decisions"; "count" ]);
            ("telemetry samples", [ "telemetry"; "taken" ]);
          ]
      in
      out "<table><caption>%s%s</caption>\n" (html_escape name)
        (match extra with
        | [] -> ""
        | es -> " (" ^ String.concat ", " es ^ ")");
      out
        "<tr><th>method</th><th>overlap %%</th><th>hot precision</th><th>hot \
         recall</th><th>hot flow cov</th><th>total \
         divergence</th><th>composite</th><th>overhead</th><th>accuracy</th><th>coverage</th></tr>\n";
      List.iter
        (fun m ->
          let f path = jfloat bj ([ "methods"; m ] @ path) in
          out
            "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n"
            m
            (pct (f [ "overlap_pct" ]))
            (num (f [ "hot"; "precision" ]))
            (num (f [ "hot"; "recall" ]))
            (num (f [ "hot"; "flow_coverage" ]))
            (num (f [ "total_divergence" ]))
            (num (f [ "composite" ]))
            (num (f [ "overhead" ]))
            (num (f [ "accuracy" ]))
            (num (f [ "coverage" ])))
        Quality_report.method_names;
      out "</table>\n")
    benches;
  out "</body></html>\n";
  Buffer.contents b

let report_cmd =
  let bench_arg =
    let doc =
      "Restrict the report to these workloads (comma-separated names; \
       default: every built-in workload)."
    in
    Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"NAMES" ~doc)
  in
  let output_arg =
    let doc = "Write the JSON report here instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  let html_arg =
    let doc = "Also render the report as one self-contained HTML page." in
    Arg.(value & opt (some string) None & info [ "html" ] ~docv:"FILE" ~doc)
  in
  let iterate_arg =
    let doc =
      "Also run $(docv) optimize-profile-re-instrument generations per \
       workload and attach each generation's decision log diffed against \
       the previous one (placement stability)."
    in
    Arg.(value & opt int 1 & info [ "iterate" ] ~docv:"N" ~doc)
  in
  let telemetry_arg =
    let doc =
      "Attach a live VM telemetry series per workload, sampled every \
       $(docv) dynamic instructions of the optimized program."
    in
    Arg.(value & opt (some int) None & info [ "telemetry" ] ~docv:"N" ~doc)
  in
  let floors_arg =
    let doc =
      "Gate the report's summary against this committed floors document \
       (schema ppp-quality-floors/1): any method whose worst-workload \
       overlap drops below its floor fails the command (exit 1)."
    in
    Arg.(value & opt (some string) None & info [ "floors" ] ~docv:"FILE" ~doc)
  in
  let action scale bench output html iterate telemetry floors no_cache obs =
    handle_errors (fun () ->
        with_obs obs @@ fun () ->
        let names = Option.map (String.split_on_char ',') bench in
        Option.iter
          (List.iter (fun n ->
               if Ppp_workloads.Spec.find_opt n = None then
                 cli_error
                   "unknown benchmark %S (run `pppc benches` to list them)" n))
          names;
        let benches =
          Trace.with_span "prepare" @@ fun () ->
          Report.prepare_all ~scale ?names ~cache:(not no_cache) ()
        in
        let rows =
          List.map
            (fun pb ->
              Trace.with_span
                ~args:[ ("bench", pb.Report.spec.Ppp_workloads.Spec.bench_name) ]
                "quality-row"
              @@ fun () ->
              Quality_report.bench_row ~iterations:iterate
                ?telemetry_interval:telemetry pb)
            benches
        in
        (* The layout evaluations were computed (and memoized) by the
           rows above; the table is a free summary on stderr. *)
        Report.layout_report Format.err_formatter benches;
        let doc = Jsonx.canonical (Quality_report.wrap ~scale rows) in
        let text = Jsonx.to_string doc in
        (match output with
        | Some path ->
            write_file path (text ^ "\n");
            Format.eprintf "wrote %s@." path
        | None -> print_endline text);
        (match html with
        | Some path ->
            write_file path (html_report doc);
            Format.eprintf "wrote %s@." path
        | None -> ());
        match floors with
        | None -> ()
        | Some path -> (
            let floors_doc = Jsonx.of_string (read_file path) in
            match Gate.check_floors ~floors:floors_doc ~report:doc with
            | [] ->
                Format.eprintf "quality floors: every method clears %s@." path
            | fails ->
                Format.eprintf "quality floors: %d method(s) below %s@."
                  (List.length fails) path;
                Format.eprintf "%a" Gate.pp_failures fails;
                exit 1))
  in
  let doc =
    "Build the profile-quality report (schema ppp-quality/1): per \
     workload, every method's estimated profile scored against the \
     measured truth (weighted overlap, hot precision/recall/coverage, \
     per-routine divergence, composite), the optimizer decision log \
     (with per-generation diffs under $(b,--iterate)), and optionally a \
     live VM telemetry series. $(b,--floors) gates the summary against \
     committed per-method overlap floors."
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const action $ scale_arg $ bench_arg $ output_arg $ html_arg
      $ iterate_arg $ telemetry_arg $ floors_arg $ no_cache_arg $ obs_args)

(* {2 compare} *)

let compare_cmd =
  let a_arg =
    let doc = "Reference profile dump (v1 or v2)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"A.ppp" ~doc)
  in
  let b_arg =
    let doc = "Candidate profile dump to compare against the reference." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"B.ppp" ~doc)
  in
  let output_arg =
    let doc = "Write the comparison JSON here instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  let action a_path b_path output =
    handle_errors @@ fun () ->
    let parse path =
      let raw = Profile_io.Raw.parse (read_file path) in
      (match Profile_io.Raw.diagnostics raw with
      | [] -> ()
      | ds -> Format.eprintf "%s: %a@." path Diagnostic.pp_list ds);
      raw
    in
    let raw_a = parse a_path in
    let raw_b = parse b_path in
    let metric = Ppp_profile.Metric.Branch_flow in
    let reference = Quality.of_dump ~metric raw_a in
    let qb = Quality.of_dump ~metric raw_b in
    let descs_a = Quality.descs_of_dump raw_a in
    let descs_b = Quality.descs_of_dump raw_b in
    (* Dumps of the same program version compare directly; when any
       routine's CFG fingerprint disagrees, the candidate is routed into
       the reference's edge space through the stale matcher and the
       unmappable mass is accounted in the output. *)
    let needs_remap =
      List.exists
        (fun r ->
          match (descs_a r, descs_b r) with
          | Some da, Some db ->
              da.Stale_match.fingerprint <> db.Stale_match.fingerprint
          | _ -> false)
        (Profile_io.Raw.routines raw_b)
    in
    let candidate, remap_fields =
      if needs_remap then begin
        let q, stats = Quality.remap ~descs:descs_b ~target:descs_a qb in
        Format.eprintf
          "candidate remapped through stale matching: %d routines matched, \
           %d dropped; %d counts kept, %d dropped@."
          stats.Quality.routines_matched stats.Quality.routines_dropped
          stats.Quality.mass_kept stats.Quality.mass_dropped;
        (q, [ ("remap", Quality.remap_stats_json stats) ])
      end
      else (qb, [])
    in
    let json =
      match Quality.comparison_json ~reference ~candidate () with
      | Jsonx.Obj fields ->
          Jsonx.Obj
            ([
               ("schema", Jsonx.Str "ppp-compare/1");
               ("reference", Jsonx.Str a_path);
               ("candidate", Jsonx.Str b_path);
               ("remapped", Jsonx.Bool needs_remap);
             ]
            @ fields @ remap_fields)
      | other -> other
    in
    let text = Jsonx.to_string (Jsonx.canonical json) in
    (match output with
    | Some path -> write_file path (text ^ "\n")
    | None -> print_endline text);
    Format.eprintf "overlap %.1f%%, total divergence %.3f, composite %.3f@."
      (Quality.overlap reference candidate)
      (Quality.total_divergence reference candidate)
      (Quality.composite ~reference ~candidate ())
  in
  let doc =
    "Compare two saved profile dumps program-free (schema ppp-compare/1): \
     weighted overlap, hot-set precision/recall/flow-coverage, \
     per-routine divergence and the composite score, weighting paths by \
     branch flow from the dumps' own CFG descriptions. Dumps of \
     different program versions are made comparable by routing the \
     candidate through the stale matcher."
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const action $ a_arg $ b_arg $ output_arg)

(* {2 daemon control} *)

let socket_arg =
  let doc = "Path of the daemon's Unix-domain socket." in
  Arg.(
    required & opt (some string) None & info [ "socket" ] ~docv:"SOCKET" ~doc)

let daemon_cmd =
  let op_arg =
    let doc = "One of $(b,ping), $(b,status) or $(b,shutdown)." in
    Arg.(
      required
      & pos 0 (some (enum [ ("ping", `Ping); ("status", `Status);
                            ("shutdown", `Shutdown) ])) None
      & info [] ~docv:"OP" ~doc)
  in
  let deadline_arg =
    let doc = "Deadline for the control request, in milliseconds." in
    Arg.(value & opt int 5_000 & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let action op socket deadline_ms =
    handle_errors (fun () ->
        let req =
          match op with
          | `Ping -> Daemon_ops.Ping
          | `Status -> Daemon_ops.Status
          | `Shutdown -> Daemon_ops.Shutdown
        in
        match Daemon_client.call ~socket ~deadline_ms req with
        | Ok (body, meta) ->
            if meta = [] then Format.printf "%s@." body
            else Format.printf "%a@." Jsonx.pp (Jsonx.Obj meta)
        | Error Daemon_client.Timeout ->
            Format.eprintf "%a@." Diagnostic.pp
              (Daemon_client.failure_diagnostic Daemon_client.Timeout);
            exit Daemon_client.Exit.request_timeout
        | Error f ->
            Format.eprintf "%a@." Diagnostic.pp
              (Daemon_client.failure_diagnostic f);
            exit Daemon_client.Exit.daemon_unreachable)
  in
  let doc =
    "Control a resident $(b,pppd) daemon: $(b,ping) checks liveness, \
     $(b,status) prints the daemon's JSON status (workers, restarts, \
     queue depth, store entries, quarantined entries), $(b,shutdown) \
     asks it to stop. Exits 10 when the daemon is unreachable and 11 on \
     a deadline."
  in
  Cmd.v (Cmd.info "daemon" ~doc)
    Term.(const action $ op_arg $ socket_arg $ deadline_arg)

(* {2 chaos} *)

let chaos_cmd =
  let dir_arg =
    let doc =
      "Scratch directory for the daemon under test (socket, store, log); \
       created if missing, inspectable afterwards."
    in
    Arg.(value & opt string "_chaos" & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let seed_arg =
    let doc = "Seed for every random choice the harness makes." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let chaos_scale_arg =
    let doc = "Workload scale used by the harness's collect requests." in
    Arg.(value & opt int 2 & info [ "scale" ] ~doc)
  in
  let output_arg =
    let doc = "Write the JSON report here (stdout otherwise)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  let action dir seed scale output =
    handle_errors (fun () ->
        let report = Daemon_chaos.run ~seed ~scale ~dir () in
        List.iter
          (fun (p : Daemon_chaos.phase) ->
            Format.eprintf "%-16s %s  %s@." p.Daemon_chaos.name
              (if p.Daemon_chaos.ok then "ok" else "FAIL")
              p.Daemon_chaos.detail)
          report.Daemon_chaos.phases;
        let json =
          Jsonx.to_string (Daemon_chaos.report_json report) ^ "\n"
        in
        (match output with
        | None -> print_string json
        | Some path -> write_file path json);
        if not report.Daemon_chaos.passed then exit 2)
  in
  let doc =
    "Boot a real $(b,pppd) in a scratch directory and attack it: crash \
     workers mid-request, stall them past their deadlines, abuse the \
     socket with garbage and dribbled frames, SIGKILL the daemon and \
     corrupt its store on disk. Asserts the daemon never corrupts the \
     store, never hangs a client, and serves byte-identical canonical \
     profiles after every restart. Prints a JSON report; exits non-zero \
     if any phase fails."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const action $ dir_arg $ seed_arg $ chaos_scale_arg $ output_arg)

(* {2 benches} *)

let benches_cmd =
  let action () =
    List.iter
      (fun (b : Ppp_workloads.Spec.bench) ->
        Format.printf "%-10s (%s)@." b.Ppp_workloads.Spec.bench_name
          (match b.Ppp_workloads.Spec.kind with
          | Ppp_workloads.Spec.Int -> "integer"
          | Ppp_workloads.Spec.Fp -> "floating-point"))
      Ppp_workloads.Spec.all
  in
  let doc = "List the built-in SPEC2000-shaped workloads." in
  Cmd.v (Cmd.info "benches" ~doc) Term.(const action $ const ())

let () =
  Printexc.record_backtrace true;
  let doc = "practical path profiling for dynamic optimizers" in
  let info = Cmd.info "pppc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            profile_cmd;
            stats_cmd;
            instrument_cmd;
            collect_cmd;
            merge_cmd;
            opt_cmd;
            dot_cmd;
            emit_cmd;
            report_cmd;
            compare_cmd;
            benches_cmd;
            fuzz_profile_cmd;
            daemon_cmd;
            chaos_cmd;
          ]))
