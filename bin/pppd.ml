(* pppd: the resident profile service.

   Owns a persistent content-addressed artifact store and a pool of
   supervised worker subprocesses, and serves collect/merge/opt requests
   from [pppc --daemon] over a Unix-domain socket. See Ppp_daemon.Server
   for the robustness contract. *)

module Server = Ppp_daemon.Server
open Cmdliner

let socket_arg =
  let doc = "Unix-domain socket to listen on." in
  Arg.(
    value
    & opt string (Filename.concat "." "pppd.sock")
    & info [ "socket" ] ~docv:"PATH" ~doc)

let store_arg =
  let doc =
    "Directory of the persistent artifact store (created if missing): \
     profiles, merges, optimized programs and placement plans survive \
     daemon restarts here."
  in
  Arg.(
    value
    & opt string (Filename.concat "." "pppd-store")
    & info [ "store" ] ~docv:"DIR" ~doc)

let workers_arg =
  let doc = "Supervised worker subprocesses." in
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)

let queue_arg =
  let doc =
    "Requests queued (beyond the in-flight ones) before new requests are \
     shed with a degradation reply."
  in
  Arg.(value & opt int 16 & info [ "queue-limit" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc = "Default deadline for requests that do not carry one (ms)." in
  Arg.(value & opt int 30_000 & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let chaos_arg =
  let doc =
    "Accept the chaos-only Stall/Crash requests (fault-injection tests \
     only; never enable on a daemon you care about)."
  in
  Arg.(value & flag & info [ "chaos-ops" ] ~doc)

let seed_arg =
  let doc = "Seed of the worker-restart jitter RNG." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let quiet_arg =
  let doc = "Suppress the per-event log on stderr." in
  Arg.(value & flag & info [ "quiet" ] ~doc)

let main socket_path store_dir workers queue_limit default_deadline_ms chaos_ops
    seed quiet =
  try
    Server.run
      {
        Server.socket_path;
        store_dir;
        workers;
        queue_limit;
        default_deadline_ms;
        chaos_ops;
        seed;
        quiet;
      }
  with Unix.Unix_error (e, fn, arg) ->
    Format.eprintf "pppd: cannot start: %s%s: %s@." fn
      (if arg = "" then "" else Printf.sprintf " %S" arg)
      (Unix.error_message e);
    exit 1

let () =
  let doc = "resident profile service for pppc" in
  let info = Cmd.info "pppd" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const main $ socket_arg $ store_arg $ workers_arg $ queue_arg
            $ deadline_arg $ chaos_arg $ seed_arg $ quiet_arg)))
