(* A low-overhead periodic snapshot ring over the VM's live counters.

   The VM takes one sample roughly every [interval] dynamic
   instructions (measured at fuel-segment granularity, so a sample
   lands at the first segment boundary past the interval). Samples go
   into a fixed-capacity ring: a long run keeps the newest [capacity]
   snapshots and counts the rest as dropped, so memory stays bounded
   however long the program runs. Reading a sample copies seven ints —
   it never touches the heap — which is what keeps the sampling
   overhead within the 2% budget even at small intervals. *)

module Obs = Ppp_obs.Metrics
module Jsonx = Ppp_obs.Jsonx
module Trace = Ppp_obs.Trace

type sample = {
  seq : int;  (** 0-based sample index over the whole run *)
  dyn_instrs : int;
  base_cost : int;
  instr_cost : int;
  dyn_paths : int;
  calls : int;
  depth : int;  (** live activations at sample time *)
}

type t = {
  interval : int;
  capacity : int;
  ring : sample array;
  mutable taken : int;  (** total samples ever recorded *)
}

let m_samples = Obs.counter "vm.telemetry.samples"
let m_dropped = Obs.counter "vm.telemetry.dropped"

let zero_sample =
  {
    seq = 0;
    dyn_instrs = 0;
    base_cost = 0;
    instr_cost = 0;
    dyn_paths = 0;
    calls = 0;
    depth = 0;
  }

let create ?(capacity = 256) ~interval () =
  if interval < 1 then invalid_arg "Telemetry.create: interval must be >= 1";
  if capacity < 1 then invalid_arg "Telemetry.create: capacity must be >= 1";
  { interval; capacity; ring = Array.make capacity zero_sample; taken = 0 }

let interval t = t.interval
let taken t = t.taken
let dropped t = max 0 (t.taken - t.capacity)

let record t ~dyn_instrs ~base_cost ~instr_cost ~dyn_paths ~calls ~depth =
  let s =
    {
      seq = t.taken;
      dyn_instrs;
      base_cost;
      instr_cost;
      dyn_paths;
      calls;
      depth;
    }
  in
  t.ring.(t.taken mod t.capacity) <- s;
  t.taken <- t.taken + 1;
  Obs.incr m_samples;
  if t.taken > t.capacity then Obs.incr m_dropped

let reset t = t.taken <- 0

let samples t =
  let n = min t.taken t.capacity in
  let first = t.taken - n in
  List.init n (fun i -> t.ring.((first + i) mod t.capacity))

let sample_json s =
  Jsonx.Obj
    [
      ("seq", Jsonx.Int s.seq);
      ("dyn_instrs", Jsonx.Int s.dyn_instrs);
      ("base_cost", Jsonx.Int s.base_cost);
      ("instr_cost", Jsonx.Int s.instr_cost);
      ("dyn_paths", Jsonx.Int s.dyn_paths);
      ("calls", Jsonx.Int s.calls);
      ("depth", Jsonx.Int s.depth);
    ]

let to_json t =
  Jsonx.Obj
    [
      ("interval", Jsonx.Int t.interval);
      ("capacity", Jsonx.Int t.capacity);
      ("taken", Jsonx.Int t.taken);
      ("dropped", Jsonx.Int (dropped t));
      ("samples", Jsonx.Arr (List.map sample_json (samples t)));
    ]

(* Counter events carry deterministic virtual timestamps (one
   microsecond per dynamic instruction) so the series plots against
   program progress, not wall clock. *)
let emit_trace_counters ?(name = "vm") t =
  List.iter
    (fun s ->
      let ts_us = float_of_int s.dyn_instrs in
      Trace.counter ~cat:"telemetry" ~ts_us (name ^ ".cost")
        [
          ("base_cost", float_of_int s.base_cost);
          ("instr_cost", float_of_int s.instr_cost);
        ];
      Trace.counter ~cat:"telemetry" ~ts_us (name ^ ".paths")
        [ ("dyn_paths", float_of_int s.dyn_paths) ];
      Trace.counter ~cat:"telemetry" ~ts_us (name ^ ".stack")
        [ ("depth", float_of_int s.depth); ("calls", float_of_int s.calls) ])
    (samples t)

(* {2 Per-routine trip accounting}

   The routine-resolved counters the hot-routine detector runs on: one
   entry count ("trip") per lowered plan, bumped at every frame entry
   and loop back edge the tier controller watches. Dense int arrays
   indexed by the program's routine order, so a bump is one load, one
   store — cheap enough to leave on for a whole tiered run. *)
module Trips = struct
  type nonrec t = { counts : int array; mutable total : int }

  let create ~n =
    if n < 0 then invalid_arg "Telemetry.Trips.create: n must be >= 0";
    { counts = Array.make (max 1 n) 0; total = 0 }

  let bump t i =
    let c = t.counts.(i) + 1 in
    t.counts.(i) <- c;
    t.total <- t.total + 1;
    c

  let count t i = t.counts.(i)
  let total t = t.total

  let to_json ~names t =
    let n = min (Array.length names) (Array.length t.counts) in
    Jsonx.Obj
      [
        ("total", Jsonx.Int t.total);
        ( "routines",
          Jsonx.Obj
            (List.init n (fun i -> (names.(i), Jsonx.Int t.counts.(i)))) );
      ]
end

(* The hot-routine detector the tiered-execution roadmap item will run
   on: per-sample deltas of instruction throughput. A routine-resolved
   version needs per-plan counters; the windowed global rate is what the
   snapshot ring can answer today. *)
let rates t =
  let rec deltas acc = function
    | a :: (b :: _ as rest) ->
        deltas
          ((b.seq, b.dyn_instrs - a.dyn_instrs, b.dyn_paths - a.dyn_paths)
          :: acc)
          rest
    | _ -> List.rev acc
  in
  deltas [] (samples t)
