(* The hotness controller behind tiered in-VM re-optimization.

   Both engines drive one of these through the same protocol: [trip] at
   every frame entry and path-ending back edge; when it answers [true]
   the caller gathers the routine's live path counters and calls [fire],
   which spends budget, asks the planner for a hot-path-first block
   order, and logs the decision. The controller never looks at the
   engine — its state is a pure function of the trip/fire call sequence,
   which is identical across the VM and the reference tree-walker, so
   tier decisions (and the tier.* metrics) are engine-invariant by
   construction. *)

module Obs = Ppp_obs.Metrics

type planner = routine:string -> counters:(int * int) list -> int array option

type spec = { threshold : int; budget : int; plan : planner option }

let default_threshold = 8
let default_budget = max_int

let spec ?(threshold = default_threshold) ?(budget = default_budget) ?plan () =
  if threshold < 1 then invalid_arg "Tier.spec: threshold must be >= 1";
  if budget < 0 then invalid_arg "Tier.spec: budget must be >= 0";
  { threshold; budget; plan }

type decision = {
  d_routine : string;
  d_trips : int;  (** trip count at the moment the routine tiered up *)
  d_gen : int;  (** 1-based optimized-generation number, program-wide *)
  d_reordered : bool;  (** the planner produced a non-source block order *)
  d_order : int array option;
      (** the installed block order itself, for post-run layout scoring *)
}

type t = {
  threshold : int;
  plan : planner option;
  trips : Telemetry.Trips.t;
  tiered : bool array;
  mutable budget_left : int;
  mutable gen : int;
  mutable log_rev : decision list;
  mutable n_denied : int;
  mutable n_entry_swaps : int;
  mutable n_osr_swaps : int;
}

let start (s : spec) ~nroutines =
  {
    threshold = s.threshold;
    plan = s.plan;
    trips = Telemetry.Trips.create ~n:nroutines;
    tiered = Array.make (max 1 nroutines) false;
    budget_left = s.budget;
    gen = 0;
    log_rev = [];
    n_denied = 0;
    n_entry_swaps = 0;
    n_osr_swaps = 0;
  }

(* One bump per watched event. Fires exactly once per routine: at the
   trip that reaches the threshold, and only while budget remains. A
   routine crossing the threshold with the budget exhausted is counted
   as denied once (at the crossing trip), not per subsequent trip. *)
let trip t i =
  let c = Telemetry.Trips.bump t.trips i in
  if c = t.threshold && not t.tiered.(i) then
    if t.budget_left > 0 then true
    else begin
      t.n_denied <- t.n_denied + 1;
      false
    end
  else false

let fire t ~idx ~name ~counters =
  t.tiered.(idx) <- true;
  t.budget_left <- t.budget_left - 1;
  t.gen <- t.gen + 1;
  let order = match t.plan with None -> None | Some f -> f ~routine:name ~counters in
  t.log_rev <-
    {
      d_routine = name;
      d_trips = Telemetry.Trips.count t.trips idx;
      d_gen = t.gen;
      d_reordered = order <> None;
      d_order = order;
    }
    :: t.log_rev;
  order

let is_tiered t i = t.tiered.(i)
let trips t = t.trips
let decisions t = List.rev t.log_rev
let swaps t = t.gen
let note_entry_swap t = t.n_entry_swaps <- t.n_entry_swaps + 1
let note_osr_swap t = t.n_osr_swaps <- t.n_osr_swaps + 1

(* {2 tier.* metric family} *)

let m_trips = Obs.counter "tier.trips"
let m_swaps = Obs.counter "tier.swaps"
let m_reorders = Obs.counter "tier.reorders"
let m_denied = Obs.counter "tier.denied_budget"
let m_entry = Obs.counter "tier.entry_swaps"
let m_osr = Obs.counter "tier.osr_swaps"

let flush_metrics t =
  Obs.add m_trips (Telemetry.Trips.total t.trips);
  Obs.add m_swaps t.gen;
  Obs.add m_reorders
    (List.length (List.filter (fun d -> d.d_reordered) t.log_rev));
  Obs.add m_denied t.n_denied;
  Obs.add m_entry t.n_entry_swaps;
  Obs.add m_osr t.n_osr_swaps
