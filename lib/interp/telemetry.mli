(** Live VM telemetry: a bounded ring of periodic snapshots over the
    executing {!Vm}'s counters.

    Attach a ring to a run through {!Engine.config.telemetry}; the VM
    then records one {!sample} roughly every [interval] dynamic
    instructions (at fuel-segment granularity). Telemetry is off by
    default and — like every {!Ppp_obs.Metrics} instrument — costs one
    load and one predictable branch per straight-line segment when
    disabled. It never perturbs execution: outcomes, profiles and cost
    totals are byte-identical with and without a ring attached, which
    [test_quality] asserts differentially.

    The ring keeps the newest [capacity] samples; older ones are
    dropped (counted, never silently). Export the series as JSON
    ({!to_json}) or as Chrome trace counter events
    ({!emit_trace_counters}). The [vm.telemetry.*] metrics count
    samples taken and dropped when metrics are enabled. *)

type sample = {
  seq : int;  (** 0-based sample index over the whole run *)
  dyn_instrs : int;  (** dynamic instructions executed so far *)
  base_cost : int;
  instr_cost : int;
  dyn_paths : int;
  calls : int;  (** calls executed so far (0 when neither metrics nor
                    telemetry had call counting on) *)
  depth : int;  (** live activations at sample time *)
}

type t

val create : ?capacity:int -> interval:int -> unit -> t
(** A fresh ring. [interval] is the sampling period in dynamic
    instructions (>= 1); [capacity] (default 256) bounds retained
    samples. *)

val interval : t -> int

val record :
  t ->
  dyn_instrs:int ->
  base_cost:int ->
  instr_cost:int ->
  dyn_paths:int ->
  calls:int ->
  depth:int ->
  unit
(** Record one sample (called by the VM; allocation-free on the ring's
    steady state). *)

val reset : t -> unit
(** Forget all samples so the ring can be reused across runs. *)

val taken : t -> int
(** Total samples recorded since creation or {!reset}. *)

val dropped : t -> int
(** Samples evicted by the ring bound. *)

val samples : t -> sample list
(** Retained samples, oldest first. *)

val to_json : t -> Ppp_obs.Jsonx.t
(** [{"interval":..,"capacity":..,"taken":..,"dropped":..,"samples":[..]}]. *)

val emit_trace_counters : ?name:string -> t -> unit
(** Push every retained sample as Chrome counter events ("ph":"C",
    series [NAME.cost], [NAME.paths], [NAME.stack]; default name
    ["vm"]) with deterministic virtual timestamps of one microsecond
    per dynamic instruction. No-op unless {!Ppp_obs.Trace} is
    enabled. *)

val rates : t -> (int * int * int) list
(** Per-window deltas [(seq, d_instrs, d_paths)] between consecutive
    retained samples — the windowed throughput signal a hot-routine
    detector polls. *)

(** Per-routine trip accounting: the routine-resolved counters the
    {!Tier} hotness controller watches. One count per lowered plan,
    bumped at frame entry and at the loop back edges that end a path —
    a dense-array bump, cheap enough to stay on for a whole tiered
    run. Engine-invariant: both the VM and the reference tree-walker
    bump trips at the same program points, which the differential
    suite relies on. *)
module Trips : sig
  type t

  val create : n:int -> t
  (** A fresh table for a program with [n] routines (indexed by the
      program's routine order). *)

  val bump : t -> int -> int
  (** [bump t i] increments routine [i]'s trip count and returns the
      new per-routine count. *)

  val count : t -> int -> int
  (** Trips recorded for routine [i]. *)

  val total : t -> int
  (** Trips recorded across all routines. *)

  val to_json : names:string array -> t -> Ppp_obs.Jsonx.t
  (** [{"total":..,"routines":{name:count,..}}] in routine order. *)
end
