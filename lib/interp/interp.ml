module Graph = Ppp_cfg.Graph
module Loop = Ppp_cfg.Loop
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile
module Path_profile = Ppp_profile.Path_profile

exception Runtime_error = Engine.Runtime_error

let error = Engine.error

type config = Engine.config = {
  fuel : int;
  collect_edges : bool;
  trace_paths : bool;
  instrumentation : Instr_rt.t option;
  overflow_policy : Instr_rt.Table.overflow_policy;
  telemetry : Telemetry.t option;
  layout : (string, int array) Hashtbl.t option;
  sampling : Sampling.spec option;
  tier : Tier.spec option;
}

let default_config = Engine.default_config

type termination = Engine.termination =
  | Finished
  | Out_of_fuel of { stack_depth : int }

type outcome = Engine.outcome = {
  return_value : int option;
  output : int list;
  base_cost : int;
  instr_cost : int;
  dyn_instrs : int;
  dyn_paths : int;
  termination : termination;
  edge_profile : Edge_profile.program option;
  path_profile : Path_profile.program option;
  instr_state : Instr_rt.state option;
  tier_decisions : Tier.decision list;
}

let overhead = Engine.overhead
let exec_binop = Engine.exec_binop

(* ------------------------------------------------------------------ *)
(* The reference engine: a direct tree-walk over the IR. It is the
   executable specification the flat VM is differentially tested
   against, so it stays deliberately simple — one charge per
   instruction, a frame list, a path-edge list per frame. *)

(* Per-routine execution plan, precomputed once per run. *)
type plan = {
  routine : Ir.routine;
  view : Cfg_view.t;
  p_index : int; (* position in the program's routine list — the same
                    index the VM's plan array (and the tier controller)
                    uses for this routine *)
  p_instrumented : bool; (* the routine has instrumentation actions, so
                            the VM gives it a distinct instrumented
                            variant; tells the mirror whether an
                            order-less tier-up still changes streams *)
  is_back : bool array; (* edge -> ends the current path *)
  edge_counts : Edge_profile.t option;
  trace : Path_profile.t option;
  actions : Instr_rt.action array array; (* edge -> actions ([||] = none) *)
  action_costs : int array array; (* parallel to [actions] *)
  table : Instr_rt.Table.t option;
}

type frame = {
  plan : plan;
  regs : int array;
  mutable block : int;
  mutable ip : int;
  mutable f_on : bool; (* bursty sampling: instrumentation actions live *)
  mutable f_tiered : bool; (* this frame runs the routine's post-swap
                              stream (entered after the swap, or crossed
                              onto it at a back-edge OSR point) *)
  mutable path_reg : int;
  mutable path_rev : int list;
  ret_to : Ir.reg option; (* caller register receiving our return value *)
}

type state = {
  plans : (string, plan) Hashtbl.t;
  arrays : (string, int array) Hashtbl.t;
  mutable stack : frame list;
  mutable fuel : int;
  mutable base_cost : int;
  mutable instr_cost : int;
  mutable dyn_instrs : int;
  mutable dyn_paths : int;
  mutable out_rev : int list;
  trace_on : bool;
  obs_on : bool; (* metrics flag, latched at run start *)
  sampler : Sampling.t option; (* bursty collection sampling, None = off *)
  tier : Tier.t option; (* tier controller, mirrored 1:1 with the VM *)
  swapped : bool array; (* routine -> its tier-up changed the executing
                           stream (the VM's [cur <> v_instr] test) *)
  reordered : bool array; (* routine -> its tier-up installed a genuine
                             re-layout (validated exactly as
                             [Lower.tier_up] does) *)
  mutable obs_calls : int;
  obs_actions : int array; (* executions per Instr_rt.action kind *)
}

let make_plan (config : config) instr_tables ~index (r : Ir.routine) =
  let view = Cfg_view.of_routine r in
  let g = Cfg_view.graph view in
  let nedges = Graph.num_edges g in
  let loops = Loop.compute g ~root:(Cfg_view.entry view) in
  let is_back = Array.make (max 1 nedges) false in
  List.iter (fun e -> is_back.(e) <- true) (Loop.breakable_edges loops);
  let edge_counts =
    if config.collect_edges then Some (Edge_profile.create ~nedges) else None
  in
  let trace = if config.trace_paths then Some (Path_profile.create ()) else None in
  let actions, action_costs, table =
    match config.instrumentation with
    | None -> (Array.make (max 1 nedges) [||], Array.make (max 1 nedges) [||], None)
    | Some instr -> (
        match Hashtbl.find_opt instr r.name with
        | None ->
            (Array.make (max 1 nedges) [||], Array.make (max 1 nedges) [||], None)
        | Some ri ->
            let acts = Array.map Array.of_list ri.Instr_rt.edge_actions in
            let costs =
              Array.map
                (Array.map (Cost.action ~table:ri.Instr_rt.table))
                acts
            in
            let tbl =
              match Hashtbl.find_opt instr_tables r.name with
              | Some t -> Some t
              | None -> None
            in
            (acts, costs, tbl))
  in
  let p_instrumented =
    match config.instrumentation with
    | None -> false
    | Some instr -> Hashtbl.mem instr r.name
  in
  {
    routine = r;
    view;
    p_index = index;
    p_instrumented;
    is_back;
    edge_counts;
    trace;
    actions;
    action_costs;
    table;
  }

let eval regs = function Ir.Reg r -> regs.(r) | Ir.Imm i -> i

(* Traverse a CFG edge: bookkeeping for edge profiles, ground-truth path
   tracing, and instrumentation. [ends_path] is true for back edges and
   return edges. *)
let traverse st frame e ~ends_path =
  let plan = frame.plan in
  (match plan.edge_counts with Some c -> Edge_profile.incr c e | None -> ());
  if st.trace_on then begin
    frame.path_rev <- e :: frame.path_rev;
    if ends_path then begin
      (match plan.trace with
      | Some t -> Path_profile.record t (List.rev frame.path_rev)
      | None -> ());
      st.dyn_paths <- st.dyn_paths + 1;
      frame.path_rev <- []
    end
  end;
  (* Off-burst, the frame behaves as if uninstrumented: no actions, no
     instr cost. Mirrors the VM executing the plain opcode stream, whose
     edge_ops carry empty action lists. *)
  let acts = if frame.f_on then plan.actions.(e) else [||] in
  if Array.length acts > 0 then begin
    let costs = plan.action_costs.(e) in
    for i = 0 to Array.length acts - 1 do
      st.instr_cost <- st.instr_cost + costs.(i);
      if st.obs_on then begin
        let k = Instr_rt.action_index acts.(i) in
        st.obs_actions.(k) <- st.obs_actions.(k) + 1
      end;
      match acts.(i) with
      | Instr_rt.Set_r v -> frame.path_reg <- v
      | Instr_rt.Add_r v -> frame.path_reg <- frame.path_reg + v
      | Instr_rt.Count_r -> (
          match plan.table with
          | Some t -> Instr_rt.Table.bump t frame.path_reg
          | None -> ())
      | Instr_rt.Count_r_plus v | Instr_rt.Count_checked_plus v -> (
          match plan.table with
          | Some t -> Instr_rt.Table.bump t (frame.path_reg + v)
          | None -> ())
      | Instr_rt.Count_const v -> (
          match plan.table with
          | Some t -> Instr_rt.Table.bump t v
          | None -> ())
      | Instr_rt.Count_checked -> (
          match plan.table with
          | Some t -> Instr_rt.Table.bump t frame.path_reg
          | None -> ())
    done
  end

let run_reference ~(config : config) (p : Ir.program) =
  Engine.validate_call_arities p;
  let instr_tables =
    match config.instrumentation with
    | Some instr -> Instr_rt.init_state ~policy:config.overflow_policy instr
    | None -> Hashtbl.create 1
  in
  let plans = Hashtbl.create 17 in
  List.iteri
    (fun i r ->
      Hashtbl.replace plans r.Ir.name (make_plan config instr_tables ~index:i r))
    p.routines;
  let arrays = Hashtbl.create 7 in
  List.iter (fun (name, size) -> Hashtbl.replace arrays name (Array.make size 0)) p.arrays;
  (* Same normalization as the VM: sampling only gates instrumentation
     actions, so it is inert without instrumentation. *)
  let sampler =
    match (config.sampling, config.instrumentation) with
    | Some spec, Some _ -> Some (Sampling.start spec)
    | _ -> None
  in
  (* Same normalization again for tiering (see [Vm.run]). *)
  let nroutines = List.length p.routines in
  let tier =
    match (config.tier, config.instrumentation) with
    | Some spec, Some _ -> Some (Tier.start spec ~nroutines)
    | _ -> None
  in
  let st =
    {
      plans;
      arrays;
      stack = [];
      fuel = config.fuel;
      base_cost = 0;
      instr_cost = 0;
      dyn_instrs = 0;
      dyn_paths = 0;
      out_rev = [];
      trace_on = config.trace_paths;
      obs_on = Engine.Obs.enabled ();
      sampler;
      tier;
      swapped = Array.make (max 1 nroutines) false;
      reordered = Array.make (max 1 nroutines) false;
      obs_calls = 0;
      obs_actions = Array.make Instr_rt.num_action_kinds 0;
    }
  in
  (* The mirror of [Vm.tier_fire]: gather the routine's live path
     counters, let the controller decide, and record what the swap
     changed — with the planner's order validated exactly as
     [Lower.tier_up] validates it, so the mirror's notion of "the
     executing stream changed" is the VM's [cur <> v_instr] test. *)
  let ref_fire (plan : plan) tc =
    let counters =
      match plan.table with
      | None -> []
      | Some t ->
          let acc = ref [] in
          Instr_rt.Table.iter_nonzero t (fun k c -> acc := (k, c) :: !acc);
          List.rev !acc
    in
    let order =
      Tier.fire tc ~idx:plan.p_index ~name:plan.routine.Ir.name ~counters
    in
    let reordered =
      match order with
      | Some o ->
          Lower.valid_order ~nblocks:(Array.length plan.routine.Ir.blocks) o
          && not (Lower.is_identity_order o)
      | None -> false
    in
    st.reordered.(plan.p_index) <- reordered;
    st.swapped.(plan.p_index) <- reordered || plan.p_instrumented
  in
  let new_frame name ret_to =
    let plan =
      match Hashtbl.find_opt st.plans name with
      | Some pl -> pl
      | None -> error "unknown routine %s" name
    in
    (* The frame-entry variant-resolution point, in the VM's canonical
       order: (1) tier trip — the fire may swap this very routine right
       now; (2) the sampling tick, ALWAYS taken when a sampler exists,
       so burst chronology is independent of tier decisions; (3) the
       resolution — a tiered routine's frames run its post-swap stream
       with instrumentation off, otherwise the burst decision picks
       between the instrumented and plain streams. *)
    (match st.tier with
    | Some tc -> if Tier.trip tc plan.p_index then ref_fire plan tc
    | None -> ());
    let on =
      match st.sampler with None -> true | Some s -> Sampling.tick s
    in
    let tiered = st.swapped.(plan.p_index) in
    (match st.tier with
    | Some tc -> if tiered then Tier.note_entry_swap tc
    | None -> ());
    {
      plan;
      regs = Array.make plan.routine.Ir.nregs 0;
      block = 0;
      ip = 0;
      f_on = on && not tiered;
      f_tiered = tiered;
      path_reg = 0;
      path_rev = [];
      ret_to;
    }
  in
  (* The back-edge variant-resolution point, mirroring [Vm.redecide]
     move for move: tier trip first (the fire may swap this routine),
     then the unconditional sampling tick, then the resolution. A swap
     wins over the burst decision: the first back edge a pre-swap frame
     takes after its routine tiers up crosses it onto the post-swap
     stream (OSR) and turns instrumentation off for good. The traversed
     edge's old path is already recorded, so the new mode applies from
     the path beginning at the loop header. On a sampling off->on swap,
     re-arm the path register with the initialization suffix (the
     actions after the last counting one) of the instrumented edge — the
     count itself belongs to the off-burst stretch and is not
     recorded. *)
  let redecide frame e =
    let plan = frame.plan in
    (match st.tier with
    | Some tc -> if Tier.trip tc plan.p_index then ref_fire plan tc
    | None -> ());
    let on =
      match st.sampler with None -> frame.f_on | Some s -> Sampling.tick s
    in
    if st.swapped.(plan.p_index) then begin
      if not frame.f_tiered then begin
        (* The VM notes an OSR swap only when the frame's stream
           actually changes: an off-burst frame already on the plain
           stream is bitwise where an order-less tier-up lands it. *)
        (match st.tier with
        | Some tc ->
            if frame.f_on || st.reordered.(plan.p_index) then
              Tier.note_osr_swap tc
        | None -> ());
        frame.f_tiered <- true;
        frame.f_on <- false
      end
    end
    else if on <> frame.f_on then
      if not on then frame.f_on <- false
      else begin
        frame.f_on <- true;
        let acts = plan.actions.(e) in
        let n = Array.length acts in
        let rec after_last_count i acc =
          if i >= n then acc
          else
            match acts.(i) with
            | Instr_rt.Set_r _ | Instr_rt.Add_r _ ->
                after_last_count (i + 1) acc
            | _ -> after_last_count (i + 1) (i + 1)
        in
        let i0 = after_last_count 0 0 in
        frame.path_reg <- 0;
        for i = i0 to n - 1 do
          match acts.(i) with
          | Instr_rt.Set_r v -> frame.path_reg <- v
          | Instr_rt.Add_r v -> frame.path_reg <- frame.path_reg + v
          | _ -> ()
        done
      end
  in
  let return_value = ref None in
  let main_frame = new_frame p.main None in
  st.stack <- [ main_frame ];
  let charge c =
    st.base_cost <- st.base_cost + c;
    st.dyn_instrs <- st.dyn_instrs + 1;
    st.fuel <- st.fuel - 1;
    if st.fuel <= 0 then raise Engine.Exhausted
  in
  let array_ref name idx =
    let arr =
      match Hashtbl.find_opt st.arrays name with
      | Some a -> a
      | None -> error "unknown array %s" name
    in
    if idx < 0 || idx >= Array.length arr then
      error "array %s index %d out of bounds (size %d)" name idx (Array.length arr);
    arr
  in
  let exec_frame frame =
    let blocks = frame.plan.routine.Ir.blocks in
    let block = blocks.(frame.block) in
    if frame.ip < Array.length block.Ir.instrs then begin
      let ins = block.Ir.instrs.(frame.ip) in
      frame.ip <- frame.ip + 1;
      charge (Cost.instr ins);
      match ins with
      | Ir.Mov (d, v) -> frame.regs.(d) <- eval frame.regs v
      | Ir.Binop (d, op, a, b) ->
          frame.regs.(d) <- exec_binop op (eval frame.regs a) (eval frame.regs b)
      | Ir.Load (d, arr, idx) ->
          let i = eval frame.regs idx in
          frame.regs.(d) <- (array_ref arr i).(i)
      | Ir.Store (arr, idx, v) ->
          let i = eval frame.regs idx in
          (array_ref arr i).(i) <- eval frame.regs v
      | Ir.Out v -> st.out_rev <- eval frame.regs v :: st.out_rev
      | Ir.Call (dst, callee, args) ->
          st.base_cost <- st.base_cost + Cost.call_overhead;
          if st.obs_on then st.obs_calls <- st.obs_calls + 1;
          let callee_frame = new_frame callee dst in
          List.iteri (fun i a -> callee_frame.regs.(i) <- eval frame.regs a) args;
          st.stack <- callee_frame :: st.stack
    end
    else begin
      charge (Cost.terminator block.Ir.term);
      let view = frame.plan.view in
      match block.Ir.term with
      | Ir.Jump l ->
          let e = Cfg_view.jump_edge view frame.block in
          traverse st frame e ~ends_path:frame.plan.is_back.(e);
          if frame.plan.is_back.(e) then redecide frame e;
          frame.block <- l;
          frame.ip <- 0
      | Ir.Branch (c, l1, l2) ->
          let taken = eval frame.regs c <> 0 in
          let e = Cfg_view.branch_edge view frame.block ~taken in
          traverse st frame e ~ends_path:frame.plan.is_back.(e);
          if frame.plan.is_back.(e) then redecide frame e;
          frame.block <- (if taken then l1 else l2);
          frame.ip <- 0
      | Ir.Return v ->
          let e = Cfg_view.return_edge view frame.block in
          traverse st frame e ~ends_path:true;
          let value = Option.map (eval frame.regs) v in
          st.stack <- List.tl st.stack;
          (match st.stack with
          | caller :: _ -> (
              match (frame.ret_to, value) with
              | Some d, Some x -> caller.regs.(d) <- x
              | Some d, None -> caller.regs.(d) <- 0
              | None, _ -> ())
          | [] -> return_value := value)
    end
  in
  let termination =
    (* Fuel exhaustion is an expected production condition, not a fault:
       stop where we are and report everything collected so far. *)
    try
      while st.stack <> [] do
        exec_frame (List.hd st.stack)
      done;
      Finished
    with Engine.Exhausted -> Out_of_fuel { stack_depth = List.length st.stack }
  in
  let edge_profile =
    if config.collect_edges then begin
      let prog = Edge_profile.create_program p in
      Hashtbl.iter
        (fun name plan ->
          match plan.edge_counts with
          | Some c ->
              Graph.iter_edges (Cfg_view.graph plan.view) (fun e ->
                  Edge_profile.add (Edge_profile.routine prog name) e
                    (Edge_profile.freq c e))
          | None -> ())
        st.plans;
      Some prog
    end
    else None
  in
  let path_profile =
    if config.trace_paths then begin
      let prog = Path_profile.create_program p in
      Hashtbl.iter
        (fun name plan ->
          match plan.trace with
          | Some t ->
              let dst = Path_profile.routine prog name in
              Path_profile.iter t (fun path n -> Path_profile.add dst path n)
          | None -> ())
        st.plans;
      Some prog
    end
    else None
  in
  if st.obs_on then begin
    Engine.flush_metrics ~fuel:config.fuel ~termination ~fuel_left:st.fuel
      ~base_cost:st.base_cost ~instr_cost:st.instr_cost
      ~dyn_instrs:st.dyn_instrs ~dyn_paths:st.dyn_paths ~calls:st.obs_calls
      ~actions:st.obs_actions;
    (match st.sampler with
    | Some s ->
        Instr_rt.flush_sample_metrics ~on_ticks:(Sampling.on_ticks s)
          ~off_ticks:(Sampling.off_ticks s) ~bursts:(Sampling.bursts s)
    | None -> ());
    match st.tier with Some tc -> Tier.flush_metrics tc | None -> ()
  end;
  {
    return_value = !return_value;
    output = List.rev st.out_rev;
    base_cost = st.base_cost;
    instr_cost = st.instr_cost;
    dyn_instrs = st.dyn_instrs;
    dyn_paths = st.dyn_paths;
    termination;
    edge_profile;
    path_profile;
    instr_state = (if Option.is_some config.instrumentation then Some instr_tables else None);
    tier_decisions =
      (match st.tier with Some tc -> Tier.decisions tc | None -> []);
  }

(* ------------------------------------------------------------------ *)

type engine = Vm | Reference

let run ?(config = default_config) ?(engine = Vm) ?cache (p : Ir.program) =
  match engine with
  | Vm -> Vm.run ?cache ~config p
  | Reference -> run_reference ~config p
