(* Bursty sampling controller: on for [burst] ticks out of every
   [denom * burst], phase seeded so runs replay byte-identically and
   fleet shards decorrelate. See sampling.mli for the vocabulary note
   distinguishing this from Telemetry's ring sampling. *)

type spec = { denom : int; burst : int; seed : int }

let infinite_burst = max_int
let default_burst = 4

let spec ?(burst = default_burst) ?(seed = 0) ~denom () =
  if denom < 1 then invalid_arg "Sampling.spec: denom < 1";
  if burst < 1 then invalid_arg "Sampling.spec: burst < 1";
  { denom; burst; seed }

type t = {
  burst : int;
  gap : int;
  always_on : bool;
  mutable on : bool;
  mutable left : int;  (* ticks remaining in the current phase *)
  mutable n_on : int;
  mutable n_off : int;
  mutable n_bursts : int;
}

(* SplitMix64: one draw is enough to place the initial phase uniformly
   within a period. The constants are the reference ones. *)
let splitmix64 (x : int64) : int64 =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let start (s : spec) =
  let always_on = s.denom <= 1 in
  let infinite = s.burst >= infinite_burst - 1 in
  if always_on || infinite then
    {
      burst = s.burst;
      gap = 0;
      always_on = true;
      on = true;
      left = max_int;
      n_on = 0;
      n_off = 0;
      n_bursts = 1;
    }
  else begin
    let gap = (s.denom - 1) * s.burst in
    let period = s.burst + gap in
    let draw = splitmix64 (Int64.of_int s.seed) in
    let phase =
      Int64.to_int (Int64.rem (Int64.logand draw Int64.max_int)
                      (Int64.of_int period))
    in
    if phase < s.burst then
      {
        burst = s.burst;
        gap;
        always_on = false;
        on = true;
        left = s.burst - phase;
        n_on = 0;
        n_off = 0;
        n_bursts = 1;
      }
    else
      {
        burst = s.burst;
        gap;
        always_on = false;
        on = false;
        left = period - phase;
        n_on = 0;
        n_off = 0;
        n_bursts = 0;
      }
  end

let tick t =
  if t.always_on then begin
    t.n_on <- t.n_on + 1;
    true
  end
  else begin
    if t.left <= 0 then
      if t.on then begin
        t.on <- false;
        t.left <- t.gap
      end
      else begin
        t.on <- true;
        t.left <- t.burst;
        t.n_bursts <- t.n_bursts + 1
      end;
    t.left <- t.left - 1;
    if t.on then t.n_on <- t.n_on + 1 else t.n_off <- t.n_off + 1;
    t.on
  end

let on_ticks t = t.n_on
let off_ticks t = t.n_off
let bursts t = t.n_bursts

let parse_rate s =
  let invalid () = Error (Printf.sprintf "invalid sampling rate %S" s) in
  match String.index_opt s '/' with
  | Some i -> (
      let num = String.sub s 0 i in
      let den = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt num, int_of_string_opt den) with
      | Some 1, Some d when d >= 1 -> Ok d
      | _ -> invalid ())
  | None -> (
      match int_of_string_opt s with
      | Some d when d >= 1 -> Ok d
      | _ -> invalid ())

let rate_to_string denom =
  if denom <= 1 then "1" else Printf.sprintf "1/%d" denom
