(** The pre-lowering pass: compiles each routine, once per run, into the
    contiguous opcode array executed by {!Vm}.

    Everything resolvable ahead of time is resolved at lower time:
    operand shapes become distinct opcodes, array names become direct
    [int array] references, per-instruction charges are batched into one
    {!op.Fuel} opcode per straight-line segment (with a parallel per-op
    cost table for the exact remainder bill on fuel exhaustion),
    terminators are fused with their edge bookkeeping, and each edge's
    instrumentation is specialized into {!pre_action}s with the frequency
    table already in hand. Register indices are validated here so the VM
    can use unchecked register accesses; an out-of-range index lowers to
    a lazily-faulting {!op.Trap}, and unknown array/routine names lower
    to opcodes raising the reference engine's exact errors. *)

type arr = { arr_name : string; data : int array }

type pre_action =
  | Set_reg of int
  | Add_reg of int
  | Bump of Instr_rt.Table.t
  | Bump_plus of Instr_rt.Table.t * int
  | Bump_const of Instr_rt.Table.t * int
  | Bump_none  (** counting action on an uninstrumented routine *)

type edge_ops = {
  edge : int;
  ends_path : bool;
  acts : pre_action array;
  acts_cost : int;  (** precomputed total {!Cost.action} of the list *)
  act_kinds : int array;  (** {!Instr_rt.action_index} per action *)
}

type op =
  | Fuel of { count : int; cost : int }
      (** charge the next [count] ops (total [cost]) in one update *)
  | Mov_i of { dst : int; imm : int }
  | Mov_r of { dst : int; src : int }
  | Bin_rr of { dst : int; op : Ppp_ir.Ir.binop; a : int; b : int }
  | Bin_ri of { dst : int; op : Ppp_ir.Ir.binop; a : int; imm : int }
  | Bin_ir of { dst : int; op : Ppp_ir.Ir.binop; imm : int; b : int }
  | Bin_ii of { dst : int; op : Ppp_ir.Ir.binop; ia : int; ib : int }
  | Load_r of { dst : int; data : int array; arr : arr; idx : int }
  | Load_i of { dst : int; data : int array; arr : arr; idx : int }
  | Store_rr of { data : int array; arr : arr; idx : int; src : int }
  | Store_ri of { data : int array; arr : arr; idx : int; imm : int }
  | Store_ir of { data : int array; arr : arr; iidx : int; src : int }
  | Store_ii of { data : int array; arr : arr; iidx : int; imm : int }
      (** [data == arr.data]: the backing array is inlined in the opcode
          so the hot path skips one indirection; [arr] carries the name
          and is only touched on a bounds error *)
  | Out_r of { src : int }
  | Out_i of { imm : int }
  | Call of {
      dst : int;
      callee : int;
      arg_regs : int array;
      arg_vals : int array;
    }
      (** [dst = -1] discards the result; [callee] is a plan index.
          Argument [i] comes from register [arg_regs.(i)] when that is
          [>= 0], else from the immediate [arg_vals.(i)]. *)
  | Unknown_array of { name : string }
  | Unknown_routine of { name : string }
  | Trap of { msg : string }
  | Jump of { target : int; edge : edge_ops }
  | Branch_r of {
      cond : int;
      then_ : int;
      then_edge : edge_ops;
      else_ : int;
      else_edge : edge_ops;
    }
  | Branch_const of { target : int; edge : edge_ops }
  | Return_r of { src : int; edge : edge_ops }
  | Return_i of { imm : int; edge : edge_ops }
  | Return_none of { edge : edge_ops }

(** One lowered body of a routine. A plan carries a whole table of
    these: the [Instrumented]/[Plain] pair produced by specialization
    (identical length, offsets and costs — only terminator actions
    differ, so bursty sampling swaps a frame between them mid-run with
    every pc still valid), plus any [Optimized] generations minted by
    {!tier_up} (full re-lowerings under a hot-path-first block order
    with instrumentation stripped; same block set and per-block opcode
    runs, so a frame crosses onto one at any block boundary by mapping
    its position through the two [v_offsets] tables). *)
type variant_kind = Instrumented | Plain | Optimized of int

type variant = {
  v_kind : variant_kind;
  v_code : op array;
  v_costs : int array;  (** per-op charge, parallel to [v_code] *)
  v_offsets : int array;  (** block index -> offset of its first op *)
}

type plan = {
  routine : Ppp_ir.Ir.routine;
  view : Ppp_ir.Cfg_view.t;
  mutable variants : variant array;
      (** every lowered body of this routine; grown by {!tier_up} *)
  v_instr : int;
      (** the variant new frames enter while collecting; [= v_plain]
          when the routine is uninstrumented *)
  v_plain : int;  (** the structural (uninstrumented) stream *)
  mutable cur : int;
      (** the variant new frames resolve to once tiered: starts at
          [v_instr]; a tier-up swap moves it. [cur <> v_instr] is the
          "routine has tiered up" test at both variant-resolution
          points ({!Vm} frame entry and back-edge OSR). *)
  r_id : int;  (** this routine's plan index in its program *)
  nregs : int;
  edge_counts : Ppp_profile.Edge_profile.t option;
  intern : Ppp_profile.Path_profile.Intern.table option;
}

type program = {
  plans : plan array;
  index : (string, int) Hashtbl.t;
  main : int;
  arrays : (string, arr) Hashtbl.t;
}

(** {2 Block layout} *)

val valid_order : nblocks:int -> int array -> bool
(** [valid_order ~nblocks order] holds when [order] is a permutation of
    [0 .. nblocks-1] with the entry block first — the only orders the
    lowering will honor ([order.(0) = 0] keeps every frame's first opcode
    at offset 0, the invariant {!Vm} starts frames on). Invalid orders
    are ignored defensively, never an error: layout is a hint. *)

val is_identity_order : int array -> bool
(** Whether [order] is [0; 1; ...; n-1] — i.e. source order, the layout
    every routine gets without a hint. Identity orders are normalized to
    "no layout" so structurally cached plans are shared. *)

(** {2 Structural-plan cache}

    Lowering is split into a {e structural} half (the full opcode array
    with empty instrumentation actions — pure in the routine body) and a
    {e specialization} step that rebuilds only the terminator opcodes to
    attach a run's instrumentation pre-actions. A cache memoizes
    structural plans across runs, keyed by routine name and validated by
    ([Ppp_resilience.Fingerprint.routine], [nregs], environment
    signature); the environment signature covers the routine name order
    and the array set, because Call opcodes embed callee plan indices
    and Load/Store opcodes embed backing-array refs. Mutable run state
    (array contents, edge counters, intern tables) is recreated or wiped
    per run, so cached runs are byte-identical to cold ones.

    Cache traffic is observable through the [session.lower.*] metrics:
    [hit], [miss] (also counted for uncached runs — a cold run is all
    misses), [specialize], and [env_flush]. *)

type cache

val create_cache : unit -> cache

val set_analysis : cache -> (Ppp_ir.Ir.routine -> Ppp_ir.Cfg_view.t * Ppp_cfg.Loop.t) -> unit
(** Provide the CFG view and loop nest for routines being lowered, so a
    session's memoized analyses are reused instead of recomputed on a
    structural miss. The callback must return artifacts for exactly the
    routine given. *)

val program :
  ?cache:cache ->
  config:Engine.config ->
  instr_tables:Instr_rt.state ->
  Ppp_ir.Ir.program ->
  program
(** Lower every routine, reusing structural plans from [cache] when
    their fingerprints still match. Raises {!Engine.Runtime_error} if
    [main] is unknown (matching the reference engine). *)

val structural_variant : plan -> variant
(** The plan's structural (plain) variant. *)

val tier_up : ?cache:cache -> program -> idx:int -> order:int array option -> gen:int -> unit
(** Mid-run tier-up of routine [idx]: retire its instrumented variant
    for optimized generation [gen]. With a genuine (valid,
    non-identity) [order], re-lowers the routine under that block order
    — against the program's live arrays, so it is safe mid-execution —
    and appends the result to the variant table; otherwise the plain
    variant already is the optimized body. Only the plan's [cur] slot
    moves: frames in flight keep their entry-time variant until their
    next OSR point, and no other routine is touched. [cache] supplies
    memoized CFG/loop analyses, never code (the order is baked into
    opcodes, so tier-up lowerings are not cached). Counts one
    [session.lower.tier_up] per re-lowering. *)
