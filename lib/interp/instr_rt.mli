(** Runtime representation of path-profiling instrumentation.

    The instrumenters in [ppp_core] compile a routine down to this form:
    a list of actions attached to each CFG edge, executed by the
    interpreter as the edge is traversed, operating on a per-activation
    path register [r] and a per-routine frequency table. This module only
    defines the representation and the tables; placement lives in
    [ppp_core], execution in {!Interp}. *)

type action =
  | Set_r of int  (** [r = v]: path-register initialization or poison *)
  | Add_r of int  (** [r += v] *)
  | Count_r  (** [count\[r\]++] *)
  | Count_r_plus of int  (** [count\[r+v\]++] (a combined [r+=v; count\[r\]++]) *)
  | Count_const of int  (** [count\[v\]++] (fully combined; cheapest) *)
  | Count_checked  (** TPP poison test: [if r < 0 then cold++ else count\[r\]++] *)
  | Count_checked_plus of int
      (** [if r+v < 0 then cold++ else count\[r+v\]++] *)

type table_kind =
  | Array_table of int  (** direct-indexed array of the given size *)
  | Hash_table  (** 701 slots, 3 tries of double hashing (Section 7.4) *)

type routine_instr = {
  edge_actions : action list array;  (** indexed by CFG edge id *)
  table : table_kind;
  num_paths : int;  (** [N], the number of numbered (hot) paths *)
}

type t = (string, routine_instr) Hashtbl.t
(** Instrumentation per routine name; routines absent from the table are
    uninstrumented. *)

val no_instrumentation : unit -> t

val num_action_kinds : int

val action_index : action -> int
(** Dense index of the action's constructor, in [0, num_action_kinds);
    used to aggregate per-kind execution counts cheaply. *)

val action_kind_name : int -> string
(** Metric-friendly name for an {!action_index}, e.g. ["count_r_plus"].
    @raise Invalid_argument outside [0, num_action_kinds). *)

(** {2 Frequency tables}

    When [Ppp_obs.Metrics] is enabled, {!Table.bump} also feeds the
    global [rt.*] counters: [rt.table.cold], [rt.table.lost],
    [rt.lost_paths] (every dropped path execution, under any policy),
    [rt.table.overflow], [rt.table.saturations], [rt.array.bumps],
    [rt.hash.bumps], [rt.hash.probes] (slot inspections),
    [rt.hash.inserts] and [rt.hash.collisions.try1..3]
    (occupied-by-another-path slots at each double-hashing try). *)

module Table : sig
  type t

  type overflow_policy =
    | Drop
        (** a path execution the table cannot attribute (array index out
            of range, all three hash tries occupied) is dropped — but
            still counted in {!lost} and [rt.lost_paths], never
            silently *)
    | Overflow_bin of { cap : int }
        (** graceful degradation: unattributable executions accumulate in
            a single bounded overflow bin (so {!dynamic_total} stays
            exact); when the bin reaches [cap] the table is marked
            {!saturated} and further drops fall back to {!lost} *)

  val default_overflow_cap : int

  val create : ?policy:overflow_policy -> table_kind -> t
  (** Default policy is [Drop] (the paper's behavior). *)

  val bump : t -> int -> unit
  (** Count one execution of the given path number. Negative numbers
      (TPP-style poison reaching an unchecked count) are recorded in the
      cold counter. *)

  val bump_cold : t -> unit
  val get : t -> int -> int
  val cold : t -> int

  val lost : t -> int
  (** Paths dropped and not preserved anywhere (Section 7.4 hash
      give-up, array overflow under [Drop], or overflow past the bin's
      cap). *)

  val overflow : t -> int
  (** Executions preserved in the overflow bin ([Overflow_bin] only). *)

  val saturated : t -> bool
  (** True once the overflow bin has hit its cap. *)

  val policy : t -> overflow_policy

  val iter_nonzero : t -> (int -> int -> unit) -> unit
  (** [iter_nonzero t f] calls [f path_number count] for every recorded
      nonzero entry. *)

  val dynamic_total : t -> int
  (** Sum of all counts including cold, lost and overflow. *)
end

(** {2 Sampled collection}

    The bursty sampling mode's metric family ([rt.sample.*], distinct
    from {!Telemetry}'s ring vocabulary): [rt.sample.on_ticks] and
    [rt.sample.off_ticks] (ticks spent collecting vs. running plain
    code), [rt.sample.bursts] (bursts entered),
    [rt.sample.scaled_mass] (estimated mass added by count recovery)
    and [rt.sample.saturations] (recoveries clamped at [max_int]). *)

val flush_sample_metrics : on_ticks:int -> off_ticks:int -> bursts:int -> unit
(** Feed one sampled run's controller totals into [rt.sample.*]. *)

val scaled_count : denom:int -> int -> int
(** [scaled_count ~denom c] estimates the unsampled count behind [c]
    observations at sampling rate [1/denom]: [c * denom], saturating at
    [max_int] (counted in [rt.sample.saturations]) instead of wrapping.
    Identity when [denom <= 1] or [c <= 0]. *)

type state = (string, Table.t) Hashtbl.t

val init_state : ?policy:Table.overflow_policy -> t -> state

val pp_action : Format.formatter -> action -> unit
(** Render an action in the paper's notation, e.g. ["r=3"], ["r+=2"],
    ["count[r+1]++"], ["if r<0 cold++ else count[r]++"]. *)

val pp_table_kind : Format.formatter -> table_kind -> unit
