(** Bursty sampling controller for profile collection.

    This is the *collection*-side sampling mode (metric family
    [rt.sample.*], CLI flag [--sample-rate]); it is unrelated to
    {!Telemetry}'s ring sampling, which snapshots observability counters
    and keeps its own vocabulary.

    A sampled run alternates bursts of fully-instrumented execution with
    gaps in which instrumented routines execute their *uninstrumented*
    opcode stream. With sampling rate [1/denom] and burst length [B], the
    controller is on for [B] ticks out of every [denom * B]; a tick is a
    unit of path collection — a frame entry or a loop back-edge — so over
    a long run roughly [1/denom] of all dynamic paths are recorded.
    Recovered counts are scaled back by [denom]
    (see {!Instr_rt.scaled_count}) to estimate the full profile.

    The on/off phase is seeded (SplitMix64), so a given [(spec, program)]
    pair replays byte-identically, while distinct shard seeds decorrelate
    which paths each member of a fleet observes. *)

type spec = {
  denom : int;  (** sampling rate denominator: record 1 of every [denom] ticks. [<= 1] means always on. *)
  burst : int;  (** consecutive on-ticks per burst; {!infinite_burst} never turns off once on. *)
  seed : int;  (** phase seed; distinct seeds start the burst cycle at decorrelated offsets. *)
}

val infinite_burst : int
(** Burst length meaning "once on, never turn off" ([max_int]). With
    [denom = 1] this reproduces unsampled collection exactly. *)

val spec : ?burst:int -> ?seed:int -> denom:int -> unit -> spec
(** [spec ~denom ()] with [burst] defaulting to {!default_burst} and
    [seed] to 0. Raises [Invalid_argument] if [denom < 1] or
    [burst < 1]. *)

val default_burst : int
(** Default burst length (4 ticks) — short enough that single-frame
    hot-loop workloads still interleave on and off stretches. *)

type t
(** A live controller: one per run, mutable. *)

val start : spec -> t
(** Fresh controller with its phase drawn from the seed: the first tick
    lands uniformly within one on/off period. *)

val tick : t -> bool
(** Advance one tick and return whether collection is on for the unit of
    execution beginning now. Constant-time: one decrement on the fast
    path, a branch only at burst boundaries. *)

val on_ticks : t -> int
(** Ticks answered "on" so far. *)

val off_ticks : t -> int
(** Ticks answered "off" so far. *)

val bursts : t -> int
(** Number of bursts entered so far (counting an initial on-phase). *)

val parse_rate : string -> (int, string) result
(** Parse a [--sample-rate] argument: ["1"] or ["1/16"] (or a bare
    denominator ["16"]) to the denominator. *)

val rate_to_string : int -> string
(** [1 -> "1"], [16 -> "1/16"]. *)
