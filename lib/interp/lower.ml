(* The pre-lowering pass: compile each routine, once per run, into a
   contiguous opcode array the VM can dispatch on without touching the
   AST again. Lowering resolves everything resolvable ahead of time:

   - operand shapes become distinct opcodes (register indices and
     immediates inlined, no [Ir.operand] match at runtime);
   - array names become direct [int array] references;
   - per-instruction fuel/cost charges are batched: each straight-line
     run of pure instructions is prefixed by a single [Fuel] opcode
     carrying the run's instruction count and total cost (the parallel
     [costs] array keeps the per-op charges so fuel exhaustion can bill
     an exact remainder — see [Vm]);
   - terminators are fused with their edge bookkeeping: the edge id,
     whether it ends the current path, the specialized instrumentation
     actions and their precomputed total cost all sit in the opcode;
   - register indices are validated here, so the VM may use unchecked
     register accesses; an out-of-range index lowers to a [Trap] that
     faults only if executed, like the reference engine's lazy error.

   Calls and unknown names stay lazy: a [Call] charges for itself (it can
   push a frame, so it cannot sit inside a batched segment), and unknown
   arrays/routines lower to raising opcodes with the reference engine's
   exact messages.

   Lowering is split in two so its expensive half can be memoized across
   runs: the *structural* plan (everything above, with empty
   instrumentation actions) depends only on the routine body, its
   register file, and the program environment (routine order, arrays);
   *specialization* rebuilds just the terminator opcodes to attach the
   run's instrumentation pre-actions. A {!cache} keyed by routine
   fingerprint keeps structural plans warm between runs; mutable run
   state (edge counters, path intern tables, array contents) is always
   fresh, so a cached run is byte-identical to a cold one. *)

module Graph = Ppp_cfg.Graph
module Loop = Ppp_cfg.Loop
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile
module Path_profile = Ppp_profile.Path_profile
module Fingerprint = Ppp_resilience.Fingerprint
module Obs = Ppp_obs.Metrics

let m_lower_hit = Obs.counter "session.lower.hit"
let m_lower_miss = Obs.counter "session.lower.miss"
let m_lower_specialize = Obs.counter "session.lower.specialize"
let m_lower_env_flush = Obs.counter "session.lower.env_flush"

type arr = { arr_name : string; data : int array }

(* [Instr_rt.action] with the table resolved: the VM's traverse loop
   matches on these without the per-action table-option match. *)
type pre_action =
  | Set_reg of int
  | Add_reg of int
  | Bump of Instr_rt.Table.t (* Count_r / Count_checked *)
  | Bump_plus of Instr_rt.Table.t * int (* Count_r_plus / Count_checked_plus *)
  | Bump_const of Instr_rt.Table.t * int (* Count_const *)
  | Bump_none (* counting action on an uninstrumented routine *)

type edge_ops = {
  edge : int;
  ends_path : bool;
  acts : pre_action array;
  acts_cost : int; (* total Cost.action of the list *)
  act_kinds : int array; (* Instr_rt.action_index per action, for metrics *)
}

type op =
  | Fuel of { count : int; cost : int }
      (* charge for the next [count] ops at once; total cost [cost] *)
  | Mov_i of { dst : int; imm : int }
  | Mov_r of { dst : int; src : int }
  | Bin_rr of { dst : int; op : Ir.binop; a : int; b : int }
  | Bin_ri of { dst : int; op : Ir.binop; a : int; imm : int }
  | Bin_ir of { dst : int; op : Ir.binop; imm : int; b : int }
  | Bin_ii of { dst : int; op : Ir.binop; ia : int; ib : int }
  | Load_r of { dst : int; data : int array; arr : arr; idx : int }
  | Load_i of { dst : int; data : int array; arr : arr; idx : int }
  | Store_rr of { data : int array; arr : arr; idx : int; src : int }
  | Store_ri of { data : int array; arr : arr; idx : int; imm : int }
  | Store_ir of { data : int array; arr : arr; iidx : int; src : int }
  | Store_ii of { data : int array; arr : arr; iidx : int; imm : int }
      (* data == arr.data, inlined so the hot path skips an indirection;
         arr is only touched on a bounds error *)
  | Out_r of { src : int }
  | Out_i of { imm : int }
  | Call of {
      dst : int;
      callee : int;
      arg_regs : int array;
      arg_vals : int array;
    }
      (* dst = -1 when the result is discarded; callee = plan index;
         arg i reads register arg_regs.(i) when >= 0, else the
         immediate arg_vals.(i) *)
  | Unknown_array of { name : string }
  | Unknown_routine of { name : string }
  | Trap of { msg : string }
      (* ill-formed instruction (register out of range); faults lazily *)
  | Jump of { target : int; edge : edge_ops }
  | Branch_r of {
      cond : int;
      then_ : int;
      then_edge : edge_ops;
      else_ : int;
      else_edge : edge_ops;
    }
  | Branch_const of { target : int; edge : edge_ops }
      (* Branch on an immediate condition: one arm, still branch-priced *)
  | Return_r of { src : int; edge : edge_ops }
  | Return_i of { imm : int; edge : edge_ops }
  | Return_none of { edge : edge_ops }

(* A routine may carry several lowered bodies at once — the variant
   table. [Instrumented] and [Plain] are the specialize_code pair:
   identical length, offsets and costs (only terminator actions differ),
   so bursty sampling swaps a frame between them mid-run with every pc
   still valid. [Optimized] generations are full re-lowerings under a
   hot-path-first block order with instrumentation stripped: same block
   set, same per-block opcode runs (segments never span blocks), only
   placement differs, so a frame crosses onto one at any block boundary
   by mapping its target through the two offset tables. *)
type variant_kind = Instrumented | Plain | Optimized of int

type variant = {
  v_kind : variant_kind;
  v_code : op array;
  v_costs : int array;
      (* per-op charge, parallel to [v_code] (0 for Fuel); the exact
         remainder bill when fuel runs out mid-segment *)
  v_offsets : int array; (* block index -> offset of its first op *)
}

type plan = {
  routine : Ir.routine;
  view : Cfg_view.t;
  mutable variants : variant array;
      (* every lowered body of this routine; grown by [tier_up] *)
  v_instr : int;
      (* the variant new frames enter while collecting: the specialized
         [Instrumented] stream, or [v_plain] when uninstrumented *)
  v_plain : int; (* the structural (uninstrumented) stream *)
  mutable cur : int;
      (* the variant new frames resolve to once tiered: starts at
         [v_instr]; a tier-up swap retargets it at an [Optimized]
         generation (or [v_plain] when only stripping instrumentation).
         [cur <> v_instr] is the "this routine has tiered up" test both
         the frame-entry and back-edge OSR resolution points use. *)
  r_id : int; (* this routine's plan index in its program *)
  nregs : int;
  edge_counts : Edge_profile.t option;
  intern : Path_profile.Intern.table option;
}

type program = {
  plans : plan array;
  index : (string, int) Hashtbl.t; (* routine name -> plan index *)
  main : int;
  arrays : (string, arr) Hashtbl.t;
}

let compile_action table act =
  match (act, table) with
  | Instr_rt.Set_r v, _ -> Set_reg v
  | Instr_rt.Add_r v, _ -> Add_reg v
  | (Instr_rt.Count_r | Instr_rt.Count_checked), Some t -> Bump t
  | ( (Instr_rt.Count_r_plus v | Instr_rt.Count_checked_plus v),
      Some t ) ->
      Bump_plus (t, v)
  | Instr_rt.Count_const v, Some t -> Bump_const (t, v)
  | ( ( Instr_rt.Count_r | Instr_rt.Count_checked | Instr_rt.Count_r_plus _
      | Instr_rt.Count_checked_plus _ | Instr_rt.Count_const _ ),
      None ) ->
      Bump_none

(* A block emission order is usable only if it is a genuine permutation
   of the routine's blocks that keeps the entry block at opcode offset 0
   (both engines start every frame at pc 0). Anything else — stale
   table from an older program, wrong length, duplicate entries — is
   silently ignored rather than trusted: layout is an optimization hint,
   never a correctness input. *)
let valid_order ~nblocks order =
  Array.length order = nblocks
  && nblocks > 0
  && order.(0) = 0
  &&
  let seen = Array.make nblocks false in
  Array.for_all
    (fun b ->
      b >= 0 && b < nblocks
      &&
      if seen.(b) then false
      else begin
        seen.(b) <- true;
        true
      end)
    order

let is_identity_order order =
  let n = Array.length order in
  let rec go i = i >= n || (order.(i) = i && go (i + 1)) in
  go 0

(* Lower one routine structurally: full opcode array, costs and edge
   bookkeeping, but every edge's action list empty. Instrumentation is
   attached later by [specialize_plan], so this half is pure in the
   routine body and can be cached across runs.

   [order], when given, is the block emission order (a validated
   permutation with the entry first): the hot path's blocks land
   contiguously and cold blocks sink to the array tail. Only opcode
   *placement* changes — [block_offset] is recorded per block and the
   target-patching pass below resolves branch targets through it, so
   the executed instruction stream is identical for every order. *)
let lower_structural ?analysis ?order ~arrays ~routine_index (r : Ir.routine) =
  let view, loops =
    match analysis with
    | Some f -> f r
    | None ->
        let view = Cfg_view.of_routine r in
        let g = Cfg_view.graph view in
        (view, Loop.compute g ~root:(Cfg_view.entry view))
  in
  let g = Cfg_view.graph view in
  let nedges = Graph.num_edges g in
  let is_back = Array.make (max 1 nedges) false in
  List.iter (fun e -> is_back.(e) <- true) (Loop.breakable_edges loops);
  let edge_ops ~ends_path e =
    { edge = e; ends_path; acts = [||]; acts_cost = 0; act_kinds = [||] }
  in
  (* Emission: [pending] accumulates the current straight-line run of
     pure ops (with their individual charges); [flush] prefixes it with
     one Fuel op covering the run plus, optionally, the terminator. *)
  let ops_rev = ref [] in
  let costs_rev = ref [] in
  let n_ops = ref 0 in
  let emit op cost =
    ops_rev := op :: !ops_rev;
    costs_rev := cost :: !costs_rev;
    incr n_ops
  in
  let pending = ref [] in
  let pend op cost = pending := (op, cost) :: !pending in
  let flush ~term =
    let items = List.rev !pending in
    pending := [];
    let items = match term with None -> items | Some oc -> items @ [ oc ] in
    match items with
    | [] -> ()
    | _ ->
        let count = List.length items in
        let cost = List.fold_left (fun acc (_, c) -> acc + c) 0 items in
        emit (Fuel { count; cost }) 0;
        List.iter (fun (op, c) -> emit op c) items
  in
  let ok_reg x = x >= 0 && x < r.Ir.nregs in
  let ok_operand = function Ir.Reg x -> ok_reg x | Ir.Imm _ -> true in
  let ill_formed (ins : Ir.instr) =
    (* The checks mirror Ppp_ir.Check's register-range rules; anything
       that fails them may not be executed with unchecked accesses. *)
    match ins with
    | Ir.Mov (d, v) -> not (ok_reg d && ok_operand v)
    | Ir.Binop (d, _, a, b) -> not (ok_reg d && ok_operand a && ok_operand b)
    | Ir.Load (d, _, idx) -> not (ok_reg d && ok_operand idx)
    | Ir.Store (_, idx, v) -> not (ok_operand idx && ok_operand v)
    | Ir.Call (dst, _, args) ->
        not
          (Option.fold ~none:true ~some:ok_reg dst
          && List.for_all ok_operand args)
    | Ir.Out v -> not (ok_operand v)
  in
  let arr_of name = Hashtbl.find_opt arrays name in
  let lower_instr (ins : Ir.instr) =
    let c = Cost.instr ins in
    if ill_formed ins then
      pend
        (Trap
           {
             msg =
               Format.asprintf "routine %s: register out of range (nregs=%d)"
                 r.Ir.name r.Ir.nregs;
           })
        c
    else
      match ins with
      | Ir.Mov (d, Ir.Imm i) -> pend (Mov_i { dst = d; imm = i }) c
      | Ir.Mov (d, Ir.Reg s) -> pend (Mov_r { dst = d; src = s }) c
      | Ir.Binop (d, op, a, b) -> (
          match (a, b) with
          | Ir.Reg a, Ir.Reg b -> pend (Bin_rr { dst = d; op; a; b }) c
          | Ir.Reg a, Ir.Imm b -> pend (Bin_ri { dst = d; op; a; imm = b }) c
          | Ir.Imm a, Ir.Reg b -> pend (Bin_ir { dst = d; op; imm = a; b }) c
          | Ir.Imm a, Ir.Imm b -> pend (Bin_ii { dst = d; op; ia = a; ib = b }) c)
      | Ir.Load (d, name, idx) -> (
          match arr_of name with
          | None -> pend (Unknown_array { name }) c
          | Some arr -> (
              let data = arr.data in
              match idx with
              | Ir.Reg s -> pend (Load_r { dst = d; data; arr; idx = s }) c
              | Ir.Imm i -> pend (Load_i { dst = d; data; arr; idx = i }) c))
      | Ir.Store (name, idx, v) -> (
          match arr_of name with
          | None -> pend (Unknown_array { name }) c
          | Some arr -> (
              let data = arr.data in
              match (idx, v) with
              | Ir.Reg i, Ir.Reg s ->
                  pend (Store_rr { data; arr; idx = i; src = s }) c
              | Ir.Reg i, Ir.Imm m ->
                  pend (Store_ri { data; arr; idx = i; imm = m }) c
              | Ir.Imm i, Ir.Reg s ->
                  pend (Store_ir { data; arr; iidx = i; src = s }) c
              | Ir.Imm i, Ir.Imm m ->
                  pend (Store_ii { data; arr; iidx = i; imm = m }) c)
          )
      | Ir.Out (Ir.Reg s) -> pend (Out_r { src = s }) c
      | Ir.Out (Ir.Imm i) -> pend (Out_i { imm = i }) c
      | Ir.Call (dst, callee, args) -> (
          (* A call can push a frame, so it charges for itself: close the
             current segment first. *)
          flush ~term:None;
          match Hashtbl.find_opt routine_index callee with
          | None -> emit (Unknown_routine { name = callee }) c
          | Some idx ->
              emit
                (Call
                   {
                     dst = (match dst with Some d -> d | None -> -1);
                     callee = idx;
                     arg_regs =
                       Array.of_list
                         (List.map
                            (function Ir.Reg r -> r | Ir.Imm _ -> -1)
                            args);
                     arg_vals =
                       Array.of_list
                         (List.map
                            (function Ir.Reg _ -> 0 | Ir.Imm v -> v)
                            args);
                   })
                c)
  in
  let lower_term bi (b : Ir.block) =
    let c = Cost.terminator b.Ir.term in
    match b.Ir.term with
    | Ir.Jump l ->
        let e = Cfg_view.jump_edge view bi in
        flush
          ~term:(Some (Jump { target = l; edge = edge_ops ~ends_path:is_back.(e) e }, c))
    | Ir.Branch (cond, l1, l2) -> (
        let e1 = Cfg_view.branch_edge view bi ~taken:true in
        let e2 = Cfg_view.branch_edge view bi ~taken:false in
        let then_edge = edge_ops ~ends_path:is_back.(e1) e1 in
        let else_edge = edge_ops ~ends_path:is_back.(e2) e2 in
        match cond with
        | Ir.Reg cr when ok_reg cr ->
            flush
              ~term:
                (Some
                   ( Branch_r
                       { cond = cr; then_ = l1; then_edge; else_ = l2; else_edge },
                     c ))
        | Ir.Reg _ ->
            flush
              ~term:
                (Some
                   ( Trap
                       {
                         msg =
                           Format.asprintf
                             "routine %s: register out of range (nregs=%d)"
                             r.Ir.name r.Ir.nregs;
                       },
                     c ))
        | Ir.Imm v ->
            let target, edge =
              if v <> 0 then (l1, then_edge) else (l2, else_edge)
            in
            flush ~term:(Some (Branch_const { target; edge }, c)))
    | Ir.Return v -> (
        let e = Cfg_view.return_edge view bi in
        let edge = edge_ops ~ends_path:true e in
        match v with
        | Some (Ir.Reg s) when ok_reg s ->
            flush ~term:(Some (Return_r { src = s; edge }, c))
        | Some (Ir.Reg _) ->
            flush
              ~term:
                (Some
                   ( Trap
                       {
                         msg =
                           Format.asprintf
                             "routine %s: register out of range (nregs=%d)"
                             r.Ir.name r.Ir.nregs;
                       },
                     c ))
        | Some (Ir.Imm i) -> flush ~term:(Some (Return_i { imm = i; edge }, c))
        | None -> flush ~term:(Some (Return_none { edge }, c)))
  in
  let nblocks = Array.length r.Ir.blocks in
  let block_offset = Array.make nblocks 0 in
  let emission =
    match order with
    | Some o when valid_order ~nblocks o -> o
    | _ -> Array.init nblocks (fun i -> i)
  in
  Array.iter
    (fun bi ->
      let b = r.Ir.blocks.(bi) in
      block_offset.(bi) <- !n_ops;
      Array.iter lower_instr b.Ir.instrs;
      lower_term bi b)
    emission;
  let code = Array.of_list (List.rev !ops_rev) in
  let costs = Array.of_list (List.rev !costs_rev) in
  (* Second pass: patch block-index targets to opcode offsets. *)
  let code =
    Array.map
      (function
        | Jump { target; edge } -> Jump { target = block_offset.(target); edge }
        | Branch_const { target; edge } ->
            Branch_const { target = block_offset.(target); edge }
        | Branch_r { cond; then_; then_edge; else_; else_edge } ->
            Branch_r
              {
                cond;
                then_ = block_offset.(then_);
                then_edge;
                else_ = block_offset.(else_);
                else_edge;
              }
        | op -> op)
      code
  in
  {
    routine = r;
    view;
    variants =
      [| { v_kind = Plain; v_code = code; v_costs = costs; v_offsets = block_offset } |];
    v_instr = 0;
    v_plain = 0;
    cur = 0;
    r_id =
      (match Hashtbl.find_opt routine_index r.Ir.name with
      | Some i -> i
      | None -> 0);
    nregs = r.Ir.nregs;
    edge_counts = None;
    intern = None;
  }

let structural_variant (p : plan) = p.variants.(p.v_plain)

(* Rebuild only the terminator opcodes of a structural plan, attaching
   the run's instrumentation actions. Everything else — including the
   Fuel segmentation and the per-op cost table — is instrumentation-
   independent (action costs are charged by [Vm.traverse] from
   [acts_cost]), so the arrays are shared. *)
let specialize_code ~ri ~table (splan : plan) =
  Obs.incr m_lower_specialize;
  let spec (eo : edge_ops) =
    match ri.Instr_rt.edge_actions.(eo.edge) with
    | [] -> eo
    | src_acts ->
        {
          eo with
          acts = Array.of_list (List.map (compile_action table) src_acts);
          acts_cost = Cost.actions ~table:ri.Instr_rt.table src_acts;
          act_kinds = Array.of_list (List.map Instr_rt.action_index src_acts);
        }
  in
  Array.map
    (function
      | Jump { target; edge } -> Jump { target; edge = spec edge }
      | Branch_r { cond; then_; then_edge; else_; else_edge } ->
          Branch_r
            {
              cond;
              then_;
              then_edge = spec then_edge;
              else_;
              else_edge = spec else_edge;
            }
      | Branch_const { target; edge } -> Branch_const { target; edge = spec edge }
      | Return_r { src; edge } -> Return_r { src; edge = spec edge }
      | Return_i { imm; edge } -> Return_i { imm; edge = spec edge }
      | Return_none { edge } -> Return_none { edge = spec edge }
      | op -> op)
    (structural_variant splan).v_code

(* ------------------------------------------------------------------ *)
(* Structural-plan cache.

   Validity of a cached plan is (fingerprint, nregs, environment
   signature): the fingerprint covers the blocks and CFG edges but not
   the register file, and Call opcodes embed callee *plan indices* and
   Load/Store opcodes embed backing-array refs, so any change to the
   routine name order or the array set flushes the whole cache. *)

type centry = {
  fp : int;
  c_nregs : int;
  c_order : int array option;
      (* block emission order the plan was lowered under; [None] for the
         source order. Offsets are baked into the opcodes, so a plan is
         only reusable under the exact same order. *)
  splan : plan;
}

type cache = {
  structs : (string, centry) Hashtbl.t;
  cached_arrays : (string, arr) Hashtbl.t;
  mutable env_sig : int;
  mutable analysis : (Ir.routine -> Ppp_ir.Cfg_view.t * Loop.t) option;
}

let create_cache () =
  {
    structs = Hashtbl.create 17;
    cached_arrays = Hashtbl.create 7;
    env_sig = min_int;
    analysis = None;
  }

let set_analysis c f = c.analysis <- Some f

let env_signature (p : Ir.program) =
  let h = ref 17 in
  let mix x = h := (!h * 1000003) lxor Hashtbl.hash x in
  mix p.Ir.main;
  List.iter (fun (r : Ir.routine) -> mix r.Ir.name) p.Ir.routines;
  List.iter
    (fun (name, size) ->
      mix name;
      mix size)
    p.Ir.arrays;
  !h

let program ?cache ~(config : Engine.config) ~instr_tables (p : Ir.program) =
  let analysis, arrays, structs =
    match cache with
    | None -> (None, Hashtbl.create 7, None)
    | Some c ->
        let s = env_signature p in
        if c.env_sig <> s then begin
          if Hashtbl.length c.structs > 0 then Obs.incr m_lower_env_flush;
          Hashtbl.reset c.structs;
          Hashtbl.reset c.cached_arrays;
          c.env_sig <- s
        end;
        (c.analysis, c.cached_arrays, Some c.structs)
  in
  (* Cached structural plans embed these exact array refs, so the slots
     are kept and their contents wiped at the start of every run. *)
  List.iter
    (fun (name, size) ->
      match Hashtbl.find_opt arrays name with
      | Some a when Array.length a.data = size -> Array.fill a.data 0 size 0
      | _ ->
          Hashtbl.replace arrays name
            { arr_name = name; data = Array.make size 0 })
    p.Ir.arrays;
  let index = Hashtbl.create 17 in
  List.iteri (fun i (r : Ir.routine) -> Hashtbl.replace index r.Ir.name i) p.Ir.routines;
  (* The requested emission order, validated and with the identity
     normalized away: a layout that changes nothing shares the plain
     plan (and its cache entry) instead of forking it. *)
  let order_of (r : Ir.routine) =
    match config.Engine.layout with
    | None -> None
    | Some tbl -> (
        match Hashtbl.find_opt tbl r.Ir.name with
        | Some o
          when valid_order ~nblocks:(Array.length r.Ir.blocks) o
               && not (is_identity_order o) ->
            Some o
        | _ -> None)
  in
  let structural (r : Ir.routine) =
    let order = order_of r in
    match structs with
    | None ->
        Obs.incr m_lower_miss;
        lower_structural ?analysis ?order ~arrays ~routine_index:index r
    | Some tbl -> (
        let fp = Fingerprint.routine r in
        match Hashtbl.find_opt tbl r.Ir.name with
        | Some e when e.fp = fp && e.c_nregs = r.Ir.nregs && e.c_order = order
          ->
            Obs.incr m_lower_hit;
            e.splan
        | _ ->
            Obs.incr m_lower_miss;
            let splan =
              lower_structural ?analysis ?order ~arrays ~routine_index:index r
            in
            Hashtbl.replace tbl r.Ir.name
              { fp; c_nregs = r.Ir.nregs; c_order = order; splan };
            splan)
  in
  let plans =
    Array.of_list
      (List.map
         (fun (r : Ir.routine) ->
           let splan = structural r in
           let sv = structural_variant splan in
           (* The run's variant table is always a fresh array (and the
              plan a fresh record): [tier_up] swaps [cur] and appends
              variants mid-run, and neither may leak into the cached
              structural plan shared with the next run. *)
           let variants, v_instr, v_plain =
             match config.Engine.instrumentation with
             | None -> ([| sv |], 0, 0)
             | Some instr -> (
                 match Hashtbl.find_opt instr r.Ir.name with
                 | None -> ([| sv |], 0, 0)
                 | Some ri ->
                     let table = Hashtbl.find_opt instr_tables r.Ir.name in
                     let icode = specialize_code ~ri ~table splan in
                     ( [|
                         {
                           v_kind = Instrumented;
                           v_code = icode;
                           v_costs = sv.v_costs;
                           v_offsets = sv.v_offsets;
                         };
                         sv;
                       |],
                       0,
                       1 ))
           in
           let nedges = Graph.num_edges (Cfg_view.graph splan.view) in
           {
             splan with
             variants;
             v_instr;
             v_plain;
             cur = v_instr;
             edge_counts =
               (if config.Engine.collect_edges then
                  Some (Edge_profile.create ~nedges)
                else None);
             intern =
               (if config.Engine.trace_paths then
                  Some (Path_profile.Intern.create ())
                else None);
           })
         p.Ir.routines)
  in
  let main =
    match Hashtbl.find_opt index p.Ir.main with
    | Some i -> i
    | None -> Engine.error "unknown routine %s" p.Ir.main
  in
  { plans; index; main; arrays }

(* ------------------------------------------------------------------ *)
(* Mid-run tier-up: retire routine [idx]'s instrumented variant for an
   optimized generation. With a genuine block order this re-lowers the
   routine structurally (against the program's live array refs — only
   opcode placement changes, never contents) and appends the result to
   the variant table; with no order the plain variant already is the
   optimized body (instrumentation stripped, current placement kept).
   Either way only [cur] moves: frames in flight keep their entry-time
   variant until their next back-edge OSR point, and the swap never
   touches any other routine's plan. *)

let m_lower_tier = Obs.counter "session.lower.tier_up"

let tier_up ?cache (prog : program) ~idx ~order ~gen =
  let plan = prog.plans.(idx) in
  let r = plan.routine in
  let order =
    match order with
    | Some o
      when valid_order ~nblocks:(Array.length r.Ir.blocks) o
           && not (is_identity_order o) ->
        Some o
    | _ -> None
  in
  match order with
  | None -> plan.cur <- plan.v_plain
  | Some _ ->
      Obs.incr m_lower_tier;
      let analysis = Option.bind cache (fun c -> c.analysis) in
      let splan =
        lower_structural ?analysis ?order ~arrays:prog.arrays
          ~routine_index:prog.index r
      in
      let sv = structural_variant splan in
      plan.variants <-
        Array.append plan.variants [| { sv with v_kind = Optimized gen } |];
      plan.cur <- Array.length plan.variants - 1
