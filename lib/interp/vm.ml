(* The flat VM: executes the opcode arrays produced by [Lower] with a
   growable, recycled frame array instead of a frame list, a reusable
   int buffer per frame instead of a [path_rev] list, and one fuel/cost
   update per straight-line segment instead of one per instruction.

   The engine must be byte-identical to the reference tree-walker in
   [Interp] — same outcomes, profiles, table state and metrics — which
   pins down two delicate spots:

   - Fuel. The reference charges each instruction *before* executing it
     and raises [Exhausted] the moment fuel hits zero, so the last
     charged instruction never runs. A [Fuel] opcode covering [count]
     ops takes the fast path only when [fuel > count]; otherwise
     [exhaust] bills the exact remainder from the per-op cost table,
     executes the fully-paid prefix, and raises — reproducing the
     reference's charged-but-not-executed final instruction.

   - Register accesses are unchecked ([Lower] validated the indices, and
     out-of-range instructions lower to [Trap]); array accesses keep
     their semantic bounds check with the reference engine's message. *)

module Graph = Ppp_cfg.Graph
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile
module Path_profile = Ppp_profile.Path_profile
module E = Engine
module L = Lower

type frame = {
  mutable plan : L.plan;
  mutable f_var : int; (* index into plan.variants this frame executes *)
  mutable fcode : L.op array; (* = plan.variants.(f_var).v_code *)
  mutable fcosts : int array; (* = plan.variants.(f_var).v_costs *)
      (* The stream this frame is executing — its entry-time variant
         until a resolution point (frame entry / back-edge OSR) swaps
         it. Instrumented<->plain swaps are offset-identical; a swap
         onto an optimized generation retargets the pc through the two
         offset tables (see [retarget]). *)
  mutable f_on : bool; (* executing the instrumented variant on-burst *)
  mutable regs : int array;
  mutable pc : int; (* saved resume point while a callee runs *)
  mutable path_reg : int;
  mutable pbuf : int array; (* current path's edges *)
  mutable plen : int;
  mutable ret_to : int; (* caller register for our result; -1 = none *)
}

type state = {
  plans : L.plan array;
  prog : L.program; (* the lowered program, for mid-run tier-up *)
  lcache : L.cache option; (* memoized analyses for tier-up lowering *)
  itables : Instr_rt.state; (* live tables: the tier planner's input *)
  mutable frames : frame array; (* recycled; [0, depth) are live *)
  mutable depth : int;
  mutable fuel : int;
  fuel0 : int; (* the budget, so consumed = fuel0 - fuel *)
  mutable base_cost : int;
  mutable instr_cost : int;
  mutable dyn_paths : int;
  mutable out_rev : int list;
  prof_on : bool; (* any edge counting, path tracing or instrumentation *)
  trace_on : bool;
  obs_on : bool; (* metrics flag, latched at run start *)
  count_calls : bool; (* metrics or telemetry want the call total *)
  sampler : Sampling.t option; (* bursty collection sampling, None = off *)
  tier : Tier.t option; (* hotness controller, None = untiered *)
  redecide_on : bool;
      (* sampler or tier present: gate the per-back-edge re-decision *)
  tele : Telemetry.t option; (* latched snapshot ring, None = off *)
  mutable tele_left : int; (* instructions until the next sample *)
  mutable obs_calls : int;
  obs_actions : int array;
  mutable ret_value : int option;
}

(* One periodic snapshot: copy the live counters into the ring. Runs at
   fuel-segment granularity, only when a ring is attached, and reads
   state without writing any of it — execution is byte-identical with
   telemetry on and off. *)
let tele_sample st t =
  st.tele_left <- Telemetry.interval t;
  Telemetry.record t ~dyn_instrs:(st.fuel0 - st.fuel) ~base_cost:st.base_cost
    ~instr_cost:st.instr_cost ~dyn_paths:st.dyn_paths ~calls:st.obs_calls
    ~depth:st.depth

let fresh_frame plan =
  let v = plan.L.variants.(plan.L.cur) in
  {
    plan;
    f_var = plan.L.cur;
    fcode = v.L.v_code;
    fcosts = v.L.v_costs;
    f_on = true;
    regs = Array.make (max 1 plan.L.nregs) 0;
    (* Every frame begins at opcode offset 0: the lowering keeps the
       entry block there under every block layout (Lower.valid_order),
       so frame entry needs no pc mapping even across variants. *)
    pc = 0;
    path_reg = 0;
    pbuf = Array.make 64 0;
    plen = 0;
    ret_to = -1;
  }

(* A routine tripped the tier threshold: gather its live path counters,
   let the controller (and its planner) decide the optimized block
   order, and install the new current variant. Only this routine's plan
   is touched — analysis of untouched routines never blocks the
   interpreter. *)
let tier_fire st (plan : L.plan) tc =
  let counters =
    match Hashtbl.find_opt st.itables plan.L.routine.Ir.name with
    | None -> []
    | Some tbl ->
        let acc = ref [] in
        Instr_rt.Table.iter_nonzero tbl (fun k c -> acc := (k, c) :: !acc);
        List.rev !acc
  in
  let order =
    Tier.fire tc ~idx:plan.L.r_id ~name:plan.L.routine.Ir.name ~counters
  in
  L.tier_up ?cache:st.lcache st.prog ~idx:plan.L.r_id ~order
    ~gen:(Tier.swaps tc)

(* Push a zeroed frame for [plan], recycling the slot's arrays. The
   first [nargs] registers are about to be overwritten by the caller's
   argument copy, so only the rest needs zeroing.

   This is one of the two variant-resolution points (the other is
   [redecide] at loop back edges), and both engines follow the same
   canonical order: (1) the tier trip — a routine crossing the
   threshold right here already enters optimized code; (2) the sampling
   tick, unconditionally when a sampler is attached — its chronology is
   independent of tier state, so tiering never loses or shifts bursts;
   (3) the resolution itself — a tiered routine's current variant wins,
   otherwise the burst decision picks instrumented vs plain. *)
let enter st plan ~nargs ret_to =
  if st.depth = Array.length st.frames then begin
    let bigger = Array.make (2 * st.depth) st.frames.(0) in
    Array.blit st.frames 0 bigger 0 st.depth;
    for i = st.depth to Array.length bigger - 1 do
      bigger.(i) <- fresh_frame plan
    done;
    st.frames <- bigger
  end;
  let f = st.frames.(st.depth) in
  st.depth <- st.depth + 1;
  f.plan <- plan;
  (match st.tier with
  | Some tc -> if Tier.trip tc plan.L.r_id then tier_fire st plan tc
  | None -> ());
  let on =
    match st.sampler with None -> true | Some s -> Sampling.tick s
  in
  let v =
    if plan.L.cur <> plan.L.v_instr then begin
      (match st.tier with Some tc -> Tier.note_entry_swap tc | None -> ());
      plan.L.cur
    end
    else if on then plan.L.v_instr
    else plan.L.v_plain
  in
  let var = plan.L.variants.(v) in
  f.f_var <- v;
  f.fcode <- var.L.v_code;
  f.fcosts <- var.L.v_costs;
  f.f_on <- on && v = plan.L.v_instr;
  let n = plan.L.nregs in
  if Array.length f.regs < n then f.regs <- Array.make n 0
  else if nargs < n then Array.fill f.regs nargs (n - nargs) 0;
  f.pc <- 0;
  f.path_reg <- 0;
  f.plen <- 0;
  f.ret_to <- ret_to;
  f

let bounds_error (a : L.arr) i =
  E.error "array %s index %d out of bounds (size %d)" a.L.arr_name i
    (Array.length a.L.data)

let load d (a : L.arr) i =
  if i < 0 || i >= Array.length d then bounds_error a i;
  Array.unsafe_get d i

let store d (a : L.arr) i v =
  if i < 0 || i >= Array.length d then bounds_error a i;
  Array.unsafe_set d i v

(* With edge counting, path tracing and instrumentation all off,
   [traverse] is a no-op; the dispatch loop skips the call entirely via
   [st.prof_on], so an unprofiled run pays nothing per edge. *)
let traverse st (frame : frame) (plan : L.plan) (eo : L.edge_ops) =
  (match plan.L.edge_counts with
  | Some c -> Edge_profile.incr c eo.L.edge
  | None -> ());
  if st.trace_on then begin
    let len = frame.plen in
    if len = Array.length frame.pbuf then begin
      let bigger = Array.make (2 * len) 0 in
      Array.blit frame.pbuf 0 bigger 0 len;
      frame.pbuf <- bigger
    end;
    frame.pbuf.(len) <- eo.L.edge;
    frame.plen <- len + 1;
    if eo.L.ends_path then begin
      (match plan.L.intern with
      | Some t -> Path_profile.Intern.record t frame.pbuf ~len:frame.plen
      | None -> ());
      st.dyn_paths <- st.dyn_paths + 1;
      frame.plen <- 0
    end
  end;
  let acts = eo.L.acts in
  let n = Array.length acts in
  if n > 0 then begin
    st.instr_cost <- st.instr_cost + eo.L.acts_cost;
    if st.obs_on then begin
      let kinds = eo.L.act_kinds in
      for i = 0 to n - 1 do
        let k = kinds.(i) in
        st.obs_actions.(k) <- st.obs_actions.(k) + 1
      done
    end;
    for i = 0 to n - 1 do
      match Array.unsafe_get acts i with
      | L.Set_reg v -> frame.path_reg <- v
      | L.Add_reg v -> frame.path_reg <- frame.path_reg + v
      | L.Bump t -> Instr_rt.Table.bump t frame.path_reg
      | L.Bump_plus (t, v) -> Instr_rt.Table.bump t (frame.path_reg + v)
      | L.Bump_const (t, v) -> Instr_rt.Table.bump t v
      | L.Bump_none -> ()
    done
  end

(* Execute a fully-paid pure op during the exhaustion remainder. Ops
   that can transfer control (Call, terminators) never appear here:
   calls close their segment, and a charged terminator is the op the
   reference leaves unexecuted. *)
let exec_pure st regs op =
  match op with
  | L.Mov_i { dst; imm } -> Array.unsafe_set regs dst imm
  | L.Mov_r { dst; src } -> Array.unsafe_set regs dst (Array.unsafe_get regs src)
  | L.Bin_rr { dst; op; a; b } ->
      Array.unsafe_set regs dst
        (E.exec_binop op (Array.unsafe_get regs a) (Array.unsafe_get regs b))
  | L.Bin_ri { dst; op; a; imm } ->
      Array.unsafe_set regs dst (E.exec_binop op (Array.unsafe_get regs a) imm)
  | L.Bin_ir { dst; op; imm; b } ->
      Array.unsafe_set regs dst (E.exec_binop op imm (Array.unsafe_get regs b))
  | L.Bin_ii { dst; op; ia; ib } ->
      Array.unsafe_set regs dst (E.exec_binop op ia ib)
  | L.Load_r { dst; data; arr; idx } ->
      Array.unsafe_set regs dst (load data arr (Array.unsafe_get regs idx))
  | L.Load_i { dst; data; arr; idx } ->
      Array.unsafe_set regs dst (load data arr idx)
  | L.Store_rr { data; arr; idx; src } ->
      store data arr (Array.unsafe_get regs idx) (Array.unsafe_get regs src)
  | L.Store_ri { data; arr; idx; imm } ->
      store data arr (Array.unsafe_get regs idx) imm
  | L.Store_ir { data; arr; iidx; src } ->
      store data arr iidx (Array.unsafe_get regs src)
  | L.Store_ii { data; arr; iidx; imm } -> store data arr iidx imm
  | L.Out_r { src } -> st.out_rev <- Array.unsafe_get regs src :: st.out_rev
  | L.Out_i { imm } -> st.out_rev <- imm :: st.out_rev
  | L.Unknown_array { name } -> E.error "unknown array %s" name
  | L.Trap { msg } -> raise (E.Runtime_error msg)
  | L.Fuel _ | L.Call _ | L.Unknown_routine _ | L.Jump _ | L.Branch_r _
  | L.Branch_const _ | L.Return_r _ | L.Return_i _ | L.Return_none _ ->
      assert false

(* Fuel ran out inside this segment: with [f] fuel left, the reference
   charges [max 1 f] more instructions, executes all but the last, and
   raises. [pc] is the segment's Fuel opcode, an offset in the frame's
   own variant (whose cost table is parallel to its code). *)
let exhaust st (frame : frame) regs pc =
  let k = if st.fuel < 1 then 1 else st.fuel in
  let costs = frame.fcosts in
  let cost = ref 0 in
  for i = pc + 1 to pc + k do
    cost := !cost + Array.unsafe_get costs i
  done;
  st.base_cost <- st.base_cost + !cost;
  st.fuel <- st.fuel - k;
  let code = frame.fcode in
  for i = pc + 1 to pc + k - 1 do
    exec_pure st regs code.(i)
  done;
  raise E.Exhausted

(* The instrumented stream's edge_ops for the terminator at [pc] — the
   plain stream carries empty action lists, so an off->on transition
   reads the path-register initialization from here. Only reached from
   frames in the instrumented/plain pair, whose offsets coincide. *)
let instrumented_edge (plan : L.plan) pc edge_id =
  match plan.L.variants.(plan.L.v_instr).L.v_code.(pc) with
  | L.Jump { edge; _ } | L.Branch_const { edge; _ } -> edge
  | L.Branch_r { then_edge; else_edge; _ } ->
      if then_edge.L.edge = edge_id then then_edge else else_edge
  | _ -> assert false

(* Re-arm the path register as if the instrumented back edge had just
   initialized a fresh path: execute only the suffix *after* the last
   counting-class action (the old path's count belongs to an off-burst
   stretch and must not be recorded). Constant work per burst boundary;
   charged to neither base nor instr cost. *)
let path_init (frame : frame) (eo : L.edge_ops) =
  let acts = eo.L.acts in
  let n = Array.length acts in
  let rec after_last_count i acc =
    if i >= n then acc
    else
      match acts.(i) with
      | L.Bump _ | L.Bump_plus _ | L.Bump_const _ | L.Bump_none ->
          after_last_count (i + 1) (i + 1)
      | L.Set_reg _ | L.Add_reg _ -> after_last_count (i + 1) acc
  in
  let i0 = after_last_count 0 0 in
  frame.path_reg <- 0;
  for i = i0 to n - 1 do
    match acts.(i) with
    | L.Set_reg v -> frame.path_reg <- v
    | L.Add_reg v -> frame.path_reg <- frame.path_reg + v
    | _ -> ()
  done

(* Map [target] — a block-start offset in [from_]'s code — to the same
   block's start in [to_]. The instrumented/plain pair shares one
   offsets table, so the common swap is free; crossing onto an
   optimized generation does one linear scan over the routine's blocks
   (block starts are strictly increasing in emission order, hence
   unique), and only on an actual swap. *)
let retarget (from_ : L.variant) (to_ : L.variant) target =
  let offs = from_.L.v_offsets in
  if offs == to_.L.v_offsets then target
  else begin
    let n = Array.length offs in
    let rec find b =
      if b >= n then assert false
      else if offs.(b) = target then b
      else find (b + 1)
    in
    to_.L.v_offsets.(find 0)
  end

(* The back-edge variant-resolution point, shared by tier-up OSR and
   bursty sampling (the edge's old path is fully recorded by [traverse]
   already, so no partial path can be lost). Same canonical order as
   [enter]: tier trip, then the unconditional sampling tick, then the
   resolution — tier override first, burst decision otherwise. Returns
   the pc to re-enter [run_frames] with (so the dispatch loop rebinds
   the code array), or -1 when the frame's stream is unchanged. *)
let redecide st (frame : frame) (plan : L.plan) pc edge_id target =
  (match st.tier with
  | Some tc -> if Tier.trip tc plan.L.r_id then tier_fire st plan tc
  | None -> ());
  let on =
    match st.sampler with None -> frame.f_on | Some s -> Sampling.tick s
  in
  if plan.L.cur <> plan.L.v_instr then
    if frame.f_var = plan.L.cur then -1
    else begin
      (* OSR: this frame entered before the routine tiered up; jump
         onto the optimized variant at the equivalent block. Stale
         path_reg is harmless — optimized streams never bump. *)
      let from_ = plan.L.variants.(frame.f_var) in
      let to_ = plan.L.variants.(plan.L.cur) in
      frame.f_var <- plan.L.cur;
      frame.fcode <- to_.L.v_code;
      frame.fcosts <- to_.L.v_costs;
      frame.f_on <- false;
      (match st.tier with Some tc -> Tier.note_osr_swap tc | None -> ());
      retarget from_ to_ target
    end
  else if on = frame.f_on then -1
  else if on then begin
    frame.f_on <- true;
    frame.f_var <- plan.L.v_instr;
    let v = plan.L.variants.(plan.L.v_instr) in
    frame.fcode <- v.L.v_code;
    frame.fcosts <- v.L.v_costs;
    path_init frame (instrumented_edge plan pc edge_id);
    target
  end
  else begin
    (* Stale path_reg is harmless off-burst: the plain stream never
       bumps, and the next on-transition re-initializes it. *)
    frame.f_on <- false;
    frame.f_var <- plan.L.v_plain;
    let v = plan.L.variants.(plan.L.v_plain) in
    frame.fcode <- v.L.v_code;
    frame.fcosts <- v.L.v_costs;
    target
  end

let do_return st (frame : frame) value =
  st.depth <- st.depth - 1;
  if st.depth = 0 then st.ret_value <- value
  else if frame.ret_to >= 0 then
    st.frames.(st.depth - 1).regs.(frame.ret_to) <-
      (match value with Some x -> x | None -> 0)

(* Execute [frame] from [start_pc] to program completion: straight-line
   control stays inside the tail-recursive [go], and calls and returns
   switch frames with a tail call back into [run_frames], so the whole
   program runs as one loop with no per-transition driver overhead. *)
let rec run_frames st (frame : frame) start_pc =
  let plan = frame.plan in
  let code = frame.fcode in
  let costs = frame.fcosts in
  let regs = frame.regs in
  let rec go pc =
    match Array.unsafe_get code pc with
    | L.Fuel { count; cost } ->
        if st.fuel > count then begin
          st.fuel <- st.fuel - count;
          st.base_cost <- st.base_cost + cost;
          (* One load and one branch per segment when telemetry is off,
             matching the gated-metrics cost discipline. *)
          (match st.tele with
          | None -> ()
          | Some t ->
              st.tele_left <- st.tele_left - count;
              if st.tele_left <= 0 then tele_sample st t);
          go (pc + 1)
        end
        else exhaust st frame regs pc
    | L.Mov_i { dst; imm } ->
        Array.unsafe_set regs dst imm;
        go (pc + 1)
    | L.Mov_r { dst; src } ->
        Array.unsafe_set regs dst (Array.unsafe_get regs src);
        go (pc + 1)
    (* The two common binop shapes evaluate inline — same semantics as
       [Engine.exec_binop], without the cross-module call per op. *)
    | L.Bin_rr { dst; op; a; b } ->
        let a = Array.unsafe_get regs a and b = Array.unsafe_get regs b in
        let v =
          match op with
          | Ir.Add -> a + b
          | Ir.Sub -> a - b
          | Ir.Mul -> a * b
          | Ir.Lt -> if a < b then 1 else 0
          | Ir.Le -> if a <= b then 1 else 0
          | Ir.Gt -> if a > b then 1 else 0
          | Ir.Ge -> if a >= b then 1 else 0
          | Ir.Eq -> if a = b then 1 else 0
          | Ir.Ne -> if a <> b then 1 else 0
          | Ir.Div -> if b = 0 then E.error "division by zero" else a / b
          | Ir.Rem -> if b = 0 then E.error "remainder by zero" else a mod b
          | Ir.And -> a land b
          | Ir.Or -> a lor b
          | Ir.Xor -> a lxor b
          | Ir.Shl ->
              let c = b land 63 in
              if c > 62 then 0 else a lsl c
          | Ir.Shr ->
              let c = b land 63 in
              a asr (if c > 62 then 62 else c)
        in
        Array.unsafe_set regs dst v;
        go (pc + 1)
    | L.Bin_ri { dst; op; a; imm } ->
        let a = Array.unsafe_get regs a in
        let v =
          match op with
          | Ir.Add -> a + imm
          | Ir.Sub -> a - imm
          | Ir.Mul -> a * imm
          | Ir.Lt -> if a < imm then 1 else 0
          | Ir.Le -> if a <= imm then 1 else 0
          | Ir.Gt -> if a > imm then 1 else 0
          | Ir.Ge -> if a >= imm then 1 else 0
          | Ir.Eq -> if a = imm then 1 else 0
          | Ir.Ne -> if a <> imm then 1 else 0
          | Ir.Div -> if imm = 0 then E.error "division by zero" else a / imm
          | Ir.Rem -> if imm = 0 then E.error "remainder by zero" else a mod imm
          | Ir.And -> a land imm
          | Ir.Or -> a lor imm
          | Ir.Xor -> a lxor imm
          | Ir.Shl ->
              let c = imm land 63 in
              if c > 62 then 0 else a lsl c
          | Ir.Shr ->
              let c = imm land 63 in
              a asr (if c > 62 then 62 else c)
        in
        Array.unsafe_set regs dst v;
        go (pc + 1)
    | L.Bin_ir { dst; op; imm; b } ->
        Array.unsafe_set regs dst
          (E.exec_binop op imm (Array.unsafe_get regs b));
        go (pc + 1)
    | L.Bin_ii { dst; op; ia; ib } ->
        Array.unsafe_set regs dst (E.exec_binop op ia ib);
        go (pc + 1)
    | L.Load_r { dst; data; arr; idx } ->
        let i = Array.unsafe_get regs idx in
        if i < 0 || i >= Array.length data then bounds_error arr i;
        Array.unsafe_set regs dst (Array.unsafe_get data i);
        go (pc + 1)
    | L.Load_i { dst; data; arr; idx } ->
        Array.unsafe_set regs dst (load data arr idx);
        go (pc + 1)
    | L.Store_rr { data; arr; idx; src } ->
        let i = Array.unsafe_get regs idx in
        if i < 0 || i >= Array.length data then bounds_error arr i;
        Array.unsafe_set data i (Array.unsafe_get regs src);
        go (pc + 1)
    | L.Store_ri { data; arr; idx; imm } ->
        let i = Array.unsafe_get regs idx in
        if i < 0 || i >= Array.length data then bounds_error arr i;
        Array.unsafe_set data i imm;
        go (pc + 1)
    | L.Store_ir { data; arr; iidx; src } ->
        store data arr iidx (Array.unsafe_get regs src);
        go (pc + 1)
    | L.Store_ii { data; arr; iidx; imm } ->
        store data arr iidx imm;
        go (pc + 1)
    | L.Out_r { src } ->
        st.out_rev <- Array.unsafe_get regs src :: st.out_rev;
        go (pc + 1)
    | L.Out_i { imm } ->
        st.out_rev <- imm :: st.out_rev;
        go (pc + 1)
    | L.Call { dst; callee; arg_regs; arg_vals } ->
        (* Self-charging: the charge can raise before the frame push,
           exactly like the reference's per-instruction charge. *)
        st.base_cost <- st.base_cost + Array.unsafe_get costs pc;
        st.fuel <- st.fuel - 1;
        if st.fuel <= 0 then raise E.Exhausted;
        st.base_cost <- st.base_cost + Cost.call_overhead;
        if st.count_calls then st.obs_calls <- st.obs_calls + 1;
        frame.pc <- pc + 1;
        let nargs = Array.length arg_regs in
        let cf = enter st (Array.unsafe_get st.plans callee) ~nargs dst in
        let cregs = cf.regs in
        for i = 0 to nargs - 1 do
          let r = Array.unsafe_get arg_regs i in
          Array.unsafe_set cregs i
            (if r >= 0 then Array.unsafe_get regs r
             else Array.unsafe_get arg_vals i)
        done;
        run_frames st cf 0
    | L.Unknown_routine { name } ->
        st.base_cost <- st.base_cost + Array.unsafe_get costs pc;
        st.fuel <- st.fuel - 1;
        if st.fuel <= 0 then raise E.Exhausted;
        st.base_cost <- st.base_cost + Cost.call_overhead;
        if st.count_calls then st.obs_calls <- st.obs_calls + 1;
        E.error "unknown routine %s" name
    | L.Unknown_array { name } -> E.error "unknown array %s" name
    | L.Trap { msg } -> raise (E.Runtime_error msg)
    | L.Jump { target; edge } ->
        if st.prof_on then traverse st frame plan edge;
        if st.redecide_on && edge.L.ends_path then begin
          let t = redecide st frame plan pc edge.L.edge target in
          if t >= 0 then run_frames st frame t else go target
        end
        else go target
    | L.Branch_r { cond; then_; then_edge; else_; else_edge } ->
        if Array.unsafe_get regs cond <> 0 then begin
          if st.prof_on then traverse st frame plan then_edge;
          if st.redecide_on && then_edge.L.ends_path then begin
            let t = redecide st frame plan pc then_edge.L.edge then_ in
            if t >= 0 then run_frames st frame t else go then_
          end
          else go then_
        end
        else begin
          if st.prof_on then traverse st frame plan else_edge;
          if st.redecide_on && else_edge.L.ends_path then begin
            let t = redecide st frame plan pc else_edge.L.edge else_ in
            if t >= 0 then run_frames st frame t else go else_
          end
          else go else_
        end
    | L.Branch_const { target; edge } ->
        if st.prof_on then traverse st frame plan edge;
        if st.redecide_on && edge.L.ends_path then begin
          let t = redecide st frame plan pc edge.L.edge target in
          if t >= 0 then run_frames st frame t else go target
        end
        else go target
    | L.Return_r { src; edge } ->
        if st.prof_on then traverse st frame plan edge;
        ret (Some (Array.unsafe_get regs src))
    | L.Return_i { imm; edge } ->
        if st.prof_on then traverse st frame plan edge;
        ret (Some imm)
    | L.Return_none { edge } ->
        if st.prof_on then traverse st frame plan edge;
        ret None
  and ret value =
    do_return st frame value;
    if st.depth > 0 then begin
      let f = st.frames.(st.depth - 1) in
      run_frames st f f.pc
    end
  in
  go start_pc

let run ?cache ~(config : E.config) (p : Ir.program) =
  E.validate_call_arities p;
  let instr_tables =
    match config.E.instrumentation with
    | Some instr -> Instr_rt.init_state ~policy:config.E.overflow_policy instr
    | None -> Hashtbl.create 1
  in
  let prog = L.program ?cache ~config ~instr_tables p in
  let main_plan = prog.L.plans.(prog.L.main) in
  (* Sampling only gates instrumentation actions (edge counting and path
     tracing are never sampled), so without instrumentation the two
     streams coincide and the controller would only add tick work. *)
  let sampler =
    match (config.E.sampling, config.E.instrumentation) with
    | Some spec, Some _ -> Some (Sampling.start spec)
    | _ -> None
  in
  (* Like sampling, tiering is only meaningful against instrumentation:
     the payoff is retiring instrumented variants, and without them the
     plain stream already is the "optimized" body up to layout the
     controller could not have learned anything to guide. *)
  let tier =
    match (config.E.tier, config.E.instrumentation) with
    | Some spec, Some _ ->
        Some (Tier.start spec ~nroutines:(Array.length prog.L.plans))
    | _ -> None
  in
  let st =
    {
      plans = prog.L.plans;
      prog;
      lcache = cache;
      itables = instr_tables;
      frames = Array.init 16 (fun _ -> fresh_frame main_plan);
      depth = 0;
      fuel = config.E.fuel;
      fuel0 = config.E.fuel;
      base_cost = 0;
      instr_cost = 0;
      dyn_paths = 0;
      out_rev = [];
      prof_on =
        (config.E.collect_edges || config.E.trace_paths
        || Option.is_some config.E.instrumentation);
      trace_on = config.E.trace_paths;
      obs_on = E.Obs.enabled ();
      count_calls = E.Obs.enabled () || Option.is_some config.E.telemetry;
      sampler;
      tier;
      redecide_on = Option.is_some sampler || Option.is_some tier;
      tele = config.E.telemetry;
      tele_left =
        (match config.E.telemetry with
        | Some t -> Telemetry.interval t
        | None -> max_int);
      obs_calls = 0;
      obs_actions = Array.make Instr_rt.num_action_kinds 0;
      ret_value = None;
    }
  in
  let main_frame = enter st main_plan ~nargs:0 (-1) in
  let termination =
    try
      run_frames st main_frame 0;
      E.Finished
    with E.Exhausted -> E.Out_of_fuel { stack_depth = st.depth }
  in
  let edge_profile =
    if config.E.collect_edges then begin
      let ep = Edge_profile.create_program p in
      Hashtbl.iter
        (fun name idx ->
          let plan = prog.L.plans.(idx) in
          match plan.L.edge_counts with
          | Some c ->
              Graph.iter_edges (Cfg_view.graph plan.L.view) (fun e ->
                  Edge_profile.add (Edge_profile.routine ep name) e
                    (Edge_profile.freq c e))
          | None -> ())
        prog.L.index;
      Some ep
    end
    else None
  in
  let path_profile =
    if config.E.trace_paths then begin
      let pp = Path_profile.create_program p in
      Hashtbl.iter
        (fun name idx ->
          let plan = prog.L.plans.(idx) in
          match plan.L.intern with
          | Some t ->
              let dst = Path_profile.routine pp name in
              Path_profile.Intern.iter t (fun edges n ->
                  Path_profile.add dst (Array.to_list edges) n)
          | None -> ())
        prog.L.index;
      Some pp
    end
    else None
  in
  (* Fuel and dynamic instructions move in lockstep (every charge takes
     one of each), so the count is derived instead of updated per
     segment in the hot loop. *)
  let dyn_instrs = config.E.fuel - st.fuel in
  if st.obs_on then begin
    E.flush_metrics ~fuel:config.E.fuel ~termination ~fuel_left:st.fuel
      ~base_cost:st.base_cost ~instr_cost:st.instr_cost ~dyn_instrs
      ~dyn_paths:st.dyn_paths ~calls:st.obs_calls ~actions:st.obs_actions;
    (match st.sampler with
    | Some s ->
        Instr_rt.flush_sample_metrics ~on_ticks:(Sampling.on_ticks s)
          ~off_ticks:(Sampling.off_ticks s) ~bursts:(Sampling.bursts s)
    | None -> ());
    match st.tier with Some tc -> Tier.flush_metrics tc | None -> ()
  end;
  {
    E.return_value = st.ret_value;
    output = List.rev st.out_rev;
    base_cost = st.base_cost;
    instr_cost = st.instr_cost;
    dyn_instrs;
    dyn_paths = st.dyn_paths;
    termination;
    edge_profile;
    path_profile;
    instr_state =
      (if Option.is_some config.E.instrumentation then Some instr_tables
       else None);
    tier_decisions =
      (match st.tier with Some tc -> Tier.decisions tc | None -> []);
  }
