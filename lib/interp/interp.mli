(** The interpreter: executes IR programs, optionally collecting an edge
    profile, the ground-truth path profile, and/or executing path-profiling
    instrumentation.

    Path semantics follow Section 3.1: a back edge ends the current path
    and starts a new one at the loop header; a call starts a fresh path in
    the callee while the caller's path is deferred across the call; a
    return ends the callee's current path.

    Two execution engines share these semantics: the flat {!Vm} (the
    default — routines are pre-lowered to contiguous opcode arrays, see
    {!Lower}) and the reference tree-walker defined here, which serves as
    the executable specification. The differential suite asserts the two
    produce byte-identical outcomes; everything cost-model-derived
    (overheads, profiles, table state) is engine-invariant, only
    wall-clock throughput differs. *)

exception Runtime_error of string
(** Division by zero, array index out of bounds, or other genuine dynamic
    faults. Fuel exhaustion is {e not} an error: it is reported through
    {!type-termination} with a partial {!outcome}. *)

type config = Engine.config = {
  fuel : int;  (** maximum dynamic instructions before stopping *)
  collect_edges : bool;
  trace_paths : bool;
  instrumentation : Instr_rt.t option;
  overflow_policy : Instr_rt.Table.overflow_policy;
      (** how frequency tables handle unattributable path executions *)
  telemetry : Telemetry.t option;
      (** attach a live-telemetry snapshot ring (see {!Telemetry}); the
          {!Vm} engine samples its counters into it periodically, the
          reference engine ignores it. Outcomes are byte-identical with
          and without a ring. *)
  layout : (string, int array) Hashtbl.t option;
      (** per-routine block emission order for the pre-lowered {!Vm}
          (see [Layout]): the named routine's blocks are emitted in the
          given permutation (entry first) so the hot path runs
          fall-through. A pure placement hint — outcomes are
          byte-identical under any (or no) layout, which the layout
          differential suite asserts. The reference engine walks the AST
          and ignores it entirely. *)
  sampling : Sampling.spec option;
      (** bursty collection sampling (see {!Sampling}): instrumented
          frames alternate, at seeded burst boundaries on the frame-entry
          and loop-back-edge fast paths, between their instrumented and
          uninstrumented streams, so roughly [1/denom] of dynamic paths
          are recorded. Program outcomes (return value, output,
          termination, base cost, dyn counts, edge and path profiles)
          are byte-identical with sampling on or off, in both engines;
          only [instr_cost] and [instr_state] change. Inert without
          [instrumentation]. Recover full-profile estimates with
          {!Instr_rt.scaled_count}. *)
  tier : Tier.spec option;
      (** tiered in-VM re-optimization (see {!Tier}): routines start in
          their instrumented variant; once a routine's frame-entry trip
          count crosses the spec's threshold, the controller re-lowers it
          hot-path-first with instrumentation stripped and installs the
          new body, which frames pick up at the next call boundary or
          loop-back-edge OSR point. Program outcomes are byte-identical
          with tiering on or off, in both engines; the recorded profile
          freezes per routine at its swap, and [instr_cost] drops. Inert
          without [instrumentation]. The reference engine mirrors the
          controller's decisions (same trips, same swap log) without
          having variants to swap, which is what lets the differential
          suite compare tiered runs engine-to-engine. *)
}

val default_config : config
(** [fuel = 2_000_000_000], edge collection and path tracing on, no
    instrumentation, [Drop] overflow policy, no telemetry. *)

type termination = Engine.termination =
  | Finished  (** [main] returned normally *)
  | Out_of_fuel of { stack_depth : int }
      (** the fuel budget ran out with [stack_depth] activations still
          live; the outcome holds everything collected up to that point *)

type outcome = Engine.outcome = {
  return_value : int option;  (** of [main]; [None] if out of fuel *)
  output : int list;  (** values emitted by [Out], in order *)
  base_cost : int;  (** cycles of the program proper *)
  instr_cost : int;  (** cycles of instrumentation actions *)
  dyn_instrs : int;
  dyn_paths : int;  (** ground-truth path executions (0 unless traced) *)
  termination : termination;
  edge_profile : Ppp_profile.Edge_profile.program option;
  path_profile : Ppp_profile.Path_profile.program option;
  instr_state : Instr_rt.state option;
  tier_decisions : Tier.decision list;
      (** the tier controller's swap log in firing order; empty unless
          [tier] is set. Engine-invariant: the reference mirror reaches
          the same decisions at the same trip counts. *)
}

val overhead : outcome -> float
(** [instr_cost / base_cost]. *)

val exec_binop : Ppp_ir.Ir.binop -> int -> int -> int
(** The shared arithmetic of both engines (re-exported from {!Engine});
    shifts saturate rather than wrap. *)

type engine =
  | Vm  (** pre-lowered flat VM: the fast default *)
  | Reference  (** the tree-walking executable specification *)

val run :
  ?config:config ->
  ?engine:engine ->
  ?cache:Lower.cache ->
  Ppp_ir.Ir.program ->
  outcome
(** Runs to completion or fuel exhaustion — check [outcome.termination].
    When fuel runs out the profiles collected so far are still returned
    (a truncated but usable sample). [engine] defaults to {!Vm}; both
    engines produce identical outcomes on well-formed programs (programs
    that fail [Ppp_ir.Check] may fault with different error messages).
    [cache], used only by the {!Vm} engine, memoizes structural lowering
    across runs (see {!Lower.cache}); outcomes are byte-identical with
    and without it.
    @raise Runtime_error on a genuine dynamic fault, including — in
    either engine, up front — a call whose argument count exceeds the
    callee's register file. *)
