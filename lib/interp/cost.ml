let instr = function
  | Ppp_ir.Ir.Mov _ -> 1
  | Binop _ -> 1
  | Load _ -> 2
  | Store _ -> 2
  | Call _ -> 2
  | Out _ -> 1

let terminator = function
  | Ppp_ir.Ir.Jump _ -> 1
  | Branch _ -> 2
  | Return _ -> 2

let call_overhead = 6

let array_count = 4
let hash_count = array_count * 5 (* Section 3.2: hashing ~ 5x an array *)
let check = 2 (* compare-and-branch of TPP's poison test *)

let count_base ~table =
  match table with
  | Instr_rt.Array_table _ -> array_count
  | Instr_rt.Hash_table -> hash_count

let action ~table = function
  | Instr_rt.Set_r _ | Instr_rt.Add_r _ -> 1
  | Instr_rt.Count_r | Instr_rt.Count_r_plus _ -> count_base ~table
  | Instr_rt.Count_const _ ->
      (* No address arithmetic against the path register. *)
      count_base ~table - 1
  | Instr_rt.Count_checked | Instr_rt.Count_checked_plus _ ->
      count_base ~table + check

let actions ~table acts =
  List.fold_left (fun acc a -> acc + action ~table a) 0 acts

(* The i-cache proxy's locality horizon, in lowered opcodes: a control
   transfer whose displacement from fall-through stays within the window
   is assumed to hit the same cache neighborhood (BOLT's intuition that
   distance, not direction, is what costs). 64 ops ~ a few cache lines
   at this IR's density. *)
let locality_window = 64
