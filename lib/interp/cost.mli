(** Deterministic cost model.

    Stands in for the Alpha hardware: every IR instruction and every
    instrumentation action is charged a fixed number of abstract cycles,
    and profiling overhead is [instrumentation cost / base cost]. The
    constants encode the relative costs the paper relies on — in
    particular a hash-table count is five times an array count (Joshi et
    al.'s estimate, Section 3.2) and TPP's poison check adds a
    compare-and-branch to every count. *)

val instr : Ppp_ir.Ir.instr -> int
val terminator : Ppp_ir.Ir.terminator -> int
val call_overhead : int
(** Extra cycles charged per dynamic call (frame setup), on top of the
    [Call] instruction itself. Inlining removes this, which is what gives
    Table 1's modest speedups. *)

val action : table:Instr_rt.table_kind -> Instr_rt.action -> int

val actions : table:Instr_rt.table_kind -> Instr_rt.action list -> int
(** Total cost of an edge's action list; what the lowering pass
    precomputes so the VM charges one number per traversal. *)

val locality_window : int
(** The i-cache proxy's locality horizon, in lowered opcodes: a control
    transfer whose displacement from fall-through stays within the
    window is assumed to hit the same cache neighborhood (distance, not
    direction, is what costs). See [Layout]. *)
