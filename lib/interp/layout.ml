(* Path-guided block layout for the pre-lowered VM, and the i-cache /
   taken-branch proxy that measures what it buys.

   The layout side is BOLT's placement recipe scaled to this IR: per
   routine, pick the hottest recorded path, emit its blocks back to back
   (so the hot trace executes fall-through), then the remaining blocks
   by decreasing heat, with never-executed blocks exiled to the array
   tail. The order is a pure emission hint for [Lower] — branch targets
   are patched through [block_offset], so VM outcomes are byte-identical
   under any layout (the differential suite asserts exactly that).

   The proxy side replaces wall-clock i-cache measurement, which this
   interpreter cannot do honestly: walk a lowered routine's code array
   and charge every intra-routine control transfer with its edge
   frequency, splitting the mass into *taken* transfers (target is not
   the next opcode) and *local* ones (displacement within
   [Cost.locality_window]). Lower taken mass and higher local mass is
   what hot-path fall-through buys on a real front end. *)

module Graph = Ppp_cfg.Graph
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile

type t = (string, int array) Hashtbl.t

let sat_add a b = if a > max_int - b then max_int else a + b

(* The blocks a path visits, in trace order: the sources of its edges
   plus the destination of the last edge (the block the path ends in,
   which fall-through placement wants adjacent too). Nodes are mapped
   through [block_of_node], which drops the virtual exit. Edge ids that
   do not exist in this view — a stale or hand-built path — are cut off
   at the first offender; layout degrades, it never faults. *)
let trace_blocks view path =
  let g = Cfg_view.graph view in
  let nedges = Graph.num_edges g in
  let block n acc =
    match Cfg_view.block_of_node view n with Some b -> b :: acc | None -> acc
  in
  let rec go acc = function
    | [] -> List.rev acc
    | e :: rest when e >= 0 && e < nedges ->
        let acc = block (Graph.src g e) acc in
        if rest = [] then List.rev (block (Graph.dst g e) acc) else go acc rest
    | _ :: _ -> List.rev acc
  in
  go [] path

(* The emission order of one routine given its recorded paths
   [(path, weight)]: entry, then the hottest path's trace, then the rest
   by heat. Returns [None] when the order would be the identity (or the
   routine is trivial), so callers can skip storing no-op layouts. *)
let order_for ~view paths =
  let r = Cfg_view.routine view in
  let nblocks = Array.length r.Ir.blocks in
  if nblocks <= 1 || paths = [] then None
  else begin
    let heat = Array.make nblocks 0 in
    List.iter
      (fun (p, w) ->
        List.iter
          (fun b -> if b >= 0 && b < nblocks then heat.(b) <- sat_add heat.(b) w)
          (trace_blocks view p))
      paths;
    (* Hottest path, with a total tie-break (weight desc, then the edge
       list itself) so the order never depends on input arrangement. *)
    let best =
      List.fold_left
        (fun acc (p, w) ->
          match acc with
          | None -> Some (p, w)
          | Some (bp, bw) ->
              if w > bw || (w = bw && compare p bp < 0) then Some (p, w)
              else acc)
        None paths
    in
    let order = Array.make nblocks (-1) in
    let placed = Array.make nblocks false in
    let n = ref 0 in
    let place b =
      if not placed.(b) then begin
        placed.(b) <- true;
        order.(!n) <- b;
        incr n
      end
    in
    place 0;
    (match best with
    | Some (p, _) -> List.iter place (trace_blocks view p)
    | None -> ());
    (* Remaining blocks by heat, hottest first; the cold (zero-heat)
       tail keeps source order. *)
    Array.init nblocks (fun i -> i)
    |> Array.to_list
    |> List.filter (fun b -> not placed.(b))
    |> List.stable_sort (fun a b -> compare heat.(b) heat.(a))
    |> List.iter place;
    if Lower.is_identity_order order then None else Some order
  end

(* A whole-program layout from a recorded path profile, presented as the
   [(routine, path, weight)] triples [Path_profile.hot_paths] (or a
   [Score.est] list) yields. Identity orders are omitted from the table:
   an absent routine lowers in source order. *)
let of_hot_paths ~views entries =
  let by_routine = Hashtbl.create 17 in
  List.iter
    (fun (name, path, w) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_routine name)
      in
      Hashtbl.replace by_routine name ((path, w) :: prev))
    entries;
  let table : t = Hashtbl.create 17 in
  Hashtbl.iter
    (fun name paths ->
      match order_for ~view:(views name) (List.rev paths) with
      | Some order -> Hashtbl.replace table name order
      | None -> ())
    by_routine;
  table

(* {2 The taken-transfer / locality proxy} *)

type proxy = {
  transfers : int; (* dynamic intra-routine control transfers *)
  taken : int; (* ... whose target is not the next opcode *)
  local : int; (* ... whose displacement is within the window *)
}

let empty_proxy = { transfers = 0; taken = 0; local = 0 }

let add_proxy a b =
  {
    transfers = sat_add a.transfers b.transfers;
    taken = sat_add a.taken b.taken;
    local = sat_add a.local b.local;
  }

(* Charge one lowered routine against an edge-frequency lookup. Returns
   and calls are excluded: inter-routine transfers cost the same under
   every intra-routine layout, so counting them would only dilute the
   signal the layout can actually move. *)
let proxy_of_plan (plan : Lower.plan) ~freq =
  let transfers = ref 0 and taken = ref 0 and local = ref 0 in
  let window = Cost.locality_window in
  let charge ~at ~target f =
    if f > 0 then begin
      transfers := sat_add !transfers f;
      if target <> at + 1 then taken := sat_add !taken f;
      if abs (target - (at + 1)) <= window then local := sat_add !local f
    end
  in
  Array.iteri
    (fun at op ->
      match op with
      | Lower.Jump { target; edge } -> charge ~at ~target (freq edge.Lower.edge)
      | Lower.Branch_const { target; edge } ->
          charge ~at ~target (freq edge.Lower.edge)
      | Lower.Branch_r { then_; then_edge; else_; else_edge; _ } ->
          charge ~at ~target:then_ (freq then_edge.Lower.edge);
          charge ~at ~target:else_ (freq else_edge.Lower.edge)
      | _ -> ())
    plan.Lower.variants.(plan.Lower.cur).Lower.v_code;
  { transfers = !transfers; taken = !taken; local = !local }

(* The program-wide proxy of [p] under block layout [layout] (identity
   when [None]), charged with the true edge frequencies of [ep]. Pure
   cost-model arithmetic over a fresh lowering — deterministic, no
   execution, safe for sharded byte-identical documents. *)
let program_proxy ?layout (p : Ir.program) ~(ep : Edge_profile.program) =
  let config = { Engine.default_config with Engine.layout } in
  let lowered =
    Lower.program ~config
      ~instr_tables:(Instr_rt.init_state (Instr_rt.no_instrumentation ()))
      p
  in
  Array.fold_left
    (fun acc (plan : Lower.plan) ->
      let name = plan.Lower.routine.Ir.name in
      match Edge_profile.routine ep name with
      | exception Not_found -> acc
      | prof -> add_proxy acc (proxy_of_plan plan ~freq:(Edge_profile.freq prof)))
    empty_proxy lowered.Lower.plans
