(** The flat VM execution engine.

    Executes the opcode arrays produced by {!Lower}: contiguous code, a
    recycled frame array, reusable path buffers feeding
    {!Ppp_profile.Path_profile.Intern}, and fuel charged once per
    straight-line segment with an exact remainder bill on exhaustion.
    Byte-identical in observable behavior to the reference tree-walker —
    the differential suite in [test/test_engine_diff.ml] holds it to
    that. Use {!Interp.run}, which dispatches here by default. *)

val run :
  ?cache:Lower.cache -> config:Engine.config -> Ppp_ir.Ir.program -> Engine.outcome
(** [cache] memoizes structural lowering across runs (see {!Lower.cache}).
    @raise Engine.Runtime_error on a genuine dynamic fault. *)
