module Obs = Ppp_obs.Metrics

type action =
  | Set_r of int
  | Add_r of int
  | Count_r
  | Count_r_plus of int
  | Count_const of int
  | Count_checked
  | Count_checked_plus of int

let num_action_kinds = 7

let action_index = function
  | Set_r _ -> 0
  | Add_r _ -> 1
  | Count_r -> 2
  | Count_r_plus _ -> 3
  | Count_const _ -> 4
  | Count_checked -> 5
  | Count_checked_plus _ -> 6

let action_kind_name = function
  | 0 -> "set_r"
  | 1 -> "add_r"
  | 2 -> "count_r"
  | 3 -> "count_r_plus"
  | 4 -> "count_const"
  | 5 -> "count_checked"
  | 6 -> "count_checked_plus"
  | _ -> invalid_arg "action_kind_name"

type table_kind = Array_table of int | Hash_table

type routine_instr = {
  edge_actions : action list array;
  table : table_kind;
  num_paths : int;
}

type t = (string, routine_instr) Hashtbl.t

let no_instrumentation () : t = Hashtbl.create 1

module Table = struct
  (* The hash table follows Section 7.4: 701 slots and three tries of
     secondary (double) hashing; a path that misses all three tries bumps
     the lost counter. 701 and 699 are the paper's primary modulus and a
     coprime secondary step base. *)
  let slots = 701
  let secondary = 699

  type overflow_policy = Drop | Overflow_bin of { cap : int }

  let default_overflow_cap = 1 lsl 20

  (* Registered at module init so they appear (zeroed) in every metrics
     snapshot; updates are self-gated on the global metrics flag. *)
  let m_cold = Obs.counter "rt.table.cold"
  let m_lost = Obs.counter "rt.table.lost"
  let m_lost_paths = Obs.counter "rt.lost_paths"
  let m_overflow = Obs.counter "rt.table.overflow"
  let m_saturations = Obs.counter "rt.table.saturations"
  let m_array_bumps = Obs.counter "rt.array.bumps"
  let m_hash_bumps = Obs.counter "rt.hash.bumps"
  let m_hash_probes = Obs.counter "rt.hash.probes"
  let m_hash_inserts = Obs.counter "rt.hash.inserts"

  let m_hash_collisions =
    [|
      Obs.counter "rt.hash.collisions.try1";
      Obs.counter "rt.hash.collisions.try2";
      Obs.counter "rt.hash.collisions.try3";
    |]

  type t = {
    kind : table_kind;
    policy : overflow_policy;
    arr : int array; (* Array_table: counts; Hash_table: counts per slot *)
    keys : int array; (* Hash_table only: path number per slot, -1 = empty *)
    mutable cold : int;
    mutable lost : int;
    mutable overflow : int;
    mutable saturated : bool;
  }

  let create ?(policy = Drop) kind =
    let base =
      {
        kind;
        policy;
        arr = [||];
        keys = [||];
        cold = 0;
        lost = 0;
        overflow = 0;
        saturated = false;
      }
    in
    match kind with
    | Array_table n -> { base with arr = Array.make (max 1 n) 0 }
    | Hash_table ->
        { base with arr = Array.make slots 0; keys = Array.make slots (-1) }

  let bump_cold t =
    t.cold <- t.cold + 1;
    Obs.incr m_cold

  (* Every path execution the table cannot attribute to its own counter
     lands here — array index out of range, or all three hash tries
     taken. [rt.lost_paths] counts every such drop regardless of policy;
     under [Overflow_bin] the execution is preserved in the bounded
     overflow bin (so dynamic totals stay exact) until the bin hits its
     cap, after which the table is marked saturated and further drops are
     genuinely lost. Never silent either way. *)
  let drop t =
    Obs.incr m_lost_paths;
    match t.policy with
    | Drop ->
        t.lost <- t.lost + 1;
        Obs.incr m_lost
    | Overflow_bin { cap } ->
        if t.overflow < cap then begin
          t.overflow <- t.overflow + 1;
          Obs.incr m_overflow;
          if t.overflow = cap then begin
            t.saturated <- true;
            Obs.incr m_saturations
          end
        end
        else begin
          t.lost <- t.lost + 1;
          Obs.incr m_lost
        end

  let bump t k =
    if k < 0 then bump_cold t
    else
      match t.kind with
      | Array_table _ ->
          Obs.incr m_array_bumps;
          if k < Array.length t.arr then t.arr.(k) <- t.arr.(k) + 1
          else drop t
      | Hash_table ->
          Obs.incr m_hash_bumps;
          let step = 1 + (k mod secondary) in
          let rec try_slot i =
            if i >= 3 then drop t
            else begin
              let s = (k + (i * step)) mod slots in
              Obs.incr m_hash_probes;
              if t.keys.(s) = k then t.arr.(s) <- t.arr.(s) + 1
              else if t.keys.(s) = -1 then begin
                t.keys.(s) <- k;
                t.arr.(s) <- 1;
                Obs.incr m_hash_inserts
              end
              else begin
                Obs.incr m_hash_collisions.(i);
                try_slot (i + 1)
              end
            end
          in
          try_slot 0

  let get t k =
    match t.kind with
    | Array_table _ -> if k >= 0 && k < Array.length t.arr then t.arr.(k) else 0
    | Hash_table ->
        let step = 1 + (k mod secondary) in
        let rec try_slot i =
          if i >= 3 then 0
          else
            let s = (k + (i * step)) mod slots in
            if t.keys.(s) = k then t.arr.(s) else try_slot (i + 1)
        in
        if k < 0 then 0 else try_slot 0

  let cold t = t.cold
  let lost t = t.lost
  let overflow t = t.overflow
  let saturated t = t.saturated
  let policy t = t.policy

  let iter_nonzero t f =
    match t.kind with
    | Array_table _ ->
        Array.iteri (fun k c -> if c > 0 then f k c) t.arr
    | Hash_table ->
        Array.iteri (fun s c -> if c > 0 && t.keys.(s) >= 0 then f t.keys.(s) c) t.arr

  let dynamic_total t =
    Array.fold_left ( + ) (t.cold + t.lost + t.overflow) t.arr
end

(* {2 Sampled collection: rt.sample.* and count recovery}

   The bursty sampling mode (see [Sampling]) records only a fraction of
   dynamic paths; these are its metrics family and its recovery-time
   estimator. Registered at module init like the rt.table.* family. *)

let m_sample_on = Obs.counter "rt.sample.on_ticks"
let m_sample_off = Obs.counter "rt.sample.off_ticks"
let m_sample_bursts = Obs.counter "rt.sample.bursts"
let m_sample_scaled_mass = Obs.counter "rt.sample.scaled_mass"
let m_sample_saturations = Obs.counter "rt.sample.saturations"

let flush_sample_metrics ~on_ticks ~off_ticks ~bursts =
  Obs.add m_sample_on on_ticks;
  Obs.add m_sample_off off_ticks;
  Obs.add m_sample_bursts bursts

(* Scale a recovered count by the inverse sampling rate, saturating at
   max_int rather than wrapping. Metrics record the estimated mass added
   and any saturation, so silent clamping never hides an overflow. *)
let scaled_count ~denom c =
  if denom <= 1 || c <= 0 then c
  else if c > max_int / denom then begin
    Obs.incr m_sample_saturations;
    max_int
  end
  else begin
    let scaled = c * denom in
    Obs.add m_sample_scaled_mass (scaled - c);
    scaled
  end

type state = (string, Table.t) Hashtbl.t

let init_state ?policy (t : t) : state =
  let st = Hashtbl.create 17 in
  Hashtbl.iter
    (fun name ri -> Hashtbl.replace st name (Table.create ?policy ri.table))
    t;
  st

let pp_action ppf = function
  | Set_r v -> Format.fprintf ppf "r=%d" v
  | Add_r v -> Format.fprintf ppf "r+=%d" v
  | Count_r -> Format.fprintf ppf "count[r]++"
  | Count_r_plus v -> Format.fprintf ppf "count[r+%d]++" v
  | Count_const v -> Format.fprintf ppf "count[%d]++" v
  | Count_checked -> Format.fprintf ppf "if r<0 cold++ else count[r]++"
  | Count_checked_plus v ->
      Format.fprintf ppf "if r+%d<0 cold++ else count[r+%d]++" v v

let pp_table_kind ppf = function
  | Array_table n -> Format.fprintf ppf "array[%d]" n
  | Hash_table -> Format.fprintf ppf "hash(%d slots, 3 tries)" Table.slots
