(** Substrate shared by the two execution engines ({!Interp}'s reference
    tree-walker and the flat {!Vm}): runtime exceptions, the public
    configuration/outcome types, binop semantics, the [interp.*] metrics,
    and eager call-arity validation. Everything that must behave
    byte-identically across engines is defined here once.

    Users should go through {!Interp}, which re-exports the public
    pieces; this module is the internal meeting point. *)

exception Runtime_error of string
exception Exhausted

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Runtime_error} with a formatted message. *)

module Obs = Ppp_obs.Metrics

type config = {
  fuel : int;
  collect_edges : bool;
  trace_paths : bool;
  instrumentation : Instr_rt.t option;
  overflow_policy : Instr_rt.Table.overflow_policy;
  telemetry : Telemetry.t option;
      (** when set, the {!Vm} engine records periodic counter snapshots
          into the ring; never affects outcomes *)
  layout : (string, int array) Hashtbl.t option;
      (** per-routine block emission order for the pre-lowered VM (see
          [Layout]): a pure placement hint — outcomes are byte-identical
          under any (or no) layout. The reference engine ignores it. *)
  sampling : Sampling.spec option;
      (** bursty collection sampling (see {!Sampling}): when set, an
          instrumented run records only the sampled fraction of dynamic
          paths; program outcomes stay byte-identical in both engines *)
  tier : Tier.spec option;
      (** tiered in-VM re-optimization (see {!Tier}): when set, hot
          routines swap from their instrumented variant to an optimized
          re-lowering mid-run; program outcomes stay byte-identical in
          both engines, the profile freezes per routine at its swap *)
}

val default_config : config

type termination = Finished | Out_of_fuel of { stack_depth : int }

type outcome = {
  return_value : int option;
  output : int list;
  base_cost : int;
  instr_cost : int;
  dyn_instrs : int;
  dyn_paths : int;
  termination : termination;
  edge_profile : Ppp_profile.Edge_profile.program option;
  path_profile : Ppp_profile.Path_profile.program option;
  instr_state : Instr_rt.state option;
  tier_decisions : Tier.decision list;
      (** the tier controller's swap log, in firing order — empty unless
          [tier] was set; identical across engines for the same run *)
}

val overhead : outcome -> float

val exec_binop : Ppp_ir.Ir.binop -> int -> int -> int
(** The single definition of arithmetic both engines execute. Shifts
    saturate: counts are masked to \[0, 63\] and clamped so the result is
    the mathematical limit ([0] for [Shl] past the word, the sign for
    [Shr]) rather than an undefined wrap.
    @raise Runtime_error on division or remainder by zero. *)

val validate_call_arities : Ppp_ir.Ir.program -> unit
(** Reject, up front, any call whose argument count exceeds the callee's
    register file — it would otherwise fault mid-copy with a bare
    [Invalid_argument]. Calls to unknown routines are left to fault lazily
    at execution time, as before.
    @raise Runtime_error with a located message. *)

val flush_metrics :
  fuel:int ->
  termination:termination ->
  fuel_left:int ->
  base_cost:int ->
  instr_cost:int ->
  dyn_instrs:int ->
  dyn_paths:int ->
  calls:int ->
  actions:int array ->
  unit
(** Feed one run's totals into the [interp.*] counters. Callers gate on
    [Obs.enabled] themselves (latched at run start). *)
