(** Path-guided block layout for the pre-lowered VM, and the i-cache /
    taken-branch proxy that scores what it buys.

    A layout is a per-routine emission order over the routine's blocks:
    entry first, then the hottest recorded path's trace back to back (so
    the hot trace executes fall-through), then the remaining blocks by
    decreasing heat, never-executed blocks exiled to the array tail. The
    order is a pure emission hint for {!Lower} — branch targets are
    patched through the lowered [block_offset] table, so VM outcomes are
    byte-identical under any layout (the differential test suite asserts
    exactly that).

    The proxy replaces wall-clock i-cache measurement, which this
    interpreter cannot do honestly: every intra-routine control transfer
    of a lowered routine is charged with its edge frequency, and the
    mass is split into {e taken} transfers (target is not the next
    opcode) and {e local} ones (displacement within
    {!Cost.locality_window}). Lower taken mass and higher local mass is
    what hot-path fall-through buys on a real front end. *)

type t = (string, int array) Hashtbl.t
(** Emission order per routine name; an absent routine lowers in source
    order. This is what {!Engine.config.layout} carries. *)

val trace_blocks : Ppp_ir.Cfg_view.t -> Ppp_profile.Path.t -> int list
(** The blocks a path visits in trace order: the sources of its edges
    plus the destination of the last edge, with the virtual exit node
    dropped. Edge ids outside the view's CFG — a stale or hand-built
    path — cut the trace at the first offender; never raises. *)

val order_for :
  view:Ppp_ir.Cfg_view.t -> (Ppp_profile.Path.t * int) list -> int array option
(** The emission order of one routine given its recorded
    [(path, weight)] entries. [None] when the order would be the
    identity or the routine is trivial. Tie-breaks are total (weight
    descending, then the path itself), so the result never depends on
    the arrangement of the input list. *)

val of_hot_paths :
  views:(string -> Ppp_ir.Cfg_view.t) ->
  (string * Ppp_profile.Path.t * int) list ->
  t
(** A whole-program layout from [(routine, path, weight)] triples (the
    shape {!Ppp_profile.Path_profile.hot_paths} and
    {!Ppp_flow.Score.est} lists yield). Identity orders are omitted. *)

(** {2 The taken-transfer / locality proxy} *)

type proxy = {
  transfers : int;  (** dynamic intra-routine control transfers *)
  taken : int;  (** ... whose target is not the next opcode *)
  local : int;  (** ... within {!Cost.locality_window} of fall-through *)
}

val empty_proxy : proxy
val add_proxy : proxy -> proxy -> proxy

val proxy_of_plan : Lower.plan -> freq:(int -> int) -> proxy
(** Charge one lowered routine's transfers with [freq edge]. Returns and
    calls are excluded: inter-routine transfers cost the same under
    every intra-routine layout. *)

val program_proxy :
  ?layout:t -> Ppp_ir.Ir.program -> ep:Ppp_profile.Edge_profile.program -> proxy
(** The program-wide proxy of a fresh lowering of the program under
    [layout] (source order when absent), charged with the true edge
    frequencies of [ep]. Pure cost-model arithmetic — deterministic, no
    execution. *)
