(** Hotness controller for tiered in-VM re-optimization.

    A tiered run starts every instrumented routine in its instrumented
    lowered variant. The controller watches per-routine trips (frame
    entries plus path-ending loop back edges, recorded in a
    {!Telemetry.Trips} table); when a routine's trip count reaches the
    threshold it "fires": the engine gathers the routine's live path
    counters, the planner distils them into a hot-path-first block
    order, {!Lower.tier_up} re-lowers just that routine, and the plan's
    current-variant slot swaps so the next frame entry (or the current
    frame, at its next loop back edge — the OSR point) executes
    optimized, uninstrumented code.

    The controller is engine-agnostic: its state depends only on the
    sequence of {!trip}/{!fire} calls, which the VM and the reference
    tree-walker issue at the same program points. Tier decisions are
    therefore engine-invariant, which the differential suite checks.

    Terminology: a {e tier-up swap} permanently retires a routine's
    instrumented variant for an optimized generation; {!Sampling}'s
    burst re-decision toggles between the instrumented and plain
    variants of the {e same} generation. Both resolve through the one
    variant-resolution point in {!Vm}. *)

type planner = routine:string -> counters:(int * int) list -> int array option
(** Maps a hot routine's live counters — [(path_number, raw_count)]
    pairs from its {!Instr_rt} table — to a block emission order for
    the optimized variant. [None] keeps the source order (the swap
    still strips instrumentation). *)

type spec = { threshold : int; budget : int; plan : planner option }

val default_threshold : int
(** Trips before a routine tiers up (8). *)

val default_budget : int
(** Routines allowed to tier up per run (unbounded). *)

val spec : ?threshold:int -> ?budget:int -> ?plan:planner -> unit -> spec
(** Validated constructor: [threshold >= 1], [budget >= 0]. *)

type decision = {
  d_routine : string;
  d_trips : int;  (** trip count at the moment the routine tiered up *)
  d_gen : int;  (** 1-based optimized-generation number, program-wide *)
  d_reordered : bool;  (** the planner produced a non-source block order *)
  d_order : int array option;
      (** the block order the swap installed ([None] = source order) —
          what {!Layout.program_proxy} scores after the run *)
}

type t

val start : spec -> nroutines:int -> t
(** A fresh controller for a program with [nroutines] routines. *)

val trip : t -> int -> bool
(** Record one watched event for routine [i]. [true] exactly when the
    routine must tier up now: its count just reached the threshold, it
    has not already tiered, and budget remains. Crossing the threshold
    with the budget exhausted is counted once as a denial. *)

val fire : t -> idx:int -> name:string -> counters:(int * int) list -> int array option
(** Commit the tier-up [trip] demanded: spends one budget unit, marks
    the routine tiered, consults the planner, logs the decision, and
    returns the block order for the optimized variant ([None] = source
    order). *)

val is_tiered : t -> int -> bool
val trips : t -> Telemetry.Trips.t
val decisions : t -> decision list
(** Tier-up decisions in firing order. *)

val swaps : t -> int
(** Routines tiered up so far (= optimized generations minted). *)

val note_entry_swap : t -> unit
(** A frame entered an optimized variant its routine swapped to. *)

val note_osr_swap : t -> unit
(** A live frame jumped onto the optimized variant at a back edge. *)

val flush_metrics : t -> unit
(** Flush the [tier.*] counter family: [tier.trips], [tier.swaps],
    [tier.reorders], [tier.denied_budget], [tier.entry_swaps],
    [tier.osr_swaps]. Called once at run end when observation is on. *)
