(* Shared substrate of the two execution engines: the public configuration
   and outcome types, the runtime exceptions, the binop semantics, the
   observability counters, and the eager call-arity validation. Both the
   reference tree-walker (Interp) and the flat VM (Vm) are defined in
   terms of this module, so anything that must be byte-identical across
   engines lives here exactly once. *)

module Ir = Ppp_ir.Ir
module Edge_profile = Ppp_profile.Edge_profile
module Path_profile = Ppp_profile.Path_profile
module Obs = Ppp_obs.Metrics

exception Runtime_error of string
exception Exhausted

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let m_runs = Obs.counter "interp.runs"
let m_fuel_exhausted = Obs.counter "interp.fuel_exhausted"
let m_dyn_instrs = Obs.counter "interp.dyn_instrs"
let m_dyn_paths = Obs.counter "interp.dyn_paths"
let m_calls = Obs.counter "interp.calls"
let m_fuel_consumed = Obs.counter "interp.fuel_consumed"
let m_base_cost = Obs.counter "interp.base_cost"
let m_instr_cost = Obs.counter "interp.instr_cost"

let m_actions =
  Array.init Instr_rt.num_action_kinds (fun i ->
      Obs.counter ("interp.action." ^ Instr_rt.action_kind_name i))

type config = {
  fuel : int;
  collect_edges : bool;
  trace_paths : bool;
  instrumentation : Instr_rt.t option;
  overflow_policy : Instr_rt.Table.overflow_policy;
  telemetry : Telemetry.t option;
  layout : (string, int array) Hashtbl.t option;
      (* Per-routine block emission order for the pre-lowered VM (see
         [Layout]): order.(i) is the block placed i-th in the code array.
         Purely a placement hint — outcomes are byte-identical with any
         (or no) layout, which the differential suite asserts. The
         reference engine walks the AST and ignores it entirely. *)
  sampling : Sampling.spec option;
      (* Bursty collection sampling (the rt.sample metric family): when
         set, instrumented
         routines alternate between their instrumented and plain opcode
         streams at seeded burst boundaries. Program outcomes are
         byte-identical with sampling on or off; only the recorded
         profile (and instr_cost) changes. *)
  tier : Tier.spec option;
      (* Tiered in-VM re-optimization (the tier.* metric family): when
         set, routines start in their instrumented variant and a hotness
         controller swaps hot routines to an optimized re-lowering
         mid-run, at frame entry and loop back-edge OSR points. Program
         outcomes are byte-identical with tiering on or off; the
         recorded profile freezes per routine at its swap and instr_cost
         drops — that is the payoff being measured. *)
}

let default_config =
  {
    fuel = 2_000_000_000;
    collect_edges = true;
    trace_paths = true;
    instrumentation = None;
    overflow_policy = Instr_rt.Table.Drop;
    telemetry = None;
    layout = None;
    sampling = None;
    tier = None;
  }

type termination = Finished | Out_of_fuel of { stack_depth : int }

type outcome = {
  return_value : int option;
  output : int list;
  base_cost : int;
  instr_cost : int;
  dyn_instrs : int;
  dyn_paths : int;
  termination : termination;
  edge_profile : Edge_profile.program option;
  path_profile : Path_profile.program option;
  instr_state : Instr_rt.state option;
  tier_decisions : Tier.decision list;
}

let overhead o =
  if o.base_cost = 0 then 0.0
  else float_of_int o.instr_cost /. float_of_int o.base_cost

let exec_binop op a b =
  match op with
  | Ir.Add -> a + b
  | Ir.Sub -> a - b
  | Ir.Mul -> a * b
  | Ir.Div -> if b = 0 then error "division by zero" else a / b
  | Ir.Rem -> if b = 0 then error "remainder by zero" else a mod b
  | Ir.And -> a land b
  | Ir.Or -> a lor b
  | Ir.Xor -> a lxor b
  | Ir.Shl ->
      let c = b land 63 in
      if c > 62 then 0 else a lsl c
  | Ir.Shr ->
      let c = b land 63 in
      a asr min c 62
  | Ir.Lt -> if a < b then 1 else 0
  | Ir.Le -> if a <= b then 1 else 0
  | Ir.Gt -> if a > b then 1 else 0
  | Ir.Ge -> if a >= b then 1 else 0
  | Ir.Eq -> if a = b then 1 else 0
  | Ir.Ne -> if a <> b then 1 else 0

(* A call whose argument list is longer than the callee's register file
   would fault mid-copy with a bare [Invalid_argument]; catch it up front,
   once per run, with a located error instead. Calls to unknown routines
   stay lazy — they only fault if actually executed. *)
let validate_call_arities (p : Ir.program) =
  let routines = Hashtbl.create 17 in
  List.iter (fun (r : Ir.routine) -> Hashtbl.replace routines r.Ir.name r) p.routines;
  List.iter
    (fun (r : Ir.routine) ->
      Array.iter
        (fun (b : Ir.block) ->
          Array.iter
            (function
              | Ir.Call (_, callee, args) -> (
                  match Hashtbl.find_opt routines callee with
                  | None -> ()
                  | Some c ->
                      let n = List.length args in
                      if n > c.Ir.nregs then
                        error
                          "routine %s, block %s: call passes %d arguments but \
                           %s has only %d registers"
                          r.Ir.name b.Ir.label n callee c.Ir.nregs)
              | _ -> ())
            b.Ir.instrs)
        r.Ir.blocks)
    p.routines

let flush_metrics ~fuel ~termination ~fuel_left ~base_cost ~instr_cost
    ~dyn_instrs ~dyn_paths ~calls ~actions =
  Obs.incr m_runs;
  (match termination with
  | Out_of_fuel _ -> Obs.incr m_fuel_exhausted
  | Finished -> ());
  Obs.add m_dyn_instrs dyn_instrs;
  Obs.add m_dyn_paths dyn_paths;
  Obs.add m_calls calls;
  Obs.add m_fuel_consumed (fuel - fuel_left);
  Obs.add m_base_cost base_cost;
  Obs.add m_instr_cost instr_cost;
  Array.iteri (fun k n -> if n > 0 then Obs.add m_actions.(k) n) actions
