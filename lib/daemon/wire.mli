(** The daemon's frame protocol: length-prefixed, versioned, CRC-framed
    messages over a byte stream (a Unix-domain socket, or the socketpair
    between the server and a supervised worker).

    {v
      offset  size  field
      0       4     magic "PPPD"
      4       1     protocol version (1)
      5       4     payload length, big-endian
      9       4     CRC-32 of the payload, big-endian
      13      len   payload bytes
    v}

    Every read and write is EINTR-safe and short-transfer tolerant
    ({!Ppp_resilience.Robust_io}) and bounded by an optional absolute
    deadline, so a stalled or malicious peer costs bounded time, never a
    hung process. A frame that fails validation (bad magic, unsupported
    version, oversized length, checksum mismatch) is classified as
    [Corrupt] — the connection is then unusable (the stream cannot be
    resynchronized) and should be closed. *)

type error =
  | Closed  (** the peer closed (or reset) the connection *)
  | Timeout  (** the deadline passed before the frame completed *)
  | Corrupt of string  (** framing violation; close the connection *)

val version : int
val max_frame : int
(** Refuse frames larger than this (64 MiB): a corrupt length prefix
    must not become an unbounded allocation. *)

val write_frame :
  ?deadline:float -> Unix.file_descr -> string -> (unit, error) result

val read_frame :
  ?deadline:float -> Unix.file_descr -> (string, error) result

val error_message : error -> string

val error_diagnostic : error -> Ppp_resilience.Diagnostic.t
(** [Closed]/[Corrupt] map to [Unreachable]/[Corrupt]; [Timeout] to
    [Deadline_exceeded]. *)
