module Robust_io = Ppp_resilience.Robust_io
module Diagnostic = Ppp_resilience.Diagnostic
module Faults = Ppp_resilience.Faults
module Metrics = Ppp_obs.Metrics
module Jsonx = Ppp_obs.Jsonx
module Profile_io = Ppp_profile.Profile_io

let m_requests = Metrics.counter "daemon.requests"
let m_shed = Metrics.counter "daemon.shed"
let m_timeouts = Metrics.counter "daemon.timeouts"
let m_restarts = Metrics.counter "daemon.worker.restarts"
let m_retries = Metrics.counter "daemon.retries"
let m_store_served = Metrics.counter "daemon.store_served"

type config = {
  socket_path : string;
  store_dir : string;
  workers : int;
  queue_limit : int;
  default_deadline_ms : int;
  chaos_ops : bool;
  seed : int;
  quiet : bool;
}

let default_config ~socket_path ~store_dir =
  {
    socket_path;
    store_dir;
    workers = 2;
    queue_limit = 16;
    default_deadline_ms = 30_000;
    chaos_ops = false;
    seed = 1;
    quiet = false;
  }

(* How long the loop will block reading one client's request, and
   writing one client's reply: a peer that dribbles bytes slower than
   this is dropped rather than allowed to stall every other client. *)
let client_io_budget = 2.0

type job = {
  env : Ops.envelope;
  mutable client : Unix.file_descr option;  (* None once answered/gone *)
  deadline : float;
  mutable attempts : int;
}

type worker = {
  slot : int;
  mutable pid : int;  (* -1 while dead *)
  mutable fd : Unix.file_descr option;
  mutable job : job option;
  mutable failures : int;  (* consecutive, drives backoff *)
  mutable restart_at : float;
}

type t = {
  cfg : config;
  store : Store.t;
  listen_fd : Unix.file_descr;
  pool : worker array;
  queue : job Queue.t;
  rng : Faults.rng;
  started : float;
  mutable running : bool;
  mutable served : int;
  mutable restarts : int;
}

let log t fmt =
  if t.cfg.quiet then Format.ifprintf Format.err_formatter fmt
  else Format.eprintf ("pppd: " ^^ fmt ^^ "@.")

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- workers ----------------------------------------------------------- *)

(* The worker child: frames in, frames out, exit on any stream error.
   Never touches the store, the listen socket or other clients. *)
let worker_main ~chaos fd =
  let rec loop () =
    match Wire.read_frame fd with
    | Error _ -> Unix._exit 0
    | Ok payload ->
        let reply =
          match Ops.decode_request payload with
          | Error msg ->
              Ops.Failed
                {
                  code = "bad-request";
                  diagnostics = [ Diagnostic.make Diagnostic.Corrupt msg ];
                }
          | Ok env -> Ops.handle ~chaos env.Ops.req
        in
        (match Wire.write_frame fd (Ops.encode_reply reply) with
        | Ok () -> loop ()
        | Error _ -> Unix._exit 0)
  in
  loop ()

(* Fds the child must not inherit open: every parent-side descriptor
   keeps a connection or a sibling worker alive if leaked into a
   long-lived child. *)
let parent_fds t =
  t.listen_fd
  :: List.concat_map
       (fun w ->
         (match w.fd with Some fd -> [ fd ] | None -> [])
         @
         match w.job with
         | Some { client = Some c; _ } -> [ c ]
         | _ -> [])
       (Array.to_list t.pool)

let spawn_worker t w =
  let child_end, parent_end =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  match Unix.fork () with
  | 0 ->
      close_quiet parent_end;
      List.iter close_quiet (parent_fds t);
      worker_main ~chaos:t.cfg.chaos_ops child_end
  | pid ->
      close_quiet child_end;
      w.pid <- pid;
      w.fd <- Some parent_end;
      w.job <- None;
      w.restart_at <- 0.;
      log t "worker %d up (pid %d)" w.slot pid

(* Exponential backoff with seeded jitter: 50ms * 2^failures, capped at
   ~3.2s, plus up to 50ms of RNG jitter so a crash-looping pool does not
   restart in lockstep. *)
let schedule_restart t w =
  w.pid <- -1;
  (match w.fd with Some fd -> close_quiet fd | None -> ());
  w.fd <- None;
  w.failures <- w.failures + 1;
  let backoff =
    0.05 *. Float.of_int (1 lsl min 6 (w.failures - 1))
    +. (Float.of_int (Faults.int t.rng 50) /. 1000.)
  in
  w.restart_at <- Unix.gettimeofday () +. backoff;
  t.restarts <- t.restarts + 1;
  Metrics.incr m_restarts;
  log t "worker %d down, restart in %.0fms (failure %d)" w.slot
    (1000. *. backoff) w.failures

let kill_worker t w =
  if w.pid > 0 then begin
    Robust_io.kill_quiet w.pid Sys.sigkill;
    ignore (try Unix.waitpid [] w.pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
    schedule_restart t w
  end

(* ---- replying to clients ----------------------------------------------- *)

let answer t job reply =
  match job.client with
  | None -> ()
  | Some fd ->
      job.client <- None;
      let deadline = Unix.gettimeofday () +. client_io_budget in
      (match Wire.write_frame ~deadline fd (Ops.encode_reply reply) with
      | Ok () -> ()
      | Error _ -> log t "client went away before the reply");
      close_quiet fd

let answer_failed t job code msg kind =
  answer t job
    (Ops.Failed { code; diagnostics = [ Diagnostic.make kind msg ] })

(* ---- store serving ----------------------------------------------------- *)

(* Cache identity of a request: its canonical encoding with the
   client-specific fields zeroed. *)
let cache_key env = Ops.encode_request { env with Ops.id = 0; deadline_ms = 0 }

(* Sampling parameters are part of a collect's identity: a sampled dump
   must never be served where an exact one was asked for (or vice
   versa). The unsampled key keeps its historical shape, so a store
   written by an older daemon stays valid. *)
let collect_key ~bench ~scale ~sample_rate ~burst ~sample_seed =
  if sample_rate <= 1 then Printf.sprintf "%s/scale=%d" bench scale
  else
    Printf.sprintf "%s/scale=%d/rate=%d/burst=%d/seed=%d" bench scale
      sample_rate burst sample_seed

(* A plain merge is order-independent, so its key sorts the input CRCs;
   a decayed merge weights inputs by age, so its key keeps their order
   and carries the decay. *)
let merge_key ~decay dumps =
  let crcs =
    List.map
      (fun d -> Printf.sprintf "%08lx" (Ppp_resilience.Crc.string d))
      dumps
  in
  if decay >= 1.0 then List.sort compare crcs |> String.concat "+"
  else Printf.sprintf "decay=%h+" decay ^ String.concat "+" crcs

let served_meta = ("served_from_store", Jsonx.Bool true)

(* A store hit short-circuits the worker pool entirely. *)
let serve_from_store t (env : Ops.envelope) =
  match env.Ops.req with
  | Ops.Collect { bench; scale; sample_rate; burst; sample_seed } ->
      Store.get t.store ~kind:"profile"
        ~key:(collect_key ~bench ~scale ~sample_rate ~burst ~sample_seed)
      |> Option.map (fun body ->
             Ops.Okay
               {
                 body;
                 meta =
                   [ ("bench", Jsonx.Str bench); ("scale", Jsonx.Int scale);
                     served_meta ];
               })
  | Ops.Merge { dumps; decay } ->
      Store.get t.store ~kind:"merge" ~key:(merge_key ~decay dumps)
      |> Option.map (fun body -> Ops.Okay { body; meta = [ served_meta ] })
  | Ops.Opt _ -> (
      match Store.get t.store ~kind:"opt" ~key:(cache_key env) with
      | None -> None
      | Some encoded -> (
          (* The stored value is a whole encoded reply; decode to make
             sure we never relay bytes that stopped parsing. *)
          match Ops.decode_reply encoded with
          | Ok (Ops.Okay { body; meta }) ->
              Some (Ops.Okay { body; meta = meta @ [ served_meta ] })
          | Ok (Ops.Failed _) | Error _ -> None))
  | _ -> None

let put_logged t ~kind ~key value =
  match Store.put t.store ~kind ~key value with
  | Ok () -> ()
  | Error d -> log t "store put failed: %a" Diagnostic.pp d

(* Persist what a successful reply taught us. *)
let absorb_reply t (env : Ops.envelope) reply =
  match (env.Ops.req, reply) with
  | Ops.Collect { bench; scale; sample_rate; burst; sample_seed }, Ops.Okay { body; _ }
    ->
      put_logged t ~kind:"profile"
        ~key:(collect_key ~bench ~scale ~sample_rate ~burst ~sample_seed)
        body
  | Ops.Merge { dumps; decay }, Ops.Okay { body; _ } ->
      put_logged t ~kind:"merge" ~key:(merge_key ~decay dumps) body
  | Ops.Opt { name; _ }, Ops.Okay { meta; _ } ->
      put_logged t ~kind:"opt" ~key:(cache_key env) (Ops.encode_reply reply);
      (match List.assoc_opt "plans" meta with
      | Some (Jsonx.Str hex) -> (
          match Ops.string_of_hex hex with
          | Some plans when plans <> "" ->
              put_logged t ~kind:"plans" ~key:name plans
          | _ -> ())
      | _ -> ())
  | _ -> ()

(* An [Opt] with no plan bundle resumes from the plans persisted under
   its program name — the daemon-side half of incremental
   re-optimization across client invocations. *)
let inject_plans t (env : Ops.envelope) =
  match env.Ops.req with
  | Ops.Opt ({ plans = None; name; _ } as o) -> (
      match Store.get t.store ~kind:"plans" ~key:name with
      | Some text ->
          {
            env with
            Ops.req = Ops.Opt { o with plans = Some (Ops.hex_of_string text) };
          }
      | None -> env)
  | _ -> env

(* ---- parent-inline requests -------------------------------------------- *)

let status_reply t =
  let workers_up =
    Array.fold_left (fun n w -> if w.pid > 0 then n + 1 else n) 0 t.pool
  in
  Ops.Okay
    {
      body = "ok";
      meta =
        [ ("pid", Jsonx.Int (Unix.getpid ()));
          ("uptime_s", Jsonx.Float (Unix.gettimeofday () -. t.started));
          ("workers", Jsonx.Int (Array.length t.pool));
          ("workers_up", Jsonx.Int workers_up);
          ("restarts", Jsonx.Int t.restarts);
          ("served", Jsonx.Int t.served);
          ("queued", Jsonx.Int (Queue.length t.queue));
          ("store_entries", Jsonx.Int (List.length (Store.entries t.store)));
          ("store_quarantined", Jsonx.Int (Store.quarantined t.store)) ];
    }

(* ---- dispatch ---------------------------------------------------------- *)

let idle_worker t =
  Array.fold_left
    (fun acc w ->
      match acc with
      | Some _ -> acc
      | None -> if w.pid > 0 && w.job = None then Some w else None)
    None t.pool

let dispatch t =
  let rec go () =
    if not (Queue.is_empty t.queue) then
      match idle_worker t with
      | None -> ()
      | Some w -> (
          let job = Queue.pop t.queue in
          if job.client = None then go () (* already answered (timed out) *)
          else
            let payload = Ops.encode_request job.env in
            match
              Wire.write_frame ~deadline:(Unix.gettimeofday () +. client_io_budget)
                (Option.get w.fd) payload
            with
            | Ok () ->
                w.job <- Some job;
                go ()
            | Error _ ->
                (* Worker dead before it even took the job: requeue the
                   job (no attempt consumed) and recycle the slot. *)
                Queue.push job t.queue;
                kill_worker t w;
                go ())
  in
  go ()

let handle_worker_loss t w why =
  (match w.job with
  | Some job ->
      w.job <- None;
      if
        job.attempts = 0
        && Ops.is_idempotent job.env.Ops.req
        && Unix.gettimeofday () < job.deadline
      then begin
        job.attempts <- job.attempts + 1;
        Metrics.incr m_retries;
        log t "retrying request %d after worker loss" job.env.Ops.id;
        Queue.push job t.queue
      end
      else
        answer_failed t job "worker-lost"
        (Printf.sprintf "worker serving the request died (%s)" why)
          Diagnostic.Shard_lost
  | None -> ());
  schedule_restart t w

(* A worker fd became readable: either a reply frame or EOF/garbage. *)
let worker_event t w =
  match w.fd with
  | None -> ()
  | Some fd -> (
      match Wire.read_frame ~deadline:(Unix.gettimeofday () +. client_io_budget) fd with
      | Ok payload -> (
          match w.job with
          | None ->
              (* A frame with no job in flight is a protocol violation. *)
              kill_worker t w
          | Some job -> (
              w.job <- None;
              w.failures <- 0;
              match Ops.decode_reply payload with
              | Ok reply ->
                  absorb_reply t job.env reply;
                  t.served <- t.served + 1;
                  answer t job reply
              | Error msg ->
                  answer_failed t job "worker-lost"
                    (Printf.sprintf "worker reply unparsable: %s" msg)
                    Diagnostic.Corrupt))
      | Error Wire.Timeout ->
          (* Readable but not a whole frame within the budget: treat as
             a stall; the deadline sweep owns real timeouts. *)
          ()
      | Error (Wire.Closed | Wire.Corrupt _) ->
          (match Robust_io.waitpid_nohang w.pid with _ -> ());
          handle_worker_loss t w "connection lost")

(* Reap exited workers even when no frame tells us (e.g. an idle worker
   SIGKILLed by the chaos harness). *)
let reap t =
  Array.iter
    (fun w ->
      if w.pid > 0 then
        match Robust_io.waitpid_nohang w.pid with
        | Some _ -> handle_worker_loss t w "process exited"
        | None -> ())
    t.pool

(* SIGKILL any worker whose job overran its deadline. *)
let sweep_deadlines t =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun w ->
      match w.job with
      | Some job when now > job.deadline ->
          w.job <- None;
          Metrics.incr m_timeouts;
          answer_failed t job "timeout"
            (Printf.sprintf "request exceeded its %dms deadline"
               (if job.env.Ops.deadline_ms > 0 then job.env.Ops.deadline_ms
                else t.cfg.default_deadline_ms))
            Diagnostic.Deadline_exceeded;
          log t "request %d overran its deadline; killing worker %d"
            job.env.Ops.id w.slot;
          kill_worker t w
      | _ -> ())
    t.pool;
  (* Shed queued jobs that expired before any worker freed up. *)
  let requeue = Queue.create () in
  Queue.iter
    (fun job ->
      if job.client <> None then
        if now > job.deadline then begin
          Metrics.incr m_timeouts;
          answer_failed t job "timeout" "request expired while queued"
            Diagnostic.Deadline_exceeded
        end
        else Queue.push job requeue)
    t.queue;
  Queue.clear t.queue;
  Queue.transfer requeue t.queue

let restart_due t =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun w -> if w.pid <= 0 && now >= w.restart_at then spawn_worker t w)
    t.pool

(* ---- accepting --------------------------------------------------------- *)

let accept_client t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    ->
      ()
  | client, _ -> (
      let io_deadline = Unix.gettimeofday () +. client_io_budget in
      match Wire.read_frame ~deadline:io_deadline client with
      | Error e ->
          log t "dropping client: %s" (Wire.error_message e);
          close_quiet client
      | Ok payload -> (
          Metrics.incr m_requests;
          match Ops.decode_request payload with
          | Error msg ->
              let job =
                { env = { Ops.id = 0; deadline_ms = 0; req = Ops.Ping };
                  client = Some client; deadline = io_deadline; attempts = 0 }
              in
              answer_failed t job "bad-request" msg Diagnostic.Corrupt
          | Ok env -> (
              let budget_ms =
                if env.Ops.deadline_ms > 0 then env.Ops.deadline_ms
                else t.cfg.default_deadline_ms
              in
              let deadline =
                Unix.gettimeofday () +. (Float.of_int budget_ms /. 1000.)
              in
              let job = { env; client = Some client; deadline; attempts = 0 } in
              match env.Ops.req with
              | Ops.Ping ->
                  t.served <- t.served + 1;
                  answer t job (Ops.Okay { body = "pong"; meta = [] })
              | Ops.Status ->
                  t.served <- t.served + 1;
                  answer t job (status_reply t)
              | Ops.Shutdown ->
                  t.served <- t.served + 1;
                  answer t job (Ops.Okay { body = "bye"; meta = [] });
                  t.running <- false
              | _ -> (
                  let env = inject_plans t env in
                  let job = { job with env } in
                  match serve_from_store t env with
                  | Some reply ->
                      t.served <- t.served + 1;
                      Metrics.incr m_store_served;
                      answer t job reply
                  | None ->
                      let in_flight =
                        Array.fold_left
                          (fun n w -> if w.job <> None then n + 1 else n)
                          0 t.pool
                      in
                      if
                        idle_worker t = None
                        && Queue.length t.queue >= t.cfg.queue_limit
                      then begin
                        Metrics.incr m_shed;
                        log t "shedding request %d (queue %d, in flight %d)"
                          env.Ops.id (Queue.length t.queue) in_flight;
                        answer_failed t job "shed"
                          "daemon is saturated; run in-process instead"
                          Diagnostic.Degraded
                      end
                      else begin
                        Queue.push job t.queue;
                        dispatch t
                      end))))

(* ---- main loop --------------------------------------------------------- *)

let select_step t =
  let worker_fds =
    Array.to_list t.pool
    |> List.filter_map (fun w -> if w.pid > 0 then w.fd else None)
  in
  let now = Unix.gettimeofday () in
  (* Wake for the earliest deadline or restart, else tick at 250ms. *)
  let horizon =
    Array.fold_left
      (fun h w ->
        let h =
          match w.job with Some j -> Float.min h j.deadline | None -> h
        in
        if w.pid <= 0 then Float.min h w.restart_at else h)
      (now +. 0.25) t.pool
  in
  let timeout = Float.max 0.01 (horizon -. now) in
  match Unix.select (t.listen_fd :: worker_fds) [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  | readable, _, _ -> readable

let run cfg =
  let cfg = { cfg with workers = max 1 cfg.workers } in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let store, reopen_diags = Store.open_store ~dir:cfg.store_dir in
  (* A stale socket from a previous daemon that crashed: safe to remove,
     nothing can be listening on it once bind would fail. *)
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 16;
  let pool =
    Array.init cfg.workers (fun slot ->
        { slot; pid = -1; fd = None; job = None; failures = 0; restart_at = 0. })
  in
  let t =
    {
      cfg;
      store;
      listen_fd;
      pool;
      queue = Queue.create ();
      rng = Faults.rng ~seed:cfg.seed;
      started = Unix.gettimeofday ();
      running = true;
      served = 0;
      restarts = 0;
    }
  in
  List.iter (fun d -> log t "reopen: %a" Diagnostic.pp d) reopen_diags;
  let stop _ = t.running <- false in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle stop) in
  Array.iter (fun w -> spawn_worker t w) t.pool;
  log t "listening on %s (store %s, %d workers, %d entries, %d quarantined)"
    cfg.socket_path cfg.store_dir cfg.workers
    (List.length (Store.entries t.store))
    (Store.quarantined t.store);
  while t.running do
    let readable = select_step t in
    if List.memq t.listen_fd readable then accept_client t;
    Array.iter
      (fun w ->
        match w.fd with
        | Some fd when List.memq fd readable -> worker_event t w
        | _ -> ())
      t.pool;
    reap t;
    sweep_deadlines t;
    restart_due t;
    dispatch t;
    List.iter (fun d -> log t "store: %a" Diagnostic.pp d)
      (Store.drain_diagnostics t.store)
  done;
  (* Orderly shutdown: refuse new clients, fail what is still queued,
     terminate workers, release the socket and the store. *)
  close_quiet t.listen_fd;
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Queue.iter
    (fun job ->
      answer_failed t job "shed" "daemon is shutting down" Diagnostic.Degraded)
    t.queue;
  Array.iter
    (fun w ->
      (match w.job with
      | Some job ->
          answer_failed t job "shed" "daemon is shutting down" Diagnostic.Degraded
      | None -> ());
      if w.pid > 0 then begin
        (match w.fd with Some fd -> close_quiet fd | None -> ());
        Robust_io.kill_quiet w.pid Sys.sigterm;
        match Robust_io.waitpid_nohang w.pid with
        | Some _ -> ()
        | None ->
            Robust_io.kill_quiet w.pid Sys.sigkill;
            ignore
              (try Unix.waitpid [] w.pid
               with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
      end)
    t.pool;
  Store.close t.store;
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  log t "stopped after serving %d requests (%d restarts)" t.served t.restarts
