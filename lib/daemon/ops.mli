(** The daemon's request/reply vocabulary and its JSON wire codecs.

    A request travels as one {!Wire} frame holding the JSON of an
    {!envelope}; the reply comes back as one frame holding the JSON of a
    {!reply}. Envelopes carry a client-chosen id (echoed back, so a retry
    after a worker death can be correlated) and the request's deadline
    budget in milliseconds. All payloads are strings of the repo's
    existing textual formats — v2 profile dumps, [.pir] program text,
    session plan exports — so the daemon never invents a second
    serialization for domain data; binary-unsafe fields (marshaled plans)
    travel hex-encoded.

    {!handle} is the worker-side interpreter: it holds a resident
    {!Ppp_session.Session} per program name, so repeated [Opt] requests
    for the same program reuse memoized analyses and [--iterate]
    resumes across client invocations. It never raises — failures come
    back as [Failed] replies with classified diagnostics. *)

type request =
  | Ping
  | Collect of {
      bench : string;
      scale : int;
      sample_rate : int;
          (** sampling-rate denominator ({!Ppp_interp.Sampling}); [<= 1]
              collects exactly (the engine's path tracer), [> 1] collects
              under bursty sampled PPP instrumentation and dumps
              inverse-rate estimates. Omitted from the wire at 1, so
              older clients and daemons interoperate. *)
      burst : int;  (** burst length; on the wire only when non-default *)
      sample_seed : int;  (** phase seed; on the wire only when non-zero *)
    }
  | Merge of {
      dumps : string list;
      decay : float;
          (** [1.0] is the plain commutative merge; [< 1.0] weights input
              [i] of [n] (oldest first) by [decay ^ (n-1-i)]
              ({!Ppp_profile.Profile_io.Raw.merge_decayed}). Omitted from
              the wire at 1.0. *)
    }
  | Opt of {
      name : string;  (** session key; programs with equal names share analyses *)
      program : string;  (** [.pir] source text *)
      profile : string option;  (** optional profile dump to apply *)
      iterate : int;  (** >1 runs the incremental re-optimization loop *)
      plans : string option;  (** hex of a session plan export to resume from *)
    }
  | Status
  | Shutdown
  | Stall of float  (** chaos: sleep this many seconds, then reply to Ping *)
  | Crash  (** chaos: exit abruptly without replying *)

type envelope = { id : int; deadline_ms : int; req : request }

type reply =
  | Okay of { body : string; meta : (string * Ppp_obs.Jsonx.t) list }
  | Failed of { code : string; diagnostics : Ppp_resilience.Diagnostic.t list }
      (** [code] is one of ["bad-request"], ["timeout"], ["shed"],
          ["worker-lost"], ["unsupported"], ["error"]. *)

val is_idempotent : request -> bool
(** Safe to retry on a fresh worker after the serving worker died
    mid-request. Everything here is a pure function of its payload
    (sessions are caches, not state the client observes), so all real
    requests are idempotent; only chaos ops are not retried. *)

val encode_request : envelope -> string
val decode_request : string -> (envelope, string) result
val encode_reply : reply -> string
val decode_reply : string -> (reply, string) result

val hex_of_string : string -> string
val string_of_hex : string -> string option

val handle : chaos:bool -> request -> reply
(** Execute a request in this process (the supervised worker's main
    loop, and the client's in-process degradation path). [chaos:false]
    rejects [Stall]/[Crash] with code ["unsupported"]. Never raises. *)
