module Diagnostic = Ppp_resilience.Diagnostic

type failure =
  | Unreachable of string
  | Timeout
  | Shed
  | Remote of string * Diagnostic.t list

let next_id = ref 0

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Unreachable
           (Printf.sprintf "cannot connect to %s: %s" socket
              (Unix.error_message e)))

let call ~socket ?(deadline_ms = 30_000) req =
  incr next_id;
  let env = { Ops.id = !next_id; deadline_ms; req } in
  let deadline = Unix.gettimeofday () +. (Float.of_int deadline_ms /. 1000.) in
  match connect ~socket with
  | Error f -> Error f
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Wire.write_frame ~deadline fd (Ops.encode_request env) with
          | Error Wire.Timeout -> Error Timeout
          | Error e -> Error (Unreachable (Wire.error_message e))
          | Ok () -> (
              match Wire.read_frame ~deadline fd with
              | Error Wire.Timeout -> Error Timeout
              | Error e -> Error (Unreachable (Wire.error_message e))
              | Ok payload -> (
                  match Ops.decode_reply payload with
                  | Error msg -> Error (Unreachable ("bad reply: " ^ msg))
                  | Ok (Ops.Okay { body; meta }) -> Ok (body, meta)
                  | Ok (Ops.Failed { code = "timeout"; _ }) -> Error Timeout
                  | Ok (Ops.Failed { code = "shed"; _ }) -> Error Shed
                  | Ok (Ops.Failed { code; diagnostics }) ->
                      Error (Remote (code, diagnostics)))))

let failure_diagnostic = function
  | Unreachable msg ->
      Diagnostic.errorf Diagnostic.Unreachable "daemon unreachable: %s" msg
  | Timeout ->
      Diagnostic.make Diagnostic.Deadline_exceeded
        "daemon request exceeded its deadline"
  | Shed ->
      Diagnostic.make ~severity:Diagnostic.Warning Diagnostic.Degraded
        "daemon shed the request under load"
  | Remote (code, _) ->
      Diagnostic.errorf Diagnostic.Io "daemon replied with failure code %S" code

module Exit = struct
  let ok = 0
  let daemon_unreachable = 10
  let request_timeout = 11
  let degraded = 12
end
