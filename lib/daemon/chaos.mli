(** The chaos harness: boots a real daemon in a scratch directory and
    drives it through every failure the robustness contract promises to
    absorb, asserting after each that the daemon {e never corrupts the
    store, never hangs a client, and serves byte-identical canonical
    profiles after a restart}.

    Phases (all seeded via {!Ppp_resilience.Faults}' SplitMix64, so a
    failing seed reproduces exactly):

    + {b baseline} — a [Collect] equals the in-process result
      byte-for-byte and is then served from the store, still identical;
    + {b worker-crash} — a worker killed mid-request costs one
      classified failure, after which the supervisor has restarted the
      slot and the daemon serves again;
    + {b deadline} — a stalled worker turns into a [timeout] reply
      within a small multiple of the requested deadline, never a hang;
    + {b socket-abuse} — garbage bytes, truncated frames and dribbled
      frames on the socket are dropped (or, when well-formed but slow,
      still served) without taking the daemon down;
    + {b store-corruption} — with the daemon SIGKILLed, on-disk entries
      are truncated and bit-flipped; the reopened daemon quarantines the
      damage, keeps serving intact entries byte-identically, and
      recomputes the rest;
    + {b kill-mid-request} — SIGKILL with a request in flight unblocks
      the client with a classified failure, and the next daemon on the
      same store still proves integrity.

    The harness runs real processes and sleeps through real backoff, so
    it lives behind [pppc chaos] and a dedicated CI job, not in the unit
    suite. *)

type phase = { name : string; ok : bool; detail : string }
type report = { seed : int; phases : phase list; passed : bool }

val run : ?seed:int -> ?scale:int -> dir:string -> unit -> report
(** [dir] is created if needed and used for the socket, the store and
    the daemon log; [seed] (default 1) drives every random choice;
    [scale] (default 2) sizes the collected workload. *)

val report_json : report -> Ppp_obs.Jsonx.t
