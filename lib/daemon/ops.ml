module Jsonx = Ppp_obs.Jsonx
module Diagnostic = Ppp_resilience.Diagnostic
module Profile_io = Ppp_profile.Profile_io
module Interp = Ppp_interp.Interp
module Session = Ppp_session.Session
module H = Ppp_harness.Pipeline

type request =
  | Ping
  | Collect of {
      bench : string;
      scale : int;
      sample_rate : int;  (** denominator; <= 1 collects exactly *)
      burst : int;
      sample_seed : int;
    }
  | Merge of { dumps : string list; decay : float  (** 1.0 = plain merge *) }
  | Opt of {
      name : string;
      program : string;
      profile : string option;
      iterate : int;
      plans : string option;
    }
  | Status
  | Shutdown
  | Stall of float
  | Crash

type envelope = { id : int; deadline_ms : int; req : request }

type reply =
  | Okay of { body : string; meta : (string * Jsonx.t) list }
  | Failed of { code : string; diagnostics : Diagnostic.t list }

let is_idempotent = function
  | Ping | Collect _ | Merge _ | Opt _ | Status | Shutdown -> true
  | Stall _ | Crash -> false

(* ---- hex --------------------------------------------------------------- *)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    try
      let b = Buffer.create (n / 2) in
      for i = 0 to (n / 2) - 1 do
        Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
      done;
      Some (Buffer.contents b)
    with _ -> None

(* ---- codecs ------------------------------------------------------------ *)

let opt_str = function None -> Jsonx.Null | Some s -> Jsonx.Str s

let request_to_json = function
  | Ping -> Jsonx.Obj [ ("op", Jsonx.Str "ping") ]
  | Collect { bench; scale; sample_rate; burst; sample_seed } ->
      (* Sampling fields are omitted at their defaults, so requests from
         older clients and to older daemons stay wire-compatible. *)
      Jsonx.Obj
        ([ ("op", Jsonx.Str "collect"); ("bench", Jsonx.Str bench);
           ("scale", Jsonx.Int scale) ]
        @ (if sample_rate <= 1 then []
           else [ ("sample_rate", Jsonx.Int sample_rate) ])
        @ (if burst = Ppp_interp.Sampling.default_burst then []
           else [ ("burst", Jsonx.Int burst) ])
        @ if sample_seed = 0 then []
          else [ ("sample_seed", Jsonx.Int sample_seed) ])
  | Merge { dumps; decay } ->
      Jsonx.Obj
        ([ ("op", Jsonx.Str "merge");
           ("dumps", Jsonx.Arr (List.map (fun d -> Jsonx.Str d) dumps)) ]
        @ if decay >= 1.0 then [] else [ ("decay", Jsonx.Float decay) ])
  | Opt { name; program; profile; iterate; plans } ->
      Jsonx.Obj
        [ ("op", Jsonx.Str "opt"); ("name", Jsonx.Str name);
          ("program", Jsonx.Str program); ("profile", opt_str profile);
          ("iterate", Jsonx.Int iterate); ("plans", opt_str plans) ]
  | Status -> Jsonx.Obj [ ("op", Jsonx.Str "status") ]
  | Shutdown -> Jsonx.Obj [ ("op", Jsonx.Str "shutdown") ]
  | Stall s -> Jsonx.Obj [ ("op", Jsonx.Str "stall"); ("seconds", Jsonx.Float s) ]
  | Crash -> Jsonx.Obj [ ("op", Jsonx.Str "crash") ]

let encode_request { id; deadline_ms; req } =
  Jsonx.to_string
    (Jsonx.Obj
       [ ("id", Jsonx.Int id); ("deadline_ms", Jsonx.Int deadline_ms);
         ("req", request_to_json req) ])

let str_member j key =
  match Jsonx.member j key with Some (Jsonx.Str s) -> Some s | _ -> None

let int_member j key =
  match Jsonx.member j key with Some (Jsonx.Int i) -> Some i | _ -> None

let opt_str_member j key =
  match Jsonx.member j key with
  | Some (Jsonx.Str s) -> Some s
  | Some Jsonx.Null | None | Some _ -> None

let request_of_json j =
  match str_member j "op" with
  | Some "ping" -> Ok Ping
  | Some "collect" -> (
      match (str_member j "bench", int_member j "scale") with
      | Some bench, Some scale ->
          let sample_rate =
            Option.value ~default:1 (int_member j "sample_rate")
          in
          let burst =
            Option.value ~default:Ppp_interp.Sampling.default_burst
              (int_member j "burst")
          in
          let sample_seed = Option.value ~default:0 (int_member j "sample_seed") in
          if sample_rate < 1 || burst < 1 then
            Error "collect sample_rate and burst must be >= 1"
          else Ok (Collect { bench; scale; sample_rate; burst; sample_seed })
      | _ -> Error "collect needs bench and scale")
  | Some "merge" -> (
      match Jsonx.member j "dumps" with
      | Some (Jsonx.Arr items) ->
          let dumps =
            List.filter_map (function Jsonx.Str s -> Some s | _ -> None) items
          in
          let decay =
            match Jsonx.member j "decay" with
            | Some (Jsonx.Float f) -> f
            | Some (Jsonx.Int i) -> float_of_int i
            | _ -> 1.0
          in
          if List.length dumps <> List.length items then
            Error "merge dumps must be strings"
          else if not (decay > 0.0 && decay <= 1.0) then
            Error "merge decay must be in (0, 1]"
          else Ok (Merge { dumps; decay })
      | _ -> Error "merge needs a dumps array")
  | Some "opt" -> (
      match (str_member j "name", str_member j "program") with
      | Some name, Some program ->
          Ok
            (Opt
               {
                 name;
                 program;
                 profile = opt_str_member j "profile";
                 iterate =
                   (match int_member j "iterate" with Some i -> i | None -> 1);
                 plans = opt_str_member j "plans";
               })
      | _ -> Error "opt needs name and program")
  | Some "status" -> Ok Status
  | Some "shutdown" -> Ok Shutdown
  | Some "stall" -> (
      match Jsonx.member j "seconds" with
      | Some (Jsonx.Float s) -> Ok (Stall s)
      | Some (Jsonx.Int s) -> Ok (Stall (float_of_int s))
      | _ -> Error "stall needs seconds")
  | Some "crash" -> Ok Crash
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
  | None -> Error "request has no op"

let decode_request payload =
  match Jsonx.of_string payload with
  | exception Jsonx.Parse_error msg -> Error ("malformed request JSON: " ^ msg)
  | j -> (
      match (int_member j "id", int_member j "deadline_ms", Jsonx.member j "req") with
      | Some id, Some deadline_ms, Some req_j -> (
          match request_of_json req_j with
          | Ok req -> Ok { id; deadline_ms; req }
          | Error e -> Error e)
      | _ -> Error "envelope needs id, deadline_ms and req")

let encode_reply = function
  | Okay { body; meta } ->
      Jsonx.to_string
        (Jsonx.Obj
           [ ("ok", Jsonx.Bool true); ("body", Jsonx.Str body);
             ("meta", Jsonx.Obj meta) ])
  | Failed { code; diagnostics } ->
      Jsonx.to_string
        (Jsonx.Obj
           [ ("ok", Jsonx.Bool false); ("code", Jsonx.Str code);
             ("diagnostics", Diagnostic.list_to_json diagnostics) ])

let kind_of_name =
  let kinds =
    Diagnostic.
      [ Corrupt; Stale; Unknown_routine; Truncated; Exhausted; Saturated;
        Shard_lost; Io; Unreachable; Deadline_exceeded; Degraded; Quarantined ]
  in
  fun name ->
    List.find_opt (fun k -> Diagnostic.kind_name k = name) kinds

let diagnostic_of_json j =
  let kind =
    match str_member j "kind" with
    | Some n -> ( match kind_of_name n with Some k -> k | None -> Diagnostic.Io)
    | None -> Diagnostic.Io
  in
  let severity =
    match str_member j "severity" with
    | Some "warning" -> Diagnostic.Warning
    | _ -> Diagnostic.Error
  in
  let line = int_member j "line" in
  let token = str_member j "token" in
  let routine = str_member j "routine" in
  let message = Option.value ~default:"" (str_member j "message") in
  Diagnostic.make ~severity ?line ?token ?routine kind message

let decode_reply payload =
  match Jsonx.of_string payload with
  | exception Jsonx.Parse_error msg -> Error ("malformed reply JSON: " ^ msg)
  | j -> (
      match Jsonx.member j "ok" with
      | Some (Jsonx.Bool true) ->
          let body = Option.value ~default:"" (str_member j "body") in
          let meta =
            match Jsonx.member j "meta" with
            | Some (Jsonx.Obj fields) -> fields
            | _ -> []
          in
          Ok (Okay { body; meta })
      | Some (Jsonx.Bool false) ->
          let code = Option.value ~default:"error" (str_member j "code") in
          let diagnostics =
            match Jsonx.member j "diagnostics" with
            | Some (Jsonx.Arr ds) -> List.map diagnostic_of_json ds
            | _ -> []
          in
          Ok (Failed { code; diagnostics })
      | _ -> Error "reply has no ok field")

(* ---- execution --------------------------------------------------------- *)

let fail code fmt =
  Format.kasprintf
    (fun msg ->
      Failed { code; diagnostics = [ Diagnostic.make Diagnostic.Io msg ] })
    fmt

(* Resident per-program-name sessions: the reason a warm daemon beats a
   cold process. Keyed by name, synced to each request's program, so an
   edited program naturally dirties only the routines it changed. *)
let sessions : (string, Session.t) Hashtbl.t = Hashtbl.create 8

let session_for name =
  match Hashtbl.find_opt sessions name with
  | Some s -> s
  | None ->
      let s = Session.create ~name () in
      Hashtbl.add sessions name s;
      s

let handle_collect ~bench ~scale ~sample_rate ~burst ~sample_seed =
  match Ppp_workloads.Spec.find_opt bench with
  | None ->
      Failed
        {
          code = "bad-request";
          diagnostics =
            [ Diagnostic.errorf Diagnostic.Unknown_routine
                "unknown benchmark %S" bench ];
        }
  | Some b ->
      let p = b.Ppp_workloads.Spec.build ~scale in
      let body =
        if sample_rate <= 1 then
          let o = Interp.run p in
          Format.asprintf "%t" (fun ppf ->
              Profile_io.save ?edges:o.Interp.edge_profile
                ?paths:o.Interp.path_profile ppf p)
        else
          let spec =
            Ppp_interp.Sampling.spec ~burst ~seed:sample_seed
              ~denom:sample_rate ()
          in
          Profile_io.Raw.to_string (Ppp_harness.Shard.collect_sampled ~spec p)
      in
      let meta =
        [ ("bench", Jsonx.Str bench); ("scale", Jsonx.Int scale) ]
        @
        if sample_rate <= 1 then []
        else [ ("sample_rate", Jsonx.Int sample_rate); ("burst", Jsonx.Int burst) ]
      in
      Okay { body; meta }

let handle_merge ~dumps ~decay =
  let raws = List.map Profile_io.Raw.parse dumps in
  let merged =
    if decay >= 1.0 then Profile_io.Raw.merge raws
    else Profile_io.Raw.merge_decayed ~decay raws
  in
  let diagnostics =
    List.concat_map Profile_io.Raw.diagnostics raws
    @ Profile_io.Raw.diagnostics merged
  in
  Okay
    {
      body = Profile_io.Raw.to_string merged;
      meta =
        [ ("mass", Jsonx.Int (Profile_io.Raw.mass merged));
          ("lost", Jsonx.Int (Profile_io.Raw.lost merged));
          ("diagnostics", Diagnostic.list_to_json diagnostics) ];
    }

let handle_opt ~name ~program ~profile ~iterate ~plans =
  match Ppp_ir.Parse.program_of_string program with
  | exception Ppp_ir.Parse.Error e ->
      Failed
        {
          code = "bad-request";
          diagnostics =
            [ Diagnostic.make ~line:e.Ppp_ir.Parse.line
                ?token:e.Ppp_ir.Parse.token Diagnostic.Corrupt
                e.Ppp_ir.Parse.message ];
        }
  | exception Invalid_argument msg -> fail "bad-request" "ill-formed program: %s" msg
  | p -> (
      let session = session_for name in
      let imported, import_diags =
        match plans with
        | None -> (0, [])
        | Some hex -> (
            match string_of_hex hex with
            | None ->
                (0, [ Diagnostic.make Diagnostic.Corrupt "plans field is not hex" ])
            | Some text ->
                (* import_plans fingerprint-checks every record itself,
                   but it needs the session synced to this program first. *)
                ignore (Session.sync session p);
                Session.import_plans session p text)
      in
      let finish ~optimized ~extra_meta =
        let plans_out = Session.export_plans session in
        Okay
          {
            body = optimized;
            meta =
              extra_meta
              @ [ ("plans", Jsonx.Str (hex_of_string plans_out));
                  ("plans_imported", Jsonx.Int imported);
                  ("diagnostics", Diagnostic.list_to_json import_diags) ];
          }
      in
      if iterate > 1 then begin
        if profile <> None then
          fail "bad-request" "profile cannot be combined with iterate"
        else
          let gens = H.reoptimize ~session ~iterations:iterate ~name p in
          let last = List.nth gens (List.length gens - 1) in
          let gen_meta =
            Jsonx.Arr
              (List.map
                 (fun (g : H.generation) ->
                   Jsonx.Obj
                     [ ("gen", Jsonx.Int g.H.gen);
                       ("dirty", Jsonx.Int (List.length g.H.dirty));
                       ("reinstrumented", Jsonx.Int g.H.reinstrumented);
                       ("reused_plans", Jsonx.Int g.H.reused_plans);
                       ("matched_fraction", Jsonx.Float g.H.matched_fraction) ])
                 gens)
          in
          finish
            ~optimized:(Ppp_ir.Pp_ir.to_string last.H.prep.H.optimized)
            ~extra_meta:[ ("generations", gen_meta) ]
      end
      else
        match profile with
        | None ->
            let prep = H.prepare ~session ~name p in
            finish
              ~optimized:(Ppp_ir.Pp_ir.to_string prep.H.optimized)
              ~extra_meta:[]
        | Some dump -> (
            match Profile_io.load p dump with
            | Error ds -> Failed { code = "bad-request"; diagnostics = ds }
            | Ok loaded ->
                let prep = H.prepare_with_profile ~session ~name ~loaded p in
                finish
                  ~optimized:(Ppp_ir.Pp_ir.to_string prep.H.optimized)
                  ~extra_meta:
                    [ ( "matched_fraction",
                        Jsonx.Float loaded.Profile_io.matched_fraction );
                      ( "profile_diagnostics",
                        Diagnostic.list_to_json loaded.Profile_io.diagnostics )
                    ]))

let handle_status () =
  let stats =
    Hashtbl.fold
      (fun name s acc ->
        let st = Session.stats s in
        Jsonx.Obj
          [ ("name", Jsonx.Str name); ("hits", Jsonx.Int st.Session.hits);
            ("misses", Jsonx.Int st.Session.misses) ]
        :: acc)
      sessions []
  in
  Okay
    {
      body = "ok";
      meta =
        [ ("pid", Jsonx.Int (Unix.getpid ()));
          ("sessions", Jsonx.Arr stats) ];
    }

let handle ~chaos req =
  try
    match req with
    | Ping -> Okay { body = "pong"; meta = [] }
    | Collect { bench; scale; sample_rate; burst; sample_seed } ->
        handle_collect ~bench ~scale ~sample_rate ~burst ~sample_seed
    | Merge { dumps; decay } -> handle_merge ~dumps ~decay
    | Opt { name; program; profile; iterate; plans } ->
        handle_opt ~name ~program ~profile ~iterate ~plans
    | Status -> handle_status ()
    | Shutdown -> Okay { body = "bye"; meta = [] }
    | Stall s ->
        if not chaos then fail "unsupported" "chaos ops are disabled"
        else begin
          Unix.sleepf s;
          Okay { body = "stalled"; meta = [] }
        end
    | Crash ->
        if not chaos then fail "unsupported" "chaos ops are disabled"
        else Unix._exit 42
  with
  | Interp.Runtime_error msg -> fail "error" "runtime error: %s" msg
  | Stack_overflow -> fail "error" "stack overflow while serving request"
  | Out_of_memory -> fail "error" "out of memory while serving request"
