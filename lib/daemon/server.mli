(** The resident profile service: a single-threaded [select] event loop
    owning the persistent {!Store} and a pool of supervised worker
    subprocesses that execute {!Ops} requests.

    The division of labor is single-writer by construction: {e only the
    parent} touches the store (so no mutation can race), and {e only
    workers} run domain code (so a crash, stall or runaway request never
    takes the store owner down). Each worker speaks {!Wire} frames over
    its socketpair; clients connect to a Unix-domain socket, send one
    framed request, receive one framed reply, and the connection closes.

    Robustness contract:
    - {b Deadlines.} Every request carries a millisecond budget (the
      config default when unset). A worker that overruns is SIGKILLed,
      the client gets a [Failed "timeout"] reply, and the slot restarts.
    - {b Bounded queue.} When every worker is busy and the queue is at
      [queue_limit], new requests are shed immediately with
      [Failed "shed"] — load makes the daemon slow to accept, never
      unbounded in memory, and clients degrade to the in-process path.
    - {b Supervision.} A dead worker restarts after seeded-jitter
      exponential backoff ({!Ppp_resilience.Faults} RNG, so chaos runs
      are reproducible). An idempotent request whose worker died
      mid-flight is retried once on a fresh worker before the client
      sees [Failed "worker-lost"].
    - {b Store serving.} [Collect] and [Merge] results and full [Opt]
      replies are persisted and served from the store on identical
      re-requests; [Opt] requests that carry no plan bundle resume from
      the routine plans persisted under the program's name, which is
      what makes a warm daemon's [--iterate] cheaper than a cold
      process. *)

type config = {
  socket_path : string;
  store_dir : string;
  workers : int;  (** pool size, clamped to at least 1 *)
  queue_limit : int;  (** queued (not in-flight) requests before shedding *)
  default_deadline_ms : int;  (** for envelopes with [deadline_ms <= 0] *)
  chaos_ops : bool;  (** accept [Stall]/[Crash] requests (tests only) *)
  seed : int;  (** restart-jitter RNG seed *)
  quiet : bool;
}

val default_config : socket_path:string -> store_dir:string -> config
(** 2 workers, queue limit 16, 30s default deadline, chaos off, seed 1. *)

val run : config -> unit
(** Serve until a [Shutdown] request (or SIGTERM/SIGINT). Replays the
    store's reopen diagnostics to stderr (unless [quiet]), then accepts.
    On exit: workers are terminated, the socket unlinked, the store
    closed. Raises [Unix.Unix_error] only for startup failures (socket
    already bound, unwritable store dir) — never once serving. *)
