(** The daemon's persistent, content-validating artifact store.

    Entries are (kind, key) pairs holding opaque byte payloads — canonical
    v2 profile dumps, exported placement plans, optimized program text —
    laid out one file per entry under [dir/objects/] as
    [<kind>-<fnv64(key) in hex>.obj]. Each file is self-describing:

    {v
      ppp-store v1 kind=K key=<hex of key> len=N crc=XXXXXXXX\n
      <N payload bytes>\n
    v}

    so the directory scan, not the journal, is the source of truth on
    reopen. Every mutation is atomic (same-directory temp file, fsync,
    rename) and also appended to [dir/journal.log] — an audit trail whose
    lines carry their own CRC, salvaged (torn tail truncated) on reopen.

    The discipline throughout is {e never raise, never serve wrong
    bytes}: a payload is CRC-checked on every [get], and any entry that
    fails validation — on reopen or on read — is moved to
    [dir/quarantine/] and reported as a [Quarantined] diagnostic rather
    than returned. I/O failures become [Io] diagnostics. *)

type t

val open_store : dir:string -> t * Ppp_resilience.Diagnostic.t list
(** Create [dir] (and [objects/], [quarantine/]) as needed, sweep stale
    temp files, validate every object file (quarantining failures),
    salvage the journal, and return the store with the diagnostics of
    everything that was wrong. Never raises. *)

val put : t -> kind:string -> key:string -> string ->
  (unit, Ppp_resilience.Diagnostic.t) result
(** Atomically persist an entry, replacing any previous payload for the
    same (kind, key). Writing an identical payload is a no-op. *)

val get : t -> kind:string -> key:string -> string option
(** Re-validates the payload's CRC on every read; a mismatch quarantines
    the entry and returns [None] (the diagnostic is queued, see
    {!drain_diagnostics}). *)

val mem : t -> kind:string -> key:string -> bool

val entries : t -> (string * string * int) list
(** [(kind, key, payload length)] of every live entry, sorted. *)

val quarantined : t -> int
(** Entries quarantined since the store was opened (including reopen-time
    sweeps). *)

val drain_diagnostics : t -> Ppp_resilience.Diagnostic.t list
(** Diagnostics accumulated by [get]/[put] since the last drain. *)

val close : t -> unit

val dir : t -> string
