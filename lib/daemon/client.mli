(** The client side of the daemon protocol: connect, send one framed
    request, read one framed reply, classify every way that can fail.

    Failures are values, not exceptions, because each maps to a distinct
    documented [pppc] exit code (see {!Exit}) and to a distinct recovery:
    [Unreachable] and [Shed] mean "fall back to the in-process path",
    [Timeout] means the budget is spent, [Remote] carries the daemon's
    own classified diagnostics. *)

type failure =
  | Unreachable of string
      (** no socket, connection refused, handshake/framing failure *)
  | Timeout  (** the reply did not arrive within the deadline *)
  | Shed  (** the daemon refused the request under load *)
  | Remote of string * Ppp_resilience.Diagnostic.t list
      (** the daemon replied [Failed]; the string is its failure code *)

val call :
  socket:string ->
  ?deadline_ms:int ->
  Ops.request ->
  (string * (string * Ppp_obs.Jsonx.t) list, failure) result
(** One request/reply exchange; [Ok (body, meta)] on success. The
    deadline (default 30s) bounds the whole exchange — connect, send,
    await — as one absolute budget, and is also shipped in the envelope
    so the server enforces the same number. Never raises, never hangs. *)

val failure_diagnostic : failure -> Ppp_resilience.Diagnostic.t

module Exit : sig
  val ok : int  (** 0 *)

  val daemon_unreachable : int
  (** 10: [--daemon] was required but the daemon could not be reached *)

  val request_timeout : int
  (** 11: the daemon accepted the request but the deadline expired *)

  val degraded : int
  (** 12: the work succeeded, but on the in-process fallback path after
      the daemon was unreachable or shed the request *)
end
