module Robust_io = Ppp_resilience.Robust_io
module Faults = Ppp_resilience.Faults
module Crc = Ppp_resilience.Crc
module Jsonx = Ppp_obs.Jsonx

type phase = { name : string; ok : bool; detail : string }
type report = { seed : int; phases : phase list; passed : bool }

let mkdir_p dir =
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- daemon lifecycle -------------------------------------------------- *)

let daemon_config ~dir ~seed =
  {
    (Server.default_config
       ~socket_path:(Filename.concat dir "pppd.sock")
       ~store_dir:(Filename.concat dir "store"))
    with
    Server.chaos_ops = true;
    workers = 2;
    seed;
    quiet = false;
  }

(* Fork a real daemon, stderr to [dir/pppd.log] (appended across the
   restarts the harness performs, so the log tells the whole story). *)
let start_daemon ~dir cfg =
  let log_fd =
    Unix.openfile (Filename.concat dir "pppd.log")
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  match Unix.fork () with
  | 0 ->
      Unix.dup2 log_fd Unix.stderr;
      close_quiet log_fd;
      (try Server.run cfg with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      close_quiet log_fd;
      pid

let wait_ready ~socket =
  let deadline = Unix.gettimeofday () +. 15. in
  let rec poll () =
    match Client.call ~socket ~deadline_ms:500 Ops.Ping with
    | Ok _ -> true
    | Error _ ->
        if Unix.gettimeofday () > deadline then false
        else begin
          Robust_io.sleep_until (Unix.gettimeofday () +. 0.05);
          poll ()
        end
  in
  poll ()

let wait_exit pid =
  let deadline = Unix.gettimeofday () +. 5. in
  let rec poll () =
    match Robust_io.waitpid_nohang pid with
    | Some _ -> ()
    | None ->
        if Unix.gettimeofday () > deadline then begin
          Robust_io.kill_quiet pid Sys.sigkill;
          ignore
            (try Unix.waitpid [] pid
             with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
        end
        else begin
          Robust_io.sleep_until (Unix.gettimeofday () +. 0.05);
          poll ()
        end
  in
  poll ()

let stop_daemon ~socket pid =
  ignore (Client.call ~socket ~deadline_ms:3000 Ops.Shutdown);
  wait_exit pid

(* ---- raw-socket abuse helpers ------------------------------------------ *)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
      close_quiet fd;
      None

let frame_bytes payload =
  let len = String.length payload in
  let buf = Bytes.create (13 + len) in
  Bytes.blit_string "PPPD" 0 buf 0 4;
  Bytes.set buf 4 (Char.chr Wire.version);
  let put_u32 pos v =
    Bytes.set buf pos (Char.chr ((v lsr 24) land 0xff));
    Bytes.set buf (pos + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set buf (pos + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set buf (pos + 3) (Char.chr (v land 0xff))
  in
  put_u32 5 len;
  put_u32 9 (Int32.to_int (Crc.string payload) land 0xffffffff);
  Bytes.blit_string payload 0 buf 13 len;
  Bytes.to_string buf

let send_raw fd s =
  ignore (Robust_io.write_string ~deadline:(Unix.gettimeofday () +. 2.) fd s)

(* ---- the phases -------------------------------------------------------- *)

let run ?(seed = 1) ?(scale = 2) ~dir () =
  mkdir_p dir;
  let rng = Faults.rng ~seed in
  let cfg = daemon_config ~dir ~seed in
  let socket = cfg.Server.socket_path in
  let objects_dir = Filename.concat cfg.Server.store_dir "objects" in
  let bench =
    (List.hd Ppp_workloads.Spec.all).Ppp_workloads.Spec.bench_name
  in
  let phases = ref [] in
  let record name ok detail = phases := { name; ok; detail } :: !phases in
  let call ?deadline_ms req = Client.call ~socket ?deadline_ms req in
  let collect () =
    call
      (Ops.Collect
         { bench; scale; sample_rate = 1;
           burst = Ppp_interp.Sampling.default_burst; sample_seed = 0 })
  in

  let pid = ref (start_daemon ~dir cfg) in
  if not (wait_ready ~socket) then begin
    record "boot" false "daemon did not become ready within 15s";
    { seed; phases = List.rev !phases; passed = false }
  end
  else begin
    (* A: daemon result == in-process result, then store-served and
       still byte-identical. *)
    let baseline = ref "" in
    (match
       Ops.handle ~chaos:false
         (Ops.Collect
            { bench; scale; sample_rate = 1;
              burst = Ppp_interp.Sampling.default_burst; sample_seed = 0 })
     with
    | Ops.Okay { body = expected; _ } -> (
        match (collect (), collect ()) with
        | Ok (first, _), Ok (second, meta2) ->
            baseline := first;
            let from_store =
              List.assoc_opt "served_from_store" meta2 = Some (Jsonx.Bool true)
            in
            if first <> expected then
              record "baseline" false "daemon dump differs from in-process dump"
            else if second <> first then
              record "baseline" false "store-served dump differs from computed"
            else if not from_store then
              record "baseline" false "second collect was not store-served"
            else
              record "baseline" true
                (Printf.sprintf "collect %s x2 byte-identical (%d bytes), \
                                 second from store" bench (String.length first))
        | r1, r2 ->
            let say = function
              | Ok _ -> "ok"
              | Error f -> Ppp_resilience.Diagnostic.(
                  (Client.failure_diagnostic f).message)
            in
            record "baseline" false
              (Printf.sprintf "collect failed: %s / %s" (say r1) (say r2)))
    | Ops.Failed _ -> record "baseline" false "in-process collect failed");

    (* B: a worker crash costs one classified failure, then the
       supervisor restores service. *)
    (match call Ops.Crash with
    | Error (Client.Remote ("worker-lost", _)) | Error Client.Unreachable _ -> (
        match call ~deadline_ms:2000 Ops.Ping with
        | Ok _ -> record "worker-crash" true "crash classified, daemon survives"
        | Error _ -> record "worker-crash" false "daemon unresponsive after crash")
    | Ok _ -> record "worker-crash" false "crash request unexpectedly succeeded"
    | Error f ->
        record "worker-crash" false
          ("unexpected failure class: "
          ^ (Client.failure_diagnostic f).Ppp_resilience.Diagnostic.message));

    (* C: a stalled worker becomes a bounded timeout, never a hang. *)
    let t0 = Unix.gettimeofday () in
    (match call ~deadline_ms:300 (Ops.Stall 3.0) with
    | Error Client.Timeout ->
        let dt = Unix.gettimeofday () -. t0 in
        if dt < 2.5 then
          record "deadline" true
            (Printf.sprintf "300ms deadline enforced in %.0fms" (1000. *. dt))
        else
          record "deadline" false
            (Printf.sprintf "timeout took %.1fs (budget was 300ms)" dt)
    | Ok _ -> record "deadline" false "stalled request unexpectedly succeeded"
    | Error f ->
        record "deadline" false
          ("expected timeout, got "
          ^ (Client.failure_diagnostic f).Ppp_resilience.Diagnostic.message));

    (* D: garbage, truncated and dribbled frames on the socket. *)
    (let garbage_ok =
       match raw_connect socket with
       | None -> false
       | Some fd ->
           send_raw fd "this is not a PPPD frame at all................";
           close_quiet fd;
           true
     in
     let truncated_ok =
       match raw_connect socket with
       | None -> false
       | Some fd ->
           let whole = frame_bytes (String.make 1000 'x') in
           send_raw fd (String.sub whole 0 20);
           close_quiet fd;
           true
     in
     let dribble_ok =
       match raw_connect socket with
       | None -> false
       | Some fd ->
           let frame =
             frame_bytes
               (Ops.encode_request
                  { Ops.id = 999; deadline_ms = 2000; req = Ops.Ping })
           in
           let n = String.length frame in
           let chunk = max 1 (n / 7) in
           let pos = ref 0 in
           while !pos < n do
             send_raw fd (String.sub frame !pos (min chunk (n - !pos)));
             pos := !pos + chunk;
             Robust_io.sleep_until (Unix.gettimeofday () +. 0.02)
           done;
           let got =
             match
               Wire.read_frame ~deadline:(Unix.gettimeofday () +. 3.) fd
             with
             | Ok payload -> (
                 match Ops.decode_reply payload with
                 | Ok (Ops.Okay { body = "pong"; _ }) -> true
                 | _ -> false)
             | Error _ -> false
           in
           close_quiet fd;
           got
     in
     let alive = match call ~deadline_ms:2000 Ops.Ping with Ok _ -> true | Error _ -> false in
     if garbage_ok && truncated_ok && dribble_ok && alive then
       record "socket-abuse" true
         "garbage and truncated frames dropped, dribbled frame served"
     else
       record "socket-abuse" false
         (Printf.sprintf "garbage=%b truncated=%b dribble=%b alive=%b"
            garbage_ok truncated_ok dribble_ok alive));

    (* E: SIGKILL the daemon, corrupt the store on disk (seeded), and
       prove the reopened daemon quarantines the damage and serves
       byte-identical profiles. *)
    Robust_io.kill_quiet !pid Sys.sigkill;
    wait_exit !pid;
    let corrupted =
      match Sys.readdir objects_dir with
      | exception Sys_error _ -> 0
      | names ->
          let objs =
            Array.to_list names
            |> List.filter (fun n -> Filename.check_suffix n ".obj")
            |> List.sort compare
          in
          List.filteri (fun i _ -> i < 2) objs
          |> List.mapi (fun i name ->
                 let path = Filename.concat objects_dir name in
                 let ic = open_in_bin path in
                 let contents =
                   Fun.protect
                     ~finally:(fun () -> close_in_noerr ic)
                     (fun () -> really_input_string ic (in_channel_length ic))
                 in
                 let damaged =
                   if i = 0 then
                     (* torn write: keep a seeded prefix *)
                     String.sub contents 0
                       (Faults.int rng (max 1 (String.length contents - 1)))
                   else begin
                     (* bit flip at a seeded offset *)
                     let b = Bytes.of_string contents in
                     let at = Faults.int rng (Bytes.length b) in
                     Bytes.set b at
                       (Char.chr (Char.code (Bytes.get b at) lxor 0x40));
                     Bytes.to_string b
                   end
                 in
                 let oc = open_out_bin path in
                 output_string oc damaged;
                 close_out oc;
                 1)
          |> List.fold_left ( + ) 0
    in
    pid := start_daemon ~dir cfg;
    if not (wait_ready ~socket) then
      record "store-corruption" false "daemon did not restart after corruption"
    else begin
      let quarantined =
        match call Ops.Status with
        | Ok (_, meta) -> (
            match List.assoc_opt "store_quarantined" meta with
            | Some (Jsonx.Int n) -> n
            | _ -> -1)
        | Error _ -> -1
      in
      match collect () with
      | Ok (body, _) when body = !baseline && quarantined >= corrupted ->
          record "store-corruption" true
            (Printf.sprintf
               "%d entries corrupted, %d quarantined, dump byte-identical"
               corrupted quarantined)
      | Ok (body, _) ->
          record "store-corruption" false
            (Printf.sprintf
               "identical=%b quarantined=%d (corrupted %d)"
               (body = !baseline) quarantined corrupted)
      | Error f ->
          record "store-corruption" false
            ("collect after corruption failed: "
            ^ (Client.failure_diagnostic f).Ppp_resilience.Diagnostic.message)
    end;

    (* F: SIGKILL with a request in flight: the client unblocks with a
       classified failure; a fresh daemon on the same store (plus a
       planted stale temp file) proves integrity again. *)
    (match Unix.fork () with
    | 0 -> (
        match call ~deadline_ms:5000 (Ops.Stall 3.0) with
        | Error (Client.Unreachable _ | Client.Timeout) -> Unix._exit 0
        | Ok _ -> Unix._exit 1
        | Error _ -> Unix._exit 2)
    | child ->
        Robust_io.sleep_until (Unix.gettimeofday () +. 0.3);
        Robust_io.kill_quiet !pid Sys.sigkill;
        wait_exit !pid;
        let rec reap () =
          match try Some (Unix.waitpid [] child) with
            | Unix.Unix_error (Unix.EINTR, _, _) -> None
            | Unix.Unix_error _ -> Some (child, Unix.WEXITED 3)
          with
          | Some (_, st) -> st
          | None -> reap ()
        in
        let client_status = reap () in
        let tmp = Filename.concat objects_dir ".chaos-leftover.tmp.1" in
        (try
           let oc = open_out_bin tmp in
           output_string oc "half a write";
           close_out oc
         with Sys_error _ -> ());
        pid := start_daemon ~dir cfg;
        let ready = wait_ready ~socket in
        let swept = not (Sys.file_exists tmp) in
        let identical =
          match collect () with Ok (b, _) -> b = !baseline | Error _ -> false
        in
        if client_status = Unix.WEXITED 0 && ready && swept && identical then
          record "kill-mid-request" true
            "client unblocked, temp swept, dump byte-identical after restart"
        else
          record "kill-mid-request" false
            (Printf.sprintf "client=%s ready=%b swept=%b identical=%b"
               (match client_status with
               | Unix.WEXITED n -> Printf.sprintf "exit %d" n
               | _ -> "signalled")
               ready swept identical));

    stop_daemon ~socket !pid;
    let phases = List.rev !phases in
    { seed; phases; passed = List.for_all (fun p -> p.ok) phases }
  end

let report_json r =
  Jsonx.Obj
    [
      ("seed", Jsonx.Int r.seed);
      ("passed", Jsonx.Bool r.passed);
      ( "phases",
        Jsonx.Arr
          (List.map
             (fun p ->
               Jsonx.Obj
                 [ ("name", Jsonx.Str p.name); ("ok", Jsonx.Bool p.ok);
                   ("detail", Jsonx.Str p.detail) ])
             r.phases) );
    ]
