module Crc = Ppp_resilience.Crc
module Diagnostic = Ppp_resilience.Diagnostic
module Metrics = Ppp_obs.Metrics

let m_put = Metrics.counter "daemon.store.put"
let m_hit = Metrics.counter "daemon.store.hit"
let m_miss = Metrics.counter "daemon.store.miss"
let m_quarantined = Metrics.counter "daemon.store.quarantined"
let m_salvaged = Metrics.counter "daemon.store.salvaged"

type entry = { key : string; len : int; crc : int; file : string }

type t = {
  dir : string;
  objects_dir : string;
  quarantine_dir : string;
  journal_path : string;
  mutable journal_fd : Unix.file_descr option;
  index : (string * string, entry) Hashtbl.t; (* (kind, key) -> entry *)
  mutable quarantined : int;
  mutable pending : Diagnostic.t list; (* reversed *)
}

(* ---- small pure helpers ------------------------------------------------ *)

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let crc_of s = Int32.to_int (Crc.string s) land 0xffffffff
let crc_hex s = Printf.sprintf "%08x" (crc_of s)

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    let ok = ref true in
    let b = Buffer.create (n / 2) in
    (try
       for i = 0 to (n / 2) - 1 do
         Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
       done
     with _ -> ok := false);
    if !ok then Some (Buffer.contents b) else None

(* [field line key] returns the value of [ key=] in a header line. *)
let field line key =
  let tag = " " ^ key ^ "=" in
  let tl = String.length tag and ll = String.length line in
  let rec scan i =
    if i + tl > ll then None
    else if String.sub line i tl = tag then begin
      let start = i + tl in
      let stop = ref start in
      while !stop < ll && line.[!stop] <> ' ' do incr stop done;
      Some (String.sub line start (!stop - start))
    end
    else scan (i + 1)
  in
  scan 0

let safe_kind kind =
  String.length kind > 0
  && String.for_all (fun c -> (c >= 'a' && c <= 'z') || c = '_') kind

let obj_file kind key = Printf.sprintf "%s-%s.obj" kind (fnv64 key)

let header ~kind ~key payload =
  Printf.sprintf "ppp-store v1 kind=%s key=%s len=%d crc=%s\n" kind
    (hex_encode key) (String.length payload) (crc_hex payload)

(* ---- never-raise filesystem wrappers ----------------------------------- *)

let io_diag ctx exn =
  Diagnostic.errorf Diagnostic.Io "%s: %s" ctx
    (match exn with
    | Unix.Unix_error (e, fn, _) -> Printf.sprintf "%s (%s)" (Unix.error_message e) fn
    | Sys_error m -> m
    | e -> Printexc.to_string e)

let mkdir_p dir =
  try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with e -> Error e

(* Atomic replacement: unique same-directory temp, full write, fsync,
   rename. EINTR on write is retried; any failure cleans the temp up and
   is reported, never raised. *)
let write_atomic_file ~path contents =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d" (Filename.basename path) (Unix.getpid ()))
  in
  try
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let b = Bytes.unsafe_of_string contents in
        let pos = ref 0 in
        while !pos < Bytes.length b do
          match Unix.write fd b !pos (Bytes.length b - !pos) with
          | n -> pos := !pos + n
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
        done;
        Unix.fsync fd);
    Unix.rename tmp path;
    Ok ()
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Error (io_diag (Printf.sprintf "writing %s" path) e)

(* ---- object encoding --------------------------------------------------- *)

let encode_entry ~kind ~key payload =
  header ~kind ~key payload ^ payload ^ "\n"

(* Parse and validate a whole object file. *)
let decode_entry contents =
  match String.index_opt contents '\n' with
  | None -> Error "missing header line"
  | Some nl -> (
      let line = String.sub contents 0 nl in
      if String.length line < 12 || String.sub line 0 12 <> "ppp-store v1" then
        Error "bad store magic"
      else
        match
          (field line "kind", field line "key", field line "len", field line "crc")
        with
        | Some kind, Some keyhex, Some len_s, Some crc_s -> (
            match (int_of_string_opt len_s, hex_decode keyhex) with
            | Some len, Some key ->
                let body_start = nl + 1 in
                if String.length contents < body_start + len + 1 then
                  Error "payload shorter than declared length"
                else
                  let payload = String.sub contents body_start len in
                  if crc_hex payload <> crc_s then Error "payload checksum mismatch"
                  else if not (safe_kind kind) then Error "invalid entry kind"
                  else Ok (kind, key, payload)
            | _ -> Error "unparsable header fields")
        | _ -> Error "incomplete header")

(* ---- quarantine -------------------------------------------------------- *)

let quarantine t ~file ~why =
  let src = Filename.concat t.objects_dir file in
  let dst = Filename.concat t.quarantine_dir (Printf.sprintf "%d-%s" t.quarantined file) in
  (try Unix.rename src dst
   with Unix.Unix_error _ -> ( try Sys.remove src with Sys_error _ -> ()));
  t.quarantined <- t.quarantined + 1;
  Metrics.incr m_quarantined;
  Diagnostic.errorf ~severity:Diagnostic.Warning ~token:file
    Diagnostic.Quarantined "store entry %s quarantined: %s" file why

(* ---- journal ----------------------------------------------------------- *)

let journal_line body = Printf.sprintf "%s #crc=%s" body (crc_hex body)

let journal_line_valid line =
  match String.rindex_opt line '#' with
  | Some i
    when i >= 1
         && line.[i - 1] = ' '
         && String.length line - i = String.length "#crc=XXXXXXXX" ->
      let body = String.sub line 0 (i - 1) in
      let crc = String.sub line (i + 5) 8 in
      crc_hex body = crc
  | _ -> false

(* Validate the journal; truncate a torn or corrupt tail in place. *)
let salvage_journal t =
  if not (Sys.file_exists t.journal_path) then []
  else
    match read_file t.journal_path with
    | Error e -> [ io_diag (Printf.sprintf "reading %s" t.journal_path) e ]
    | Ok contents ->
        let keep = Buffer.create (String.length contents) in
        let bad = ref 0 in
        let pos = ref 0 in
        let n = String.length contents in
        while !pos < n do
          match String.index_from_opt contents !pos '\n' with
          | None ->
              (* torn tail: no trailing newline *)
              incr bad;
              pos := n
          | Some nl ->
              let line = String.sub contents !pos (nl - !pos) in
              if journal_line_valid line then begin
                Buffer.add_string keep line;
                Buffer.add_char keep '\n'
              end
              else incr bad;
              pos := nl + 1
        done;
        if !bad = 0 then []
        else begin
          Metrics.incr m_salvaged;
          let diag =
            Diagnostic.errorf ~severity:Diagnostic.Warning Diagnostic.Truncated
              "journal salvage dropped %d torn or corrupt line%s" !bad
              (if !bad = 1 then "" else "s")
          in
          match write_atomic_file ~path:t.journal_path (Buffer.contents keep) with
          | Ok () -> [ diag ]
          | Error d -> [ diag; d ]
        end

let journal_append t body =
  let line = journal_line body ^ "\n" in
  let fd =
    match t.journal_fd with
    | Some fd -> Some fd
    | None -> (
        match
          Unix.openfile t.journal_path
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
            0o644
        with
        | fd ->
            t.journal_fd <- Some fd;
            Some fd
        | exception e ->
            t.pending <- io_diag "opening journal" e :: t.pending;
            None)
  in
  match fd with
  | None -> ()
  | Some fd -> (
      match Ppp_resilience.Robust_io.write_string fd line with
      | `Ok -> ( try Unix.fsync fd with Unix.Unix_error _ -> ())
      | `Closed | `Timeout ->
          t.pending <- Diagnostic.make Diagnostic.Io "journal append failed" :: t.pending)

(* ---- opening ----------------------------------------------------------- *)

let open_store ~dir =
  let t =
    {
      dir;
      objects_dir = Filename.concat dir "objects";
      quarantine_dir = Filename.concat dir "quarantine";
      journal_path = Filename.concat dir "journal.log";
      journal_fd = None;
      index = Hashtbl.create 64;
      quarantined = 0;
      pending = [];
    }
  in
  let diags = ref [] in
  (try
     mkdir_p dir;
     mkdir_p t.objects_dir;
     mkdir_p t.quarantine_dir
   with e -> diags := io_diag (Printf.sprintf "creating %s" dir) e :: !diags);
  (* Sweep temp files left by a crash mid-write: the rename never
     happened, so they are not entries, just disk noise. *)
  (match Sys.readdir t.objects_dir with
  | names ->
      Array.iter
        (fun name ->
          if String.length name > 0 && name.[0] = '.' then
            try Sys.remove (Filename.concat t.objects_dir name)
            with Sys_error _ -> ())
        names
  | exception Sys_error _ -> ());
  (* Directory scan is the source of truth. *)
  (match Sys.readdir t.objects_dir with
  | names ->
      Array.sort compare names;
      Array.iter
        (fun file ->
          if Filename.check_suffix file ".obj" then
            match read_file (Filename.concat t.objects_dir file) with
            | Error e ->
                diags := io_diag (Printf.sprintf "reading %s" file) e :: !diags
            | Ok contents -> (
                match decode_entry contents with
                | Ok (kind, key, payload) ->
                    Hashtbl.replace t.index (kind, key)
                      {
                        key;
                        len = String.length payload;
                        crc = crc_of payload;
                        file;
                      }
                | Error why -> diags := quarantine t ~file ~why :: !diags))
        names
  | exception Sys_error _ -> ());
  let jdiags = salvage_journal t in
  (t, List.rev !diags @ jdiags)

(* ---- operations -------------------------------------------------------- *)

let put t ~kind ~key payload =
  if not (safe_kind kind) then
    Error (Diagnostic.errorf Diagnostic.Io "invalid store kind %S" kind)
  else
    match Hashtbl.find_opt t.index (kind, key) with
    | Some e when e.len = String.length payload && e.crc = crc_of payload ->
        Ok () (* identical payload already committed *)
    | _ -> (
        let file = obj_file kind key in
        let path = Filename.concat t.objects_dir file in
        match write_atomic_file ~path (encode_entry ~kind ~key payload) with
        | Error d -> Error d
        | Ok () ->
            Hashtbl.replace t.index (kind, key)
              { key; len = String.length payload; crc = crc_of payload; file };
            Metrics.incr m_put;
            journal_append t
              (Printf.sprintf "put kind=%s key=%s len=%d crc=%s" kind
                 (hex_encode key) (String.length payload) (crc_hex payload));
            Ok ())

let get t ~kind ~key =
  match Hashtbl.find_opt t.index (kind, key) with
  | None ->
      Metrics.incr m_miss;
      None
  | Some e -> (
      match read_file (Filename.concat t.objects_dir e.file) with
      | Error exn ->
          Hashtbl.remove t.index (kind, key);
          t.pending <- io_diag (Printf.sprintf "reading %s" e.file) exn :: t.pending;
          Metrics.incr m_miss;
          None
      | Ok contents -> (
          match decode_entry contents with
          | Ok (k, ky, payload) when k = kind && ky = key ->
              Metrics.incr m_hit;
              Some payload
          | Ok _ ->
              Hashtbl.remove t.index (kind, key);
              t.pending <- quarantine t ~file:e.file ~why:"entry identity mismatch" :: t.pending;
              Metrics.incr m_miss;
              None
          | Error why ->
              Hashtbl.remove t.index (kind, key);
              t.pending <- quarantine t ~file:e.file ~why :: t.pending;
              Metrics.incr m_miss;
              None))

let mem t ~kind ~key = Hashtbl.mem t.index (kind, key)

let entries t =
  Hashtbl.fold (fun (kind, key) e acc -> (kind, key, e.len) :: acc) t.index []
  |> List.sort compare

let quarantined t = t.quarantined

let drain_diagnostics t =
  let ds = List.rev t.pending in
  t.pending <- [];
  ds

let close t =
  match t.journal_fd with
  | None -> ()
  | Some fd ->
      t.journal_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let dir t = t.dir
