module Robust_io = Ppp_resilience.Robust_io
module Crc = Ppp_resilience.Crc
module Diagnostic = Ppp_resilience.Diagnostic

type error = Closed | Timeout | Corrupt of string

let version = 1
let magic = "PPPD"
let header_size = 13
let max_frame = 64 * 1024 * 1024

let put_u32 buf pos v =
  Bytes.set buf pos (Char.chr ((v lsr 24) land 0xff));
  Bytes.set buf (pos + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set buf (pos + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (pos + 3) (Char.chr (v land 0xff))

let get_u32 buf pos =
  (Char.code (Bytes.get buf pos) lsl 24)
  lor (Char.code (Bytes.get buf (pos + 1)) lsl 16)
  lor (Char.code (Bytes.get buf (pos + 2)) lsl 8)
  lor Char.code (Bytes.get buf (pos + 3))

let write_frame ?deadline fd payload =
  let len = String.length payload in
  if len > max_frame then Error (Corrupt "frame payload too large")
  else begin
    let buf = Bytes.create (header_size + len) in
    Bytes.blit_string magic 0 buf 0 4;
    Bytes.set buf 4 (Char.chr version);
    put_u32 buf 5 len;
    put_u32 buf 9 (Int32.to_int (Crc.string payload) land 0xffffffff);
    Bytes.blit_string payload 0 buf header_size len;
    match Robust_io.write_all ?deadline fd buf 0 (Bytes.length buf) with
    | `Ok -> Ok ()
    | `Closed -> Error Closed
    | `Timeout -> Error Timeout
  end

let read_frame ?deadline fd =
  let hdr = Bytes.create header_size in
  match Robust_io.really_read ?deadline fd hdr 0 header_size with
  | `Eof -> Error Closed
  | `Timeout -> Error Timeout
  | `Ok () ->
      if Bytes.sub_string hdr 0 4 <> magic then
        Error (Corrupt "bad frame magic")
      else if Char.code (Bytes.get hdr 4) <> version then
        Error
          (Corrupt
             (Printf.sprintf "unsupported protocol version %d"
                (Char.code (Bytes.get hdr 4))))
      else
        let len = get_u32 hdr 5 in
        let crc = get_u32 hdr 9 in
        if len > max_frame then
          Error (Corrupt (Printf.sprintf "oversized frame (%d bytes)" len))
        else
          let payload = Bytes.create len in
          match Robust_io.really_read ?deadline fd payload 0 len with
          | `Eof -> Error (Corrupt "frame truncated mid-payload")
          | `Timeout -> Error Timeout
          | `Ok () ->
              let payload = Bytes.unsafe_to_string payload in
              if Int32.to_int (Crc.string payload) land 0xffffffff <> crc then
                Error (Corrupt "frame checksum mismatch")
              else Ok payload

let error_message = function
  | Closed -> "connection closed by peer"
  | Timeout -> "deadline exceeded"
  | Corrupt msg -> msg

let error_diagnostic = function
  | Closed -> Diagnostic.make Diagnostic.Unreachable "connection closed by peer"
  | Timeout ->
      Diagnostic.make Diagnostic.Deadline_exceeded
        "deadline exceeded waiting for a protocol frame"
  | Corrupt msg -> Diagnostic.make Diagnostic.Corrupt msg
