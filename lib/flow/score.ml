module Path_profile = Ppp_profile.Path_profile
module Path = Ppp_profile.Path
module Metric = Ppp_profile.Metric

type est = { routine : string; path : Path.t; flow : int }

let hot_actual ~actual ~views ~metric ~threshold =
  Path_profile.hot_paths actual ~views ~metric ~threshold

let accuracy ~actual ~views ~metric ~threshold ~estimated =
  let hot = hot_actual ~actual ~views ~metric ~threshold in
  match hot with
  | [] -> 1.0
  | _ ->
      let k = List.length hot in
      let top_estimated =
        List.stable_sort
          (fun a b ->
            match compare b.flow a.flow with
            | 0 -> compare (a.routine, a.path) (b.routine, b.path)
            | c -> c)
          estimated
        |> List.filteri (fun i _ -> i < k)
      in
      let est_set = Hashtbl.create (2 * k) in
      List.iter (fun e -> Hashtbl.replace est_set (e.routine, e.path) ()) top_estimated;
      let hot_flow, matched_flow =
        List.fold_left
          (fun (total, matched) (name, p, flow) ->
            let matched =
              if Hashtbl.mem est_set (name, p) then matched + flow else matched
            in
            (total + flow, matched))
          (0, 0) hot
      in
      if hot_flow = 0 then 1.0
      else float_of_int matched_flow /. float_of_int hot_flow

let coverage ~total_actual_flow ~measured_actual_flow ~definite_uninstr ~overcount =
  if total_actual_flow = 0 then 1.0
  else
    let n = measured_actual_flow + definite_uninstr - overcount in
    float_of_int (max 0 n) /. float_of_int total_actual_flow

(* The front-end penalty a block layout is estimated to pay, from the
   taken-transfer / locality proxy (see [Ppp_interp.Layout]): the
   taken fraction of dynamic intra-routine transfers, weighted double
   because a taken transfer both redirects fetch and risks a new cache
   line, plus the nonlocal fraction. Lower is better; 0 is the
   unreachable ideal (every transfer falls through to a neighbor). *)
let taken_weight = 2.0

let layout_score ~transfers ~taken ~local =
  if transfers <= 0 then 0.0
  else
    let t = float_of_int transfers in
    (taken_weight *. (float_of_int taken /. t))
    +. (float_of_int (transfers - local) /. t)

(* How much better [candidate] is than [base], in score points:
   positive means the candidate layout reduces the estimated front-end
   penalty. Both scores must come from the same program and frequency
   source for the difference to mean anything. *)
let layout_improvement ~base ~candidate = base -. candidate
