(** A routine prepared for flow analysis and instrumentation: its CFG
    view, loop structure, the Ball–Larus DAG, and the edge profile lifted
    onto DAG edges.

    The branch predicate follows Section 5.1 on the {e original} CFG: a
    DAG edge counts as a branch iff the real edge it stands for leaves a
    block with out-degree at least two. An [entry -> header] dummy stands
    for no real edge and is never a branch; a [tail -> exit] dummy stands
    for the back edge itself. *)

type t

val make :
  ?loops:Ppp_cfg.Loop.t ->
  Ppp_ir.Cfg_view.t ->
  Ppp_profile.Edge_profile.t ->
  t
(** [loops], when given, must be the loop nest of the view's graph
    rooted at its entry; passing it lets an analysis cache share the
    loop-nest artifact instead of recomputing it per context. *)

val view : t -> Ppp_ir.Cfg_view.t
val loops : t -> Ppp_cfg.Loop.t
val dag : t -> Ppp_cfg.Dag.t
val graph : t -> Ppp_cfg.Graph.t
(** The DAG's graph. *)

val entry : t -> Ppp_cfg.Graph.node
val exit : t -> Ppp_cfg.Graph.node

val freq : t -> Ppp_cfg.Graph.edge -> int
(** Frequency of a DAG edge under the lifted profile. *)

val cfg_freq : t -> Ppp_cfg.Graph.edge -> int
(** Frequency of a CFG edge. *)

val is_branch : t -> Ppp_cfg.Graph.edge -> bool
(** Whether a DAG edge is a branch (see above). *)

val node_flow : t -> Ppp_cfg.Graph.node -> int
(** Total flow through a DAG node: the sum of its outgoing DAG edge
    frequencies (incoming, for the exit). *)

val total_freq : t -> int
(** [F]: flow into the exit — the number of acyclic path executions. *)

val cfg_path_of_dag_path : t -> Ppp_cfg.Graph.edge list -> Ppp_profile.Path.t
(** Translate a DAG path (edge list from entry to exit) to the CFG path
    the interpreter would trace: dummy entry edges disappear and a dummy
    exit edge becomes its back edge. *)

val dag_path_of_cfg_path : t -> Ppp_profile.Path.t -> Ppp_cfg.Graph.edge list
(** Inverse of {!cfg_path_of_dag_path}. *)
