(** Accuracy and coverage of estimated path profiles (Section 6). *)

type est = {
  routine : string;
  path : Ppp_profile.Path.t;
  flow : int;  (** estimated flow under the chosen metric *)
}

val accuracy :
  actual:Ppp_profile.Path_profile.program ->
  views:(string -> Ppp_ir.Cfg_view.t) ->
  metric:Ppp_profile.Metric.t ->
  threshold:float ->
  estimated:est list ->
  float
(** Wall's weight-matching scheme (Section 6.1): identify the actual hot
    paths [H_actual] (flow at least [threshold] of total actual flow),
    pick the [|H_actual|] hottest estimated paths as [H_estimated], and
    return [F(H_estimated ∩ H_actual) / F(H_actual)] with flows taken
    from the actual profile. 1.0 when there are no hot paths. *)

val hot_actual :
  actual:Ppp_profile.Path_profile.program ->
  views:(string -> Ppp_ir.Cfg_view.t) ->
  metric:Ppp_profile.Metric.t ->
  threshold:float ->
  (string * Ppp_profile.Path.t * int) list
(** The actual hot paths with their flows, hottest first. *)

val coverage :
  total_actual_flow:int ->
  measured_actual_flow:int ->
  definite_uninstr:int ->
  overcount:int ->
  float
(** Section 6.2:
    [(F(P_instr) + DF(P_uninstr) - F_overcount) / F(P)]. With no
    instrumented paths and no overcount this reduces to edge-profile
    coverage [DF(P) / F(P)]. 1.0 when total flow is zero. *)

val taken_weight : float
(** How much heavier a taken transfer weighs than a nonlocal one in
    {!layout_score} (a taken transfer both redirects fetch and risks a
    fresh cache line). *)

val layout_score : transfers:int -> taken:int -> local:int -> float
(** The estimated front-end penalty of a block layout, from the
    taken-transfer / locality proxy ([Ppp_interp.Layout]):
    [taken_weight * taken/transfers + (transfers - local)/transfers].
    Lower is better; 0.0 when there are no transfers (nothing for
    layout to improve). *)

val layout_improvement : base:float -> candidate:float -> float
(** [base - candidate], in {!layout_score} points: positive means the
    candidate layout reduces the estimated penalty. Only meaningful
    when both scores come from the same program and frequencies. *)
