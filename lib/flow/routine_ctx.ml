module Graph = Ppp_cfg.Graph
module Loop = Ppp_cfg.Loop
module Dag = Ppp_cfg.Dag
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile

type t = {
  view : Cfg_view.t;
  loops : Loop.t;
  dag : Dag.t;
  freqs : int array; (* DAG edge -> frequency *)
  branch : bool array; (* DAG edge -> is branch *)
  node_flow : int array;
}

let make ?loops view profile =
  let g = Cfg_view.graph view in
  let entry = Cfg_view.entry view in
  let exit = Cfg_view.exit view in
  let loops =
    match loops with Some l -> l | None -> Loop.compute g ~root:entry
  in
  let dag = Dag.convert g ~entry ~exit ~break:(Loop.breakable_edges loops) in
  let dg = Dag.dag dag in
  let freqs =
    Array.init (Graph.num_edges dg) (fun e ->
        Dag.edge_freq dag ~cfg_freq:(Edge_profile.freq profile) e)
  in
  let branch =
    Array.init (Graph.num_edges dg) (fun e ->
        match Dag.provenance dag e with
        | Dag.Original o -> Cfg_view.is_branch_edge view o
        | Dag.Dummy_exit b -> Cfg_view.is_branch_edge view b
        | Dag.Dummy_entry _ -> false)
  in
  let node_flow =
    Array.init (Graph.num_nodes dg) (fun v ->
        let edges = if v = exit then Graph.in_edges dg v else Graph.out_edges dg v in
        List.fold_left (fun acc e -> acc + freqs.(e)) 0 edges)
  in
  { view; loops; dag; freqs; branch; node_flow }

let view t = t.view
let loops t = t.loops
let dag t = t.dag
let graph t = Dag.dag t.dag
let entry t = Dag.entry t.dag
let exit t = Dag.exit t.dag
let freq t e = t.freqs.(e)

let cfg_freq t e =
  match Dag.of_original t.dag e with
  | Some de -> t.freqs.(de)
  | None -> (
      (* A broken edge: its exit dummy carries its frequency. *)
      match Dag.exit_dummy t.dag e with
      | Some d_exit -> t.freqs.(d_exit)
      | None -> invalid_arg "Routine_ctx.cfg_freq: unknown edge")

let is_branch t e = t.branch.(e)
let node_flow t v = t.node_flow.(v)
let total_freq t = t.node_flow.(exit t)

let cfg_path_of_dag_path t p = Dag.cfg_path_of_dag_path t.dag p
let dag_path_of_cfg_path t p = Dag.dag_path_of_cfg_path t.dag p
