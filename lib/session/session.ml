module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Dom = Ppp_cfg.Dom
module Loop = Ppp_cfg.Loop
module Edge_profile = Ppp_profile.Edge_profile
module Routine_ctx = Ppp_flow.Routine_ctx
module Flow_dp = Ppp_flow.Flow_dp
module Instrument = Ppp_core.Instrument
module Lower = Ppp_interp.Lower
module Fingerprint = Ppp_resilience.Fingerprint
module Obs = Ppp_obs.Metrics

let m_view_hit = Obs.counter "session.view.hit"
let m_view_miss = Obs.counter "session.view.miss"
let m_dom_hit = Obs.counter "session.dom.hit"
let m_dom_miss = Obs.counter "session.dom.miss"
let m_loops_hit = Obs.counter "session.loops.hit"
let m_loops_miss = Obs.counter "session.loops.miss"
let m_ctx_hit = Obs.counter "session.ctx.hit"
let m_ctx_miss = Obs.counter "session.ctx.miss"
let m_flow_hit = Obs.counter "session.flow.hit"
let m_flow_miss = Obs.counter "session.flow.miss"
let m_place_hit = Obs.counter "session.place.hit"
let m_place_miss = Obs.counter "session.place.miss"
let m_layout_hit = Obs.counter "session.layout.hit"
let m_layout_miss = Obs.counter "session.layout.miss"
let m_invalidate = Obs.counter "session.invalidate"
let m_evict = Obs.counter "session.evict"

(* How many fingerprint generations a routine slot retains, and how many
   profile-keyed artifacts each entry retains. Small: the pipeline holds
   one or two live profiles and an iterate loop flips between adjacent
   generations; anything deeper is dead weight across a long session. *)
let retention = 8

type entry = {
  e_fp : int;
  mutable e_view : Cfg_view.t option;
  mutable e_dom : Dom.t option;
  mutable e_loops : Loop.t option;
  mutable e_ctxs : (Edge_profile.program * Routine_ctx.t) list;
  mutable e_defs : (Routine_ctx.t * Flow_dp.t) list;
  mutable e_places :
    (string * Edge_profile.program option * Instrument.routine_plan) list;
      (* The profile the plan was made under, by physical identity;
         [None] for plans imported from a persisted session, which can
         only ever satisfy [Sticky] lookups. *)
  mutable e_layouts :
    (Ppp_profile.Path_profile.program * int array option) list;
      (* Block emission orders keyed by the path profile they were
         derived from, by physical identity; [None] caches "this profile
         yields the identity order", which is just as expensive to
         rediscover. *)
}

type counts = {
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_invalidations : int;
  mutable c_evictions : int;
}

type t = {
  s_name : string;
  s_enabled : bool;
  slots : (string, entry list) Hashtbl.t;
  mutable last_table : (string * int) list;
  (* Last physical routine seen per name, with its fingerprint, so
     repeated artifact lookups on the same object skip re-hashing. *)
  fp_memo : (string, Ir.routine * int) Hashtbl.t;
  lower : Lower.cache option;
  counts : counts;
}

type placement_mode = Exact | Sticky

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  evictions : int;
}

let name t = t.s_name
let enabled t = t.s_enabled
let lower_cache t = t.lower

let hit t m =
  t.counts.c_hits <- t.counts.c_hits + 1;
  Obs.incr m

let miss t m =
  t.counts.c_misses <- t.counts.c_misses + 1;
  Obs.incr m

(* Truncate an artifact list to [retention], counting what falls off. *)
let cap t xs =
  let rec go n = function
    | [] -> []
    | rest when n = 0 ->
        List.iter
          (fun _ ->
            t.counts.c_evictions <- t.counts.c_evictions + 1;
            Obs.incr m_evict)
          rest;
        []
    | x :: rest -> x :: go (n - 1) rest
  in
  go retention xs

let fingerprint t (r : Ir.routine) =
  match Hashtbl.find_opt t.fp_memo r.Ir.name with
  | Some (r', fp) when r' == r -> fp
  | _ ->
      let fp = Fingerprint.routine r in
      Hashtbl.replace t.fp_memo r.Ir.name (r, fp);
      fp

let entry t (r : Ir.routine) =
  let fp = fingerprint t r in
  let es = Option.value ~default:[] (Hashtbl.find_opt t.slots r.Ir.name) in
  match List.find_opt (fun e -> e.e_fp = fp) es with
  | Some e -> e
  | None ->
      let e =
        {
          e_fp = fp;
          e_view = None;
          e_dom = None;
          e_loops = None;
          e_ctxs = [];
          e_defs = [];
          e_places = [];
          e_layouts = [];
        }
      in
      Hashtbl.replace t.slots r.Ir.name (cap t (e :: es));
      e

let view t r =
  if not t.s_enabled then begin
    miss t m_view_miss;
    Cfg_view.of_routine r
  end
  else
    let e = entry t r in
    match e.e_view with
    | Some v ->
        hit t m_view_hit;
        v
    | None ->
        miss t m_view_miss;
        let v = Cfg_view.of_routine r in
        e.e_view <- Some v;
        v

let dom t r =
  let build () =
    let v = view t r in
    Dom.compute (Cfg_view.graph v) ~root:(Cfg_view.entry v)
  in
  if not t.s_enabled then begin
    miss t m_dom_miss;
    build ()
  end
  else
    let e = entry t r in
    match e.e_dom with
    | Some d ->
        hit t m_dom_hit;
        d
    | None ->
        miss t m_dom_miss;
        let d = build () in
        e.e_dom <- Some d;
        d

let loops t r =
  let build () =
    let v = view t r in
    let d = dom t r in
    Loop.compute ~dom:d (Cfg_view.graph v) ~root:(Cfg_view.entry v)
  in
  if not t.s_enabled then begin
    miss t m_loops_miss;
    build ()
  end
  else
    let e = entry t r in
    match e.e_loops with
    | Some l ->
        hit t m_loops_hit;
        l
    | None ->
        miss t m_loops_miss;
        let l = build () in
        e.e_loops <- Some l;
        l

let ctx t ~ep (r : Ir.routine) =
  let build () =
    let v = view t r in
    let l = loops t r in
    Routine_ctx.make ~loops:l v (Edge_profile.routine ep r.Ir.name)
  in
  if not t.s_enabled then begin
    miss t m_ctx_miss;
    build ()
  end
  else
    let e = entry t r in
    match List.assq_opt ep e.e_ctxs with
    | Some c ->
        hit t m_ctx_hit;
        c
    | None ->
        miss t m_ctx_miss;
        let c = build () in
        e.e_ctxs <- cap t ((ep, c) :: e.e_ctxs);
        c

let definite t c =
  let build () = Flow_dp.compute c Flow_dp.Definite in
  if not t.s_enabled then begin
    miss t m_flow_miss;
    build ()
  end
  else
    let r = Cfg_view.routine (Routine_ctx.view c) in
    let e = entry t r in
    match List.assq_opt c e.e_defs with
    | Some dp ->
        hit t m_flow_hit;
        dp
    | None ->
        miss t m_flow_miss;
        let dp = build () in
        e.e_defs <- cap t ((c, dp) :: e.e_defs);
        dp

let placement_find t ~mode ~config_name ~ep r =
  if not t.s_enabled then begin
    miss t m_place_miss;
    None
  end
  else
    let e = entry t r in
    let found =
      List.find_opt
        (fun (cn, ep', _) ->
          String.equal cn config_name
          &&
          match mode with
          | Exact -> ( match ep' with Some ep' -> ep' == ep | None -> false)
          | Sticky -> true)
        e.e_places
    in
    match found with
    | Some (_, _, plan) ->
        hit t m_place_hit;
        Some plan
    | None ->
        miss t m_place_miss;
        None

let placement_store t ~config_name ~ep r plan =
  if t.s_enabled then begin
    let e = entry t r in
    let rest =
      List.filter
        (fun (cn, ep', _) ->
          not
            (String.equal cn config_name
            && match ep' with Some e -> e == ep | None -> false))
        e.e_places
    in
    e.e_places <- cap t ((config_name, Some ep, plan) :: rest)
  end

let layout t ~paths r ~compute =
  if not t.s_enabled then begin
    miss t m_layout_miss;
    compute ()
  end
  else
    let e = entry t r in
    match List.assq_opt paths e.e_layouts with
    | Some order ->
        hit t m_layout_hit;
        order
    | None ->
        miss t m_layout_miss;
        let order = compute () in
        e.e_layouts <- cap t ((paths, order) :: e.e_layouts);
        order

let sync t (p : Ir.program) =
  let table =
    List.map
      (fun (r : Ir.routine) ->
        let fp = Fingerprint.routine r in
        Hashtbl.replace t.fp_memo r.Ir.name (r, fp);
        (r.Ir.name, fp))
      p.Ir.routines
  in
  let old = t.last_table in
  t.last_table <- table;
  List.iter
    (fun (nm, _) ->
      if not (List.mem_assoc nm table) then begin
        Hashtbl.remove t.slots nm;
        Hashtbl.remove t.fp_memo nm
      end)
    old;
  let dirty =
    List.filter_map
      (fun (nm, fp) ->
        match List.assoc_opt nm old with
        | Some fp' when fp' = fp -> None
        | _ -> Some nm)
      table
  in
  List.iter
    (fun _ ->
      t.counts.c_invalidations <- t.counts.c_invalidations + 1;
      Obs.incr m_invalidate)
    dirty;
  dirty

(* Point invalidation for mid-run tier-up: the named routines' slots are
   dropped wholesale, so their next access opens a fresh entry. The
   fingerprint table is left alone — the IR did not change, only the
   profile-derived artifacts (placements, layouts, contexts) went stale
   when the VM retired the instrumented variant mid-run. *)
let invalidate t names =
  List.iter
    (fun nm ->
      Hashtbl.remove t.slots nm;
      t.counts.c_invalidations <- t.counts.c_invalidations + 1;
      Obs.incr m_invalidate)
    names

let warm t (p : Ir.program) =
  ignore (sync t p);
  if t.s_enabled then begin
    List.iter (fun (r : Ir.routine) -> ignore (loops t r)) p.Ir.routines;
    match t.lower with
    | Some cache ->
        (* Fill the structural-plan cache too; lowering without running
           is cheap and the plans are instrumentation-independent. *)
        ignore
          (Lower.program ~cache ~config:Ppp_interp.Engine.default_config
             ~instr_tables:
               (Ppp_interp.Instr_rt.init_state
                  (Ppp_interp.Instr_rt.no_instrumentation ()))
             p)
    | None -> ()
  end

let create ?(enabled = true) ~name () =
  let t =
    {
      s_name = name;
      s_enabled = enabled;
      slots = Hashtbl.create 64;
      last_table = [];
      fp_memo = Hashtbl.create 64;
      lower = (if enabled then Some (Lower.create_cache ()) else None);
      counts =
        { c_hits = 0; c_misses = 0; c_invalidations = 0; c_evictions = 0 };
    }
  in
  (match t.lower with
  | Some c -> Lower.set_analysis c (fun r -> (view t r, loops t r))
  | None -> ());
  t

let stats t =
  {
    hits = t.counts.c_hits;
    misses = t.counts.c_misses;
    invalidations = t.counts.c_invalidations;
    evictions = t.counts.c_evictions;
  }

(* {2 Persistence of placement plans}

   The daemon's persistence boundary: placement decisions — the one
   session artifact that is expensive, profile-derived and reusable
   across process restarts under the Sticky rule — serialize to a
   versioned, per-record-CRC'd text-framed format. Everything else in
   the store (views, dominators, loop nests, lowerings) is cheap to
   recompute and deliberately not persisted. *)

module Diagnostic = Ppp_resilience.Diagnostic
module Crc = Ppp_resilience.Crc

let plans_magic = "ppp-session-plans v1"

let export_plans t =
  let records = ref [] in
  Hashtbl.iter
    (fun name entries ->
      List.iter
        (fun e ->
          (* Newest plan per config wins; [e_places] is newest-first. *)
          let seen = Hashtbl.create 4 in
          List.iter
            (fun (cn, _, plan) ->
              if not (Hashtbl.mem seen cn) then begin
                Hashtbl.add seen cn ();
                let blob = Marshal.to_string (plan : Instrument.routine_plan) [] in
                records := (name, e.e_fp, cn, blob) :: !records
              end)
            e.e_places)
        entries)
    t.slots;
  let records =
    List.sort
      (fun (n1, f1, c1, _) (n2, f2, c2, _) -> compare (n1, f1, c1) (n2, f2, c2))
      !records
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf plans_magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, fp, cn, blob) ->
      Buffer.add_string buf
        (Printf.sprintf "plan routine=%s fp=%s config=%s len=%d crc=%s\n" name
           (Fingerprint.to_hex fp) cn (String.length blob)
           (Crc.to_hex (Crc.string blob)));
      Buffer.add_string buf blob;
      Buffer.add_char buf '\n')
    records;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let import_plans t (p : Ir.program) text =
  let diags = ref [] in
  let imported = ref 0 in
  let diag d = diags := d :: !diags in
  let len = String.length text in
  let corrupt fmt = Diagnostic.errorf Diagnostic.Corrupt fmt in
  let field line key =
    (* [key=value] somewhere in the header line; values carry no spaces. *)
    let tag = " " ^ key ^ "=" in
    let tlen = String.length tag and llen = String.length line in
    let rec find i =
      if i + tlen > llen then None
      else if String.sub line i tlen = tag then
        let start = i + tlen in
        let stop =
          match String.index_from_opt line start ' ' with
          | Some j -> j
          | None -> llen
        in
        Some (String.sub line start (stop - start))
      else find (i + 1)
    in
    find 0
  in
  if len < String.length plans_magic
     || String.sub text 0 (String.length plans_magic) <> plans_magic
  then (0, [ corrupt "persisted plans: bad or missing header" ])
  else begin
    let pos = ref (String.length plans_magic + 1) in
    let finished = ref false in
    (try
       while (not !finished) && !pos < len do
         let eol =
           match String.index_from_opt text !pos '\n' with
           | Some i -> i
           | None -> raise Exit
         in
         let line = String.sub text !pos (eol - !pos) in
         pos := eol + 1;
         if line = "end" then finished := true
         else if String.length line >= 5 && String.sub line 0 5 = "plan " then begin
           match
             ( field line "routine",
               Option.bind (field line "fp") Fingerprint.of_hex,
               field line "config",
               Option.bind (field line "len") int_of_string_opt,
               Option.bind (field line "crc") Crc.of_hex )
           with
           | Some rname, Some fp, Some cn, Some blen, Some crc ->
               if !pos + blen + 1 > len then begin
                 diag
                   (Diagnostic.errorf Diagnostic.Truncated
                      "persisted plan for %s ends before its %d-byte payload"
                      rname blen);
                 raise Exit
               end;
               let blob = String.sub text !pos blen in
               pos := !pos + blen + 1;
               if Crc.string blob <> crc then
                 diag
                   (Diagnostic.errorf ~routine:rname Diagnostic.Corrupt
                      "persisted plan failed its checksum")
               else begin
                 match Ir.find_routine p rname with
                 | None ->
                     diag
                       (Diagnostic.errorf ~severity:Diagnostic.Warning
                          ~routine:rname Diagnostic.Unknown_routine
                          "persisted plan for a routine the program no \
                           longer has")
                 | Some r ->
                     if fingerprint t r <> fp then
                       diag
                         (Diagnostic.errorf ~severity:Diagnostic.Warning
                            ~routine:rname Diagnostic.Stale
                            "persisted plan was made for another version \
                             of the routine")
                     else if t.s_enabled then begin
                       match
                         (Marshal.from_string blob 0
                           : Instrument.routine_plan)
                       with
                       | plan ->
                           let e = entry t r in
                           if
                             not
                               (List.exists
                                  (fun (cn', _, _) -> String.equal cn cn')
                                  e.e_places)
                           then begin
                             (* Append, so plans stored live in this
                                process stay ahead of imported ones. *)
                             e.e_places <-
                               cap t (e.e_places @ [ (cn, None, plan) ]);
                             incr imported
                           end
                       | exception _ ->
                           diag
                             (Diagnostic.errorf ~routine:rname
                                Diagnostic.Corrupt
                                "persisted plan payload does not \
                                 deserialize")
                     end
               end
           | _ ->
               diag (corrupt "persisted plans: malformed record header");
               raise Exit
         end
         else begin
           diag (corrupt "persisted plans: unexpected line %S" line);
           raise Exit
         end
       done;
       if not !finished then
         diag
           (Diagnostic.make ~severity:Diagnostic.Warning Diagnostic.Truncated
              "persisted plans: missing end marker")
     with Exit -> ());
    (!imported, List.rev !diags)
  end

let pp_stats ppf t =
  Format.fprintf ppf
    "session %s (cache %s): %d hits, %d misses, %d invalidations, %d \
     evictions"
    t.s_name
    (if t.s_enabled then "on" else "off")
    t.counts.c_hits t.counts.c_misses t.counts.c_invalidations
    t.counts.c_evictions
