(** A content-addressed store of per-routine analysis artifacts, shared
    by every phase of a pipeline run and across re-optimization
    generations.

    Artifacts are keyed by the routine's structural fingerprint
    ({!Ppp_resilience.Fingerprint.routine}), so the store is
    content-addressed rather than name-addressed: an edited routine
    misses naturally (its fingerprint changed), an untouched routine hits
    even across program generations, and a generation that undoes an edit
    finds the artifacts of the earlier generation still in its slot (each
    routine retains a small ring of recent fingerprints).

    The dependency graph between artifact kinds is explicit in the
    accessors — each one pulls its inputs through the store, so a miss on
    a derived artifact still reuses memoized prerequisites:

    {v
      view     <- routine body
      dom      <- view
      loops    <- dom
      lower    <- view + loops          (structural plans, see Ppp_interp.Lower)
      ctx      <- loops + edge profile  (profile identity, not content)
      definite <- ctx                   (definite-flow DP)
      placement<- ctx + config          (instrumentation decisions)
    v}

    Profile-dependent artifacts ([ctx], [definite], [placement]) are
    additionally keyed by the {e physical identity} of the profile (or
    context) they were derived from: profiles are mutable accumulators
    with no cheap content hash, and every phase of one pipeline run holds
    the same profile object, so identity is exactly the sharing that is
    safe to exploit.

    Invalidation is dirty-tracking by fingerprint diff: {!sync} compares
    the program's fingerprint table against the previous generation's and
    names the routines whose artifacts are out of date. Nothing is
    recomputed eagerly — a dirty routine simply opens a fresh slot entry
    on its next access.

    Every lookup feeds the [session.*] metrics of {!Ppp_obs.Metrics}
    ([session.KIND.hit] / [session.KIND.miss], [session.invalidate],
    [session.evict], and [session.lower.*] from {!Ppp_interp.Lower}), and
    mirrors them into per-session {!stats} that work even with metrics
    disabled. A {e disabled} session ([enabled:false]) memoizes nothing
    but still counts every lookup as a miss, so the work ratio of a warm
    session over a cold one can be read directly off the counters.

    Sessions are single-process and not thread-safe; forked shard workers
    inherit a warm parent session by copy-on-write, which is safe because
    workers never write back. *)

type t

val create : ?enabled:bool -> name:string -> unit -> t
(** [enabled] defaults to [true]; [name] labels {!pp_stats} output. *)

val name : t -> string
val enabled : t -> bool

(** {2 Generations} *)

val sync : t -> Ppp_ir.Ir.program -> string list
(** Fingerprint every routine of the program, diff against the table of
    the previous [sync], and return the dirty routine names (changed or
    new), in program order. Slots of routines that no longer exist are
    dropped. Call it whenever the pipeline moves to a new program
    generation (original, inlined, unrolled, re-optimized); syncing an
    unchanged program returns [[]] and invalidates nothing. *)

val invalidate : t -> string list -> unit
(** Point invalidation: drop every artifact slot of the named routines,
    without touching the fingerprint table. This is the tier-up hook —
    when a running VM retires a routine's instrumented variant for an
    optimized re-lowering, the routine's profile-derived artifacts
    (placements, layouts, flow contexts) were computed for a profile
    that froze at the swap, so the next pipeline access must recompute
    them. Counts one [session.invalidate] per name, like {!sync}'s
    dirty-set accounting; unknown names still count (the caller asserted
    staleness) but drop nothing. *)

(** {2 Analysis artifacts} *)

val view : t -> Ppp_ir.Ir.routine -> Ppp_ir.Cfg_view.t
val dom : t -> Ppp_ir.Ir.routine -> Ppp_cfg.Dom.t
val loops : t -> Ppp_ir.Ir.routine -> Ppp_cfg.Loop.t

val ctx :
  t ->
  ep:Ppp_profile.Edge_profile.program ->
  Ppp_ir.Ir.routine ->
  Ppp_flow.Routine_ctx.t
(** The flow-analysis context of [r] under edge profile [ep], memoized
    per ([ep] identity, routine fingerprint). *)

val definite : t -> Ppp_flow.Routine_ctx.t -> Ppp_flow.Flow_dp.t
(** The definite-flow DP of a context, memoized per context identity
    (contexts should come from {!ctx} for sharing to happen). *)

(** {2 Placement decisions} *)

type placement_mode =
  | Exact
      (** reuse only a plan made for this very profile object — sound for
          re-evaluating the same prepared pipeline state *)
  | Sticky
      (** reuse the routine's latest plan for this configuration whatever
          profile it was planned under — the incremental re-optimization
          rule: an untouched routine (same fingerprint) keeps its
          instrumentation, only dirtied routines are re-planned *)

val placement_find :
  t ->
  mode:placement_mode ->
  config_name:string ->
  ep:Ppp_profile.Edge_profile.program ->
  Ppp_ir.Ir.routine ->
  Ppp_core.Instrument.routine_plan option

val placement_store :
  t ->
  config_name:string ->
  ep:Ppp_profile.Edge_profile.program ->
  Ppp_ir.Ir.routine ->
  Ppp_core.Instrument.routine_plan ->
  unit

val layout :
  t ->
  paths:Ppp_profile.Path_profile.program ->
  Ppp_ir.Ir.routine ->
  compute:(unit -> int array option) ->
  int array option
(** Memoized block emission order for [r] derived from path profile
    [paths] (keyed by the profile's physical identity, like {!ctx}):
    runs [compute] on a miss and caches its result — including [None],
    "this profile orders the routine identically to source", which is
    just as expensive to rediscover. Invalidated with the entry when the
    routine's fingerprint changes. Counted under [session.layout.*]. *)

(** {2 Lowering} *)

val lower_cache : t -> Ppp_interp.Lower.cache option
(** The session's structural-plan cache for {!Ppp_interp.Lower.program},
    wired to pull CFG views and loop nests from this store; [None] for a
    disabled session. Pass it to every [Interp.run] of the pipeline. *)

(** {2 Warming and reporting} *)

val warm : t -> Ppp_ir.Ir.program -> unit
(** {!sync} then force view, dominators, loops and the structural
    lowering of every routine — e.g. in a shard parent before forking, so
    workers inherit the analyses copy-on-write. A no-op beyond the sync
    for a disabled session. *)

(** {2 Persistence}

    The session's persistence boundary, used by the resident daemon's
    artifact store: placement plans — the expensive, profile-derived,
    [Sticky]-reusable artifact — round-trip through a versioned text
    framing with a CRC per record. Cheap structural analyses (views,
    dominators, loops, lowerings) are recomputed, never persisted. *)

val export_plans : t -> string
(** Serialize the newest placement plan of every (routine fingerprint,
    configuration) pair currently held: header line
    [ppp-session-plans v1], one
    [plan routine=N fp=HEX config=C len=L crc=HEX8] record per plan with
    its marshaled payload, and an [end] marker. Deterministically
    ordered. *)

val import_plans :
  t -> Ppp_ir.Ir.program -> string -> int * Ppp_resilience.Diagnostic.t list
(** Re-adopt persisted plans into this session for routines of [p] whose
    current fingerprint matches the record (checked before
    deserializing, so a plan can never be applied to an edited routine).
    Imported plans satisfy {e Sticky} placement lookups only — they were
    not made for any live profile object — and never shadow a plan
    stored live in this process. Never raises: corrupt, truncated, stale
    or unknown-routine records are skipped and reported as diagnostics.
    Returns the number of plans imported. A disabled session imports
    nothing. *)

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  evictions : int;
}
(** Per-session mirror of the [session.*] counters (excluding
    [session.lower.*], which are global to the process); maintained even
    while {!Ppp_obs.Metrics} is disabled. *)

val stats : t -> stats
val pp_stats : Format.formatter -> t -> unit
