(** File and formatter sinks for metrics snapshots.

    JSON snapshots are one object per metric under a ["metrics"] key so
    they stay greppable and diffable across runs; CSV is one row per
    metric with histogram buckets folded into a [detail] column. *)

val metrics_json : Metrics.snapshot -> Jsonx.t

val write_metrics_json : path:string -> Metrics.snapshot -> unit

val pp_metrics_csv : Format.formatter -> Metrics.snapshot -> unit

val write_metrics_csv : path:string -> Metrics.snapshot -> unit

val write_json : path:string -> Jsonx.t -> unit
(** Generic helper: write any JSON document (used for [BENCH_*.json]). *)

val write_atomic : path:string -> string -> unit
(** Crash-safe whole-file replacement: write to a temporary file in the
    target's directory, [fsync], then [rename] over [path]. A crash at
    any point leaves either the previous contents or the new ones, never
    a torn file. Every file sink in this module (and the profile and
    report writers across the repo) goes through this.
    @raise Sys_error on I/O failure, like the plain writers. *)
