(** A minimal JSON value type with a printer and a parser.

    The observability sinks (metrics snapshots, Chrome trace events,
    [BENCH_*.json]) need structured output, and the tests need to check
    that what we wrote is well-formed; neither warrants an external
    dependency, so this is the whole of JSON that we use: no streaming,
    no numbers beyond OCaml [int]/[float], object fields kept in
    insertion order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val pp : Format.formatter -> t -> unit
(** Compact rendering with no insignificant whitespace. Non-finite
    floats render as [null] and strings are escaped to pure ASCII
    ([\u00XX] for bytes outside the printable range), so output is
    always standard JSON whatever bytes the values carry. *)

val to_string : t -> string

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val member : t -> string -> t option
(** [member (Obj _) key] looks up a field; [None] for other
    constructors or missing keys. *)

val to_list : t -> t list
(** [to_list (Arr l)] is [l]; [[]] otherwise. *)

val canonical : t -> t
(** Recursively sort every object's fields by key (stably, so duplicate
    keys keep their relative order). Two structurally equal documents
    render byte-identically after canonicalization — what the sharded
    benchmark harness relies on for [BENCH_*.json] stability across
    [-j] levels. *)
