(** Span-based phase tracing, exported as Chrome trace-event JSON.

    Wrap each pipeline phase in {!with_span}; after the run,
    {!write_file} produces a file that loads directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. Spans
    are recorded as complete ("ph":"X") events with microsecond
    timestamps relative to {!start}, so nesting falls out of duration
    containment and no begin/end pairing is needed.

    Tracing is off by default; {!with_span} then costs one load and one
    branch around the wrapped function. *)

type event = {
  name : string;
  cat : string;
  ph : [ `Complete | `Instant ];
  ts_us : float;  (** start, microseconds since {!start} *)
  dur_us : float;  (** 0 for instants *)
  args : (string * string) list;
}

val start : unit -> unit
(** Enable tracing, drop previously recorded events, and reset the
    clock origin. *)

val stop : unit -> unit
(** Disable tracing; recorded events are kept for export. *)

val enabled : unit -> bool

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] and, if tracing is enabled, records
    a complete event covering its duration (also when [f] raises). *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record a zero-duration marker. *)

val events : unit -> event list
(** Recorded events in completion order. *)

val to_json : unit -> Jsonx.t
(** The Chrome trace-event envelope:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val write_file : string -> unit
(** Write {!to_json} to a file (a valid, possibly empty, trace even if
    tracing never started). *)
