(** Span-based phase tracing, exported as Chrome trace-event JSON.

    Wrap each pipeline phase in {!with_span}; after the run,
    {!write_file} produces a file that loads directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. Spans
    are recorded as complete ("ph":"X") events with microsecond
    timestamps relative to {!start}, so nesting falls out of duration
    containment and no begin/end pairing is needed.

    Besides spans and instants, the recorder supports counter events
    ("ph":"C") — numeric time series the viewers plot as stacked area
    charts, used for VM telemetry — and metadata events ("ph":"M") that
    label the process and thread rows. Every string escapes through
    {!Jsonx}, so arbitrary bytes in names or argument values always
    yield standard JSON.

    Tracing is off by default; {!with_span} then costs one load and one
    branch around the wrapped function. *)

type event = {
  name : string;
  cat : string;
  ph : [ `Complete | `Instant | `Counter | `Metadata ];
  ts_us : float;  (** start, microseconds since {!start} *)
  dur_us : float;  (** 0 except for [`Complete] *)
  args : (string * string) list;  (** string-valued arguments *)
  nargs : (string * float) list;
      (** numeric arguments; the series of a [`Counter] event *)
}

val start : unit -> unit
(** Enable tracing, drop previously recorded events, and reset the
    clock origin. *)

val stop : unit -> unit
(** Disable tracing; recorded events are kept for export. *)

val enabled : unit -> bool

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] and, if tracing is enabled, records
    a complete event covering its duration (also when [f] raises). *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record a zero-duration marker. *)

val counter :
  ?cat:string -> ?ts_us:float -> string -> (string * float) list -> unit
(** [counter name series] records a Chrome counter event ("ph":"C"):
    each [(key, value)] pair becomes one plotted series under the
    counter's track. [ts_us] overrides the timestamp (microseconds
    since {!start}) — the VM telemetry exporter uses it to place
    samples at their recorded positions instead of export time. *)

val metadata : name:string -> string -> unit
(** [metadata ~name v] records a "ph":"M" metadata event, e.g.
    [metadata ~name:"process_name" "pppc"]; trace viewers use these to
    label the process and thread rows. *)

val label_process : ?thread:string -> string -> unit
(** Convenience: emit [process_name] (and [thread_name], default
    ["main"]) metadata so spans show up under a named row. *)

val events : unit -> event list
(** Recorded events in completion order. *)

val to_json : unit -> Jsonx.t
(** The Chrome trace-event envelope:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val write_file : string -> unit
(** Write {!to_json} to a file (a valid, possibly empty, trace even if
    tracing never started). *)
