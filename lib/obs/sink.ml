let value_json (v : Metrics.value) =
  match v with
  | Metrics.Counter n -> Jsonx.Obj [ ("type", Jsonx.Str "counter"); ("value", Jsonx.Int n) ]
  | Metrics.Gauge x -> Jsonx.Obj [ ("type", Jsonx.Str "gauge"); ("value", Jsonx.Float x) ]
  | Metrics.Histogram { bounds; buckets; sum; observations } ->
      Jsonx.Obj
        [
          ("type", Jsonx.Str "histogram");
          ("observations", Jsonx.Int observations);
          ("sum", Jsonx.Float sum);
          ("bounds", Jsonx.Arr (Array.to_list bounds |> List.map (fun b -> Jsonx.Float b)));
          ("buckets", Jsonx.Arr (Array.to_list buckets |> List.map (fun c -> Jsonx.Int c)));
        ]

let metrics_json snap =
  Jsonx.Obj
    [
      ("schema", Jsonx.Str "ppp-metrics/1");
      ("metrics", Jsonx.Obj (List.map (fun (name, v) -> (name, value_json v)) snap));
    ]

let write_json ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Jsonx.to_string json);
      output_char oc '\n')

let write_metrics_json ~path snap = write_json ~path (metrics_json snap)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let pp_metrics_csv ppf snap =
  Format.fprintf ppf "name,kind,value,detail@.";
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter n -> Format.fprintf ppf "%s,counter,%d,@." (csv_escape name) n
      | Metrics.Gauge x -> Format.fprintf ppf "%s,gauge,%g,@." (csv_escape name) x
      | Metrics.Histogram { bounds; buckets; sum; observations } ->
          let detail =
            String.concat ";"
              (List.filter_map Fun.id
                 (Array.to_list
                    (Array.mapi
                       (fun i c ->
                         if c = 0 then None
                         else if i < Array.length bounds then
                           Some (Printf.sprintf "le%g:%d" bounds.(i) c)
                         else Some (Printf.sprintf "inf:%d" c))
                       buckets)))
          in
          Format.fprintf ppf "%s,histogram,%d,%s@." (csv_escape name) observations
            (csv_escape (Printf.sprintf "sum=%g;%s" sum detail)))
    snap

let write_metrics_csv ~path snap =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      pp_metrics_csv ppf snap;
      Format.pp_print_flush ppf ())
