let value_json (v : Metrics.value) =
  match v with
  | Metrics.Counter n -> Jsonx.Obj [ ("type", Jsonx.Str "counter"); ("value", Jsonx.Int n) ]
  | Metrics.Gauge x -> Jsonx.Obj [ ("type", Jsonx.Str "gauge"); ("value", Jsonx.Float x) ]
  | Metrics.Histogram { bounds; buckets; sum; observations } ->
      Jsonx.Obj
        [
          ("type", Jsonx.Str "histogram");
          ("observations", Jsonx.Int observations);
          ("sum", Jsonx.Float sum);
          ("bounds", Jsonx.Arr (Array.to_list bounds |> List.map (fun b -> Jsonx.Float b)));
          ("buckets", Jsonx.Arr (Array.to_list buckets |> List.map (fun c -> Jsonx.Int c)));
        ]

let metrics_json snap =
  Jsonx.Obj
    [
      ("schema", Jsonx.Str "ppp-metrics/1");
      ("metrics", Jsonx.Obj (List.map (fun (name, v) -> (name, value_json v)) snap));
    ]

(* Crash-safe file replacement: the contents go to a temporary file in
   the same directory (so the rename cannot cross filesystems), are
   fsync'd to stable storage, and only then renamed over the target.
   A crash at any point leaves either the old file or the new one —
   never a half-written dump that a loader has to salvage. *)
let write_atomic ~path contents =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d" (Filename.basename path) (Unix.getpid ()))
  in
  let fd =
    try Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    with Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" tmp (Unix.error_message e)))
  in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  (try
     let buf = Bytes.unsafe_of_string contents in
     let pos = ref 0 in
     let len = String.length contents in
     while !pos < len do
       match Unix.write fd buf !pos (len - !pos) with
       | n -> pos := !pos + n
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done;
     Unix.fsync fd;
     Unix.close fd
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     cleanup ();
     raise (Sys_error (Printf.sprintf "%s: %s" tmp (Unix.error_message e))));
  try Unix.rename tmp path
  with Unix.Unix_error (e, _, _) ->
    cleanup ();
    raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))

let write_json ~path json = write_atomic ~path (Jsonx.to_string json ^ "\n")

let write_metrics_json ~path snap = write_json ~path (metrics_json snap)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let pp_metrics_csv ppf snap =
  Format.fprintf ppf "name,kind,value,detail@.";
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter n -> Format.fprintf ppf "%s,counter,%d,@." (csv_escape name) n
      | Metrics.Gauge x -> Format.fprintf ppf "%s,gauge,%g,@." (csv_escape name) x
      | Metrics.Histogram { bounds; buckets; sum; observations } ->
          let detail =
            String.concat ";"
              (List.filter_map Fun.id
                 (Array.to_list
                    (Array.mapi
                       (fun i c ->
                         if c = 0 then None
                         else if i < Array.length bounds then
                           Some (Printf.sprintf "le%g:%d" bounds.(i) c)
                         else Some (Printf.sprintf "inf:%d" c))
                       buckets)))
          in
          Format.fprintf ppf "%s,histogram,%d,%s@." (csv_escape name) observations
            (csv_escape (Printf.sprintf "sum=%g;%s" sum detail)))
    snap

let write_metrics_csv ~path snap =
  write_atomic ~path (Format.asprintf "%a" pp_metrics_csv snap)
