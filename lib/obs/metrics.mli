(** A cheap, allocation-light registry of named counters, gauges and
    histograms.

    Instruments are created once at module-initialization time (so a
    snapshot always lists every metric the binary knows about, zeroed or
    not) and updated from hot paths. Every update is gated on a single
    global flag: with metrics disabled — the default — an update is one
    load and one predictable branch, so instrumented code paths cost
    nothing measurable. Enable with {!set_enabled} before the code under
    observation runs, then read everything back with {!snapshot}.

    Names are dotted paths by convention ([interp.dyn_instrs],
    [rt.hash.collisions.try2]); creating the same name twice returns the
    same instrument. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val counter : string -> counter
(** Find or create. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?bounds:float array -> string -> histogram
(** [bounds] are inclusive upper bounds of the buckets, in increasing
    order; one overflow bucket is appended. The default is a coarse
    1–2–5 decade ladder up to 10⁶. Bounds are fixed at first creation. *)

val observe : histogram -> float -> unit

(** {2 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      buckets : int array;  (** length [Array.length bounds + 1] *)
      sum : float;
      observations : int;
    }

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered instrument (registration survives). *)

val counter_value : snapshot -> string -> int option
(** Lookup helper for tests and CLIs. *)

val merge : snapshot list -> snapshot
(** Combine per-shard snapshots into one: counters and histogram buckets
    add (saturating at [max_int]), histogram sums add, and gauges take
    the minimum — conservative for fraction-style gauges like
    [resilience.matched_fraction], and commutative/associative so the
    result is independent of shard arrival order. Histograms whose
    bounds disagree keep the first (in name order) shape. The result is
    sorted by name like {!snapshot}. *)

val absorb : snapshot -> unit
(** Fold a (typically merged, typically from a worker process) snapshot
    into the live registry so a later {!snapshot} reflects it: counters
    and histograms add, gauges are overwritten. Works even while metrics
    are disabled — shard aggregation is not a hot path. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Human-readable table, one metric per line. *)
