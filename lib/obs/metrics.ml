type counter = { cname : string; mutable count : int }
type gauge = { gname : string; mutable gvalue : float }

type histogram = {
  hname : string;
  bounds : float array;
  buckets : int array;
  mutable sum : float;
  mutable observations : int;
}

let on = ref false
let set_enabled b = on := b
let enabled () = !on

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { cname = name; count = 0 } in
      Hashtbl.replace counters name c;
      c

let incr c = if !on then c.count <- c.count + 1
let add c n = if !on then c.count <- c.count + n
let value c = c.count

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { gname = name; gvalue = 0.0 } in
      Hashtbl.replace gauges name g;
      g

let set g v = if !on then g.gvalue <- v
let gauge_value g = g.gvalue

let default_bounds =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 1e4; 1e5; 1e6 |]

let histogram ?(bounds = default_bounds) name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          hname = name;
          bounds;
          buckets = Array.make (Array.length bounds + 1) 0;
          sum = 0.0;
          observations = 0;
        }
      in
      Hashtbl.replace histograms name h;
      h

let observe h x =
  if !on then begin
    let n = Array.length h.bounds in
    let rec bucket i = if i >= n || x <= h.bounds.(i) then i else bucket (i + 1) in
    let b = bucket 0 in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.sum <- h.sum +. x;
    h.observations <- h.observations + 1
  end

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      buckets : int array;
      sum : float;
      observations : int;
    }

type snapshot = (string * value) list

let snapshot () =
  let acc = ref [] in
  Hashtbl.iter (fun name c -> acc := (name, Counter c.count) :: !acc) counters;
  Hashtbl.iter (fun name g -> acc := (name, Gauge g.gvalue) :: !acc) gauges;
  Hashtbl.iter
    (fun name h ->
      acc :=
        ( name,
          Histogram
            {
              bounds = Array.copy h.bounds;
              buckets = Array.copy h.buckets;
              sum = h.sum;
              observations = h.observations;
            } )
        :: !acc)
    histograms;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.iter (fun _ g -> g.gvalue <- 0.0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 (Array.length h.buckets) 0;
      h.sum <- 0.0;
      h.observations <- 0)
    histograms

let counter_value snap name =
  match List.assoc_opt name snap with Some (Counter n) -> Some n | _ -> None

(* Saturating addition of non-negative totals: shard merges must never
   wrap around, they clamp at max_int. *)
let sat_add a b = if a > max_int - b then max_int else a + b

let merge_value a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (sat_add x y)
  | Gauge x, Gauge y -> Gauge (Float.min x y)
  | Histogram h1, Histogram h2 when h1.bounds = h2.bounds ->
      Histogram
        {
          bounds = h1.bounds;
          buckets = Array.map2 sat_add h1.buckets h2.buckets;
          sum = h1.sum +. h2.sum;
          observations = sat_add h1.observations h2.observations;
        }
  | v, _ -> v (* mismatched shapes: keep the first, deterministically *)

let merge snaps =
  let tbl : (string, value) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun snap ->
      List.iter
        (fun (name, v) ->
          match Hashtbl.find_opt tbl name with
          | None -> Hashtbl.replace tbl name v
          | Some prev -> Hashtbl.replace tbl name (merge_value prev v))
        snap)
    snaps;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let absorb snap =
  let was = !on in
  on := true;
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> add (counter name) n
      | Gauge x -> (gauge name).gvalue <- x
      | Histogram { bounds; buckets; sum; observations } ->
          let h = histogram ~bounds name in
          if h.bounds = bounds then begin
            Array.iteri
              (fun i c -> h.buckets.(i) <- sat_add h.buckets.(i) c)
              buckets;
            h.sum <- h.sum +. sum;
            h.observations <- sat_add h.observations observations
          end)
    snap;
  on := was

let pp_snapshot ppf snap =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "%-40s %d@," name n
      | Gauge x -> Format.fprintf ppf "%-40s %g@," name x
      | Histogram { bounds; buckets; sum; observations } ->
          Format.fprintf ppf "%-40s n=%d sum=%g" name observations sum;
          if observations > 0 then begin
            Format.fprintf ppf "  [";
            Array.iteri
              (fun i c ->
                if c > 0 then
                  if i < Array.length bounds then
                    Format.fprintf ppf " <=%g:%d" bounds.(i) c
                  else Format.fprintf ppf " inf:%d" c)
              buckets;
            Format.fprintf ppf " ]"
          end;
          Format.pp_print_cut ppf ())
    snap;
  Format.pp_close_box ppf ()
