type event = {
  name : string;
  cat : string;
  ph : [ `Complete | `Instant | `Counter | `Metadata ];
  ts_us : float;
  dur_us : float;
  args : (string * string) list;
  nargs : (string * float) list;
}

let on = ref false
let events_rev : event list ref = ref []
let epoch = ref 0.0

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

let start () =
  events_rev := [];
  epoch := Unix.gettimeofday ();
  on := true

let stop () = on := false
let enabled () = !on

let push ev = events_rev := ev :: !events_rev

let with_span ?(cat = "pipeline") ?(args = []) name f =
  if not !on then f ()
  else begin
    let t0 = now_us () in
    let record () =
      push
        {
          name;
          cat;
          ph = `Complete;
          ts_us = t0;
          dur_us = now_us () -. t0;
          args;
          nargs = [];
        }
    in
    match f () with
    | v ->
        record ();
        v
    | exception e ->
        record ();
        raise e
  end

let instant ?(cat = "mark") ?(args = []) name =
  if !on then
    push
      {
        name;
        cat;
        ph = `Instant;
        ts_us = now_us ();
        dur_us = 0.0;
        args;
        nargs = [];
      }

let counter ?(cat = "telemetry") ?ts_us name series =
  if !on then
    push
      {
        name;
        cat;
        ph = `Counter;
        ts_us = (match ts_us with Some t -> t | None -> now_us ());
        dur_us = 0.0;
        args = [];
        nargs = series;
      }

let metadata ~name value =
  if !on then
    push
      {
        name;
        cat = "__metadata";
        ph = `Metadata;
        ts_us = 0.0;
        dur_us = 0.0;
        args = [ ("name", value) ];
        nargs = [];
      }

let label_process ?(thread = "main") process =
  metadata ~name:"process_name" process;
  metadata ~name:"thread_name" thread

let events () = List.rev !events_rev

(* Every string — names, categories and argument values alike — renders
   through Jsonx so arbitrary bytes (quotes, newlines, binary garbage in
   a workload name) always produce standard JSON, same as the metrics
   sinks. *)
let event_json ev =
  let base =
    [
      ("name", Jsonx.Str ev.name);
      ("cat", Jsonx.Str ev.cat);
      ( "ph",
        Jsonx.Str
          (match ev.ph with
          | `Complete -> "X"
          | `Instant -> "i"
          | `Counter -> "C"
          | `Metadata -> "M") );
      ("ts", Jsonx.Float ev.ts_us);
      ("pid", Jsonx.Int 1);
      ("tid", Jsonx.Int 1);
    ]
  in
  let dur =
    match ev.ph with
    | `Complete -> [ ("dur", Jsonx.Float ev.dur_us) ]
    | `Instant -> [ ("s", Jsonx.Str "t") ]
    | `Counter | `Metadata -> []
  in
  let args =
    match
      List.map (fun (k, v) -> (k, Jsonx.Str v)) ev.args
      @ List.map (fun (k, v) -> (k, Jsonx.Float v)) ev.nargs
    with
    | [] -> []
    | fields -> [ ("args", Jsonx.Obj fields) ]
  in
  Jsonx.Obj (base @ dur @ args)

let to_json () =
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.Arr (List.map event_json (events ())));
      ("displayTimeUnit", Jsonx.Str "ms");
    ]

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Jsonx.to_string (to_json ())))
