type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* {2 Printing} *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
          (* Escaping the upper half keeps the output pure ASCII, hence
             valid UTF-8 JSON even when a string carries raw bytes (e.g.
             diagnostics quoting a corrupt profile's garbage token). *)
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_float ppf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Format.fprintf ppf "%.1f" f
  else if Float.is_finite f then Format.fprintf ppf "%.12g" f
  else Format.pp_print_string ppf "null"

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_string ppf (if b then "true" else "false")
  | Int i -> Format.pp_print_int ppf i
  | Float f -> pp_float ppf f
  | Str s -> Format.fprintf ppf "\"%s\"" (escape s)
  | Arr [] -> Format.pp_print_string ppf "[]"
  | Arr l ->
      Format.pp_print_char ppf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Format.pp_print_char ppf ',';
          pp ppf v)
        l;
      Format.pp_print_char ppf ']'
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
      Format.pp_print_char ppf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Format.pp_print_char ppf ',';
          Format.fprintf ppf "\"%s\":" (escape k);
          pp ppf v)
        fields;
      Format.pp_print_char ppf '}'

let to_string v = Format.asprintf "%a" pp v

(* {2 Parsing} *)

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail st "bad \\u escape"
                in
                st.pos <- st.pos + 4;
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_char b '?'
            | _ -> fail st "unknown escape");
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st "malformed number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (key, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields_loop ()
          | Some '}' -> advance st
          | _ -> fail st "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items_loop ()
          | Some ']' -> advance st
          | _ -> fail st "expected ',' or ']'"
        in
        items_loop ();
        Arr (List.rev !items)
      end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let member v key =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function Arr l -> l | _ -> []

let rec canonical = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> v
  | Arr l -> Arr (List.map canonical l)
  | Obj fields ->
      Obj
        (List.map (fun (k, v) -> (k, canonical v)) fields
        |> List.stable_sort (fun (a, _) (b, _) -> String.compare a b))
