module Cfg_view = Ppp_ir.Cfg_view
module Ir = Ppp_ir.Ir

type t = (Path.t, int ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let add t p n =
  match Hashtbl.find_opt t p with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t p (ref n)

let record t p = add t p 1
let freq t p = match Hashtbl.find_opt t p with Some r -> !r | None -> 0
let num_distinct t = Hashtbl.length t
let iter t f = Hashtbl.iter (fun p r -> f p !r) t

let fold t ~init ~f =
  Hashtbl.fold (fun p r acc -> f acc p !r) t init

let total_flow t view metric =
  fold t ~init:0 ~f:(fun acc p n ->
      acc + Metric.flow metric ~freq:n ~branches:(Path.branches view p))

type program = (string, t) Hashtbl.t

let create_program (p : Ir.program) =
  let tbl = Hashtbl.create 17 in
  List.iter (fun (r : Ir.routine) -> Hashtbl.replace tbl r.name (create ())) p.routines;
  tbl

let routine prog name = Hashtbl.find prog name
let iter_routines prog f = Hashtbl.iter f prog

let program_flow prog ~views metric =
  Hashtbl.fold (fun name t acc -> acc + total_flow t (views name) metric) prog 0

let program_distinct prog = Hashtbl.fold (fun _ t acc -> acc + num_distinct t) prog 0

let hot_paths prog ~views ~metric ~threshold =
  (* One flow computation per path: [Path.branches] walks the whole edge
     list, so compute it once and reuse the result for both the total
     (the denominator of the cutoff) and the per-path cutoff test. *)
  let all = ref [] in
  let total = ref 0 in
  iter_routines prog (fun name t ->
      let view = views name in
      iter t (fun p n ->
          let flow = Metric.flow metric ~freq:n ~branches:(Path.branches view p) in
          total := !total + flow;
          if flow > 0 then all := (name, p, flow) :: !all));
  let cutoff = threshold *. float_of_int !total in
  List.filter (fun (_, _, flow) -> float_of_int flow >= cutoff) !all
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

(* An interning frequency table for hot tracing loops: paths arrive as a
   reusable [int array] prefix (no list allocation per execution), are
   hashed in place, and only a path's *first* execution copies its edges
   out. Open addressing with linear probing, load factor <= 1/2. *)
module Intern = struct
  let new_profile = create
  let profile_add = add

  type table = {
    mutable keys : int array array; (* id -> edge list of the path *)
    mutable counts : int array; (* id -> executions *)
    mutable n : int; (* number of distinct paths *)
    mutable buckets : int array; (* slot -> id, or -1 *)
    mutable mask : int; (* Array.length buckets - 1 *)
  }

  let create () =
    {
      keys = Array.make 16 [||];
      counts = Array.make 16 0;
      n = 0;
      buckets = Array.make 32 (-1);
      mask = 31;
    }

  (* FNV-1a over the edge ids, truncated to a nonnegative int. *)
  let hash buf len =
    let h = ref 0x811c9dc5 in
    for i = 0 to len - 1 do
      h := (!h lxor Array.unsafe_get buf i) * 0x01000193
    done;
    !h land max_int

  let matches key buf len =
    Array.length key = len
    &&
    let i = ref 0 in
    while !i < len && Array.unsafe_get key !i = Array.unsafe_get buf !i do
      incr i
    done;
    !i = len

  let insert_id t h id =
    let s = ref (h land t.mask) in
    while t.buckets.(!s) >= 0 do
      s := (!s + 1) land t.mask
    done;
    t.buckets.(!s) <- id

  (* Make room for one more id, keeping the bucket load under 1/2. *)
  let reserve t =
    let cap = Array.length t.keys in
    if t.n = cap then begin
      let keys = Array.make (2 * cap) [||] in
      Array.blit t.keys 0 keys 0 cap;
      t.keys <- keys;
      let counts = Array.make (2 * cap) 0 in
      Array.blit t.counts 0 counts 0 cap;
      t.counts <- counts
    end;
    if 2 * (t.n + 1) >= Array.length t.buckets then begin
      let nb = 2 * Array.length t.buckets in
      t.buckets <- Array.make nb (-1);
      t.mask <- nb - 1;
      for id = 0 to t.n - 1 do
        let k = t.keys.(id) in
        insert_id t (hash k (Array.length k)) id
      done
    end

  let record t buf ~len =
    let h = hash buf len in
    let rec find s =
      let id = t.buckets.(s) in
      if id < 0 then -1
      else if matches t.keys.(id) buf len then id
      else find ((s + 1) land t.mask)
    in
    let id = find (h land t.mask) in
    if id >= 0 then t.counts.(id) <- t.counts.(id) + 1
    else begin
      reserve t;
      let id = t.n in
      t.n <- id + 1;
      t.keys.(id) <- Array.sub buf 0 len;
      t.counts.(id) <- 1;
      insert_id t h id
    end

  let num_distinct t = t.n

  let iter t f =
    for id = 0 to t.n - 1 do
      f t.keys.(id) t.counts.(id)
    done

  let to_profile t =
    let p = new_profile () in
    iter t (fun edges n -> profile_add p (Array.to_list edges) n);
    p
end

let flow_of_set prog ~views ~metric paths =
  List.fold_left
    (fun acc (name, p) ->
      match Hashtbl.find_opt prog name with
      | None -> acc
      | Some t ->
          let n = freq t p in
          acc + Metric.flow metric ~freq:n ~branches:(Path.branches (views name) p))
    0 paths
