(** Path profiles: execution (or estimated) frequencies per path. *)

type t
(** Paths and their frequencies for one routine. *)

val create : unit -> t
val record : t -> Path.t -> unit
(** Increment the path's frequency by one. *)

val add : t -> Path.t -> int -> unit
val freq : t -> Path.t -> int
val num_distinct : t -> int
val iter : t -> (Path.t -> int -> unit) -> unit
val fold : t -> init:'a -> f:('a -> Path.t -> int -> 'a) -> 'a

val total_flow : t -> Ppp_ir.Cfg_view.t -> Metric.t -> int
(** Total flow of all paths under the metric. *)

type program
(** Path profiles for every routine, by routine name. *)

val create_program : Ppp_ir.Ir.program -> program
val routine : program -> string -> t
val iter_routines : program -> (string -> t -> unit) -> unit

val program_flow :
  program -> views:(string -> Ppp_ir.Cfg_view.t) -> Metric.t -> int

val program_distinct : program -> int

val hot_paths :
  program ->
  views:(string -> Ppp_ir.Cfg_view.t) ->
  metric:Metric.t ->
  threshold:float ->
  (string * Path.t * int) list
(** Paths whose flow is at least [threshold] (a fraction, e.g. 0.00125)
    of total program flow, sorted by decreasing flow (Section 6.1). *)

(** {2 Interning}

    A frequency table for hot tracing loops: the executing engine keeps
    the current path as a reusable [int array] prefix (no per-execution
    list allocation), and only a path's {e first} execution copies its
    edges out. Used by the VM engine; {!Intern.to_profile} converts back
    to the ordinary representation at the end of a run. *)

module Intern : sig
  type table

  val create : unit -> table

  val record : table -> int array -> len:int -> unit
  (** Count one execution of the path whose edges are [buf.(0 .. len-1)].
      The buffer is read, never retained. *)

  val num_distinct : table -> int

  val iter : table -> (int array -> int -> unit) -> unit
  (** [iter t f] calls [f edges count] per distinct path; [edges] is
      owned by the table — do not mutate it. *)

  val to_profile : table -> t
end

val flow_of_set :
  program ->
  views:(string -> Ppp_ir.Cfg_view.t) ->
  metric:Metric.t ->
  (string * Path.t) list ->
  int
(** Total flow of the given paths according to this profile (paths absent
    from the profile contribute zero). *)
