module Ir = Ppp_ir.Ir
module Graph = Ppp_cfg.Graph
module Cfg_view = Ppp_ir.Cfg_view
module Diagnostic = Ppp_resilience.Diagnostic
module Stale_match = Ppp_resilience.Stale_match
module Fingerprint = Ppp_resilience.Fingerprint
module Crc = Ppp_resilience.Crc
module Obs = Ppp_obs.Metrics

let g_matched = Obs.gauge "resilience.matched_fraction"
let m_salvaged = Obs.counter "resilience.counts.salvaged"
let m_dropped = Obs.counter "resilience.counts.dropped"
let m_stale = Obs.counter "resilience.stale_routines"

(* {2 Writers} *)

let save_edges ppf (p : Ir.program) prog =
  Format.fprintf ppf "edge-profile@.";
  List.iter
    (fun (r : Ir.routine) ->
      let t = Edge_profile.routine prog r.Ir.name in
      if Edge_profile.total t > 0 then begin
        Format.fprintf ppf "routine %s@." r.Ir.name;
        let view = Cfg_view.of_routine r in
        Graph.iter_edges (Cfg_view.graph view) (fun e ->
            let c = Edge_profile.freq t e in
            if c > 0 then Format.fprintf ppf "e%d %d@." e c)
      end)
    p.routines

let save_paths ppf (p : Ir.program) prog =
  Format.fprintf ppf "path-profile@.";
  List.iter
    (fun (r : Ir.routine) ->
      let t = Path_profile.routine prog r.Ir.name in
      if Path_profile.num_distinct t > 0 then begin
        Format.fprintf ppf "routine %s@." r.Ir.name;
        Path_profile.iter t (fun path n ->
            Format.fprintf ppf "%d :%s@." n
              (String.concat "" (List.map (fun e -> " " ^ string_of_int e) path)))
      end)
    p.routines

let edge_lines (p : Ir.program) prog =
  List.concat_map
    (fun (r : Ir.routine) ->
      let t = Edge_profile.routine prog r.Ir.name in
      if Edge_profile.total t = 0 then []
      else
        let view = Cfg_view.of_routine r in
        let counters = ref [] in
        Graph.iter_edges (Cfg_view.graph view) (fun e ->
            let c = Edge_profile.freq t e in
            if c > 0 then counters := Printf.sprintf "e%d %d" e c :: !counters);
        Printf.sprintf "routine %s" r.Ir.name :: List.rev !counters)
    p.routines

let path_lines (p : Ir.program) prog =
  List.concat_map
    (fun (r : Ir.routine) ->
      let t = Path_profile.routine prog r.Ir.name in
      if Path_profile.num_distinct t = 0 then []
      else
        let counters = ref [] in
        Path_profile.iter t (fun path n ->
            counters :=
              Printf.sprintf "%d :%s" n
                (String.concat "" (List.map (fun e -> " " ^ string_of_int e) path))
              :: !counters);
        Printf.sprintf "routine %s" r.Ir.name :: !counters)
    p.routines

let save ?edges ?paths ppf (p : Ir.program) =
  Format.fprintf ppf "ppp-profile v2@.";
  List.iter
    (fun (r : Ir.routine) ->
      let d = Stale_match.describe r in
      Format.fprintf ppf "cfg routine=%s fp=%s blocks=%d edges=%d@." r.Ir.name
        (Fingerprint.to_hex d.Stale_match.fingerprint)
        (Array.length d.Stale_match.strict)
        (Array.length d.Stale_match.edges);
      Array.iteri
        (fun i lbl ->
          Format.fprintf ppf "b %s %s %s@." lbl
            (Fingerprint.to_hex d.Stale_match.strict.(i))
            (Fingerprint.to_hex d.Stale_match.loose.(i)))
        d.Stale_match.labels;
      Array.iteri
        (fun i (s, dst) -> Format.fprintf ppf "e %d %d %d@." i s dst)
        d.Stale_match.edges)
    p.routines;
  let section name lines =
    let payload = String.concat "\n" lines in
    Format.fprintf ppf "section %s crc=%s lines=%d@." name
      (Crc.to_hex (Crc.string payload))
      (List.length lines);
    List.iter (fun l -> Format.fprintf ppf "%s@." l) lines
  in
  section "edges" (match edges with Some e -> edge_lines p e | None -> []);
  section "paths" (match paths with Some q -> path_lines p q | None -> []);
  Format.fprintf ppf "end@."

(* {2 Loader} *)

type loaded = {
  edges : Edge_profile.program;
  paths : Path_profile.program;
  diagnostics : Diagnostic.t list;
  matched_fraction : float;
  stale_routines : int;
  salvaged_counts : int;
  dropped_counts : int;
}

(* How counts recorded for a routine relate to the program loading them. *)
type status =
  | Exact of Stale_match.cfg_desc  (** current description, for range checks *)
  | Salvage of Stale_match.cfg_desc * Stale_match.result
      (** stale: current description + old-id -> new-id match *)
  | Unknown

type loader = {
  program : Ir.program;
  l_edges : Edge_profile.program;
  l_paths : Path_profile.program;
  mutable diags_rev : Diagnostic.t list;
  mutable section : [ `Edges | `Paths ];
  mutable routine : (string * status) option;
  mutable applied : int;
  mutable dropped : int;
  mutable stale : int;
  descs : (string, Stale_match.cfg_desc) Hashtbl.t;  (* current program, memoized *)
  old_descs : (string, Stale_match.cfg_desc) Hashtbl.t;  (* from v2 cfg headers *)
  statuses : (string, status) Hashtbl.t;
}

let make_loader (p : Ir.program) =
  {
    program = p;
    l_edges = Edge_profile.create_program p;
    l_paths = Path_profile.create_program p;
    diags_rev = [];
    section = `Edges;
    routine = None;
    applied = 0;
    dropped = 0;
    stale = 0;
    descs = Hashtbl.create 17;
    old_descs = Hashtbl.create 17;
    statuses = Hashtbl.create 17;
  }

let diag ld d = ld.diags_rev <- d :: ld.diags_rev

let desc_of ld (r : Ir.routine) =
  match Hashtbl.find_opt ld.descs r.Ir.name with
  | Some d -> d
  | None ->
      let d = Stale_match.describe r in
      Hashtbl.replace ld.descs r.Ir.name d;
      d

let first_token line =
  match String.index_opt line ' ' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Resolve (and memoize) how to treat counts recorded for [name]; emits
   the Unknown_routine / Stale diagnostic the first time. *)
let resolve_status ld ~lineno name =
  match Hashtbl.find_opt ld.statuses name with
  | Some s -> s
  | None ->
      let s =
        match Ir.find_routine ld.program name with
        | None ->
            diag ld
              (Diagnostic.errorf ~line:lineno ~token:name ~routine:name
                 Unknown_routine "no such routine in this program");
            Unknown
        | Some r -> (
            let nd = desc_of ld r in
            match Hashtbl.find_opt ld.old_descs name with
            | Some od when od.Stale_match.fingerprint <> nd.Stale_match.fingerprint
              ->
                let m = Stale_match.match_cfgs ~old_desc:od ~new_desc:nd in
                ld.stale <- ld.stale + 1;
                diag ld
                  (Diagnostic.errorf ~severity:Diagnostic.Warning ~routine:name
                     Stale
                     "CFG fingerprint mismatch; matched %d/%d blocks and %d/%d \
                      edges by stable hashes"
                     m.Stale_match.matched_blocks
                     (Array.length od.Stale_match.strict)
                     m.Stale_match.matched_edges
                     (Array.length od.Stale_match.edges));
                Salvage (nd, m)
            | Some _ | None -> Exact nd)
      in
      Hashtbl.replace ld.statuses name s;
      s

let apply_edge ld ~lineno ~token status id count =
  if count < 0 then begin
    diag ld
      (Diagnostic.errorf ~line:lineno ~token Corrupt "negative edge counter");
    ld.dropped <- ld.dropped + 1
  end
  else
    match status with
    | Unknown -> ld.dropped <- ld.dropped + count
    | Exact nd ->
        if id >= 0 && id < Array.length nd.Stale_match.edges then begin
          (match ld.routine with
          | Some (name, _) ->
              Edge_profile.add (Edge_profile.routine ld.l_edges name) id count
          | None -> ());
          ld.applied <- ld.applied + count
        end
        else begin
          diag ld
            (Diagnostic.errorf ~line:lineno ~token Corrupt
               "edge id %d out of range (routine has %d edges)" id
               (Array.length nd.Stale_match.edges));
          ld.dropped <- ld.dropped + count
        end
    | Salvage (_, m) -> (
        match Stale_match.map_edge m id with
        | Some nid ->
            (match ld.routine with
            | Some (name, _) ->
                Edge_profile.add (Edge_profile.routine ld.l_edges name) nid count
            | None -> ());
            ld.applied <- ld.applied + count
        | None -> ld.dropped <- ld.dropped + count)

(* A salvaged path must still be a path: consecutive mapped edges have to
   chain head-to-tail in the new CFG, and only the last may reach exit. *)
let path_is_connected (nd : Stale_match.cfg_desc) path =
  let n = List.length path in
  let ok = ref true in
  List.iteri
    (fun i e ->
      if !ok then
        let _, dst = nd.Stale_match.edges.(e) in
        if i < n - 1 then begin
          let src', _ = nd.Stale_match.edges.(List.nth path (i + 1)) in
          if dst <> src' then ok := false
        end)
    path;
  !ok

let apply_path ld ~lineno ~token status path count =
  if count < 0 || path = [] then begin
    diag ld
      (Diagnostic.errorf ~line:lineno ~token Corrupt "malformed path counter");
    ld.dropped <- ld.dropped + max 0 count
  end
  else
    match status with
    | Unknown -> ld.dropped <- ld.dropped + count
    | Exact nd ->
        if
          List.for_all
            (fun e -> e >= 0 && e < Array.length nd.Stale_match.edges)
            path
        then begin
          (match ld.routine with
          | Some (name, _) ->
              Path_profile.add (Path_profile.routine ld.l_paths name) path count
          | None -> ());
          ld.applied <- ld.applied + count
        end
        else begin
          diag ld
            (Diagnostic.errorf ~line:lineno ~token Corrupt
               "path mentions an edge id out of range");
          ld.dropped <- ld.dropped + count
        end
    | Salvage (nd, m) -> (
        let mapped = List.map (Stale_match.map_edge m) path in
        match
          if List.for_all Option.is_some mapped then
            Some (List.map Option.get mapped)
          else None
        with
        | Some new_path when path_is_connected nd new_path ->
            (match ld.routine with
            | Some (name, _) ->
                Path_profile.add (Path_profile.routine ld.l_paths name) new_path
                  count
            | None -> ());
            ld.applied <- ld.applied + count
        | _ -> ld.dropped <- ld.dropped + count)

let split_tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* One payload line (shared by v1 bodies and v2 section payloads). *)
let payload_line ld ~lineno raw =
  let line = String.trim raw in
  if line = "" || line.[0] = '#' then ()
  else if line = "edge-profile" then ld.section <- `Edges
  else if line = "path-profile" then ld.section <- `Paths
  else
    match split_tokens line with
    | [ "routine"; name ] ->
        ld.routine <- Some (name, resolve_status ld ~lineno name)
    | tokens -> (
        let status =
          match ld.routine with
          | Some (_, s) -> Some s
          | None ->
              diag ld
                (Diagnostic.errorf ~line:lineno ~token:(first_token line) Corrupt
                   "counter before any 'routine' header");
              None
        in
        match status with
        | None -> ()
        | Some status -> (
            match ld.section with
            | `Edges -> (
                match tokens with
                | [ e; c ] when String.length e > 1 && e.[0] = 'e' -> (
                    match
                      ( int_of_string_opt
                          (String.sub e 1 (String.length e - 1)),
                        int_of_string_opt c )
                    with
                    | Some id, Some count ->
                        apply_edge ld ~lineno ~token:e status id count
                    | _ ->
                        diag ld
                          (Diagnostic.errorf ~line:lineno ~token:e Corrupt
                             "malformed edge counter"))
                | _ ->
                    diag ld
                      (Diagnostic.errorf ~line:lineno ~token:(first_token line)
                         Corrupt "expected 'e<ID> <count>'"))
            | `Paths -> (
                match tokens with
                | count :: ":" :: rest -> (
                    match
                      ( int_of_string_opt count,
                        List.map int_of_string_opt rest )
                    with
                    | Some c, ids when List.for_all Option.is_some ids ->
                        apply_path ld ~lineno ~token:count status
                          (List.map Option.get ids) c
                    | _ ->
                        diag ld
                          (Diagnostic.errorf ~line:lineno ~token:count Corrupt
                             "malformed path counter"))
                | _ ->
                    diag ld
                      (Diagnostic.errorf ~line:lineno ~token:(first_token line)
                         Corrupt "expected '<count> : <edges>'"))))

(* {3 v2 structure} *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* "key=value" pairs of a cfg / section header line. *)
let kv_args tokens =
  List.filter_map
    (fun t ->
      match String.index_opt t '=' with
      | Some i ->
          Some (String.sub t 0 i, String.sub t (i + 1) (String.length t - i - 1))
      | None -> None)
    tokens

let parse_cfg_header ld lines i lineno line =
  let args = kv_args (split_tokens line) in
  let get k = List.assoc_opt k args in
  match (get "routine", Option.bind (get "fp") Fingerprint.of_hex,
         Option.bind (get "blocks") int_of_string_opt,
         Option.bind (get "edges") int_of_string_opt)
  with
  | Some name, Some fp, Some nblocks, Some nedges
    when nblocks >= 0 && nblocks <= 1_000_000 && nedges >= 0
         && nedges <= 1_000_000 ->
      let labels = Array.make nblocks "" in
      let strict = Array.make nblocks 0 in
      let loose = Array.make nblocks 0 in
      let edges = Array.make nedges (-2, -2) in
      let n = Array.length lines in
      let want_b = ref 0 and want_e = ref 0 in
      let ok = ref true in
      while !ok && (!want_b < nblocks || !want_e < nedges) && !i < n do
        let raw = lines.(!i) in
        let l = String.trim raw in
        let ln = !i + 1 in
        if l = "" || l.[0] = '#' then incr i
        else if !want_b < nblocks && starts_with "b " l then begin
          (match split_tokens l with
          | [ "b"; lbl; sh; lh ] -> (
              match (Fingerprint.of_hex sh, Fingerprint.of_hex lh) with
              | Some s, Some w ->
                  labels.(!want_b) <- lbl;
                  strict.(!want_b) <- s;
                  loose.(!want_b) <- w
              | _ ->
                  diag ld
                    (Diagnostic.errorf ~line:ln ~token:lbl ~routine:name Corrupt
                       "malformed block hash"))
          | _ ->
              diag ld
                (Diagnostic.errorf ~line:ln ~routine:name Corrupt
                   "malformed 'b' line in cfg header"));
          incr want_b;
          incr i
        end
        else if !want_b >= nblocks && starts_with "e " l then begin
          (match split_tokens l with
          | [ "e"; id; src; dst ] -> (
              match
                (int_of_string_opt id, int_of_string_opt src, int_of_string_opt dst)
              with
              | Some id, Some s, Some d when id >= 0 && id < nedges ->
                  edges.(id) <- (s, d)
              | _ ->
                  diag ld
                    (Diagnostic.errorf ~line:ln ~token:id ~routine:name Corrupt
                       "malformed 'e' line in cfg header"))
          | _ ->
              diag ld
                (Diagnostic.errorf ~line:ln ~routine:name Corrupt
                   "malformed 'e' line in cfg header"));
          incr want_e;
          incr i
        end
        else begin
          diag ld
            (Diagnostic.errorf ~line:ln ~token:(first_token l) ~routine:name
               Corrupt "cfg header for %s is incomplete" name);
          ok := false
        end
      done;
      if !ok && (!want_b < nblocks || !want_e < nedges) then
        diag ld
          (Diagnostic.errorf ~routine:name Truncated
             "cfg header for %s ends before its declared %d blocks / %d edges"
             name nblocks nedges);
      Hashtbl.replace ld.old_descs name
        { Stale_match.fingerprint = fp; labels; strict; loose; edges }
  | _ ->
      diag ld
        (Diagnostic.errorf ~line:lineno ~token:(first_token line) Corrupt
           "malformed cfg header")

let parse_section ld lines i lineno line =
  let tokens = split_tokens line in
  let kind =
    match tokens with
    | _ :: k :: _ when k = "edges" -> Some `Edges
    | _ :: k :: _ when k = "paths" -> Some `Paths
    | _ -> None
  in
  let args = kv_args tokens in
  match
    (kind, Option.bind (List.assoc_opt "crc" args) Crc.of_hex,
     Option.bind (List.assoc_opt "lines" args) int_of_string_opt)
  with
  | Some kind, Some crc, Some k when k >= 0 ->
      ld.section <- kind;
      ld.routine <- None;
      let n = Array.length lines in
      let available = min k (n - !i) in
      if available < k then
        diag ld
          (Diagnostic.errorf ~line:lineno Truncated
             "section declares %d payload lines but only %d remain" k
             (max 0 available));
      let payload = Array.sub lines !i (max 0 available) in
      let start = !i in
      i := !i + max 0 available;
      let joined = String.concat "\n" (Array.to_list payload) in
      if available = k && Crc.string joined <> crc then
        diag ld
          (Diagnostic.errorf ~line:lineno Corrupt
             "checksum mismatch in %s section"
             (match kind with `Edges -> "edges" | `Paths -> "paths"));
      Array.iteri
        (fun j raw -> payload_line ld ~lineno:(start + j + 1) raw)
        payload
  | _ ->
      diag ld
        (Diagnostic.errorf ~line:lineno ~token:(first_token line) Corrupt
           "malformed section header")

let parse_v2 ld lines =
  let n = Array.length lines in
  let i = ref 1 (* line 0 is the format header *) in
  let seen_end = ref false in
  let stop = ref false in
  while (not !stop) && !i < n do
    let raw = lines.(!i) in
    let lineno = !i + 1 in
    let line = String.trim raw in
    incr i;
    if line = "" || line.[0] = '#' then ()
    else if !seen_end then begin
      diag ld
        (Diagnostic.errorf ~line:lineno ~token:(first_token line) Corrupt
           "content after 'end' marker");
      stop := true
    end
    else if starts_with "cfg " line then parse_cfg_header ld lines i lineno line
    else if starts_with "section " line then parse_section ld lines i lineno line
    else if line = "end" then seen_end := true
    else
      diag ld
        (Diagnostic.errorf ~line:lineno ~token:(first_token line) Corrupt
           "unexpected line")
  done;
  if not !seen_end then
    diag ld (Diagnostic.errorf Truncated "dump ends without the 'end' marker")

let parse_v1 ld lines =
  Array.iteri (fun i raw -> payload_line ld ~lineno:(i + 1) raw) lines

let load (p : Ir.program) text =
  let ld = make_loader p in
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let is_v2 =
    Array.length lines > 0 && String.trim lines.(0) = "ppp-profile v2"
  in
  if is_v2 then parse_v2 ld lines else parse_v1 ld lines;
  let total = ld.applied + ld.dropped in
  let matched_fraction =
    if total = 0 then 1.0 else float_of_int ld.applied /. float_of_int total
  in
  Obs.set g_matched matched_fraction;
  Obs.add m_salvaged ld.applied;
  Obs.add m_dropped ld.dropped;
  Obs.add m_stale ld.stale;
  let diagnostics = List.rev ld.diags_rev in
  if ld.applied = 0 && Diagnostic.count_errors diagnostics > 0 then
    Error diagnostics
  else
    Ok
      {
        edges = ld.l_edges;
        paths = ld.l_paths;
        diagnostics;
        matched_fraction;
        stale_routines = ld.stale;
        salvaged_counts = ld.applied;
        dropped_counts = ld.dropped;
      }
