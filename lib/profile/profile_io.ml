module Ir = Ppp_ir.Ir
module Graph = Ppp_cfg.Graph
module Cfg_view = Ppp_ir.Cfg_view
module Diagnostic = Ppp_resilience.Diagnostic
module Stale_match = Ppp_resilience.Stale_match
module Fingerprint = Ppp_resilience.Fingerprint
module Crc = Ppp_resilience.Crc
module Obs = Ppp_obs.Metrics

let g_matched = Obs.gauge "resilience.matched_fraction"
let m_salvaged = Obs.counter "resilience.counts.salvaged"
let m_dropped = Obs.counter "resilience.counts.dropped"
let m_stale = Obs.counter "resilience.stale_routines"

(* {2 Small text helpers} *)

let first_token line =
  match String.index_opt line ' ' with
  | Some i -> String.sub line 0 i
  | None -> line

let split_tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* "key=value" pairs of a cfg / section header line. *)
let kv_args tokens =
  List.filter_map
    (fun t ->
      match String.index_opt t '=' with
      | Some i ->
          Some (String.sub t 0 i, String.sub t (i + 1) (String.length t - i - 1))
      | None -> None)
    tokens

(* {2 v1 writers} *)

let save_edges ppf (p : Ir.program) prog =
  Format.fprintf ppf "edge-profile@.";
  List.iter
    (fun (r : Ir.routine) ->
      let t = Edge_profile.routine prog r.Ir.name in
      if Edge_profile.total t > 0 then begin
        Format.fprintf ppf "routine %s@." r.Ir.name;
        let view = Cfg_view.of_routine r in
        Graph.iter_edges (Cfg_view.graph view) (fun e ->
            let c = Edge_profile.freq t e in
            if c > 0 then Format.fprintf ppf "e%d %d@." e c)
      end)
    p.routines

let save_paths ppf (p : Ir.program) prog =
  Format.fprintf ppf "path-profile@.";
  List.iter
    (fun (r : Ir.routine) ->
      let t = Path_profile.routine prog r.Ir.name in
      if Path_profile.num_distinct t > 0 then begin
        Format.fprintf ppf "routine %s@." r.Ir.name;
        Path_profile.iter t (fun path n ->
            Format.fprintf ppf "%d :%s@." n
              (String.concat "" (List.map (fun e -> " " ^ string_of_int e) path)))
      end)
    p.routines

(* {2 The structural parser}

   One walker understands both dump formats — the v1 headerless body and
   the v2 envelope (format header, cfg descriptions, checksummed
   sections, end marker) — and reports what it finds through a {!sink}.
   What the counts {e mean} is the consumer's business: the
   program-based {!load} resolves routines against a program and
   salvages stale ones, while {!Raw.parse} keeps the dump's own view for
   program-free merging. Structural problems (malformed lines, checksum
   mismatches, truncation) are diagnosed here, identically for every
   consumer. *)

type section_kind = [ `Edges | `Paths ]

type sink = {
  on_desc : string -> Stale_match.cfg_desc -> unit;
      (** a v2 [cfg] header and its [b]/[e] lines, fully parsed *)
  on_section : section_kind -> unit;
      (** a v2 [section] header — implies "no current routine" *)
  on_routine : lineno:int -> string -> unit;
  on_edge : lineno:int -> token:string -> id:int -> count:int -> unit;
  on_path : lineno:int -> token:string -> path:int list -> count:int -> unit;
  on_diag : Diagnostic.t -> unit;
}

type walker = {
  sink : sink;
  mutable section : section_kind;
  mutable have_routine : bool;
}

let diag w d = w.sink.on_diag d

(* One payload line (shared by v1 bodies and v2 section payloads). *)
let payload_line w ~lineno raw =
  let line = String.trim raw in
  if line = "" || line.[0] = '#' then ()
  else if line = "edge-profile" then w.section <- `Edges
  else if line = "path-profile" then w.section <- `Paths
  else
    match split_tokens line with
    | [ "routine"; name ] ->
        w.have_routine <- true;
        w.sink.on_routine ~lineno name
    | tokens ->
        if not w.have_routine then
          diag w
            (Diagnostic.errorf ~line:lineno ~token:(first_token line) Corrupt
               "counter before any 'routine' header")
        else begin
          match w.section with
          | `Edges -> (
              match tokens with
              | [ e; c ] when String.length e > 1 && e.[0] = 'e' -> (
                  match
                    ( int_of_string_opt (String.sub e 1 (String.length e - 1)),
                      int_of_string_opt c )
                  with
                  | Some id, Some count ->
                      w.sink.on_edge ~lineno ~token:e ~id ~count
                  | _ ->
                      diag w
                        (Diagnostic.errorf ~line:lineno ~token:e Corrupt
                           "malformed edge counter"))
              | _ ->
                  diag w
                    (Diagnostic.errorf ~line:lineno ~token:(first_token line)
                       Corrupt "expected 'e<ID> <count>'"))
          | `Paths -> (
              match tokens with
              | count :: ":" :: rest -> (
                  match
                    (int_of_string_opt count, List.map int_of_string_opt rest)
                  with
                  | Some c, ids when List.for_all Option.is_some ids ->
                      w.sink.on_path ~lineno ~token:count
                        ~path:(List.map Option.get ids) ~count:c
                  | _ ->
                      diag w
                        (Diagnostic.errorf ~line:lineno ~token:count Corrupt
                           "malformed path counter"))
              | _ ->
                  diag w
                    (Diagnostic.errorf ~line:lineno ~token:(first_token line)
                       Corrupt "expected '<count> : <edges>'"))
        end

let parse_cfg_header w lines i lineno line =
  let args = kv_args (split_tokens line) in
  let get k = List.assoc_opt k args in
  match
    ( get "routine",
      Option.bind (get "fp") Fingerprint.of_hex,
      Option.bind (get "blocks") int_of_string_opt,
      Option.bind (get "edges") int_of_string_opt )
  with
  | Some name, Some fp, Some nblocks, Some nedges
    when nblocks >= 0 && nblocks <= 1_000_000 && nedges >= 0
         && nedges <= 1_000_000 ->
      let labels = Array.make nblocks "" in
      let strict = Array.make nblocks 0 in
      let loose = Array.make nblocks 0 in
      let edges = Array.make nedges (-2, -2) in
      let n = Array.length lines in
      let want_b = ref 0 and want_e = ref 0 in
      let ok = ref true in
      while !ok && (!want_b < nblocks || !want_e < nedges) && !i < n do
        let raw = lines.(!i) in
        let l = String.trim raw in
        let ln = !i + 1 in
        if l = "" || l.[0] = '#' then incr i
        else if !want_b < nblocks && starts_with "b " l then begin
          (match split_tokens l with
          | [ "b"; lbl; sh; lh ] -> (
              match (Fingerprint.of_hex sh, Fingerprint.of_hex lh) with
              | Some s, Some weak ->
                  labels.(!want_b) <- lbl;
                  strict.(!want_b) <- s;
                  loose.(!want_b) <- weak
              | _ ->
                  diag w
                    (Diagnostic.errorf ~line:ln ~token:lbl ~routine:name Corrupt
                       "malformed block hash"))
          | _ ->
              diag w
                (Diagnostic.errorf ~line:ln ~routine:name Corrupt
                   "malformed 'b' line in cfg header"));
          incr want_b;
          incr i
        end
        else if !want_b >= nblocks && starts_with "e " l then begin
          (match split_tokens l with
          | [ "e"; id; src; dst ] -> (
              match
                (int_of_string_opt id, int_of_string_opt src,
                 int_of_string_opt dst)
              with
              | Some id, Some s, Some d when id >= 0 && id < nedges ->
                  edges.(id) <- (s, d)
              | _ ->
                  diag w
                    (Diagnostic.errorf ~line:ln ~token:id ~routine:name Corrupt
                       "malformed 'e' line in cfg header"))
          | _ ->
              diag w
                (Diagnostic.errorf ~line:ln ~routine:name Corrupt
                   "malformed 'e' line in cfg header"));
          incr want_e;
          incr i
        end
        else begin
          diag w
            (Diagnostic.errorf ~line:ln ~token:(first_token l) ~routine:name
               Corrupt "cfg header for %s is incomplete" name);
          ok := false
        end
      done;
      if !ok && (!want_b < nblocks || !want_e < nedges) then
        diag w
          (Diagnostic.errorf ~routine:name Truncated
             "cfg header for %s ends before its declared %d blocks / %d edges"
             name nblocks nedges);
      w.sink.on_desc name
        { Stale_match.fingerprint = fp; labels; strict; loose; edges }
  | _ ->
      diag w
        (Diagnostic.errorf ~line:lineno ~token:(first_token line) Corrupt
           "malformed cfg header")

let parse_section w lines i lineno line =
  let tokens = split_tokens line in
  let kind =
    match tokens with
    | _ :: k :: _ when k = "edges" -> Some `Edges
    | _ :: k :: _ when k = "paths" -> Some `Paths
    | _ -> None
  in
  let args = kv_args tokens in
  match
    ( kind,
      Option.bind (List.assoc_opt "crc" args) Crc.of_hex,
      Option.bind (List.assoc_opt "lines" args) int_of_string_opt )
  with
  | Some kind, Some crc, Some k when k >= 0 ->
      w.section <- kind;
      w.have_routine <- false;
      w.sink.on_section kind;
      let n = Array.length lines in
      let available = min k (n - !i) in
      if available < k then
        diag w
          (Diagnostic.errorf ~line:lineno Truncated
             "section declares %d payload lines but only %d remain" k
             (max 0 available));
      let payload = Array.sub lines !i (max 0 available) in
      let start = !i in
      i := !i + max 0 available;
      let joined = String.concat "\n" (Array.to_list payload) in
      if available = k && Crc.string joined <> crc then
        diag w
          (Diagnostic.errorf ~line:lineno Corrupt
             "checksum mismatch in %s section"
             (match kind with `Edges -> "edges" | `Paths -> "paths"));
      Array.iteri
        (fun j raw -> payload_line w ~lineno:(start + j + 1) raw)
        payload
  | _ ->
      diag w
        (Diagnostic.errorf ~line:lineno ~token:(first_token line) Corrupt
           "malformed section header")

let parse_v2 w lines =
  let n = Array.length lines in
  let i = ref 1 (* line 0 is the format header *) in
  let seen_end = ref false in
  let stop = ref false in
  while (not !stop) && !i < n do
    let raw = lines.(!i) in
    let lineno = !i + 1 in
    let line = String.trim raw in
    incr i;
    if line = "" || line.[0] = '#' then ()
    else if !seen_end then begin
      diag w
        (Diagnostic.errorf ~line:lineno ~token:(first_token line) Corrupt
           "content after 'end' marker");
      stop := true
    end
    else if starts_with "cfg " line then parse_cfg_header w lines i lineno line
    else if starts_with "section " line then parse_section w lines i lineno line
    else if line = "end" then seen_end := true
    else
      diag w
        (Diagnostic.errorf ~line:lineno ~token:(first_token line) Corrupt
           "unexpected line")
  done;
  if not !seen_end then
    diag w (Diagnostic.errorf Truncated "dump ends without the 'end' marker")

let parse_v1 w lines =
  Array.iteri (fun i raw -> payload_line w ~lineno:(i + 1) raw) lines

let parse_text sink text =
  let w = { sink; section = `Edges; have_routine = false } in
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let is_v2 =
    Array.length lines > 0 && String.trim lines.(0) = "ppp-profile v2"
  in
  if is_v2 then parse_v2 w lines else parse_v1 w lines

(* {2 Raw dumps: the program-free merge layer} *)

(* Saturating addition of non-negative counts. *)
let sat_add a b = if a > max_int - b then max_int else a + b

module Raw = struct
  type t = {
    descs : (string, Stale_match.cfg_desc) Hashtbl.t;
    edges : (string, (int, int) Hashtbl.t) Hashtbl.t;
    paths : (string, (int list, int) Hashtbl.t) Hashtbl.t;
    mutable diags_rev : Diagnostic.t list;
    mutable lost : int;  (** count mass dropped, clipped or unsalvageable *)
  }

  let create () =
    {
      descs = Hashtbl.create 17;
      edges = Hashtbl.create 17;
      paths = Hashtbl.create 17;
      diags_rev = [];
      lost = 0;
    }

  let empty () = create ()
  let diagnostics t = List.rev t.diags_rev
  let lost t = t.lost

  (* Program-free read access: everything a profile-to-profile comparison
     needs without reconstructing either program. *)
  let routines t =
    let names = Hashtbl.create 17 in
    let note n _ = Hashtbl.replace names n () in
    Hashtbl.iter note t.descs;
    Hashtbl.iter note t.edges;
    Hashtbl.iter note t.paths;
    List.sort String.compare (Hashtbl.fold (fun n () acc -> n :: acc) names [])

  let desc t name = Hashtbl.find_opt t.descs name

  let iter_paths t name f =
    match Hashtbl.find_opt t.paths name with
    | None -> ()
    | Some per -> Hashtbl.iter f per

  let iter_edges t name f =
    match Hashtbl.find_opt t.edges name with
    | None -> ()
    | Some per -> Hashtbl.iter f per

  let table tbl name =
    match Hashtbl.find_opt tbl name with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 17 in
        Hashtbl.replace tbl name t;
        t

  (* [add_count] keeps the invariant that every unit of incoming count
     mass either lands in the table or is accounted in [lost]. *)
  let add_count t tbl key count =
    let prev = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
    if prev > max_int - count then begin
      t.lost <- sat_add t.lost (count - (max_int - prev));
      t.diags_rev <-
        Diagnostic.errorf ~severity:Diagnostic.Warning Saturated
          "merged counter clamped at max_int; excess recorded as lost"
        :: t.diags_rev;
      Hashtbl.replace tbl key max_int
    end
    else Hashtbl.replace tbl key (prev + count)

  let mass t =
    let sum tbl =
      Hashtbl.fold
        (fun _ per acc -> Hashtbl.fold (fun _ c acc -> sat_add acc c) per acc)
        tbl 0
    in
    sat_add (sum t.edges) (sum t.paths)

  let of_program ?(scale = 1) ?edges ?paths (p : Ir.program) =
    (* [scale] recovers sampled collections: every count is multiplied by
       the inverse sampling rate (saturating at max_int) so the dump
       holds full-run estimates and merges uniformly with unsampled
       dumps. *)
    let scaled c =
      if scale <= 1 || c <= 0 then c
      else if c > max_int / scale then max_int
      else c * scale
    in
    let t = create () in
    List.iter
      (fun (r : Ir.routine) ->
        Hashtbl.replace t.descs r.Ir.name (Stale_match.describe r);
        (match edges with
        | None -> ()
        | Some prog ->
            let ep = Edge_profile.routine prog r.Ir.name in
            if Edge_profile.total ep > 0 then begin
              let per = table t.edges r.Ir.name in
              let view = Cfg_view.of_routine r in
              Graph.iter_edges (Cfg_view.graph view) (fun e ->
                  let c = Edge_profile.freq ep e in
                  if c > 0 then Hashtbl.replace per e (scaled c))
            end);
        match paths with
        | None -> ()
        | Some prog ->
            let qp = Path_profile.routine prog r.Ir.name in
            if Path_profile.num_distinct qp > 0 then begin
              let per = table t.paths r.Ir.name in
              Path_profile.iter qp (fun path n ->
                  if n > 0 then Hashtbl.replace per path (scaled n))
            end)
      p.routines;
    t

  let parse text =
    let t = create () in
    let routine = ref None in
    let desc_of name = Hashtbl.find_opt t.descs name in
    let nedges name =
      match desc_of name with
      | Some d -> Some (Array.length d.Stale_match.edges)
      | None -> None
    in
    let sink =
      {
        on_desc = (fun name d -> Hashtbl.replace t.descs name d);
        on_section = (fun _ -> routine := None);
        on_routine = (fun ~lineno:_ name -> routine := Some name);
        on_edge =
          (fun ~lineno ~token ~id ~count ->
            match !routine with
            | None -> ()
            | Some name ->
                if count < 0 then
                  t.diags_rev <-
                    Diagnostic.errorf ~line:lineno ~token Corrupt
                      "negative edge counter"
                    :: t.diags_rev
                else if
                  id < 0
                  || (match nedges name with Some n -> id >= n | None -> false)
                then begin
                  t.diags_rev <-
                    Diagnostic.errorf ~line:lineno ~token ~routine:name Corrupt
                      "edge id %d out of range" id
                    :: t.diags_rev;
                  t.lost <- sat_add t.lost count
                end
                else add_count t (table t.edges name) id count);
        on_path =
          (fun ~lineno ~token ~path ~count ->
            match !routine with
            | None -> ()
            | Some name ->
                if count < 0 || path = [] then
                  t.diags_rev <-
                    Diagnostic.errorf ~line:lineno ~token Corrupt
                      "malformed path counter"
                    :: t.diags_rev
                else if
                  List.exists
                    (fun e ->
                      e < 0
                      ||
                      match nedges name with Some n -> e >= n | None -> false)
                    path
                then begin
                  t.diags_rev <-
                    Diagnostic.errorf ~line:lineno ~token ~routine:name Corrupt
                      "path mentions an edge id out of range"
                    :: t.diags_rev;
                  t.lost <- sat_add t.lost count
                end
                else add_count t (table t.paths name) path count);
        on_diag = (fun d -> t.diags_rev <- d :: t.diags_rev);
      }
    in
    parse_text sink text;
    t

  let rename f t =
    let out = create () in
    out.diags_rev <- t.diags_rev;
    out.lost <- t.lost;
    Hashtbl.iter (fun name d -> Hashtbl.replace out.descs (f name) d) t.descs;
    let move src dst =
      Hashtbl.iter
        (fun name per ->
          let per' = table dst (f name) in
          Hashtbl.iter (fun k c -> add_count out per' k c) per)
        src
    in
    move t.edges out.edges;
    move t.paths out.paths;
    out

  (* A salvaged path must still be a path: consecutive mapped edges have
     to chain head-to-tail in the reference CFG. *)
  let path_is_connected (nd : Stale_match.cfg_desc) path =
    let n = List.length path in
    let ok = ref true in
    List.iteri
      (fun i e ->
        if !ok then
          let _, dst = nd.Stale_match.edges.(e) in
          if i < n - 1 then begin
            let src', _ = nd.Stale_match.edges.(List.nth path (i + 1)) in
            if dst <> src' then ok := false
          end)
      path;
    !ok

  (* How counts recorded by [input] for [name] translate onto the merged
     reference CFG. *)
  type remap =
    | Pass of Stale_match.cfg_desc option  (** same CFG (or none known) *)
    | Salvage of Stale_match.cfg_desc * Stale_match.result

  let merge inputs =
    let out = create () in
    (* The reference description per routine: the least (by structural
       comparison) of all the descriptions the inputs carry, so the
       choice — hence the merged dump — is independent of input order. *)
    List.iter
      (fun input ->
        Hashtbl.iter
          (fun name d ->
            match Hashtbl.find_opt out.descs name with
            | None -> Hashtbl.replace out.descs name d
            | Some d0 -> if compare d d0 < 0 then Hashtbl.replace out.descs name d)
          input.descs)
      inputs;
    List.iter
      (fun input ->
        out.diags_rev <- input.diags_rev @ out.diags_rev;
        out.lost <- sat_add out.lost input.lost;
        let remaps : (string, remap) Hashtbl.t = Hashtbl.create 17 in
        let remap_of name =
          match Hashtbl.find_opt remaps name with
          | Some r -> r
          | None ->
              let r =
                match
                  (Hashtbl.find_opt input.descs name,
                   Hashtbl.find_opt out.descs name)
                with
                | None, rd -> Pass rd
                | Some d, Some rd
                  when d.Stale_match.fingerprint = rd.Stale_match.fingerprint
                  ->
                    Pass (Some rd)
                | Some d, Some rd ->
                    let m = Stale_match.match_cfgs ~old_desc:d ~new_desc:rd in
                    out.diags_rev <-
                      Diagnostic.errorf ~severity:Diagnostic.Warning
                        ~routine:name Stale
                        "shard CFG fingerprint disagrees with the merge \
                         reference; matched %d/%d blocks and %d/%d edges by \
                         stable hashes"
                        m.Stale_match.matched_blocks
                        (Array.length d.Stale_match.strict)
                        m.Stale_match.matched_edges
                        (Array.length d.Stale_match.edges)
                      :: out.diags_rev;
                    Salvage (rd, m)
                | Some d, None ->
                    (* cannot happen: out.descs is a superset *)
                    Pass (Some d)
              in
              Hashtbl.replace remaps name r;
              r
        in
        let in_range rd id =
          id >= 0 && id < Array.length rd.Stale_match.edges
        in
        Hashtbl.iter
          (fun name per ->
            let dst = table out.edges name in
            Hashtbl.iter
              (fun id c ->
                match remap_of name with
                | Pass None -> add_count out dst id c
                | Pass (Some rd) ->
                    if in_range rd id then add_count out dst id c
                    else out.lost <- sat_add out.lost c
                | Salvage (_, m) -> (
                    match Stale_match.map_edge m id with
                    | Some nid -> add_count out dst nid c
                    | None -> out.lost <- sat_add out.lost c))
              per)
          input.edges;
        Hashtbl.iter
          (fun name per ->
            let dst = table out.paths name in
            Hashtbl.iter
              (fun path c ->
                match remap_of name with
                | Pass None -> add_count out dst path c
                | Pass (Some rd) ->
                    if List.for_all (in_range rd) path then
                      add_count out dst path c
                    else out.lost <- sat_add out.lost c
                | Salvage (rd, m) -> (
                    let mapped = List.map (Stale_match.map_edge m) path in
                    match
                      if List.for_all Option.is_some mapped then
                        Some (List.map Option.get mapped)
                      else None
                    with
                    | Some new_path when path_is_connected rd new_path ->
                        add_count out dst new_path c
                    | _ -> out.lost <- sat_add out.lost c))
              per)
          input.paths)
      inputs;
    out

  (* Exponential age-decayed merge: input i of n (oldest first) is
     weighted decay^(n-1-i), so generation k-1 blends into k with its
     influence fading geometrically. Implemented as a pure pre-scale of
     each input followed by the commutative [merge] above — so stale
     inputs are still salvaged through Stale_match, and the result is
     independent of how the (already-ordered) inputs were produced.
     Each count keeps floor(c * w); the decayed-away remainder goes to
     the lost-mass ledger, so mass + lost is conserved exactly (up to
     saturation), and total mass never inflates. *)
  let scale_weight w t =
    if w >= 1.0 then t
    else begin
      let out = create () in
      Hashtbl.iter (fun n d -> Hashtbl.replace out.descs n d) t.descs;
      out.diags_rev <- t.diags_rev;
      out.lost <- t.lost;
      let scale_tbl src dst =
        Hashtbl.iter
          (fun name per ->
            let per' = table dst name in
            Hashtbl.iter
              (fun k c ->
                let kept = int_of_float (float_of_int c *. w) in
                let kept = if kept < 0 then 0 else if kept > c then c else kept in
                if kept > 0 then add_count out per' k kept;
                out.lost <- sat_add out.lost (c - kept))
              per)
          src
      in
      scale_tbl t.edges out.edges;
      scale_tbl t.paths out.paths;
      out
    end

  let merge_decayed ~decay inputs =
    if not (decay > 0.0 && decay <= 1.0) then
      invalid_arg "Raw.merge_decayed: decay must be in (0, 1]";
    let n = List.length inputs in
    merge
      (List.mapi
         (fun i t -> scale_weight (decay ** float_of_int (n - 1 - i)) t)
         inputs)

  (* {3 Canonical writer} *)

  let sorted_keys tbl =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

  let save ppf t =
    Format.fprintf ppf "ppp-profile v2@.";
    List.iter
      (fun name ->
        let d = Hashtbl.find t.descs name in
        Format.fprintf ppf "cfg routine=%s fp=%s blocks=%d edges=%d@." name
          (Fingerprint.to_hex d.Stale_match.fingerprint)
          (Array.length d.Stale_match.strict)
          (Array.length d.Stale_match.edges);
        Array.iteri
          (fun i lbl ->
            Format.fprintf ppf "b %s %s %s@." lbl
              (Fingerprint.to_hex d.Stale_match.strict.(i))
              (Fingerprint.to_hex d.Stale_match.loose.(i)))
          d.Stale_match.labels;
        Array.iteri
          (fun i (s, dst) -> Format.fprintf ppf "e %d %d %d@." i s dst)
          d.Stale_match.edges)
      (sorted_keys t.descs);
    let lines_of tbl render =
      List.concat_map
        (fun name ->
          let per = Hashtbl.find tbl name in
          let entries =
            Hashtbl.fold
              (fun k c acc -> if c > 0 then (k, c) :: acc else acc)
              per []
            |> List.sort compare
          in
          if entries = [] then []
          else
            Printf.sprintf "routine %s" name
            :: List.map (fun (k, c) -> render k c) entries)
        (sorted_keys tbl)
    in
    let section name lines =
      let payload = String.concat "\n" lines in
      Format.fprintf ppf "section %s crc=%s lines=%d@." name
        (Crc.to_hex (Crc.string payload))
        (List.length lines);
      List.iter (fun l -> Format.fprintf ppf "%s@." l) lines
    in
    section "edges"
      (lines_of t.edges (fun id c -> Printf.sprintf "e%d %d" id c));
    section "paths"
      (lines_of t.paths (fun path c ->
           Printf.sprintf "%d :%s" c
             (String.concat ""
                (List.map (fun e -> " " ^ string_of_int e) path))));
    Format.fprintf ppf "end@."

  let to_string t =
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    save ppf t;
    Format.pp_print_flush ppf ();
    Buffer.contents buf

  let save_file ~path t = Ppp_obs.Sink.write_atomic ~path (to_string t)
end

let save ?edges ?paths ppf (p : Ir.program) =
  Raw.save ppf (Raw.of_program ?edges ?paths p)

let save_file ?edges ?paths ~path (p : Ir.program) =
  Raw.save_file ~path (Raw.of_program ?edges ?paths p)

(* {2 The program-based loader} *)

type loaded = {
  edges : Edge_profile.program;
  paths : Path_profile.program;
  diagnostics : Diagnostic.t list;
  matched_fraction : float;
  stale_routines : int;
  salvaged_counts : int;
  dropped_counts : int;
}

(* How counts recorded for a routine relate to the program loading them. *)
type status =
  | Exact of Stale_match.cfg_desc  (** current description, for range checks *)
  | Salvage of Stale_match.cfg_desc * Stale_match.result
      (** stale: current description + old-id -> new-id match *)
  | Unknown

type loader = {
  program : Ir.program;
  l_edges : Edge_profile.program;
  l_paths : Path_profile.program;
  mutable diags_rev : Diagnostic.t list;
  mutable routine : (string * status) option;
  mutable applied : int;
  mutable dropped : int;
  mutable stale : int;
  descs : (string, Stale_match.cfg_desc) Hashtbl.t;  (* current program, memoized *)
  old_descs : (string, Stale_match.cfg_desc) Hashtbl.t;  (* from v2 cfg headers *)
  statuses : (string, status) Hashtbl.t;
}

let make_loader (p : Ir.program) =
  {
    program = p;
    l_edges = Edge_profile.create_program p;
    l_paths = Path_profile.create_program p;
    diags_rev = [];
    routine = None;
    applied = 0;
    dropped = 0;
    stale = 0;
    descs = Hashtbl.create 17;
    old_descs = Hashtbl.create 17;
    statuses = Hashtbl.create 17;
  }

let ldiag ld d = ld.diags_rev <- d :: ld.diags_rev

let desc_of ld (r : Ir.routine) =
  match Hashtbl.find_opt ld.descs r.Ir.name with
  | Some d -> d
  | None ->
      let d = Stale_match.describe r in
      Hashtbl.replace ld.descs r.Ir.name d;
      d

(* Resolve (and memoize) how to treat counts recorded for [name]; emits
   the Unknown_routine / Stale diagnostic the first time. *)
let resolve_status ld ~lineno name =
  match Hashtbl.find_opt ld.statuses name with
  | Some s -> s
  | None ->
      let s =
        match Ir.find_routine ld.program name with
        | None ->
            ldiag ld
              (Diagnostic.errorf ~line:lineno ~token:name ~routine:name
                 Unknown_routine "no such routine in this program");
            Unknown
        | Some r -> (
            let nd = desc_of ld r in
            match Hashtbl.find_opt ld.old_descs name with
            | Some od when od.Stale_match.fingerprint <> nd.Stale_match.fingerprint
              ->
                let m = Stale_match.match_cfgs ~old_desc:od ~new_desc:nd in
                ld.stale <- ld.stale + 1;
                ldiag ld
                  (Diagnostic.errorf ~severity:Diagnostic.Warning ~routine:name
                     Stale
                     "CFG fingerprint mismatch; matched %d/%d blocks and %d/%d \
                      edges by stable hashes"
                     m.Stale_match.matched_blocks
                     (Array.length od.Stale_match.strict)
                     m.Stale_match.matched_edges
                     (Array.length od.Stale_match.edges));
                Salvage (nd, m)
            | Some _ | None -> Exact nd)
      in
      Hashtbl.replace ld.statuses name s;
      s

let apply_edge ld ~lineno ~token status id count =
  if count < 0 then begin
    ldiag ld
      (Diagnostic.errorf ~line:lineno ~token Corrupt "negative edge counter");
    ld.dropped <- ld.dropped + 1
  end
  else
    match status with
    | Unknown -> ld.dropped <- ld.dropped + count
    | Exact nd ->
        if id >= 0 && id < Array.length nd.Stale_match.edges then begin
          (match ld.routine with
          | Some (name, _) ->
              Edge_profile.add (Edge_profile.routine ld.l_edges name) id count
          | None -> ());
          ld.applied <- ld.applied + count
        end
        else begin
          ldiag ld
            (Diagnostic.errorf ~line:lineno ~token Corrupt
               "edge id %d out of range (routine has %d edges)" id
               (Array.length nd.Stale_match.edges));
          ld.dropped <- ld.dropped + count
        end
    | Salvage (_, m) -> (
        match Stale_match.map_edge m id with
        | Some nid ->
            (match ld.routine with
            | Some (name, _) ->
                Edge_profile.add (Edge_profile.routine ld.l_edges name) nid count
            | None -> ());
            ld.applied <- ld.applied + count
        | None -> ld.dropped <- ld.dropped + count)

let apply_path ld ~lineno ~token status path count =
  if count < 0 || path = [] then begin
    ldiag ld
      (Diagnostic.errorf ~line:lineno ~token Corrupt "malformed path counter");
    ld.dropped <- ld.dropped + max 0 count
  end
  else
    match status with
    | Unknown -> ld.dropped <- ld.dropped + count
    | Exact nd ->
        if
          List.for_all
            (fun e -> e >= 0 && e < Array.length nd.Stale_match.edges)
            path
        then begin
          (match ld.routine with
          | Some (name, _) ->
              Path_profile.add (Path_profile.routine ld.l_paths name) path count
          | None -> ());
          ld.applied <- ld.applied + count
        end
        else begin
          ldiag ld
            (Diagnostic.errorf ~line:lineno ~token Corrupt
               "path mentions an edge id out of range");
          ld.dropped <- ld.dropped + count
        end
    | Salvage (nd, m) -> (
        let mapped = List.map (Stale_match.map_edge m) path in
        match
          if List.for_all Option.is_some mapped then
            Some (List.map Option.get mapped)
          else None
        with
        | Some new_path when Raw.path_is_connected nd new_path ->
            (match ld.routine with
            | Some (name, _) ->
                Path_profile.add (Path_profile.routine ld.l_paths name) new_path
                  count
            | None -> ());
            ld.applied <- ld.applied + count
        | _ -> ld.dropped <- ld.dropped + count)

let load (p : Ir.program) text =
  let ld = make_loader p in
  let status () = match ld.routine with Some (_, s) -> Some s | None -> None in
  let sink =
    {
      on_desc = (fun name d -> Hashtbl.replace ld.old_descs name d);
      on_section = (fun _ -> ld.routine <- None);
      on_routine =
        (fun ~lineno name ->
          ld.routine <- Some (name, resolve_status ld ~lineno name));
      on_edge =
        (fun ~lineno ~token ~id ~count ->
          match status () with
          | Some s -> apply_edge ld ~lineno ~token s id count
          | None -> ());
      on_path =
        (fun ~lineno ~token ~path ~count ->
          match status () with
          | Some s -> apply_path ld ~lineno ~token s path count
          | None -> ());
      on_diag = (fun d -> ldiag ld d);
    }
  in
  parse_text sink text;
  let total = ld.applied + ld.dropped in
  let matched_fraction =
    if total = 0 then 1.0 else float_of_int ld.applied /. float_of_int total
  in
  Obs.set g_matched matched_fraction;
  Obs.add m_salvaged ld.applied;
  Obs.add m_dropped ld.dropped;
  Obs.add m_stale ld.stale;
  let diagnostics = List.rev ld.diags_rev in
  if ld.applied = 0 && Diagnostic.count_errors diagnostics > 0 then
    Error diagnostics
  else
    Ok
      {
        edges = ld.l_edges;
        paths = ld.l_paths;
        diagnostics;
        matched_fraction;
        stale_routines = ld.stale;
        salvaged_counts = ld.applied;
        dropped_counts = ld.dropped;
      }
