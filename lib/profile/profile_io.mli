(** Textual serialization of profiles, so a profile collected in one run
    can drive instrumentation (or inlining) in a later one — the offline
    half of a staged optimizer.

    {2 Format v2 (written by {!save})}

    {v
      ppp-profile v2
      cfg routine=NAME fp=HEX blocks=N edges=M
      b LABEL STRICT LOOSE          (N lines: per-block hashes)
      e ID SRC DST                  (M lines: edge structure; DST -1 = exit)
      section edges crc=HEX8 lines=K
      routine NAME
      e<ID> <count>
      section paths crc=HEX8 lines=K
      routine NAME
      <count> : <edge id> <edge id> ...
      end
    v}

    The [cfg] header records each routine's {!Ppp_resilience.Fingerprint}
    and per-block hashes, so {!load} can detect a profile collected from
    an older version of the program and salvage it via
    {!Ppp_resilience.Stale_match} instead of mis-attributing counts. Each
    [section] carries a CRC-32 of its payload lines and their count, so
    corruption and truncation are detected rather than silently absorbed.

    {2 Format v1 (written by {!save_edges} / {!save_paths})}

    The headerless legacy format ([edge-profile] / [path-profile]
    sections only); {!load} still reads it, with no staleness or checksum
    protection. [#] comments and blank lines are allowed in both formats
    (inside a v2 section they count toward [lines=K] and the CRC).

    {2 Loading}

    [load] never raises: every problem is classified as a
    {!Ppp_resilience.Diagnostic.t} — [Corrupt] (bad syntax, bad CRC,
    impossible ids), [Stale] (fingerprint mismatch), [Unknown_routine],
    or [Truncated] — and as much of the dump as possible is salvaged. *)

type loaded = {
  edges : Edge_profile.program;
  paths : Path_profile.program;
  diagnostics : Ppp_resilience.Diagnostic.t list;  (** oldest first *)
  matched_fraction : float;
      (** fraction of the recorded count mass that was applied; 1.0 for a
          pristine profile, less when counts were dropped as corrupt,
          unknown, or unmatchable after a CFG change *)
  stale_routines : int;  (** routines salvaged through stale matching *)
  salvaged_counts : int;  (** count mass applied *)
  dropped_counts : int;  (** count mass dropped *)
}

val load :
  Ppp_ir.Ir.program ->
  string ->
  (loaded, Ppp_resilience.Diagnostic.t list) result
(** Parse a v1 or v2 profile dump. [Ok] whenever anything was salvaged
    (or the dump was validly empty), with all problems in
    [loaded.diagnostics]; [Error] when there were errors and nothing
    could be salvaged. Routines absent from the text have empty profiles.
    When {!Ppp_obs.Metrics} is enabled, sets the
    [resilience.matched_fraction] gauge and the [resilience.counts.*]
    counters. *)

val save :
  ?edges:Edge_profile.program ->
  ?paths:Path_profile.program ->
  Format.formatter ->
  Ppp_ir.Ir.program ->
  unit
(** Write a v2 dump (header, per-routine CFG metadata, checksummed
    sections) in canonical order: routines sorted by name, edge counters
    by id, path counters lexicographically by edge list. Two dumps of
    equal profiles are byte-identical. Sections for omitted profiles are
    written empty. *)

val save_file :
  ?edges:Edge_profile.program ->
  ?paths:Path_profile.program ->
  path:string ->
  Ppp_ir.Ir.program ->
  unit
(** {!save} to a file, atomically: the dump is staged in a temporary
    file, [fsync]'d and renamed over [path]
    ({!Ppp_obs.Sink.write_atomic}), so a crash mid-save never leaves a
    half-written dump for the loader to salvage. *)

(** {2 Raw dumps and merging}

    A {!Raw.t} is a dump held program-free: the CFG descriptions the
    text carried plus the per-routine counter tables. It is what shard
    merging operates on — any number of v2 (or v1) dumps combine into
    one, without needing the program they were collected from:

    - counts add, saturating at [max_int] (the clipped mass is reported
      as {!Raw.lost}, never silently inflated);
    - when shards disagree on a routine's CFG (a shard was collected
      from an older build), one reference description is chosen
      deterministically and the disagreeing shard's counts are re-mapped
      through {!Ppp_resilience.Stale_match}, with the unsalvageable
      remainder added to [lost] and a [Stale] diagnostic recorded;
    - section CRCs are recomputed on {!Raw.save}.

    {!Raw.merge} is commutative and associative up to the canonical
    ordering of the saved text (for shards that agree on their CFGs —
    the normal case — exactly; across disagreeing CFG generations the
    reference choice is still order-independent), merging with
    {!Raw.empty} is the identity, and the count mass plus [lost] of a
    merge equals the sum over its inputs. *)

module Raw : sig
  type t

  val empty : unit -> t

  val parse : string -> t
  (** Never raises; structural problems land in {!diagnostics} and the
      affected count mass in {!lost}, exactly like {!load}. *)

  val of_program :
    ?scale:int ->
    ?edges:Edge_profile.program ->
    ?paths:Path_profile.program ->
    Ppp_ir.Ir.program ->
    t
  (** The raw form of a freshly collected profile ([lost = 0], no
      diagnostics); [save] of the program and {!save} of this raw value
      write identical bytes. [scale] (default 1) multiplies every count
      by the inverse sampling rate, saturating at [max_int], so a
      sampled collection dumps full-run {e estimates} and merges
      uniformly with unsampled dumps. *)

  val merge : t list -> t
  (** Inputs are not mutated. [merge [] = empty ()]. *)

  val merge_decayed : decay:float -> t list -> t
  (** Exponential age-weighted merge for fleets of profile generations:
      with inputs ordered oldest first, input [i] of [n] contributes its
      counts scaled by [decay ^ (n-1-i)] (each count keeps
      [floor(c * w)]; the decayed-away remainder is added to the
      {!lost} ledger, so mass + lost is conserved and total mass never
      inflates). The pre-scaled inputs then go through {!merge}
      unchanged, so cross-version inputs are still salvaged via
      {!Ppp_resilience.Stale_match}. [merge_decayed ~decay:1.0] equals
      {!merge} exactly. Inputs are not mutated.
      @raise Invalid_argument unless [0.0 < decay <= 1.0]. *)

  val rename : (string -> string) -> t -> t
  (** Rename routines (e.g. prefix them with a workload name so dumps of
      different programs can share one merged file without colliding). *)

  val save : Format.formatter -> t -> unit
  (** Canonical v2 text, CRCs recomputed. *)

  val to_string : t -> string

  val save_file : path:string -> t -> unit
  (** Atomic whole-file write of {!to_string} (temp + fsync + rename). *)

  val mass : t -> int
  (** Total count mass currently held (saturating sum). *)

  val lost : t -> int
  (** Count mass dropped by parsing, clipping, or failed salvage. *)

  val diagnostics : t -> Ppp_resilience.Diagnostic.t list

  (** {3 Program-free read access}

      Enough to compare two dumps path-by-path (see {!Ppp_quality})
      without either program: routine names, the stored CFG
      descriptions, and the per-routine count tables. *)

  val routines : t -> string list
  (** Every routine mentioned by any section, sorted. *)

  val desc : t -> string -> Ppp_resilience.Stale_match.cfg_desc option
  (** The stored CFG description, when the dump carried one. *)

  val iter_paths : t -> string -> (int list -> int -> unit) -> unit
  (** Iterate the routine's path counts (edge-index lists); no-op for an
      absent routine. *)

  val iter_edges : t -> string -> (int -> int -> unit) -> unit
  (** Iterate the routine's edge counts; no-op for an absent routine. *)
end

val save_edges :
  Format.formatter -> Ppp_ir.Ir.program -> Edge_profile.program -> unit
(** Legacy v1 writer (no header, no checksums). *)

val save_paths :
  Format.formatter -> Ppp_ir.Ir.program -> Path_profile.program -> unit
(** Legacy v1 writer. *)
