(** Textual serialization of profiles, so a profile collected in one run
    can drive instrumentation (or inlining) in a later one — the offline
    half of a staged optimizer.

    {2 Format v2 (written by {!save})}

    {v
      ppp-profile v2
      cfg routine=NAME fp=HEX blocks=N edges=M
      b LABEL STRICT LOOSE          (N lines: per-block hashes)
      e ID SRC DST                  (M lines: edge structure; DST -1 = exit)
      section edges crc=HEX8 lines=K
      routine NAME
      e<ID> <count>
      section paths crc=HEX8 lines=K
      routine NAME
      <count> : <edge id> <edge id> ...
      end
    v}

    The [cfg] header records each routine's {!Ppp_resilience.Fingerprint}
    and per-block hashes, so {!load} can detect a profile collected from
    an older version of the program and salvage it via
    {!Ppp_resilience.Stale_match} instead of mis-attributing counts. Each
    [section] carries a CRC-32 of its payload lines and their count, so
    corruption and truncation are detected rather than silently absorbed.

    {2 Format v1 (written by {!save_edges} / {!save_paths})}

    The headerless legacy format ([edge-profile] / [path-profile]
    sections only); {!load} still reads it, with no staleness or checksum
    protection. [#] comments and blank lines are allowed in both formats
    (inside a v2 section they count toward [lines=K] and the CRC).

    {2 Loading}

    [load] never raises: every problem is classified as a
    {!Ppp_resilience.Diagnostic.t} — [Corrupt] (bad syntax, bad CRC,
    impossible ids), [Stale] (fingerprint mismatch), [Unknown_routine],
    or [Truncated] — and as much of the dump as possible is salvaged. *)

type loaded = {
  edges : Edge_profile.program;
  paths : Path_profile.program;
  diagnostics : Ppp_resilience.Diagnostic.t list;  (** oldest first *)
  matched_fraction : float;
      (** fraction of the recorded count mass that was applied; 1.0 for a
          pristine profile, less when counts were dropped as corrupt,
          unknown, or unmatchable after a CFG change *)
  stale_routines : int;  (** routines salvaged through stale matching *)
  salvaged_counts : int;  (** count mass applied *)
  dropped_counts : int;  (** count mass dropped *)
}

val load :
  Ppp_ir.Ir.program ->
  string ->
  (loaded, Ppp_resilience.Diagnostic.t list) result
(** Parse a v1 or v2 profile dump. [Ok] whenever anything was salvaged
    (or the dump was validly empty), with all problems in
    [loaded.diagnostics]; [Error] when there were errors and nothing
    could be salvaged. Routines absent from the text have empty profiles.
    When {!Ppp_obs.Metrics} is enabled, sets the
    [resilience.matched_fraction] gauge and the [resilience.counts.*]
    counters. *)

val save :
  ?edges:Edge_profile.program ->
  ?paths:Path_profile.program ->
  Format.formatter ->
  Ppp_ir.Ir.program ->
  unit
(** Write a v2 dump (header, per-routine CFG metadata, checksummed
    sections). Sections for omitted profiles are written empty. *)

val save_edges :
  Format.formatter -> Ppp_ir.Ir.program -> Edge_profile.program -> unit
(** Legacy v1 writer (no header, no checksums). *)

val save_paths :
  Format.formatter -> Ppp_ir.Ir.program -> Path_profile.program -> unit
(** Legacy v1 writer. *)
