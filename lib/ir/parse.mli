(** Parser for the textual [.pir] format produced by {!Pp_ir}.

    Grammar (comments run from [#] to end of line):
    {v
      program  := decl*
      decl     := "array" IDENT INT
                | "main" IDENT
                | "routine" IDENT "(" INT ")" "regs" INT "{" block+ "}"
      block    := IDENT ":" stmt* term
      stmt     := REG "=" "call" IDENT "(" operands ")"
                | REG "=" IDENT "[" operand "]"
                | REG "=" operand (BINOP operand)?
                | IDENT "[" operand "]" "=" operand
                | "call" IDENT "(" operands ")"
                | "out" operand
      term     := "jump" IDENT
                | "br" operand "," IDENT "," IDENT
                | "ret" operand?
      operand  := REG | INT | "-" INT
    v}
    Integer literals must have magnitude at most [max_int] (so [min_int]
    itself is not expressible).
    Registers are written [rN]. The default entry routine is [main]
    unless a [main NAME] declaration overrides it. *)

type located = {
  line : int;  (** 1-based source line of the offending token *)
  token : string option;  (** the offending token's text, when known *)
  message : string;
}

exception Error of located

val located_message : located -> string
(** Render as ["line N: message (at \"token\")"]. *)

val program_of_string : string -> Ir.program
(** Parse and well-formedness-check a program.
    @raise Error on syntax errors.
    @raise Invalid_argument on well-formedness errors. *)

val program_of_file : string -> Ir.program
