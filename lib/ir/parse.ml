type located = { line : int; token : string option; message : string }

exception Error of located

let located_message { line; token; message } =
  match token with
  | Some t -> Printf.sprintf "line %d: %s (at %S)" line message t
  | None -> Printf.sprintf "line %d: %s" line message

type token =
  | Tident of string
  | Treg of int
  | Tint of int
  | Top of string (* binary operator symbol *)
  | Tlparen
  | Trparen
  | Tlbracket
  | Trbracket
  | Tlbrace
  | Trbrace
  | Tequal
  | Tcomma
  | Tcolon
  | Tminus

let fail ?token line fmt =
  Format.kasprintf (fun message -> raise (Error { line; token; message })) fmt

let token_text = function
  | Tident s -> s
  | Treg r -> "r" ^ string_of_int r
  | Tint i -> string_of_int i
  | Top op -> op
  | Tlparen -> "("
  | Trparen -> ")"
  | Tlbracket -> "["
  | Trbracket -> "]"
  | Tlbrace -> "{"
  | Trbrace -> "}"
  | Tequal -> "="
  | Tcomma -> ","
  | Tcolon -> ":"
  | Tminus -> "-"

(* {2 Lexer} *)

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let push t = tokens := (t, !line) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      push (Tint (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      (* rN is a register; any other identifier (even r_foo) is a name. *)
      if
        String.length word >= 2
        && word.[0] = 'r'
        && String.for_all is_digit (String.sub word 1 (String.length word - 1))
      then push (Treg (int_of_string (String.sub word 1 (String.length word - 1))))
      else push (Tident word)
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some (("<<" | ">>" | "<=" | ">=" | "==" | "!=") as op) ->
          push (Top op);
          i := !i + 2
      | _ ->
          (match c with
          | '(' -> push Tlparen
          | ')' -> push Trparen
          | '[' -> push Tlbracket
          | ']' -> push Trbracket
          | '{' -> push Tlbrace
          | '}' -> push Trbrace
          | '=' -> push Tequal
          | ',' -> push Tcomma
          | ':' -> push Tcolon
          | '-' -> push Tminus
          | '+' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>' ->
              push (Top (String.make 1 c))
          | _ -> fail ~token:(String.make 1 c) !line "unexpected character %C" c);
          incr i
    end
  done;
  List.rev !tokens

(* {2 Parser} *)

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t
let cur_line st = match st.toks with [] -> 0 | (_, l) :: _ -> l

let next st =
  match st.toks with
  | [] -> fail 0 "unexpected end of input"
  | (t, l) :: rest ->
      st.toks <- rest;
      (t, l)

let expect st tok what =
  let t, l = next st in
  if t <> tok then fail ~token:(token_text t) l "expected %s" what

let expect_ident st what =
  match next st with
  | Tident s, _ -> s
  | t, l -> fail ~token:(token_text t) l "expected %s" what

let expect_int st what =
  match next st with
  | Tint i, _ -> i
  | t, l -> fail ~token:(token_text t) l "expected %s" what

let parse_operand st =
  match next st with
  | Treg r, _ -> Ir.Reg r
  | Tint i, _ -> Ir.Imm i
  | Tminus, l -> (
      match next st with
      | Tint i, _ -> Ir.Imm (-i)
      | t, _ -> fail ~token:(token_text t) l "expected integer after '-'")
  | t, l -> fail ~token:(token_text t) l "expected operand"

let starts_operand = function
  | Some (Treg _ | Tint _ | Tminus) -> true
  | _ -> false

let parse_args st =
  expect st Tlparen "'('";
  if peek st = Some Trparen then begin
    ignore (next st);
    []
  end
  else begin
    let args = ref [ parse_operand st ] in
    while peek st = Some Tcomma do
      ignore (next st);
      args := parse_operand st :: !args
    done;
    expect st Trparen "')'";
    List.rev !args
  end

(* A binary operator position: either a Top token or a bare Tminus. *)
let peek_binop st =
  match peek st with
  | Some (Top op) -> Some op
  | Some Tminus -> Some "-"
  | _ -> None

type raw_term =
  | Rjump of string
  | Rbr of Ir.operand * string * string
  | Rret of Ir.operand option

type raw_block = {
  rlabel : string;
  rinstrs : Ir.instr list;
  rterm : raw_term;
  rline : int;
}

let parse_stmt_or_term st =
  (* Returns [Either an instr or a terminator]. *)
  match next st with
  | Tident "jump", _ -> Either.Right (Rjump (expect_ident st "jump target"))
  | Tident "br", _ ->
      let c = parse_operand st in
      expect st Tcomma "','";
      let l1 = expect_ident st "branch target" in
      expect st Tcomma "','";
      let l2 = expect_ident st "branch target" in
      Either.Right (Rbr (c, l1, l2))
  | Tident "ret", _ ->
      if starts_operand (peek st) then Either.Right (Rret (Some (parse_operand st)))
      else Either.Right (Rret None)
  | Tident "out", _ -> Either.Left (Ir.Out (parse_operand st))
  | Tident "call", _ ->
      let callee = expect_ident st "callee name" in
      let args = parse_args st in
      Either.Left (Ir.Call (None, callee, args))
  | Tident arr, l ->
      (* store: arr[idx] = v *)
      if peek st <> Some Tlbracket then
        fail ~token:arr l "expected '[' after array name";
      ignore (next st);
      let idx = parse_operand st in
      expect st Trbracket "']'";
      expect st Tequal "'='";
      let v = parse_operand st in
      Either.Left (Ir.Store (arr, idx, v))
  | Treg d, l -> (
      expect st Tequal "'='";
      match peek st with
      | Some (Tident "call") ->
          ignore (next st);
          let callee = expect_ident st "callee name" in
          let args = parse_args st in
          Either.Left (Ir.Call (Some d, callee, args))
      | Some (Tident arr) ->
          ignore (next st);
          expect st Tlbracket "'['";
          let idx = parse_operand st in
          expect st Trbracket "']'";
          Either.Left (Ir.Load (d, arr, idx))
      | _ -> (
          let a = parse_operand st in
          match peek_binop st with
          | None -> Either.Left (Ir.Mov (d, a))
          | Some opname -> (
              ignore (next st);
              let b = parse_operand st in
              match Ir.binop_of_name opname with
              | Some op -> Either.Left (Ir.Binop (d, op, a, b))
              | None -> fail ~token:opname l "unknown operator %s" opname)))
  | t, l -> fail ~token:(token_text t) l "expected statement"

let parse_block st =
  let rline = cur_line st in
  let rlabel = expect_ident st "block label" in
  expect st Tcolon "':'";
  let instrs = ref [] in
  let rec loop () =
    match parse_stmt_or_term st with
    | Either.Left i ->
        instrs := i :: !instrs;
        loop ()
    | Either.Right t -> t
  in
  let rterm = loop () in
  { rlabel; rinstrs = List.rev !instrs; rterm; rline }

let parse_routine st =
  let name = expect_ident st "routine name" in
  expect st Tlparen "'('";
  let nparams = expect_int st "parameter count" in
  expect st Trparen "')'";
  (match next st with
  | Tident "regs", _ -> ()
  | _, l -> fail l "expected 'regs'");
  let nregs = expect_int st "register count" in
  expect st Tlbrace "'{'";
  let blocks = ref [] in
  while peek st <> Some Trbrace do
    blocks := parse_block st :: !blocks
  done;
  ignore (next st);
  let blocks = Array.of_list (List.rev !blocks) in
  let index = Hashtbl.create 7 in
  Array.iteri
    (fun i b ->
      if Hashtbl.mem index b.rlabel then
        fail ~token:b.rlabel b.rline "duplicate label %s in routine %s" b.rlabel
          name;
      Hashtbl.replace index b.rlabel i)
    blocks;
  let resolve line lbl =
    match Hashtbl.find_opt index lbl with
    | Some i -> i
    | None -> fail ~token:lbl line "unknown label %s in routine %s" lbl name
  in
  let ir_blocks =
    Array.map
      (fun b ->
        let term =
          match b.rterm with
          | Rjump l -> Ir.Jump (resolve b.rline l)
          | Rbr (c, l1, l2) -> Ir.Branch (c, resolve b.rline l1, resolve b.rline l2)
          | Rret v -> Ir.Return v
        in
        { Ir.label = b.rlabel; instrs = Array.of_list b.rinstrs; term })
      blocks
  in
  { Ir.name; nparams; nregs; blocks = ir_blocks }

let program_of_string src =
  let st = { toks = tokenize src } in
  let arrays = ref [] in
  let routines = ref [] in
  let main = ref None in
  let rec loop () =
    match peek st with
    | None -> ()
    | Some _ ->
        (match next st with
        | Tident "array", _ ->
            let name = expect_ident st "array name" in
            let size = expect_int st "array size" in
            arrays := (name, size) :: !arrays
        | Tident "main", _ -> main := Some (expect_ident st "main routine name")
        | Tident "routine", _ -> routines := parse_routine st :: !routines
        | _, l -> fail l "expected 'array', 'main' or 'routine'");
        loop ()
  in
  loop ();
  let p =
    {
      Ir.arrays = List.rev !arrays;
      routines = List.rev !routines;
      main = Option.value !main ~default:"main";
    }
  in
  Check.program_exn p;
  p

let program_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> program_of_string (really_input_string ic (in_channel_length ic)))
