module Graph = Ppp_cfg.Graph
module Order = Ppp_cfg.Order

let check_routine (p : Ir.program) (r : Ir.routine) errors =
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let nblocks = Array.length r.blocks in
  if nblocks = 0 then err "routine %s: no blocks" r.name
  else begin
    let errors_at_start = List.length !errors in
    if r.nparams > r.nregs then
      err "routine %s: %d params but only %d registers" r.name r.nparams r.nregs;
    let labels = Hashtbl.create 7 in
    Array.iter
      (fun (b : Ir.block) ->
        if Hashtbl.mem labels b.label then
          err "routine %s: duplicate label %s" r.name b.label
        else Hashtbl.replace labels b.label ())
      r.blocks;
    let check_reg reg where =
      if reg < 0 || reg >= r.nregs then
        err "routine %s, %s: register r%d out of range (nregs=%d)" r.name where
          reg r.nregs
    in
    let check_operand op where =
      match op with Ir.Reg reg -> check_reg reg where | Ir.Imm _ -> ()
    in
    let check_target l where =
      if l < 0 || l >= nblocks then
        err "routine %s, %s: block target %d out of range" r.name where l
    in
    let check_array a where =
      if not (List.mem_assoc a p.arrays) then
        err "routine %s, %s: undeclared array %s" r.name where a
    in
    Array.iteri
      (fun i (b : Ir.block) ->
        let where = Printf.sprintf "block %s(%d)" b.label i in
        Array.iter
          (fun (ins : Ir.instr) ->
            match ins with
            | Ir.Mov (d, v) ->
                check_reg d where;
                check_operand v where
            | Ir.Binop (d, _, a, bop) ->
                check_reg d where;
                check_operand a where;
                check_operand bop where
            | Ir.Load (d, arr, idx) ->
                check_reg d where;
                check_array arr where;
                check_operand idx where
            | Ir.Store (arr, idx, v) ->
                check_array arr where;
                check_operand idx where;
                check_operand v where
            | Ir.Call (dst, callee, args) -> (
                Option.iter (fun d -> check_reg d where) dst;
                List.iter (fun a -> check_operand a where) args;
                match Ir.find_routine p callee with
                | None -> err "routine %s, %s: unknown callee %s" r.name where callee
                | Some c ->
                    if List.length args <> c.nparams then
                      err "routine %s, %s: %s expects %d args, got %d" r.name
                        where callee c.nparams (List.length args);
                    (* Args land in the callee's registers; more args than
                       registers would fault mid-copy at run time. *)
                    if List.length args > c.nregs then
                      err
                        "routine %s, %s: call passes %d arguments but %s has \
                         only %d registers"
                        r.name where (List.length args) callee c.nregs)
            | Ir.Out v -> check_operand v where)
          b.instrs;
        match b.term with
        | Ir.Jump l -> check_target l where
        | Ir.Branch (c, l1, l2) ->
            check_operand c where;
            check_target l1 where;
            check_target l2 where;
            if l1 = l2 then
              err "routine %s, %s: branch targets must be distinct" r.name where
        | Ir.Return v -> Option.iter (fun op -> check_operand op where) v)
      r.blocks;
    (* Structural checks only make sense once targets are in range. *)
    if List.length !errors = errors_at_start then begin
      let view = Cfg_view.of_routine r in
      let g = Cfg_view.graph view in
      let from_entry = Order.reachable g (Cfg_view.entry view) in
      let to_exit = Order.co_reachable g (Cfg_view.exit view) in
      Array.iteri
        (fun i (b : Ir.block) ->
          if not from_entry.(i) then
            err "routine %s: block %s unreachable from entry" r.name b.label
          else if not to_exit.(i) then
            err "routine %s: block %s cannot reach a return" r.name b.label)
        r.blocks
    end
  end

let program (p : Ir.program) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let seen_arrays = Hashtbl.create 7 in
  List.iter
    (fun (name, size) ->
      if Hashtbl.mem seen_arrays name then err "duplicate array %s" name
      else Hashtbl.replace seen_arrays name ();
      if size <= 0 then err "array %s: size must be positive" name)
    p.arrays;
  let seen_routines = Hashtbl.create 7 in
  List.iter
    (fun (r : Ir.routine) ->
      if Hashtbl.mem seen_routines r.name then err "duplicate routine %s" r.name
      else Hashtbl.replace seen_routines r.name ())
    p.routines;
  (match Ir.find_routine p p.main with
  | None -> err "main routine %s not found" p.main
  | Some m -> if m.nparams <> 0 then err "main routine %s must take no parameters" p.main);
  List.iter (fun r -> check_routine p r errors) p.routines;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let program_exn p =
  match program p with
  | Ok () -> ()
  | Error es -> invalid_arg (String.concat "\n" es)
