module Diagnostic = Ppp_resilience.Diagnostic
module Robust_io = Ppp_resilience.Robust_io
module Profile_io = Ppp_profile.Profile_io
module Path_profile = Ppp_profile.Path_profile
module Metrics = Ppp_obs.Metrics
module Spec = Ppp_workloads.Spec
module Interp = Ppp_interp.Interp
module Instr_rt = Ppp_interp.Instr_rt
module Sampling = Ppp_interp.Sampling
module Instrument = Ppp_core.Instrument
module Config = Ppp_core.Config

(* SplitMix-style finalizer over the pool seed and the item index only:
   the same item gets the same seed at every [-j] level. The constants
   fit in 62 bits; multiplication overflow wraps, which is fine for
   mixing. *)
let derive_seed base i =
  let z = (base lxor 0x2545F4914F6CDD1D) + ((i + 1) * 0x106689D45497239B) in
  let z = (z lxor (z lsr 29)) * 0x16A3B36B4E1B3F9 in
  let z = z lxor (z lsr 32) in
  z land max_int

(* Everything buffered in this process would otherwise be replayed by
   each child's exit path; [Unix._exit] avoids the replay, and flushing
   first keeps the parent's own output ordered around the fork. *)
let flush_std () =
  Format.pp_print_flush Format.std_formatter ();
  Format.pp_print_flush Format.err_formatter ();
  flush stdout;
  flush stderr

let silence_stdout () =
  try
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stdout;
    Unix.close devnull
  with Unix.Unix_error _ -> ()

let lost_diag ~worker ~index ~total why =
  Diagnostic.errorf ~line:index Diagnostic.Shard_lost
    "worker %d %s before delivering item %d of %d" worker why index total

(* One marshaled record from a worker pipe, assembled from raw reads so
   the parent survives EINTR and short reads and can put a wall-clock
   deadline on a stalled worker (a buffered [Marshal.from_channel] can
   do neither). [`Eof] covers both a cleanly closed pipe and a record
   torn by a mid-write crash — either way the stream is over and the
   per-item sweep accounts for what never arrived. *)
let read_record (type b) ?deadline fd :
    [ `Record of int * (b, string) result | `Eof | `Timeout ] =
  let hdr = Bytes.create Marshal.header_size in
  match Robust_io.really_read ?deadline fd hdr 0 Marshal.header_size with
  | `Eof -> `Eof
  | `Timeout -> `Timeout
  | `Ok () -> (
      match Marshal.data_size hdr 0 with
      | exception Failure _ -> `Eof (* corrupt header: torn stream *)
      | data_len -> (
          let buf = Bytes.create (Marshal.header_size + data_len) in
          Bytes.blit hdr 0 buf 0 Marshal.header_size;
          match
            Robust_io.really_read ?deadline fd buf Marshal.header_size data_len
          with
          | `Eof -> `Eof
          | `Timeout -> `Timeout
          | `Ok () -> (
              match (Marshal.from_bytes buf 0 : int * (b, string) result) with
              | r -> `Record r
              | exception Failure _ -> `Eof)))

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let map (type b) ~jobs ?(seed = 0) ?timeout_s ~(f : seed:int -> 'a -> b) items
    : (b, Diagnostic.t) result list =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let jobs = max 1 (min jobs n) in
    flush_std ();
    let workers =
      Array.init jobs (fun w ->
          let rd, wr = Unix.pipe () in
          match Unix.fork () with
          | 0 ->
              Unix.close rd;
              silence_stdout ();
              let i = ref w in
              (try
                 while !i < n do
                   let idx = !i in
                   let r : (b, string) result =
                     try Ok (f ~seed:(derive_seed seed idx) items.(idx))
                     with e -> Error (Printexc.to_string e)
                   in
                   (* One EINTR-safe write per item: results already
                      computed must survive a crash on a later item, and
                      a signal landing mid-write must not tear the
                      stream. *)
                   (match
                      Robust_io.write_string wr (Marshal.to_string (idx, r) [])
                    with
                   | `Ok -> ()
                   | `Closed | `Timeout -> raise Exit);
                   i := !i + jobs
                 done
               with Exit -> ());
              Unix._exit 0
          | pid ->
              Unix.close wr;
              (pid, rd))
    in
    let results : (b, Diagnostic.t) result option array = Array.make n None in
    Array.iteri
      (fun w (pid, rd) ->
        (* Drain this worker's stream to EOF before waiting (the parent
           is the only reader and always consumes, so no deadlock). The
           optional wall-clock budget is per worker, measured from the
           moment its drain starts; a worker that blows it is killed and
           its undelivered items become located diagnostics instead of
           blocking the merge forever. *)
        let deadline =
          Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s
        in
        let timed_out = ref false in
        let streaming = ref true in
        while !streaming do
          match read_record ?deadline rd with
          | `Record (idx, Ok v) -> results.(idx) <- Some (Ok v)
          | `Record (idx, Error msg) ->
              results.(idx) <-
                Some
                  (Error
                     (Diagnostic.errorf ~line:idx Diagnostic.Shard_lost
                        "shard job %d raised: %s" idx msg))
          | `Eof -> streaming := false
          | `Timeout ->
              timed_out := true;
              Robust_io.kill_quiet pid Sys.sigkill;
              streaming := false
        done;
        (try Unix.close rd with Unix.Unix_error _ -> ());
        let why =
          if !timed_out then
            Printf.sprintf "exceeded its %gs wall-clock budget"
              (Option.get timeout_s)
          else
            match waitpid_retry pid with
            | _, Unix.WEXITED 0 -> "died mid-stream"
            | _, Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
            | _, Unix.WSIGNALED s -> Printf.sprintf "was killed by signal %d" s
            | _, Unix.WSTOPPED s -> Printf.sprintf "was stopped by signal %d" s
            | exception Unix.Unix_error _ -> "could not be reaped"
        in
        if !timed_out then ignore (waitpid_retry pid);
        let i = ref w in
        while !i < n do
          (match results.(!i) with
          | Some _ -> ()
          | None ->
              results.(!i) <-
                Some (Error (lost_diag ~worker:w ~index:!i ~total:n why)));
          i := !i + jobs
        done)
      workers;
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false (* all swept above *))
         results)
  end

type collected = {
  raw : Profile_io.Raw.t;
  shards : (string * string) list;
  shard_metrics : (string * Metrics.snapshot) list;
  metrics : Metrics.snapshot;
  lost : Diagnostic.t list;
}

(* Bursty sampled collection of one program: paths come from PPP
   instrumentation run under the sampling controller, not from the
   engine's exact tracer. A cheap edge-only run supplies the
   instrumenter's self advice; the dump then carries the exact edge
   profile plus inverse-rate path estimates, so sampled dumps merge
   uniformly with unsampled ones. *)
let collect_sampled ?cache ~spec p =
  let advice =
    Interp.run ?cache
      ~config:{ Interp.default_config with trace_paths = false }
      p
  in
  let ep = Option.get advice.Interp.edge_profile in
  let inst = Instrument.instrument p ep Config.ppp in
  let o =
    Interp.run ?cache
      ~config:
        {
          Interp.default_config with
          trace_paths = false;
          instrumentation = Some inst.Instrument.rt;
          sampling = Some spec;
        }
      p
  in
  let paths = Path_profile.create_program p in
  (match o.Interp.instr_state with
  | None -> ()
  | Some tables ->
      Hashtbl.iter
        (fun name table ->
          match Hashtbl.find_opt inst.Instrument.plans name with
          | None -> ()
          | Some plan ->
              let t = Path_profile.routine paths name in
              Instr_rt.Table.iter_nonzero table (fun k c ->
                  match Instrument.decoded_path plan k with
                  | Some path ->
                      Path_profile.add t path
                        (Instr_rt.scaled_count ~denom:spec.Sampling.denom c)
                  | None -> ()))
        tables);
  Profile_io.Raw.of_program ?edges:o.Interp.edge_profile ~paths p

let collect_one ?prebuilt ?sampling ~seed ~scale ~metrics (b : Spec.bench) =
  if metrics then begin
    Metrics.set_enabled true;
    Metrics.reset ()
  end;
  let p, cache =
    match prebuilt with
    | Some (p, session) -> (p, Ppp_session.Session.lower_cache session)
    | None -> (b.Spec.build ~scale, None)
  in
  let raw =
    match sampling with
    | None ->
        let o = Interp.run ?cache p in
        Profile_io.Raw.of_program ?edges:o.Interp.edge_profile
          ?paths:o.Interp.path_profile p
    | Some template ->
        let spec =
          Sampling.spec ~burst:template.Sampling.burst ~seed
            ~denom:template.Sampling.denom ()
        in
        collect_sampled ?cache ~spec p
  in
  let snap = if metrics then Metrics.snapshot () else [] in
  (b.Spec.bench_name, Profile_io.Raw.to_string raw, snap)

let collect_workloads ~jobs ?(scale = 1) ?(metrics = false) ?(warm = false)
    ?sampling ?timeout_s benches =
  (* With [warm], the parent builds every workload and fills a session
     (analyses + structural lowering) before the pool forks, so workers
     inherit the warm artifacts copy-on-write and only execute. Workers
     never write back, so sharing is safe; collection output is
     byte-identical either way. *)
  let items =
    List.map
      (fun (b : Spec.bench) ->
        if warm then begin
          let p = b.Spec.build ~scale in
          let session =
            Ppp_session.Session.create ~name:b.Spec.bench_name ()
          in
          Ppp_session.Session.warm session p;
          (b, Some (p, session))
        end
        else (b, None))
      benches
  in
  let base_seed =
    match sampling with Some s -> s.Sampling.seed | None -> 0
  in
  let results =
    map ~jobs ~seed:base_seed ?timeout_s
      ~f:(fun ~seed (b, prebuilt) ->
        collect_one ?prebuilt ?sampling ~seed ~scale ~metrics b)
      items
  in
  let shards = ref [] and shard_metrics = ref [] and lost = ref [] in
  let inputs = ref [] in
  List.iter
    (function
      | Ok (name, dump, snap) ->
          shards := (name, dump) :: !shards;
          if metrics then shard_metrics := (name, snap) :: !shard_metrics;
          (* Prefix routine names with the workload so the 18 programs
             merge into one namespace without collisions. *)
          let raw =
            Profile_io.Raw.rename
              (fun r -> name ^ "/" ^ r)
              (Profile_io.Raw.parse dump)
          in
          inputs := raw :: !inputs
      | Error d -> lost := d :: !lost)
    results;
  {
    raw = Profile_io.Raw.merge (List.rev !inputs);
    shards = List.rev !shards;
    shard_metrics = List.rev !shard_metrics;
    metrics = Metrics.merge (List.rev_map snd !shard_metrics);
    lost = List.rev !lost;
  }
