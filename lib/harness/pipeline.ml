module Graph = Ppp_cfg.Graph
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile
module Path_profile = Ppp_profile.Path_profile
module Path = Ppp_profile.Path
module Metric = Ppp_profile.Metric
module Interp = Ppp_interp.Interp
module Instr_rt = Ppp_interp.Instr_rt
module Routine_ctx = Ppp_flow.Routine_ctx
module Flow_dp = Ppp_flow.Flow_dp
module Score = Ppp_flow.Score
module Config = Ppp_core.Config
module Instrument = Ppp_core.Instrument
module Numbering = Ppp_core.Numbering
module Trace = Ppp_obs.Trace
module Diagnostic = Ppp_resilience.Diagnostic
module Profile_io = Ppp_profile.Profile_io
module Session = Ppp_session.Session
module Superblock = Ppp_opt.Superblock
module Layout = Ppp_interp.Layout
module Sampling = Ppp_interp.Sampling

let hot_threshold = 0.00125 (* Section 8.1: 0.125% of total program flow *)
let metric = Metric.Branch_flow
let reconstruct_cap = 20_000 (* per routine, for estimated-profile paths *)

(* Which profile-guided transformations the preparation applies on top
   of inline + unroll. Off by default: superblock formation needs a
   decoded path profile to drive it, and layout changes what the bench
   harness measures, so both are explicit opt-ins (pppc --superblocks /
   --layout, Config gating in the driver). *)
type opt_flags = { superblocks : bool; layout : bool; max_trace : int }

let default_flags = { superblocks = false; layout = false; max_trace = 32 }

type prepared = {
  bench_name : string;
  original : Ir.program;
  optimized : Ir.program;
  orig_outcome : Interp.outcome;
  base_outcome : Interp.outcome;
  inline_stats : Ppp_opt.Inline.stats;
  unroll_stats : Ppp_opt.Unroll.stats;
  superblock_stats : Superblock.stats;
  layout : (string, int array) Hashtbl.t option;
      (* block emission orders derived from the base run's path profile
         (when the [layout] flag was on and any routine deviates from
         source order); a hint for [Interp.config], never semantics *)
  confidence : float;
  diagnostics : Diagnostic.t list;
  session : Session.t;
  view_memo : (string, Cfg_view.t) Hashtbl.t;
  phase_ms : (string * float) list;
}

(* The full decision log of a preparation, in pass order: what the
   optimizers actually did, as typed records rather than scalar stats.
   Superblock formation runs first (it consumes the decoded profile
   before inlining changes the CFGs the paths refer to). *)
let decisions prepared =
  prepared.superblock_stats.Superblock.decisions
  @ prepared.inline_stats.Ppp_opt.Inline.decisions
  @ prepared.unroll_stats.Ppp_opt.Unroll.decisions

(* A run that exhausts its fuel is not fatal: the profile gathered so far
   is still a (truncated) sample. Record the fact and carry on. *)
let fuel_diags phase (o : Interp.outcome) =
  match o.Interp.termination with
  | Interp.Finished -> []
  | Interp.Out_of_fuel { stack_depth } ->
      [
        Diagnostic.make ~severity:Diagnostic.Warning Diagnostic.Exhausted
          (Printf.sprintf
             "%s run exhausted its fuel with %d live activations; continuing \
              with the partial profile"
             phase stack_depth);
      ]

(* Wall-clock per phase, kept out of every deterministic artifact: it is
   only surfaced behind explicit opt-in flags. *)
let timed phases label f =
  let t0 = Unix.gettimeofday () in
  let r = Trace.with_span label f in
  phases := (label, 1000.0 *. (Unix.gettimeofday () -. t0)) :: !phases;
  r

let prepare_ms prepared =
  List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 prepared.phase_ms

(* The session memoizes views once per fingerprint; the extra
   name-indexed memo keeps the frequent [views prep name] lookups (and
   disabled-session runs, which memoize nothing) away from repeated
   fingerprint hashing in scoring loops. *)
let views prepared name =
  match Hashtbl.find_opt prepared.view_memo name with
  | Some v -> v
  | None ->
      let v =
        Session.view prepared.session (Ir.routine prepared.optimized name)
      in
      Hashtbl.replace prepared.view_memo name v;
      v

let block_freq_fn session p ep =
  let cache = Hashtbl.create 17 in
  fun ~routine ~block ->
    let freqs =
      match Hashtbl.find_opt cache routine with
      | Some f -> f
      | None ->
          let r = Ir.routine p routine in
          let view = Session.view session r in
          let g = Cfg_view.graph view in
          let prof = Edge_profile.routine ep routine in
          let f =
            Array.init (Array.length r.Ir.blocks) (fun b ->
                let inflow =
                  List.fold_left
                    (fun a e -> a + Edge_profile.freq prof e)
                    0 (Graph.in_edges g b)
                in
                if b = 0 then inflow + Edge_profile.entry_count ep p routine
                else inflow)
          in
          Hashtbl.replace cache routine f;
          f
    in
    freqs.(block)

let make_session ?session ~name () =
  match session with Some s -> s | None -> Session.create ~name ()

(* One (hottest) trace per routine from hot-path triples, with a total
   tie-break (flow desc, then the path itself) so formation never
   depends on hash-iteration order. Sorted by routine name on the way
   out for the same reason. *)
let hottest_per_routine entries =
  let best = Hashtbl.create 17 in
  List.iter
    (fun (name, path, flow) ->
      match Hashtbl.find_opt best name with
      | Some (p', f') when f' > flow || (f' = flow && compare p' path <= 0) ->
          ()
      | _ -> Hashtbl.replace best name (path, flow))
    entries;
  Hashtbl.fold (fun name (path, flow) acc -> (name, path, flow) :: acc) best []
  |> List.sort compare

(* The path-guided block layout of [p] under recorded [profile]: one
   emission order per routine whose hottest trace deviates from source
   order (see [Ppp_interp.Layout]), memoized in the session per
   (routine fingerprint, profile identity). [None] when every routine is
   already laid out hot-path-first — the common case for straight-line
   benches — so the lowering cache is shared with layout-free runs. *)
let layout_table session (p : Ir.program) (profile : Path_profile.program) =
  let tbl = Hashtbl.create 17 in
  List.iter
    (fun (r : Ir.routine) ->
      match Path_profile.routine profile r.Ir.name with
      | exception Not_found -> ()
      | t ->
          if Path_profile.num_distinct t > 0 then (
            let order =
              Session.layout session ~paths:profile r ~compute:(fun () ->
                  let view = Session.view session r in
                  let entries =
                    Path_profile.fold t ~init:[] ~f:(fun acc path n ->
                        let b = Path.branches view path in
                        (path, Metric.flow metric ~freq:n ~branches:b) :: acc)
                  in
                  Layout.order_for ~view entries)
            in
            match order with
            | Some o -> Hashtbl.replace tbl r.Ir.name o
            | None -> ()))
    p.Ir.routines;
  if Hashtbl.length tbl = 0 then None else Some tbl

let layout_of_flags ~(flags : opt_flags) session p (o : Interp.outcome) =
  if not flags.layout then None
  else
    match o.Interp.path_profile with
    | None -> None
    | Some profile -> layout_table session p profile

(* Straighten the hottest decoded trace of each routine (Superblock) and
   re-profile the transformed program: the loaded edge counts describe
   bodies that no longer exist once a trace is duplicated, so a changed
   program gets a fresh edge profile before inlining consumes it.
   Mismatched or stale traces degrade to diagnostics, never errors. *)
let superblock_phase ~(flags : opt_flags) ~session ~cache ~phases
    ~(loaded : Profile_io.loaded) p =
  if not flags.superblocks then (p, Superblock.empty_stats, loaded.Profile_io.edges, [])
  else begin
    let views name = Session.view session (Ir.routine p name) in
    let hot =
      Path_profile.hot_paths loaded.Profile_io.paths ~views ~metric
        ~threshold:hot_threshold
    in
    let picked = hottest_per_routine hot in
    let hot_paths = List.map (fun (n, path, _) -> (n, path)) picked in
    let path_weights = List.map (fun (n, _, f) -> (n, f)) picked in
    let p', stats =
      timed phases "superblock" (fun () ->
          Superblock.form ~max_trace:flags.max_trace ~path_weights p ~hot_paths)
    in
    let diags =
      List.map
        (fun m ->
          Diagnostic.errorf ~severity:Diagnostic.Warning
            ~routine:m.Superblock.mm_routine Diagnostic.Stale "%s"
            (Format.asprintf "%a" Superblock.pp_mismatch m))
        stats.Superblock.mismatches
    in
    if stats.Superblock.touched = [] then
      (p, stats, loaded.Profile_io.edges, diags)
    else begin
      ignore (Session.sync session p');
      let o = timed phases "sb-profile" (fun () -> Interp.run ?cache p') in
      (p', stats, Option.get o.Interp.edge_profile, diags @ fuel_diags "sb-profile" o)
    end
  end

let prepare ?session ?(flags = default_flags) ~name p =
  let session = make_session ?session ~name () in
  let cache = Session.lower_cache session in
  let phases = ref [] in
  Trace.with_span ~args:[ ("bench", name) ] "prepare" @@ fun () ->
  ignore (Session.sync session p);
  let orig_outcome =
    timed phases "edge-profile" (fun () -> Interp.run ?cache p)
  in
  let ep0 = Option.get orig_outcome.Interp.edge_profile in
  let inlined, inline_stats =
    timed phases "inline" (fun () ->
        Ppp_opt.Inline.run p ~block_freq:(block_freq_fn session p ep0))
  in
  ignore (Session.sync session inlined);
  let o1 = timed phases "re-profile" (fun () -> Interp.run ?cache inlined) in
  let ep1 = Option.get o1.Interp.edge_profile in
  let optimized, unroll_stats =
    timed phases "unroll" (fun () ->
        Ppp_opt.Unroll.run inlined ~edge_profile:ep1)
  in
  ignore (Session.sync session optimized);
  let base_outcome =
    timed phases "base-run" (fun () -> Interp.run ?cache optimized)
  in
  {
    bench_name = name;
    original = p;
    optimized;
    orig_outcome;
    base_outcome;
    inline_stats;
    unroll_stats;
    superblock_stats = Superblock.empty_stats;
    layout = layout_of_flags ~flags session optimized base_outcome;
    confidence = 1.0;
    diagnostics =
      fuel_diags "edge-profile" orig_outcome
      @ fuel_diags "re-profile" o1
      @ fuel_diags "base" base_outcome;
    session;
    view_memo = Hashtbl.create 17;
    phase_ms = List.rev !phases;
  }

let prepare_with_profile ?session ?(flags = default_flags) ~name
    ~(loaded : Profile_io.loaded) p =
  let session = make_session ?session ~name () in
  let cache = Session.lower_cache session in
  let phases = ref [] in
  Trace.with_span ~args:[ ("bench", name) ] "prepare-with-profile" @@ fun () ->
  ignore (Session.sync session p);
  let confidence = loaded.Profile_io.matched_fraction in
  let sb_p, superblock_stats, ep0, sb_diags =
    superblock_phase ~flags ~session ~cache ~phases ~loaded p
  in
  (* Confidence-weighted hotness: salvaged counts must clear a higher bar
     before they justify inlining a call site. *)
  let min_site_freq =
    int_of_float (Float.ceil (16.0 /. Float.max 0.05 confidence))
  in
  let inlined, inline_stats =
    timed phases "inline" (fun () ->
        Ppp_opt.Inline.run ~min_site_freq sb_p
          ~block_freq:(block_freq_fn session sb_p ep0))
  in
  ignore (Session.sync session inlined);
  let o1 = timed phases "re-profile" (fun () -> Interp.run ?cache inlined) in
  let ep1 = Option.get o1.Interp.edge_profile in
  let optimized, unroll_stats =
    timed phases "unroll" (fun () ->
        Ppp_opt.Unroll.run inlined ~edge_profile:ep1)
  in
  ignore (Session.sync session optimized);
  let base_outcome =
    timed phases "base-run" (fun () -> Interp.run ?cache optimized)
  in
  {
    bench_name = name;
    original = p;
    optimized;
    orig_outcome = o1;
    base_outcome;
    inline_stats;
    unroll_stats;
    superblock_stats;
    layout = layout_of_flags ~flags session optimized base_outcome;
    confidence;
    diagnostics =
      loaded.Profile_io.diagnostics @ sb_diags
      @ fuel_diags "re-profile" o1
      @ fuel_diags "base" base_outcome;
    session;
    view_memo = Hashtbl.create 17;
    phase_ms = List.rev !phases;
  }

let prepare_unoptimized ?session ~name p =
  let session = make_session ?session ~name () in
  let cache = Session.lower_cache session in
  let phases = ref [] in
  Trace.with_span ~args:[ ("bench", name) ] "prepare" @@ fun () ->
  ignore (Session.sync session p);
  let orig_outcome =
    timed phases "edge-profile" (fun () -> Interp.run ?cache p)
  in
  {
    bench_name = name;
    original = p;
    optimized = p;
    orig_outcome;
    base_outcome = orig_outcome;
    inline_stats =
      {
        Ppp_opt.Inline.sites_inlined = 0;
        dynamic_calls_inlined = 0;
        dynamic_calls_total = 0;
        size_before = Ir.program_size p;
        size_after = Ir.program_size p;
        touched = [];
        decisions = [];
      };
    unroll_stats =
      {
        Ppp_opt.Unroll.loops_unrolled = 0;
        loops_seen = 0;
        avg_dynamic_factor = 1.0;
        touched = [];
        decisions = [];
      };
    superblock_stats = Superblock.empty_stats;
    layout = None;
    confidence = 1.0;
    diagnostics = fuel_diags "edge-profile" orig_outcome;
    session;
    view_memo = Hashtbl.create 17;
    phase_ms = List.rev !phases;
  }

let actual_profile prepared = Option.get prepared.base_outcome.Interp.path_profile

let total_flow prepared m =
  Path_profile.program_flow (actual_profile prepared)
    ~views:(views prepared) m

type path_stats = { dyn_paths : int; avg_branches : float; avg_instrs : float }

let path_stats_of_outcome ?session p (o : Interp.outcome) =
  let profile = Option.get o.Interp.path_profile in
  let memo = Hashtbl.create 17 in
  let views name =
    match Hashtbl.find_opt memo name with
    | Some v -> v
    | None ->
        let r = Ir.routine p name in
        let v =
          match session with
          | Some s -> Session.view s r
          | None -> Cfg_view.of_routine r
        in
        Hashtbl.replace memo name v;
        v
  in
  let unit_total = Path_profile.program_flow profile ~views Metric.Unit_flow in
  let branch_total = Path_profile.program_flow profile ~views Metric.Branch_flow in
  {
    dyn_paths = o.Interp.dyn_paths;
    avg_branches =
      (if unit_total = 0 then 0.0
       else float_of_int branch_total /. float_of_int unit_total);
    avg_instrs =
      (if o.Interp.dyn_paths = 0 then 0.0
       else float_of_int o.Interp.dyn_instrs /. float_of_int o.Interp.dyn_paths);
  }

type hot_stats = { distinct_paths : int; hot_count : int; hot_flow_pct : float }

let hot_stats prepared ~threshold =
  let actual = actual_profile prepared in
  let total = total_flow prepared metric in
  let hot =
    Score.hot_actual ~actual ~views:(views prepared) ~metric ~threshold
  in
  let hot_flow = List.fold_left (fun a (_, _, f) -> a + f) 0 hot in
  {
    distinct_paths = Path_profile.program_distinct actual;
    hot_count = List.length hot;
    hot_flow_pct =
      (if total = 0 then 0.0 else 100.0 *. float_of_int hot_flow /. float_of_int total);
  }

type evaluation = {
  config_name : string;
  overhead : float;
  accuracy : float;
  coverage : float;
  frac_paths_instrumented : float;
  frac_paths_hashed : float;
  static_actions : int;
  routines_instrumented : int;
  routines_total : int;
  estimated : Score.est list;
      (* the method's estimated profile, kept so quality analysis can
         compare it path-by-path against the measured truth *)
}

(* The flow context of a routine of [prepared.optimized] under the base
   edge profile, shared through the session across every method's
   evaluation (and with the instrumenter's planning). *)
let ctx_of_routine prepared name =
  let ep = Option.get prepared.base_outcome.Interp.edge_profile in
  Session.ctx prepared.session ~ep (Ir.routine prepared.optimized name)

(* Potential-flow estimated profile for a set of routines (used for edge
   profiling, and for TPP/PPP when they instrument nothing at all). *)
let potential_estimates prepared routine_names =
  List.concat_map
    (fun name ->
      let ctx = ctx_of_routine prepared name in
      Flow_dp.potential_hot_paths ctx ~max_paths:reconstruct_cap
      |> List.map (fun (dag_path, f, b) ->
             {
               Score.routine = name;
               path = Routine_ctx.cfg_path_of_dag_path ctx dag_path;
               flow = Metric.flow metric ~freq:f ~branches:b;
             }))
    routine_names

let routine_names p = List.map (fun (r : Ir.routine) -> r.Ir.name) p.Ir.routines

let definite_total prepared name =
  let ctx = ctx_of_routine prepared name in
  let dp = Session.definite prepared.session ctx in
  Flow_dp.total dp ~metric

let evaluate_edge_profile prepared =
  Trace.with_span ~args:[ ("config", "edge") ] "evaluate" @@ fun () ->
  let actual = actual_profile prepared in
  let estimated =
    Trace.with_span "estimate" (fun () ->
        potential_estimates prepared (routine_names prepared.optimized))
  in
  let accuracy =
    Trace.with_span "score" (fun () ->
        Score.accuracy ~actual ~views:(views prepared) ~metric
          ~threshold:hot_threshold ~estimated)
  in
  let df_total =
    List.fold_left
      (fun acc name -> acc + definite_total prepared name)
      0
      (routine_names prepared.optimized)
  in
  let total = total_flow prepared metric in
  {
    config_name = "edge";
    overhead = 0.0 (* Section 2: negligible with sampling or hardware *);
    accuracy;
    coverage =
      Score.coverage ~total_actual_flow:total ~measured_actual_flow:0
        ~definite_uninstr:df_total ~overcount:0;
    frac_paths_instrumented = 0.0;
    frac_paths_hashed = 0.0;
    static_actions = 0;
    routines_instrumented = 0;
    routines_total = List.length prepared.optimized.Ir.routines;
    estimated;
  }

(* Instrument [prepared.optimized] through the session: flow contexts and
   definite-flow DPs are memoized artifacts, and whole placement
   decisions are reused when the session has already planned this
   routine. [mode] selects the reuse rule (see {!Session.placement_mode});
   [on_reuse]/[on_plan] let callers count what happened. *)
let instrument_via_session ?(mode = Session.Exact) ?(on_reuse = fun _ -> ())
    ?(on_plan = fun _ -> ()) prepared (config : Config.t) =
  let p = prepared.optimized in
  let ep = Option.get prepared.base_outcome.Interp.edge_profile in
  let session = prepared.session in
  let config_name = config.Config.name in
  Instrument.instrument
    ~plan_ctx:(fun (r : Ir.routine) -> Session.ctx session ~ep r)
    ~definite:(Session.definite session)
    ~reuse:(fun r ->
      match Session.placement_find session ~mode ~config_name ~ep r with
      | Some plan ->
          on_reuse r.Ir.name;
          Some plan
      | None -> None)
    ~store:(fun r plan ->
      on_plan r.Ir.name;
      Session.placement_store session ~config_name ~ep r plan)
    p ep config

let evaluate ?(overflow_policy = Instr_rt.Table.Drop) ?sampling prepared
    (config : Config.t) =
  (* A partially-trusted profile (stale salvage) degrades the placement
     thresholds instead of being consumed at face value. *)
  let config = Config.degrade ~confidence:prepared.confidence config in
  Trace.with_span ~args:[ ("config", config.Config.name) ] "evaluate" @@ fun () ->
  let p = prepared.optimized in
  let inst =
    Trace.with_span "instrument" (fun () ->
        instrument_via_session prepared config)
  in
  let instr_outcome =
    Trace.with_span "overhead-run" (fun () ->
        Interp.run
          ?cache:(Session.lower_cache prepared.session)
          ~config:
            {
              Interp.default_config with
              instrumentation = Some inst.Instrument.rt;
              overflow_policy;
              sampling;
            }
          p)
  in
  let overhead = Interp.overhead instr_outcome in
  (* Sampled tables hold only the observed fraction of each count;
     recover full-run estimates with the inverse-rate estimator before
     scoring, so accuracy/coverage compare like with like. *)
  let sample_denom =
    match sampling with Some s -> s.Sampling.denom | None -> 1
  in
  let recovered c = Instr_rt.scaled_count ~denom:sample_denom c in
  let actual = actual_profile prepared in
  let tables = Option.get instr_outcome.Interp.instr_state in
  let ctx_of name =
    (Hashtbl.find inst.Instrument.plans name).Instrument.ctx
  in
  Trace.with_span "score" @@ fun () ->
  (* Estimated profile (Section 5): measured flow for instrumented paths
     plus definite flow for the rest; if nothing at all was instrumented,
     fall back to the potential-flow profile (Section 6.1). *)
  let estimated =
    Trace.with_span "estimate" @@ fun () ->
    if not (Instrument.has_any_instrumentation inst) then
      potential_estimates prepared (routine_names p)
    else
      List.concat_map
        (fun name ->
          let plan = Hashtbl.find inst.Instrument.plans name in
          let measured =
            match Hashtbl.find_opt tables name with
            | None -> []
            | Some table ->
                let acc = ref [] in
                Instr_rt.Table.iter_nonzero table (fun k c ->
                    match Instrument.decoded_path plan k with
                    | Some path ->
                        let b = Path.branches (views prepared name) path in
                        acc :=
                          {
                            Score.routine = name;
                            path;
                            flow =
                              Metric.flow metric ~freq:(recovered c)
                                ~branches:b;
                          }
                          :: !acc
                    | None -> ());
                !acc
          in
          let uninstrumented =
            let ctx = ctx_of name in
            let dp = Session.definite prepared.session ctx in
            Flow_dp.reconstruct dp ~cutoff:(-1) ~max_paths:reconstruct_cap
            |> List.filter_map (fun (dag_path, f, b) ->
                   let path = Routine_ctx.cfg_path_of_dag_path ctx dag_path in
                   match Instrument.path_status plan path with
                   | `Instrumented _ -> None (* measured above *)
                   | `Uninstrumented ->
                       Some
                         {
                           Score.routine = name;
                           path;
                           flow = Metric.flow metric ~freq:f ~branches:b;
                         })
          in
          measured @ uninstrumented)
        (routine_names p)
  in
  let accuracy =
    Score.accuracy ~actual ~views:(views prepared) ~metric ~threshold:hot_threshold
      ~estimated
  in
  (* Coverage (Section 6.2). *)
  let total = total_flow prepared metric in
  let f_instr = ref 0 in
  let df_uninstr = ref 0 in
  let unit_instr = ref 0 in
  let unit_hashed = ref 0 in
  let unit_total = ref 0 in
  Path_profile.iter_routines actual (fun name t ->
      let plan = Hashtbl.find inst.Instrument.plans name in
      let uses_hash =
        match plan.Instrument.decision with
        | Instrument.Instrumented { uses_hash; _ } -> uses_hash
        | Instrument.Uninstrumented _ -> false
      in
      let view = views prepared name in
      let ctx = ctx_of name in
      Path_profile.iter t (fun path n ->
          let b = Path.branches view path in
          unit_total := !unit_total + n;
          match Instrument.path_status plan path with
          | `Instrumented _ ->
              f_instr := !f_instr + Metric.flow metric ~freq:n ~branches:b;
              unit_instr := !unit_instr + n;
              if uses_hash then unit_hashed := !unit_hashed + n
          | `Uninstrumented ->
              let df =
                Flow_dp.definite_of_path ctx (Routine_ctx.dag_path_of_cfg_path ctx path)
              in
              (* Definite flow never exceeds the actual frequency. *)
              df_uninstr := !df_uninstr + Metric.flow metric ~freq:df ~branches:b));
  (* Measured flow (for the overcount penalty): decoded counter totals. *)
  let mf = ref 0 in
  Hashtbl.iter
    (fun name table ->
      let plan = Hashtbl.find inst.Instrument.plans name in
      Instr_rt.Table.iter_nonzero table (fun k c ->
          match Instrument.decoded_path plan k with
          | Some path ->
              let b = Path.branches (views prepared name) path in
              mf := !mf + Metric.flow metric ~freq:(recovered c) ~branches:b
          | None -> ()))
    tables;
  let overcount = max 0 (!mf - !f_instr) in
  let coverage =
    Score.coverage ~total_actual_flow:total ~measured_actual_flow:!f_instr
      ~definite_uninstr:!df_uninstr ~overcount
  in
  let routines_instrumented =
    Hashtbl.fold
      (fun _ plan acc ->
        match plan.Instrument.decision with
        | Instrument.Instrumented _ -> acc + 1
        | Instrument.Uninstrumented _ -> acc)
      inst.Instrument.plans 0
  in
  {
    config_name = config.Config.name;
    overhead;
    accuracy;
    coverage;
    frac_paths_instrumented =
      (if !unit_total = 0 then 0.0
       else float_of_int !unit_instr /. float_of_int !unit_total);
    frac_paths_hashed =
      (if !unit_total = 0 then 0.0
       else float_of_int !unit_hashed /. float_of_int !unit_total);
    static_actions = Instrument.static_instr_count inst;
    routines_instrumented;
    routines_total = List.length p.Ir.routines;
    estimated;
  }

(* {2 Tiered execution}

   The in-VM analogue of the two-pass flow above: instead of an
   instrumented run followed by a separate optimized run, one run starts
   instrumented and the tier controller swaps hot routines onto
   optimized re-lowerings as their counters cross the threshold. The
   planner below is the incremental slice of the session pipeline that
   the controller invokes mid-run, on just the firing routine: decode
   its live path counters, weight them with the paper's flow metric,
   and derive a hot-path-first block order. *)

let tier_planner prepared (inst : Instrument.t) : Ppp_interp.Tier.planner =
 fun ~routine ~counters ->
  match Hashtbl.find_opt inst.Instrument.plans routine with
  | None -> None
  | Some plan ->
      let view = views prepared routine in
      let entries =
        List.filter_map
          (fun (k, c) ->
            match Instrument.decoded_path plan k with
            | Some path ->
                let b = Path.branches view path in
                Some (path, Metric.flow metric ~freq:c ~branches:b)
            | None -> None)
          counters
      in
      Layout.order_for ~view entries

type tiered = {
  t_outcome : Interp.outcome;
  t_decisions : Ppp_interp.Tier.decision list;
  t_invalidated : string list;
  t_instrumented : Ppp_core.Instrument.t;
}

let tiered_run ?(threshold = Ppp_interp.Tier.default_threshold)
    ?(budget = Ppp_interp.Tier.default_budget) ?sampling prepared
    (config : Config.t) =
  let config = Config.degrade ~confidence:prepared.confidence config in
  Trace.with_span ~args:[ ("config", config.Config.name) ] "tiered-run"
  @@ fun () ->
  let inst = instrument_via_session prepared config in
  let spec =
    Ppp_interp.Tier.spec ~threshold ~budget
      ~plan:(tier_planner prepared inst) ()
  in
  let outcome =
    Interp.run
      ?cache:(Session.lower_cache prepared.session)
      ~config:
        {
          Interp.default_config with
          instrumentation = Some inst.Instrument.rt;
          sampling;
          tier = Some spec;
        }
      prepared.optimized
  in
  (* Every swapped routine's profile froze mid-run, so its
     profile-derived session artifacts are stale: invalidate exactly
     that set, nothing else. *)
  let swapped =
    List.map
      (fun (d : Ppp_interp.Tier.decision) -> d.Ppp_interp.Tier.d_routine)
      outcome.Interp.tier_decisions
  in
  Session.invalidate prepared.session swapped;
  {
    t_outcome = outcome;
    t_decisions = outcome.Interp.tier_decisions;
    t_invalidated = swapped;
    t_instrumented = inst;
  }

(* {2 Iterative re-optimization} *)

type generation = {
  gen : int;
  prep : prepared;
  dirty : string list;
  reinstrumented : int;
  reused_plans : int;
  matched_fraction : float;
  instr_overhead : float;
  decisions : Ppp_opt.Decision.t list;
  decision_diff : Ppp_opt.Decision.diff;
      (* vs the previous generation's log; generation 1 diffs against the
         empty log (everything "added", stability vacuously 1.0) *)
}

(* The union of the optimizers' touched sets, in program order of the
   generation's optimized program. *)
let dirty_of prepared =
  let touched =
    prepared.superblock_stats.Superblock.touched
    @ prepared.inline_stats.Ppp_opt.Inline.touched
    @ prepared.unroll_stats.Ppp_opt.Unroll.touched
  in
  List.filter_map
    (fun (r : Ir.routine) ->
      if List.mem r.Ir.name touched then Some r.Ir.name else None)
    prepared.optimized.Ir.routines

(* The generation's path profile as a sampled collector saw it: decode
   the instrumented run's live tables through the placement plans and
   scale each count back by the inverse rate — the dump a fleet member
   would ship, full-run *estimates* rather than truth. *)
let sampled_path_profile ~denom (inst : Instrument.t)
    (outcome : Interp.outcome) p =
  let prof = Path_profile.create_program p in
  (match outcome.Interp.instr_state with
  | None -> ()
  | Some tables ->
      Hashtbl.iter
        (fun name table ->
          match Hashtbl.find_opt inst.Instrument.plans name with
          | None -> ()
          | Some plan ->
              let t = Path_profile.routine prof name in
              Instr_rt.Table.iter_nonzero table (fun k c ->
                  match Instrument.decoded_path plan k with
                  | Some path ->
                      Path_profile.add t path (Instr_rt.scaled_count ~denom c)
                  | None -> ()))
        tables);
  prof

let reoptimize ?session ?(config = Config.ppp) ?(flags = default_flags)
    ?(iterations = 1) ?sampling ?decay ~name p0 =
  (match decay with
  | Some d when d <= 0.0 || d > 1.0 ->
      invalid_arg "Pipeline.reoptimize: decay must be in (0, 1]"
  | _ -> ());
  (* Drift mode: instead of handing each generation exactly the previous
     generation's profile, accumulate every generation's dump (possibly
     collected under sampling) and feed the next generation their
     age-decayed merge — the fleet's profile store, not the lab's. *)
  let drift = sampling <> None || decay <> None in
  let history = ref [] (* Raw dumps, newest first *) in
  let session = make_session ?session ~name () in
  let gens = ref [] in
  let cur = ref p0 in
  let prev = ref None in
  for gen = 1 to iterations do
    let prep, matched_fraction =
      match !prev with
      | None -> (prepare ~session ~flags ~name !cur, 1.0)
      | Some (p : prepared) -> (
          (* Hand the previous generation's profile through the wire
             format and the stale matcher, as a staged optimizer with an
             offline profile store would; on an unchanged program it
             matches exactly (fraction 1.0). *)
          let text =
            if drift then
              Profile_io.Raw.to_string
                (Profile_io.Raw.merge_decayed
                   ~decay:(Option.value ~default:1.0 decay)
                   (List.rev !history))
            else begin
              let buf = Buffer.create 65536 in
              let ppf = Format.formatter_of_buffer buf in
              Profile_io.save ?edges:p.base_outcome.Interp.edge_profile
                ?paths:p.base_outcome.Interp.path_profile ppf p.optimized;
              Format.pp_print_flush ppf ();
              Buffer.contents buf
            end
          in
          match Profile_io.load !cur text with
          | Ok loaded ->
              ( prepare_with_profile ~session ~flags ~name ~loaded !cur,
                loaded.Profile_io.matched_fraction )
          | Error _ -> (prepare ~session ~flags ~name !cur, 0.0))
    in
    (* Re-instrument: sticky reuse keeps every untouched routine's plan,
       so only routines the optimizers dirtied are re-planned. *)
    let reused = ref 0 and planned = ref 0 in
    let inst =
      instrument_via_session ~mode:Session.Sticky
        ~on_reuse:(fun _ -> incr reused)
        ~on_plan:(fun _ -> incr planned)
        prep
        (Config.degrade ~confidence:prep.confidence config)
    in
    let instr_outcome =
      (* The instrumented run executes under the generation's layout (if
         any): the loop exercises the VM exactly as a deployed optimizer
         would, and the differential suite keeps layout honest. Under
         [sampling] the collector runs bursty, so [instr_overhead]
         reflects the sampled cost. *)
      Interp.run
        ?cache:(Session.lower_cache session)
        ~config:
          {
            Interp.default_config with
            instrumentation = Some inst.Instrument.rt;
            layout = prep.layout;
            sampling;
          }
        prep.optimized
    in
    if drift then begin
      (* What this generation contributes to the profile store: sampled
         estimates when a sampler ran, the measured truth otherwise.
         Edge counts ride along at full fidelity either way — the paper
         takes cheap edge profiling as given; sampling stresses the
         expensive path tables. *)
      let paths =
        match sampling with
        | None -> prep.base_outcome.Interp.path_profile
        | Some s ->
            Some
              (sampled_path_profile ~denom:s.Sampling.denom inst instr_outcome
                 prep.optimized)
      in
      history :=
        Profile_io.Raw.of_program ?edges:prep.base_outcome.Interp.edge_profile
          ?paths prep.optimized
        :: !history
    end;
    let gen_decisions = decisions prep in
    let prev_decisions =
      match !prev with None -> [] | Some p -> decisions p
    in
    gens :=
      {
        gen;
        prep;
        dirty = dirty_of prep;
        reinstrumented = !planned;
        reused_plans = !reused;
        matched_fraction;
        instr_overhead = Interp.overhead instr_outcome;
        decisions = gen_decisions;
        decision_diff =
          Ppp_opt.Decision.diff ~previous:prev_decisions
            ~current:gen_decisions;
      }
      :: !gens;
    prev := Some prep;
    cur := prep.optimized
  done;
  List.rev !gens

(* {2 Layout evaluation}

   The report-facing answer to "what would path-guided layout buy here,
   and does the paper's loop actually close?" — pure cost-model
   arithmetic plus one deterministic VM run, so it is safe inside the
   byte-identical bench document. *)

type layout_proxy = {
  lp_transfers : int;
  lp_taken : int;
  lp_local : int;
  lp_score : float;
}

let layout_proxy_of (pr : Layout.proxy) =
  {
    lp_transfers = pr.Layout.transfers;
    lp_taken = pr.Layout.taken;
    lp_local = pr.Layout.local;
    lp_score =
      Score.layout_score ~transfers:pr.Layout.transfers ~taken:pr.Layout.taken
        ~local:pr.Layout.local;
  }

type closed_loop = {
  cl_routines_straightened : int;
  cl_duplicated : int;
  cl_merged : int;
  cl_mismatches : int;
  cl_base : layout_proxy;
  cl_laid : layout_proxy;
  cl_taken_drop : bool;
  cl_improvement : float;
}

type layout_eval = {
  le_base : layout_proxy;
  le_oracle : layout_proxy;
  le_oracle_improvement : float;
  le_methods : (string * layout_proxy * float) list;
  le_closed_loop : closed_loop;
}

(* Lay out from an estimated profile: the triples a method's [estimated]
   list yields, hottest trace per routine (see [Layout.of_hot_paths]). *)
let layout_from_estimates prepared ests =
  let entries =
    List.map (fun e -> (e.Score.routine, e.Score.path, e.Score.flow)) ests
  in
  let tbl = Layout.of_hot_paths ~views:(views prepared) entries in
  if Hashtbl.length tbl = 0 then None else Some tbl

let layout_eval prepared ~estimates =
  let p = prepared.optimized in
  let ep = Option.get prepared.base_outcome.Interp.edge_profile in
  let base = layout_proxy_of (Layout.program_proxy p ~ep) in
  let improvement candidate =
    Score.layout_improvement ~base:base.lp_score ~candidate:candidate.lp_score
  in
  (* Oracle: the layout the measured truth dictates — the ceiling any
     estimated profile can reach on this program. *)
  let oracle_layout = layout_table prepared.session p (actual_profile prepared) in
  let oracle = layout_proxy_of (Layout.program_proxy ?layout:oracle_layout p ~ep) in
  let methods =
    List.map
      (fun (name, ests) ->
        let layout = layout_from_estimates prepared ests in
        let proxy = layout_proxy_of (Layout.program_proxy ?layout p ~ep) in
        (name, proxy, improvement proxy))
      estimates
  in
  (* Close the loop end to end: straighten the hottest estimated trace
     per routine (PPP's estimates when given, else the measured truth),
     run the transformed program fresh, lay it out from that run's own
     path profile, and compare proxies on its own edge frequencies. *)
  let driver =
    match List.assoc_opt "ppp" estimates with
    | Some ests when ests <> [] ->
        List.map (fun e -> (e.Score.routine, e.Score.path, e.Score.flow)) ests
    | _ ->
        Score.hot_actual ~actual:(actual_profile prepared)
          ~views:(views prepared) ~metric ~threshold:hot_threshold
  in
  let picked = hottest_per_routine driver in
  let hot_paths = List.map (fun (n, path, _) -> (n, path)) picked in
  let path_weights = List.map (fun (n, _, f) -> (n, f)) picked in
  let p', stats = Superblock.form ~path_weights p ~hot_paths in
  let o = Interp.run p' in
  let ep' = Option.get o.Interp.edge_profile in
  (* A throwaway disabled session: the closed-loop program must not
     disturb the prepared session's slot table. *)
  let scratch = Session.create ~enabled:false ~name:"layout-eval" () in
  let cl_layout =
    match o.Interp.path_profile with
    | None -> None
    | Some paths -> layout_table scratch p' paths
  in
  let cl_base = layout_proxy_of (Layout.program_proxy p' ~ep:ep') in
  let cl_laid = layout_proxy_of (Layout.program_proxy ?layout:cl_layout p' ~ep:ep') in
  {
    le_base = base;
    le_oracle = oracle;
    le_oracle_improvement = improvement oracle;
    le_methods = methods;
    le_closed_loop =
      {
        cl_routines_straightened = stats.Superblock.routines_optimized;
        cl_duplicated = stats.Superblock.blocks_duplicated;
        cl_merged = stats.Superblock.jumps_merged;
        cl_mismatches = List.length stats.Superblock.mismatches;
        cl_base;
        cl_laid;
        cl_taken_drop = cl_laid.lp_taken < cl_base.lp_taken;
        cl_improvement =
          Score.layout_improvement ~base:cl_base.lp_score
            ~candidate:cl_laid.lp_score;
      };
  }
