module Spec = Ppp_workloads.Spec
module Interp = Ppp_interp.Interp
module Config = Ppp_core.Config
module Sampling = Ppp_interp.Sampling
module Quality = Ppp_quality.Quality
module Tier = Ppp_interp.Tier
module Layout = Ppp_interp.Layout
module Instrument = Ppp_core.Instrument
module Score = Ppp_flow.Score
module Decision = Ppp_opt.Decision

type prepared_bench = { spec : Spec.bench; prep : Pipeline.prepared }

let prepare_all ?(scale = 1) ?names ?(cache = true) () =
  let selected =
    match names with
    | None -> Spec.all
    | Some ns -> List.map Spec.find ns
  in
  List.map
    (fun (spec : Spec.bench) ->
      let name = spec.Spec.bench_name in
      (* One session per benchmark: all four methods' evaluations share
         its artifacts. [cache:false] measures the uncached pipeline. *)
      let session = Ppp_session.Session.create ~enabled:cache ~name () in
      { spec; prep = Pipeline.prepare ~session ~name (spec.Spec.build ~scale) })
    selected

let is_int b = b.spec.Spec.kind = Spec.Int

let averages benches value =
  let avg l =
    match l with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let ints = List.filter is_int benches |> List.map value in
  let fps = List.filter (fun b -> not (is_int b)) benches |> List.map value in
  (avg ints, avg fps, avg (ints @ fps))

let hr ppf width = Format.fprintf ppf "%s@," (String.make width '-')

let table1 ppf benches =
  Format.fprintf ppf "@[<v>Table 1: dynamic path characteristics (original vs inlined+unrolled)@,";
  hr ppf 108;
  Format.fprintf ppf
    "%-9s | %12s %8s %8s | %12s %8s %8s | %7s %7s %8s@,"
    "bench" "dyn paths" "branches" "instrs" "dyn paths" "branches" "instrs"
    "inlined" "unroll" "speedup";
  hr ppf 108;
  let speedup pb =
    float_of_int pb.prep.Pipeline.orig_outcome.Interp.base_cost
    /. float_of_int pb.prep.Pipeline.base_outcome.Interp.base_cost
  in
  let row pb =
    let session = pb.prep.Pipeline.session in
    let o =
      Pipeline.path_stats_of_outcome ~session pb.prep.Pipeline.original
        pb.prep.Pipeline.orig_outcome
    in
    let n =
      Pipeline.path_stats_of_outcome ~session pb.prep.Pipeline.optimized
        pb.prep.Pipeline.base_outcome
    in
    Format.fprintf ppf
      "%-9s | %12d %8.2f %8.2f | %12d %8.2f %8.2f | %6.0f%% %7.2f %8.3f@,"
      pb.spec.Spec.bench_name o.Pipeline.dyn_paths o.Pipeline.avg_branches
      o.Pipeline.avg_instrs n.Pipeline.dyn_paths n.Pipeline.avg_branches
      n.Pipeline.avg_instrs
      (100.0 *. Ppp_opt.Inline.pct_dynamic_inlined pb.prep.Pipeline.inline_stats)
      pb.prep.Pipeline.unroll_stats.Ppp_opt.Unroll.avg_dynamic_factor
      (speedup pb)
  in
  List.iter row benches;
  hr ppf 108;
  let i, f, a = averages benches speedup in
  Format.fprintf ppf "averages: speedup INT %.3f  FP %.3f  overall %.3f@,@]@." i f a

let table2 ppf benches =
  Format.fprintf ppf "@[<v>Table 2: hot paths (thresholds 0.125%% and 1%% of program flow)@,";
  hr ppf 78;
  Format.fprintf ppf "%-9s | %9s | %6s %10s | %6s %10s@," "bench" "distinct"
    "hot" ">=0.125%" "hot" ">=1%";
  hr ppf 78;
  List.iter
    (fun pb ->
      let h1 = Pipeline.hot_stats pb.prep ~threshold:0.00125 in
      let h2 = Pipeline.hot_stats pb.prep ~threshold:0.01 in
      Format.fprintf ppf "%-9s | %9d | %6d %9.1f%% | %6d %9.1f%%@,"
        pb.spec.Spec.bench_name h1.Pipeline.distinct_paths h1.Pipeline.hot_count
        h1.Pipeline.hot_flow_pct h2.Pipeline.hot_count h2.Pipeline.hot_flow_pct)
    benches;
  hr ppf 78;
  let _, _, a1 = averages benches (fun pb -> (Pipeline.hot_stats pb.prep ~threshold:0.00125).Pipeline.hot_flow_pct) in
  let _, _, a2 = averages benches (fun pb -> (Pipeline.hot_stats pb.prep ~threshold:0.01).Pipeline.hot_flow_pct) in
  Format.fprintf ppf "average hot flow: %.1f%% (0.125%%)  %.1f%% (1%%)@,@]@." a1 a2

(* One evaluation pass shared by Figures 9, 10, 11 and 12. *)
type evals = {
  edge : Pipeline.evaluation;
  pp : Pipeline.evaluation;
  tpp : Pipeline.evaluation;
  ppp : Pipeline.evaluation;
}

let eval_cache : (string, evals) Hashtbl.t = Hashtbl.create 17

let evals_of pb =
  let key = pb.spec.Spec.bench_name in
  match Hashtbl.find_opt eval_cache key with
  | Some e -> e
  | None ->
      let e =
        {
          edge = Pipeline.evaluate_edge_profile pb.prep;
          pp = Pipeline.evaluate pb.prep Config.pp;
          tpp = Pipeline.evaluate pb.prep Config.tpp;
          ppp = Pipeline.evaluate pb.prep Config.ppp;
        }
      in
      Hashtbl.replace eval_cache key e;
      e

let fig9_10_11 ppf benches =
  Format.fprintf ppf
    "@[<v>Figures 9-11: accuracy / coverage / fraction of dynamic paths instrumented@,";
  hr ppf 100;
  Format.fprintf ppf
    "%-9s | %6s %6s %6s | %6s %6s %6s | %10s %10s %10s@," "bench" "edge"
    "TPP" "PPP" "edge" "TPP" "PPP" "PP(hash)" "TPP(hash)" "PPP(hash)";
  hr ppf 100;
  List.iter
    (fun pb ->
      let e = evals_of pb in
      let cell ev =
        Format.asprintf "%3.0f(%2.0f)%%"
          (100. *. ev.Pipeline.frac_paths_instrumented)
          (100. *. ev.Pipeline.frac_paths_hashed)
      in
      Format.fprintf ppf
        "%-9s | %5.0f%% %5.0f%% %5.0f%% | %5.0f%% %5.0f%% %5.0f%% | %10s %10s %10s@,"
        pb.spec.Spec.bench_name
        (100. *. e.edge.Pipeline.accuracy)
        (100. *. e.tpp.Pipeline.accuracy)
        (100. *. e.ppp.Pipeline.accuracy)
        (100. *. e.edge.Pipeline.coverage)
        (100. *. e.tpp.Pipeline.coverage)
        (100. *. e.ppp.Pipeline.coverage)
        (cell e.pp) (cell e.tpp) (cell e.ppp))
    benches;
  hr ppf 100;
  let acc sel = averages benches (fun pb -> (sel (evals_of pb)).Pipeline.accuracy) in
  let cov sel = averages benches (fun pb -> (sel (evals_of pb)).Pipeline.coverage) in
  let _, _, ae = acc (fun e -> e.edge) in
  let _, _, at = acc (fun e -> e.tpp) in
  let _, _, ap = acc (fun e -> e.ppp) in
  let _, _, ce = cov (fun e -> e.edge) in
  let _, _, ct = cov (fun e -> e.tpp) in
  let _, _, cp = cov (fun e -> e.ppp) in
  Format.fprintf ppf
    "average accuracy: edge %.0f%%  TPP %.0f%%  PPP %.0f%%   coverage: edge %.0f%%  TPP %.0f%%  PPP %.0f%%@,@]@."
    (100. *. ae) (100. *. at) (100. *. ap) (100. *. ce) (100. *. ct) (100. *. cp)

(* Layout evaluations are cached alongside [evals_of]: one per bench,
   derived from the same estimated profiles, reused by the text report
   and the JSON document. *)
let layout_cache : (string, Pipeline.layout_eval) Hashtbl.t = Hashtbl.create 17

let layout_of pb =
  let key = pb.spec.Spec.bench_name in
  match Hashtbl.find_opt layout_cache key with
  | Some le -> le
  | None ->
      let e = evals_of pb in
      let est ev = ev.Pipeline.estimated in
      let le =
        Pipeline.layout_eval pb.prep
          ~estimates:
            [
              ("edge", est e.edge);
              ("pp", est e.pp);
              ("tpp", est e.tpp);
              ("ppp", est e.ppp);
            ]
      in
      Hashtbl.replace layout_cache key le;
      le

let layout_report ppf benches =
  Format.fprintf ppf
    "@[<v>Layout: taken-transfer / locality proxy (lower score is better)@,";
  hr ppf 110;
  Format.fprintf ppf "%-9s | %9s %7s | %7s %7s %7s %7s %7s | %9s %5s@," "bench"
    "transfers" "taken%" "base" "oracle" "edge" "PPP" "loop" "sblocks" "drop";
  hr ppf 110;
  let imp_of name le =
    match
      List.find_opt (fun (n, _, _) -> String.equal n name) le.Pipeline.le_methods
    with
    | Some (_, px, _) -> px.Pipeline.lp_score
    | None -> le.Pipeline.le_base.Pipeline.lp_score
  in
  List.iter
    (fun pb ->
      let le = layout_of pb in
      let base = le.Pipeline.le_base in
      let cl = le.Pipeline.le_closed_loop in
      let taken_pct =
        if base.Pipeline.lp_transfers = 0 then 0.0
        else
          100.
          *. float_of_int base.Pipeline.lp_taken
          /. float_of_int base.Pipeline.lp_transfers
      in
      Format.fprintf ppf
        "%-9s | %9d %6.1f%% | %7.3f %7.3f %7.3f %7.3f %7.3f | %9d %5s@,"
        pb.spec.Spec.bench_name base.Pipeline.lp_transfers taken_pct
        base.Pipeline.lp_score le.Pipeline.le_oracle.Pipeline.lp_score
        (imp_of "edge" le) (imp_of "ppp" le) cl.Pipeline.cl_laid.Pipeline.lp_score
        cl.Pipeline.cl_routines_straightened
        (if cl.Pipeline.cl_taken_drop then "yes" else "no"))
    benches;
  hr ppf 110;
  let drops =
    List.length
      (List.filter
         (fun pb -> (layout_of pb).Pipeline.le_closed_loop.Pipeline.cl_taken_drop)
         benches)
  in
  let agg name =
    List.fold_left
      (fun acc pb ->
        let le = layout_of pb in
        acc
        +. Ppp_flow.Score.layout_improvement
             ~base:le.Pipeline.le_base.Pipeline.lp_score ~candidate:(imp_of name le))
      0.0 benches
  in
  Format.fprintf ppf
    "closed loop drops taken transfers on %d/%d benches; aggregate improvement \
     edge %.3f  PPP %.3f@,@]@."
    drops (List.length benches) (agg "edge") (agg "ppp")

(* {2 Sampling sweep (bursty sampled collection)}

   Accuracy vs overhead across sampling rates, PPP only: the full run is
   the reference, the measured truth the ceiling. Deterministic (fixed
   sweep seed, no wall clock), so the points can live in the sharded
   bench document and the baseline. *)

let sweep_denoms = [ 1; 4; 16; 64; 256 ]
let sweep_seed = 0x51ee9

type sample_point = {
  sp_denom : int;
  sp_overhead : float;
  sp_overlap_full : float;  (** weighted overlap vs the unsampled PPP estimate *)
  sp_overlap_truth : float;  (** weighted overlap vs the measured truth *)
  sp_tv_full : float;  (** total-variation distance vs the unsampled estimate *)
}

let sampling_cache : (string, sample_point list) Hashtbl.t = Hashtbl.create 17

let sampling_of pb =
  let key = pb.spec.Spec.bench_name in
  match Hashtbl.find_opt sampling_cache key with
  | Some pts -> pts
  | None ->
      let full = (evals_of pb).ppp in
      let q_full = Quality.of_estimates full.Pipeline.estimated in
      let q_truth =
        Quality.of_path_profile
          ~views:(Pipeline.views pb.prep)
          ~metric:Pipeline.metric
          (Pipeline.actual_profile pb.prep)
      in
      let pts =
        List.map
          (fun denom ->
            let ev =
              if denom <= 1 then full
              else
                Pipeline.evaluate
                  ~sampling:(Sampling.spec ~seed:sweep_seed ~denom ())
                  pb.prep Config.ppp
            in
            let q = Quality.of_estimates ev.Pipeline.estimated in
            {
              sp_denom = denom;
              sp_overhead = ev.Pipeline.overhead;
              sp_overlap_full = Quality.overlap q_full q;
              sp_overlap_truth = Quality.overlap q_truth q;
              sp_tv_full = Quality.total_divergence q_full q;
            })
          sweep_denoms
      in
      Hashtbl.replace sampling_cache key pts;
      pts

let sampling_report ppf benches =
  Format.fprintf ppf
    "@[<v>Sampling sweep: PPP under bursty collection (burst %d, overlap vs \
     the unsampled estimate)@,"
    Sampling.default_burst;
  hr ppf 100;
  Format.fprintf ppf "%-9s |" "bench";
  List.iter
    (fun d -> Format.fprintf ppf " %15s |" (Sampling.rate_to_string d))
    sweep_denoms;
  Format.fprintf ppf "@,";
  hr ppf 100;
  List.iter
    (fun pb ->
      Format.fprintf ppf "%-9s |" pb.spec.Spec.bench_name;
      List.iter
        (fun sp ->
          Format.fprintf ppf " %5.1f%% ov %4.1f%% |" sp.sp_overlap_full
            (100. *. sp.sp_overhead))
        (sampling_of pb);
      Format.fprintf ppf "@,")
    benches;
  hr ppf 100;
  List.iteri
    (fun i d ->
      let pts = List.map (fun pb -> List.nth (sampling_of pb) i) benches in
      let n = float_of_int (max 1 (List.length pts)) in
      let avg f = List.fold_left (fun a sp -> a +. f sp) 0.0 pts /. n in
      Format.fprintf ppf
        "rate %-5s: avg overlap vs full %5.1f%%  vs truth %5.1f%%  avg \
         overhead %5.2f%%@,"
        (Sampling.rate_to_string d)
        (avg (fun sp -> sp.sp_overlap_full))
        (avg (fun sp -> sp.sp_overlap_truth))
        (100. *. avg (fun sp -> sp.sp_overhead)))
    sweep_denoms;
  Format.fprintf ppf "@]@."

(* {2 Tiered execution vs the two-pass flow}

   One run with the tier controller armed (routines start instrumented,
   hot ones swap onto optimized re-lowerings mid-run) against the
   two-pass instrument-then-optimize flow the rest of the bench
   measures. Everything here is cost-model arithmetic plus deterministic
   VM runs, so the numbers are safe in the sharded document; wall-clock
   comparison lives in the bench driver and is opt-in like [timing]. *)

let tier_threshold = Tier.default_threshold

type tiered_stats = {
  tt_threshold : int;
  tt_routines : int;
  tt_swapped : int;  (** routines that tiered up during the run *)
  tt_reordered : int;  (** ... onto a non-source block order *)
  tt_untiered_instr_cost : int;
  tt_tiered_instr_cost : int;
  tt_saving : float;  (** fraction of instrumentation cost retired *)
  tt_base_score : float;  (** layout proxy, source order *)
  tt_swapped_score : float;  (** layout proxy under the installed orders *)
  tt_improvement : float;
  tt_instrumented : Instrument.t;  (** for the driver's wall-clock mode *)
}

let tiered_cache : (string, tiered_stats) Hashtbl.t = Hashtbl.create 17

let tiered_of pb =
  let key = pb.spec.Spec.bench_name in
  match Hashtbl.find_opt tiered_cache key with
  | Some ts -> ts
  | None ->
      let prep = pb.prep in
      let t = Pipeline.tiered_run ~threshold:tier_threshold prep Config.ppp in
      let inst = t.Pipeline.t_instrumented in
      let untiered =
        Interp.run
          ~config:
            {
              Interp.default_config with
              instrumentation = Some inst.Instrument.rt;
            }
          prep.Pipeline.optimized
      in
      let ep = Option.get prep.Pipeline.base_outcome.Interp.edge_profile in
      let installed : Layout.t = Hashtbl.create 7 in
      List.iter
        (fun (d : Tier.decision) ->
          match d.Tier.d_order with
          | Some o -> Hashtbl.replace installed d.Tier.d_routine o
          | None -> ())
        t.Pipeline.t_decisions;
      let score (pr : Layout.proxy) =
        Score.layout_score ~transfers:pr.Layout.transfers ~taken:pr.Layout.taken
          ~local:pr.Layout.local
      in
      let base_score = score (Layout.program_proxy prep.Pipeline.optimized ~ep) in
      let swapped_score =
        score (Layout.program_proxy ~layout:installed prep.Pipeline.optimized ~ep)
      in
      let untiered_cost = untiered.Interp.instr_cost in
      let tiered_cost = t.Pipeline.t_outcome.Interp.instr_cost in
      let ts =
        {
          tt_threshold = tier_threshold;
          tt_routines = List.length prep.Pipeline.optimized.Ppp_ir.Ir.routines;
          tt_swapped = List.length t.Pipeline.t_decisions;
          tt_reordered =
            List.length
              (List.filter
                 (fun (d : Tier.decision) -> d.Tier.d_reordered)
                 t.Pipeline.t_decisions);
          tt_untiered_instr_cost = untiered_cost;
          tt_tiered_instr_cost = tiered_cost;
          tt_saving =
            (if untiered_cost = 0 then 0.0
             else
               1.0
               -. (float_of_int tiered_cost /. float_of_int untiered_cost));
          tt_base_score = base_score;
          tt_swapped_score = swapped_score;
          tt_improvement =
            Score.layout_improvement ~base:base_score ~candidate:swapped_score;
          tt_instrumented = inst;
        }
      in
      Hashtbl.replace tiered_cache key ts;
      ts

let tiered_report ppf benches =
  Format.fprintf ppf
    "@[<v>Tiered execution: one run, hot routines swap mid-run (threshold %d \
     trips)@,"
    tier_threshold;
  hr ppf 96;
  Format.fprintf ppf "%-9s | %9s %9s | %12s %12s %7s | %7s %7s@," "bench"
    "swapped" "reorder" "instr cost" "tiered" "saved" "base" "swapped";
  hr ppf 96;
  List.iter
    (fun pb ->
      let ts = tiered_of pb in
      Format.fprintf ppf
        "%-9s | %4d/%-4d %9d | %12d %12d %6.1f%% | %7.3f %7.3f@,"
        pb.spec.Spec.bench_name ts.tt_swapped ts.tt_routines ts.tt_reordered
        ts.tt_untiered_instr_cost ts.tt_tiered_instr_cost
        (100. *. ts.tt_saving) ts.tt_base_score ts.tt_swapped_score)
    benches;
  hr ppf 96;
  let wins =
    List.length
      (List.filter
         (fun pb ->
           let ts = tiered_of pb in
           ts.tt_tiered_instr_cost < ts.tt_untiered_instr_cost)
         benches)
  in
  Format.fprintf ppf
    "tiering retires instrumentation cost on %d/%d benches@,@]@." wins
    (List.length benches)

(* {2 Drift sweep: the re-optimization loop on a fleet's profile store}

   The full-instrumentation loop hands each generation the previous
   generation's pristine profile; the drift loop hands it the decayed
   merge of every generation's *sampled* dump. The number that matters
   is decision churn: how much placement stability costs when the
   profile store is what a fleet actually ships. Deterministic (fixed
   seed, fixed decay), so safe under -j and in the baseline. *)

let drift_iterations = 3
let drift_decay = 0.5
let drift_denom = 16

type drift_gen = {
  dg_gen : int;  (** 2-based: generation 1's diff is vacuous *)
  dg_full_stability : float;
  dg_drift_stability : float;
  dg_full_overhead : float;
  dg_drift_overhead : float;
  dg_drift_matched : float;
      (** count mass surviving the decayed merge + stale matching *)
}

type drift_stats = {
  dr_gens : drift_gen list;
  dr_full_stability : float;
  dr_drift_stability : float;
  dr_churn_gap : float;  (** full - drift at generation 2 *)
}

let drift_cache : (string, drift_stats) Hashtbl.t = Hashtbl.create 17

let drift_flags =
  { Pipeline.default_flags with Pipeline.superblocks = true; layout = true }

let drift_of pb =
  let key = pb.spec.Spec.bench_name in
  match Hashtbl.find_opt drift_cache key with
  | Some ds -> ds
  | None ->
      let name = pb.spec.Spec.bench_name in
      let p = pb.prep.Pipeline.original in
      let full =
        Pipeline.reoptimize ~flags:drift_flags ~iterations:drift_iterations
          ~name p
      in
      let drift =
        Pipeline.reoptimize ~flags:drift_flags ~iterations:drift_iterations
          ~sampling:(Sampling.spec ~seed:sweep_seed ~denom:drift_denom ())
          ~decay:drift_decay ~name p
      in
      let gens =
        List.filter_map
          (fun (f, d) ->
            let open Pipeline in
            if f.gen < 2 then None
            else
              Some
                {
                  dg_gen = f.gen;
                  dg_full_stability = Decision.stability f.decision_diff;
                  dg_drift_stability = Decision.stability d.decision_diff;
                  dg_full_overhead = f.instr_overhead;
                  dg_drift_overhead = d.instr_overhead;
                  dg_drift_matched = d.matched_fraction;
                })
          (List.combine full drift)
      in
      (* The headline is generation 2: both loops re-optimize the same
         starting program there, so the stability difference is purely
         the profile store's doing. Later generations re-optimize
         already-optimized programs whose decision keys have all moved,
         which depresses stability structurally in both loops alike —
         reported in [dr_gens], not summarized. *)
      let at_gen2 f =
        match gens with g :: _ -> f g | [] -> 1.0
      in
      let full2 = at_gen2 (fun g -> g.dg_full_stability) in
      let drift2 = at_gen2 (fun g -> g.dg_drift_stability) in
      let ds =
        {
          dr_gens = gens;
          dr_full_stability = full2;
          dr_drift_stability = drift2;
          dr_churn_gap = full2 -. drift2;
        }
      in
      Hashtbl.replace drift_cache key ds;
      ds

let drift_report ppf benches =
  Format.fprintf ppf
    "@[<v>Drift sweep: decision stability, pristine profiles vs a sampled \
     (1/%d) store decayed at %.2f@,"
    drift_denom drift_decay;
  hr ppf 92;
  Format.fprintf ppf "%-9s |" "bench";
  List.iter
    (fun g -> Format.fprintf ppf " gen %d: %9s |" g "full/drift")
    (List.init (drift_iterations - 1) (fun i -> i + 2));
  Format.fprintf ppf " %9s@," "gap";
  hr ppf 92;
  List.iter
    (fun pb ->
      let ds = drift_of pb in
      Format.fprintf ppf "%-9s |" pb.spec.Spec.bench_name;
      List.iter
        (fun g ->
          Format.fprintf ppf "   %5.1f%%/%5.1f%% |"
            (100. *. g.dg_full_stability)
            (100. *. g.dg_drift_stability))
        ds.dr_gens;
      Format.fprintf ppf " %8.1f%%@," (100. *. ds.dr_churn_gap))
    benches;
  hr ppf 92;
  let n = float_of_int (max 1 (List.length benches)) in
  let avg f = List.fold_left (fun a pb -> a +. f (drift_of pb)) 0.0 benches /. n in
  Format.fprintf ppf
    "avg gen-2 stability: full %.1f%%  drift %.1f%%  (avg gap %.1f%%)@,@]@."
    (100. *. avg (fun d -> d.dr_full_stability))
    (100. *. avg (fun d -> d.dr_drift_stability))
    (100. *. avg (fun d -> d.dr_churn_gap))

let fig12 ppf benches =
  Format.fprintf ppf "@[<v>Figure 12: runtime overhead of path profiling@,";
  hr ppf 50;
  Format.fprintf ppf "%-9s | %7s %7s %7s@," "bench" "PP" "TPP" "PPP";
  hr ppf 50;
  List.iter
    (fun pb ->
      let e = evals_of pb in
      Format.fprintf ppf "%-9s | %6.1f%% %6.1f%% %6.1f%%@," pb.spec.Spec.bench_name
        (100. *. e.pp.Pipeline.overhead)
        (100. *. e.tpp.Pipeline.overhead)
        (100. *. e.ppp.Pipeline.overhead))
    benches;
  hr ppf 50;
  let ov sel = averages benches (fun pb -> (sel (evals_of pb)).Pipeline.overhead) in
  let ppi, ppf_, ppa = ov (fun e -> e.pp) in
  let ti, tf, ta = ov (fun e -> e.tpp) in
  let pi, pf, pa = ov (fun e -> e.ppp) in
  Format.fprintf ppf "INT avg: PP %.1f%% TPP %.1f%% PPP %.1f%%@," (100. *. ppi)
    (100. *. ti) (100. *. pi);
  Format.fprintf ppf "FP  avg: PP %.1f%% TPP %.1f%% PPP %.1f%%@," (100. *. ppf_)
    (100. *. tf) (100. *. pf);
  Format.fprintf ppf "all avg: PP %.1f%% TPP %.1f%% PPP %.1f%%@,@]@." (100. *. ppa)
    (100. *. ta) (100. *. pa)

let fig13 ppf benches =
  Format.fprintf ppf
    "@[<v>Figure 13: leave-one-out ablation, overhead normalized to TPP@,";
  (* The paper selects benchmarks where PPP improves on TPP by more than
     5% (of TPP's overhead). *)
  let selected =
    List.filter
      (fun pb ->
        let e = evals_of pb in
        e.tpp.Pipeline.overhead > 0.0
        && e.ppp.Pipeline.overhead < 0.95 *. e.tpp.Pipeline.overhead)
      benches
  in
  hr ppf 88;
  Format.fprintf ppf "%-9s | %6s | %6s %6s %6s %6s %6s %6s@," "bench" "PPP"
    "-SAC" "-FP" "-Push" "-SPN" "-LC" "(TPP=1)";
  hr ppf 88;
  let row pb variant =
    let e = evals_of pb in
    let base = e.tpp.Pipeline.overhead in
    let norm cfg =
      let ev = Pipeline.evaluate pb.prep cfg in
      if base = 0.0 then 1.0 else ev.Pipeline.overhead /. base
    in
    Format.fprintf ppf "%-9s | %6.2f | %6.2f %6.2f %6.2f %6.2f %6.2f@,"
      pb.spec.Spec.bench_name
      (if base = 0.0 then 1.0 else e.ppp.Pipeline.overhead /. base)
      (norm (variant Config.SAC))
      (norm (variant Config.FP))
      (norm (variant Config.Push))
      (norm (variant Config.SPN))
      (norm (variant Config.LC))
  in
  List.iter (fun pb -> row pb Config.ppp_without) selected;
  hr ppf 88;
  Format.fprintf ppf
    "(values < 1 beat TPP; larger deltas vs the PPP column mean the technique matters)@,@,";
  Format.fprintf ppf
    "one-at-a-time (Section 8.3's closing paragraph): TPP plus a single technique@,";
  hr ppf 88;
  Format.fprintf ppf "%-9s | %6s | %6s %6s %6s %6s %6s@," "bench" "PPP"
    "+SAC" "+FP" "+Push" "+SPN" "+LC";
  hr ppf 88;
  List.iter (fun pb -> row pb Config.tpp_plus) selected;
  hr ppf 88;
  Format.fprintf ppf "@]@."

(* {2 Machine-readable output: BENCH_*.json} *)

module J = Ppp_obs.Jsonx

let eval_json (ev : Pipeline.evaluation) =
  J.Obj
    [
      ("overhead", J.Float ev.Pipeline.overhead);
      ("accuracy", J.Float ev.Pipeline.accuracy);
      ("coverage", J.Float ev.Pipeline.coverage);
      ("frac_paths_instrumented", J.Float ev.Pipeline.frac_paths_instrumented);
      ("frac_paths_hashed", J.Float ev.Pipeline.frac_paths_hashed);
      ("static_actions", J.Int ev.Pipeline.static_actions);
      ("routines_instrumented", J.Int ev.Pipeline.routines_instrumented);
      ("routines_total", J.Int ev.Pipeline.routines_total);
    ]

let layout_proxy_json ?improvement (px : Pipeline.layout_proxy) =
  J.Obj
    ([
       ("transfers", J.Int px.Pipeline.lp_transfers);
       ("taken", J.Int px.Pipeline.lp_taken);
       ("local", J.Int px.Pipeline.lp_local);
       ("score", J.Float px.Pipeline.lp_score);
     ]
    @
    match improvement with
    | None -> []
    | Some f -> [ ("improvement", J.Float f) ])

(* Deterministic (cost model + one fixed-config VM run), so it lives
   unconditionally in the bench document: sharded runs stay byte-identical
   at every -j. *)
let layout_json pb =
  let le = layout_of pb in
  let cl = le.Pipeline.le_closed_loop in
  J.Obj
    [
      ("base", layout_proxy_json le.Pipeline.le_base);
      ( "oracle",
        layout_proxy_json ~improvement:le.Pipeline.le_oracle_improvement
          le.Pipeline.le_oracle );
      ( "methods",
        J.Obj
          (List.map
             (fun (n, px, imp) -> (n, layout_proxy_json ~improvement:imp px))
             le.Pipeline.le_methods) );
      ( "closed_loop",
        J.Obj
          [
            ("straightened", J.Int cl.Pipeline.cl_routines_straightened);
            ("duplicated", J.Int cl.Pipeline.cl_duplicated);
            ("merged", J.Int cl.Pipeline.cl_merged);
            ("mismatches", J.Int cl.Pipeline.cl_mismatches);
            ("base", layout_proxy_json cl.Pipeline.cl_base);
            ("laid", layout_proxy_json cl.Pipeline.cl_laid);
            ("taken_drop", J.Bool cl.Pipeline.cl_taken_drop);
            ("improvement", J.Float cl.Pipeline.cl_improvement);
          ] );
    ]

(* Deterministic (fixed sweep seed), so sampling objects are safe in the
   sharded document and the baseline, but opt-in: the sweep runs four
   extra instrumented evaluations per benchmark. *)
let sampling_json pb =
  let pts = sampling_of pb in
  J.Obj
    [
      ("burst", J.Int Sampling.default_burst);
      ("seed", J.Int sweep_seed);
      ( "rates",
        J.Arr
          (List.map
             (fun sp ->
               J.Obj
                 [
                   ("rate", J.Str (Sampling.rate_to_string sp.sp_denom));
                   ("denom", J.Int sp.sp_denom);
                   ("overhead", J.Float sp.sp_overhead);
                   ("overlap_vs_full", J.Float sp.sp_overlap_full);
                   ("overlap_vs_truth", J.Float sp.sp_overlap_truth);
                   ("tv_vs_full", J.Float sp.sp_tv_full);
                 ])
             pts) );
    ]

(* Deterministic (cost model + VM runs), so tiered objects are safe in
   the sharded document; opt-in because the tiered run plus the untiered
   comparison run cost two extra instrumented executions. [timing] adds
   the driver's wall-clock single-run-vs-two-pass measurement when it
   ran (never under -j). *)
let tiered_json ?(timing = fun _ -> None) pb =
  let ts = tiered_of pb in
  let timing_fields =
    match timing pb.spec.Spec.bench_name with
    | None -> []
    | Some t -> [ ("timing", t) ]
  in
  J.Obj
    ([
       ("threshold", J.Int ts.tt_threshold);
       ("routines", J.Int ts.tt_routines);
       ("swapped", J.Int ts.tt_swapped);
       ("reordered", J.Int ts.tt_reordered);
       ("untiered_instr_cost", J.Int ts.tt_untiered_instr_cost);
       ("tiered_instr_cost", J.Int ts.tt_tiered_instr_cost);
       ("instr_saving", J.Float ts.tt_saving);
       ( "layout",
         J.Obj
           [
             ("base_score", J.Float ts.tt_base_score);
             ("swapped_score", J.Float ts.tt_swapped_score);
             ("improvement", J.Float ts.tt_improvement);
           ] );
     ]
    @ timing_fields)

(* Deterministic (fixed seed and decay), so drift objects are safe in
   the sharded document and the baseline; opt-in because each one runs
   two full re-optimization loops. *)
let drift_json pb =
  let ds = drift_of pb in
  J.Obj
    [
      ("iterations", J.Int drift_iterations);
      ("decay", J.Float drift_decay);
      ("denom", J.Int drift_denom);
      ("seed", J.Int sweep_seed);
      ( "generations",
        J.Arr
          (List.map
             (fun g ->
               J.Obj
                 [
                   ("gen", J.Int g.dg_gen);
                   ("full_stability", J.Float g.dg_full_stability);
                   ("drift_stability", J.Float g.dg_drift_stability);
                   ("full_overhead", J.Float g.dg_full_overhead);
                   ("drift_overhead", J.Float g.dg_drift_overhead);
                   ("drift_matched", J.Float g.dg_drift_matched);
                 ])
             ds.dr_gens) );
      ("full_stability", J.Float ds.dr_full_stability);
      ("drift_stability", J.Float ds.dr_drift_stability);
      ("churn_gap", J.Float ds.dr_churn_gap);
    ]

let bench_json_one ?(timing = fun _ -> None) ?(throughput = fun _ -> None)
    ?(prepare = false) ?(sampling = false) ?(tiered = false)
    ?tiered_timing ?(drift = false) pb =
  let e = evals_of pb in
  let prep = pb.prep in
  let timing_fields =
    match timing pb.spec.Spec.bench_name with
    | None -> []
    | Some t -> [ ("timing", t) ]
  in
  let throughput_fields =
    match throughput pb.spec.Spec.bench_name with
    | None -> []
    | Some t -> [ ("throughput", t) ]
  in
  (* Wall-clock, so opt-in only: a sharded run must stay byte-identical
     at every -j and never includes it. *)
  let prepare_fields =
    if not prepare then []
    else
      [
        ( "prepare",
          J.Obj
            [
              ("total_ms", J.Float (Pipeline.prepare_ms prep));
              ( "phases",
                J.Obj
                  (List.map
                     (fun (phase, ms) -> (phase, J.Float ms))
                     prep.Pipeline.phase_ms) );
            ] );
      ]
  in
  J.Obj
    ([
       ("name", J.Str pb.spec.Spec.bench_name);
       ( "kind",
         J.Str (match pb.spec.Spec.kind with Spec.Int -> "int" | Spec.Fp -> "fp")
       );
       ("dyn_instrs", J.Int prep.Pipeline.base_outcome.Interp.dyn_instrs);
       ("dyn_paths", J.Int prep.Pipeline.base_outcome.Interp.dyn_paths);
       ( "methods",
         J.Obj
           [
             ("edge", eval_json e.edge);
             ("pp", eval_json e.pp);
             ("tpp", eval_json e.tpp);
             ("ppp", eval_json e.ppp);
           ] );
       ("layout", layout_json pb);
     ]
    @ (if sampling then [ ("sampling", sampling_json pb) ] else [])
    @ (if tiered then [ ("tiered", tiered_json ?timing:tiered_timing pb) ]
       else [])
    @ (if drift then [ ("drift", drift_json pb) ] else [])
    @ timing_fields @ throughput_fields @ prepare_fields)

let bench_json_wrap ?(scale = 1) ?seed rows =
  let seed_field = match seed with None -> [] | Some s -> [ ("seed", J.Int s) ] in
  J.Obj
    ([ ("schema", J.Str "ppp-bench/1"); ("scale", J.Int scale) ]
    @ seed_field
    @ [ ("benchmarks", J.Arr rows) ])

let bench_json ?scale ?timing ?throughput ?sampling ?tiered ?drift benches =
  bench_json_wrap ?scale
    (List.map (bench_json_one ?timing ?throughput ?sampling ?tiered ?drift)
       benches)

let section8_1 ppf benches =
  let _, _, acc = averages benches (fun pb -> (evals_of pb).edge.Pipeline.accuracy) in
  let lowest =
    List.fold_left
      (fun m pb -> min m (evals_of pb).edge.Pipeline.accuracy)
      1.0 benches
  in
  let _, _, cov = averages benches (fun pb -> (evals_of pb).edge.Pipeline.coverage) in
  Format.fprintf ppf
    "@[<v>Section 8.1 prose numbers:@,\
     edge-profile accuracy at predicting hot paths: %.0f%% on average, as low as %.0f%%@,\
     paths attributable from an edge profile (definite-flow coverage): %.0f%%@,@]@."
    (100. *. acc) (100. *. lowest) (100. *. cov)
