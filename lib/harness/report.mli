(** Text rendering of the paper's tables and figures.

    Each function prints one table or figure's data in rows matching the
    paper's layout, with INT / FP / overall averages where the paper has
    them. All take the prepared benchmarks (see {!Pipeline.prepare}), so
    one expensive preparation can feed every report. *)

type prepared_bench = {
  spec : Ppp_workloads.Spec.bench;
  prep : Pipeline.prepared;
}

val prepare_all :
  ?scale:int -> ?names:string list -> ?cache:bool -> unit -> prepared_bench list
(** Build and prepare the (selected) benchmarks; default scale 1 and all
    benchmarks. Each benchmark gets its own {!Ppp_session.Session}
    (reachable as [prep.session]) shared by every later evaluation;
    [cache:false] runs with disabled sessions — same results, no
    memoization. *)

type evals = {
  edge : Pipeline.evaluation;
  pp : Pipeline.evaluation;
  tpp : Pipeline.evaluation;
  ppp : Pipeline.evaluation;
}
(** One full evaluation pass (edge profiling plus the three path
    profilers) for a benchmark. *)

val evals_of : prepared_bench -> evals
(** Evaluate a benchmark under every method, memoized per benchmark
    name; Figures 9–13 and the JSON output all share this pass. *)

val layout_of : prepared_bench -> Pipeline.layout_eval
(** The benchmark's {!Pipeline.layout_eval} — source order vs the oracle
    layout vs each method's estimated layout, plus the closed
    superblock+layout loop — derived from the {!evals_of} estimates and
    memoized per benchmark name. *)

(** {2 Sampling sweep}

    Accuracy vs overhead of PPP under bursty sampled collection
    ({!Ppp_interp.Sampling}), swept over rates 1, 1/4, 1/16, 1/64 and
    1/256 at the default burst with a fixed seed — fully deterministic,
    so the points are safe in the sharded bench document and the
    baseline. *)

val sweep_denoms : int list
(** The swept rate denominators, ascending: [1; 4; 16; 64; 256]. *)

type sample_point = {
  sp_denom : int;
  sp_overhead : float;  (** instrumented overhead at this rate *)
  sp_overlap_full : float;
      (** weighted overlap (0–100) vs the unsampled PPP estimate *)
  sp_overlap_truth : float;
      (** weighted overlap (0–100) vs the measured truth *)
  sp_tv_full : float;
      (** total-variation distance (0–1) vs the unsampled estimate *)
}

val sampling_of : prepared_bench -> sample_point list
(** One point per {!sweep_denoms} entry, memoized per benchmark name.
    The rate-1 point reuses the {!evals_of} PPP evaluation, so its
    overlaps are exactly 100. *)

val sampling_report : Format.formatter -> prepared_bench list -> unit
(** Per-benchmark overlap/overhead at every swept rate, with per-rate
    averages — the accuracy-vs-overhead curve of the sampled collector. *)

val bench_json :
  ?scale:int ->
  ?timing:(string -> Ppp_obs.Jsonx.t option) ->
  ?throughput:(string -> Ppp_obs.Jsonx.t option) ->
  ?sampling:bool ->
  prepared_bench list ->
  Ppp_obs.Jsonx.t
(** The machine-readable benchmark record written to [BENCH_*.json]:
    per-benchmark overhead / accuracy / coverage (and the secondary
    statistics) for every method, plus whatever [timing] returns for the
    benchmark (wall-clock results, when the timing action ran) and
    whatever [throughput] returns (per-engine Minstr/s, when the
    [--throughput] mode ran). *)

val sampling_json : prepared_bench -> Ppp_obs.Jsonx.t
(** The benchmark's sampling-sweep object: burst, seed, and one record
    per swept rate (rate, denom, overhead, overlap_vs_full,
    overlap_vs_truth, tv_vs_full). *)

val bench_json_one :
  ?timing:(string -> Ppp_obs.Jsonx.t option) ->
  ?throughput:(string -> Ppp_obs.Jsonx.t option) ->
  ?prepare:bool ->
  ?sampling:bool ->
  prepared_bench ->
  Ppp_obs.Jsonx.t
(** One benchmark's row of {!bench_json} — what a shard worker computes
    and sends back when the harness runs under [-j]. [prepare] (default
    [false]) additionally records the preparation wall-clock per phase
    ({!Pipeline.prepared.phase_ms}); it is opt-in because wall-clock is
    nondeterministic, and sharded runs never include it so their
    document stays byte-identical at every [-j]. [sampling] (default
    [false]) adds the {!sampling_json} sweep — deterministic, so safe
    under [-j], but opt-in because it costs four extra instrumented
    evaluations. *)

val bench_json_wrap : ?scale:int -> ?seed:int -> Ppp_obs.Jsonx.t list -> Ppp_obs.Jsonx.t
(** Assemble {!bench_json_one} rows (in benchmark order) into the full
    document; [seed] records the PRNG seed a sharded run derived its
    per-item seeds from. *)

val table1 : Format.formatter -> prepared_bench list -> unit
(** Dynamic path characteristics with and without inlining and
    unrolling. *)

val table2 : Format.formatter -> prepared_bench list -> unit
(** Distinct paths; hot paths and their flow at the 0.125% and 1%
    thresholds. *)

val fig9_10_11 : Format.formatter -> prepared_bench list -> unit
(** Accuracy (Figure 9), coverage (Figure 10) and fraction of dynamic
    paths instrumented with the hashed portion (Figure 11) for edge
    profiling, PP, TPP and PPP — they share one evaluation pass, so they
    are printed together. *)

val fig12 : Format.formatter -> prepared_bench list -> unit
(** Runtime overheads of PP, TPP and PPP. *)

val layout_report : Format.formatter -> prepared_bench list -> unit
(** Per-benchmark taken-transfer / locality proxy scores: source order,
    the oracle layout, the layouts edge profiling and PPP estimate, and
    the closed superblock+layout loop, with the drop count and aggregate
    improvements the bench gate floors. *)

val fig13 : Format.formatter -> prepared_bench list -> unit
(** Leave-one-out ablation of PPP's techniques, normalized to TPP, on
    the benchmarks where PPP improves on TPP by more than 5% of TPP's
    overhead (the paper's selection rule). *)

val section8_1 : Format.formatter -> prepared_bench list -> unit
(** The prose numbers of Section 8.1: average edge-profile accuracy and
    attribution (coverage). *)
