(** Text rendering of the paper's tables and figures.

    Each function prints one table or figure's data in rows matching the
    paper's layout, with INT / FP / overall averages where the paper has
    them. All take the prepared benchmarks (see {!Pipeline.prepare}), so
    one expensive preparation can feed every report. *)

type prepared_bench = {
  spec : Ppp_workloads.Spec.bench;
  prep : Pipeline.prepared;
}

val prepare_all :
  ?scale:int -> ?names:string list -> ?cache:bool -> unit -> prepared_bench list
(** Build and prepare the (selected) benchmarks; default scale 1 and all
    benchmarks. Each benchmark gets its own {!Ppp_session.Session}
    (reachable as [prep.session]) shared by every later evaluation;
    [cache:false] runs with disabled sessions — same results, no
    memoization. *)

type evals = {
  edge : Pipeline.evaluation;
  pp : Pipeline.evaluation;
  tpp : Pipeline.evaluation;
  ppp : Pipeline.evaluation;
}
(** One full evaluation pass (edge profiling plus the three path
    profilers) for a benchmark. *)

val evals_of : prepared_bench -> evals
(** Evaluate a benchmark under every method, memoized per benchmark
    name; Figures 9–13 and the JSON output all share this pass. *)

val layout_of : prepared_bench -> Pipeline.layout_eval
(** The benchmark's {!Pipeline.layout_eval} — source order vs the oracle
    layout vs each method's estimated layout, plus the closed
    superblock+layout loop — derived from the {!evals_of} estimates and
    memoized per benchmark name. *)

(** {2 Sampling sweep}

    Accuracy vs overhead of PPP under bursty sampled collection
    ({!Ppp_interp.Sampling}), swept over rates 1, 1/4, 1/16, 1/64 and
    1/256 at the default burst with a fixed seed — fully deterministic,
    so the points are safe in the sharded bench document and the
    baseline. *)

val sweep_denoms : int list
(** The swept rate denominators, ascending: [1; 4; 16; 64; 256]. *)

type sample_point = {
  sp_denom : int;
  sp_overhead : float;  (** instrumented overhead at this rate *)
  sp_overlap_full : float;
      (** weighted overlap (0–100) vs the unsampled PPP estimate *)
  sp_overlap_truth : float;
      (** weighted overlap (0–100) vs the measured truth *)
  sp_tv_full : float;
      (** total-variation distance (0–1) vs the unsampled estimate *)
}

val sampling_of : prepared_bench -> sample_point list
(** One point per {!sweep_denoms} entry, memoized per benchmark name.
    The rate-1 point reuses the {!evals_of} PPP evaluation, so its
    overlaps are exactly 100. *)

val sampling_report : Format.formatter -> prepared_bench list -> unit
(** Per-benchmark overlap/overhead at every swept rate, with per-rate
    averages — the accuracy-vs-overhead curve of the sampled collector. *)

(** {2 Tiered execution vs the two-pass flow}

    One run with the {!Ppp_interp.Tier} controller armed — routines
    start instrumented, hot ones swap onto optimized re-lowerings
    mid-run — against the two-pass instrument-then-optimize flow the
    rest of the bench measures. Deterministic except for the driver's
    opt-in wall-clock comparison. *)

val tier_threshold : int
(** Trip threshold the bench arms the controller with
    ({!Ppp_interp.Tier.default_threshold}). *)

type tiered_stats = {
  tt_threshold : int;
  tt_routines : int;
  tt_swapped : int;  (** routines that tiered up during the run *)
  tt_reordered : int;  (** ... onto a non-source block order *)
  tt_untiered_instr_cost : int;
      (** instrumentation cost of the same run without the controller *)
  tt_tiered_instr_cost : int;
  tt_saving : float;  (** fraction of instrumentation cost retired *)
  tt_base_score : float;
      (** {!Ppp_interp.Layout.program_proxy} score in source order *)
  tt_swapped_score : float;  (** ... under the orders the swaps installed *)
  tt_improvement : float;
  tt_instrumented : Ppp_core.Instrument.t;
      (** the shared instrumentation, so the driver's wall-clock mode
          times exactly the compared runs *)
}

val tiered_of : prepared_bench -> tiered_stats
(** Execute the tiered run and the untiered instrumented run (sharing
    one instrumentation through the session), score the installed block
    orders with the i-cache proxy, and memoize per benchmark name. *)

val tiered_report : Format.formatter -> prepared_bench list -> unit
(** Per-benchmark swap counts, instrumentation-cost savings and layout
    proxy scores of the tiered run. *)

val tiered_json :
  ?timing:(string -> Ppp_obs.Jsonx.t option) ->
  prepared_bench ->
  Ppp_obs.Jsonx.t
(** The benchmark's tiered object (threshold, swap counts, instr-cost
    savings, layout scores), plus whatever [timing] returns — the
    driver's tiered-vs-two-pass wall clock, never present under [-j]. *)

(** {2 Drift sweep}

    The re-optimization loop fed a fleet's profile store — every
    generation's sampled dump merged with exponential age decay
    ({!Pipeline.reoptimize}'s drift mode) — against the same loop on
    pristine full-instrumentation hand-offs. The reported number is
    {!Ppp_opt.Decision.stability} churn: what placement stability costs
    when profiles are sampled and stale. Deterministic (fixed seed and
    decay). *)

val drift_iterations : int
(** Generations per loop (3). *)

val drift_decay : float
(** Exponential age weight of the drift store's merge (0.5). *)

val drift_denom : int
(** Sampling rate denominator of the drift loop's collector (16). *)

type drift_gen = {
  dg_gen : int;  (** 2-based: generation 1's diff is vacuous *)
  dg_full_stability : float;
  dg_drift_stability : float;
  dg_full_overhead : float;
  dg_drift_overhead : float;
  dg_drift_matched : float;
      (** count mass surviving the decayed merge + stale matching *)
}

type drift_stats = {
  dr_gens : drift_gen list;
  dr_full_stability : float;  (** at generation 2 — see {!drift_of} *)
  dr_drift_stability : float;
  dr_churn_gap : float;  (** full - drift at generation 2 *)
}

val drift_of : prepared_bench -> drift_stats
(** Run both loops ({!drift_iterations} generations each, superblocks
    and layout on) from the benchmark's original program and compare
    per-generation decision stability; memoized per benchmark name.
    The summary fields read generation 2, where both loops re-optimize
    the same starting program and the stability difference is purely
    the profile store's doing; later generations (reported in
    [dr_gens]) re-optimize already-optimized programs whose decision
    keys have all moved, depressing stability structurally in both
    loops alike. *)

val drift_report : Format.formatter -> prepared_bench list -> unit
(** Per-benchmark stability at every generation of both loops, with the
    churn gap and fleet averages. *)

val drift_json : prepared_bench -> Ppp_obs.Jsonx.t
(** The benchmark's drift object: loop parameters, per-generation
    stability/overhead/matched-fraction pairs, and the generation-2
    stability summary the bench floor reads. *)

val bench_json :
  ?scale:int ->
  ?timing:(string -> Ppp_obs.Jsonx.t option) ->
  ?throughput:(string -> Ppp_obs.Jsonx.t option) ->
  ?sampling:bool ->
  ?tiered:bool ->
  ?drift:bool ->
  prepared_bench list ->
  Ppp_obs.Jsonx.t
(** The machine-readable benchmark record written to [BENCH_*.json]:
    per-benchmark overhead / accuracy / coverage (and the secondary
    statistics) for every method, plus whatever [timing] returns for the
    benchmark (wall-clock results, when the timing action ran) and
    whatever [throughput] returns (per-engine Minstr/s, when the
    [--throughput] mode ran). *)

val sampling_json : prepared_bench -> Ppp_obs.Jsonx.t
(** The benchmark's sampling-sweep object: burst, seed, and one record
    per swept rate (rate, denom, overhead, overlap_vs_full,
    overlap_vs_truth, tv_vs_full). *)

val bench_json_one :
  ?timing:(string -> Ppp_obs.Jsonx.t option) ->
  ?throughput:(string -> Ppp_obs.Jsonx.t option) ->
  ?prepare:bool ->
  ?sampling:bool ->
  ?tiered:bool ->
  ?tiered_timing:(string -> Ppp_obs.Jsonx.t option) ->
  ?drift:bool ->
  prepared_bench ->
  Ppp_obs.Jsonx.t
(** One benchmark's row of {!bench_json} — what a shard worker computes
    and sends back when the harness runs under [-j]. [prepare] (default
    [false]) additionally records the preparation wall-clock per phase
    ({!Pipeline.prepared.phase_ms}); it is opt-in because wall-clock is
    nondeterministic, and sharded runs never include it so their
    document stays byte-identical at every [-j]. [sampling] (default
    [false]) adds the {!sampling_json} sweep — deterministic, so safe
    under [-j], but opt-in because it costs four extra instrumented
    evaluations. [tiered] (default [false]) adds the {!tiered_json}
    object (with [tiered_timing]'s wall clock when the driver measured
    it — never under [-j]); [drift] (default [false]) adds the
    {!drift_json} object. Both are deterministic and [-j]-safe. *)

val bench_json_wrap : ?scale:int -> ?seed:int -> Ppp_obs.Jsonx.t list -> Ppp_obs.Jsonx.t
(** Assemble {!bench_json_one} rows (in benchmark order) into the full
    document; [seed] records the PRNG seed a sharded run derived its
    per-item seeds from. *)

val table1 : Format.formatter -> prepared_bench list -> unit
(** Dynamic path characteristics with and without inlining and
    unrolling. *)

val table2 : Format.formatter -> prepared_bench list -> unit
(** Distinct paths; hot paths and their flow at the 0.125% and 1%
    thresholds. *)

val fig9_10_11 : Format.formatter -> prepared_bench list -> unit
(** Accuracy (Figure 9), coverage (Figure 10) and fraction of dynamic
    paths instrumented with the hashed portion (Figure 11) for edge
    profiling, PP, TPP and PPP — they share one evaluation pass, so they
    are printed together. *)

val fig12 : Format.formatter -> prepared_bench list -> unit
(** Runtime overheads of PP, TPP and PPP. *)

val layout_report : Format.formatter -> prepared_bench list -> unit
(** Per-benchmark taken-transfer / locality proxy scores: source order,
    the oracle layout, the layouts edge profiling and PPP estimate, and
    the closed superblock+layout loop, with the drop count and aggregate
    improvements the bench gate floors. *)

val fig13 : Format.formatter -> prepared_bench list -> unit
(** Leave-one-out ablation of PPP's techniques, normalized to TPP, on
    the benchmarks where PPP improves on TPP by more than 5% of TPP's
    overhead (the paper's selection rule). *)

val section8_1 : Format.formatter -> prepared_bench list -> unit
(** The prose numbers of Section 8.1: average edge-profile accuracy and
    attribution (coverage). *)
