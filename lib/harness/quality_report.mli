(** The profile-quality report behind [pppc report] (schema
    ["ppp-quality/1"]).

    For each workload: every method's estimated profile is compared
    against the measured truth with {!Ppp_quality.Quality} (weighted
    overlap, hot precision/recall/coverage, per-routine divergence,
    composite), the optimizer decision log is attached (with
    generation-over-generation diffs when [iterations > 1]), and a live
    VM telemetry series can be included. The wrapper's per-method
    summary (mean and worst-workload overlap) is what
    {!Gate.check_floors} gates against committed floors. *)

val method_names : string list
(** The four profiling methods every report covers, in presentation
    order: edge, pp, tpp, ppp. *)

type row = {
  name : string;
  json : Ppp_obs.Jsonx.t;
  overlaps : (string * float) list;
      (** per-method overlap percentage, feeding the summary *)
}

val measured_quality : Pipeline.prepared -> Ppp_quality.Quality.t
(** The measured (ground-truth) profile of the prepared benchmark as a
    quality profile, branch-flow weighted. *)

val method_json :
  reference:Ppp_quality.Quality.t ->
  ?layout_improvement:float ->
  Pipeline.evaluation ->
  Ppp_obs.Jsonx.t
(** One method's comparison against [reference], plus its scalar
    overhead/accuracy/coverage — and, when given, the layout-score
    improvement its estimated profile's block layout would buy
    ({!Pipeline.layout_eval}). *)

val decisions_json : Ppp_opt.Decision.t list -> Ppp_obs.Jsonx.t
val generation_json : Pipeline.generation -> Ppp_obs.Jsonx.t
val generations_json : Pipeline.generation list -> Ppp_obs.Jsonx.t

val telemetry_json :
  ?capacity:int -> interval:int -> Pipeline.prepared -> Ppp_obs.Jsonx.t
(** Re-run the optimized program with a snapshot ring of the given
    sampling [interval] attached and export the series
    ({!Ppp_interp.Telemetry.to_json}). *)

val bench_row :
  ?iterations:int -> ?telemetry_interval:int -> Report.prepared_bench -> row
(** One workload's full report row. [iterations > 1] (default 1) runs
    {!Pipeline.reoptimize} on the original program and attaches
    per-generation decision diffs; [telemetry_interval] attaches a
    telemetry series sampled every that many dynamic instructions. *)

val summary_json : row list -> Ppp_obs.Jsonx.t

val wrap :
  ?scale:int -> ?hot_threshold:float -> row list -> Ppp_obs.Jsonx.t
(** The full document: schema, parameters, rows, summary. *)
