(** The performance-regression gate: compare two [BENCH_*.json]
    documents (see {!Report.bench_json}) and report every benchmark ×
    method whose cost grew by more than a tolerance.

    Two kinds of numbers are gated:

    - the deterministic cost-model [overhead] of each profiling method
      (pp / tpp / ppp) — noise-free, so CI can gate on it with a tight
      tolerance;
    - wall-clock ratios ([pp_ns]/[base_ns], …), only when {e both}
      documents carry a [timing] object for the benchmark, with
      whatever looser tolerance the caller passes;
    - the VM-vs-reference throughput [ratio], only when both documents
      carry a [throughput] object for the benchmark. This one is a
      floor, not a ceiling: the failure is the current ratio dropping
      more than the tolerance {e below} the baseline's;
    - the layout improvements ([layout.methods.ppp.improvement] and
      [layout.closed_loop.improvement]) — floors like the throughput
      ratio: the estimated benefit of PPP-guided layout, and of the
      closed superblock+layout loop, must not sink below baseline;
    - the sampling-sweep points ([sampling.rates], matched by
      denominator), only when both documents carry a [sampling] object:
      each rate's [overhead] is a ceiling and its [overlap_vs_full] /
      [overlap_vs_truth] are floors, so the sampled collector can
      neither get slower nor less accurate at any swept rate;
    - the tiered-execution numbers ([tiered.instr_saving] and
      [tiered.layout.improvement]), only when both documents carry a
      [tiered] object — floors: the fraction of instrumentation cost
      the mid-run swaps retire, and the layout improvement of the
      installed block orders, must not sink below baseline;
    - the drift sweep's [drift.drift_stability], only when both
      documents carry a [drift] object — a floor: the sampled+decayed
      re-optimization loop must not churn placements harder than the
      baseline.

    Benchmarks present in the baseline but missing from the current
    document, and schema mismatches, are failures too — a gate that
    silently compares nothing is worse than no gate. Benchmarks only in
    the current document are ignored (adding a workload is not a
    regression). *)

type failure = {
  bench : string;
  metric : string;  (** e.g. ["ppp.overhead"], ["timing.tpp_ns"] *)
  baseline : float;
  current : float;  (** NaN when the metric is missing under strict *)
}

type warning = { bench : string; metric : string }
(** A metric the baseline carries but the current document lacks: the
    gate compared nothing for it. Reported, never silently skipped. *)

type result = { failures : failure list; warnings : warning list }

val run :
  ?strict:bool ->
  baseline:Ppp_obs.Jsonx.t ->
  current:Ppp_obs.Jsonx.t ->
  pct:float ->
  unit ->
  result
(** Full gate result. Metrics present in the baseline but absent from
    the current document become {!warning}s; with [strict] (default
    false) they become failures (with [current = nan]) instead. *)

val check :
  baseline:Ppp_obs.Jsonx.t ->
  current:Ppp_obs.Jsonx.t ->
  pct:float ->
  failure list
(** All regressions beyond [pct] percent (relative to the baseline
    value, with a 1e-9 absolute floor so zero baselines don't trip on
    rounding); [[]] means the gate passes. Equivalent to
    [(run ~strict:false ...).failures] — missing-metric warnings are
    dropped; use {!run} to see them. *)

val check_floors :
  floors:Ppp_obs.Jsonx.t -> report:Ppp_obs.Jsonx.t -> failure list
(** Gate a [pppc report] document (schema ["ppp-quality/1"]) against a
    committed floors document (schema ["ppp-quality-floors/1"],
    [{"methods":{"ppp":{"min_overlap":97.0},...}}]): each listed
    method's worst-workload overlap percentage must be at least its
    floor. A method or summary entry missing from the report fails
    (current [nan]) — a floor that gates nothing is a failure, not a
    pass. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_failures : Format.formatter -> failure list -> unit
val pp_warning : Format.formatter -> warning -> unit
