(* Assembly of the profile-quality report behind [pppc report]: for each
   workload, compare every method's estimated profile against the
   measured truth with Ppp_quality, optionally attach the optimizer
   decision log (and its generation-over-generation diffs) and a live VM
   telemetry series, and wrap the rows with a per-method summary that
   the quality gate ([Gate.check_floors]) consumes. *)

module J = Ppp_obs.Jsonx
module Interp = Ppp_interp.Interp
module Telemetry = Ppp_interp.Telemetry
module Quality = Ppp_quality.Quality
module Spec = Ppp_workloads.Spec
module Decision = Ppp_opt.Decision

let method_names = [ "edge"; "pp"; "tpp"; "ppp" ]

let measured_quality prep =
  Quality.of_path_profile ~views:(Pipeline.views prep) ~metric:Pipeline.metric
    (Pipeline.actual_profile prep)

(* One method's entry: the scalar scores the bench report already
   carries, plus the full quality comparison of its estimated profile
   against the measured truth. *)
let method_json ~reference ?layout_improvement (ev : Pipeline.evaluation) =
  let candidate = Quality.of_estimates ev.Pipeline.estimated in
  let layout_fields =
    match layout_improvement with
    | None -> []
    | Some f -> [ ("layout_improvement", J.Float f) ]
  in
  match Quality.comparison_json ~reference ~candidate () with
  | J.Obj fields ->
      J.Obj
        (fields
        @ [
            ("overhead", J.Float ev.Pipeline.overhead);
            ("accuracy", J.Float ev.Pipeline.accuracy);
            ("coverage", J.Float ev.Pipeline.coverage);
          ]
        @ layout_fields)
  | other -> other

let decisions_json ds =
  J.Obj
    [
      ("count", J.Int (List.length ds));
      ("log", J.Arr (List.map Decision.to_json ds));
    ]

let generation_json (g : Pipeline.generation) =
  J.Obj
    [
      ("gen", J.Int g.Pipeline.gen);
      ("dirty", J.Arr (List.map (fun r -> J.Str r) g.Pipeline.dirty));
      ("reinstrumented", J.Int g.Pipeline.reinstrumented);
      ("reused_plans", J.Int g.Pipeline.reused_plans);
      ("matched_fraction", J.Float g.Pipeline.matched_fraction);
      ("instr_overhead", J.Float g.Pipeline.instr_overhead);
      ("decisions", J.Int (List.length g.Pipeline.decisions));
      ("diff", Decision.diff_json g.Pipeline.decision_diff);
    ]

let generations_json gens = J.Arr (List.map generation_json gens)

(* Run the optimized program once more with a snapshot ring attached and
   export the series. The run is thrown away apart from its telemetry —
   outcomes are byte-identical with the ring, which the test suite
   asserts differentially. *)
let telemetry_json ?(capacity = 256) ~interval prep =
  let ring = Telemetry.create ~capacity ~interval () in
  let (_ : Interp.outcome) =
    Interp.run
      ?cache:(Ppp_session.Session.lower_cache prep.Pipeline.session)
      ~config:{ Interp.default_config with telemetry = Some ring }
      prep.Pipeline.optimized
  in
  Telemetry.to_json ring

type row = { name : string; json : J.t; overlaps : (string * float) list }

let bench_row ?(iterations = 1) ?telemetry_interval (pb : Report.prepared_bench)
    =
  let prep = pb.Report.prep in
  let name = pb.Report.spec.Spec.bench_name in
  let e = Report.evals_of pb in
  let reference = measured_quality prep in
  let evs =
    [
      ("edge", e.Report.edge);
      ("pp", e.Report.pp);
      ("tpp", e.Report.tpp);
      ("ppp", e.Report.ppp);
    ]
  in
  let overlaps =
    List.map
      (fun (m, ev) ->
        (m, Quality.overlap reference (Quality.of_estimates ev.Pipeline.estimated)))
      evs
  in
  let generations =
    if iterations <= 1 then []
    else
      [
        ( "generations",
          generations_json
            (Pipeline.reoptimize ~iterations ~name prep.Pipeline.original) );
      ]
  in
  let telemetry =
    match telemetry_interval with
    | None -> []
    | Some interval -> [ ("telemetry", telemetry_json ~interval prep) ]
  in
  let json =
    J.Obj
      ([
         ("name", J.Str name);
         ( "kind",
           J.Str
             (match pb.Report.spec.Spec.kind with
             | Spec.Int -> "int"
             | Spec.Fp -> "fp") );
         ("measured_total", J.Int (Quality.total reference));
         ("measured_distinct", J.Int (Quality.distinct reference));
         ( "methods",
           J.Obj
             (let le = Report.layout_of pb in
              List.map
                (fun (m, ev) ->
                  let layout_improvement =
                    List.find_map
                      (fun (n, _, imp) ->
                        if String.equal n m then Some imp else None)
                      le.Pipeline.le_methods
                  in
                  (m, method_json ~reference ?layout_improvement ev))
                evs) );
         ("decisions", decisions_json (Pipeline.decisions prep));
       ]
      @ generations @ telemetry)
  in
  { name; json; overlaps }

(* Per-method floor statistics over all rows: what Gate.check_floors
   gates on. *)
let summary_json rows =
  let per_method m =
    let vs = List.filter_map (fun r -> List.assoc_opt m r.overlaps) rows in
    match vs with
    | [] -> (m, J.Obj [])
    | _ ->
        let mn = List.fold_left Float.min (List.hd vs) vs in
        let mean = List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs) in
        ( m,
          J.Obj
            [
              ("mean_overlap", J.Float mean);
              ("min_overlap", J.Float mn);
              ("workloads", J.Int (List.length vs));
            ] )
  in
  J.Obj [ ("methods", J.Obj (List.map per_method method_names)) ]

let wrap ?(scale = 1) ?(hot_threshold = Pipeline.hot_threshold) rows =
  J.Obj
    [
      ("schema", J.Str "ppp-quality/1");
      ("scale", J.Int scale);
      ("hot_threshold", J.Float hot_threshold);
      ("benchmarks", J.Arr (List.map (fun r -> r.json) rows));
      ("summary", summary_json rows);
    ]
