(** The end-to-end experiment pipeline of Section 7: run the original
    program, apply edge-profile-guided inlining and unrolling (re-profiling
    in between, as a staged optimizer would), then instrument the
    optimized program with PP / TPP / PPP, run it, and score the result.

    All profiles use "self" advice (Section 7.2): the edge profile given
    to the instrumenter comes from the same input the overhead run uses.

    Every pipeline run works against a {!Ppp_session.Session}: a
    content-addressed store of per-routine analyses (CFG views,
    dominators, loop nests, flow contexts, definite-flow DPs, structural
    lowerings, placement decisions) shared by all phases and all four
    profiling methods, and carried across re-optimization generations.
    Callers may pass their own session (e.g. one warmed on a previous
    generation, or a disabled one to measure the uncached cost); by
    default each [prepare] creates a fresh enabled session, so results
    are identical with and without an explicit session. *)

val hot_threshold : float
(** Section 8.1's hotness bar: 0.00125 of total program flow. *)

val metric : Ppp_profile.Metric.t
(** The paper's flow accounting ([Branch_flow]). *)

type opt_flags = {
  superblocks : bool;
      (** straighten each routine's hottest decoded trace
          ({!Ppp_opt.Superblock}) before inlining — only meaningful for
          {!prepare_with_profile}/{!reoptimize}, which have a decoded
          path profile to drive it *)
  layout : bool;
      (** derive a hot-path-first block emission order from the base
          run's path profile and carry it in [prepared.layout] *)
  max_trace : int;  (** trace-length bound passed to {!Ppp_opt.Superblock.form} *)
}

val default_flags : opt_flags
(** Everything off, [max_trace = 32] — the seed pipeline, byte-for-byte. *)

type prepared = {
  bench_name : string;
  original : Ppp_ir.Ir.program;
  optimized : Ppp_ir.Ir.program;
  orig_outcome : Ppp_interp.Interp.outcome;
  base_outcome : Ppp_interp.Interp.outcome;  (** run of [optimized] *)
  inline_stats : Ppp_opt.Inline.stats;
  unroll_stats : Ppp_opt.Unroll.stats;
  superblock_stats : Ppp_opt.Superblock.stats;
      (** what superblock formation did (empty unless the [superblocks]
          flag was on and a decoded profile drove the preparation) *)
  layout : (string, int array) Hashtbl.t option;
      (** hot-path-first block emission orders from the base run's path
          profile, when the [layout] flag was on and any routine deviates
          from source order; feed to [Interp.config.layout]. A pure
          placement hint — outcomes are byte-identical either way. *)
  confidence : float;
      (** trust in the guiding profile: 1.0 for freshly collected, the
          matched fraction for one salvaged from a stale dump *)
  diagnostics : Ppp_resilience.Diagnostic.t list;
      (** problems absorbed while preparing (fuel exhaustion, profile
          salvage); the pipeline degrades gracefully rather than raising *)
  session : Ppp_session.Session.t;
      (** the analysis store every later evaluation draws from *)
  view_memo : (string, Ppp_ir.Cfg_view.t) Hashtbl.t;
      (** name-indexed front of the session's views (internal memo) *)
  phase_ms : (string * float) list;
      (** wall-clock milliseconds per preparation phase, in order —
          nondeterministic, so never included in machine-readable
          artifacts unless explicitly requested *)
}

val decisions : prepared -> Ppp_opt.Decision.t list
(** The typed decision log of the preparation: every trace superblock
    formation straightened, every call site the inliner spliced and
    every loop the unroller replicated, in pass order. *)

val prepare :
  ?session:Ppp_session.Session.t ->
  ?flags:opt_flags ->
  name:string ->
  Ppp_ir.Ir.program ->
  prepared
(** @raise Ppp_interp.Interp.Runtime_error if the program faults.
    Fuel exhaustion does not raise: the phase keeps its partial profile
    and records an [Exhausted] diagnostic. [flags] (default
    {!default_flags}) can only enable [layout] here — superblock
    formation needs a decoded profile, which a fresh preparation does
    not have. *)

val prepare_unoptimized :
  ?session:Ppp_session.Session.t -> name:string -> Ppp_ir.Ir.program -> prepared
(** Skip inlining and unrolling (for comparisons on original code). *)

val prepare_with_profile :
  ?session:Ppp_session.Session.t ->
  ?flags:opt_flags ->
  name:string ->
  loaded:Ppp_profile.Profile_io.loaded ->
  Ppp_ir.Ir.program ->
  prepared
(** Drive inlining from a previously saved (possibly stale, possibly
    partially salvaged) profile instead of a fresh profiling run — the
    offline-advice half of a staged optimizer. The inliner's hotness bar
    is raised in proportion to distrust ([1 / matched_fraction]), the
    loaded profile's diagnostics are carried into
    [prepared.diagnostics], and [prepared.confidence] is set to the
    matched fraction so {!evaluate} degrades its placement thresholds.

    With [flags.superblocks], the loaded profile's hot paths first
    straighten each routine's hottest trace ({!Ppp_opt.Superblock.form});
    a program that actually changed is re-profiled (phase ["sb-profile"])
    so inlining consumes edge counts for the bodies it sees, and traces
    the current CFG can no longer follow become [Stale] warning
    diagnostics rather than silent skips. *)

val prepare_ms : prepared -> float
(** Total wall-clock milliseconds of the preparation phases. *)

val views : prepared -> string -> Ppp_ir.Cfg_view.t
(** CFG views of the optimized program's routines, memoized through the
    session. *)

val actual_profile : prepared -> Ppp_profile.Path_profile.program
val total_flow : prepared -> Ppp_profile.Metric.t -> int

(** {2 Path-characteristics rows (Tables 1 and 2)} *)

type path_stats = {
  dyn_paths : int;
  avg_branches : float;
  avg_instrs : float;
}

val path_stats_of_outcome :
  ?session:Ppp_session.Session.t ->
  Ppp_ir.Ir.program ->
  Ppp_interp.Interp.outcome ->
  path_stats

type hot_stats = {
  distinct_paths : int;
  hot_count : int;
  hot_flow_pct : float;
}

val hot_stats : prepared -> threshold:float -> hot_stats

(** {2 Evaluating one profiling method (Figures 9-13)} *)

type evaluation = {
  config_name : string;
  overhead : float;  (** instrumentation cost / base cost (Figure 12) *)
  accuracy : float;  (** Figure 9 *)
  coverage : float;  (** Figure 10 *)
  frac_paths_instrumented : float;  (** Figure 11 *)
  frac_paths_hashed : float;  (** Figure 11, striped portion *)
  static_actions : int;
  routines_instrumented : int;
  routines_total : int;
  estimated : Ppp_flow.Score.est list;
      (** the estimated profile the scores were computed from, exposed so
          {!Ppp_quality} can compare it path-by-path against the measured
          truth *)
}

val evaluate :
  ?overflow_policy:Ppp_interp.Instr_rt.Table.overflow_policy ->
  ?sampling:Ppp_interp.Sampling.spec ->
  prepared ->
  Ppp_core.Config.t ->
  evaluation
(** Instrument with the given configuration, rerun, decode, and score.
    Analyses and placement decisions flow through [prepared.session], so
    evaluating several methods (or re-evaluating one) shares every
    memoizable artifact; results are identical to a cold evaluation.
    When [prepared.confidence < 1] the configuration is first passed
    through {!Ppp_core.Config.degrade}, weakening profile-driven
    placement decisions in proportion to distrust. [overflow_policy]
    (default [Drop]) selects how frequency tables absorb unattributable
    path executions during the overhead run. [sampling] runs the
    overhead run under bursty sampled collection
    ({!Ppp_interp.Sampling}); recovered counts are scaled back by the
    inverse rate ({!Ppp_interp.Instr_rt.scaled_count}) before scoring,
    so [overhead] reflects the sampled cost while [estimated] holds
    full-run estimates. *)

val evaluate_edge_profile : prepared -> evaluation
(** Edge profiling as the estimator: potential-flow hot paths
    (Section 6.1), definite-flow coverage, zero overhead (Section 2). *)

(** {2 Tiered execution}

    The in-VM analogue of the two-pass instrument-then-optimize flow:
    one run starts instrumented, and a {!Ppp_interp.Tier} controller
    swaps hot routines onto optimized re-lowerings mid-run. *)

val tier_planner :
  prepared -> Ppp_core.Instrument.t -> Ppp_interp.Tier.planner
(** The incremental pipeline slice the controller invokes mid-run on
    just the firing routine: decode its live path counters through
    [inst]'s placement plans, weight the paths with the paper's flow
    metric, and derive a hot-path-first block order
    ({!Ppp_interp.Layout.order_for}); [None] when the counters order the
    routine identically to source (the swap then just strips
    instrumentation). Touches no other routine, so the interpreter is
    never blocked on analysis of untouched code. *)

type tiered = {
  t_outcome : Ppp_interp.Interp.outcome;
  t_decisions : Ppp_interp.Tier.decision list;
      (** = [t_outcome.tier_decisions], the swap log in firing order *)
  t_invalidated : string list;
      (** the swapped routines, whose session artifacts were point-
          invalidated ({!Ppp_session.Session.invalidate}): their profile
          froze at the swap, so placements/layouts derived from it are
          stale for the next generation *)
  t_instrumented : Ppp_core.Instrument.t;
}

val tiered_run :
  ?threshold:int ->
  ?budget:int ->
  ?sampling:Ppp_interp.Sampling.spec ->
  prepared ->
  Ppp_core.Config.t ->
  tiered
(** Instrument [prepared.optimized] under [config] (through the session,
    like {!evaluate}), then execute ONE run with the tier controller
    armed: routines start instrumented, and those whose frame-entry trip
    count crosses [threshold] (default
    {!Ppp_interp.Tier.default_threshold}) re-lower hot-path-first with
    instrumentation stripped, up to [budget] swaps (default unlimited).
    Program outcome is byte-identical to the untiered instrumented run;
    [instr_cost] drops as routines retire their instrumentation.
    [sampling] composes: burst re-decisions keep their chronology, tier
    swaps win the variant resolution once fired. *)

(** {2 Iterative re-optimization} *)

type generation = {
  gen : int;  (** 1-based *)
  prep : prepared;
  dirty : string list;
      (** routines the optimizers touched this generation, in program
          order — exactly the set whose artifacts the session invalidated *)
  reinstrumented : int;  (** routines re-planned by the instrumenter *)
  reused_plans : int;
      (** routines whose placement was carried over unchanged from an
          earlier generation (sticky reuse) *)
  matched_fraction : float;
      (** how much of the previous generation's saved profile survived
          the {!Ppp_profile.Profile_io} round-trip (1.0 for the first
          generation, which profiles fresh) *)
  instr_overhead : float;  (** overhead of this generation's instrumented run *)
  decisions : Ppp_opt.Decision.t list;
      (** this generation's full optimizer decision log *)
  decision_diff : Ppp_opt.Decision.diff;
      (** placements gained/lost/kept vs the previous generation;
          generation 1 diffs against the empty log, so everything is
          "added" and stability is vacuously 1.0 *)
}

val reoptimize :
  ?session:Ppp_session.Session.t ->
  ?config:Ppp_core.Config.t ->
  ?flags:opt_flags ->
  ?iterations:int ->
  ?sampling:Ppp_interp.Sampling.spec ->
  ?decay:float ->
  name:string ->
  Ppp_ir.Ir.program ->
  generation list
(** Run [iterations] (default 1) optimize–profile–re-instrument
    generations against one shared session. Generation 1 profiles fresh;
    each later generation saves the previous generation's profile,
    reloads it against the previous optimized program through the
    stale-matching loader, re-optimizes, and re-instruments under
    [config] (default PPP) with {e sticky} placement reuse — only
    routines dirtied by superblock formation, inlining or unrolling are
    re-planned, every untouched routine keeps its instrumentation. The
    generation's instrumented run is executed end-to-end
    ([instr_overhead]), under the generation's block layout when
    [flags.layout] is on. [flags.superblocks] feeds each generation's
    decoded hot paths into {!Ppp_opt.Superblock.form} from generation 2
    onward — the paper's loop, closed.

    [sampling] and [decay] switch the loop to {e drift} mode, modelling
    a fleet's profile store instead of the lab's pristine hand-off: every
    generation's dump is kept, and each later generation reloads the
    exponentially age-decayed merge of all of them
    ({!Ppp_profile.Profile_io.Raw.merge_decayed}; [decay] defaults to 1.0
    — plain accumulation — when only [sampling] is given). With
    [sampling], the generation's instrumented run is collected bursty
    and its contribution to the store is the decoded tables scaled back
    by the inverse rate — full-run {e estimates}, not truth — while edge
    counts ride along at full fidelity (the paper takes cheap edge
    profiling as given). Dumps from older generations describe older
    CFGs, so the merge exercises {!Ppp_resilience.Stale_match} and
    [matched_fraction] reports what survived. Omitting both keeps the
    seed loop byte-for-byte.
    @raise Invalid_argument unless [0.0 < decay <= 1.0]. *)

(** {2 Layout evaluation (the i-cache / taken-branch proxy)} *)

type layout_proxy = {
  lp_transfers : int;
      (** dynamic intra-routine control transfers, weighted by true edge
          frequency (returns and calls excluded — layout cannot move
          them) *)
  lp_taken : int;  (** ... whose target is not the next opcode *)
  lp_local : int;
      (** ... whose displacement stays within
          [Ppp_interp.Cost.locality_window] *)
  lp_score : float;  (** {!Ppp_flow.Score.layout_score} of the above *)
}

type closed_loop = {
  cl_routines_straightened : int;
  cl_duplicated : int;
  cl_merged : int;
  cl_mismatches : int;
  cl_base : layout_proxy;  (** transformed program, source order *)
  cl_laid : layout_proxy;  (** transformed program, path-guided order *)
  cl_taken_drop : bool;
      (** taken-transfer mass strictly dropped — the acceptance signal
          the bench gate floors *)
  cl_improvement : float;
}

type layout_eval = {
  le_base : layout_proxy;  (** [prepared.optimized] in source order *)
  le_oracle : layout_proxy;
      (** laid out from the measured path profile — the ceiling *)
  le_oracle_improvement : float;
  le_methods : (string * layout_proxy * float) list;
      (** per profiling method: proxy under the layout its {e estimated}
          profile dictates, and its improvement over [le_base] *)
  le_closed_loop : closed_loop;
}

val layout_eval :
  prepared -> estimates:(string * Ppp_flow.Score.est list) list -> layout_eval
(** Score block layouts on [prepared.optimized] with the base run's true
    edge frequencies: source order, the oracle order (from the measured
    path profile), and the order each method's estimated profile implies.
    Then close the loop: straighten the hottest estimated trace per
    routine (the ["ppp"] entry of [estimates] when present, else the
    measured truth), run the transformed program fresh, lay it out from
    that run's own profile, and compare proxies. One deterministic VM
    run plus cost-model arithmetic — safe inside byte-identical bench
    documents. *)
