(** The end-to-end experiment pipeline of Section 7: run the original
    program, apply edge-profile-guided inlining and unrolling (re-profiling
    in between, as a staged optimizer would), then instrument the
    optimized program with PP / TPP / PPP, run it, and score the result.

    All profiles use "self" advice (Section 7.2): the edge profile given
    to the instrumenter comes from the same input the overhead run uses.

    Every pipeline run works against a {!Ppp_session.Session}: a
    content-addressed store of per-routine analyses (CFG views,
    dominators, loop nests, flow contexts, definite-flow DPs, structural
    lowerings, placement decisions) shared by all phases and all four
    profiling methods, and carried across re-optimization generations.
    Callers may pass their own session (e.g. one warmed on a previous
    generation, or a disabled one to measure the uncached cost); by
    default each [prepare] creates a fresh enabled session, so results
    are identical with and without an explicit session. *)

val hot_threshold : float
(** Section 8.1's hotness bar: 0.00125 of total program flow. *)

val metric : Ppp_profile.Metric.t
(** The paper's flow accounting ([Branch_flow]). *)

type prepared = {
  bench_name : string;
  original : Ppp_ir.Ir.program;
  optimized : Ppp_ir.Ir.program;
  orig_outcome : Ppp_interp.Interp.outcome;
  base_outcome : Ppp_interp.Interp.outcome;  (** run of [optimized] *)
  inline_stats : Ppp_opt.Inline.stats;
  unroll_stats : Ppp_opt.Unroll.stats;
  confidence : float;
      (** trust in the guiding profile: 1.0 for freshly collected, the
          matched fraction for one salvaged from a stale dump *)
  diagnostics : Ppp_resilience.Diagnostic.t list;
      (** problems absorbed while preparing (fuel exhaustion, profile
          salvage); the pipeline degrades gracefully rather than raising *)
  session : Ppp_session.Session.t;
      (** the analysis store every later evaluation draws from *)
  view_memo : (string, Ppp_ir.Cfg_view.t) Hashtbl.t;
      (** name-indexed front of the session's views (internal memo) *)
  phase_ms : (string * float) list;
      (** wall-clock milliseconds per preparation phase, in order —
          nondeterministic, so never included in machine-readable
          artifacts unless explicitly requested *)
}

val decisions : prepared -> Ppp_opt.Decision.t list
(** The typed decision log of the preparation: every call site the
    inliner spliced and every loop the unroller replicated, in pass
    order. *)

val prepare :
  ?session:Ppp_session.Session.t -> name:string -> Ppp_ir.Ir.program -> prepared
(** @raise Ppp_interp.Interp.Runtime_error if the program faults.
    Fuel exhaustion does not raise: the phase keeps its partial profile
    and records an [Exhausted] diagnostic. *)

val prepare_unoptimized :
  ?session:Ppp_session.Session.t -> name:string -> Ppp_ir.Ir.program -> prepared
(** Skip inlining and unrolling (for comparisons on original code). *)

val prepare_with_profile :
  ?session:Ppp_session.Session.t ->
  name:string ->
  loaded:Ppp_profile.Profile_io.loaded ->
  Ppp_ir.Ir.program ->
  prepared
(** Drive inlining from a previously saved (possibly stale, possibly
    partially salvaged) profile instead of a fresh profiling run — the
    offline-advice half of a staged optimizer. The inliner's hotness bar
    is raised in proportion to distrust ([1 / matched_fraction]), the
    loaded profile's diagnostics are carried into
    [prepared.diagnostics], and [prepared.confidence] is set to the
    matched fraction so {!evaluate} degrades its placement thresholds. *)

val prepare_ms : prepared -> float
(** Total wall-clock milliseconds of the preparation phases. *)

val views : prepared -> string -> Ppp_ir.Cfg_view.t
(** CFG views of the optimized program's routines, memoized through the
    session. *)

val actual_profile : prepared -> Ppp_profile.Path_profile.program
val total_flow : prepared -> Ppp_profile.Metric.t -> int

(** {2 Path-characteristics rows (Tables 1 and 2)} *)

type path_stats = {
  dyn_paths : int;
  avg_branches : float;
  avg_instrs : float;
}

val path_stats_of_outcome :
  ?session:Ppp_session.Session.t ->
  Ppp_ir.Ir.program ->
  Ppp_interp.Interp.outcome ->
  path_stats

type hot_stats = {
  distinct_paths : int;
  hot_count : int;
  hot_flow_pct : float;
}

val hot_stats : prepared -> threshold:float -> hot_stats

(** {2 Evaluating one profiling method (Figures 9-13)} *)

type evaluation = {
  config_name : string;
  overhead : float;  (** instrumentation cost / base cost (Figure 12) *)
  accuracy : float;  (** Figure 9 *)
  coverage : float;  (** Figure 10 *)
  frac_paths_instrumented : float;  (** Figure 11 *)
  frac_paths_hashed : float;  (** Figure 11, striped portion *)
  static_actions : int;
  routines_instrumented : int;
  routines_total : int;
  estimated : Ppp_flow.Score.est list;
      (** the estimated profile the scores were computed from, exposed so
          {!Ppp_quality} can compare it path-by-path against the measured
          truth *)
}

val evaluate :
  ?overflow_policy:Ppp_interp.Instr_rt.Table.overflow_policy ->
  prepared ->
  Ppp_core.Config.t ->
  evaluation
(** Instrument with the given configuration, rerun, decode, and score.
    Analyses and placement decisions flow through [prepared.session], so
    evaluating several methods (or re-evaluating one) shares every
    memoizable artifact; results are identical to a cold evaluation.
    When [prepared.confidence < 1] the configuration is first passed
    through {!Ppp_core.Config.degrade}, weakening profile-driven
    placement decisions in proportion to distrust. [overflow_policy]
    (default [Drop]) selects how frequency tables absorb unattributable
    path executions during the overhead run. *)

val evaluate_edge_profile : prepared -> evaluation
(** Edge profiling as the estimator: potential-flow hot paths
    (Section 6.1), definite-flow coverage, zero overhead (Section 2). *)

(** {2 Iterative re-optimization} *)

type generation = {
  gen : int;  (** 1-based *)
  prep : prepared;
  dirty : string list;
      (** routines the optimizers touched this generation, in program
          order — exactly the set whose artifacts the session invalidated *)
  reinstrumented : int;  (** routines re-planned by the instrumenter *)
  reused_plans : int;
      (** routines whose placement was carried over unchanged from an
          earlier generation (sticky reuse) *)
  matched_fraction : float;
      (** how much of the previous generation's saved profile survived
          the {!Ppp_profile.Profile_io} round-trip (1.0 for the first
          generation, which profiles fresh) *)
  instr_overhead : float;  (** overhead of this generation's instrumented run *)
  decisions : Ppp_opt.Decision.t list;
      (** this generation's full optimizer decision log *)
  decision_diff : Ppp_opt.Decision.diff;
      (** placements gained/lost/kept vs the previous generation;
          generation 1 diffs against the empty log, so everything is
          "added" and stability is vacuously 1.0 *)
}

val reoptimize :
  ?session:Ppp_session.Session.t ->
  ?config:Ppp_core.Config.t ->
  ?iterations:int ->
  name:string ->
  Ppp_ir.Ir.program ->
  generation list
(** Run [iterations] (default 1) optimize–profile–re-instrument
    generations against one shared session. Generation 1 profiles fresh;
    each later generation saves the previous generation's profile,
    reloads it against the previous optimized program through the
    stale-matching loader, re-optimizes, and re-instruments under
    [config] (default PPP) with {e sticky} placement reuse — only
    routines dirtied by inlining or unrolling are re-planned, every
    untouched routine keeps its instrumentation. The generation's
    instrumented run is executed end-to-end ([instr_overhead]). *)
