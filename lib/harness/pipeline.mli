(** The end-to-end experiment pipeline of Section 7: run the original
    program, apply edge-profile-guided inlining and unrolling (re-profiling
    in between, as a staged optimizer would), then instrument the
    optimized program with PP / TPP / PPP, run it, and score the result.

    All profiles use "self" advice (Section 7.2): the edge profile given
    to the instrumenter comes from the same input the overhead run uses. *)

type prepared = {
  bench_name : string;
  original : Ppp_ir.Ir.program;
  optimized : Ppp_ir.Ir.program;
  orig_outcome : Ppp_interp.Interp.outcome;
  base_outcome : Ppp_interp.Interp.outcome;  (** run of [optimized] *)
  inline_stats : Ppp_opt.Inline.stats;
  unroll_stats : Ppp_opt.Unroll.stats;
  confidence : float;
      (** trust in the guiding profile: 1.0 for freshly collected, the
          matched fraction for one salvaged from a stale dump *)
  diagnostics : Ppp_resilience.Diagnostic.t list;
      (** problems absorbed while preparing (fuel exhaustion, profile
          salvage); the pipeline degrades gracefully rather than raising *)
}

val prepare : name:string -> Ppp_ir.Ir.program -> prepared
(** @raise Ppp_interp.Interp.Runtime_error if the program faults.
    Fuel exhaustion does not raise: the phase keeps its partial profile
    and records an [Exhausted] diagnostic. *)

val prepare_unoptimized : name:string -> Ppp_ir.Ir.program -> prepared
(** Skip inlining and unrolling (for comparisons on original code). *)

val prepare_with_profile :
  name:string ->
  loaded:Ppp_profile.Profile_io.loaded ->
  Ppp_ir.Ir.program ->
  prepared
(** Drive inlining from a previously saved (possibly stale, possibly
    partially salvaged) profile instead of a fresh profiling run — the
    offline-advice half of a staged optimizer. The inliner's hotness bar
    is raised in proportion to distrust ([1 / matched_fraction]), the
    loaded profile's diagnostics are carried into
    [prepared.diagnostics], and [prepared.confidence] is set to the
    matched fraction so {!evaluate} degrades its placement thresholds. *)

val views : prepared -> string -> Ppp_ir.Cfg_view.t
(** Cached CFG views of the optimized program's routines. *)

val actual_profile : prepared -> Ppp_profile.Path_profile.program
val total_flow : prepared -> Ppp_profile.Metric.t -> int

(** {2 Path-characteristics rows (Tables 1 and 2)} *)

type path_stats = {
  dyn_paths : int;
  avg_branches : float;
  avg_instrs : float;
}

val path_stats_of_outcome :
  Ppp_ir.Ir.program -> Ppp_interp.Interp.outcome -> path_stats

type hot_stats = {
  distinct_paths : int;
  hot_count : int;
  hot_flow_pct : float;
}

val hot_stats : prepared -> threshold:float -> hot_stats

(** {2 Evaluating one profiling method (Figures 9-13)} *)

type evaluation = {
  config_name : string;
  overhead : float;  (** instrumentation cost / base cost (Figure 12) *)
  accuracy : float;  (** Figure 9 *)
  coverage : float;  (** Figure 10 *)
  frac_paths_instrumented : float;  (** Figure 11 *)
  frac_paths_hashed : float;  (** Figure 11, striped portion *)
  static_actions : int;
  routines_instrumented : int;
  routines_total : int;
}

val evaluate :
  ?overflow_policy:Ppp_interp.Instr_rt.Table.overflow_policy ->
  prepared ->
  Ppp_core.Config.t ->
  evaluation
(** Instrument with the given configuration, rerun, decode, and score.
    When [prepared.confidence < 1] the configuration is first passed
    through {!Ppp_core.Config.degrade}, weakening profile-driven
    placement decisions in proportion to distrust. [overflow_policy]
    (default [Drop]) selects how frequency tables absorb unattributable
    path executions during the overhead run. *)

val evaluate_edge_profile : prepared -> evaluation
(** Edge profiling as the estimator: potential-flow hot paths
    (Section 6.1), definite-flow coverage, zero overhead (Section 2). *)
