module J = Ppp_obs.Jsonx

type failure = {
  bench : string;
  metric : string;
  baseline : float;
  current : float;
}

type warning = { bench : string; metric : string }
type result = { failures : failure list; warnings : warning list }

let fnum = function
  | Some (J.Float x) -> Some x
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

let benches_of json =
  J.to_list (Option.value ~default:(J.Arr []) (J.member json "benchmarks"))
  |> List.filter_map (fun b ->
         match J.member b "name" with
         | Some (J.Str n) -> Some (n, b)
         | _ -> None)

let exceeds ~pct ~baseline ~current =
  current > baseline +. Float.max 1e-9 (pct /. 100. *. Float.abs baseline)

let run ?(strict = false) ~baseline ~current ~pct () =
  let fails = ref [] in
  let warns = ref [] in
  let fail bench metric b c =
    fails := { bench; metric; baseline = b; current = c } :: !fails
  in
  (* A metric the baseline has but the current run lacks compares
     nothing; that silence used to pass the gate. Report it — as a
     warning by default, as a failure under [strict]. *)
  let missing bench metric b =
    if strict then fail bench metric b Float.nan
    else warns := { bench; metric } :: !warns
  in
  (match (J.member baseline "schema", J.member current "schema") with
  | Some (J.Str a), Some (J.Str b) when a = b -> ()
  | _ -> fail "(document)" "schema" Float.nan Float.nan);
  let base_benches = benches_of baseline in
  let cur_benches = benches_of current in
  List.iter
    (fun (name, bj) ->
      match List.assoc_opt name cur_benches with
      | None -> fail name "missing" 1.0 0.0
      | Some cj ->
          List.iter
            (fun m ->
              let overhead j =
                Option.bind (J.member j "methods") (fun ms ->
                    Option.bind (J.member ms m) (fun e ->
                        fnum (J.member e "overhead")))
              in
              match (overhead bj, overhead cj) with
              | Some b, Some c ->
                  if exceeds ~pct ~baseline:b ~current:c then
                    fail name (m ^ ".overhead") b c
              | Some b, None -> missing name (m ^ ".overhead") b
              | None, _ -> ())
            [ "pp"; "tpp"; "ppp" ];
          (* Wall-clock ratios, only when both sides measured them. *)
          (match (J.member bj "timing", J.member cj "timing") with
          | Some bt, Some ct ->
              List.iter
                (fun k ->
                  let ratio t =
                    match (fnum (J.member t "base_ns"), fnum (J.member t k)) with
                    | Some base, Some v when base > 0.0 -> Some (v /. base)
                    | _ -> None
                  in
                  match (ratio bt, ratio ct) with
                  | Some b, Some c ->
                      if exceeds ~pct ~baseline:b ~current:c then
                        fail name ("timing." ^ k) b c
                  | Some b, None -> missing name ("timing." ^ k) b
                  | None, _ -> ())
                [ "pp_ns"; "tpp_ns"; "ppp_ns" ]
          | Some _, None -> missing name "timing" Float.nan
          | None, _ -> ());
          (* VM-vs-reference throughput is gated the other way round: the
             ratio is a floor, and dropping below it is the regression. *)
          (match (J.member bj "throughput", J.member cj "throughput") with
          | Some bt, Some ct -> (
              match (fnum (J.member bt "ratio"), fnum (J.member ct "ratio")) with
              | Some b, Some c ->
                  if c < b -. Float.max 1e-9 (pct /. 100. *. Float.abs b) then
                    fail name "throughput.ratio" b c
              | Some b, None -> missing name "throughput.ratio" b
              | None, _ -> ())
          | Some _, None -> missing name "throughput" Float.nan
          | None, _ -> ());
          (* Layout improvements are floors too: the estimated benefit of
             PPP-guided layout, and the closed superblock+layout loop's,
             must not sink below baseline. *)
          (match (J.member bj "layout", J.member cj "layout") with
          | Some bl, Some cl ->
              List.iter
                (fun (metric, get) ->
                  match (get bl, get cl) with
                  | Some b, Some c ->
                      if c < b -. Float.max 1e-9 (pct /. 100. *. Float.abs b)
                      then fail name metric b c
                  | Some b, None -> missing name metric b
                  | None, _ -> ())
                [
                  ( "layout.methods.ppp.improvement",
                    fun j ->
                      Option.bind (J.member j "methods") (fun ms ->
                          Option.bind (J.member ms "ppp") (fun e ->
                              fnum (J.member e "improvement"))) );
                  ( "layout.closed_loop.improvement",
                    fun j ->
                      Option.bind (J.member j "closed_loop") (fun c ->
                          fnum (J.member c "improvement")) );
                ]
          | Some _, None -> missing name "layout" Float.nan
          | None, _ -> ());
          (* Sampling-sweep points: overhead at each swept rate is a
             ceiling, overlap vs the unsampled estimate (and vs truth) a
             floor. Rates are matched by denominator, so reordering or
             extending the sweep never mis-pairs points; a rate the
             baseline has but the current sweep lacks is missing. *)
          (match (J.member bj "sampling", J.member cj "sampling") with
          | Some bs, Some cs ->
              let rates j =
                J.to_list (Option.value ~default:(J.Arr []) (J.member j "rates"))
                |> List.filter_map (fun r ->
                       match J.member r "denom" with
                       | Some (J.Int d) -> Some (d, r)
                       | _ -> None)
              in
              let cur_rates = rates cs in
              List.iter
                (fun (denom, br) ->
                  let label k = Printf.sprintf "sampling.1/%d.%s" denom k in
                  match List.assoc_opt denom cur_rates with
                  | None -> missing name (label "rate") Float.nan
                  | Some cr ->
                      (match
                         (fnum (J.member br "overhead"), fnum (J.member cr "overhead"))
                       with
                      | Some b, Some c ->
                          if exceeds ~pct ~baseline:b ~current:c then
                            fail name (label "overhead") b c
                      | Some b, None -> missing name (label "overhead") b
                      | None, _ -> ());
                      List.iter
                        (fun k ->
                          match (fnum (J.member br k), fnum (J.member cr k)) with
                          | Some b, Some c ->
                              if c < b -. Float.max 1e-9 (pct /. 100. *. Float.abs b)
                              then fail name (label k) b c
                          | Some b, None -> missing name (label k) b
                          | None, _ -> ())
                        [ "overlap_vs_full"; "overlap_vs_truth" ])
                (rates bs)
          | Some _, None -> missing name "sampling" Float.nan
          | None, _ -> ());
          (* Tiered execution: the fraction of instrumentation cost the
             swaps retire, and the layout improvement of the installed
             orders, are floors — tiering must not start paying less. *)
          (match (J.member bj "tiered", J.member cj "tiered") with
          | Some bt, Some ct ->
              List.iter
                (fun (metric, get) ->
                  match (get bt, get ct) with
                  | Some b, Some c ->
                      if c < b -. Float.max 1e-9 (pct /. 100. *. Float.abs b)
                      then fail name metric b c
                  | Some b, None -> missing name metric b
                  | None, _ -> ())
                [
                  ( "tiered.instr_saving",
                    fun j -> fnum (J.member j "instr_saving") );
                  ( "tiered.layout.improvement",
                    fun j ->
                      Option.bind (J.member j "layout") (fun l ->
                          fnum (J.member l "improvement")) );
                ]
          | Some _, None -> missing name "tiered" Float.nan
          | None, _ -> ());
          (* Drift sweep: the sampled+decayed loop's generation-2
             decision stability is a floor — the fleet's profile store
             must not start churning placements harder than the
             baseline. *)
          (match (J.member bj "drift", J.member cj "drift") with
          | Some bd, Some cd -> (
              match
                ( fnum (J.member bd "drift_stability"),
                  fnum (J.member cd "drift_stability") )
              with
              | Some b, Some c ->
                  if c < b -. Float.max 1e-9 (pct /. 100. *. Float.abs b) then
                    fail name "drift.drift_stability" b c
              | Some b, None -> missing name "drift.drift_stability" b
              | None, _ -> ())
          | Some _, None -> missing name "drift" Float.nan
          | None, _ -> ()))
    base_benches;
  { failures = List.rev !fails; warnings = List.rev !warns }

let check ~baseline ~current ~pct =
  (run ~strict:false ~baseline ~current ~pct ()).failures

(* Quality floors: absolute minimums a method's overlap must clear, read
   from a committed floors document against a [pppc report] summary. *)
let check_floors ~floors ~report =
  let fails = ref [] in
  let fail metric b c =
    fails := { bench = "(summary)"; metric; baseline = b; current = c } :: !fails
  in
  (match (J.member floors "schema", J.member report "schema") with
  | Some (J.Str "ppp-quality-floors/1"), Some (J.Str "ppp-quality/1") -> ()
  | _ -> fail "schema" Float.nan Float.nan);
  let floor_methods =
    match J.member floors "methods" with Some (J.Obj kvs) -> kvs | _ -> []
  in
  let summary_overlap m =
    Option.bind (J.member report "summary") (fun s ->
        Option.bind (J.member s "methods") (fun ms ->
            Option.bind (J.member ms m) (fun e ->
                fnum (J.member e "min_overlap"))))
  in
  List.iter
    (fun (m, fj) ->
      match fnum (J.member fj "min_overlap") with
      | None -> ()
      | Some floor -> (
          match summary_overlap m with
          | None -> fail (m ^ ".min_overlap") floor Float.nan
          | Some v -> if v < floor then fail (m ^ ".min_overlap") floor v))
    floor_methods;
  List.rev !fails

let pp_failure ppf (f : failure) =
  if f.metric = "schema" then
    Format.fprintf ppf "%s: schema mismatch between baseline and current"
      f.bench
  else if f.metric = "missing" then
    Format.fprintf ppf "%s: present in baseline but missing from current run"
      f.bench
  else if Float.is_nan f.current then
    Format.fprintf ppf
      "%s: %s present in baseline (%g) but missing from current run" f.bench
      f.metric f.baseline
  else
    Format.fprintf ppf "%s: %s regressed %g -> %g" f.bench f.metric f.baseline
      f.current

let pp_warning ppf (w : warning) =
  Format.fprintf ppf
    "%s: %s present in baseline but missing from current run (not gated; \
     --strict makes this a failure)"
    w.bench w.metric

let pp_failures ppf = function
  | [] -> ()
  | fs ->
      Format.pp_open_vbox ppf 0;
      List.iter (fun f -> Format.fprintf ppf "%a@," pp_failure f) fs;
      Format.pp_close_box ppf ()
