module J = Ppp_obs.Jsonx

type failure = {
  bench : string;
  metric : string;
  baseline : float;
  current : float;
}

let fnum = function
  | Some (J.Float x) -> Some x
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

let benches_of json =
  J.to_list (Option.value ~default:(J.Arr []) (J.member json "benchmarks"))
  |> List.filter_map (fun b ->
         match J.member b "name" with
         | Some (J.Str n) -> Some (n, b)
         | _ -> None)

let exceeds ~pct ~baseline ~current =
  current > baseline +. Float.max 1e-9 (pct /. 100. *. Float.abs baseline)

let check ~baseline ~current ~pct =
  let fails = ref [] in
  let fail bench metric b c =
    fails := { bench; metric; baseline = b; current = c } :: !fails
  in
  (match (J.member baseline "schema", J.member current "schema") with
  | Some (J.Str a), Some (J.Str b) when a = b -> ()
  | _ -> fail "(document)" "schema" Float.nan Float.nan);
  let base_benches = benches_of baseline in
  let cur_benches = benches_of current in
  List.iter
    (fun (name, bj) ->
      match List.assoc_opt name cur_benches with
      | None -> fail name "missing" 1.0 0.0
      | Some cj ->
          List.iter
            (fun m ->
              let overhead j =
                Option.bind (J.member j "methods") (fun ms ->
                    Option.bind (J.member ms m) (fun e ->
                        fnum (J.member e "overhead")))
              in
              match (overhead bj, overhead cj) with
              | Some b, Some c ->
                  if exceeds ~pct ~baseline:b ~current:c then
                    fail name (m ^ ".overhead") b c
              | _ -> ())
            [ "pp"; "tpp"; "ppp" ];
          (* Wall-clock ratios, only when both sides measured them. *)
          (match (J.member bj "timing", J.member cj "timing") with
          | Some bt, Some ct ->
              List.iter
                (fun k ->
                  let ratio t =
                    match (fnum (J.member t "base_ns"), fnum (J.member t k)) with
                    | Some base, Some v when base > 0.0 -> Some (v /. base)
                    | _ -> None
                  in
                  match (ratio bt, ratio ct) with
                  | Some b, Some c ->
                      if exceeds ~pct ~baseline:b ~current:c then
                        fail name ("timing." ^ k) b c
                  | _ -> ())
                [ "pp_ns"; "tpp_ns"; "ppp_ns" ]
          | _ -> ());
          (* VM-vs-reference throughput is gated the other way round: the
             ratio is a floor, and dropping below it is the regression. *)
          (match (J.member bj "throughput", J.member cj "throughput") with
          | Some bt, Some ct -> (
              match (fnum (J.member bt "ratio"), fnum (J.member ct "ratio")) with
              | Some b, Some c ->
                  if c < b -. Float.max 1e-9 (pct /. 100. *. Float.abs b) then
                    fail name "throughput.ratio" b c
              | _ -> ())
          | _ -> ()))
    base_benches;
  List.rev !fails

let pp_failure ppf f =
  if f.metric = "schema" then
    Format.fprintf ppf "%s: schema mismatch between baseline and current"
      f.bench
  else if f.metric = "missing" then
    Format.fprintf ppf "%s: present in baseline but missing from current run"
      f.bench
  else
    Format.fprintf ppf "%s: %s regressed %g -> %g" f.bench f.metric f.baseline
      f.current

let pp_failures ppf = function
  | [] -> ()
  | fs ->
      Format.pp_open_vbox ppf 0;
      List.iter (fun f -> Format.fprintf ppf "%a@," pp_failure f) fs;
      Format.pp_close_box ppf ()
