(** Process-parallel collection: a fork-based worker pool and the
    sharded profile collector built on it.

    OCaml 4.14 has no multicore runtime, so parallelism comes from
    [Unix.fork]: [jobs] workers each take every [jobs]-th item and
    stream back [Marshal]-ed results over a pipe. Determinism is the
    whole point — results come back indexed, every item's PRNG seed is
    derived from the pool seed and the item's {e index} (never from the
    worker count or wall clock), and a worker that dies surfaces as a
    located {!Ppp_resilience.Diagnostic} with kind [Shard_lost] rather
    than poisoning the run — so the output of a [-j 8] run is the same
    value a [-j 1] run produces, minus exactly the items whose worker
    crashed. *)

val derive_seed : int -> int -> int
(** [derive_seed base index]: the per-item seed. A pure mix of [base]
    and [index] only, so it is independent of the number of jobs and of
    scheduling order. *)

val map :
  jobs:int ->
  ?seed:int ->
  ?timeout_s:float ->
  f:(seed:int -> 'a -> 'b) ->
  'a list ->
  ('b, Ppp_resilience.Diagnostic.t) result list
(** Apply [f] to every item across [max 1 (min jobs (length items))]
    forked workers; the result list is in item order regardless of
    completion order. An exception escaping [f], or a worker dying
    outright (crash, signal, [exit]), yields [Error] with a [Shard_lost]
    diagnostic locating the item (its index is reported in the
    diagnostic's [line] field). Worker stdout is routed to [/dev/null]
    so shard chatter cannot interleave with the parent's output; [f]
    must not rely on mutating parent state (it runs in a child
    process).

    All pipe I/O is EINTR-safe and short-read/short-write tolerant on
    both sides ({!Ppp_resilience.Robust_io}). [timeout_s], when given,
    is a per-worker wall-clock budget measured while the parent drains
    that worker's stream: a worker that stalls past it is killed
    ([SIGKILL]) and each of its undelivered items becomes a located
    [Shard_lost] diagnostic instead of blocking the merge forever;
    items it already delivered are kept. *)

(** {2 Sharded workload collection}

    The machinery behind [pppc collect bench:all -j N]: one worker item
    per workload, each producing a canonical v2 dump plus (optionally) a
    metrics snapshot; the parent parses the dumps back, prefixes every
    routine with ["BENCH/"] so the 18 programs coexist in one namespace,
    and merges them with {!Ppp_profile.Profile_io.Raw.merge}. Because
    collection is deterministic and the merge is order-independent, the
    merged dump is byte-identical across [-j] levels. *)

val collect_sampled :
  ?cache:Ppp_interp.Lower.cache ->
  spec:Ppp_interp.Sampling.spec ->
  Ppp_ir.Ir.program ->
  Ppp_profile.Profile_io.Raw.t
(** Collect one program's profile under bursty sampled PPP
    instrumentation: an edge-only run supplies the instrumenter's self
    advice, the instrumented run alternates bursts per [spec], and the
    recovered path counts are scaled back by the inverse rate
    ({!Ppp_interp.Instr_rt.scaled_count}). The resulting dump carries
    the exact edge profile plus full-run path {e estimates} — it merges
    uniformly with unsampled dumps. Deterministic for a given
    [(spec, program)] pair. *)

type collected = {
  raw : Ppp_profile.Profile_io.Raw.t;
      (** the merged profile; its diagnostics cover parse/merge issues *)
  shards : (string * string) list;
      (** delivered shards, in workload order: (bench name, canonical
          v2 dump text) — what [--shard-dir] writes out *)
  shard_metrics : (string * Ppp_obs.Metrics.snapshot) list;
      (** per-shard metrics snapshots (empty when [metrics] is off) *)
  metrics : Ppp_obs.Metrics.snapshot;
      (** the {!Ppp_obs.Metrics.merge} of all delivered shards *)
  lost : Ppp_resilience.Diagnostic.t list;
      (** one [Shard_lost] diagnostic per workload whose worker died *)
}

val collect_workloads :
  jobs:int ->
  ?scale:int ->
  ?metrics:bool ->
  ?warm:bool ->
  ?sampling:Ppp_interp.Sampling.spec ->
  ?timeout_s:float ->
  Ppp_workloads.Spec.bench list ->
  collected
(** Run every workload under the pool ([metrics] defaults to [false];
    when on, each worker enables and resets {!Ppp_obs.Metrics} before
    its run, so shard snapshots are disjoint and their merge is
    [-j]-invariant). With [warm] (default [false]) the parent builds
    each workload and fills a {!Ppp_session.Session} — analyses plus
    structural lowering — before forking, so workers inherit the warm
    artifacts copy-on-write and skip re-lowering; the collected output
    is byte-identical either way.

    With [sampling], each workload is collected under bursty sampled PPP
    instrumentation ({!Ppp_interp.Sampling}) instead of the engine's
    exact path tracer: a cheap edge-only run supplies self advice, the
    instrumented run alternates bursts at a rate of [1/denom], and the
    dump carries the exact edge profile plus inverse-rate path
    {e estimates} ({!Ppp_interp.Instr_rt.scaled_count}), so sampled
    shards merge uniformly with unsampled ones. The spec's [seed] acts
    as the pool seed: each workload samples under
    [derive_seed seed index], so the merged dump stays byte-identical
    across [-j] levels. *)
