(** Graphviz output for debugging and the [pppc dot] command. *)

val pp :
  ?node_label:(Graph.node -> string) ->
  ?edge_label:(Graph.edge -> string) ->
  ?edge_attrs:(Graph.edge -> (string * string) list) ->
  ?name:string ->
  Format.formatter ->
  Graph.t ->
  unit
(** Print a [digraph]. Default node labels are the node numbers; default
    edge labels are empty; [edge_attrs] adds arbitrary extra attributes
    (values are quoted) to each edge. *)

val pp_heat :
  ?node_label:(Graph.node -> string) ->
  ?name:string ->
  ?threshold:float ->
  freq:(Graph.edge -> int) ->
  total:int ->
  Format.formatter ->
  Graph.t ->
  unit
(** Heat-annotated digraph: every edge is labelled with its frequency
    and colored by it — red for hot edges (frequency at least
    [threshold] of [total] flow; default 0.125%, the paper's hot-path
    cutoff), blue for executed-but-cold, dashed gray for never executed.
    Pen width scales with log frequency. [freq] supplies per-edge counts
    (an edge profile, kept abstract so this module stays profile-
    agnostic); [total] is the program-wide flow the threshold is
    relative to. *)
