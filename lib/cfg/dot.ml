let pp_attrs ppf attrs =
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Format.pp_print_char ppf ',';
      Format.fprintf ppf "%s=%S" k v)
    attrs

let pp ?node_label ?edge_label ?(edge_attrs = fun _ -> []) ?(name = "cfg") ppf g =
  let node_label = Option.value node_label ~default:string_of_int in
  let edge_label = Option.value edge_label ~default:(fun _ -> "") in
  Format.fprintf ppf "@[<v 2>digraph %s {@," name;
  Graph.iter_nodes g (fun v ->
      Format.fprintf ppf "n%d [label=%S];@," v (node_label v));
  Graph.iter_edges g (fun e ->
      let attrs =
        (match edge_label e with "" -> [] | l -> [ ("label", l) ])
        @ edge_attrs e
      in
      if attrs = [] then
        Format.fprintf ppf "n%d -> n%d;@," (Graph.src g e) (Graph.dst g e)
      else
        Format.fprintf ppf "n%d -> n%d [%a];@," (Graph.src g e)
          (Graph.dst g e) pp_attrs attrs);
  Format.fprintf ppf "@]@,}@."

let pp_heat ?node_label ?(name = "cfg") ?(threshold = 0.00125) ~freq ~total ppf g
    =
  let max_freq = ref 0 in
  Graph.iter_edges g (fun e -> max_freq := max !max_freq (freq e));
  let heat_attrs e =
    let f = freq e in
    if f = 0 then [ ("color", "gray80"); ("style", "dashed") ]
    else begin
      let hot =
        total > 0 && float_of_int f >= threshold *. float_of_int total
      in
      (* Pen width grows with log frequency so heavy edges dominate the
         picture the way they dominate the run. *)
      let w =
        if !max_freq <= 1 then 1.0
        else
          1.0
          +. 3.0
             *. (log (1.0 +. float_of_int f) /. log (1.0 +. float_of_int !max_freq))
      in
      [
        ("color", if hot then "red" else "steelblue");
        ("fontcolor", if hot then "red" else "steelblue");
        ("penwidth", Printf.sprintf "%.2f" w);
      ]
    end
  in
  pp ?node_label ~edge_label:(fun e -> string_of_int (freq e)) ~edge_attrs:heat_attrs
    ~name ppf g
