type loop = {
  header : Graph.node;
  back_edges : Graph.edge list;
  body : Graph.node list;
}

type t = {
  graph : Graph.t;
  loops : loop list;
  back_edge_set : bool array; (* edge -> is back edge *)
  irreducible : Graph.edge list;
  depth : int array;
}

let natural_loop_body g header tails =
  (* Header plus every node that reaches a tail backwards without going
     through the header. *)
  let n = Graph.num_nodes g in
  let in_body = Array.make n false in
  in_body.(header) <- true;
  let rec go v =
    if not in_body.(v) then begin
      in_body.(v) <- true;
      List.iter go (Graph.preds g v)
    end
  in
  List.iter go tails;
  let body = ref [] in
  for v = n - 1 downto 0 do
    if in_body.(v) then body := v :: !body
  done;
  !body

let compute ?dom g ~root =
  let n = Graph.num_nodes g in
  let dom = match dom with Some d -> d | None -> Dom.compute g ~root in
  let retreating = Order.retreating_edges g root in
  let back, irreducible =
    List.partition
      (fun e -> Dom.dominates dom (Graph.dst g e) (Graph.src g e))
      retreating
  in
  let back_edge_set = Array.make (max 1 (Graph.num_edges g)) false in
  List.iter (fun e -> back_edge_set.(e) <- true) back;
  (* Group back edges by header. *)
  let by_header = Hashtbl.create 7 in
  List.iter
    (fun e ->
      let h = Graph.dst g e in
      let existing = try Hashtbl.find by_header h with Not_found -> [] in
      Hashtbl.replace by_header h (e :: existing))
    back;
  let loops =
    Hashtbl.fold
      (fun header edges acc ->
        let edges = List.rev edges in
        let tails = List.map (Graph.src g) edges in
        let body = natural_loop_body g header tails in
        { header; back_edges = edges; body } :: acc)
      by_header []
    |> List.sort (fun a b -> compare a.header b.header)
  in
  let depth = Array.make n 0 in
  List.iter
    (fun l -> List.iter (fun v -> depth.(v) <- depth.(v) + 1) l.body)
    loops;
  { graph = g; loops; back_edge_set; irreducible; depth }

let loops t = t.loops
let is_back_edge t e = e < Array.length t.back_edge_set && t.back_edge_set.(e)
let irreducible_edges t = t.irreducible

let breakable_edges t =
  let back =
    List.concat_map (fun l -> l.back_edges) t.loops |> List.sort compare
  in
  List.sort compare (back @ t.irreducible)

let header_of_break t e = Graph.dst t.graph e
let depth t v = t.depth.(v)

let avg_trip_count t loop ~freq =
  let g = t.graph in
  let back_freq =
    List.fold_left (fun acc e -> acc + freq e) 0 loop.back_edges
  in
  let entry_freq =
    List.fold_left
      (fun acc e -> if is_back_edge t e then acc else acc + freq e)
      0
      (Graph.in_edges g loop.header)
  in
  if entry_freq = 0 then if back_freq = 0 then 0.0 else max_float
  else 1.0 +. (float_of_int back_freq /. float_of_int entry_freq)
