(** Natural loops.

    A back edge is an edge [tail -> header] whose header dominates its
    tail. The natural loop of a back edge is the header plus all nodes
    that reach the tail without passing through the header. Retreating
    edges that are not back edges (irreducible control flow) are reported
    separately; DAG conversion breaks them too, but they head no natural
    loop. *)

type loop = {
  header : Graph.node;
  back_edges : Graph.edge list; (* all back edges targeting [header] *)
  body : Graph.node list; (* includes the header *)
}

type t

val compute : ?dom:Dom.t -> Graph.t -> root:Graph.node -> t
(** [dom], when given, must be the dominator tree of [g] rooted at
    [root]; passing it avoids recomputing it (analysis caches hold both
    artifacts separately). *)

val loops : t -> loop list
(** All natural loops, one per header (back edges sharing a header are
    merged into a single loop). *)

val is_back_edge : t -> Graph.edge -> bool

val irreducible_edges : t -> Graph.edge list
(** Retreating edges that are not back edges. Empty for reducible CFGs. *)

val breakable_edges : t -> Graph.edge list
(** All edges that must be broken to make the reachable subgraph acyclic:
    back edges plus irreducible retreating edges. *)

val header_of_break : t -> Graph.edge -> Graph.node
(** For a breakable edge, the node that acts as the loop header when the
    edge is broken (its destination). *)

val depth : t -> Graph.node -> int
(** Loop-nesting depth: 0 outside any loop. *)

val avg_trip_count : t -> loop -> freq:(Graph.edge -> int) -> float
(** Average iterations per loop entry under the given edge profile:
    [back-edge frequency / entry frequency + 1]. Infinite (max_float) when
    the loop is never entered but its back edge runs, 0 if never run. *)
