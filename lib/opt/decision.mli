(** The optimizer decision log.

    Each profile-guided transformation — a call site inlined, a loop
    unrolled, a superblock formed — is recorded as one typed record
    carrying the location, the triggering profile weights, and the
    parameters chosen. {!Ppp_harness.Pipeline} aggregates the log per
    generation of the re-optimization loop and diffs consecutive
    generations, turning "the optimizer did something different" into a
    concrete list of placements gained, lost and kept. *)

type t =
  | Inline of {
      caller : string;
      callee : string;
      block : int;  (** caller block index holding the call site *)
      freq : int;  (** call-site execution count that triggered it *)
      priority : float;  (** hotness / callee size, the ranking key *)
    }
  | Unroll of {
      routine : string;
      header : int;  (** loop header block index *)
      factor : int;  (** actual factor applied (after size halving) *)
      trips : float;  (** average trip count from the profile *)
      back_freq : int;  (** total back-edge frequency *)
    }
  | Superblock of {
      routine : string;
      trace : int list;  (** block indices of the straightened trace *)
      weight : int;  (** flow of the hot path that selected the trace *)
      duplicated : int;  (** side-entrance blocks tail-duplicated *)
      merged : int;  (** jump-linked block pairs merged *)
    }

val key : t -> string
(** Stable identity of the {e placement}, ignoring profile-derived
    magnitudes (frequencies, weights, trip counts): two generations made
    the same decision iff their keys are equal. *)

val routine : t -> string
(** The routine whose body the decision rewrote. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Ppp_obs.Jsonx.t

type diff = {
  added : t list;  (** in current, not previous (by {!key}) *)
  removed : t list;  (** in previous, not current *)
  kept : t list;  (** current decisions whose key already existed *)
}

val diff : previous:t list -> current:t list -> diff

val stability : diff -> float
(** Fraction of the previous generation's placements that survived:
    [kept / (kept + removed)], or 1.0 when the previous log was empty. *)

val diff_json : diff -> Ppp_obs.Jsonx.t
(** [{"added":[..],"removed":[..],"kept":N,"stability":F}]. *)
