module Graph = Ppp_cfg.Graph
module Loop = Ppp_cfg.Loop
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile

type stats = {
  loops_unrolled : int;
  loops_seen : int;
  avg_dynamic_factor : float;
  touched : string list;
  decisions : Decision.t list;
}

(* Unroll one loop of [r] by [factor]: append factor-1 copies of the body;
   back edges of copy i jump to copy i+1's header, the last copy's back
   edges return to the original header. *)
let unroll_loop (r : Ir.routine) (l : Loop.loop) ~factor ~uid =
  let nb = Array.length r.Ir.blocks in
  let body = Array.of_list l.Loop.body in
  let nbody = Array.length body in
  let in_body = Array.make nb false in
  Array.iter (fun v -> in_body.(v) <- true) body;
  let pos = Array.make nb (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) body;
  (* Copy c of body slot i lives at index nb + (c-1)*nbody + i. *)
  let copy_index c i = nb + ((c - 1) * nbody) + i in
  let is_back u v = v = l.Loop.header && in_body.(u) in
  (* Remap a terminator target as seen from copy [c] (c = 0 is the
     original). A back edge goes to the next copy's header (or wraps to
     the original); an internal edge stays within the copy; an exit edge
     leaves to the original outside block. *)
  let remap c u tgt =
    if is_back u tgt then
      if c = factor - 1 then l.Loop.header else copy_index (c + 1) (pos.(l.Loop.header))
    else if in_body.(tgt) && c > 0 then copy_index c pos.(tgt)
    else tgt
  in
  let retarget c u term =
    match term with
    | Ir.Jump t -> Ir.Jump (remap c u t)
    | Ir.Branch (op, t1, t2) -> Ir.Branch (op, remap c u t1, remap c u t2)
    | Ir.Return v -> Ir.Return v
  in
  let blocks = Array.make (nb + ((factor - 1) * nbody)) r.Ir.blocks.(0) in
  Array.iteri
    (fun v (b : Ir.block) ->
      blocks.(v) <- (if in_body.(v) then { b with Ir.term = retarget 0 v b.Ir.term } else b))
    r.Ir.blocks;
  for c = 1 to factor - 1 do
    Array.iteri
      (fun i v ->
        let b = r.Ir.blocks.(v) in
        blocks.(copy_index c i) <-
          {
            b with
            Ir.label = Printf.sprintf "%s_u%d_%d" b.Ir.label uid c;
            term = retarget c v b.Ir.term;
          })
      body
  done;
  { r with Ir.blocks }

(* Copies are labelled "<label>_u<uid>_<copy>". The uid counter of a run
   starts past any uid already present in the program, so an
   already-unrolled program coming back through the unroller (iterative
   re-optimization) gets fresh labels instead of duplicates. *)
let label_uid label =
  match String.rindex_opt label '_' with
  | None | Some 0 -> 0
  | Some j -> (
      match String.rindex_from_opt label (j - 1) '_' with
      | Some i
        when i + 2 < j
             && label.[i + 1] = 'u'
             && int_of_string_opt
                  (String.sub label (j + 1) (String.length label - j - 1))
                <> None -> (
          match int_of_string_opt (String.sub label (i + 2) (j - i - 2)) with
          | Some k -> k
          | None -> 0)
      | _ -> 0)

let max_uid (p : Ir.program) =
  List.fold_left
    (fun acc (r : Ir.routine) ->
      Array.fold_left
        (fun acc (b : Ir.block) -> max acc (label_uid b.Ir.label))
        acc r.Ir.blocks)
    0 p.Ir.routines

(* Innermost loops only: no other loop's header lies strictly inside. *)
let is_innermost loops (l : Loop.loop) =
  List.for_all
    (fun (l' : Loop.loop) ->
      l'.Loop.header = l.Loop.header || not (List.mem l'.Loop.header l.Loop.body))
    (Loop.loops loops)

let run ?(factor = 4) ?(min_trip = 8.0) ?(max_size = 256) (p : Ir.program)
    ~edge_profile =
  let loops_unrolled = ref 0 in
  let loops_seen = ref 0 in
  let weighted_factor = ref 0.0 in
  let weight_total = ref 0.0 in
  let touched = ref [] in
  let decisions = ref [] in
  let uid = ref (max_uid p) in
  let routines =
    List.map
      (fun (r : Ir.routine) ->
        let view = Cfg_view.of_routine r in
        let g = Cfg_view.graph view in
        let prof = Edge_profile.routine edge_profile r.Ir.name in
        let loops = Loop.compute g ~root:(Cfg_view.entry view) in
        let freq e = Edge_profile.freq prof e in
        (* Pick unrollable loops on the original routine; bodies are
           disjoint for innermost loops of distinct headers, so they can
           be unrolled one after another as long as block indices are
           refreshed. We conservatively unroll at most one loop per pass
           and iterate. *)
        let candidates =
          List.filter_map
            (fun (l : Loop.loop) ->
              incr loops_seen;
              let back_freq =
                List.fold_left (fun a e -> a + freq e) 0 l.Loop.back_edges
              in
              if back_freq = 0 then None
              else begin
                let trips = Loop.avg_trip_count loops l ~freq in
                let body_size =
                  List.fold_left
                    (fun a v ->
                      a + Array.length r.Ir.blocks.(v).Ir.instrs + 1)
                    0 l.Loop.body
                in
                let rec fit f =
                  if f <= 1 then None
                  else if body_size * f <= max_size then Some f
                  else fit (f / 2)
                in
                match fit factor with
                | Some f when trips >= min_trip && is_innermost loops l ->
                    Some (l, f, back_freq, trips)
                | _ ->
                    weighted_factor := !weighted_factor +. float_of_int back_freq;
                    weight_total := !weight_total +. float_of_int back_freq;
                    None
              end)
            (Loop.loops loops)
        in
        if candidates <> [] then touched := r.Ir.name :: !touched;
        (* Unroll candidates one at a time; after each unrolling the block
           indices of later candidates are still valid because copies are
           appended and original indices are preserved. *)
        List.fold_left
          (fun r (l, f, back_freq, trips) ->
            incr uid;
            incr loops_unrolled;
            weighted_factor :=
              !weighted_factor +. (float_of_int f *. float_of_int back_freq);
            weight_total := !weight_total +. float_of_int back_freq;
            decisions :=
              Decision.Unroll
                {
                  routine = r.Ir.name;
                  header = l.Loop.header;
                  factor = f;
                  trips;
                  back_freq;
                }
              :: !decisions;
            unroll_loop r l ~factor:f ~uid:!uid)
          r candidates)
      p.Ir.routines
  in
  let p' = { p with Ir.routines } in
  Ppp_ir.Check.program_exn p';
  ( p',
    {
      loops_unrolled = !loops_unrolled;
      loops_seen = !loops_seen;
      avg_dynamic_factor =
        (if !weight_total = 0.0 then 1.0 else !weighted_factor /. !weight_total);
      touched = List.rev !touched;
      decisions = List.rev !decisions;
    } )
