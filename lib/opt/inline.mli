(** Profile-guided inlining (Section 7.3).

    Follows the Arnold et al. cost/benefit scheme the paper uses: each
    call site gets a priority of [callee hotness / callee size]; call
    sites are inlined in decreasing priority until total program size has
    grown by the code-bloat budget. Callees larger than [max_callee_size]
    IR statements and (mutually) recursive call chains are never inlined.
    Inlining is iterative, so a hot call inside an inlined body can be
    inlined in a later round, up to the bloat budget. *)

type stats = {
  sites_inlined : int;
  dynamic_calls_inlined : int;  (** calls removed, weighted by frequency *)
  dynamic_calls_total : int;
  size_before : int;
  size_after : int;
  touched : string list;
      (** routines whose body changed (call sites were inlined into
          them), in program order — the dirty set an incremental
          re-optimizer must invalidate *)
  decisions : Decision.t list;
      (** one {!Decision.Inline} per site spliced, in splice order *)
}

val pct_dynamic_inlined : stats -> float
(** The "% calls inlined" column of Table 1. *)

val run :
  ?code_bloat:float ->
  ?max_callee_size:int ->
  ?min_site_freq:int ->
  Ppp_ir.Ir.program ->
  block_freq:(routine:string -> block:int -> int) ->
  Ppp_ir.Ir.program * stats
(** [run p ~block_freq] inlines call sites of [p]. [block_freq] gives the
    execution count of a basic block (a call site executes as often as
    its block), derivable from an edge profile. Call sites executing
    fewer than [min_site_freq] times are not candidates (Arnold et al.'s
    hotness criterion — cold sites have no expected benefit). Defaults:
    [code_bloat = 0.05] (5%), [max_callee_size = 200] (Section 7.3),
    [min_site_freq = 16]. *)
