(* The optimizer decision log: every transformation the three
   profile-guided passes apply is recorded as one typed record, so a
   generation of the re-optimization loop can be diffed against the
   previous one — which placements survived, which flipped — instead of
   comparing only scalar stats. *)

module Jsonx = Ppp_obs.Jsonx

type t =
  | Inline of {
      caller : string;
      callee : string;
      block : int;
      freq : int;
      priority : float;
    }
  | Unroll of {
      routine : string;
      header : int;
      factor : int;
      trips : float;
      back_freq : int;
    }
  | Superblock of {
      routine : string;
      trace : int list;
      weight : int;
      duplicated : int;
      merged : int;
    }

(* The identity of a decision, ignoring profile-derived magnitudes: two
   generations made "the same" placement when the pass, the location and
   the shape parameter agree, even if the triggering frequencies moved.
   This is what placement stability is measured over. *)
let key = function
  | Inline { caller; callee; block; _ } ->
      Printf.sprintf "inline:%s:%d:%s" caller block callee
  | Unroll { routine; header; factor; _ } ->
      Printf.sprintf "unroll:%s:%d:x%d" routine header factor
  | Superblock { routine; trace; _ } ->
      Printf.sprintf "superblock:%s:%s" routine
        (String.concat "-" (List.map string_of_int trace))

let routine = function
  | Inline { caller; _ } -> caller
  | Unroll { routine; _ } -> routine
  | Superblock { routine; _ } -> routine

let pp ppf d =
  match d with
  | Inline { caller; callee; block; freq; priority } ->
      Format.fprintf ppf "inline %s into %s.b%d (freq %d, priority %.2f)"
        callee caller block freq priority
  | Unroll { routine; header; factor; trips; back_freq } ->
      Format.fprintf ppf "unroll %s.b%d x%d (%.1f trips, back freq %d)"
        routine header factor trips back_freq
  | Superblock { routine; trace; weight; duplicated; merged } ->
      Format.fprintf ppf
        "superblock %s trace [%s] (weight %d, %d duplicated, %d merged)"
        routine
        (String.concat " " (List.map string_of_int trace))
        weight duplicated merged

let to_json d =
  match d with
  | Inline { caller; callee; block; freq; priority } ->
      Jsonx.Obj
        [
          ("pass", Jsonx.Str "inline");
          ("caller", Jsonx.Str caller);
          ("callee", Jsonx.Str callee);
          ("block", Jsonx.Int block);
          ("freq", Jsonx.Int freq);
          ("priority", Jsonx.Float priority);
        ]
  | Unroll { routine; header; factor; trips; back_freq } ->
      Jsonx.Obj
        [
          ("pass", Jsonx.Str "unroll");
          ("routine", Jsonx.Str routine);
          ("header", Jsonx.Int header);
          ("factor", Jsonx.Int factor);
          ("trips", Jsonx.Float trips);
          ("back_freq", Jsonx.Int back_freq);
        ]
  | Superblock { routine; trace; weight; duplicated; merged } ->
      Jsonx.Obj
        [
          ("pass", Jsonx.Str "superblock");
          ("routine", Jsonx.Str routine);
          ("trace", Jsonx.Arr (List.map (fun b -> Jsonx.Int b) trace));
          ("weight", Jsonx.Int weight);
          ("duplicated", Jsonx.Int duplicated);
          ("merged", Jsonx.Int merged);
        ]

type diff = { added : t list; removed : t list; kept : t list }

let diff ~previous ~current =
  let prev_keys = Hashtbl.create 17 in
  List.iter (fun d -> Hashtbl.replace prev_keys (key d) ()) previous;
  let cur_keys = Hashtbl.create 17 in
  List.iter (fun d -> Hashtbl.replace cur_keys (key d) ()) current;
  {
    added = List.filter (fun d -> not (Hashtbl.mem prev_keys (key d))) current;
    removed =
      List.filter (fun d -> not (Hashtbl.mem cur_keys (key d))) previous;
    kept = List.filter (fun d -> Hashtbl.mem prev_keys (key d)) current;
  }

(* Fraction of the previous generation's placements that survived into
   this one; 1.0 when there was nothing before (vacuously stable). *)
let stability { removed; kept; _ } =
  let prev = List.length removed + List.length kept in
  if prev = 0 then 1.0 else float_of_int (List.length kept) /. float_of_int prev

let diff_json d =
  Jsonx.Obj
    [
      ("added", Jsonx.Arr (List.map to_json d.added));
      ("removed", Jsonx.Arr (List.map to_json d.removed));
      ("kept", Jsonx.Int (List.length d.kept));
      ("stability", Jsonx.Float (stability d));
    ]
