(** Profile-guided loop unrolling (Section 7.3).

    Innermost loops with an average trip count of at least [min_trip]
    (default 8) are unrolled by [factor] (default 4, halved until the
    body fits in [max_size] = 256 IR statements, like Scale). Unrolling
    replicates the whole body: the back edges of copy [i] become forward
    edges into copy [i+1]'s header and only the last copy branches back,
    so correctness needs no trip-count guarantee, every copy keeps its
    loop exits, and acyclic paths now span up to [factor] iterations —
    the longer, harder-to-predict paths of Table 1. *)

type stats = {
  loops_unrolled : int;
  loops_seen : int;
  avg_dynamic_factor : float;
      (** unroll factor averaged over dynamic loop iterations (the
          "Avg unroll factor" column of Table 1) *)
  touched : string list;
      (** routines that had at least one loop unrolled, in program
          order — the dirty set an incremental re-optimizer must
          invalidate *)
  decisions : Decision.t list;
      (** one {!Decision.Unroll} per loop unrolled, in application
          order *)
}

val run :
  ?factor:int ->
  ?min_trip:float ->
  ?max_size:int ->
  Ppp_ir.Ir.program ->
  edge_profile:Ppp_profile.Edge_profile.program ->
  Ppp_ir.Ir.program * stats
(** The edge profile must be for [p] itself (the staged optimizer
    re-profiles after inlining). *)
