module Ir = Ppp_ir.Ir
module Path = Ppp_profile.Path
module Cfg_view = Ppp_ir.Cfg_view
module Graph = Ppp_cfg.Graph

type mismatch_reason =
  | Edge_gone of { from_block : int; to_block : int }
  | Stale_path

type mismatch = {
  mm_routine : string;
  mm_position : int;
  mm_reason : mismatch_reason;
}

let pp_mismatch ppf m =
  match m.mm_reason with
  | Edge_gone { from_block; to_block } ->
      Format.fprintf ppf
        "superblock trace for %s stops at step %d: edge %d->%d no longer in \
         the CFG"
        m.mm_routine m.mm_position from_block to_block
  | Stale_path ->
      Format.fprintf ppf
        "superblock path for %s is stale at step %d: edge id outside the \
         routine's CFG"
        m.mm_routine m.mm_position

type stats = {
  routines_optimized : int;
  blocks_duplicated : int;
  jumps_merged : int;
  touched : string list;
  mismatches : mismatch list;
  decisions : Decision.t list;
}

let empty_stats =
  {
    routines_optimized = 0;
    blocks_duplicated = 0;
    jumps_merged = 0;
    touched = [];
    mismatches = [];
    decisions = [];
  }

let targets (term : Ir.terminator) =
  match term with
  | Ir.Jump l -> [ l ]
  | Ir.Branch (_, l1, l2) -> [ l1; l2 ]
  | Ir.Return _ -> []

let retarget term ~from ~to_ =
  match term with
  | Ir.Jump l -> Ir.Jump (if l = from then to_ else l)
  | Ir.Branch (c, l1, l2) ->
      Ir.Branch (c, (if l1 = from then to_ else l1), if l2 = from then to_ else l2)
  | Ir.Return v -> Ir.Return v

(* Number of predecessors of each block. *)
let pred_counts blocks =
  let n = Array.length blocks in
  let preds = Array.make n 0 in
  Array.iter
    (fun (b : Ir.block) ->
      List.iter (fun t -> preds.(t) <- preds.(t) + 1) (targets b.Ir.term))
    blocks;
  preds

(* Drop unreachable blocks and renumber. *)
let prune blocks =
  let n = Array.length blocks in
  let reached = Array.make n false in
  let rec visit i =
    if not reached.(i) then begin
      reached.(i) <- true;
      List.iter visit (targets blocks.(i).Ir.term)
    end
  in
  visit 0;
  let remap = Array.make n (-1) in
  let kept = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun i b ->
      if reached.(i) then begin
        remap.(i) <- !count;
        incr count;
        kept := b :: !kept
      end)
    blocks;
  let remap_term = function
    | Ir.Jump l -> Ir.Jump remap.(l)
    | Ir.Branch (c, l1, l2) -> Ir.Branch (c, remap.(l1), remap.(l2))
    | Ir.Return v -> Ir.Return v
  in
  Array.of_list (List.rev !kept)
  |> Array.map (fun (b : Ir.block) -> { b with Ir.term = remap_term b.Ir.term })

(* Duplicated blocks are labelled "<label>_sb<uid>". Starting past any
   uid already present keeps labels fresh when an already-straightened
   routine comes back through formation (iterative re-optimization);
   [Check.program_exn] rejects duplicate labels. *)
let label_uid label =
  match String.rindex_opt label '_' with
  | Some i
    when i + 3 <= String.length label
         && String.sub label (i + 1) 2 = "sb" -> (
      match
        int_of_string_opt (String.sub label (i + 3) (String.length label - i - 3))
      with
      | Some k when k > 0 -> k
      | _ -> 0)
  | _ -> 0

let optimize_routine (r : Ir.routine) trace ~max_trace ~dup_count ~merge_count =
  let blocks = ref (Array.to_list r.Ir.blocks |> Array.of_list) in
  let append b =
    let arr = Array.make (Array.length !blocks + 1) b in
    Array.blit !blocks 0 arr 0 (Array.length !blocks);
    blocks := arr;
    Array.length !blocks - 1
  in
  (* Phase 1: tail-duplicate side entrances along the trace. *)
  let uid =
    ref
      (Array.fold_left
         (fun acc (b : Ir.block) -> max acc (label_uid b.Ir.label))
         0 r.Ir.blocks)
  in
  let mismatch = ref None in
  let cur = ref (List.hd trace) in
  let prev_orig = ref (List.hd trace) in
  let visited = ref [ List.hd trace ] in
  let stopped = ref false in
  List.iteri
    (fun i v ->
      if i > 0 && i < max_trace && not !stopped then begin
        let u = !cur in
        let bu = !blocks.(u) in
        (* Follow the trace only while each edge still exists from the
           current (possibly duplicated) block. A profile decoded against
           an older CFG — e.g. salvaged through [Stale_match] after the
           routine already changed — can name an edge this body no longer
           has; stop there and report it, rather than straightening
           blocks the recorded executions never connected. *)
        if not (List.mem v (targets bu.Ir.term)) then begin
          stopped := true;
          mismatch :=
            Some
              {
                mm_routine = r.Ir.name;
                mm_position = i;
                mm_reason = Edge_gone { from_block = !prev_orig; to_block = v };
              }
        end
        else begin
          (let preds = pred_counts !blocks in
           if v <> 0 && preds.(v) > 1 && not (List.mem v !visited) then begin
             incr uid;
             incr dup_count;
             let copy =
               {
                 !blocks.(v) with
                 Ir.label = Printf.sprintf "%s_sb%d" !blocks.(v).Ir.label !uid;
               }
             in
             let v' = append copy in
             !blocks.(u) <-
               { bu with Ir.term = retarget bu.Ir.term ~from:v ~to_:v' };
             cur := v';
             visited := v' :: !visited
           end
           else begin
             cur := v;
             visited := v :: !visited
           end);
          prev_orig := v
        end
      end)
    trace;
  (* Phase 2: merge jump-linked single-predecessor chains. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let preds = pred_counts !blocks in
    Array.iteri
      (fun i (b : Ir.block) ->
        match b.Ir.term with
        | Ir.Jump v when v <> 0 && v <> i && preds.(v) = 1 ->
            let bv = !blocks.(v) in
            !blocks.(i) <-
              {
                b with
                Ir.instrs = Array.append b.Ir.instrs bv.Ir.instrs;
                term = bv.Ir.term;
              };
            (* Make the absorbed block self-looping garbage so it cannot
               be merged again this round; pruning removes it. *)
            !blocks.(v) <- { bv with Ir.instrs = [||]; term = Ir.Jump v };
            incr merge_count;
            changed := true
        | _ -> ())
      !blocks
  done;
  ({ r with Ir.blocks = prune !blocks }, !mismatch)



(* The first position in [path] holding an edge id outside the view's
   CFG, if any — the signature of a profile decoded against a different
   (older) body than the one being straightened. *)
let first_stale_position view path =
  let nedges = Graph.num_edges (Cfg_view.graph view) in
  let rec go i = function
    | [] -> None
    | e :: rest -> if e < 0 || e >= nedges then Some i else go (i + 1) rest
  in
  go 0 path

(* [path_weights] feeds ONLY the decision log's [weight] field: the
   transformation is a pure function of the program and [hot_paths],
   byte-for-byte identical under any weights (a property test pins
   this). Keeping flow out of the transform is what makes the decision
   diff stable across generations whose profiles differ only in
   magnitude. *)
let form ?(max_trace = 32) ?(path_weights = []) (p : Ir.program) ~hot_paths =
  let dup_count = ref 0 in
  let merge_count = ref 0 in
  let optimized = ref 0 in
  let touched = ref [] in
  let mismatches = ref [] in
  let decisions = ref [] in
  let routines =
    List.map
      (fun (r : Ir.routine) ->
        match List.assoc_opt r.Ir.name hot_paths with
        | None -> r
        | Some path -> (
            let view = Cfg_view.of_routine r in
            match first_stale_position view path with
            | Some pos ->
                mismatches :=
                  {
                    mm_routine = r.Ir.name;
                    mm_position = pos;
                    mm_reason = Stale_path;
                  }
                  :: !mismatches;
                r
            | None ->
                let trace = Path.blocks view path in
                if List.length trace < 2 then r
                else begin
                  (* Per-routine counters so the decision record carries
                     this trace's own duplication/merge work, not the
                     running total. *)
                  let dup = ref 0 and merge = ref 0 in
                  let r', mm =
                    optimize_routine r trace ~max_trace ~dup_count:dup
                      ~merge_count:merge
                  in
                  (match mm with
                  | Some m -> mismatches := m :: !mismatches
                  | None -> ());
                  dup_count := !dup_count + !dup;
                  merge_count := !merge_count + !merge;
                  if !dup + !merge > 0 then begin
                    incr optimized;
                    decisions :=
                      Decision.Superblock
                        {
                          routine = r.Ir.name;
                          trace;
                          weight =
                            Option.value ~default:0
                              (List.assoc_opt r.Ir.name path_weights);
                          duplicated = !dup;
                          merged = !merge;
                        }
                      :: !decisions
                  end;
                  if r' <> r then touched := r.Ir.name :: !touched;
                  r'
                end))
      p.Ir.routines
  in
  let p' = { p with Ir.routines } in
  Ppp_ir.Check.program_exn p';
  ( p',
    {
      routines_optimized = !optimized;
      blocks_duplicated = !dup_count;
      jumps_merged = !merge_count;
      touched = List.rev !touched;
      mismatches = List.rev !mismatches;
      decisions = List.rev !decisions;
    } )
