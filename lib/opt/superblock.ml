module Ir = Ppp_ir.Ir
module Path = Ppp_profile.Path
module Cfg_view = Ppp_ir.Cfg_view

type stats = {
  routines_optimized : int;
  blocks_duplicated : int;
  jumps_merged : int;
  decisions : Decision.t list;
}

let targets (term : Ir.terminator) =
  match term with
  | Ir.Jump l -> [ l ]
  | Ir.Branch (_, l1, l2) -> [ l1; l2 ]
  | Ir.Return _ -> []

let retarget term ~from ~to_ =
  match term with
  | Ir.Jump l -> Ir.Jump (if l = from then to_ else l)
  | Ir.Branch (c, l1, l2) ->
      Ir.Branch (c, (if l1 = from then to_ else l1), if l2 = from then to_ else l2)
  | Ir.Return v -> Ir.Return v

(* Number of predecessors of each block. *)
let pred_counts blocks =
  let n = Array.length blocks in
  let preds = Array.make n 0 in
  Array.iter
    (fun (b : Ir.block) ->
      List.iter (fun t -> preds.(t) <- preds.(t) + 1) (targets b.Ir.term))
    blocks;
  preds

(* Drop unreachable blocks and renumber. *)
let prune blocks =
  let n = Array.length blocks in
  let reached = Array.make n false in
  let rec visit i =
    if not reached.(i) then begin
      reached.(i) <- true;
      List.iter visit (targets blocks.(i).Ir.term)
    end
  in
  visit 0;
  let remap = Array.make n (-1) in
  let kept = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun i b ->
      if reached.(i) then begin
        remap.(i) <- !count;
        incr count;
        kept := b :: !kept
      end)
    blocks;
  let remap_term = function
    | Ir.Jump l -> Ir.Jump remap.(l)
    | Ir.Branch (c, l1, l2) -> Ir.Branch (c, remap.(l1), remap.(l2))
    | Ir.Return v -> Ir.Return v
  in
  Array.of_list (List.rev !kept)
  |> Array.map (fun (b : Ir.block) -> { b with Ir.term = remap_term b.Ir.term })

let optimize_routine (r : Ir.routine) trace ~max_trace ~dup_count ~merge_count =
  let blocks = ref (Array.to_list r.Ir.blocks |> Array.of_list) in
  let append b =
    let arr = Array.make (Array.length !blocks + 1) b in
    Array.blit !blocks 0 arr 0 (Array.length !blocks);
    blocks := arr;
    Array.length !blocks - 1
  in
  (* Phase 1: tail-duplicate side entrances along the trace. *)
  let uid = ref 0 in
  let cur = ref (List.hd trace) in
  let visited = ref [ List.hd trace ] in
  List.iteri
    (fun i v ->
      if i > 0 && i < max_trace then begin
        let u = !cur in
        let bu = !blocks.(u) in
        (* Only continue if the trace edge still exists from the current
           (possibly duplicated) block. *)
        if List.mem v (targets bu.Ir.term) then
          let preds = pred_counts !blocks in
          if v <> 0 && preds.(v) > 1 && not (List.mem v !visited) then begin
            incr uid;
            incr dup_count;
            let copy =
              {
                !blocks.(v) with
                Ir.label = Printf.sprintf "%s_sb%d" !blocks.(v).Ir.label !uid;
              }
            in
            let v' = append copy in
            !blocks.(u) <-
              { bu with Ir.term = retarget bu.Ir.term ~from:v ~to_:v' };
            cur := v';
            visited := v' :: !visited
          end
          else begin
            cur := v;
            visited := v :: !visited
          end
      end)
    trace;
  (* Phase 2: merge jump-linked single-predecessor chains. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let preds = pred_counts !blocks in
    Array.iteri
      (fun i (b : Ir.block) ->
        match b.Ir.term with
        | Ir.Jump v when v <> 0 && v <> i && preds.(v) = 1 ->
            let bv = !blocks.(v) in
            !blocks.(i) <-
              {
                b with
                Ir.instrs = Array.append b.Ir.instrs bv.Ir.instrs;
                term = bv.Ir.term;
              };
            (* Make the absorbed block self-looping garbage so it cannot
               be merged again this round; pruning removes it. *)
            !blocks.(v) <- { bv with Ir.instrs = [||]; term = Ir.Jump v };
            incr merge_count;
            changed := true
        | _ -> ())
      !blocks
  done;
  { r with Ir.blocks = prune !blocks }



let form ?(max_trace = 32) ?(path_weights = []) (p : Ir.program) ~hot_paths =
  let dup_count = ref 0 in
  let merge_count = ref 0 in
  let optimized = ref 0 in
  let decisions = ref [] in
  let routines =
    List.map
      (fun (r : Ir.routine) ->
        match List.assoc_opt r.Ir.name hot_paths with
        | None -> r
        | Some path ->
            let view = Cfg_view.of_routine r in
            let trace = Path.blocks view path in
            if List.length trace < 2 then r
            else begin
              incr optimized;
              (* Per-routine counters so the decision record carries this
                 trace's own duplication/merge work, not the running total. *)
              let dup = ref 0 and merge = ref 0 in
              let r' =
                optimize_routine r trace ~max_trace ~dup_count:dup
                  ~merge_count:merge
              in
              dup_count := !dup_count + !dup;
              merge_count := !merge_count + !merge;
              decisions :=
                Decision.Superblock
                  {
                    routine = r.Ir.name;
                    trace;
                    weight =
                      Option.value ~default:0
                        (List.assoc_opt r.Ir.name path_weights);
                    duplicated = !dup;
                    merged = !merge;
                  }
                :: !decisions;
              r'
            end)
      p.Ir.routines
  in
  let p' = { p with Ir.routines } in
  Ppp_ir.Check.program_exn p';
  ( p',
    {
      routines_optimized = !optimized;
      blocks_duplicated = !dup_count;
      jumps_merged = !merge_count;
      decisions = List.rev !decisions;
    } )
