module Ir = Ppp_ir.Ir

type stats = {
  sites_inlined : int;
  dynamic_calls_inlined : int;
  dynamic_calls_total : int;
  size_before : int;
  size_after : int;
  touched : string list;
  decisions : Decision.t list;
}

let pct_dynamic_inlined s =
  if s.dynamic_calls_total = 0 then 0.0
  else float_of_int s.dynamic_calls_inlined /. float_of_int s.dynamic_calls_total

(* Working copy of a routine with per-block frequency annotations that
   survive splicing. *)
type work = { mutable routine : Ir.routine; mutable freqs : int array }

type site = {
  caller : string;
  block : int;
  instr : int;
  callee : string;
  freq : int;
  priority : float;
}

let call_sites works =
  Hashtbl.fold
    (fun caller w acc ->
      let acc = ref acc in
      Array.iteri
        (fun bi (b : Ir.block) ->
          Array.iteri
            (fun ii ins ->
              match ins with
              | Ir.Call (_, callee, _) ->
                  acc :=
                    {
                      caller;
                      block = bi;
                      instr = ii;
                      callee;
                      freq = w.freqs.(bi);
                      priority = 0.0;
                    }
                    :: !acc
              | _ -> ())
            b.Ir.instrs)
        w.routine.Ir.blocks;
      !acc)
    works []

(* Callees on a call-graph cycle through the caller must not be inlined.
   [reaches works a b] is true when routine [a] (transitively) calls [b]. *)
let reaches works a b =
  let seen = Hashtbl.create 7 in
  let rec go name =
    name = b
    || (not (Hashtbl.mem seen name))
       && begin
            Hashtbl.replace seen name ();
            match Hashtbl.find_opt works name with
            | None -> false
            | Some w ->
                Array.exists
                  (fun (blk : Ir.block) ->
                    Array.exists
                      (function Ir.Call (_, c, _) -> go c | _ -> false)
                      blk.Ir.instrs)
                  w.routine.Ir.blocks
          end
  in
  go a

(* Splice [callee] into [caller] at the given call site. Caller block
   indices are preserved; the callee body and the continuation block are
   appended. *)
let splice w (callee : Ir.routine) callee_freqs ~block ~instr ~uid =
  let caller = w.routine in
  let nb = Array.length caller.Ir.blocks in
  let ncallee = Array.length callee.Ir.blocks in
  let site_block = caller.Ir.blocks.(block) in
  let dst, args =
    match site_block.Ir.instrs.(instr) with
    | Ir.Call (dst, _, args) -> (dst, args)
    | _ -> invalid_arg "Inline.splice: not a call site"
  in
  let shift = caller.Ir.nregs in
  let shift_operand = function
    | Ir.Reg r -> Ir.Reg (r + shift)
    | Ir.Imm i -> Ir.Imm i
  in
  let shift_instr = function
    | Ir.Mov (d, v) -> Ir.Mov (d + shift, shift_operand v)
    | Ir.Binop (d, op, a, b) ->
        Ir.Binop (d + shift, op, shift_operand a, shift_operand b)
    | Ir.Load (d, arr, i) -> Ir.Load (d + shift, arr, shift_operand i)
    | Ir.Store (arr, i, v) -> Ir.Store (arr, shift_operand i, shift_operand v)
    | Ir.Call (d, f, xs) ->
        Ir.Call (Option.map (fun r -> r + shift) d, f, List.map shift_operand xs)
    | Ir.Out v -> Ir.Out (shift_operand v)
  in
  let post_index = nb + ncallee in
  (* The call block keeps its instructions up to the call, then assigns
     the arguments to the callee's (shifted) parameter registers and jumps
     to the callee entry. *)
  let arg_movs =
    List.mapi (fun i a -> Ir.Mov (i + shift, a)) args |> Array.of_list
  in
  let pre =
    {
      Ir.label = site_block.Ir.label;
      instrs = Array.append (Array.sub site_block.Ir.instrs 0 instr) arg_movs;
      term = Ir.Jump nb;
    }
  in
  let post =
    {
      Ir.label = Printf.sprintf "inl%d_cont" uid;
      instrs =
        Array.sub site_block.Ir.instrs (instr + 1)
          (Array.length site_block.Ir.instrs - instr - 1);
      term = site_block.Ir.term;
    }
  in
  let callee_blocks =
    Array.mapi
      (fun i (b : Ir.block) ->
        let term =
          match b.Ir.term with
          | Ir.Jump l -> Ir.Jump (nb + l)
          | Ir.Branch (c, l1, l2) -> Ir.Branch (shift_operand c, nb + l1, nb + l2)
          | Ir.Return v -> (
              (* The return becomes an assignment to the caller's result
                 register (if any) and a jump to the continuation. *)
              ignore v;
              Ir.Jump post_index)
        in
        let extra =
          match (b.Ir.term, dst) with
          | Ir.Return (Some v), Some d -> [| Ir.Mov (d, shift_operand v) |]
          | Ir.Return None, Some d -> [| Ir.Mov (d, Ir.Imm 0) |]
          | _ -> [||]
        in
        ignore i;
        {
          Ir.label = Printf.sprintf "inl%d_%s" uid b.Ir.label;
          instrs = Array.append (Array.map shift_instr b.Ir.instrs) extra;
          term;
        })
      callee.Ir.blocks
  in
  let blocks = Array.make (nb + ncallee + 1) pre in
  Array.blit caller.Ir.blocks 0 blocks 0 nb;
  blocks.(block) <- pre;
  Array.blit callee_blocks 0 blocks nb ncallee;
  blocks.(post_index) <- post;
  (* Frequency annotations: the callee body is scaled to this call site's
     share of the callee's total invocations. *)
  let site_freq = w.freqs.(block) in
  let callee_entry = max 1 callee_freqs.(0) in
  let scaled =
    Array.map (fun f -> f * site_freq / callee_entry) callee_freqs
  in
  let freqs = Array.make (nb + ncallee + 1) 0 in
  Array.blit w.freqs 0 freqs 0 nb;
  Array.blit scaled 0 freqs nb ncallee;
  freqs.(post_index) <- site_freq;
  w.routine <- { caller with Ir.blocks; nregs = caller.Ir.nregs + callee.Ir.nregs };
  w.freqs <- freqs

let run ?(code_bloat = 0.05) ?(max_callee_size = 200) ?(min_site_freq = 16)
    (p : Ir.program) ~block_freq =
  let size_before = Ir.program_size p in
  let budget = size_before + int_of_float (ceil (code_bloat *. float_of_int size_before)) in
  let works = Hashtbl.create 17 in
  List.iter
    (fun (r : Ir.routine) ->
      let freqs =
        Array.init (Array.length r.Ir.blocks) (fun bi ->
            block_freq ~routine:r.Ir.name ~block:bi)
      in
      Hashtbl.replace works r.Ir.name { routine = r; freqs })
    p.routines;
  let dynamic_calls_total =
    List.fold_left
      (fun acc s -> acc + s.freq)
      0 (call_sites works)
  in
  let sites_inlined = ref 0 in
  let dynamic_inlined = ref 0 in
  let decisions = ref [] in
  let touched = Hashtbl.create 7 in
  (* Spliced blocks are labelled "inl<uid>_...". Starting past any uid
     already present keeps labels fresh when an already-inlined program
     comes back through the inliner (iterative re-optimization). *)
  let label_uid label =
    if String.length label > 4 && String.sub label 0 3 = "inl" then
      match String.index_opt label '_' with
      | Some j when j > 3 -> (
          match int_of_string_opt (String.sub label 3 (j - 3)) with
          | Some k -> k
          | None -> 0)
      | _ -> 0
    else 0
  in
  let uid =
    ref
      (List.fold_left
         (fun acc (r : Ir.routine) ->
           Array.fold_left
             (fun acc (b : Ir.block) -> max acc (label_uid b.Ir.label))
             acc r.Ir.blocks)
         0 p.routines)
  in
  let current_size () =
    Hashtbl.fold (fun _ w acc -> acc + Ir.num_instrs w.routine) works 0
  in
  let continue = ref true in
  while !continue do
    let candidates =
      List.filter_map
        (fun s ->
          if s.freq < min_site_freq then None
          else
            match Hashtbl.find_opt works s.callee with
            | None -> None
            | Some cw ->
                let csize = Ir.num_instrs cw.routine in
                if csize > max_callee_size then None
                else if current_size () + csize > budget then None
                else if reaches works s.callee s.caller then None
                else Some { s with priority = float_of_int s.freq /. float_of_int csize })
        (call_sites works)
    in
    match
      List.sort
        (fun a b ->
          match compare b.priority a.priority with
          | 0 -> compare (a.caller, a.block, a.instr) (b.caller, b.block, b.instr)
          | c -> c)
        candidates
    with
    | [] -> continue := false
    | best :: _ ->
        let w = Hashtbl.find works best.caller in
        let cw = Hashtbl.find works best.callee in
        incr uid;
        splice w cw.routine cw.freqs ~block:best.block ~instr:best.instr ~uid:!uid;
        Hashtbl.replace touched best.caller ();
        incr sites_inlined;
        dynamic_inlined := !dynamic_inlined + best.freq;
        decisions :=
          Decision.Inline
            {
              caller = best.caller;
              callee = best.callee;
              block = best.block;
              freq = best.freq;
              priority = best.priority;
            }
          :: !decisions
  done;
  let routines =
    List.map (fun (r : Ir.routine) -> (Hashtbl.find works r.Ir.name).routine) p.routines
  in
  let p' = { p with Ir.routines } in
  Ppp_ir.Check.program_exn p';
  ( p',
    {
      sites_inlined = !sites_inlined;
      dynamic_calls_inlined = !dynamic_inlined;
      dynamic_calls_total;
      size_before;
      size_after = Ir.program_size p';
      touched =
        List.filter_map
          (fun (r : Ir.routine) ->
            if Hashtbl.mem touched r.Ir.name then Some r.Ir.name else None)
          p.routines;
      decisions = List.rev !decisions;
    } )
