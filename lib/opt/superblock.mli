(** Superblock formation from hot paths — the consumer the paper's
    introduction motivates: a dynamic optimizer that uses the path
    profile to straighten the hottest traces.

    Along a hot path, every side entrance is removed by tail duplication
    (a join block reached from off the path gets a private copy for the
    path), and jump-linked blocks are merged, eliminating the jump. The
    transformation is semantics-preserving for any input; the hot path
    simply executes fewer control transfers. *)

type mismatch_reason =
  | Edge_gone of { from_block : int; to_block : int }
      (** the trace needed CFG edge [from_block -> to_block] and the
          current body no longer has it; straightening stopped there *)
  | Stale_path
      (** the recorded path names edge ids outside the routine's CFG —
          a profile decoded against an older body (e.g. salvaged through
          [Stale_match]); the routine was left untouched *)

type mismatch = {
  mm_routine : string;
  mm_position : int;  (** 0-based step in the trace/path where following stopped *)
  mm_reason : mismatch_reason;
}
(** A hot path that no longer matches the CFG it is being applied to.
    Never an error: formation degrades to the longest matching prefix
    (or a no-op) and reports what it skipped, so the caller can surface
    a diagnostic instead of silence. *)

val pp_mismatch : Format.formatter -> mismatch -> unit

type stats = {
  routines_optimized : int;
  blocks_duplicated : int;
  jumps_merged : int;
  touched : string list;
      (** routines whose body actually changed, in program order — the
          dirty set an incremental re-optimizer must invalidate *)
  mismatches : mismatch list;
      (** hot paths that no longer matched their CFG, in program order *)
  decisions : Decision.t list;
      (** one {!Decision.Superblock} per routine straightened (i.e. with
          at least one duplication or merge), in program order *)
}

val empty_stats : stats

val form :
  ?max_trace:int ->
  ?path_weights:(string * int) list ->
  Ppp_ir.Ir.program ->
  hot_paths:(string * Ppp_profile.Path.t) list ->
  Ppp_ir.Ir.program * stats
(** [form p ~hot_paths] straightens the first (hottest) listed path of
    each routine. [max_trace] bounds the blocks considered per trace
    (default 32).

    [path_weights] optionally supplies each routine's selected-path flow
    so the decision log records what triggered the trace; it feeds
    {e only} the log's [weight] field and never affects the transformed
    program — [form] is a pure function of [p] and [hot_paths], which a
    property test pins.

    Never raises on stale or mismatched paths: edge ids outside a
    routine's CFG, or trace edges the body no longer has, become
    {!mismatch} records and the routine keeps (a prefix of) its
    straightening. [Ppp_ir.Check.program_exn] still validates the result,
    so a malformed {e program} (rather than profile) is loud. *)
