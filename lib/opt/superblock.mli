(** Superblock formation from hot paths — the consumer the paper's
    introduction motivates: a dynamic optimizer that uses the path
    profile to straighten the hottest traces.

    Along a hot path, every side entrance is removed by tail duplication
    (a join block reached from off the path gets a private copy for the
    path), and jump-linked blocks are merged, eliminating the jump. The
    transformation is semantics-preserving for any input; the hot path
    simply executes fewer control transfers. *)

type stats = {
  routines_optimized : int;
  blocks_duplicated : int;
  jumps_merged : int;
  decisions : Decision.t list;
      (** one {!Decision.Superblock} per routine straightened, in
          program order *)
}

val form :
  ?max_trace:int ->
  ?path_weights:(string * int) list ->
  Ppp_ir.Ir.program ->
  hot_paths:(string * Ppp_profile.Path.t) list ->
  Ppp_ir.Ir.program * stats
(** [form p ~hot_paths] straightens the first (hottest) listed path of
    each routine. [max_trace] bounds the blocks considered per trace
    (default 32). [path_weights] optionally supplies each routine's
    selected-path flow so the decision log records what triggered the
    trace; it never affects the transformation. *)
