type kind = Int | Fp

type bench = {
  bench_name : string;
  kind : kind;
  build : scale:int -> Ppp_ir.Ir.program;
}

let all =
  [
    { bench_name = "vpr"; kind = Int; build = Spec_int.vpr };
    { bench_name = "mcf"; kind = Int; build = Spec_int.mcf };
    { bench_name = "crafty"; kind = Int; build = Spec_int.crafty };
    { bench_name = "parser"; kind = Int; build = Spec_int.parser };
    { bench_name = "perlbmk"; kind = Int; build = Spec_int.perlbmk };
    { bench_name = "gap"; kind = Int; build = Spec_int.gap };
    { bench_name = "bzip2"; kind = Int; build = Spec_int.bzip2 };
    { bench_name = "twolf"; kind = Int; build = Spec_int.twolf };
    { bench_name = "wupwise"; kind = Fp; build = Spec_fp.wupwise };
    { bench_name = "swim"; kind = Fp; build = Spec_fp.swim };
    { bench_name = "mgrid"; kind = Fp; build = Spec_fp.mgrid };
    { bench_name = "applu"; kind = Fp; build = Spec_fp.applu };
    { bench_name = "mesa"; kind = Fp; build = Spec_fp.mesa };
    { bench_name = "art"; kind = Fp; build = Spec_fp.art };
    { bench_name = "equake"; kind = Fp; build = Spec_fp.equake };
    { bench_name = "ammp"; kind = Fp; build = Spec_fp.ammp };
    { bench_name = "sixtrack"; kind = Fp; build = Spec_fp.sixtrack };
    { bench_name = "apsi"; kind = Fp; build = Spec_fp.apsi };
  ]

let find_opt name = List.find_opt (fun b -> b.bench_name = name) all

let find name =
  match find_opt name with Some b -> b | None -> raise Not_found

let names () = List.map (fun b -> b.bench_name) all
