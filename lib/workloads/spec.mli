(** The benchmark registry: the 18 SPEC2000-shaped workloads used to
    regenerate the paper's tables and figures (the paper itself omits
    gzip, vortex and gcc — Section 7.2 — and so do we; the remaining
    suite matches its benchmark list).

    [scale] multiplies the main iteration counts; 1 is enough for tests,
    the benchmark harness uses larger values. *)

type kind = Int | Fp

type bench = {
  bench_name : string;
  kind : kind;
  build : scale:int -> Ppp_ir.Ir.program;
}

val all : bench list
(** In the paper's Table 1 order: the integer benchmarks, then the
    floating-point ones. *)

val find_opt : string -> bench option

val find : string -> bench
(** @raise Not_found for unknown names; CLIs should prefer {!find_opt}
    and report the name themselves. *)

val names : unit -> string list
