(** Instrumenter configuration: one record of knobs covers PP, TPP, PPP
    and every Figure-13 leave-one-out ablation. The named constants use
    the parameter values of Section 7.4. *)

type cold_strategy =
  | No_cold_removal  (** PP: instrument every path *)
  | If_escapes_hash
      (** TPP: remove cold paths only when that lets the routine use an
          array instead of a hash table (Section 3.2) *)
  | Always  (** PPP: free poisoning makes cold removal always pay
                (Section 4.6) *)

type poisoning =
  | Free  (** map cold paths into [N, 3N-1]; no runtime check
              (Section 4.6) *)
  | Check  (** original TPP: negative poison value plus a test at every
               path end *)

type t = {
  name : string;
  cold : cold_strategy;
  local_ratio : float;
      (** edge cold if [freq < ratio * freq(source block)]; 0.05 *)
  global_fraction : float option;
      (** PPP: edge cold if below this fraction of total program unit
          flow; 0.001 (Section 4.2) *)
  self_adjust : bool;  (** Section 4.3 *)
  sa_multiplier : float;  (** 1.5: grow the global criterion by 50% *)
  obvious_loops : bool;
      (** disconnect obvious-bodied high-trip-count loops (Section 3.2) *)
  obvious_trip : float;  (** 10.0 *)
  low_coverage_skip : float option;
      (** PPP: skip routines whose edge-profile coverage is at least this;
          0.75 (Section 4.1) *)
  push_past_cold : bool;  (** PPP: ignore cold edges when pushing
                              (Section 4.4) *)
  smart_numbering : bool;  (** PPP: Figure 6 numbering + profile-weighted
                               spanning tree (Section 4.5) *)
  poisoning : poisoning;
  elide_obvious : bool;
      (** remove [count\[k\]++] from defining edges of obvious paths *)
  hash_threshold : int;  (** 4000 possible paths (Section 7.4) *)
  sa_max_iters : int;
      (** give up self-adjusting after this many iterations (the paper
          observed at most four were ever needed) *)
}

val pp : t
(** Ball–Larus path profiling (Section 3.1). *)

val tpp : t
(** Targeted path profiling as this paper evaluates it (Section 7.4:
    with free poisoning substituted for the original's check). *)

val tpp_original : t
(** TPP with its original check-based poisoning. *)

val ppp : t
(** Practical path profiling with all six techniques. *)

val degrade : confidence:float -> t -> t
(** Weaken a configuration's reliance on the guiding edge profile when
    that profile is only partially trustworthy (e.g. salvaged from a
    stale dump). [confidence] in [0,1] scales [local_ratio] and
    [global_fraction] (so fewer edges are declared cold on weak
    evidence) and raises [low_coverage_skip] toward 1.0 (so fewer
    routines are skipped as already-covered). [confidence >= 0.999]
    returns the configuration unchanged; otherwise ["+degraded"] is
    appended to its name. *)

type technique = SAC | FP | Push | SPN | LC
(** The Figure 13 ablation axes: self-adjusting global cold-edge
    criterion (with the global criterion itself, as the paper couples
    them), free poisoning, aggressive pushing, smart path numbering, and
    low-coverage-only instrumentation. *)

val ppp_without : technique -> t
(** Leave-one-out: PPP with one technique disabled (Figure 13). *)

val tpp_plus : technique -> t
(** One-at-a-time: TPP with a single PPP technique enabled (the
    methodology of Section 8.3's closing paragraph). *)

val technique_name : technique -> string
val all_techniques : technique list
