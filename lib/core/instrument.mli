(** The PP / TPP / PPP instrumenter front end (Sections 3 and 4).

    Given a program, a prior edge profile (the "self advice" of
    Section 7.2) and a {!Config.t}, decides per routine whether and how to
    instrument, and produces both the runtime instrumentation for
    {!Ppp_interp.Interp} and the bookkeeping needed to decode measured
    counts and to classify paths as instrumented or not. *)

type reason =
  | Never_executed  (** the prior profile shows no executions *)
  | Low_coverage of float
      (** PPP Section 4.1: edge-profile coverage met the threshold *)
  | No_hot_paths  (** every edge went cold *)
  | All_obvious  (** placement eliminated every action *)

type decision =
  | Uninstrumented of reason
  | Instrumented of {
      hot : bool array;  (** DAG edge -> hot *)
      numbering : Numbering.t;
      place : Place.result;
      sa_iters : int;  (** self-adjusting iterations taken (Section 4.3) *)
      uses_hash : bool;
    }

type routine_plan = {
  routine_name : string;
  ctx : Ppp_flow.Routine_ctx.t;
  decision : decision;
}

type t = {
  config : Config.t;
  plans : (string, routine_plan) Hashtbl.t;
  rt : Ppp_interp.Instr_rt.t;  (** feed this to the interpreter *)
}

val instrument :
  ?plan_ctx:(Ppp_ir.Ir.routine -> Ppp_flow.Routine_ctx.t) ->
  ?definite:(Ppp_flow.Routine_ctx.t -> Ppp_flow.Flow_dp.t) ->
  ?reuse:(Ppp_ir.Ir.routine -> routine_plan option) ->
  ?store:(Ppp_ir.Ir.routine -> routine_plan -> unit) ->
  Ppp_ir.Ir.program ->
  Ppp_profile.Edge_profile.program ->
  Config.t ->
  t
(** The optional hooks let an analysis session supply memoized artifacts
    and reuse whole placement decisions:
    - [plan_ctx] provides each routine's flow context (it must be built
      from the given edge profile);
    - [definite] provides the definite-flow DP of a context;
    - [reuse] may return a previously stored plan for a routine, which is
      adopted wholesale — its runtime instrumentation is registered, but
      no [place.*] metrics are bumped, since no placement work ran;
    - [store] observes every freshly computed plan.
    Defaults recompute everything from scratch. *)

val has_any_instrumentation : t -> bool
(** False when no routine received any action (the paper's swim/mgrid
    case, Section 6.1). *)

(** {2 Path bookkeeping} *)

val decoded_path : routine_plan -> int -> Ppp_profile.Path.t option
(** The CFG path measured under a given path number; [None] for cold
    (out-of-range) numbers, elided obvious paths, or uninstrumented
    routines. *)

val path_status :
  routine_plan -> Ppp_profile.Path.t -> [ `Instrumented of int | `Uninstrumented ]
(** Whether an acyclic CFG path is in [P_instr] (and under which number)
    or in [P_uninstr] (Section 5). *)

val static_instr_count : t -> int
(** Total number of placed instrumentation actions, for reporting. *)

val pp_plan : Format.formatter -> routine_plan -> unit
(** Human-readable dump of one routine's instrumentation: the decision,
    table kind, path count, elided obvious paths, and every edge's
    actions in the paper's notation (Figure 1(g) style). *)
