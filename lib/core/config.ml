type cold_strategy = No_cold_removal | If_escapes_hash | Always
type poisoning = Free | Check

type t = {
  name : string;
  cold : cold_strategy;
  local_ratio : float;
  global_fraction : float option;
  self_adjust : bool;
  sa_multiplier : float;
  obvious_loops : bool;
  obvious_trip : float;
  low_coverage_skip : float option;
  push_past_cold : bool;
  smart_numbering : bool;
  poisoning : poisoning;
  elide_obvious : bool;
  hash_threshold : int;
  sa_max_iters : int;
}

let pp =
  {
    name = "pp";
    cold = No_cold_removal;
    local_ratio = 0.05;
    global_fraction = None;
    self_adjust = false;
    sa_multiplier = 1.5;
    obvious_loops = false;
    obvious_trip = 10.0;
    low_coverage_skip = None;
    push_past_cold = false;
    smart_numbering = false;
    poisoning = Free;
    elide_obvious = false;
    hash_threshold = 4000;
    sa_max_iters = 20;
  }

let tpp =
  {
    pp with
    name = "tpp";
    cold = If_escapes_hash;
    obvious_loops = true;
    elide_obvious = true;
    poisoning = Free;
  }

let tpp_original = { tpp with name = "tpp-original"; poisoning = Check }

let ppp =
  {
    tpp with
    name = "ppp";
    cold = Always;
    global_fraction = Some 0.001;
    self_adjust = true;
    low_coverage_skip = Some 0.75;
    push_past_cold = true;
    smart_numbering = true;
    poisoning = Free;
  }

let degrade ~confidence t =
  let c = Float.max 0.0 (Float.min 1.0 confidence) in
  if c >= 0.999 then t
  else
    {
      t with
      name = t.name ^ "+degraded";
      (* Trust the profile's frequencies proportionally less: shrink the
         cold-edge criteria (fewer paths dismissed as cold on shaky
         evidence) and skip fewer routines as "already covered". *)
      local_ratio = t.local_ratio *. c;
      global_fraction = Option.map (fun f -> f *. c) t.global_fraction;
      low_coverage_skip =
        Option.map (fun s -> s +. ((1.0 -. s) *. (1.0 -. c))) t.low_coverage_skip;
    }

type technique = SAC | FP | Push | SPN | LC

let ppp_without = function
  | SAC ->
      { ppp with name = "ppp-sac"; global_fraction = None; self_adjust = false }
  | FP -> { ppp with name = "ppp-fp"; poisoning = Check }
  | Push -> { ppp with name = "ppp-push"; push_past_cold = false }
  | SPN -> { ppp with name = "ppp-spn"; smart_numbering = false }
  | LC -> { ppp with name = "ppp-lc"; low_coverage_skip = None }

let tpp_plus technique =
  (* TPP plus exactly one of PPP's techniques. Those that only matter
     with aggressive cold removal (SAC, FP) bring it along, as the paper
     couples them. *)
  match technique with
  | SAC ->
      {
        tpp with
        name = "tpp+sac";
        cold = Always;
        global_fraction = ppp.global_fraction;
        self_adjust = true;
      }
  | FP -> { tpp_original with name = "tpp+fp"; poisoning = Free }
  | Push -> { tpp with name = "tpp+push"; push_past_cold = true }
  | SPN -> { tpp with name = "tpp+spn"; smart_numbering = true }
  | LC -> { tpp with name = "tpp+lc"; low_coverage_skip = ppp.low_coverage_skip }

let technique_name = function
  | SAC -> "SAC"
  | FP -> "FP"
  | Push -> "Push"
  | SPN -> "SPN"
  | LC -> "LC"

let all_techniques = [ SAC; FP; Push; SPN; LC ]
