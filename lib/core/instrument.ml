module Graph = Ppp_cfg.Graph
module Dag = Ppp_cfg.Dag
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile
module Metric = Ppp_profile.Metric
module Routine_ctx = Ppp_flow.Routine_ctx
module Flow_dp = Ppp_flow.Flow_dp
module Instr_rt = Ppp_interp.Instr_rt
module Obs = Ppp_obs.Metrics

let m_routines_instrumented = Obs.counter "place.routines_instrumented"
let m_routines_skipped = Obs.counter "place.routines_skipped"
let m_static_actions = Obs.counter "place.static_actions"
let m_paths_elided = Obs.counter "place.paths_elided"
let m_paths_numbered = Obs.counter "place.paths_numbered"
let m_paths_hashed = Obs.counter "place.paths_hashed"
let m_self_adjust_iters = Obs.counter "place.self_adjust_iters"
let m_hash_tables = Obs.counter "place.hash_tables"

let h_paths_per_routine = Obs.histogram "place.paths_per_routine"

type reason =
  | Never_executed
  | Low_coverage of float
  | No_hot_paths
  | All_obvious

type decision =
  | Uninstrumented of reason
  | Instrumented of {
      hot : bool array;
      numbering : Numbering.t;
      place : Place.result;
      sa_iters : int;
      uses_hash : bool;
    }

type routine_plan = {
  routine_name : string;
  ctx : Routine_ctx.t;
  decision : decision;
}

type t = {
  config : Config.t;
  plans : (string, routine_plan) Hashtbl.t;
  rt : Instr_rt.t;
}

(* Weights for the event-counting spanning tree: the measured profile for
   PPP's smart numbering, the static heuristic otherwise (Section 4.5). *)
let static_dag_weights ctx =
  let view = Routine_ctx.view ctx in
  let st = Ppp_profile.Static_est.edge_freqs view in
  let dag = Routine_ctx.dag ctx in
  fun e ->
    match Dag.provenance dag e with
    | Dag.Original o -> st.(o)
    | Dag.Dummy_exit b -> st.(b)
    | Dag.Dummy_entry h ->
        List.fold_left (fun acc b -> acc +. st.(b)) 0.0 (Dag.backs_of_header dag h)

(* Edge-profile coverage of a routine, computable from the edge profile
   alone: definite flow over total branch flow (Sections 4.1, 6.2).
   [definite] supplies the definite-flow DP (memoizable by a session). *)
let edge_coverage ~definite ctx =
  let g = Routine_ctx.graph ctx in
  let actual =
    Graph.fold_edges g ~init:0 ~f:(fun acc e ->
        if Routine_ctx.is_branch ctx e then acc + Routine_ctx.freq ctx e else acc)
  in
  if actual = 0 then 1.0
  else begin
    let df = definite ctx in
    float_of_int (Flow_dp.total df ~metric:Metric.Branch_flow) /. float_of_int actual
  end

let number ctx (config : Config.t) hot =
  let order =
    if config.smart_numbering then
      Numbering.Freq_decreasing (fun e -> float_of_int (Routine_ctx.freq ctx e))
    else Numbering.Ball_larus
  in
  Numbering.compute ctx ~hot ~order

let plan_routine ?plan_ctx ?definite (config : Config.t) total_unit_flow
    profile_prog (r : Ir.routine) =
  let ctx =
    match plan_ctx with
    | Some f -> f r
    | None ->
        Routine_ctx.make (Cfg_view.of_routine r)
          (Edge_profile.routine profile_prog r.name)
  in
  let definite =
    match definite with
    | Some f -> f
    | None -> fun ctx -> Flow_dp.compute ctx Flow_dp.Definite
  in
  let decide () =
    if Routine_ctx.total_freq ctx = 0 then Uninstrumented Never_executed
    else begin
      let skip_coverage =
        match config.low_coverage_skip with
        | Some threshold ->
            let cov = edge_coverage ~definite ctx in
            if cov >= threshold then Some cov else None
        | None -> None
      in
      match skip_coverage with
      | Some cov -> Uninstrumented (Low_coverage cov)
      | None ->
          let extra_cold =
            if config.obvious_loops then
              Cold.obvious_loop_cold_edges ctx ~trip_threshold:config.obvious_trip
            else []
          in
          let cutoff_of fraction =
            int_of_float (ceil (fraction *. float_of_int total_unit_flow))
          in
          let mark_cold fraction_mult =
            let global_cutoff =
              Option.map
                (fun f -> cutoff_of (f *. fraction_mult))
                config.global_fraction
            in
            Cold.mark ctx ~local_ratio:(Some config.local_ratio) ~global_cutoff
              ~extra_cold
          in
          let full_hot () =
            Cold.mark ctx ~local_ratio:None ~global_cutoff:None ~extra_cold
          in
          (* Decide the hot edge set and whether hashing remains. *)
          let hot, numbering, uses_hash, sa_iters =
            match config.cold with
            | Config.No_cold_removal ->
                let hot = Cold.all_hot ctx in
                let nb = number ctx config hot in
                (hot, nb, Numbering.num_paths nb > config.hash_threshold, 0)
            | Config.If_escapes_hash ->
                let hot_full = full_hot () in
                let nb_full = number ctx config hot_full in
                if Numbering.num_paths nb_full <= config.hash_threshold then
                  (hot_full, nb_full, false, 0)
                else begin
                  let hot_cold = mark_cold 1.0 in
                  let nb_cold = number ctx config hot_cold in
                  if Numbering.num_paths nb_cold <= config.hash_threshold then
                    (hot_cold, nb_cold, false, 0)
                  else (hot_full, nb_full, true, 0)
                end
            | Config.Always ->
                let rec adjust mult iters =
                  let hot = mark_cold mult in
                  let nb = number ctx config hot in
                  if
                    Numbering.num_paths nb <= config.hash_threshold
                    || (not config.self_adjust)
                    || iters >= config.sa_max_iters
                    || config.global_fraction = None
                  then (hot, nb, Numbering.num_paths nb > config.hash_threshold, iters)
                  else adjust (mult *. config.sa_multiplier) (iters + 1)
                in
                adjust 1.0 0
          in
          if Numbering.num_paths numbering = 0 then Uninstrumented No_hot_paths
          else begin
            let weight =
              if config.smart_numbering then fun e ->
                float_of_int (Routine_ctx.freq ctx e)
              else static_dag_weights ctx
            in
            let ev = Event_count.compute ctx ~hot ~numbering ~weight in
            let place =
              Place.place
                {
                  Place.ctx;
                  hot;
                  numbering;
                  ev;
                  push_past_cold = config.push_past_cold;
                  elide_obvious = config.elide_obvious;
                  poisoning = config.poisoning;
                  use_hash = uses_hash;
                }
            in
            if place.Place.num_actions = 0 then Uninstrumented All_obvious
            else Instrumented { hot; numbering; place; sa_iters; uses_hash }
          end
    end
  in
  { routine_name = r.name; ctx; decision = decide () }

let instrument ?plan_ctx ?definite ?reuse ?store (p : Ir.program) profile_prog
    config =
  let total_unit_flow = Edge_profile.program_unit_flow profile_prog p in
  let plans = Hashtbl.create 17 in
  let rt = Instr_rt.no_instrumentation () in
  List.iter
    (fun (r : Ir.routine) ->
      let reused, plan =
        match Option.bind reuse (fun f -> f r) with
        | Some plan -> (true, plan)
        | None ->
            let plan =
              plan_routine ?plan_ctx ?definite config total_unit_flow
                profile_prog r
            in
            (match store with Some f -> f r plan | None -> ());
            (false, plan)
      in
      Hashtbl.replace plans r.name plan;
      match plan.decision with
      | Instrumented { numbering; place; sa_iters; uses_hash; _ } ->
          Hashtbl.replace rt r.name place.Place.rt;
          (* The place.* metrics count placement work performed; a plan
             pulled back out of a session cost none. *)
          if not reused then begin
            Obs.incr m_routines_instrumented;
            Obs.add m_static_actions place.Place.num_actions;
            Obs.add m_paths_elided (List.length place.Place.elided);
            let n = Numbering.num_paths numbering in
            Obs.add (if uses_hash then m_paths_hashed else m_paths_numbered) n;
            if uses_hash then Obs.incr m_hash_tables;
            Obs.add m_self_adjust_iters sa_iters;
            Obs.observe h_paths_per_routine (float_of_int n)
          end
      | Uninstrumented _ -> if not reused then Obs.incr m_routines_skipped)
    p.routines;
  { config; plans; rt }

let has_any_instrumentation t = Hashtbl.length t.rt > 0

let decoded_path plan k =
  match plan.decision with
  | Uninstrumented _ -> None
  | Instrumented { numbering; place; _ } ->
      if k < 0 || k >= Numbering.num_paths numbering then None
      else if List.mem_assoc k place.Place.elided then None
      else
        Some
          (Routine_ctx.cfg_path_of_dag_path plan.ctx (Numbering.decode numbering k))

let path_status plan path =
  match plan.decision with
  | Uninstrumented _ -> `Uninstrumented
  | Instrumented { hot; numbering; place; _ } -> (
      match Routine_ctx.dag_path_of_cfg_path plan.ctx path with
      | exception Invalid_argument _ -> `Uninstrumented
      | dag_path ->
          if List.for_all (fun e -> hot.(e)) dag_path then begin
            let k = Numbering.number_of_path numbering dag_path in
            if List.mem_assoc k place.Place.elided then `Uninstrumented
            else `Instrumented k
          end
          else `Uninstrumented)

let static_instr_count t =
  Hashtbl.fold
    (fun _ plan acc ->
      match plan.decision with
      | Instrumented { place; _ } -> acc + place.Place.num_actions
      | Uninstrumented _ -> acc)
    t.plans 0

let pp_plan ppf plan =
  let view = Routine_ctx.view plan.ctx in
  let r = Cfg_view.routine view in
  let g = Cfg_view.graph view in
  let block_name v =
    match Cfg_view.block_of_node view v with
    | Some b -> r.Ir.blocks.(b).Ir.label
    | None -> "EXIT"
  in
  Format.fprintf ppf "@[<v>routine %s: " plan.routine_name;
  match plan.decision with
  | Uninstrumented reason ->
      (match reason with
      | Never_executed -> Format.fprintf ppf "not instrumented (never executed)"
      | Low_coverage c ->
          Format.fprintf ppf
            "not instrumented (edge-profile coverage %.0f%% meets the threshold)"
            (100.0 *. c)
      | No_hot_paths -> Format.fprintf ppf "not instrumented (no hot paths)"
      | All_obvious ->
          Format.fprintf ppf "not instrumented (all paths obvious after placement)");
      Format.fprintf ppf "@]"
  | Instrumented { numbering; place; sa_iters; uses_hash; _ } ->
      Format.fprintf ppf "%d numbered paths, table %a%s@,"
        (Numbering.num_paths numbering)
        Instr_rt.pp_table_kind place.Place.rt.Instr_rt.table
        (if sa_iters > 0 then
           Printf.sprintf " (self-adjusted %d times)" sa_iters
         else "");
      ignore uses_hash;
      (match place.Place.elided with
      | [] -> ()
      | elided ->
          Format.fprintf ppf "obvious paths elided:%s@,"
            (String.concat ""
               (List.map (fun (k, _) -> " " ^ string_of_int k) elided)));
      Array.iteri
        (fun e actions ->
          match actions with
          | [] -> ()
          | _ ->
              Format.fprintf ppf "  %s -> %s: %s@," (block_name (Graph.src g e))
                (block_name (Graph.dst g e))
                (String.concat "; "
                   (List.map (Format.asprintf "%a" Instr_rt.pp_action) actions)))
        place.Place.rt.Instr_rt.edge_actions;
      Format.fprintf ppf "@]"
