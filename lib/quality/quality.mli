(** Profile-quality analytics.

    Compares two decoded path profiles — measured vs measured, a
    method's estimate vs the measured truth, this program version vs the
    last one — and quantifies agreement:

    - {!overlap}: the weighted-overlap percentage (sum over paths of the
      minimum normalized weight), the standard profile-quality metric;
    - {!hot_report}: precision/recall/flow-coverage of the hot-path set
      at a configurable hotness threshold;
    - {!divergence}: per-routine total-variation distance, localizing
      {e where} two profiles disagree;
    - {!composite}: one confidence-discounted score for dashboards.

    Profiles are normalized on construction, so runs of different
    lengths compare on shape alone. Profiles of {e different program
    versions} are made comparable by {!remap}, which routes every path
    through {!Ppp_resilience.Stale_match} edge correspondences and
    accounts any unmappable mass explicitly. *)

type t
(** A normalized weighted path profile: (routine, path) -> weight. *)

type key = string * int list
(** Routine name and path as raw CFG edge indices. *)

(** {2 Construction} *)

val of_weighted : (key * int) list -> t
(** Weights of the same key accumulate (saturating); non-positive
    weights are ignored. *)

val of_path_profile :
  views:(string -> Ppp_ir.Cfg_view.t) ->
  metric:Ppp_profile.Metric.t ->
  Ppp_profile.Path_profile.program ->
  t
(** A measured profile, weighted by [metric] (branch flow reproduces the
    paper's accounting). *)

val of_estimates : Ppp_flow.Score.est list -> t
(** A method's estimated profile, as produced by
    {!Ppp_harness.Pipeline.evaluate} ([evaluation.estimated]). *)

val of_dump : metric:Ppp_profile.Metric.t -> Ppp_profile.Profile_io.Raw.t -> t
(** A saved dump, program-free: branch counts come from the dump's own
    CFG descriptions (routines without one fall back to unit flow). *)

(** {2 Access} *)

val total : t -> int
(** Total weight mass (saturating). *)

val distinct : t -> int
(** Number of distinct (routine, path) keys. *)

val iter : t -> (routine:string -> path:int list -> int -> unit) -> unit

(** {2 Cross-version remapping} *)

type remap_stats = {
  routines_matched : int;
  routines_dropped : int;  (** no CFG description on one side *)
  mass_kept : int;
  mass_dropped : int;  (** weight of paths with unmappable edges *)
}

val remap :
  descs:(string -> Ppp_resilience.Stale_match.cfg_desc option) ->
  target:(string -> Ppp_resilience.Stale_match.cfg_desc option) ->
  t ->
  t * remap_stats
(** Translate a profile collected against the program version described
    by [descs] into the edge space of the version described by [target],
    using {!Ppp_resilience.Stale_match.match_cfgs} per routine. Paths
    with any unmapped edge, and routines missing a description on either
    side, are dropped and accounted in the stats — never silently. *)

val descs_of_dump :
  Ppp_profile.Profile_io.Raw.t ->
  string ->
  Ppp_resilience.Stale_match.cfg_desc option

val descs_of_program :
  Ppp_ir.Ir.program -> string -> Ppp_resilience.Stale_match.cfg_desc option

(** {2 Scores} *)

val overlap : t -> t -> float
(** Weighted overlap percentage in [0, 100]: sum over the key union of
    [min] of the two normalized weights, times 100. Symmetric; 100.0 for
    identical shapes (including two empty profiles); 0.0 when either
    side is empty but not both, or when the supports are disjoint. *)

type hot_report = {
  threshold : float;  (** fraction of total flow a hot path must carry *)
  hot_ref : int;  (** hot paths of the reference *)
  hot_cand : int;  (** hot paths of the candidate *)
  matched : int;  (** reference hot paths also hot in the candidate *)
  precision : float;  (** matched / hot_cand (1.0 when no candidates) *)
  recall : float;  (** matched / hot_ref (1.0 when no reference) *)
  flow_coverage : float;
      (** fraction of the reference's hot flow on paths the candidate
          saw at all (hot or not) *)
}

val hot_report :
  ?threshold:float -> reference:t -> candidate:t -> unit -> hot_report
(** Default [threshold] 0.00125, the paper's Section 8.1 hotness bar. *)

val divergence : t -> t -> (string * float) list
(** Per-routine total-variation contribution (half the L1 distance of
    whole-profile-normalized weights), most-divergent first, ties by
    name. Sums to {!total_divergence}. *)

val total_divergence : t -> t -> float
(** Global total-variation distance in [0, 1]; 0 iff identical shapes. *)

val composite : ?confidence:float -> reference:t -> candidate:t -> unit -> float
(** [confidence * (0.5*overlap + 0.3*hot flow-coverage +
    0.2*(1 - total divergence))], each term in [0, 1]. [confidence]
    defaults to 1.0 (use a stale-salvage matched fraction when the
    candidate came through one). *)

(** {2 JSON} *)

val hot_report_json : hot_report -> Ppp_obs.Jsonx.t
val remap_stats_json : remap_stats -> Ppp_obs.Jsonx.t

val comparison_json : ?confidence:float -> reference:t -> candidate:t -> unit -> Ppp_obs.Jsonx.t
(** The full comparison as one object: overlap, hot report, per-routine
    divergence, composite, and size stats. *)
