(* Profile-quality analytics: given two decoded path profiles — measured
   vs measured, estimated vs measured, this version vs last version —
   quantify how much they agree.

   A profile is held normalized: a table from (routine, edge list) to
   weight plus the total, so every score is a pure function of relative
   flow and two profiles of very different absolute scales (a short
   training run vs a long production run) compare on shape alone. *)

module Cfg_view = Ppp_ir.Cfg_view
module Path = Ppp_profile.Path
module Path_profile = Ppp_profile.Path_profile
module Metric = Ppp_profile.Metric
module Profile_io = Ppp_profile.Profile_io
module Score = Ppp_flow.Score
module Stale_match = Ppp_resilience.Stale_match
module Jsonx = Ppp_obs.Jsonx

type key = string * int list

type t = { weights : (key, int) Hashtbl.t; mutable total : int }

let sat_add a b = if a > max_int - b then max_int else a + b

let create () = { weights = Hashtbl.create 64; total = 0 }

let add t ~routine ~path w =
  if w > 0 then begin
    let k = (routine, path) in
    let prev = Option.value ~default:0 (Hashtbl.find_opt t.weights k) in
    Hashtbl.replace t.weights k (sat_add prev w);
    t.total <- sat_add t.total w
  end

let of_weighted entries =
  let t = create () in
  List.iter (fun ((routine, path), w) -> add t ~routine ~path w) entries;
  t

let of_path_profile ~views ~metric prof =
  let t = create () in
  Path_profile.iter_routines prof (fun name per ->
      let view = views name in
      Path_profile.iter per (fun path n ->
          let b = Path.branches view path in
          add t ~routine:name ~path (Metric.flow metric ~freq:n ~branches:b)));
  t

let of_estimates ests =
  let t = create () in
  List.iter
    (fun (e : Score.est) -> add t ~routine:e.Score.routine ~path:e.Score.path e.Score.flow)
    ests;
  t

(* Branch counts out of a stored CFG description: an edge contributes to
   the branch count iff its source block has out-degree >= 2, exactly
   [Cfg_view.num_branch_edges_on] computed from the dump instead of the
   program. *)
let branch_edges_of_desc (d : Stale_match.cfg_desc) =
  let n = Array.length d.Stale_match.edges in
  let out = Hashtbl.create 17 in
  Array.iter
    (fun (src, _) ->
      Hashtbl.replace out src (1 + Option.value ~default:0 (Hashtbl.find_opt out src)))
    d.Stale_match.edges;
  Array.init n (fun e ->
      let src, _ = d.Stale_match.edges.(e) in
      Option.value ~default:0 (Hashtbl.find_opt out src) >= 2)

let of_dump ~metric raw =
  let t = create () in
  List.iter
    (fun name ->
      let branches =
        match Profile_io.Raw.desc raw name with
        | Some d ->
            let is_branch = branch_edges_of_desc d in
            fun path ->
              List.fold_left
                (fun acc e ->
                  if e >= 0 && e < Array.length is_branch && is_branch.(e) then
                    acc + 1
                  else acc)
                0 path
        | None -> fun _ -> 0 (* no CFG description: unit flow only *)
      in
      Profile_io.Raw.iter_paths raw name (fun path n ->
          add t ~routine:name ~path
            (Metric.flow metric ~freq:n ~branches:(branches path))))
    (Profile_io.Raw.routines raw);
  t

let total t = t.total
let distinct t = Hashtbl.length t.weights

let iter t f = Hashtbl.iter (fun (routine, path) w -> f ~routine ~path w) t.weights

(* {2 Cross-version remapping} *)

type remap_stats = {
  routines_matched : int;
  routines_dropped : int;
  mass_kept : int;
  mass_dropped : int;
}

let remap ~descs ~target t =
  let out = create () in
  let routines = Hashtbl.create 17 in
  Hashtbl.iter (fun (r, _) _ -> Hashtbl.replace routines r ()) t.weights;
  let matched = ref 0 and dropped_routines = ref 0 in
  let kept = ref 0 and dropped = ref 0 in
  Hashtbl.iter
    (fun routine () ->
      match (descs routine, target routine) with
      | Some old_desc, Some new_desc ->
          incr matched;
          let m = Stale_match.match_cfgs ~old_desc ~new_desc in
          Hashtbl.iter
            (fun (r, path) w ->
              if r = routine then
                let mapped =
                  List.fold_left
                    (fun acc e ->
                      match (acc, Stale_match.map_edge m e) with
                      | Some es, Some e' -> Some (e' :: es)
                      | _ -> None)
                    (Some []) path
                in
                match mapped with
                | Some rev ->
                    kept := sat_add !kept w;
                    add out ~routine ~path:(List.rev rev) w
                | None -> dropped := sat_add !dropped w)
            t.weights
      | _ ->
          incr dropped_routines;
          Hashtbl.iter
            (fun (r, _) w -> if r = routine then dropped := sat_add !dropped w)
            t.weights)
    routines;
  ( out,
    {
      routines_matched = !matched;
      routines_dropped = !dropped_routines;
      mass_kept = !kept;
      mass_dropped = !dropped;
    } )

let descs_of_dump raw name = Profile_io.Raw.desc raw name

let descs_of_program (p : Ppp_ir.Ir.program) =
  let tbl = Hashtbl.create 17 in
  List.iter
    (fun (r : Ppp_ir.Ir.routine) ->
      Hashtbl.replace tbl r.Ppp_ir.Ir.name (Stale_match.describe r))
    p.Ppp_ir.Ir.routines;
  fun name -> Hashtbl.find_opt tbl name

(* {2 Scores} *)

let norm t k =
  if t.total = 0 then 0.0
  else
    float_of_int (Option.value ~default:0 (Hashtbl.find_opt t.weights k))
    /. float_of_int t.total

let union_keys a b =
  let keys = Hashtbl.create (Hashtbl.length a.weights + Hashtbl.length b.weights) in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) a.weights;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) b.weights;
  keys

let overlap a b =
  if a.total = 0 && b.total = 0 then 100.0
  else if a.total = 0 || b.total = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Hashtbl.iter
      (fun k _ -> acc := !acc +. Float.min (norm a k) (norm b k))
      (union_keys a b);
    100.0 *. !acc
  end

type hot_report = {
  threshold : float;
  hot_ref : int;
  hot_cand : int;
  matched : int;
  precision : float;
  recall : float;
  flow_coverage : float;
}

let hot_keys t ~threshold =
  let cut = threshold *. float_of_int t.total in
  Hashtbl.fold
    (fun k w acc -> if float_of_int w >= cut && w > 0 then k :: acc else acc)
    t.weights []

let hot_report ?(threshold = 0.00125) ~reference ~candidate () =
  let hot_r = hot_keys reference ~threshold in
  let hot_c = hot_keys candidate ~threshold in
  let cset = Hashtbl.create 17 in
  List.iter (fun k -> Hashtbl.replace cset k ()) hot_c;
  let matched = List.length (List.filter (Hashtbl.mem cset) hot_r) in
  let hot_flow, seen_flow =
    List.fold_left
      (fun (tot, seen) k ->
        let w = Option.value ~default:0 (Hashtbl.find_opt reference.weights k) in
        ( sat_add tot w,
          if Hashtbl.mem candidate.weights k then sat_add seen w else seen ))
      (0, 0) hot_r
  in
  {
    threshold;
    hot_ref = List.length hot_r;
    hot_cand = List.length hot_c;
    matched;
    precision =
      (if hot_c = [] then 1.0
       else float_of_int matched /. float_of_int (List.length hot_c));
    recall =
      (if hot_r = [] then 1.0
       else float_of_int matched /. float_of_int (List.length hot_r));
    flow_coverage =
      (if hot_flow = 0 then 1.0
       else float_of_int seen_flow /. float_of_int hot_flow);
  }

(* Per-routine total-variation distance between the two profiles'
   whole-profile-normalized flows, scaled so a routine whose paths agree
   perfectly scores 0.0 and one with no common mass scores its share of
   total disagreement. Summed over routines the figure is the global TV
   distance in [0, 1]. *)
let divergence a b =
  let per = Hashtbl.create 17 in
  Hashtbl.iter
    (fun ((r, _) as k) _ ->
      let d = Float.abs (norm a k -. norm b k) /. 2.0 in
      Hashtbl.replace per r (d +. Option.value ~default:0.0 (Hashtbl.find_opt per r)))
    (union_keys a b);
  List.sort
    (fun (r1, d1) (r2, d2) ->
      match compare d2 d1 with 0 -> String.compare r1 r2 | c -> c)
    (Hashtbl.fold (fun r d acc -> (r, d) :: acc) per [])

let total_divergence a b =
  List.fold_left (fun acc (_, d) -> acc +. d) 0.0 (divergence a b)

(* One number for dashboards: how much of the reference's behaviour the
   candidate reproduces, discounted by how much the candidate is trusted
   in the first place (e.g. a stale-salvage matched fraction). *)
let composite ?(confidence = 1.0) ~reference ~candidate () =
  let ov = overlap reference candidate /. 100.0 in
  let hot = hot_report ~reference ~candidate () in
  let dv = total_divergence reference candidate in
  confidence
  *. ((0.5 *. ov) +. (0.3 *. hot.flow_coverage) +. (0.2 *. (1.0 -. dv)))

(* {2 JSON} *)

let hot_report_json h =
  Jsonx.Obj
    [
      ("threshold", Jsonx.Float h.threshold);
      ("hot_ref", Jsonx.Int h.hot_ref);
      ("hot_cand", Jsonx.Int h.hot_cand);
      ("matched", Jsonx.Int h.matched);
      ("precision", Jsonx.Float h.precision);
      ("recall", Jsonx.Float h.recall);
      ("flow_coverage", Jsonx.Float h.flow_coverage);
    ]

let remap_stats_json s =
  Jsonx.Obj
    [
      ("routines_matched", Jsonx.Int s.routines_matched);
      ("routines_dropped", Jsonx.Int s.routines_dropped);
      ("mass_kept", Jsonx.Int s.mass_kept);
      ("mass_dropped", Jsonx.Int s.mass_dropped);
    ]

let comparison_json ?confidence ~reference ~candidate () =
  let hot = hot_report ~reference ~candidate () in
  Jsonx.Obj
    [
      ("overlap_pct", Jsonx.Float (overlap reference candidate));
      ("hot", hot_report_json hot);
      ( "divergence",
        Jsonx.Obj
          (List.map
             (fun (r, d) -> (r, Jsonx.Float d))
             (divergence reference candidate)) );
      ("total_divergence", Jsonx.Float (total_divergence reference candidate));
      ("composite", Jsonx.Float (composite ?confidence ~reference ~candidate ()));
      ("ref_total", Jsonx.Int reference.total);
      ("cand_total", Jsonx.Int candidate.total);
      ("ref_distinct", Jsonx.Int (distinct reference));
      ("cand_distinct", Jsonx.Int (distinct candidate));
    ]
