(** Classified, located diagnostics for everything that can go wrong
    around a profile's lifetime: loading a dump that is corrupt, stale or
    truncated, salvaging counts across a program edit, and runtime
    degradation (fuel exhaustion, table saturation).

    The point (following the ROADMAP's production posture, and stale-PGO
    systems like BOLT) is that a bad profile must never crash the
    optimizer: every problem becomes a value the pipeline can report and
    route around. *)

type kind =
  | Corrupt  (** malformed syntax, bad checksum, impossible ids *)
  | Stale  (** CFG fingerprint mismatch: profile from an older program *)
  | Unknown_routine  (** the program has no routine of that name *)
  | Truncated  (** the dump ends before its declared payload does *)
  | Exhausted  (** the interpreter ran out of fuel; results are partial *)
  | Saturated  (** a runtime frequency table hit its overflow bound *)
  | Shard_lost
      (** a parallel collection worker died before delivering its shard;
          the merge proceeds without it *)
  | Io  (** an operating-system I/O failure, reported instead of raised *)
  | Unreachable
      (** the resident daemon could not be reached (socket missing,
          connection refused, handshake failed) *)
  | Deadline_exceeded
      (** a request (or a supervised worker serving it) overran its
          wall-clock deadline and was abandoned *)
  | Degraded
      (** the daemon path failed and the client fell back to the
          in-process path; the result is still correct, only slower *)
  | Quarantined
      (** a persistent-store entry failed validation on reopen and was
          moved aside rather than served *)

type severity =
  | Warning  (** data was salvaged or degraded, the phase continued *)
  | Error  (** the affected data was dropped entirely *)

type t = {
  kind : kind;
  severity : severity;
  line : int option;  (** 1-based line in the offending text, if located *)
  token : string option;  (** the offending token, if any *)
  routine : string option;
  message : string;
}

val make :
  ?severity:severity ->
  ?line:int ->
  ?token:string ->
  ?routine:string ->
  kind ->
  string ->
  t
(** [make kind msg] builds a diagnostic (default severity [Error]) and
    bumps the matching [resilience.diag.*] metric when {!Ppp_obs.Metrics}
    is enabled. *)

val errorf :
  ?severity:severity ->
  ?line:int ->
  ?token:string ->
  ?routine:string ->
  kind ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val kind_name : kind -> string
(** Lower-case stable name, e.g. ["corrupt"], ["unknown-routine"]. *)

val severity_name : severity -> string
val is_error : t -> bool
val count_errors : t list -> int

val pp : Format.formatter -> t -> unit
(** One line: [error: corrupt: line 12 ("e9x") malformed edge
    counter (routine foo)]. *)

val pp_list : Format.formatter -> t list -> unit
(** One diagnostic per line; prints nothing for []. *)

val to_json : t -> Ppp_obs.Jsonx.t
val list_to_json : t list -> Ppp_obs.Jsonx.t
