(* SplitMix64, truncated to OCaml int; good enough mixing for fuzzing
   and fully deterministic from the seed. *)
type rng = { mutable state : int64 }

let rng ~seed = { state = Int64.of_int seed }

let next r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int r bound =
  if bound <= 0 then invalid_arg "Faults.int";
  Int64.to_int (Int64.rem (Int64.logand (next r) Int64.max_int) (Int64.of_int bound))

type fault =
  | Truncate
  | Flip_count
  | Reorder_sections
  | Rename_routine
  | Drop_registration
  | Duplicate_registration
  | Garbage_line

let all =
  [
    Truncate; Flip_count; Reorder_sections; Rename_routine; Drop_registration;
    Duplicate_registration; Garbage_line;
  ]

let name = function
  | Truncate -> "truncate"
  | Flip_count -> "flip-count"
  | Reorder_sections -> "reorder-sections"
  | Rename_routine -> "rename-routine"
  | Drop_registration -> "drop-registration"
  | Duplicate_registration -> "duplicate-registration"
  | Garbage_line -> "garbage-line"

let of_name s = List.find_opt (fun f -> name f = s) all

let lines text = String.split_on_char '\n' text
let unlines ls = String.concat "\n" ls

(* Indices of lines satisfying [p]. *)
let where p ls =
  List.mapi (fun i l -> (i, l)) ls
  |> List.filter_map (fun (i, l) -> if p l then Some i else None)

let is_counter_line l =
  let l = String.trim l in
  String.length l > 0
  && (match String.index_opt l ' ' with
     | Some _ ->
         (l.[0] = 'e' && String.length l > 1 && l.[1] >= '0' && l.[1] <= '9')
         || (l.[0] >= '0' && l.[0] <= '9')
     | None -> false)

let is_section_line l =
  let l = String.trim l in
  (String.length l >= 7 && String.sub l 0 7 = "section")
  || l = "edge-profile" || l = "path-profile"

let is_routine_line l =
  let l = String.trim l in
  String.length l >= 8 && String.sub l 0 8 = "routine "

let pick_index r = function
  | [] -> None
  | is -> Some (List.nth is (int r (List.length is)))

let replace_line idx f ls = List.mapi (fun i l -> if i = idx then f l else l) ls

let garbage r =
  let n = 4 + int r 24 in
  String.init n (fun _ -> Char.chr (1 + int r 255))

let append_garbage r text = text ^ "\n" ^ garbage r

let apply r fault text =
  let ls = lines text in
  let out =
    match fault with
    | Truncate ->
        if String.length text < 2 then ""
        else String.sub text 0 (String.length text / 2 + int r (String.length text / 4 + 1))
    | Flip_count -> (
        match pick_index r (where is_counter_line ls) with
        | None -> append_garbage r text
        | Some i ->
            unlines
              (replace_line i
                 (fun l ->
                   (* Corrupt one digit into a non-digit, or explode the
                      magnitude — both the syntactic and the semantic
                      flavor of a flipped counter. *)
                   let b = Bytes.of_string l in
                   let digits = ref [] in
                   Bytes.iteri
                     (fun j c -> if c >= '0' && c <= '9' then digits := j :: !digits)
                     b;
                   match !digits with
                   | [] -> l ^ "x"
                   | ds ->
                       let j = List.nth ds (int r (List.length ds)) in
                       if int r 2 = 0 then begin
                         Bytes.set b j 'x';
                         Bytes.to_string b
                       end
                       else
                         String.sub l 0 j ^ "99999999999999999999"
                         ^ String.sub l j (String.length l - j))
                 ls))
    | Reorder_sections -> (
        match where is_section_line ls with
        | [] -> append_garbage r text
        | idxs ->
            let i = List.nth idxs (int r (List.length idxs)) in
            let line = List.nth ls i in
            let rest = List.filteri (fun j _ -> j <> i) ls in
            let pos = int r (List.length rest + 1) in
            let before = List.filteri (fun j _ -> j < pos) rest in
            let after = List.filteri (fun j _ -> j >= pos) rest in
            unlines (before @ (line :: after)))
    | Rename_routine -> (
        match pick_index r (where is_routine_line ls) with
        | None -> append_garbage r text
        | Some i ->
            unlines
              (replace_line i
                 (fun _ -> Printf.sprintf "routine ghost_%d" (int r 100000))
                 ls))
    | Drop_registration -> (
        match where is_counter_line ls with
        | [] -> append_garbage r text
        | idxs ->
            let drop = List.filteri (fun j _ -> j <= int r (List.length idxs)) idxs in
            unlines (List.filteri (fun j _ -> not (List.mem j drop)) ls))
    | Duplicate_registration -> (
        match where is_counter_line ls with
        | [] -> append_garbage r text
        | idxs ->
            let dup = List.filteri (fun j _ -> j <= int r (List.length idxs)) idxs in
            unlines
              (List.concat
                 (List.mapi (fun j l -> if List.mem j dup then [ l; l ] else [ l ]) ls)))
    | Garbage_line ->
        let pos = int r (List.length ls + 1) in
        let before = List.filteri (fun j _ -> j < pos) ls in
        let after = List.filteri (fun j _ -> j >= pos) ls in
        unlines (before @ (garbage r :: after))
  in
  if out = text && text <> "" then append_garbage r text else out
