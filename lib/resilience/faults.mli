(** Seeded fault injection for profile dumps: the adversarial half of the
    resilience story. Each fault deterministically perturbs a profile
    text the way real production profiles go wrong — truncated uploads,
    bit-flipped counters, sections shuffled by a concatenating collector,
    routines renamed by a new build, registrations dropped or duplicated
    by a lossy runtime — so the loader's classification and salvage paths
    can be exercised exhaustively ([pppc fuzz-profile], [test_resilience]).

    All randomness comes from an explicit {!rng} (SplitMix64), so a seed
    fully determines every perturbation. *)

type rng

val rng : seed:int -> rng
val int : rng -> int -> int
(** [int r bound] is uniform in [[0, bound)]; [bound >= 1]. *)

type fault =
  | Truncate  (** cut the dump mid-payload *)
  | Flip_count  (** corrupt the digits of one counter line *)
  | Reorder_sections  (** move a section header somewhere else *)
  | Rename_routine  (** rename one [routine] header to a fresh name *)
  | Drop_registration  (** delete a handful of counter lines *)
  | Duplicate_registration  (** repeat a handful of counter lines *)
  | Garbage_line  (** splice in a line of binary garbage *)

val all : fault list
val name : fault -> string
val of_name : string -> fault option

val apply : rng -> fault -> string -> string
(** [apply r fault text] is a perturbed copy of [text]. Guaranteed to
    differ from [text] whenever [text] is non-empty (a fault that lands
    on nothing falls back to appending garbage), so every application
    really injects something. *)
