module Obs = Ppp_obs.Metrics
module Jsonx = Ppp_obs.Jsonx

type kind =
  | Corrupt
  | Stale
  | Unknown_routine
  | Truncated
  | Exhausted
  | Saturated
  | Shard_lost
  | Io
  | Unreachable
  | Deadline_exceeded
  | Degraded
  | Quarantined
type severity = Warning | Error

type t = {
  kind : kind;
  severity : severity;
  line : int option;
  token : string option;
  routine : string option;
  message : string;
}

let kind_name = function
  | Corrupt -> "corrupt"
  | Stale -> "stale"
  | Unknown_routine -> "unknown-routine"
  | Truncated -> "truncated"
  | Exhausted -> "exhausted"
  | Saturated -> "saturated"
  | Shard_lost -> "shard-lost"
  | Io -> "io"
  | Unreachable -> "unreachable"
  | Deadline_exceeded -> "deadline"
  | Degraded -> "degraded"
  | Quarantined -> "quarantined"

let severity_name = function Warning -> "warning" | Error -> "error"

let all_kinds =
  [
    Corrupt;
    Stale;
    Unknown_routine;
    Truncated;
    Exhausted;
    Saturated;
    Shard_lost;
    Io;
    Unreachable;
    Deadline_exceeded;
    Degraded;
    Quarantined;
  ]

(* Registered at module init so every snapshot lists them, zeroed or not
   (the convention Ppp_obs establishes). *)
let m_kind =
  List.map (fun k -> (k, Obs.counter ("resilience.diag." ^ kind_name k))) all_kinds

let make ?(severity = Error) ?line ?token ?routine kind message =
  Obs.incr (List.assoc kind m_kind);
  { kind; severity; line; token; routine; message }

let errorf ?severity ?line ?token ?routine kind fmt =
  Format.kasprintf (fun s -> make ?severity ?line ?token ?routine kind s) fmt

let is_error d = d.severity = Error
let count_errors ds = List.length (List.filter is_error ds)

let pp ppf d =
  Format.fprintf ppf "%s: %s:" (severity_name d.severity) (kind_name d.kind);
  (match d.line with Some l -> Format.fprintf ppf " line %d" l | None -> ());
  (match d.token with Some t -> Format.fprintf ppf " (%S)" t | None -> ());
  Format.fprintf ppf " %s" d.message;
  match d.routine with
  | Some r -> Format.fprintf ppf " (routine %s)" r
  | None -> ()

let pp_list ppf ds = List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds

let to_json d =
  let opt f = function Some v -> f v | None -> Jsonx.Null in
  Jsonx.Obj
    [
      ("kind", Jsonx.Str (kind_name d.kind));
      ("severity", Jsonx.Str (severity_name d.severity));
      ("line", opt (fun l -> Jsonx.Int l) d.line);
      ("token", opt (fun t -> Jsonx.Str t) d.token);
      ("routine", opt (fun r -> Jsonx.Str r) d.routine);
      ("message", Jsonx.Str d.message);
    ]

let list_to_json ds = Jsonx.Arr (List.map to_json ds)
