(* Table-driven reflected CRC-32 with polynomial 0xEDB88320. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s =
  let t = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let string s = update 0l s

let to_hex crc = Printf.sprintf "%08lx" crc

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let of_hex s =
  if String.length s <> 8 || not (String.for_all is_hex s) then None
  else try Some (Int32.of_string ("0x" ^ s)) with Failure _ -> None
