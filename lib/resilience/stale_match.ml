module Ir = Ppp_ir.Ir

type cfg_desc = {
  fingerprint : int;
  labels : string array;
  strict : int array;
  loose : int array;
  edges : (int * int) array;
}

let describe (r : Ir.routine) =
  let edges = ref [] in
  (* Mirrors Cfg_view.of_routine's edge allocation order exactly: blocks
     in order, Branch allocating taken before not-taken. *)
  Array.iteri
    (fun i (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Jump l -> edges := (i, l) :: !edges
      | Ir.Branch (_, l1, l2) -> edges := (i, l2) :: (i, l1) :: !edges
      | Ir.Return _ -> edges := (i, -1) :: !edges)
    r.Ir.blocks;
  {
    fingerprint = Fingerprint.routine r;
    labels = Array.map (fun (b : Ir.block) -> b.Ir.label) r.Ir.blocks;
    strict = Array.map Fingerprint.block_strict r.Ir.blocks;
    loose = Array.map Fingerprint.block_loose r.Ir.blocks;
    edges = Array.of_list (List.rev !edges);
  }

type result = {
  block_map : int array;
  edge_map : int array;
  matched_blocks : int;
  matched_edges : int;
}

let match_cfgs ~old_desc ~new_desc =
  let n_old = Array.length old_desc.strict in
  let n_new = Array.length new_desc.strict in
  let block_map = Array.make (max 1 n_old) (-1) in
  let taken = Array.make (max 1 n_new) false in
  let claim o n =
    if n >= 0 && n < n_new && (not taken.(n)) && block_map.(o) = -1 then begin
      block_map.(o) <- n;
      taken.(n) <- true
    end
  in
  (* Entry matches entry unconditionally: profiles are per-routine and
     the entry block's identity is positional. *)
  if n_old > 0 && n_new > 0 then claim 0 0;
  (* Ladder of anchors, each pass greedy in block order. *)
  let pass key_old key_new =
    for o = 0 to n_old - 1 do
      if block_map.(o) = -1 then begin
        let n = ref 0 in
        let found = ref false in
        while (not !found) && !n < n_new do
          if (not taken.(!n)) && key_old o = key_new !n then found := true
          else incr n
        done;
        if !found then claim o !n
      end
    done
  in
  pass (fun o -> `S old_desc.strict.(o)) (fun n -> `S new_desc.strict.(n));
  pass (fun o -> `L old_desc.labels.(o)) (fun n -> `L new_desc.labels.(n));
  pass (fun o -> `W old_desc.loose.(o)) (fun n -> `W new_desc.loose.(n));
  let matched_blocks =
    if n_old = 0 then 0
    else Array.fold_left (fun a m -> if m >= 0 then a + 1 else a) 0 block_map
  in
  (* Edge mapping: an old edge (s, d) maps to the first unclaimed new
     edge (block_map s, block_map d); the exit pseudo-block -1 maps to
     itself. Greedy in id order so parallel edges pair up stably. *)
  let n_old_e = Array.length old_desc.edges in
  let n_new_e = Array.length new_desc.edges in
  let edge_map = Array.make (max 1 n_old_e) (-1) in
  let e_taken = Array.make (max 1 n_new_e) false in
  (* [None] = endpoint's block did not match (edge unsalvageable);
     exit maps to exit. *)
  let map_node b =
    if b = -1 then Some (-1)
    else if b >= 0 && b < n_old && block_map.(b) >= 0 then Some block_map.(b)
    else None
  in
  Array.iteri
    (fun e (s, d) ->
      match (map_node s, map_node d) with
      | Some ns, Some nd when ns >= 0 ->
          let i = ref 0 in
          let found = ref false in
          while (not !found) && !i < n_new_e do
            if (not e_taken.(!i)) && new_desc.edges.(!i) = (ns, nd) then
              found := true
            else incr i
          done;
          if !found then begin
            edge_map.(e) <- !i;
            e_taken.(!i) <- true
          end
      | _ -> ())
    old_desc.edges;
  let matched_edges =
    if n_old_e = 0 then 0
    else Array.fold_left (fun a m -> if m >= 0 then a + 1 else a) 0 edge_map
  in
  { block_map; edge_map; matched_blocks; matched_edges }

let map_edge r e =
  if e < 0 || e >= Array.length r.edge_map then None
  else
    let m = r.edge_map.(e) in
    if m < 0 then None else Some m
