type 'a outcome = [ `Ok of 'a | `Eof | `Timeout ]

(* A deadline is absolute so retry loops never extend the total wait:
   every resumption recomputes the remaining slice. *)
let remaining deadline =
  match deadline with
  | None -> -1. (* select: wait forever *)
  | Some d -> d -. Unix.gettimeofday ()

let rec wait_readable ?deadline fd =
  let left = remaining deadline in
  if deadline <> None && left <= 0. then `Timeout
  else
    match Unix.select [ fd ] [] [] left with
    | [], _, _ -> if deadline = None then wait_readable ?deadline fd else `Timeout
    | _ :: _, _, _ -> `Ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable ?deadline fd

let rec wait_writable ?deadline fd =
  let left = remaining deadline in
  if deadline <> None && left <= 0. then `Timeout
  else
    match Unix.select [] [ fd ] [] left with
    | _, [], _ -> if deadline = None then wait_writable ?deadline fd else `Timeout
    | _, _ :: _, _ -> `Ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_writable ?deadline fd

let rec read_once ?deadline fd buf pos len =
  match wait_readable ?deadline fd with
  | `Timeout -> `Timeout
  | `Ready -> (
      match Unix.read fd buf pos len with
      | 0 -> `Eof
      | n -> `Ok n
      | exception
          Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
          read_once ?deadline fd buf pos len
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> `Eof)

let really_read ?deadline fd buf pos len =
  let rec go pos len =
    if len = 0 then `Ok ()
    else
      match read_once ?deadline fd buf pos len with
      | `Ok n -> go (pos + n) (len - n)
      | (`Eof | `Timeout) as r -> r
  in
  go pos len

let write_all ?deadline fd buf pos len =
  let rec go pos len =
    if len = 0 then `Ok
    else
      match wait_writable ?deadline fd with
      | `Timeout -> `Timeout
      | `Ready -> (
          match Unix.write fd buf pos len with
          | n -> go (pos + n) (len - n)
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              go pos len
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
              `Closed)
  in
  go pos len

let write_string ?deadline fd s =
  write_all ?deadline fd (Bytes.unsafe_of_string s) 0 (String.length s)

let rec sleep_until t =
  let left = t -. Unix.gettimeofday () in
  if left > 0. then
    match Unix.sleepf left with
    | () -> sleep_until t
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> sleep_until t

let rec waitpid_nohang pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> None
  | _, status -> Some status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_nohang pid
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None

let kill_quiet pid signal =
  try Unix.kill pid signal
  with Unix.Unix_error (Unix.ESRCH, _, _) -> ()
