(** EINTR-safe, deadline-aware wrappers around the raw [Unix] syscalls —
    the substrate every long-lived process in this repo (the shard pool,
    the [pppd] daemon, its clients) does its I/O through.

    Production collectors see exactly the failures the plain syscalls
    surface as exceptions or silent short transfers: signals interrupting
    a read ([EINTR]), pipes delivering fewer bytes than asked, peers that
    stall forever. These helpers retry interrupted calls, loop short
    transfers to completion, and bound every wait by an optional
    {e absolute} deadline ([Unix.gettimeofday]-based), so a hung peer
    becomes a [`Timeout] value instead of a hung process. *)

type 'a outcome = [ `Ok of 'a | `Eof | `Timeout ]

val wait_readable : ?deadline:float -> Unix.file_descr -> [ `Ready | `Timeout ]
(** Block (via [select], retrying [EINTR]) until [fd] is readable or the
    absolute deadline passes. No deadline means wait forever. *)

val read_once : ?deadline:float -> Unix.file_descr -> bytes -> int -> int ->
  int outcome
(** One read of at most [len] bytes, waiting for readability first.
    [`Ok 0] never happens: end of stream is [`Eof]. Retries [EINTR] and
    [EAGAIN]/[EWOULDBLOCK]. *)

val really_read : ?deadline:float -> Unix.file_descr -> bytes -> int -> int ->
  unit outcome
(** Read exactly [len] bytes into [buf] at [pos], looping over short
    reads. [`Eof] if the stream ends first (the partial prefix is in
    [buf]); [`Timeout] if the deadline passes first. *)

val write_all : ?deadline:float -> Unix.file_descr -> bytes -> int -> int ->
  [ `Ok | `Closed | `Timeout ]
(** Write exactly [len] bytes, looping over short writes and retrying
    [EINTR]/[EAGAIN]. [`Closed] on [EPIPE]/[ECONNRESET] (the caller
    decides whether a dead peer is an error). Other [Unix_error]s
    propagate: they are bugs or genuine I/O failures, not liveness. *)

val write_string : ?deadline:float -> Unix.file_descr -> string ->
  [ `Ok | `Closed | `Timeout ]

val sleep_until : float -> unit
(** Sleep until an absolute time, retrying interrupted sleeps. *)

val waitpid_nohang : int -> Unix.process_status option
(** Non-blocking reap, [EINTR]-retried; [None] while still running (or
    when the pid was already reaped — callers treat both as "nothing to
    do"). *)

val kill_quiet : int -> int -> unit
(** [kill_quiet pid signal], ignoring [ESRCH] (already gone). *)
