(** Stable structural hashes of routines and blocks, the anchors for
    validating a profile against the program it is applied to and for
    matching a stale profile onto an edited program.

    Two block hashes are kept, following the strict/loose laddering of
    stale-profile matchers: the {e strict} hash covers every instruction
    with its operands, so any edit changes it; the {e loose} hash covers
    only the shape (opcode kinds and the terminator arity), so constant
    tweaks and register renamings survive. The routine {e fingerprint}
    folds every strict block hash together with the CFG edge structure —
    it is the "is this exactly the program the profile came from?" bit
    stored in the v2 profile header.

    All hashes are FNV-1a over an explicit serialization, so they are
    stable across runs, OCaml versions and architectures (values are
    truncated to 62 bits to stay positive on 64-bit [int]). *)

val block_strict : Ppp_ir.Ir.block -> int
val block_loose : Ppp_ir.Ir.block -> int

val routine : Ppp_ir.Ir.routine -> int
(** Fingerprint of the whole routine: block count, every block's strict
    hash in order, and the (src, dst) list of CFG edges. *)

val program_table : Ppp_ir.Ir.program -> (string * int) list
(** [(name, routine fingerprint)] for every routine, in program order —
    the dirty-diff unit of an incremental session: comparing two tables
    names exactly the routines that changed between program
    generations. *)

val to_hex : int -> string
val of_hex : string -> int option
