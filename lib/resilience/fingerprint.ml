module Ir = Ppp_ir.Ir

(* FNV-1a; the offset basis is the 64-bit constant truncated to OCaml's
   positive int range (any odd constant serves the mixing role). *)
let fnv_offset = 0x0bf29ce484222325
let fnv_prime = 0x100000001b3
let mask = (1 lsl 62) - 1

let fold_byte h b = (h lxor (b land 0xff)) * fnv_prime
let fold_int h i =
  let h = ref h in
  for shift = 0 to 7 do
    h := fold_byte !h ((i lsr (shift * 8)) land 0xff)
  done;
  !h

let fold_string h s = String.fold_left (fun h c -> fold_byte h (Char.code c)) h s
let finish h = h land mask

let operand_tokens = function
  | Ir.Reg r -> [ "r"; string_of_int r ]
  | Ir.Imm i -> [ "i"; string_of_int i ]

let instr_tokens = function
  | Ir.Mov (d, v) -> ("mov" :: string_of_int d :: operand_tokens v)
  | Ir.Binop (d, op, a, b) ->
      ("bin" :: Ir.binop_name op :: string_of_int d
      :: (operand_tokens a @ operand_tokens b))
  | Ir.Load (d, arr, idx) -> ("load" :: string_of_int d :: arr :: operand_tokens idx)
  | Ir.Store (arr, idx, v) ->
      ("store" :: arr :: (operand_tokens idx @ operand_tokens v))
  | Ir.Call (dst, callee, args) ->
      "call"
      :: (match dst with Some d -> string_of_int d | None -> "_")
      :: callee
      :: List.concat_map operand_tokens args
  | Ir.Out v -> "out" :: operand_tokens v

let instr_kind = function
  | Ir.Mov _ -> "M"
  | Ir.Binop _ -> "B"
  | Ir.Load _ -> "L"
  | Ir.Store _ -> "S"
  | Ir.Call _ -> "C"
  | Ir.Out _ -> "O"

(* Branch/jump targets are deliberately left out of the block hashes:
   inserting or removing an unrelated block shifts every later block
   index, and position-dependent hashes would spuriously un-match the
   whole tail of the routine. Edge structure is hashed separately in
   {!routine} and matched structurally in {!Stale_match}. *)
let term_tokens = function
  | Ir.Jump _ -> [ "jump" ]
  | Ir.Branch (c, _, _) -> ("br" :: operand_tokens c)
  | Ir.Return v -> ("ret" :: match v with Some o -> operand_tokens o | None -> [])

let term_kind = function Ir.Jump _ -> "j" | Ir.Branch _ -> "b" | Ir.Return _ -> "r"

let fold_tokens h toks =
  List.fold_left (fun h t -> fold_byte (fold_string h t) 0) h toks

let block_strict (b : Ir.block) =
  let h =
    Array.fold_left (fun h i -> fold_tokens h (instr_tokens i)) fnv_offset b.Ir.instrs
  in
  finish (fold_tokens h (term_tokens b.Ir.term))

let block_loose (b : Ir.block) =
  let h =
    Array.fold_left (fun h i -> fold_string h (instr_kind i)) fnv_offset b.Ir.instrs
  in
  finish (fold_string (fold_byte h 0) (term_kind b.Ir.term))

let routine (r : Ir.routine) =
  let h = fold_int fnv_offset (Array.length r.Ir.blocks) in
  let h = Array.fold_left (fun h b -> fold_int h (block_strict b)) h r.Ir.blocks in
  (* Edge structure: every terminator's targets, in block order (this is
     exactly the Cfg_view edge list, without building the graph). *)
  let h =
    Array.fold_left
      (fun h (b : Ir.block) ->
        match b.Ir.term with
        | Ir.Jump l -> fold_int h l
        | Ir.Branch (_, l1, l2) -> fold_int (fold_int h l1) l2
        | Ir.Return _ -> fold_int h (-1))
      h r.Ir.blocks
  in
  finish h

let program_table (p : Ir.program) =
  List.map (fun (r : Ir.routine) -> (r.Ir.name, routine r)) p.Ir.routines

let to_hex h = Printf.sprintf "%016x" h

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let of_hex s =
  if String.length s = 0 || String.length s > 16 || not (String.for_all is_hex s)
  then None
  else try Some (int_of_string ("0x" ^ s)) with Failure _ -> None
