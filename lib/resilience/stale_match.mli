(** Stale-profile matching: re-map edge (and path) identifiers recorded
    against an old version of a routine onto the current version, in the
    spirit of BOLT's stale profile matching.

    A {!cfg_desc} is the durable description of a routine's CFG that the
    v2 profile format stores alongside the counts: per-block label,
    strict hash and loose hash, plus the edge list. {!match_cfgs} aligns
    old blocks to new blocks on a ladder of anchors — strict hash, then
    label, then loose hash, each greedy in block order — and then maps
    every old edge whose endpoints both matched onto a structurally
    identical new edge. Counts on unmatched edges are unsalvageable and
    reported as such by the caller. *)

type cfg_desc = {
  fingerprint : int;
  labels : string array;  (** per block *)
  strict : int array;
  loose : int array;
  edges : (int * int) array;
      (** indexed by Cfg_view edge id: (src block, dst block);
          dst = [-1] for the virtual exit *)
}

val describe : Ppp_ir.Ir.routine -> cfg_desc
(** The description of a routine as compiled now (edge ids are the
    {!Ppp_ir.Cfg_view} ids the interpreter and instrumenter use). *)

type result = {
  block_map : int array;  (** old block -> new block, [-1] = unmatched *)
  edge_map : int array;  (** old edge id -> new edge id, [-1] = unmatched *)
  matched_blocks : int;
  matched_edges : int;
}

val match_cfgs : old_desc:cfg_desc -> new_desc:cfg_desc -> result
(** Never fails; worst case every entry of the maps is [-1]. The entry
    block always maps to the entry block. *)

val map_edge : result -> int -> int option
(** [map_edge r e] is the new id of old edge [e], if matched and in
    range. *)
