(** CRC-32 (IEEE 802.3, the zlib polynomial) over strings, for the
    per-section checksums of the v2 profile format. Self-contained so the
    profile reader needs no external dependency to validate a dump. *)

val string : string -> int32
(** CRC-32 of the whole string ([0l] for the empty string). *)

val update : int32 -> string -> int32
(** [update crc s] extends a finalized CRC with more bytes:
    [update (string a) b = string (a ^ b)]. *)

val to_hex : int32 -> string
(** Fixed-width lowercase hex, 8 characters. *)

val of_hex : string -> int32 option
