module Graph = Ppp_cfg.Graph
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile
module Path_profile = Ppp_profile.Path_profile
module Routine_ctx = Ppp_flow.Routine_ctx
module Config = Ppp_core.Config
module Numbering = Ppp_core.Numbering
module Event_count = Ppp_core.Event_count
module Cold = Ppp_core.Cold
module Instrument = Ppp_core.Instrument
module Interp = Ppp_interp.Interp
module Instr_rt = Ppp_interp.Instr_rt

let ctx_of routine profile = Routine_ctx.make (Fixtures.view routine) profile

(* Enumerate every entry-to-exit path of a (small) DAG restricted to hot
   edges. *)
let all_hot_paths ctx hot =
  let g = Routine_ctx.graph ctx in
  let exit = Routine_ctx.exit ctx in
  let rec walk v =
    if v = exit then [ [] ]
    else
      List.concat_map
        (fun e ->
          if hot.(e) then List.map (fun p -> e :: p) (walk (Graph.dst g e)) else [])
        (Graph.out_edges g v)
  in
  walk (Routine_ctx.entry ctx)

let test_fig1_numbering () =
  let view = Fixtures.view Fixtures.fig1_routine in
  let profile = Fixtures.uniform_profile view 10 in
  let ctx = Routine_ctx.make view profile in
  let hot = Cold.all_hot ctx in
  let nb = Numbering.compute ctx ~hot ~order:Numbering.Ball_larus in
  (* Figure 1(c): the example has 8 paths. *)
  Alcotest.(check int) "N = 8" 8 (Numbering.num_paths nb);
  (* Numbers form a bijection onto [0,8). *)
  let paths = all_hot_paths ctx hot in
  Alcotest.(check int) "8 paths" 8 (List.length paths);
  let nums = List.map (Numbering.number_of_path nb) paths in
  let sorted = List.sort compare nums in
  Alcotest.(check (list int)) "bijection" [ 0; 1; 2; 3; 4; 5; 6; 7 ] sorted;
  (* Decode inverts. *)
  List.iter
    (fun p ->
      let n = Numbering.number_of_path nb p in
      Alcotest.(check (list int)) "decode inverts" p (Numbering.decode nb n))
    paths

let test_event_count_preserves_fig1 () =
  let view = Fixtures.view Fixtures.fig1_routine in
  let profile = Fixtures.uniform_profile view 10 in
  let ctx = Routine_ctx.make view profile in
  let hot = Cold.all_hot ctx in
  let nb = Numbering.compute ctx ~hot ~order:Numbering.Ball_larus in
  let ev =
    Event_count.compute ctx ~hot ~numbering:nb
      ~weight:(fun e -> float_of_int (Routine_ctx.freq ctx e))
  in
  List.iter
    (fun p ->
      Alcotest.(check int) "sum preserved" (Numbering.number_of_path nb p)
        (Event_count.sum_along ev p))
    (all_hot_paths ctx hot);
  (* Spanning-tree edges carry no increment; with E hot edges and V
     connected nodes there are E - (V - 1) chords. *)
  let g = Routine_ctx.graph ctx in
  let chords =
    Graph.fold_edges g ~init:0 ~f:(fun acc e ->
        if Event_count.is_chord ev e then acc + 1 else acc)
  in
  Alcotest.(check int) "chord count" (Graph.num_edges g - (Graph.num_nodes g - 1)) chords

let test_smart_numbering_hottest_zero () =
  (* Figure 6: with smart numbering the hottest outgoing edge of each
     block gets value 0. *)
  let view = Fixtures.view Fixtures.fig8_routine in
  let profile = Fixtures.fig8_profile () in
  let ctx = Routine_ctx.make view profile in
  let hot = Cold.all_hot ctx in
  let nb =
    Numbering.compute ctx ~hot
      ~order:(Numbering.Freq_decreasing (fun e -> float_of_int (Routine_ctx.freq ctx e)))
  in
  (* Edge AB (id 0, freq 50) beats AC (30); DE (60) beats DF (20). *)
  Alcotest.(check int) "Val(AB)=0" 0 (Numbering.value nb 0);
  Alcotest.(check int) "Val(DE)=0" 0 (Numbering.value nb 4);
  Alcotest.(check bool) "Val(AC)>0" true (Numbering.value nb 1 > 0);
  (* Still a bijection. *)
  let nums =
    List.sort compare (List.map (Numbering.number_of_path nb) (all_hot_paths ctx hot))
  in
  Alcotest.(check (list int)) "bijection" [ 0; 1; 2; 3 ] nums

let test_cold_marking_closure () =
  let view = Fixtures.view Fixtures.fig8_routine in
  let profile = Fixtures.fig8_profile () in
  let ctx = Routine_ctx.make view profile in
  (* With a 30% local threshold, AC (30/80) and DF (20/80) go cold; the
     closure must then also kill CD (only feeds from AC? no: CD is fed by
     AC only) and FG. *)
  let hot =
    Cold.mark ctx ~local_ratio:(Some 0.45) ~global_cutoff:None ~extra_cold:[]
  in
  Alcotest.(check bool) "AB hot" true hot.(0);
  Alcotest.(check bool) "AC cold" false hot.(1);
  Alcotest.(check bool) "CD cold by closure" false hot.(3);
  Alcotest.(check bool) "DF cold" false hot.(5);
  Alcotest.(check bool) "FG cold by closure" false hot.(7);
  let nb = Numbering.compute ctx ~hot ~order:Numbering.Ball_larus in
  Alcotest.(check int) "one hot path" 1 (Numbering.num_paths nb)

(* End-to-end: instrument, run, decode, compare with ground truth. *)
let run_with config p =
  let base = Interp.run p in
  let ep = Option.get base.Interp.edge_profile in
  let inst = Instrument.instrument p ep config in
  let o =
    Interp.run
      ~config:{ Interp.default_config with instrumentation = Some inst.Instrument.rt }
      p
  in
  (base, inst, o)

let measured_counts _inst o name =
  let st = Option.get o.Interp.instr_state in
  match Hashtbl.find_opt st name with
  | None -> []
  | Some table ->
      let acc = ref [] in
      Instr_rt.Table.iter_nonzero table (fun k c -> acc := (k, c) :: !acc);
      !acc

(* PP measures the exact path profile: every traced path's frequency must
   equal the decoded counter, and vice versa. *)
let check_pp_exact p =
  let base, inst, o = run_with Config.pp p in
  let actual = Option.get base.Interp.path_profile in
  List.for_all
    (fun (r : Ir.routine) ->
      let plan = Hashtbl.find inst.Instrument.plans r.Ir.name in
      let t = Path_profile.routine actual r.Ir.name in
      match plan.Instrument.decision with
      | Instrument.Uninstrumented Instrument.Never_executed ->
          Path_profile.num_distinct t = 0
      | Instrument.Uninstrumented _ -> false (* PP instruments everything *)
      | Instrument.Instrumented { uses_hash; _ } ->
          let st = Option.get o.Interp.instr_state in
          let table = Hashtbl.find st r.Ir.name in
          if uses_hash && Instr_rt.Table.lost table > 0 then true (* skip *)
          else begin
            let ok = ref true in
            (* Every traced path is measured exactly. *)
            Path_profile.iter t (fun path n ->
                match Instrument.path_status plan path with
                | `Instrumented k ->
                    if Instr_rt.Table.get table k <> n then ok := false
                | `Uninstrumented -> ok := false);
            (* No spurious counts. *)
            List.iter
              (fun (k, c) ->
                match Instrument.decoded_path plan k with
                | Some path -> if Path_profile.freq t path <> c then ok := false
                | None -> ok := false)
              (measured_counts inst o r.Ir.name);
            !ok
          end)
    p.Ir.routines

let prop_pp_exact =
  QCheck.Test.make ~name:"PP measures the exact path profile" ~count:60
    QCheck.(small_int)
    (fun seed -> check_pp_exact (Ppp_workloads.Gen.program ~seed))

(* TPP (no pushing past cold edges) never overcounts: decoded hot counts
   equal the actual frequencies, and cold paths never alias hot numbers. *)
let check_no_overcount config p =
  let base, inst, o = run_with config p in
  let actual = Option.get base.Interp.path_profile in
  List.for_all
    (fun (r : Ir.routine) ->
      let plan = Hashtbl.find inst.Instrument.plans r.Ir.name in
      match plan.Instrument.decision with
      | Instrument.Uninstrumented _ -> true
      | Instrument.Instrumented { uses_hash; _ } ->
          let st = Option.get o.Interp.instr_state in
          let table = Hashtbl.find st r.Ir.name in
          if uses_hash && Instr_rt.Table.lost table > 0 then true
          else begin
            let t = Path_profile.routine actual r.Ir.name in
            List.for_all
              (fun (k, c) ->
                match Instrument.decoded_path plan k with
                | Some path -> Path_profile.freq t path = c
                | None -> true (* cold-region slot *))
              (measured_counts inst o r.Ir.name)
          end)
    p.Ir.routines

let prop_tpp_exact_on_hot =
  QCheck.Test.make ~name:"TPP never overcounts a hot path" ~count:60
    QCheck.(small_int)
    (fun seed -> check_no_overcount Config.tpp (Ppp_workloads.Gen.program ~seed))

let prop_tpp_check_poisoning_exact =
  QCheck.Test.make ~name:"TPP with check poisoning never overcounts" ~count:40
    QCheck.(small_int)
    (fun seed ->
      check_no_overcount Config.tpp_original (Ppp_workloads.Gen.program ~seed))

(* PPP may overcount hot paths on cold executions, but never undercounts,
   and never invents paths that cannot be decoded. *)
let check_ppp_bounds p =
  let base, inst, o = run_with Config.ppp p in
  let actual = Option.get base.Interp.path_profile in
  List.for_all
    (fun (r : Ir.routine) ->
      let plan = Hashtbl.find inst.Instrument.plans r.Ir.name in
      match plan.Instrument.decision with
      | Instrument.Uninstrumented _ -> true
      | Instrument.Instrumented { uses_hash; _ } ->
          let st = Option.get o.Interp.instr_state in
          let table = Hashtbl.find st r.Ir.name in
          if uses_hash && Instr_rt.Table.lost table > 0 then true
          else begin
            let t = Path_profile.routine actual r.Ir.name in
            List.for_all
              (fun (k, c) ->
                match Instrument.decoded_path plan k with
                | Some path -> c >= Path_profile.freq t path
                | None -> true)
              (measured_counts inst o r.Ir.name)
            (* And instrumented actual paths are never undercounted. *)
            && Path_profile.fold t ~init:true ~f:(fun ok path n ->
                   ok
                   &&
                   match Instrument.path_status plan path with
                   | `Instrumented k -> Instr_rt.Table.get table k >= n
                   | `Uninstrumented -> true)
          end)
    p.Ir.routines

let prop_ppp_overcounts_only =
  QCheck.Test.make ~name:"PPP only ever overcounts" ~count:60
    QCheck.(small_int)
    (fun seed -> check_ppp_bounds (Ppp_workloads.Gen.program ~seed))

(* Free poisoning confines cold executions: every nonzero array slot at
   or beyond N is cold, and no hot number collides with them. *)
let prop_free_poison_range =
  QCheck.Test.make ~name:"free poisoning keeps cold numbers out of [0,N)"
    ~count:60
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let base, inst, o = run_with Config.ppp p in
      let actual = Option.get base.Interp.path_profile in
      List.for_all
        (fun (r : Ir.routine) ->
          let plan = Hashtbl.find inst.Instrument.plans r.Ir.name in
          match plan.Instrument.decision with
          | Instrument.Uninstrumented _ -> true
          | Instrument.Instrumented { numbering; uses_hash; _ } ->
              let n = Numbering.num_paths numbering in
              let st = Option.get o.Interp.instr_state in
              let table = Hashtbl.find st r.Ir.name in
              ignore uses_hash;
              (* Counts within [0,N) must decode (measured hot paths or
                 overcounts); anything >= N is cold. No negative keys can
                 exist with free poisoning, so the cold counter is 0. *)
              Instr_rt.Table.cold table = 0
              &&
              let t = Path_profile.routine actual r.Ir.name in
              ignore t;
              List.for_all
                (fun (k, _) -> k < n || Instrument.decoded_path plan k = None)
                (measured_counts inst o r.Ir.name))
        p.Ir.routines)

let test_ppp_instrument_smoke () =
  (* Deterministic smoke test on one seed: PPP produces strictly less
     instrumentation than PP. *)
  let p = Ppp_workloads.Gen.program ~seed:42 in
  let base = Interp.run p in
  let ep = Option.get base.Interp.edge_profile in
  let pp = Instrument.instrument p ep Config.pp in
  let ppp = Instrument.instrument p ep Config.ppp in
  let c_pp = Instrument.static_instr_count pp in
  let c_ppp = Instrument.static_instr_count ppp in
  Alcotest.(check bool) "ppp <= pp static actions" true (c_ppp <= c_pp)

let test_ppp_overhead_lower () =
  (* Overhead ordering PP >= TPP >= PPP should hold on most programs; we
     assert it on an aggregate of several seeds to avoid flakiness. *)
  let total = List.fold_left (fun (a, b, c) seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let _, _, o_pp = run_with Config.pp p in
      let _, _, o_tpp = run_with Config.tpp p in
      let _, _, o_ppp = run_with Config.ppp p in
      (a + o_pp.Interp.instr_cost, b + o_tpp.Interp.instr_cost,
       c + o_ppp.Interp.instr_cost))
      (0, 0, 0)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let pp_c, tpp_c, ppp_c = total in
  Alcotest.(check bool) "tpp <= pp" true (tpp_c <= pp_c);
  Alcotest.(check bool) "ppp <= tpp" true (ppp_c <= tpp_c)

let suite =
  [
    Alcotest.test_case "fig1 numbering" `Quick test_fig1_numbering;
    Alcotest.test_case "fig1 event counting" `Quick test_event_count_preserves_fig1;
    Alcotest.test_case "smart numbering" `Quick test_smart_numbering_hottest_zero;
    Alcotest.test_case "cold marking closure" `Quick test_cold_marking_closure;
    Alcotest.test_case "ppp static actions" `Quick test_ppp_instrument_smoke;
    Alcotest.test_case "overhead ordering" `Quick test_ppp_overhead_lower;
    QCheck_alcotest.to_alcotest prop_pp_exact;
    QCheck_alcotest.to_alcotest prop_tpp_exact_on_hot;
    QCheck_alcotest.to_alcotest prop_tpp_check_poisoning_exact;
    QCheck_alcotest.to_alcotest prop_ppp_overcounts_only;
    QCheck_alcotest.to_alcotest prop_free_poison_range;
  ]
