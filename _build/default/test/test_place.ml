(* Unit tests of instrumentation placement: pushing, combining, obvious
   elision, dead-instrumentation elimination, poisoning modes, and the
   DAG-to-CFG restoration. Figure 4 (all paths obvious) and Figure 5
   (pushing past a cold edge) are encoded directly. *)

module Graph = Ppp_cfg.Graph
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile
module Routine_ctx = Ppp_flow.Routine_ctx
module Config = Ppp_core.Config
module Numbering = Ppp_core.Numbering
module Event_count = Ppp_core.Event_count
module Cold = Ppp_core.Cold
module Place = Ppp_core.Place
module Instrument = Ppp_core.Instrument
module Instr_rt = Ppp_interp.Instr_rt
module Interp = Ppp_interp.Interp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let place_with ctx hot ~config =
  let nb =
    Numbering.compute ctx ~hot
      ~order:
        (if config.Config.smart_numbering then
           Numbering.Freq_decreasing (fun e -> float_of_int (Routine_ctx.freq ctx e))
         else Numbering.Ball_larus)
  in
  let ev =
    Event_count.compute ctx ~hot ~numbering:nb
      ~weight:(fun e -> float_of_int (Routine_ctx.freq ctx e))
  in
  ( nb,
    Place.place
      {
        Place.ctx;
        hot;
        numbering = nb;
        ev;
        push_past_cold = config.Config.push_past_cold;
        elide_obvious = config.Config.elide_obvious;
        poisoning = config.Config.poisoning;
        use_hash = false;
      } )

(* Figure 4: a chain of diamonds where one side of each is never taken,
   so after cold removal every path is obvious and, with elision and
   dead-instrumentation removal, no action survives. *)
let fig4_like () =
  let view = Fixtures.view Fixtures.fig8_routine in
  (* AB hot (80), AC never; DE hot, DF never: a single hot path. *)
  let profile = Edge_profile.create ~nedges:9 in
  List.iteri (fun e f -> Edge_profile.add profile e f) [ 80; 0; 80; 0; 80; 0; 80; 0; 80 ];
  let ctx = Routine_ctx.make view profile in
  let hot =
    Cold.mark ctx ~local_ratio:(Some 0.05) ~global_cutoff:None ~extra_cold:[]
  in
  let _, result = place_with ctx hot ~config:Config.ppp in
  check_int "single hot path elided, nothing remains" 0 result.Place.num_actions;
  check_int "one elided path" 1 (List.length result.Place.elided)

let test_pp_keeps_counts () =
  (* PP has no edge profile knowledge: it must keep a count for every
     path, even the obvious single hot one. *)
  let view = Fixtures.view Fixtures.fig8_routine in
  let profile = Fixtures.fig8_profile () in
  let ctx = Routine_ctx.make view profile in
  let hot = Cold.all_hot ctx in
  let _, result = place_with ctx hot ~config:Config.pp in
  check_bool "pp places actions" true (result.Place.num_actions > 0);
  check_int "pp elides nothing" 0 (List.length result.Place.elided)

let test_free_poison_table_size () =
  (* With a cold edge under free poisoning, the table must extend past N
     to hold the poisoned numbers (Section 4.6: at most [N, 3N-1]). *)
  let view = Fixtures.view Fixtures.fig8_routine in
  let profile = Edge_profile.create ~nedges:9 in
  (* AC cold but occasionally executed. *)
  List.iteri (fun e f -> Edge_profile.add profile e f) [ 79; 1; 79; 1; 40; 40; 40; 40; 80 ];
  let ctx = Routine_ctx.make view profile in
  let hot =
    Cold.mark ctx ~local_ratio:(Some 0.05) ~global_cutoff:None ~extra_cold:[]
  in
  let nb, result = place_with ctx hot ~config:{ Config.ppp with elide_obvious = false } in
  let n = Numbering.num_paths nb in
  check_int "two hot paths" 2 n;
  check_bool "table extends for poison" true (result.Place.table_size >= n);
  check_bool "table bounded by 3N" true (result.Place.table_size <= 3 * n)

let test_check_poison_only_with_cold () =
  (* Without any cold edge, check-mode poisoning must not emit checked
     counts (no poison test to pay for). *)
  let view = Fixtures.view Fixtures.fig8_routine in
  let profile = Fixtures.fig8_profile () in
  let ctx = Routine_ctx.make view profile in
  let hot = Cold.all_hot ctx in
  let _, result =
    place_with ctx hot ~config:{ Config.tpp_original with elide_obvious = false }
  in
  let has_checked =
    Array.exists
      (List.exists (function
        | Instr_rt.Count_checked | Instr_rt.Count_checked_plus _ -> true
        | _ -> false))
      result.Place.rt.Instr_rt.edge_actions
  in
  check_bool "no checks without cold edges" false has_checked

let test_check_poison_with_cold () =
  let view = Fixtures.view Fixtures.fig8_routine in
  let profile = Edge_profile.create ~nedges:9 in
  List.iteri (fun e f -> Edge_profile.add profile e f) [ 79; 1; 79; 1; 40; 40; 40; 40; 80 ];
  let ctx = Routine_ctx.make view profile in
  let hot =
    Cold.mark ctx ~local_ratio:(Some 0.05) ~global_cutoff:None ~extra_cold:[]
  in
  let _, result =
    place_with ctx hot
      ~config:{ Config.tpp_original with elide_obvious = false; push_past_cold = false }
  in
  let has_checked =
    Array.exists
      (List.exists (function
        | Instr_rt.Count_checked | Instr_rt.Count_checked_plus _ -> true
        | _ -> false))
      result.Place.rt.Instr_rt.edge_actions
  in
  check_bool "checks appear with cold edges" true has_checked

(* Figure 5's shape: a hot straight-line region with a cold side exit in
   the middle. TPP must keep more instrumentation than PPP, because PPP
   pushes past the cold edge. *)
let fig5_like_program () =
  let open Ppp_ir.Builder in
  let b = create ~name:"main" ~nparams:0 in
  let i = reg b in
  let acc = reg b in
  mov b acc (Ir.Imm 0);
  for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm 512) (fun () ->
      let even = bin_ b Ir.And (Ir.Reg i) (Ir.Imm 1) in
      let is_even = bin_ b Ir.Eq even (Ir.Imm 0) in
      if_ b is_even
        ~then_:(fun () -> bin b acc Ir.Add (Ir.Reg acc) (Ir.Imm 1))
        ~else_:(fun () -> bin b acc Ir.Add (Ir.Reg acc) (Ir.Imm 2));
      (* cold side exit *)
      let rare = bin_ b Ir.Eq (Ir.Reg i) (Ir.Imm 100) in
      when_ b rare (fun () -> bin b acc Ir.Mul (Ir.Reg acc) (Ir.Imm 3));
      bin b acc Ir.Add (Ir.Reg acc) (Ir.Reg i));
  out b (Ir.Reg acc);
  ret b (Some (Ir.Reg acc));
  program ~main:"main" [ finish b ]

let test_push_past_cold_reduces_actions () =
  let p = fig5_like_program () in
  let o = Interp.run p in
  let ep = Option.get o.Interp.edge_profile in
  let count config =
    Instrument.static_instr_count (Instrument.instrument p ep config)
  in
  let no_push = count { Config.ppp with push_past_cold = false; low_coverage_skip = None } in
  let push = count { Config.ppp with low_coverage_skip = None } in
  check_bool
    (Printf.sprintf "pushing past cold strictly helps (%d < %d)" push no_push)
    true (push < no_push)

let test_restore_back_edges () =
  (* Instrumentation on dummy edges must land on the back edge: running
     the instrumented loop counts header-to-header paths. *)
  let p = fig5_like_program () in
  let o = Interp.run p in
  let ep = Option.get o.Interp.edge_profile in
  let inst = Instrument.instrument p ep Config.pp in
  let o2 =
    Interp.run
      ~config:{ Interp.default_config with instrumentation = Some inst.Instrument.rt }
      p
  in
  let table = Hashtbl.find (Option.get o2.Interp.instr_state) "main" in
  check_int "all 513 path executions counted" 513 (Instr_rt.Table.dynamic_total table)

let test_interp_rejects_missing_routine_gracefully () =
  (* An instrumentation table naming an absent routine is simply ignored
     (routines absent from the table are uninstrumented, and vice
     versa). *)
  let p = fig5_like_program () in
  let rt = Instr_rt.no_instrumentation () in
  Hashtbl.replace rt "ghost"
    { Instr_rt.edge_actions = [||]; table = Instr_rt.Array_table 1; num_paths = 1 };
  let o =
    Interp.run ~config:{ Interp.default_config with instrumentation = Some rt } p
  in
  check_int "no instrumentation cost" 0 o.Interp.instr_cost

let suite =
  [
    Alcotest.test_case "figure 4: all obvious" `Quick fig4_like;
    Alcotest.test_case "pp keeps counts" `Quick test_pp_keeps_counts;
    Alcotest.test_case "free poison table size" `Quick test_free_poison_table_size;
    Alcotest.test_case "no checks without cold" `Quick test_check_poison_only_with_cold;
    Alcotest.test_case "checks with cold" `Quick test_check_poison_with_cold;
    Alcotest.test_case "figure 5: push past cold" `Quick test_push_past_cold_reduces_actions;
    Alcotest.test_case "back edge restoration" `Quick test_restore_back_edges;
    Alcotest.test_case "ghost routine ignored" `Quick test_interp_rejects_missing_routine_gracefully;
  ]
