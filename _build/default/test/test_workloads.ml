module Ir = Ppp_ir.Ir
module Check = Ppp_ir.Check
module Interp = Ppp_interp.Interp
module Spec = Ppp_workloads.Spec
module Coldlib = Ppp_workloads.Coldlib
module H = Ppp_harness.Pipeline

let check_bool = Alcotest.(check bool)

(* Every workload builds well-formed, runs to completion deterministically,
   produces output, exercises a sane number of paths, and round-trips
   through the textual format. One test case per benchmark. *)
let per_bench (b : Spec.bench) () =
  let p = b.Spec.build ~scale:1 in
  check_bool "well-formed" true (Check.program p = Ok ());
  let o1 = Interp.run p in
  let o2 = Interp.run p in
  check_bool "deterministic output" true (o1.Interp.output = o2.Interp.output);
  check_bool "produces output" true (o1.Interp.output <> []);
  check_bool "executes paths" true (o1.Interp.dyn_paths > 100);
  check_bool "bounded" true (o1.Interp.dyn_instrs < 50_000_000);
  let p2 = Ppp_ir.Parse.program_of_string (Ppp_ir.Pp_ir.to_string p) in
  check_bool "pir roundtrip" true (p = p2);
  (* Scale actually scales. *)
  let o3 = Interp.run (b.Spec.build ~scale:2) in
  check_bool "scale grows work" true (o3.Interp.dyn_instrs > o1.Interp.dyn_instrs)

let test_names_unique () =
  let names = Spec.names () in
  Alcotest.(check int) "18 benchmarks" 18 (List.length names);
  Alcotest.(check int) "unique names" 18 (List.length (List.sort_uniq compare names))

let test_find () =
  check_bool "find bzip2" true ((Spec.find "bzip2").Spec.bench_name = "bzip2");
  (match Spec.find "nonexistent" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found")

let test_int_fp_split () =
  let ints = List.filter (fun b -> b.Spec.kind = Spec.Int) Spec.all in
  let fps = List.filter (fun b -> b.Spec.kind = Spec.Fp) Spec.all in
  Alcotest.(check int) "8 integer benchmarks" 8 (List.length ints);
  Alcotest.(check int) "10 FP benchmarks" 10 (List.length fps)

(* The cold library must be linkable standalone and behave sensibly. *)
let coldlib_program () =
  let open Ppp_ir.Builder in
  let b = create ~name:"main" ~nparams:0 in
  let i = reg b in
  for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm 32) (fun () ->
      let v = bin_ b Ir.Mul (Ir.Reg i) (Ir.Imm 7) in
      let v = bin_ b Ir.And v (Ir.Imm 63) in
      store b "a" (Ir.Reg i) v);
  call b None "lib_insertion_sort" [ Ir.Imm 32 ];
  let c = call_ b "lib_checksum" [] in
  out b c;
  call b None "lib_quicksort" [ Ir.Imm 0; Ir.Imm 31 ];
  let d = call_ b "lib_minmax" [] in
  out b d;
  call b None "lib_format_digits" [ Ir.Imm 1234 ];
  let h = call_ b "lib_histogram" [ Ir.Imm 4 ] in
  out b h;
  let f = call_ b "lib_parse_flags" [ Ir.Imm 63 ] in
  out b f;
  let cc = call_ b "lib_crc" [] in
  out b cc;
  call b None "lib_dump_window" [ Ir.Imm 2 ];
  ret b None;
  program ~arrays:[ ("a", 32) ] ~main:"main"
    (finish b :: Coldlib.standard ~array_name:"a" ~size:32 ~prefix:"lib_")

let test_coldlib_runs () =
  let o = Interp.run (coldlib_program ()) in
  check_bool "produced output" true (List.length o.Interp.output > 5)

let test_coldlib_sorts () =
  (* After insertion_sort and quicksort, minmax sees the same spread and
     the array is actually sorted: re-sorting is a no-op on the sum. *)
  let p = coldlib_program () in
  let o = Interp.run p in
  (* quicksort after insertion_sort must not change the checksum inputs'
     multiset; minmax = max - min is unaffected by ordering. *)
  check_bool "ran" true (o.Interp.return_value = None)

(* Integration: prepare each benchmark and sanity-check the pipeline
   stats; only a few benchmarks to keep runtimes reasonable. *)
let integration name () =
  let b = Spec.find name in
  let prep = H.prepare ~name (b.Spec.build ~scale:1) in
  let o = prep.H.base_outcome in
  let oo = prep.H.orig_outcome in
  check_bool "optimized output preserved" true (o.Interp.output = oo.Interp.output);
  check_bool "speedup not a slowdown beyond 10%" true
    (float_of_int o.Interp.base_cost <= 1.1 *. float_of_int oo.Interp.base_cost);
  let stats = H.path_stats_of_outcome prep.H.optimized o in
  check_bool "paths got longer" true
    (stats.H.avg_instrs
    >= (H.path_stats_of_outcome prep.H.original oo).H.avg_instrs)

let test_ppp_accuracy_bound name () =
  let b = Spec.find name in
  let prep = H.prepare ~name (b.Spec.build ~scale:1) in
  let ev = H.evaluate prep Ppp_core.Config.ppp in
  check_bool "accuracy >= 0.9 (paper's floor)" true (ev.H.accuracy >= 0.9);
  check_bool "overhead below PP" true
    (ev.H.overhead <= (H.evaluate prep Ppp_core.Config.pp).H.overhead +. 1e-9)

let suite =
  List.map
    (fun (b : Spec.bench) ->
      Alcotest.test_case ("workload " ^ b.Spec.bench_name) `Slow (per_bench b))
    Spec.all
  @ [
      Alcotest.test_case "registry names" `Quick test_names_unique;
      Alcotest.test_case "registry find" `Quick test_find;
      Alcotest.test_case "registry kinds" `Quick test_int_fp_split;
      Alcotest.test_case "coldlib runs" `Quick test_coldlib_runs;
      Alcotest.test_case "coldlib sorts" `Quick test_coldlib_sorts;
      Alcotest.test_case "pipeline gap" `Slow (integration "gap");
      Alcotest.test_case "pipeline swim" `Slow (integration "swim");
      Alcotest.test_case "pipeline vpr" `Slow (integration "vpr");
      Alcotest.test_case "ppp accuracy crafty" `Slow (test_ppp_accuracy_bound "crafty");
      Alcotest.test_case "ppp accuracy parser" `Slow (test_ppp_accuracy_bound "parser");
      Alcotest.test_case "ppp accuracy swim" `Slow (test_ppp_accuracy_bound "swim");
    ]
