test/test_interp.ml: Alcotest Array Hashtbl List Option Ppp_cfg Ppp_interp Ppp_ir Ppp_profile Ppp_workloads QCheck QCheck_alcotest
