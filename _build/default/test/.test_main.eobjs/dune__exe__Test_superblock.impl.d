test/test_superblock.ml: Alcotest Hashtbl Option Ppp_core Ppp_harness Ppp_interp Ppp_ir Ppp_opt Ppp_profile Ppp_workloads QCheck QCheck_alcotest
