test/test_misc.ml: Alcotest Array Float Format List Ppp_cfg Ppp_interp Ppp_ir Ppp_profile Ppp_workloads Printf String
