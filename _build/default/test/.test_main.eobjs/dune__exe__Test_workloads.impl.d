test/test_workloads.ml: Alcotest List Ppp_core Ppp_harness Ppp_interp Ppp_ir Ppp_workloads
