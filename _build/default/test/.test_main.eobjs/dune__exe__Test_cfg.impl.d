test/test_cfg.ml: Alcotest Array Fixtures Fun List Option Ppp_cfg Ppp_ir
