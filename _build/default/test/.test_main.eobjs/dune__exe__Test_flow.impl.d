test/test_flow.ml: Alcotest Fixtures Hashtbl List Option Ppp_cfg Ppp_flow Ppp_interp Ppp_ir Ppp_profile Ppp_workloads QCheck QCheck_alcotest
