test/test_semantics.ml: Alcotest Hashtbl List Option Ppp_core Ppp_interp Ppp_ir Ppp_profile Ppp_workloads QCheck QCheck_alcotest
