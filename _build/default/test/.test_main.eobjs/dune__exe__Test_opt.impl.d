test/test_opt.ml: Alcotest List Option Ppp_cfg Ppp_interp Ppp_ir Ppp_opt Ppp_profile Ppp_workloads QCheck QCheck_alcotest
