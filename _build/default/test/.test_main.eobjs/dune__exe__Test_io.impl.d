test/test_io.ml: Alcotest Buffer Format Hashtbl List Option Ppp_cfg Ppp_core Ppp_interp Ppp_ir Ppp_profile Ppp_workloads QCheck QCheck_alcotest String
