test/test_harness.ml: Alcotest Buffer Format List Ppp_core Ppp_harness Ppp_interp Ppp_ir Ppp_opt Ppp_workloads Printf String
