test/test_instrument.ml: Alcotest Hashtbl List Option Ppp_core Ppp_harness Ppp_interp Ppp_ir Ppp_workloads String
