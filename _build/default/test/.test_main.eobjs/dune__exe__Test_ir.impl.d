test/test_ir.ml: Alcotest Array Ppp_interp Ppp_ir Ppp_workloads QCheck QCheck_alcotest Result
