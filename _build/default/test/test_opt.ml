module Ir = Ppp_ir.Ir
module B = Ppp_ir.Builder
module Interp = Ppp_interp.Interp
module Edge_profile = Ppp_profile.Edge_profile
module Cfg_view = Ppp_ir.Cfg_view
module Inline = Ppp_opt.Inline
module Unroll = Ppp_opt.Unroll

(* Block frequencies from an edge profile: inflow plus invocations for
   the entry block. *)
let block_freq_of_profile p ep ~routine ~block =
  let r = Ir.routine p routine in
  let view = Cfg_view.of_routine r in
  let g = Cfg_view.graph view in
  let prof = Edge_profile.routine ep routine in
  let inflow =
    List.fold_left
      (fun a e -> a + Edge_profile.freq prof e)
      0
      (Ppp_cfg.Graph.in_edges g block)
  in
  if block = 0 then inflow + Edge_profile.entry_count ep p routine else inflow

let run_inline ?code_bloat p =
  let o = Interp.run p in
  let ep = Option.get o.Interp.edge_profile in
  let p', stats =
    Inline.run ?code_bloat p ~block_freq:(fun ~routine ~block ->
        block_freq_of_profile p ep ~routine ~block)
  in
  (o, p', stats)

let hot_call_program () =
  (* main calls f in a hot loop; f is tiny and must be inlined. *)
  let f =
    let b = B.create ~name:"f" ~nparams:1 in
    let r = B.reg b in
    B.bin b r Ir.Mul (B.param b 0) (Ir.Imm 3);
    B.ret b (Some (Ir.Reg r));
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let i = B.reg b in
    let acc = B.reg b in
    B.mov b acc (Ir.Imm 0);
    B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm 50) (fun () ->
        let v = B.call_ b "f" [ Ir.Reg i ] in
        B.bin b acc Ir.Add (Ir.Reg acc) v);
    B.out b (Ir.Reg acc);
    B.ret b (Some (Ir.Reg acc));
    B.finish b
  in
  B.program ~main:"main" [ main; f ]

let test_inline_hot_call () =
  let p = hot_call_program () in
  let o, p', stats = run_inline ~code_bloat:0.5 p in
  Alcotest.(check bool) "inlined something" true (stats.Inline.sites_inlined >= 1);
  Alcotest.(check bool) "pct dynamic" true (Inline.pct_dynamic_inlined stats > 0.9);
  (* Semantics preserved. *)
  let o' = Interp.run p' in
  Alcotest.(check (list int)) "same output" o.Interp.output o'.Interp.output;
  (* Calls got cheaper: base cost drops. *)
  Alcotest.(check bool) "faster" true (o'.Interp.base_cost < o.Interp.base_cost)

let test_inline_respects_bloat () =
  let p = hot_call_program () in
  (* Zero budget: nothing can be inlined. *)
  let _, _, stats = run_inline ~code_bloat:0.0 p in
  Alcotest.(check int) "no inlining" 0 stats.Inline.sites_inlined

let test_inline_skips_recursion () =
  let src =
    {|routine main(0) regs 2 {
entry:
  r0 = call fact(6)
  out r0
  ret r0
}
routine fact(1) regs 3 {
entry:
  r1 = r0 <= 1
  br r1, base, rec
base:
  ret 1
rec:
  r2 = r0 - 1
  r2 = call fact(r2)
  r2 = r2 * r0
  ret r2
}|}
  in
  let p = Ppp_ir.Parse.program_of_string src in
  let o, p', stats = run_inline ~code_bloat:1.0 p in
  (* fact -> fact must not be inlined; main -> fact may be. *)
  let o' = Interp.run p' in
  Alcotest.(check (list int)) "factorial preserved" [ 720 ] o'.Interp.output;
  Alcotest.(check (list int)) "was 720" [ 720 ] o.Interp.output;
  ignore stats

let loopy_program trips =
  let main =
    let b = B.create ~name:"main" ~nparams:0 in
    let i = B.reg b in
    let acc = B.reg b in
    B.mov b acc (Ir.Imm 0);
    B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm trips) (fun () ->
        B.bin b acc Ir.Add (Ir.Reg acc) (Ir.Reg i);
        let idx = B.bin_ b Ir.And (Ir.Reg i) (Ir.Imm 63) in
        B.store b "a" idx (Ir.Reg acc));
    B.out b (Ir.Reg acc);
    B.ret b None;
    B.finish b
  in
  B.program ~arrays:[ ("a", 64) ] ~main:"main" [ main ]

let test_unroll_preserves_semantics () =
  let p = loopy_program 100 in
  let o = Interp.run p in
  let ep = Option.get o.Interp.edge_profile in
  let p', stats = Unroll.run p ~edge_profile:ep in
  Alcotest.(check bool) "unrolled one loop" true (stats.Unroll.loops_unrolled = 1);
  Alcotest.(check bool) "factor 4" true (stats.Unroll.avg_dynamic_factor > 3.9);
  let o' = Interp.run p' in
  Alcotest.(check (list int)) "same output" o.Interp.output o'.Interp.output;
  (* Paths got longer: fewer dynamic paths for the same work. *)
  Alcotest.(check bool) "fewer, longer paths" true
    (o'.Interp.dyn_paths < o.Interp.dyn_paths)

let test_unroll_skips_low_trip () =
  let p = loopy_program 5 in
  let o = Interp.run p in
  let ep = Option.get o.Interp.edge_profile in
  let _, stats = Unroll.run p ~edge_profile:ep in
  Alcotest.(check int) "not unrolled" 0 stats.Unroll.loops_unrolled

let prop_inline_preserves_output =
  QCheck.Test.make ~name:"inlining preserves observable output" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o, p', _ = run_inline ~code_bloat:0.3 p in
      let o' = Interp.run p' in
      o.Interp.output = o'.Interp.output
      && o.Interp.return_value = o'.Interp.return_value)

let prop_unroll_preserves_output =
  QCheck.Test.make ~name:"unrolling preserves observable output" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o = Interp.run p in
      let ep = Option.get o.Interp.edge_profile in
      let p', _ = Unroll.run p ~edge_profile:ep ~min_trip:2.0 in
      let o' = Interp.run p' in
      o.Interp.output = o'.Interp.output)

let prop_inline_then_unroll =
  QCheck.Test.make ~name:"inline+unroll pipeline preserves output" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o, p1, _ = run_inline p in
      let o1 = Interp.run p1 in
      let ep1 = Option.get o1.Interp.edge_profile in
      let p2, _ = Unroll.run p1 ~edge_profile:ep1 ~min_trip:2.0 in
      let o2 = Interp.run p2 in
      o.Interp.output = o2.Interp.output)

let suite =
  [
    Alcotest.test_case "inline hot call" `Quick test_inline_hot_call;
    Alcotest.test_case "inline bloat budget" `Quick test_inline_respects_bloat;
    Alcotest.test_case "inline recursion" `Quick test_inline_skips_recursion;
    Alcotest.test_case "unroll semantics" `Quick test_unroll_preserves_semantics;
    Alcotest.test_case "unroll low trip" `Quick test_unroll_skips_low_trip;
    QCheck_alcotest.to_alcotest prop_inline_preserves_output;
    QCheck_alcotest.to_alcotest prop_unroll_preserves_output;
    QCheck_alcotest.to_alcotest prop_inline_then_unroll;
  ]
