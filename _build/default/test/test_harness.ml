module Ir = Ppp_ir.Ir
module Interp = Ppp_interp.Interp
module Config = Ppp_core.Config
module H = Ppp_harness.Pipeline
module R = Ppp_harness.Report
module Spec = Ppp_workloads.Spec

let check_bool = Alcotest.(check bool)

let small_prep () =
  H.prepare ~name:"gap" ((Spec.find "gap").Spec.build ~scale:1)

let test_evaluation_bounds () =
  let prep = small_prep () in
  List.iter
    (fun config ->
      let ev = H.evaluate prep config in
      check_bool "accuracy in [0,1]" true (ev.H.accuracy >= 0.0 && ev.H.accuracy <= 1.0);
      check_bool "coverage in [0,1]" true (ev.H.coverage >= 0.0 && ev.H.coverage <= 1.0);
      check_bool "overhead >= 0" true (ev.H.overhead >= 0.0);
      check_bool "fractions sane" true
        (ev.H.frac_paths_hashed <= ev.H.frac_paths_instrumented +. 1e-9))
    [ Config.pp; Config.tpp; Config.tpp_original; Config.ppp ]

let test_pp_perfect_when_array () =
  (* When PP needs no hash table anywhere, it measures the exact profile,
     so its estimated profile gives accuracy 1 and coverage 1. *)
  let prep = small_prep () in
  let ev = H.evaluate prep Config.pp in
  check_bool "pp accuracy = 1" true (ev.H.accuracy > 0.999);
  check_bool "pp coverage = 1" true (ev.H.coverage > 0.999)

let test_edge_profile_eval () =
  let prep = small_prep () in
  let ev = H.evaluate_edge_profile prep in
  check_bool "edge overhead is zero" true (ev.H.overhead = 0.0);
  check_bool "edge instruments nothing" true (ev.H.frac_paths_instrumented = 0.0);
  check_bool "edge coverage below 1 on branchy code" true (ev.H.coverage < 1.0)

let test_overhead_ordering () =
  let prep = small_prep () in
  let pp = (H.evaluate prep Config.pp).H.overhead in
  let tpp = (H.evaluate prep Config.tpp).H.overhead in
  let ppp = (H.evaluate prep Config.ppp).H.overhead in
  check_bool "tpp <= pp" true (tpp <= pp +. 1e-9);
  check_bool "ppp <= tpp" true (ppp <= tpp +. 1e-9)

let test_leave_one_out_configs () =
  (* Every ablation config must evaluate without error and stay at or
     below PP's overhead. *)
  let prep = small_prep () in
  let pp = (H.evaluate prep Config.pp).H.overhead in
  List.iter
    (fun t ->
      let ev = H.evaluate prep (Config.ppp_without t) in
      check_bool
        (Printf.sprintf "ppp - %s <= pp" (Config.technique_name t))
        true
        (ev.H.overhead <= pp +. 1e-9);
      let ev2 = H.evaluate prep (Config.tpp_plus t) in
      check_bool
        (Printf.sprintf "tpp + %s <= pp" (Config.technique_name t))
        true
        (ev2.H.overhead <= pp +. 1e-9))
    Config.all_techniques

let test_hot_stats_monotone () =
  let prep = small_prep () in
  let h1 = H.hot_stats prep ~threshold:0.00125 in
  let h2 = H.hot_stats prep ~threshold:0.01 in
  check_bool "higher threshold, fewer paths" true
    (h2.H.hot_count <= h1.H.hot_count);
  check_bool "higher threshold, less flow" true
    (h2.H.hot_flow_pct <= h1.H.hot_flow_pct +. 1e-9);
  check_bool "hot count positive" true (h1.H.hot_count > 0)

let test_reports_render () =
  (* The report functions must produce non-empty output without raising;
     rendered into a buffer on two small benchmarks. *)
  let benches = R.prepare_all ~scale:1 ~names:[ "gap"; "swim" ] () in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  R.table1 ppf benches;
  R.table2 ppf benches;
  R.fig9_10_11 ppf benches;
  R.fig12 ppf benches;
  R.fig13 ppf benches;
  R.section8_1 ppf benches;
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "substantial output" true (String.length s > 500);
  check_bool "mentions gap" true (contains "gap");
  check_bool "mentions swim" true (contains "swim")

let test_prepare_unoptimized () =
  let p = (Spec.find "gap").Spec.build ~scale:1 in
  let prep = H.prepare_unoptimized ~name:"gap" p in
  check_bool "no inlining" true (prep.H.inline_stats.Ppp_opt.Inline.sites_inlined = 0);
  check_bool "same program" true (prep.H.optimized == prep.H.original);
  let ev = H.evaluate prep Config.ppp in
  check_bool "still evaluates" true (ev.H.accuracy >= 0.0)

let suite =
  [
    Alcotest.test_case "evaluation bounds" `Slow test_evaluation_bounds;
    Alcotest.test_case "pp perfect with arrays" `Slow test_pp_perfect_when_array;
    Alcotest.test_case "edge profile eval" `Slow test_edge_profile_eval;
    Alcotest.test_case "overhead ordering" `Slow test_overhead_ordering;
    Alcotest.test_case "ablation configs" `Slow test_leave_one_out_configs;
    Alcotest.test_case "hot stats monotone" `Slow test_hot_stats_monotone;
    Alcotest.test_case "reports render" `Slow test_reports_render;
    Alcotest.test_case "prepare unoptimized" `Slow test_prepare_unoptimized;
  ]
