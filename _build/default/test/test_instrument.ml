(* Decision-level tests of the instrumenter front end: hash/array
   choices, the TPP escape rule, SAC, LC, obvious-loop disconnection and
   the never-executed case — on the workloads engineered to trigger
   each. *)

module Ir = Ppp_ir.Ir
module Interp = Ppp_interp.Interp
module Config = Ppp_core.Config
module Instrument = Ppp_core.Instrument
module Numbering = Ppp_core.Numbering
module Spec = Ppp_workloads.Spec
module H = Ppp_harness.Pipeline

let check_bool = Alcotest.(check bool)

(* (uses_hash, sa_iters, num_paths) of the main routine's plan. *)
let instrumented_main inst =
  match (Hashtbl.find inst.Instrument.plans "main").Instrument.decision with
  | Instrument.Instrumented { uses_hash; sa_iters; numbering; _ } ->
      (uses_hash, sa_iters, Numbering.num_paths numbering)
  | Instrument.Uninstrumented _ -> Alcotest.fail "main not instrumented"

let prep_of name = H.prepare ~name ((Spec.find name).Spec.build ~scale:1)

let inst_of prep config =
  let ep = Option.get prep.H.base_outcome.Interp.edge_profile in
  Instrument.instrument prep.H.optimized ep config

let test_crafty_hash_story () =
  (* The paper's crafty: PP and TPP stay hashed; PPP's self-adjusting
     global criterion escapes to an array (Sections 4.2-4.3). *)
  let prep = prep_of "crafty" in
  let ph, _, _ = instrumented_main (inst_of prep Config.pp) in
  let th, _, _ = instrumented_main (inst_of prep Config.tpp) in
  let fh, sa_iters, n = instrumented_main (inst_of prep Config.ppp) in
  check_bool "pp hashes" true ph;
  check_bool "tpp still hashes" true th;
  check_bool "ppp escapes to an array" false fh;
  check_bool "ppp needed self-adjusting iterations" true (sa_iters > 0);
  check_bool "ppp path count under the threshold" true
    (n <= Config.ppp.Config.hash_threshold)

let test_swim_uninstrumented () =
  (* swim: all loops obvious with high trip counts; TPP and PPP leave the
     hot code untouched (the paper's Section 6.1 special case). *)
  let prep = prep_of "swim" in
  let inst = inst_of prep Config.ppp in
  let plan = Hashtbl.find inst.Instrument.plans "main" in
  (match plan.Instrument.decision with
  | Instrument.Uninstrumented _ -> ()
  | Instrument.Instrumented { place; _ } ->
      Alcotest.(check int) "at most trivial actions" 0 place.Ppp_core.Place.num_actions);
  let ev = H.evaluate prep Config.ppp in
  check_bool "ppp overhead ~0 on swim" true (ev.H.overhead < 0.005);
  check_bool "accuracy still high via potential flow" true (ev.H.accuracy > 0.9)

let test_lc_skip_mcf () =
  (* mcf's edge coverage is above 75%: PPP skips instrumentation
     (Section 4.1), TPP does not. *)
  let prep = prep_of "mcf" in
  let inst = inst_of prep Config.ppp in
  (match (Hashtbl.find inst.Instrument.plans "main").Instrument.decision with
  | Instrument.Uninstrumented (Instrument.Low_coverage c) ->
      check_bool "coverage above threshold" true (c >= 0.75)
  | _ -> Alcotest.fail "expected a low-coverage skip on mcf main");
  let without_lc = inst_of prep (Config.ppp_without Config.LC) in
  match (Hashtbl.find without_lc.Instrument.plans "main").Instrument.decision with
  | Instrument.Instrumented _ -> ()
  | Instrument.Uninstrumented _ -> Alcotest.fail "LC-off must instrument mcf"

let test_never_executed_routines () =
  (* Coldlib routines that are linked but never called must be skipped as
     never-executed, for every method. *)
  let prep = prep_of "gap" in
  List.iter
    (fun config ->
      let inst = inst_of prep config in
      match (Hashtbl.find inst.Instrument.plans "lib_crc").Instrument.decision with
      | Instrument.Uninstrumented Instrument.Never_executed -> ()
      | _ -> Alcotest.fail "lib_crc should be Never_executed")
    [ Config.pp; Config.tpp; Config.ppp ]

let test_sa_iterations_bounded () =
  (* Across all workloads, the self-adjusting loop terminates within its
     cap and only fires where hashing loomed. *)
  List.iter
    (fun (b : Spec.bench) ->
      let prep = prep_of b.Spec.bench_name in
      let inst = inst_of prep Config.ppp in
      Hashtbl.iter
        (fun _ (plan : Instrument.routine_plan) ->
          match plan.Instrument.decision with
          | Instrument.Instrumented { sa_iters; _ } ->
              check_bool "sa iterations within cap" true
                (sa_iters <= Config.ppp.Config.sa_max_iters)
          | Instrument.Uninstrumented _ -> ())
        inst.Instrument.plans)
    [ Spec.find "crafty"; Spec.find "mesa"; Spec.find "vpr" ]

let test_decode_roundtrip_all_numbers () =
  (* decoded_path inverts path numbering for every live number. *)
  let prep = prep_of "vpr" in
  let inst = inst_of prep Config.ppp in
  Hashtbl.iter
    (fun _ (plan : Instrument.routine_plan) ->
      match plan.Instrument.decision with
      | Instrument.Uninstrumented _ -> ()
      | Instrument.Instrumented { numbering; _ } ->
          let n = Numbering.num_paths numbering in
          for k = 0 to min (n - 1) 200 do
            match Instrument.decoded_path plan k with
            | None -> () (* elided obvious path *)
            | Some path -> (
                match Instrument.path_status plan path with
                | `Instrumented k' -> Alcotest.(check int) "roundtrip" k k'
                | `Uninstrumented -> Alcotest.fail "decoded path not instrumented")
          done)
    inst.Instrument.plans

let test_tpp_plus_configs_distinct () =
  List.iter
    (fun t ->
      let c = Config.tpp_plus t in
      check_bool "named" true (String.length c.Config.name > 3))
    Config.all_techniques;
  check_bool "tpp+push enables pushing" true
    (Config.tpp_plus Config.Push).Config.push_past_cold;
  check_bool "tpp does not push past cold" false Config.tpp.Config.push_past_cold;
  check_bool "ppp-spn disables smart numbering" false
    (Config.ppp_without Config.SPN).Config.smart_numbering

let suite =
  [
    Alcotest.test_case "crafty hash story" `Slow test_crafty_hash_story;
    Alcotest.test_case "swim uninstrumented" `Slow test_swim_uninstrumented;
    Alcotest.test_case "mcf low-coverage skip" `Slow test_lc_skip_mcf;
    Alcotest.test_case "never-executed routines" `Slow test_never_executed_routines;
    Alcotest.test_case "sa iterations bounded" `Slow test_sa_iterations_bounded;
    Alcotest.test_case "decode roundtrip" `Slow test_decode_roundtrip_all_numbers;
    Alcotest.test_case "config axes" `Quick test_tpp_plus_configs_distinct;
  ]
