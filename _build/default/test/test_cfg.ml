module Graph = Ppp_cfg.Graph
module Order = Ppp_cfg.Order
module Dom = Ppp_cfg.Dom
module Loop = Ppp_cfg.Loop
module Dag = Ppp_cfg.Dag
module Cfg_view = Ppp_ir.Cfg_view

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A diamond with a loop: 0 -> 1 -> 2 -> 1 (back), 2 -> 3. *)
let loopy () =
  let g = Graph.create () in
  Graph.add_nodes g 4;
  let e01 = Graph.add_edge g 0 1 in
  let e12 = Graph.add_edge g 1 2 in
  let e21 = Graph.add_edge g 2 1 in
  let e23 = Graph.add_edge g 2 3 in
  (g, e01, e12, e21, e23)

let test_graph_basics () =
  let g, e01, _, _, _ = loopy () in
  check "nodes" 4 (Graph.num_nodes g);
  check "edges" 4 (Graph.num_edges g);
  check "src" 0 (Graph.src g e01);
  check "dst" 1 (Graph.dst g e01);
  check "out_degree 2" 2 (Graph.out_degree g 2);
  check "in_degree 1" 2 (Graph.in_degree g 1);
  check_bool "find_edge" true (Graph.find_edge g 0 1 = Some e01);
  check_bool "find_edge none" true (Graph.find_edge g 3 0 = None)

let test_graph_parallel_edges () =
  let g = Graph.create () in
  Graph.add_nodes g 2;
  let a = Graph.add_edge g 0 1 in
  let b = Graph.add_edge g 0 1 in
  check_bool "distinct ids" true (a <> b);
  check "out edges" 2 (List.length (Graph.out_edges g 0))

let test_reachability () =
  let g, _, _, _, _ = loopy () in
  let r = Order.reachable g 0 in
  check_bool "all reachable" true (Array.for_all Fun.id r);
  let co = Order.co_reachable g 3 in
  check_bool "3 co-reach" true (Array.for_all Fun.id co);
  let r1 = Order.reachable g 1 in
  check_bool "0 not reachable from 1" false r1.(0)

let test_topological () =
  let g = Graph.create () in
  Graph.add_nodes g 3;
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  (match Order.topological g with
  | Some [ 0; 1; 2 ] -> ()
  | Some _ -> Alcotest.fail "wrong topo order"
  | None -> Alcotest.fail "should be a DAG");
  let gc, _, _, _, _ = loopy () in
  check_bool "cyclic" true (Order.topological gc = None)

let test_retreating () =
  let g, _, _, e21, _ = loopy () in
  (match Order.retreating_edges g 0 with
  | [ e ] -> check "back edge" e21 e
  | _ -> Alcotest.fail "expected exactly one retreating edge");
  check_bool "is dag after removal" true
    (let d = Graph.create () in
     Graph.add_nodes d 4;
     ignore (Graph.add_edge d 0 1);
     ignore (Graph.add_edge d 1 2);
     ignore (Graph.add_edge d 2 3);
     Order.is_dag d)

let test_dominators () =
  let g, _, _, _, _ = loopy () in
  let dom = Dom.compute g ~root:0 in
  check_bool "0 dom all" true (Dom.dominates dom 0 3);
  check_bool "1 dom 2" true (Dom.dominates dom 1 2);
  check_bool "2 dom 3" true (Dom.dominates dom 2 3);
  check_bool "2 not dom 1" false (Dom.dominates dom 2 1);
  check_bool "reflexive" true (Dom.dominates dom 1 1);
  Alcotest.(check (option int)) "idom 3" (Some 2) (Dom.idom dom 3);
  Alcotest.(check (option int)) "idom root" None (Dom.idom dom 0)

let test_loops () =
  let g, _, _, e21, _ = loopy () in
  let loops = Loop.compute g ~root:0 in
  (match Loop.loops loops with
  | [ l ] ->
      check "header" 1 l.Loop.header;
      Alcotest.(check (list int)) "body" [ 1; 2 ] l.Loop.body;
      Alcotest.(check (list int)) "back edges" [ e21 ] l.Loop.back_edges
  | _ -> Alcotest.fail "expected one loop");
  check_bool "is_back_edge" true (Loop.is_back_edge loops e21);
  check "depth 2" 1 (Loop.depth loops 2);
  check "depth 0" 0 (Loop.depth loops 0);
  Alcotest.(check (list int)) "irreducible" [] (Loop.irreducible_edges loops)

let test_trip_count () =
  let g, e01, _, e21, _ = loopy () in
  let loops = Loop.compute g ~root:0 in
  let l = List.hd (Loop.loops loops) in
  let freq e = if e = e21 then 90 else if e = e01 then 10 else 0 in
  Alcotest.(check (float 0.001)) "10 trips" 10.0 (Loop.avg_trip_count loops l ~freq)

let test_dag_loopy () =
  let g, e01, e12, e21, e23 = loopy () in
  let loops = Loop.compute g ~root:0 in
  let dag = Dag.convert g ~entry:0 ~exit:3 ~break:(Loop.breakable_edges loops) in
  check_bool "acyclic" true (Ppp_cfg.Order.is_dag (Dag.dag dag));
  check_bool "broken" true (Dag.of_original dag e21 = None);
  check_bool "e01 kept" true (Dag.of_original dag e01 <> None);
  (* One entry dummy for header 1, one exit dummy for the back edge. *)
  let d_entry = Option.get (Dag.entry_dummy dag 1) in
  let d_exit = Option.get (Dag.exit_dummy dag e21) in
  check "entry dummy src" 0 (Graph.src (Dag.dag dag) d_entry);
  check "entry dummy dst" 1 (Graph.dst (Dag.dag dag) d_entry);
  check "exit dummy src" 2 (Graph.src (Dag.dag dag) d_exit);
  check "exit dummy dst" 3 (Graph.dst (Dag.dag dag) d_exit);
  (* Frequencies lift. *)
  let cfg_freq e = if e = e21 then 7 else if e = e12 then 9 else 1 in
  check "dummy freq" 7 (Dag.edge_freq dag ~cfg_freq d_exit);
  check "entry dummy freq" 7 (Dag.edge_freq dag ~cfg_freq d_entry);
  check "orig freq" 9 (Dag.edge_freq dag ~cfg_freq (Option.get (Dag.of_original dag e12)));
  ignore e23

let test_dag_path_roundtrip () =
  let g, e01, e12, e21, e23 = loopy () in
  let loops = Loop.compute g ~root:0 in
  let dag = Dag.convert g ~entry:0 ~exit:3 ~break:(Loop.breakable_edges loops) in
  (* An iteration path 1 -> 2 -> (back to 1): CFG edges [e12; e21]. *)
  let rt = Dag.cfg_path_of_dag_path dag (Dag.dag_path_of_cfg_path dag [ e12; e21 ]) in
  Alcotest.(check (list int)) "loop path roundtrip" [ e12; e21 ] rt;
  (* The invocation path 0 -> 1 -> 2 -> 3. *)
  let p = [ e01; e12; e23 ] in
  Alcotest.(check (list int)) "straight path roundtrip" p
    (Dag.cfg_path_of_dag_path dag (Dag.dag_path_of_cfg_path dag p))

let test_dag_header_is_entry () =
  (* Self-loop on the entry: 0 -> 0 (back), 0 -> 1. No entry dummy. *)
  let g = Graph.create () in
  Graph.add_nodes g 2;
  let e00 = Graph.add_edge g 0 0 in
  let e01 = Graph.add_edge g 0 1 in
  let loops = Loop.compute g ~root:0 in
  let dag = Dag.convert g ~entry:0 ~exit:1 ~break:(Loop.breakable_edges loops) in
  check_bool "acyclic" true (Ppp_cfg.Order.is_dag (Dag.dag dag));
  check_bool "no entry dummy" true (Dag.entry_dummy dag 0 = None);
  check_bool "exit dummy exists" true (Dag.exit_dummy dag e00 <> None);
  (* The iteration path [e00] round-trips without an entry dummy. *)
  Alcotest.(check (list int)) "self-loop path" [ e00 ]
    (Dag.cfg_path_of_dag_path dag (Dag.dag_path_of_cfg_path dag [ e00 ]));
  ignore e01

let test_fig1_dag () =
  let view = Fixtures.view Fixtures.fig1_routine in
  let g = Cfg_view.graph view in
  let loops = Loop.compute g ~root:0 in
  (match Loop.loops loops with
  | [ l ] -> check "fig1 header is entry" 0 l.Loop.header
  | _ -> Alcotest.fail "fig1 should have one loop");
  let dag =
    Dag.convert g ~entry:0 ~exit:(Cfg_view.exit view)
      ~break:(Loop.breakable_edges loops)
  in
  check_bool "fig1 dag acyclic" true (Ppp_cfg.Order.is_dag (Dag.dag dag))

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "parallel edges" `Quick test_graph_parallel_edges;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "topological" `Quick test_topological;
    Alcotest.test_case "retreating edges" `Quick test_retreating;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "natural loops" `Quick test_loops;
    Alcotest.test_case "trip count" `Quick test_trip_count;
    Alcotest.test_case "dag conversion" `Quick test_dag_loopy;
    Alcotest.test_case "dag path roundtrip" `Quick test_dag_path_roundtrip;
    Alcotest.test_case "header = entry" `Quick test_dag_header_is_entry;
    Alcotest.test_case "figure 1 dag" `Quick test_fig1_dag;
  ]
