module Graph = Ppp_cfg.Graph
module Cfg_view = Ppp_ir.Cfg_view
module Metric = Ppp_profile.Metric
module Path_profile = Ppp_profile.Path_profile
module Routine_ctx = Ppp_flow.Routine_ctx
module Flow_dp = Ppp_flow.Flow_dp
module Flowval = Ppp_flow.Flowval
module Score = Ppp_flow.Score
module Interp = Ppp_interp.Interp

let fig8_ctx () =
  let view = Fixtures.view Fixtures.fig8_routine in
  Routine_ctx.make view (Fixtures.fig8_profile ())

(* Edge ids (Cfg_view creation order): e0 AB, e1 AC, e2 BD, e3 CD, e4 DE,
   e5 DF, e6 EG, e7 FG, e8 G->exit. *)
let path_abdeg = [ 0; 2; 4; 6; 8 ]
let path_acdeg = [ 1; 3; 4; 6; 8 ]
let path_abdfg = [ 0; 2; 5; 7; 8 ]
let path_acdfg = [ 1; 3; 5; 7; 8 ]

let test_fig8_total_flow () =
  let ctx = fig8_ctx () in
  Alcotest.(check int) "F = 80" 80 (Routine_ctx.total_freq ctx);
  (* Total branch flow = sum of branch edge frequencies = 160 (S 5.2). *)
  let g = Routine_ctx.graph ctx in
  let branch_flow =
    Graph.fold_edges g ~init:0 ~f:(fun acc e ->
        if Routine_ctx.is_branch ctx e then acc + Routine_ctx.freq ctx e else acc)
  in
  Alcotest.(check int) "total branch flow 160" 160 branch_flow

let test_fig8_definite_per_path () =
  let ctx = fig8_ctx () in
  let df p = Flow_dp.definite_of_path ctx (Routine_ctx.dag_path_of_cfg_path ctx p) in
  (* Section 5.2: unit definite flows 30, 10, 0, 0 -> branch flows 60, 20, 0, 0. *)
  Alcotest.(check int) "DF(ABDEG)" 30 (df path_abdeg);
  Alcotest.(check int) "DF(ACDEG)" 10 (df path_acdeg);
  Alcotest.(check int) "DF(ABDFG)" 0 (df path_abdfg);
  Alcotest.(check int) "DF(ACDFG)" 0 (df path_acdfg)

let test_fig8_definite_dp_total () =
  let ctx = fig8_ctx () in
  let dp = Flow_dp.compute ctx Flow_dp.Definite in
  (* DF(P) = 60 + 20 = 80 under branch flow; coverage 80/160 = 50%. *)
  Alcotest.(check int) "DF branch total" 80
    (Flow_dp.total dp ~metric:Metric.Branch_flow);
  Alcotest.(check int) "DF unit total" 40
    (Flow_dp.total dp ~metric:Metric.Unit_flow)

let test_fig8_definite_reconstruct () =
  let ctx = fig8_ctx () in
  let dp = Flow_dp.compute ctx Flow_dp.Definite in
  let paths = Flow_dp.reconstruct dp ~cutoff:(-1) ~max_paths:100 in
  let as_cfg =
    List.map (fun (p, f, b) -> (Routine_ctx.cfg_path_of_dag_path ctx p, f, b)) paths
  in
  Alcotest.(check int) "two definite paths" 2 (List.length as_cfg);
  (* Decreasing f*b order: ABDEG (30,2) then ACDEG (10,2). *)
  (match as_cfg with
  | [ (p1, 30, 2); (p2, 10, 2) ] ->
      Alcotest.(check (list int)) "hottest" path_abdeg p1;
      Alcotest.(check (list int)) "second" path_acdeg p2
  | _ -> Alcotest.fail "unexpected reconstruction result")

let test_fig8_potential () =
  let ctx = fig8_ctx () in
  let pf p =
    Flow_dp.potential_of_path ctx (Routine_ctx.dag_path_of_cfg_path ctx p)
  in
  Alcotest.(check int) "PF(ABDEG)" 50 (pf path_abdeg);
  Alcotest.(check int) "PF(ACDEG)" 30 (pf path_acdeg);
  Alcotest.(check int) "PF(ABDFG)" 20 (pf path_abdfg);
  Alcotest.(check int) "PF(ACDFG)" 20 (pf path_acdfg);
  let dp = Flow_dp.compute ctx Flow_dp.Potential in
  let paths = Flow_dp.reconstruct dp ~cutoff:(-1) ~max_paths:100 in
  (* Every path is reachable in the potential profile; dedup keeps 4. *)
  let dedup = Hashtbl.create 8 in
  List.iter
    (fun (p, f, b) ->
      let cfg = Routine_ctx.cfg_path_of_dag_path ctx p in
      if not (Hashtbl.mem dedup cfg) then Hashtbl.replace dedup cfg (f * b))
    paths;
  Alcotest.(check int) "four potential paths" 4 (Hashtbl.length dedup)

let test_branch_flow_invariance_fig7 () =
  (* Figure 7: branch flow is invariant under inlining; unit flow is not.
     x calls y; under branch flow total = 30 both before and after. *)
  let src_outlined =
    {|routine main(0) regs 2 {
entry:
  r0 = 1
  br r0, c, d
c:
  r1 = call y()
  jump e
d:
  r1 = 0
  jump e
e:
  ret r1
}
routine y(0) regs 1 {
entry:
  br r0, j, k
j:
  ret 1
k:
  ret 0
}|}
  in
  let p = Ppp_ir.Parse.program_of_string src_outlined in
  let o = Interp.run p in
  let pp = Option.get o.Interp.path_profile in
  let views = Hashtbl.create 4 in
  List.iter
    (fun (r : Ppp_ir.Ir.routine) ->
      Hashtbl.replace views r.Ppp_ir.Ir.name (Cfg_view.of_routine r))
    p.Ppp_ir.Ir.routines;
  let v name = Hashtbl.find views name in
  let branch_total = Path_profile.program_flow pp ~views:v Metric.Branch_flow in
  let unit_total = Path_profile.program_flow pp ~views:v Metric.Unit_flow in
  (* One run: main takes one branch, y takes one branch: branch flow 2,
     unit flow 2 (two paths). *)
  Alcotest.(check int) "branch flow" 2 branch_total;
  Alcotest.(check int) "unit flow" 2 unit_total

let test_accuracy_perfect_and_zero () =
  let p = Ppp_workloads.Gen.program ~seed:5 in
  let o = Interp.run p in
  let actual = Option.get o.Interp.path_profile in
  let views = Hashtbl.create 8 in
  List.iter
    (fun (r : Ppp_ir.Ir.routine) ->
      Hashtbl.replace views r.Ppp_ir.Ir.name (Cfg_view.of_routine r))
    p.Ppp_ir.Ir.routines;
  let v name = Hashtbl.find views name in
  (* Estimating with the actual profile itself gives accuracy 1. *)
  let estimated =
    let acc = ref [] in
    Path_profile.iter_routines actual (fun name t ->
        Path_profile.iter t (fun path n ->
            let flow =
              Metric.flow Metric.Branch_flow ~freq:n
                ~branches:(Ppp_profile.Path.branches (v name) path)
            in
            acc := { Score.routine = name; path; flow } :: !acc));
    !acc
  in
  let a =
    Score.accuracy ~actual ~views:v ~metric:Metric.Branch_flow ~threshold:0.00125
      ~estimated
  in
  Alcotest.(check (float 1e-9)) "self accuracy" 1.0 a;
  let a0 =
    Score.accuracy ~actual ~views:v ~metric:Metric.Branch_flow ~threshold:0.00125
      ~estimated:[]
  in
  Alcotest.(check (float 1e-9)) "empty estimate" 0.0 a0

let test_coverage_formula () =
  Alcotest.(check (float 1e-9)) "edge coverage form" 0.5
    (Score.coverage ~total_actual_flow:160 ~measured_actual_flow:0
       ~definite_uninstr:80 ~overcount:0);
  Alcotest.(check (float 1e-9)) "overcount penalty" 0.75
    (Score.coverage ~total_actual_flow:100 ~measured_actual_flow:70
       ~definite_uninstr:10 ~overcount:5);
  Alcotest.(check (float 1e-9)) "empty" 1.0
    (Score.coverage ~total_actual_flow:0 ~measured_actual_flow:0
       ~definite_uninstr:0 ~overcount:0)

let test_flowval_ops () =
  let a = Flowval.singleton ~f:3 ~b:2 ~delta:1 in
  let b = Flowval.add a ~f:3 ~b:2 ~delta:2 in
  Alcotest.(check int) "add merges" 3 (Flowval.find b ~f:3 ~b:2);
  let c = Flowval.union b (Flowval.singleton ~f:1 ~b:1 ~delta:1) in
  Alcotest.(check int) "union card" 2 (Flowval.cardinal c);
  let s = Flowval.shift_branch c in
  Alcotest.(check int) "shifted" 3 (Flowval.find s ~f:3 ~b:3);
  Alcotest.(check int) "branch total" (Flowval.total_flow s ~metric:Metric.Branch_flow)
    ((3 * 3 * 3) + (1 * 2 * 1))

(* Property: for every executed path, DF <= actual freq <= PF; and the DP
   totals agree with per-path closed forms. *)
let prop_df_le_actual_le_pf =
  QCheck.Test.make ~name:"definite <= actual <= potential per path" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o = Interp.run p in
      let actual = Option.get o.Interp.path_profile in
      let ep = Option.get o.Interp.edge_profile in
      List.for_all
        (fun (r : Ppp_ir.Ir.routine) ->
          let view = Cfg_view.of_routine r in
          let ctx =
            Routine_ctx.make view (Ppp_profile.Edge_profile.routine ep r.Ppp_ir.Ir.name)
          in
          let t = Path_profile.routine actual r.Ppp_ir.Ir.name in
          Path_profile.fold t ~init:true ~f:(fun ok path n ->
              ok
              &&
              let dag_path = Routine_ctx.dag_path_of_cfg_path ctx path in
              let df = Flow_dp.definite_of_path ctx dag_path in
              let pf = Flow_dp.potential_of_path ctx dag_path in
              df <= n && n <= pf))
        p.Ppp_ir.Ir.routines)

let prop_dp_total_matches_enumeration =
  QCheck.Test.make
    ~name:"definite DP total equals sum over reconstructed paths" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o = Interp.run p in
      let ep = Option.get o.Interp.edge_profile in
      List.for_all
        (fun (r : Ppp_ir.Ir.routine) ->
          let view = Cfg_view.of_routine r in
          let ctx =
            Routine_ctx.make view (Ppp_profile.Edge_profile.routine ep r.Ppp_ir.Ir.name)
          in
          let dp = Flow_dp.compute ctx Flow_dp.Definite in
          let paths = Flow_dp.reconstruct dp ~cutoff:(-1) ~max_paths:50_000 in
          if List.length paths >= 50_000 then true (* capped; skip *)
          else begin
            let total_enum =
              List.fold_left (fun acc (_, f, b) -> acc + (f * b)) 0 paths
            in
            let closed =
              List.fold_left
                (fun acc (path, _, b) ->
                  acc + (Flow_dp.definite_of_path ctx path * b))
                0 paths
            in
            total_enum = Flow_dp.total dp ~metric:Metric.Branch_flow
            && closed = total_enum
          end)
        p.Ppp_ir.Ir.routines)

let suite =
  [
    Alcotest.test_case "fig8 totals" `Quick test_fig8_total_flow;
    Alcotest.test_case "fig8 definite per path" `Quick test_fig8_definite_per_path;
    Alcotest.test_case "fig8 definite DP total" `Quick test_fig8_definite_dp_total;
    Alcotest.test_case "fig8 reconstruction" `Quick test_fig8_definite_reconstruct;
    Alcotest.test_case "fig8 potential" `Quick test_fig8_potential;
    Alcotest.test_case "fig7 branch flow" `Quick test_branch_flow_invariance_fig7;
    Alcotest.test_case "accuracy extremes" `Quick test_accuracy_perfect_and_zero;
    Alcotest.test_case "coverage formula" `Quick test_coverage_formula;
    Alcotest.test_case "flowval ops" `Quick test_flowval_ops;
    QCheck_alcotest.to_alcotest prop_df_le_actual_le_pf;
    QCheck_alcotest.to_alcotest prop_dp_total_matches_enumeration;
  ]
