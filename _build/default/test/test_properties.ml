(* Cross-cutting property tests against brute force on randomly
   generated programs: dominators, potential-flow enumeration, flow-value
   algebra, and numbering/event-counting invariants checked directly on
   DAGs rather than through the interpreter. *)

module Graph = Ppp_cfg.Graph
module Order = Ppp_cfg.Order
module Dom = Ppp_cfg.Dom
module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile
module Metric = Ppp_profile.Metric
module Routine_ctx = Ppp_flow.Routine_ctx
module Flow_dp = Ppp_flow.Flow_dp
module Flowval = Ppp_flow.Flowval
module Numbering = Ppp_core.Numbering
module Event_count = Ppp_core.Event_count
module Cold = Ppp_core.Cold
module Interp = Ppp_interp.Interp

(* Contexts (with real edge profiles) for every routine of a generated,
   executed program. *)
let contexts_of_seed seed =
  let p = Ppp_workloads.Gen.program ~seed in
  let o = Interp.run p in
  let ep = Option.get o.Interp.edge_profile in
  List.map
    (fun (r : Ir.routine) ->
      let view = Cfg_view.of_routine r in
      Routine_ctx.make view (Edge_profile.routine ep r.Ir.name))
    p.Ir.routines

(* Brute-force dominators: u dominates v iff removing u makes v
   unreachable from the root. *)
let prop_dominators_brute_force =
  QCheck.Test.make ~name:"dominators match path-cut brute force" ~count:25
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      List.for_all
        (fun (r : Ir.routine) ->
          let view = Cfg_view.of_routine r in
          let g = Cfg_view.graph view in
          let n = Graph.num_nodes g in
          if n > 40 then true (* keep the O(n^3) check affordable *)
          else begin
            let dom = Dom.compute g ~root:0 in
            let reachable_avoiding cut target =
              let seen = Array.make n false in
              let rec go v =
                if (not seen.(v)) && v <> cut then begin
                  seen.(v) <- true;
                  List.iter go (Graph.succs g v)
                end
              in
              go 0;
              seen.(target)
            in
            let ok = ref true in
            for u = 0 to n - 1 do
              for v = 0 to n - 1 do
                if u <> v && v <> 0 then begin
                  let brute = not (reachable_avoiding u v) in
                  let fast = Dom.dominates dom u v in
                  if Order.(reachable g 0).(v) && brute <> fast then ok := false
                end
              done
            done;
            !ok
          end)
        p.Ir.routines)

(* potential_hot_paths agrees with the closed form: every returned path's
   potential equals min edge frequency (capped at F), its branch count is
   right, and the set contains every path above its implied threshold. *)
let prop_potential_hot_paths_sound =
  QCheck.Test.make ~name:"potential_hot_paths values are exact" ~count:30
    QCheck.(small_int)
    (fun seed ->
      List.for_all
        (fun ctx ->
          let paths = Flow_dp.potential_hot_paths ctx ~max_paths:2000 in
          List.for_all
            (fun (path, pf, b) ->
              pf = Flow_dp.potential_of_path ctx path
              && b
                 = List.fold_left
                     (fun acc e ->
                       if Routine_ctx.is_branch ctx e then acc + 1 else acc)
                     0 path)
            paths
          (* and the list has no duplicates *)
          && List.length paths
             = List.length (List.sort_uniq compare (List.map (fun (p, _, _) -> p) paths)))
        (contexts_of_seed seed))

let prop_potential_contains_executed_hot =
  QCheck.Test.make
    ~name:"potential_hot_paths includes every sufficiently hot executed path"
    ~count:25
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o = Interp.run p in
      let ep = Option.get o.Interp.edge_profile in
      let actual = Option.get o.Interp.path_profile in
      List.for_all
        (fun (r : Ir.routine) ->
          let view = Cfg_view.of_routine r in
          let ctx = Routine_ctx.make view (Edge_profile.routine ep r.Ir.name) in
          let listed = Flow_dp.potential_hot_paths ctx ~max_paths:2000 in
          let min_pf =
            List.fold_left (fun m (_, pf, _) -> min m pf) max_int listed
          in
          if List.length listed >= 2000 then true
          else
            Ppp_profile.Path_profile.fold
              (Ppp_profile.Path_profile.routine actual r.Ir.name)
              ~init:true
              ~f:(fun ok path n ->
                ok
                &&
                (* Any executed path with frequency above the listing's
                   bottleneck floor must be present (its potential >= its
                   actual frequency > floor). *)
                if n <= min_pf then true
                else
                  List.exists
                    (fun (dag, _, _) ->
                      Routine_ctx.cfg_path_of_dag_path ctx dag = path)
                    listed))
        p.Ir.routines)

(* Numbering + event counting invariants, checked on the DAG directly. *)
let all_paths ctx hot ~cap =
  let g = Routine_ctx.graph ctx in
  let exit = Routine_ctx.exit ctx in
  let count = ref 0 in
  let acc = ref [] in
  let exception Enough in
  let rec walk v path =
    if !count > cap then raise Enough;
    if v = exit then begin
      incr count;
      acc := List.rev path :: !acc
    end
    else
      List.iter
        (fun e -> if hot.(e) then walk (Graph.dst g e) (e :: path))
        (Graph.out_edges g v)
  in
  (try walk (Routine_ctx.entry ctx) [] with Enough -> ());
  if !count > cap then None else Some !acc

let prop_numbering_bijection_random =
  QCheck.Test.make ~name:"numbering is a bijection on random DAGs" ~count:30
    QCheck.(small_int)
    (fun seed ->
      List.for_all
        (fun ctx ->
          let hot = Cold.all_hot ctx in
          let nb = Numbering.compute ctx ~hot ~order:Numbering.Ball_larus in
          match all_paths ctx hot ~cap:3000 with
          | None -> true (* too many to enumerate *)
          | Some paths ->
              let nums = List.map (Numbering.number_of_path nb) paths in
              List.length paths = Numbering.num_paths nb
              && List.sort_uniq compare nums
                 = List.init (Numbering.num_paths nb) Fun.id)
        (contexts_of_seed seed))

let prop_event_counting_preserves_random =
  QCheck.Test.make ~name:"event counting preserves path sums on random DAGs"
    ~count:30
    QCheck.(small_int)
    (fun seed ->
      List.for_all
        (fun ctx ->
          let hot = Cold.all_hot ctx in
          let nb = Numbering.compute ctx ~hot ~order:Numbering.Ball_larus in
          let ev =
            Event_count.compute ctx ~hot ~numbering:nb
              ~weight:(fun e -> float_of_int (Routine_ctx.freq ctx e))
          in
          match all_paths ctx hot ~cap:2000 with
          | None -> true
          | Some paths ->
              List.for_all
                (fun path ->
                  Event_count.sum_along ev path = Numbering.number_of_path nb path)
                paths)
        (contexts_of_seed seed))

let prop_smart_numbering_bijection =
  QCheck.Test.make ~name:"smart numbering is also a bijection" ~count:30
    QCheck.(small_int)
    (fun seed ->
      List.for_all
        (fun ctx ->
          let hot = Cold.all_hot ctx in
          let nb =
            Numbering.compute ctx ~hot
              ~order:
                (Numbering.Freq_decreasing
                   (fun e -> float_of_int (Routine_ctx.freq ctx e)))
          in
          match all_paths ctx hot ~cap:2000 with
          | None -> true
          | Some paths ->
              List.sort_uniq compare (List.map (Numbering.number_of_path nb) paths)
              = List.init (Numbering.num_paths nb) Fun.id)
        (contexts_of_seed seed))

(* Flow-value algebra. *)
let flowval_gen =
  QCheck.Gen.(
    map
      (fun entries ->
        List.fold_left
          (fun acc (f, b, d) ->
            Flowval.add acc ~f:(1 + abs f) ~b:(abs b mod 5) ~delta:(1 + (abs d mod 3)))
          Flowval.empty entries)
      (small_list (triple small_int small_int small_int)))

let flowval_arb = QCheck.make flowval_gen

let prop_flowval_union_comm =
  QCheck.Test.make ~name:"flowval union is commutative" ~count:100
    (QCheck.pair flowval_arb flowval_arb)
    (fun (a, b) ->
      Flowval.entries_decreasing_flow (Flowval.union a b)
      = Flowval.entries_decreasing_flow (Flowval.union b a))

let prop_flowval_union_assoc =
  QCheck.Test.make ~name:"flowval union is associative" ~count:100
    (QCheck.triple flowval_arb flowval_arb flowval_arb)
    (fun (a, b, c) ->
      Flowval.entries_decreasing_flow (Flowval.union (Flowval.union a b) c)
      = Flowval.entries_decreasing_flow (Flowval.union a (Flowval.union b c)))

let prop_flowval_total_additive =
  QCheck.Test.make ~name:"flowval total is additive under union" ~count:100
    (QCheck.pair flowval_arb flowval_arb)
    (fun (a, b) ->
      Flowval.total_flow (Flowval.union a b) ~metric:Metric.Branch_flow
      = Flowval.total_flow a ~metric:Metric.Branch_flow
        + Flowval.total_flow b ~metric:Metric.Branch_flow)

let prop_flowval_shift =
  QCheck.Test.make ~name:"shift_branch preserves cardinal and unit flow" ~count:100
    flowval_arb
    (fun a ->
      let s = Flowval.shift_branch a in
      Flowval.total_flow s ~metric:Metric.Unit_flow
      = Flowval.total_flow a ~metric:Metric.Unit_flow
      && Flowval.cardinal s = Flowval.cardinal a)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_dominators_brute_force;
    QCheck_alcotest.to_alcotest prop_potential_hot_paths_sound;
    QCheck_alcotest.to_alcotest prop_potential_contains_executed_hot;
    QCheck_alcotest.to_alcotest prop_numbering_bijection_random;
    QCheck_alcotest.to_alcotest prop_event_counting_preserves_random;
    QCheck_alcotest.to_alcotest prop_smart_numbering_bijection;
    QCheck_alcotest.to_alcotest prop_flowval_union_comm;
    QCheck_alcotest.to_alcotest prop_flowval_union_assoc;
    QCheck_alcotest.to_alcotest prop_flowval_total_additive;
    QCheck_alcotest.to_alcotest prop_flowval_shift;
  ]
