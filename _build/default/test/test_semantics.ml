(* Edge-case semantics of the interpreter and the per-activation path
   register, including recursion under instrumentation. *)

module Ir = Ppp_ir.Ir
module Interp = Ppp_interp.Interp
module Instr_rt = Ppp_interp.Instr_rt
module Config = Ppp_core.Config
module Instrument = Ppp_core.Instrument
module Path_profile = Ppp_profile.Path_profile

let run_src src = Interp.run (Ppp_ir.Parse.program_of_string src)
let check_out name expected o = Alcotest.(check (list int)) name expected o.Interp.output

let test_shift_extremes () =
  let o =
    run_src
      {|routine main(0) regs 3 {
entry:
  r0 = 1
  r1 = r0 << 62
  out r1
  r1 = r0 << 63
  out r1
  r1 = r0 << 100
  out r1
  r2 = 0 - 8
  r1 = r2 >> 100
  out r1
  r1 = r2 >> 2
  out r1
  ret
}|}
  in
  (* << 63 and << 100 (masked to 36) are clamped/wrapped deterministically:
     count 63 -> 0 by the >62 rule; 100 land 63 = 36 -> 1 lsl 36. *)
  check_out "shifts" [ 1 lsl 62; 0; 1 lsl 36; -1; -2 ] o

let test_negative_div_rem () =
  let o =
    run_src
      {|routine main(0) regs 2 {
entry:
  r0 = 0 - 7
  r1 = r0 / 2
  out r1
  r1 = r0 % 2
  out r1
  r1 = 7 / -2
  out r1
  ret
}|}
  in
  (* OCaml semantics: truncation toward zero. *)
  check_out "neg div/rem" [ -3; -1; -3 ] o

let test_overflow_wraps () =
  let o =
    run_src
      {|routine main(0) regs 2 {
entry:
  r0 = 4611686018427387903
  r1 = r0 + 1
  out r1
  ret
}|}
  in
  check_out "wraparound" [ min_int ] o

(* A recursive routine under PP instrumentation: each activation has its
   own path register, so counts must be exact despite interleaved
   activations (the "call defers the current path" rule of Section 3.1). *)
let test_recursion_instrumented () =
  let src =
    {|routine main(0) regs 2 {
entry:
  r0 = call fib(12)
  out r0
  ret r0
}
routine fib(1) regs 4 {
entry:
  r1 = r0 <= 1
  br r1, base, rec
base:
  ret r0
rec:
  r2 = r0 - 1
  r2 = call fib(r2)
  r3 = r0 - 2
  r3 = call fib(r3)
  r2 = r2 + r3
  ret r2
}|}
  in
  let p = Ppp_ir.Parse.program_of_string src in
  let base = Interp.run p in
  check_out "fib(12)" [ 144 ] base;
  let ep = Option.get base.Interp.edge_profile in
  let inst = Instrument.instrument p ep Config.pp in
  let o =
    Interp.run
      ~config:{ Interp.default_config with instrumentation = Some inst.Instrument.rt }
      p
  in
  check_out "fib instrumented unchanged" [ 144 ] o;
  let table = Hashtbl.find (Option.get o.Interp.instr_state) "fib" in
  let plan = Hashtbl.find inst.Instrument.plans "fib" in
  let actual = Path_profile.routine (Option.get base.Interp.path_profile) "fib" in
  Path_profile.iter actual (fun path n ->
      match Instrument.path_status plan path with
      | `Instrumented k ->
          Alcotest.(check int) "recursive activation counts exact" n
            (Instr_rt.Table.get table k)
      | `Uninstrumented -> Alcotest.fail "PP left a path uninstrumented")

let test_out_ordering_across_calls () =
  let o =
    run_src
      {|routine main(0) regs 1 {
entry:
  out 1
  call f()
  out 3
  ret
}
routine f(0) regs 1 { entry: out 2
  ret }|}
  in
  check_out "interleaved output" [ 1; 2; 3 ] o

let test_mutual_recursion () =
  let o =
    run_src
      {|routine main(0) regs 1 {
entry:
  r0 = call even(10)
  out r0
  ret
}
routine even(1) regs 3 {
entry:
  r1 = r0 == 0
  br r1, yes, no
yes:
  ret 1
no:
  r2 = r0 - 1
  r2 = call odd(r2)
  ret r2
}
routine odd(1) regs 3 {
entry:
  r1 = r0 == 0
  br r1, yes, no
yes:
  ret 0
no:
  r2 = r0 - 1
  r2 = call even(r2)
  ret r2
}|}
  in
  check_out "mutual recursion" [ 1 ] o

let test_zero_iteration_loop_path () =
  (* A loop that never runs still produces a well-formed path through the
     header's exit side. *)
  let o =
    run_src
      {|routine main(0) regs 2 {
entry:
  r0 = 0
  jump head
head:
  r1 = r0 < 0
  br r1, body, done
body:
  r0 = r0 + 1
  jump head
done:
  out r0
  ret
}|}
  in
  check_out "zero-trip loop" [ 0 ] o;
  Alcotest.(check int) "exactly one path" 1 o.Interp.dyn_paths

let test_deep_recursion_stack () =
  (* The interpreter's frame stack is heap-allocated; a deep recursion
     must not overflow the OCaml stack. *)
  let o =
    run_src
      {|routine main(0) regs 1 {
entry:
  r0 = call down(30000)
  out r0
  ret
}
routine down(1) regs 2 {
entry:
  r1 = r0 <= 0
  br r1, base, rec
base:
  ret 0
rec:
  r1 = r0 - 1
  r1 = call down(r1)
  ret r1
}|}
  in
  check_out "deep recursion" [ 0 ] o

let prop_instrumentation_never_changes_semantics =
  QCheck.Test.make
    ~name:"instrumented runs preserve output and return value (all configs)"
    ~count:30
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let base = Interp.run p in
      let ep = Option.get base.Interp.edge_profile in
      List.for_all
        (fun config ->
          let inst = Instrument.instrument p ep config in
          let o =
            Interp.run
              ~config:
                { Interp.default_config with instrumentation = Some inst.Instrument.rt }
              p
          in
          o.Interp.output = base.Interp.output
          && o.Interp.return_value = base.Interp.return_value
          && o.Interp.base_cost = base.Interp.base_cost)
        [ Config.pp; Config.tpp; Config.tpp_original; Config.ppp ])

let prop_instr_cost_additive =
  QCheck.Test.make ~name:"base cost is independent of instrumentation" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let base = Interp.run p in
      let ep = Option.get base.Interp.edge_profile in
      let inst = Instrument.instrument p ep Config.ppp in
      let o =
        Interp.run
          ~config:
            { Interp.default_config with instrumentation = Some inst.Instrument.rt }
          p
      in
      o.Interp.base_cost = base.Interp.base_cost
      && o.Interp.instr_cost >= 0)

let suite =
  [
    Alcotest.test_case "shift extremes" `Quick test_shift_extremes;
    Alcotest.test_case "negative div/rem" `Quick test_negative_div_rem;
    Alcotest.test_case "overflow wraps" `Quick test_overflow_wraps;
    Alcotest.test_case "recursion instrumented" `Quick test_recursion_instrumented;
    Alcotest.test_case "output ordering" `Quick test_out_ordering_across_calls;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
    Alcotest.test_case "zero-trip loop" `Quick test_zero_iteration_loop_path;
    Alcotest.test_case "deep recursion" `Quick test_deep_recursion_stack;
    QCheck_alcotest.to_alcotest prop_instrumentation_never_changes_semantics;
    QCheck_alcotest.to_alcotest prop_instr_cost_additive;
  ]
