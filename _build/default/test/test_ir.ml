module Ir = Ppp_ir.Ir
module B = Ppp_ir.Builder
module Check = Ppp_ir.Check
module Parse = Ppp_ir.Parse
module Pp_ir = Ppp_ir.Pp_ir

let check_bool = Alcotest.(check bool)

let simple_routine () =
  let b = B.create ~name:"f" ~nparams:1 in
  let r = B.reg b in
  B.bin b r Ir.Add (B.param b 0) (Ir.Imm 1);
  B.ret b (Some (Ir.Reg r));
  B.finish b

let test_builder_simple () =
  let r = simple_routine () in
  Alcotest.(check int) "one block" 1 (Array.length r.Ir.blocks);
  Alcotest.(check int) "nparams" 1 r.Ir.nparams;
  Alcotest.(check string) "name" "f" r.Ir.name

let test_builder_dead_block_pruned () =
  let b = B.create ~name:"g" ~nparams:0 in
  B.if_ b (Ir.Imm 1)
    ~then_:(fun () -> B.ret b (Some (Ir.Imm 1)))
    ~else_:(fun () -> B.ret b (Some (Ir.Imm 2)));
  (* Code here is dead (both arms returned); finish must prune it. *)
  B.out b (Ir.Imm 99);
  let r = B.finish b in
  let p = B.program ~main:"g" [ r ] in
  check_bool "well-formed after prune" true (Check.program p = Ok ());
  let has_dead_out =
    Array.exists
      (fun (blk : Ir.block) ->
        Array.exists (function Ir.Out _ -> true | _ -> false) blk.Ir.instrs)
      r.Ir.blocks
  in
  check_bool "dead out pruned" false has_dead_out

let test_check_rejects () =
  let bad_reg =
    {
      Ir.name = "bad";
      nparams = 0;
      nregs = 1;
      blocks =
        [| { Ir.label = "entry"; instrs = [| Ir.Mov (5, Ir.Imm 0) |]; term = Ir.Return None } |];
    }
  in
  let p = { Ir.arrays = []; routines = [ bad_reg ]; main = "bad" } in
  check_bool "register range" true (Result.is_error (Check.program p));
  let bad_branch =
    {
      Ir.name = "bad2";
      nparams = 0;
      nregs = 1;
      blocks =
        [|
          { Ir.label = "entry"; instrs = [||]; term = Ir.Branch (Ir.Reg 0, 1, 1) };
          { Ir.label = "next"; instrs = [||]; term = Ir.Return None };
        |];
    }
  in
  let p2 = { Ir.arrays = []; routines = [ bad_branch ]; main = "bad2" } in
  check_bool "same-target branch" true (Result.is_error (Check.program p2));
  let infinite =
    {
      Ir.name = "spin";
      nparams = 0;
      nregs = 1;
      blocks = [| { Ir.label = "entry"; instrs = [||]; term = Ir.Jump 0 } |];
    }
  in
  let p3 = { Ir.arrays = []; routines = [ infinite ]; main = "spin" } in
  check_bool "no return" true (Result.is_error (Check.program p3));
  let call_arity =
    {
      Ir.name = "caller";
      nparams = 0;
      nregs = 1;
      blocks =
        [|
          {
            Ir.label = "entry";
            instrs = [| Ir.Call (None, "f", []) |];
            term = Ir.Return None;
          };
        |];
    }
  in
  let p4 =
    { Ir.arrays = []; routines = [ call_arity; simple_routine () ]; main = "caller" }
  in
  check_bool "call arity" true (Result.is_error (Check.program p4))

let test_check_missing_main () =
  let p = { Ir.arrays = []; routines = [ simple_routine () ]; main = "main" } in
  check_bool "missing main" true (Result.is_error (Check.program p))

let test_parse_roundtrip_handwritten () =
  let src =
    {|
array mem 64
main main

routine main(0) regs 3 {
entry:
  r0 = 0
  r1 = call add1(r0)
  mem[r0] = r1
  r2 = mem[r0]
  out r2
  br r2, done, again
again:
  r0 = r0 + 1
  r2 = r0 < 10
  br r2, again2, done
again2:
  jump entry
done:
  ret r1
}

routine add1(1) regs 2 {
entry:
  r1 = r0 + 1
  ret r1
}
|}
  in
  let p = Parse.program_of_string src in
  let p2 = Parse.program_of_string (Pp_ir.to_string p) in
  check_bool "roundtrip equal" true (p = p2)

let test_parse_errors () =
  let expect_error src =
    match Parse.program_of_string src with
    | exception Parse.Error _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected a parse error"
  in
  expect_error "routine f(0) regs 1 { entry: jump nowhere }";
  expect_error "routine f(0) regs 1 { entry: r0 = }";
  expect_error "bogus token";
  expect_error "routine f(0) regs 1 { entry: ret }" (* missing main *)

let test_parse_negative_imm () =
  let p =
    Parse.program_of_string
      "routine main(0) regs 1 { entry: r0 = -5 \n out r0 \n ret r0 }"
  in
  let o = Ppp_interp.Interp.run p in
  Alcotest.(check (list int)) "negative literal" [ -5 ] o.Ppp_interp.Interp.output

let prop_roundtrip =
  QCheck.Test.make ~name:"printer/parser roundtrip on random programs" ~count:60
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let p2 = Parse.program_of_string (Pp_ir.to_string p) in
      p = p2)

let prop_generated_well_formed =
  QCheck.Test.make ~name:"generated programs are well-formed" ~count:60
    QCheck.(small_int)
    (fun seed -> Check.program (Ppp_workloads.Gen.program ~seed) = Ok ())

let suite =
  [
    Alcotest.test_case "builder simple" `Quick test_builder_simple;
    Alcotest.test_case "dead block pruning" `Quick test_builder_dead_block_pruned;
    Alcotest.test_case "check rejections" `Quick test_check_rejects;
    Alcotest.test_case "check missing main" `Quick test_check_missing_main;
    Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip_handwritten;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "negative immediates" `Quick test_parse_negative_imm;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_generated_well_formed;
  ]
