module Ir = Ppp_ir.Ir
module Interp = Ppp_interp.Interp
module Superblock = Ppp_opt.Superblock
module Path_profile = Ppp_profile.Path_profile
module H = Ppp_harness.Pipeline

let check_bool = Alcotest.(check bool)

(* The hottest traced path of each routine of a program. *)
let hottest_paths p =
  let o = Interp.run p in
  let profile = Option.get o.Interp.path_profile in
  let acc = ref [] in
  Path_profile.iter_routines profile (fun name t ->
      let best = ref None in
      Path_profile.iter t (fun path n ->
          match !best with
          | Some (_, n') when n' >= n -> ()
          | _ -> best := Some (path, n));
      match !best with Some (path, _) -> acc := (name, path) :: !acc | None -> ());
  (o, !acc)

let test_superblock_preserves_and_speeds () =
  let p = (Ppp_workloads.Spec.find "mcf").Ppp_workloads.Spec.build ~scale:1 in
  let o, hot = hottest_paths p in
  let p', stats = Superblock.form p ~hot_paths:hot in
  check_bool "did something" true
    (stats.Superblock.jumps_merged > 0 || stats.Superblock.blocks_duplicated > 0);
  let o' = Interp.run p' in
  check_bool "output preserved" true (o.Interp.output = o'.Interp.output);
  check_bool "not slower" true (o'.Interp.base_cost <= o.Interp.base_cost)

let test_superblock_empty_paths () =
  let p = (Ppp_workloads.Spec.find "gap").Ppp_workloads.Spec.build ~scale:1 in
  let p', stats = Superblock.form p ~hot_paths:[] in
  check_bool "no-op without paths" true (stats.Superblock.routines_optimized = 0);
  check_bool "program unchanged" true (p' = p)

let prop_superblock_preserves_output =
  QCheck.Test.make ~name:"superblock formation preserves output" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o, hot = hottest_paths p in
      let p', _ = Superblock.form p ~hot_paths:hot in
      let o' = Interp.run p' in
      o.Interp.output = o'.Interp.output
      && o.Interp.return_value = o'.Interp.return_value)

let prop_superblock_never_slower =
  QCheck.Test.make ~name:"superblock formation never increases cost" ~count:40
    QCheck.(small_int)
    (fun seed ->
      let p = Ppp_workloads.Gen.program ~seed in
      let o, hot = hottest_paths p in
      let p', _ = Superblock.form p ~hot_paths:hot in
      (Interp.run p').Interp.base_cost <= o.Interp.base_cost)

(* Full dynamic-optimizer integration: PPP-measured hot paths drive the
   superblock pass (the staged_optimizer example as a test). *)
let test_staged_loop () =
  let p = (Ppp_workloads.Spec.find "bzip2").Ppp_workloads.Spec.build ~scale:1 in
  let prep = H.prepare ~name:"bzip2" p in
  let p1 = prep.H.optimized in
  let ep = Option.get prep.H.base_outcome.Interp.edge_profile in
  let inst = Ppp_core.Instrument.instrument p1 ep Ppp_core.Config.ppp in
  let o2 =
    Interp.run
      ~config:
        { Interp.default_config with instrumentation = Some inst.Ppp_core.Instrument.rt }
      p1
  in
  let tables = Option.get o2.Interp.instr_state in
  let hot = ref [] in
  Hashtbl.iter
    (fun name table ->
      let plan = Hashtbl.find inst.Ppp_core.Instrument.plans name in
      let best = ref None in
      Ppp_interp.Instr_rt.Table.iter_nonzero table (fun k c ->
          match !best with
          | Some (_, c') when c' >= c -> ()
          | _ -> (
              match Ppp_core.Instrument.decoded_path plan k with
              | Some path -> best := Some (path, c)
              | None -> ()));
      match !best with Some (path, _) -> hot := (name, path) :: !hot | None -> ())
    tables;
  let p3, _ = Superblock.form p1 ~hot_paths:!hot in
  let o3 = Interp.run p3 in
  check_bool "staged loop output preserved" true
    (o3.Interp.output = prep.H.base_outcome.Interp.output);
  check_bool "staged loop speeds up" true
    (o3.Interp.base_cost < prep.H.base_outcome.Interp.base_cost)

let suite =
  [
    Alcotest.test_case "preserves and speeds" `Slow test_superblock_preserves_and_speeds;
    Alcotest.test_case "empty hot paths" `Quick test_superblock_empty_paths;
    Alcotest.test_case "staged optimizer loop" `Slow test_staged_loop;
    QCheck_alcotest.to_alcotest prop_superblock_preserves_output;
    QCheck_alcotest.to_alcotest prop_superblock_never_slower;
  ]
