(* Shared fixtures: the paper's worked example CFGs, encoded as IR
   routines, with the edge profiles the figures give. *)

module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Edge_profile = Ppp_profile.Edge_profile
module Graph = Ppp_cfg.Graph

let block label instrs term = { Ir.label; instrs = Array.of_list instrs; term }

(* Figure 8: a diamond-of-diamonds.
     A -> B(50) | C(30); B -> D; C -> D; D -> E(60) | F(20); E -> G; F -> G.
   Edge ids in Cfg_view creation order:
     e0 AB, e1 AC, e2 BD, e3 CD, e4 DE, e5 DF, e6 EG, e7 FG, e8 G->exit. *)
let fig8_routine =
  {
    Ir.name = "fig8";
    nparams = 0;
    nregs = 1;
    blocks =
      [|
        block "A" [] (Ir.Branch (Ir.Reg 0, 1, 2));
        block "B" [] (Ir.Jump 3);
        block "C" [] (Ir.Jump 3);
        block "D" [] (Ir.Branch (Ir.Reg 0, 4, 5));
        block "E" [] (Ir.Jump 6);
        block "F" [] (Ir.Jump 6);
        block "G" [] (Ir.Return None);
      |];
  }

let fig8_profile () =
  let profile = Edge_profile.create ~nedges:9 in
  List.iteri
    (fun e f -> Edge_profile.add profile e f)
    [ 50; 30; 50; 30; 60; 20; 60; 20; 80 ];
  profile

(* Figure 1(a): the paper's running example.
     A -> B | C; B -> D; C -> D; D -> E | F; E -> F; F -> A (back edge) | exit.
   With the back edge broken, the DAG has 8 entry-to-exit paths.
   Edge ids: e0 AB, e1 AC, e2 BD, e3 CD, e4 DE, e5 DF, e6 EF,
             e7 FA(back), e8 F->exit(return). *)
let fig1_routine =
  {
    Ir.name = "fig1";
    nparams = 0;
    nregs = 1;
    blocks =
      [|
        block "A" [] (Ir.Branch (Ir.Reg 0, 1, 2));
        block "B" [] (Ir.Jump 3);
        block "C" [] (Ir.Jump 3);
        block "D" [] (Ir.Branch (Ir.Reg 0, 4, 5));
        block "E" [] (Ir.Jump 5);
        block "F" [] (Ir.Branch (Ir.Reg 0, 0, 6));
        block "G" [] (Ir.Return None);
      |];
  }

let view r = Cfg_view.of_routine r

(* Uniform edge profile: every edge has the given frequency. *)
let uniform_profile view f =
  let nedges = Graph.num_edges (Cfg_view.graph view) in
  let profile = Edge_profile.create ~nedges in
  for e = 0 to nedges - 1 do
    Edge_profile.add profile e f
  done;
  profile
