(* Cold paths, poisoning and pushing: Figures 3 and 5.

   A routine with a cold edge in the middle of hot control flow shows:
   - how TPP and PPP renumber only the hot paths,
   - check poisoning (original TPP) versus free poisoning (Section 4.6),
   - how PPP pushes instrumentation past the cold edge (Section 4.4) and
     may overcount a hot path when the cold path runs.

   Run with: dune exec examples/cold_paths.exe *)

module Ir = Ppp_ir.Ir
module B = Ppp_ir.Builder
module Interp = Ppp_interp.Interp
module Config = Ppp_core.Config
module Instrument = Ppp_core.Instrument
module Instr_rt = Ppp_interp.Instr_rt
module Cfg_view = Ppp_ir.Cfg_view

(* A loop whose body has a hot diamond followed by a rarely-taken edge
   (like Figure 5's M -> O). *)
let program =
  let b = B.create ~name:"main" ~nparams:0 in
  let i = B.reg b in
  let acc = B.reg b in
  B.mov b acc (Ir.Imm 0);
  B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm 1000) (fun () ->
      (* Two correlated diamonds: both branch on the same parity, so an
         edge profile sees two 50/50 branches but only two of the four
         combinations ever run - exactly what path profiling is for
         (and what keeps PPP's low-coverage skip from firing here). *)
      let even = B.bin_ b Ir.And (Ir.Reg i) (Ir.Imm 1) in
      let is_even = B.bin_ b Ir.Eq even (Ir.Imm 0) in
      B.if_ b is_even
        ~then_:(fun () -> B.bin b acc Ir.Add (Ir.Reg acc) (Ir.Imm 1))
        ~else_:(fun () -> B.bin b acc Ir.Add (Ir.Reg acc) (Ir.Imm 2));
      let is_even2 = B.bin_ b Ir.Eq even (Ir.Imm 0) in
      B.if_ b is_even2
        ~then_:(fun () -> B.bin b acc Ir.Add (Ir.Reg acc) (Ir.Imm 3))
        ~else_:(fun () -> B.bin b acc Ir.Add (Ir.Reg acc) (Ir.Imm 5));
      (* The cold edge: taken once in 500 iterations. *)
      let rare = B.bin_ b Ir.Eq (B.bin_ b Ir.Rem (Ir.Reg i) (Ir.Imm 500)) (Ir.Imm 499) in
      B.when_ b rare (fun () -> B.bin b acc Ir.Mul (Ir.Reg acc) (Ir.Imm 2)));
  B.out b (Ir.Reg acc);
  B.ret b (Some (Ir.Reg acc));
  B.program ~main:"main" [ B.finish b ]

let show config base_profile actual =
  let inst = Instrument.instrument program base_profile config in
  let o =
    Interp.run
      ~config:{ Interp.default_config with instrumentation = Some inst.Instrument.rt }
      program
  in
  let plan = Hashtbl.find inst.Instrument.plans "main" in
  let view = Cfg_view.of_routine (Ir.routine program "main") in
  Format.printf "--- %-10s overhead %5.2f%%  static actions %d@." config.Config.name
    (100.0 *. Interp.overhead o)
    Ppp_core.Place.(
      match plan.Instrument.decision with
      | Instrument.Instrumented { place; _ } -> place.num_actions
      | Instrument.Uninstrumented _ -> 0);
  match Hashtbl.find_opt (Option.get o.Interp.instr_state) "main" with
  | None -> Format.printf "    (routine not instrumented)@."
  | Some table ->
      Instr_rt.Table.iter_nonzero table (fun k c ->
          match Instrument.decoded_path plan k with
          | Some path ->
              let truth = Ppp_profile.Path_profile.freq actual path in
              Format.printf "    count[%d] = %4d (truth %4d%s)  %a@." k c truth
                (if c > truth then ", overcounted" else "")
                (Ppp_profile.Path.pp view) path
          | None -> Format.printf "    count[%d] = %4d (cold-region slot)@." k c);
      if Instr_rt.Table.cold table > 0 then
        Format.printf "    cold counter (poison checks fired): %d@."
          (Instr_rt.Table.cold table)

let () =
  let base = Interp.run program in
  let ep = Option.get base.Interp.edge_profile in
  let actual =
    Ppp_profile.Path_profile.routine (Option.get base.Interp.path_profile) "main"
  in
  Format.printf
    "The loop body has a hot diamond and a 1-in-500 cold edge (Figure 5's shape).@.@.";
  (* PP instruments all paths. *)
  show Config.pp ep actual;
  Format.printf "@.";
  (* Original TPP: cold removal with a poison test at every path end. *)
  show Config.tpp_original ep actual;
  Format.printf "@.";
  (* TPP as the paper evaluates it / PPP: free poisoning; PPP also pushes
     past the cold edge and may overcount (Section 4.4). *)
  show Config.tpp ep actual;
  Format.printf "@.";
  show Config.ppp ep actual;
  Format.printf
    "@.PP counts every path; TPP-with-checks pays a test per path end; free@.\
     poisoning (Section 4.6) moves cold paths into the table slots at or past N@.\
     with no test; and PPP's pushing past the cold edge (Section 4.4) can@.\
     overcount a hot path slightly when the cold path actually runs - the@.\
     coverage metric charges that back as a penalty (Section 6.2).@."
