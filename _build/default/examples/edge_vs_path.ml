(* Edge profiles versus path profiles: Figures 7 and 8.

   First the Figure 8 analysis — what an edge profile can and cannot say
   about paths (definite vs potential flow) — then the Figure 7 point:
   the branch-flow metric is invariant under inlining while unit flow is
   not.

   Run with: dune exec examples/edge_vs_path.exe *)

module Ir = Ppp_ir.Ir
module Cfg_view = Ppp_ir.Cfg_view
module Graph = Ppp_cfg.Graph
module Edge_profile = Ppp_profile.Edge_profile
module Metric = Ppp_profile.Metric
module Routine_ctx = Ppp_flow.Routine_ctx
module Flow_dp = Ppp_flow.Flow_dp

(* Figure 8's routine: two diamonds in sequence, A..G. *)
let block label instrs term = { Ir.label; instrs = Array.of_list instrs; term }

let fig8 =
  {
    Ir.name = "fig8";
    nparams = 0;
    nregs = 1;
    blocks =
      [|
        block "A" [] (Ir.Branch (Ir.Reg 0, 1, 2));
        block "B" [] (Ir.Jump 3);
        block "C" [] (Ir.Jump 3);
        block "D" [] (Ir.Branch (Ir.Reg 0, 4, 5));
        block "E" [] (Ir.Jump 6);
        block "F" [] (Ir.Jump 6);
        block "G" [] (Ir.Return None);
      |];
  }

let () =
  let view = Cfg_view.of_routine fig8 in
  (* The edge profile of Figure 8: AB=50 AC=30 DE=60 DF=20. *)
  let profile = Edge_profile.create ~nedges:9 in
  List.iteri (fun e f -> Edge_profile.add profile e f) [ 50; 30; 50; 30; 60; 20; 60; 20; 80 ];
  let ctx = Routine_ctx.make view profile in
  Format.printf "=== Figure 8: what does the edge profile guarantee? ===@.";
  Format.printf "total branch flow: %d (sum of branch edge frequencies)@.@."
    (Graph.fold_edges (Routine_ctx.graph ctx) ~init:0 ~f:(fun acc e ->
         if Routine_ctx.is_branch ctx e then acc + Routine_ctx.freq ctx e else acc));
  let dp_def = Flow_dp.compute ctx Flow_dp.Definite in
  let dp_pot = Flow_dp.compute ctx Flow_dp.Potential in
  Format.printf "%-12s %10s %10s@." "path" "definite" "potential";
  List.iter
    (fun (dag_path, _, b) ->
      let path = Routine_ctx.cfg_path_of_dag_path ctx dag_path in
      let back = Routine_ctx.dag_path_of_cfg_path ctx path in
      let df = Flow_dp.definite_of_path ctx back * b in
      let pf = Flow_dp.potential_of_path ctx back * b in
      Format.printf "%-12s %10d %10d@."
        (Format.asprintf "%a" (Ppp_profile.Path.pp view) path)
        df pf)
    (Flow_dp.potential_hot_paths ctx ~max_paths:16);
  Format.printf "@.definite total = %d of 160 actual: the edge profile attributes only %.0f%%@."
    (Flow_dp.total dp_def ~metric:Metric.Branch_flow)
    (100.0 *. float_of_int (Flow_dp.total dp_def ~metric:Metric.Branch_flow) /. 160.0);
  Format.printf "potential total = %d: many path profiles are consistent with these edges@.@."
    (Flow_dp.total dp_pot ~metric:Metric.Branch_flow);

  (* Figure 7: inlining and the flow metrics. *)
  Format.printf "=== Figure 7: branch flow is invariant under inlining ===@.";
  let outlined =
    Ppp_ir.Parse.program_of_string
      {|routine main(0) regs 3 {
entry:
  r2 = 0
  jump head
head:
  r1 = r2 < 10
  br r1, body, done
body:
  r0 = call y(r2)
  r2 = r2 + 1
  jump head
done:
  ret
}
routine y(1) regs 2 {
entry:
  r1 = r0 & 1
  br r1, odd, even
odd:
  ret 1
even:
  ret 0
}|}
  in
  let report label p =
    let o = Ppp_interp.Interp.run p in
    let profile = Option.get o.Ppp_interp.Interp.path_profile in
    let views name = Cfg_view.of_routine (Ir.routine p name) in
    Format.printf "%-18s unit flow = %3d   branch flow = %3d@." label
      (Ppp_profile.Path_profile.program_flow profile ~views Metric.Unit_flow)
      (Ppp_profile.Path_profile.program_flow profile ~views Metric.Branch_flow)
  in
  report "before inlining:" outlined;
  let o = Ppp_interp.Interp.run outlined in
  let ep = Option.get o.Ppp_interp.Interp.edge_profile in
  let inlined, _ =
    Ppp_opt.Inline.run ~code_bloat:1.0 ~min_site_freq:1 outlined
      ~block_freq:(fun ~routine ~block ->
        let r = Ir.routine outlined routine in
        let view = Cfg_view.of_routine r in
        let g = Cfg_view.graph view in
        let prof = Edge_profile.routine ep routine in
        let inflow =
          List.fold_left
            (fun a e -> a + Edge_profile.freq prof e)
            0 (Graph.in_edges g block)
        in
        if block = 0 then inflow + Edge_profile.entry_count ep outlined routine
        else inflow)
  in
  report "after inlining:" inlined;
  Format.printf
    "@.unit flow shrinks when calls disappear (the callee's paths merge into the@.\
     caller's), but branch flow counts the same branch decisions either way -@.\
     which is why the paper evaluates with branch flow (Section 5.1).@."
