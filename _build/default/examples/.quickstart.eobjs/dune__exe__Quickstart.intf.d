examples/quickstart.mli:
