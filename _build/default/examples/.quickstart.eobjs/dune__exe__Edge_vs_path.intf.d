examples/edge_vs_path.mli:
