examples/quickstart.ml: Format Hashtbl List Option Ppp_cfg Ppp_core Ppp_flow Ppp_interp Ppp_ir Ppp_profile String
