examples/staged_optimizer.ml: Array Format Hashtbl List Option Ppp_core Ppp_harness Ppp_interp Ppp_ir Ppp_opt Ppp_workloads Sys
