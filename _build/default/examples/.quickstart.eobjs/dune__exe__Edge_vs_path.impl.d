examples/edge_vs_path.ml: Array Format List Option Ppp_cfg Ppp_flow Ppp_interp Ppp_ir Ppp_opt Ppp_profile
