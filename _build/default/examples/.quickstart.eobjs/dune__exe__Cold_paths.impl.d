examples/cold_paths.ml: Format Hashtbl Option Ppp_core Ppp_interp Ppp_ir Ppp_profile
