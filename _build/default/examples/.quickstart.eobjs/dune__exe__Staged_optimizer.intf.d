examples/staged_optimizer.mli:
