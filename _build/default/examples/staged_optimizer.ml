(* A complete staged dynamic optimizer, as the paper's introduction
   envisions:

     stage 0  run the program, collecting a (cheap) edge profile
     stage 1  edge-profile-guided inlining and unrolling (Section 7.3)
     stage 2  PPP path-profiling instrumentation (Section 4), run again
     stage 3  use the measured hot paths to form superblocks, run again

   The point of the paper is that stage 2 is cheap enough (about 5%
   overhead) to run continuously; this example shows the whole loop,
   including what the path profile buys in stage 3.

   Run with: dune exec examples/staged_optimizer.exe [bench] *)

module Ir = Ppp_ir.Ir
module Interp = Ppp_interp.Interp
module Config = Ppp_core.Config
module Instrument = Ppp_core.Instrument
module Instr_rt = Ppp_interp.Instr_rt
module H = Ppp_harness.Pipeline

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "bzip2" in
  let p0 = (Ppp_workloads.Spec.find bench).Ppp_workloads.Spec.build ~scale:1 in
  Format.printf "workload: %s (%d IR statements)@.@." bench (Ir.program_size p0);

  (* Stages 0-1: profile, inline, unroll. *)
  let prep = H.prepare ~name:bench p0 in
  let p1 = prep.H.optimized in
  Format.printf
    "stage 1: inlined %.0f%% of dynamic calls, unrolled %d loops (avg factor \
     %.2f) -> speedup %.3fx@."
    (100.0 *. Ppp_opt.Inline.pct_dynamic_inlined prep.H.inline_stats)
    prep.H.unroll_stats.Ppp_opt.Unroll.loops_unrolled
    prep.H.unroll_stats.Ppp_opt.Unroll.avg_dynamic_factor
    (float_of_int prep.H.orig_outcome.Interp.base_cost
    /. float_of_int prep.H.base_outcome.Interp.base_cost);

  (* Stage 2: PPP instrumentation. *)
  let ep = Option.get prep.H.base_outcome.Interp.edge_profile in
  let inst = Instrument.instrument p1 ep Config.ppp in
  let o2 =
    Interp.run
      ~config:{ Interp.default_config with instrumentation = Some inst.Instrument.rt }
      p1
  in
  Format.printf "stage 2: PPP path profiling at %.1f%% runtime overhead@."
    (100.0 *. Interp.overhead o2);

  (* Decode the hottest measured path per routine. *)
  let tables = Option.get o2.Interp.instr_state in
  let hottest = Hashtbl.create 7 in
  Hashtbl.iter
    (fun name table ->
      let plan = Hashtbl.find inst.Instrument.plans name in
      let best = ref None in
      Instr_rt.Table.iter_nonzero table (fun k c ->
          match !best with
          | Some (_, c') when c' >= c -> ()
          | _ -> (
              match Instrument.decoded_path plan k with
              | Some path -> best := Some (path, c)
              | None -> ()));
      match !best with
      | Some (path, c) ->
          Hashtbl.replace hottest name path;
          Format.printf "         %s: hottest measured path ran %d times (%d blocks)@."
            name c (List.length path)
      | None -> ())
    tables;

  (* Stage 3: superblock formation along the measured hot paths. *)
  let hot_paths = Hashtbl.fold (fun n p acc -> (n, p) :: acc) hottest [] in
  let p3, stats = Ppp_opt.Superblock.form p1 ~hot_paths in
  let o3 = Interp.run p3 in
  Format.printf
    "stage 3: superblocks in %d routines (%d blocks tail-duplicated, %d jumps \
     merged)@."
    stats.Ppp_opt.Superblock.routines_optimized
    stats.Ppp_opt.Superblock.blocks_duplicated
    stats.Ppp_opt.Superblock.jumps_merged;
  Format.printf "         cost %d -> %d cycles (%.2f%% faster), output unchanged: %b@."
    prep.H.base_outcome.Interp.base_cost o3.Interp.base_cost
    (100.0
    *. (1.0
       -. float_of_int o3.Interp.base_cost
          /. float_of_int prep.H.base_outcome.Interp.base_cost))
    (o3.Interp.output = prep.H.base_outcome.Interp.output)
