(** Path numbering (Figure 2, and Figure 6's smart variant).

    On the hot sub-DAG, assigns [Val] to each hot edge so that the edge
    values along each entry-to-exit path sum to a unique number in
    [\[0, N-1\]], where [N] is the number of hot paths. Ball–Larus order
    numbers a block's outgoing edges by increasing [NumPaths] of the
    target; smart numbering (PPP, Section 4.5) numbers them by decreasing
    execution frequency, so the hottest outgoing edge gets value 0. *)

type order =
  | Ball_larus
  | Freq_decreasing of (Ppp_cfg.Graph.edge -> float)

type t

val compute : Ppp_flow.Routine_ctx.t -> hot:bool array -> order:order -> t
(** [hot] is indexed by DAG edge. Nodes with no hot path to the exit must
    have had their edges pruned (see {!Cold.close_hot}); their [NumPaths]
    is 0. *)

val num_paths : t -> int
(** [N]: NumPaths at the entry node. *)

val num_paths_at : t -> Ppp_cfg.Graph.node -> int
val value : t -> Ppp_cfg.Graph.edge -> int
(** [Val] of a hot DAG edge (0 for cold edges). *)

val prefix_count : t -> Ppp_cfg.Graph.node -> int
(** Number of hot entry-to-node path prefixes; [paths_through e =
    prefix_count (src e) * num_paths_at (dst e)], and an edge with
    exactly one path through it is a defining edge (Section 3.2). *)

val paths_through : t -> Ppp_cfg.Graph.edge -> int

val decode : t -> int -> Ppp_cfg.Graph.edge list
(** The DAG path with the given number.
    @raise Invalid_argument if out of [\[0, N-1\]]. *)

val number_of_path : t -> Ppp_cfg.Graph.edge list -> int
(** Sum of [Val] along a hot DAG path (the path's number). *)
