module Graph = Ppp_cfg.Graph
module Dag = Ppp_cfg.Dag
module Cfg_view = Ppp_ir.Cfg_view
module Routine_ctx = Ppp_flow.Routine_ctx
module Instr_rt = Ppp_interp.Instr_rt

type input = {
  ctx : Routine_ctx.t;
  hot : bool array;
  numbering : Numbering.t;
  ev : Event_count.t;
  push_past_cold : bool;
  elide_obvious : bool;
  poisoning : Config.poisoning;
  use_hash : bool;
}

type result = {
  rt : Instr_rt.routine_instr;
  elided : (int * Graph.edge) list;
  table_size : int;
  num_actions : int;
}

type regop = RSet of int | RAdd of int

type cntop =
  | CntR  (** count[r]++, still pushable *)
  | CntRk of int  (** count[r+k]++: combined with an increment; final *)
  | CntK of int  (** count[k]++: fully combined; final *)

type site = { mutable reg : regop option; mutable cnt : cntop option }

(* Fold a site's register op into its count when the count reads the path
   register; afterwards an edge never carries both a register op and an
   r-reading count. Correctness argument for dropping the register op: a
   count on an edge means every hot path through it ends its counting
   there, with no instrumentation beyond, so r is dead after the fold. *)
let normalize s =
  match (s.reg, s.cnt) with
  | Some (RSet c), Some CntR ->
      s.reg <- None;
      s.cnt <- Some (CntK c)
  | Some (RSet c), Some (CntRk k) ->
      s.reg <- None;
      s.cnt <- Some (CntK (c + k))
  | Some (RAdd d), Some CntR ->
      s.reg <- None;
      s.cnt <- Some (CntRk d)
  | Some (RAdd d), Some (CntRk k) ->
      s.reg <- None;
      s.cnt <- Some (CntRk (d + k))
  | _ -> ()

let place inp =
  let ctx = inp.ctx in
  let g = Routine_ctx.graph ctx in
  let entry = Routine_ctx.entry ctx in
  let exit = Routine_ctx.exit ctx in
  let nedges = Graph.num_edges g in
  let hot = inp.hot in
  let n_paths = Numbering.num_paths inp.numbering in
  let sites = Array.init (max 1 nedges) (fun _ -> { reg = None; cnt = None }) in
  (* Naive placement: initialization on the entry's hot out-edges (folded
     with their own increments), increments on chords, counts on hot exit
     in-edges. *)
  let init = Event_count.init inp.ev in
  List.iter
    (fun e ->
      if hot.(e) then sites.(e).reg <- Some (RSet (init + Event_count.inc inp.ev e)))
    (Graph.out_edges g entry);
  Graph.iter_edges g (fun e ->
      if hot.(e) && Graph.src g e <> entry then begin
        let i = Event_count.inc inp.ev e in
        if i <> 0 then sites.(e).reg <- Some (RAdd i)
      end);
  List.iter
    (fun e ->
      if hot.(e) then begin
        sites.(e).cnt <- Some CntR;
        normalize sites.(e)
      end)
    (Graph.in_edges g exit);
  (* An edge is ignorable at a merge test when it is cold and we are
     allowed to push past cold edges (Section 4.4). *)
  let relevant e = hot.(e) || not inp.push_past_cold in
  let relevant_in v = List.filter relevant (Graph.in_edges g v) in
  let relevant_out v = List.filter relevant (Graph.out_edges g v) in
  let hot_out v = List.filter (fun e -> hot.(e)) (Graph.out_edges g v) in
  let hot_in v = List.filter (fun e -> hot.(e)) (Graph.in_edges g v) in
  (* Phase 1: push initializations down (Figure 1(f), left part). *)
  let changed = ref true in
  while !changed do
    changed := false;
    Graph.iter_edges g (fun e ->
        match sites.(e).reg with
        | Some (RSet c) when sites.(e).cnt = None && hot.(e) ->
            let v = Graph.dst g e in
            if v <> exit && relevant_in v = [ e ] then begin
              sites.(e).reg <- None;
              List.iter
                (fun o ->
                  let so = sites.(o) in
                  (match so.reg with
                  | None -> so.reg <- Some (RSet c)
                  | Some (RAdd d) -> so.reg <- Some (RSet (c + d))
                  | Some (RSet _) ->
                      invalid_arg "Place: two initializations on one edge");
                  normalize so)
                (hot_out v);
              changed := true
            end
        | _ -> ())
  done;
  (* Phase 2: push counts up. Only the uncombined count[r]++ moves; a
     combined count[r+k]++ has met its increment and stops (Section 3.1). *)
  let changed = ref true in
  while !changed do
    changed := false;
    Graph.iter_edges g (fun e ->
        match sites.(e).cnt with
        | Some CntR when sites.(e).reg = None && hot.(e) ->
            let u = Graph.src g e in
            if u <> entry && relevant_out u = [ e ] then begin
              sites.(e).cnt <- None;
              List.iter
                (fun i ->
                  let si = sites.(i) in
                  if si.cnt <> None then
                    invalid_arg "Place: two counts on one edge";
                  si.cnt <- Some CntR;
                  normalize si)
                (hot_in u);
              changed := true
            end
        | _ -> ())
  done;
  (* Obvious-path elision: a fully combined count[k]++ sits on the unique
     (defining) edge of path k; the edge profile already measures it. *)
  let elided = ref [] in
  if inp.elide_obvious then
    Graph.iter_edges g (fun e ->
        match sites.(e).cnt with
        | Some (CntK k) ->
            assert (Numbering.paths_through inp.numbering e <= 1);
            sites.(e).cnt <- None;
            elided := (k, e) :: !elided
        | _ -> ());
  (* Poisoning (Section 4.6). For free poisoning we need, per node, the
     range of additive contributions a poisoned register accumulates on
     hot continuations before being counted; paths that re-initialize the
     register (an RSet) or count a constant do not observe the poison. *)
  let range = Array.make (Graph.num_nodes g) None in
  let combine a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some (lo1, hi1), Some (lo2, hi2) -> Some (min lo1 lo2, max hi1 hi2)
  in
  let edge_range e =
    let s = sites.(e) in
    match s.reg with
    | Some (RSet _) -> None
    | _ -> (
        let base = match s.reg with Some (RAdd d) -> d | _ -> 0 in
        match s.cnt with
        | Some CntR -> Some (base, base)
        | Some (CntRk k) -> Some (base + k, base + k)
        | Some (CntK _) -> None
        | None -> (
            match range.(Graph.dst g e) with
            | Some (lo, hi) -> Some (lo + base, hi + base)
            | None -> None))
  in
  List.iter
    (fun v ->
      if v <> exit then
        range.(v) <-
          List.fold_left (fun acc e -> combine acc (edge_range e)) None (hot_out v))
    (List.rev (Dag.topological (Routine_ctx.dag ctx)));
  let cold_high = ref 0 in
  Graph.iter_edges g (fun e ->
      if not hot.(e) then begin
        match inp.poisoning with
        | Config.Check -> sites.(e).reg <- Some (RSet (-(1 lsl 50)))
        | Config.Free -> (
            match range.(Graph.dst g e) with
            | None -> () (* nothing downstream reads the register *)
            | Some (lo, hi) ->
                sites.(e).reg <- Some (RSet (n_paths - lo));
                cold_high := max !cold_high (n_paths + hi - lo))
      end);
  (* Dead-instrumentation elimination: drop register ops whose value no
     downstream count reads (also removes poison that free-rode past the
     last count, and everything in routines where all paths were obvious). *)
  let live = Array.make (Graph.num_nodes g) false in
  List.iter
    (fun v ->
      if v <> exit then
        live.(v) <-
          List.exists
            (fun e ->
              match sites.(e).cnt with
              | Some (CntR | CntRk _) -> true
              | Some (CntK _) | None -> (
                  match sites.(e).reg with
                  | Some (RSet _) -> false
                  | Some (RAdd _) | None -> live.(Graph.dst g e)))
            (Graph.out_edges g v))
    (List.rev (Dag.topological (Routine_ctx.dag ctx)));
  Graph.iter_edges g (fun e ->
      match sites.(e).reg with
      | Some _ when not live.(Graph.dst g e) -> sites.(e).reg <- None
      | _ -> ());
  (* Convert sites to runtime actions and restore dummy-edge actions onto
     their back edges (Figure 1(g)). Poison tests are only emitted when a
     poison actually survived: a routine without live cold edges pays no
     checks even under check-mode poisoning. *)
  let any_poison =
    Graph.fold_edges g ~init:false ~f:(fun acc e ->
        acc || ((not hot.(e)) && sites.(e).reg <> None))
  in
  let checked = inp.poisoning = Config.Check && any_poison in
  let actions_of_site s =
    let reg =
      match s.reg with
      | Some (RSet c) -> [ Instr_rt.Set_r c ]
      | Some (RAdd d) -> [ Instr_rt.Add_r d ]
      | None -> []
    in
    let cnt =
      match s.cnt with
      | Some CntR -> [ (if checked then Instr_rt.Count_checked else Instr_rt.Count_r) ]
      | Some (CntRk k) ->
          [ (if checked then Instr_rt.Count_checked_plus k else Instr_rt.Count_r_plus k) ]
      | Some (CntK k) -> [ Instr_rt.Count_const k ]
      | None -> []
    in
    reg @ cnt
  in
  let view = Routine_ctx.view ctx in
  let cfg = Cfg_view.graph view in
  let dag = Routine_ctx.dag ctx in
  let edge_actions = Array.make (max 1 (Graph.num_edges cfg)) [] in
  Graph.iter_edges cfg (fun e ->
      match Dag.of_original dag e with
      | Some de -> edge_actions.(e) <- actions_of_site sites.(de)
      | None ->
          (* A back edge: first the actions ending the old path (its exit
             dummy), then the ones starting the new path (its header's
             entry dummy, absent when the header is the entry block). *)
          let ending =
            match Dag.exit_dummy dag e with
            | Some d -> actions_of_site sites.(d)
            | None -> []
          in
          let starting =
            match Dag.header_of_broken dag e with
            | Some h -> (
                match Dag.entry_dummy dag h with
                | Some d -> actions_of_site sites.(d)
                | None -> [])
            | None -> []
          in
          edge_actions.(e) <- ending @ starting);
  let table_size = max n_paths (!cold_high + 1) in
  let table =
    if inp.use_hash then Instr_rt.Hash_table else Instr_rt.Array_table table_size
  in
  let num_actions =
    Array.fold_left (fun acc l -> acc + List.length l) 0 edge_actions
  in
  {
    rt = { Instr_rt.edge_actions; table; num_paths = n_paths };
    elided = List.rev !elided;
    table_size;
    num_actions;
  }
