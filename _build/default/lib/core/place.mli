(** Instrumentation placement, pushing, combining, poisoning, cleanup and
    DAG-to-CFG restoration (Sections 3.1, 4.4, 4.6; Figure 1(e–g)).

    The instrumentation of a routine lives on DAG edges as at most one
    path-register operation ([r=c] / [r+=c]) and at most one counting
    operation ([count\[r\]++] / [count\[r+k\]++] / [count\[k\]++]) per
    edge. Placement starts from the naive scheme — initialization on the
    entry's out-edges, an increment on every chord, a count on every hot
    exit in-edge — then pushes initializations down and counts up,
    combining as the paper describes. PPP ignores cold edges at the merge
    tests ({!input}[.push_past_cold]), which is what lets it strip
    instrumentation from more paths at the cost of occasionally counting
    a cold path as hot (the Section 6.2 overcount). *)

type input = {
  ctx : Ppp_flow.Routine_ctx.t;
  hot : bool array;
  numbering : Numbering.t;
  ev : Event_count.t;
  push_past_cold : bool;
  elide_obvious : bool;
  poisoning : Config.poisoning;
  use_hash : bool;
}

type result = {
  rt : Ppp_interp.Instr_rt.routine_instr;
      (** edge actions on the {e CFG} (dummy-edge actions restored onto
          back edges) plus the frequency-table kind *)
  elided : (int * Ppp_cfg.Graph.edge) list;
      (** obvious paths whose [count\[k\]++] was removed:
          (path number, defining DAG edge) *)
  table_size : int;
      (** array size: [N] plus the free-poisoning cold range *)
  num_actions : int;  (** static count of placed actions, for reporting *)
}

val place : input -> result
