(** Ball's event-counting reassignment of edge values (Section 3.1).

    Picks a maximum-weight spanning tree of the (undirected view of the)
    hot sub-DAG and moves all increments onto the chords, so predicted
    high-frequency edges carry no instrumentation. With node potentials
    [phi] computed over the tree (crossing a tree edge [u -> v] adds
    [Val]), each chord gets [inc = Val + phi(src) - phi(dst)], and every
    entry-to-exit path satisfies

    {v Σ Val(e) = phi(exit) + Σ inc(e) v}

    so initializing the path register to [phi(exit)] instead of 0 keeps
    every path number unchanged. The conceptual [exit -> entry] dummy of
    the original algorithm is exactly this initialization and is never
    materialized.

    PP and TPP weight the tree with the static heuristic profile; PPP's
    smart numbering (Section 4.5) uses the measured edge profile. *)

type t

val compute :
  Ppp_flow.Routine_ctx.t ->
  hot:bool array ->
  numbering:Numbering.t ->
  weight:(Ppp_cfg.Graph.edge -> float) ->
  t

val init : t -> int
(** [phi(exit)]: the value the path register starts from. *)

val inc : t -> Ppp_cfg.Graph.edge -> int
(** Increment of a hot DAG edge; 0 on spanning-tree edges. *)

val is_chord : t -> Ppp_cfg.Graph.edge -> bool

val sum_along : t -> Ppp_cfg.Graph.edge list -> int
(** [init t + Σ inc]: must equal the Figure-2 path number (property
    tested). *)
