module Graph = Ppp_cfg.Graph
module Dag = Ppp_cfg.Dag
module Routine_ctx = Ppp_flow.Routine_ctx

type order = Ball_larus | Freq_decreasing of (Graph.edge -> float)

type t = {
  ctx : Routine_ctx.t;
  hot : bool array;
  num_paths : int array; (* node -> NumPaths *)
  value : int array; (* DAG edge -> Val *)
  prefix : int array; (* node -> number of hot entry-to-node prefixes *)
}

let compute ctx ~hot ~order =
  let g = Routine_ctx.graph ctx in
  let exit = Routine_ctx.exit ctx in
  let entry = Routine_ctx.entry ctx in
  let num_paths = Array.make (Graph.num_nodes g) 0 in
  let value = Array.make (max 1 (Graph.num_edges g)) 0 in
  num_paths.(exit) <- 1;
  let topo = Dag.topological (Routine_ctx.dag ctx) in
  List.iter
    (fun v ->
      if v <> exit then begin
        let hot_out = List.filter (fun e -> hot.(e)) (Graph.out_edges g v) in
        let sorted =
          match order with
          | Ball_larus ->
              (* Increasing NumPaths of the target; ties by edge id for
                 determinism. *)
              List.stable_sort
                (fun a b ->
                  compare num_paths.(Graph.dst g a) num_paths.(Graph.dst g b))
                hot_out
          | Freq_decreasing freq ->
              List.stable_sort (fun a b -> compare (freq b) (freq a)) hot_out
        in
        List.iter
          (fun e ->
            value.(e) <- num_paths.(v);
            num_paths.(v) <- num_paths.(v) + num_paths.(Graph.dst g e))
          sorted
      end)
    (List.rev topo);
  let prefix = Array.make (Graph.num_nodes g) 0 in
  prefix.(entry) <- 1;
  List.iter
    (fun v ->
      List.iter
        (fun e ->
          if hot.(e) then
            prefix.(Graph.dst g e) <- prefix.(Graph.dst g e) + prefix.(v))
        (Graph.out_edges g v))
    topo;
  { ctx; hot; num_paths; value; prefix }

let num_paths t = t.num_paths.(Routine_ctx.entry t.ctx)
let num_paths_at t v = t.num_paths.(v)
let value t e = t.value.(e)
let prefix_count t v = t.prefix.(v)

let paths_through t e =
  let g = Routine_ctx.graph t.ctx in
  if not t.hot.(e) then 0
  else t.prefix.(Graph.src g e) * t.num_paths.(Graph.dst g e)

let decode t n =
  let g = Routine_ctx.graph t.ctx in
  let exit = Routine_ctx.exit t.ctx in
  if n < 0 || n >= num_paths t then
    invalid_arg (Printf.sprintf "Numbering.decode: %d out of [0,%d)" n (num_paths t));
  let rec walk v remaining acc =
    if v = exit then begin
      assert (remaining = 0);
      List.rev acc
    end
    else begin
      (* The unique hot out-edge with Val(e) <= remaining < Val(e) +
         NumPaths(dst e): the one with the largest Val not exceeding
         remaining. *)
      let best =
        List.fold_left
          (fun best e ->
            if not t.hot.(e) || t.value.(e) > remaining then best
            else
              match best with
              | Some b when t.value.(b) >= t.value.(e) -> best
              | _ -> Some e)
          None (Graph.out_edges g v)
      in
      match best with
      | Some e -> walk (Graph.dst g e) (remaining - t.value.(e)) (e :: acc)
      | None -> invalid_arg "Numbering.decode: stuck (inconsistent hot set)"
    end
  in
  walk (Routine_ctx.entry t.ctx) n []

let number_of_path t path =
  List.fold_left (fun acc e -> acc + t.value.(e)) 0 path
