lib/core/event_count.ml: Array List Numbering Ppp_cfg Ppp_flow
