lib/core/place.mli: Config Event_count Numbering Ppp_cfg Ppp_flow Ppp_interp
