lib/core/config.mli:
