lib/core/cold.mli: Ppp_cfg Ppp_flow
