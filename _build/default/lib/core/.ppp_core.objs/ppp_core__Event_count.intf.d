lib/core/event_count.mli: Numbering Ppp_cfg Ppp_flow
