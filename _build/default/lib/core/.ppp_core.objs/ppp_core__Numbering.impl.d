lib/core/numbering.ml: Array List Ppp_cfg Ppp_flow Printf
