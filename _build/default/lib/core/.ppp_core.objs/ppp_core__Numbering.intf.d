lib/core/numbering.mli: Ppp_cfg Ppp_flow
