lib/core/cold.ml: Array Hashtbl List Ppp_cfg Ppp_flow Ppp_ir
