lib/core/instrument.mli: Config Format Hashtbl Numbering Place Ppp_flow Ppp_interp Ppp_ir Ppp_profile
