lib/core/config.ml:
