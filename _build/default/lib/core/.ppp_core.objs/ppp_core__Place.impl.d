lib/core/place.ml: Array Config Event_count List Numbering Ppp_cfg Ppp_flow Ppp_interp Ppp_ir
