lib/core/instrument.ml: Array Cold Config Event_count Format Hashtbl List Numbering Option Place Ppp_cfg Ppp_flow Ppp_interp Ppp_ir Ppp_profile Printf String
