module Graph = Ppp_cfg.Graph
module Routine_ctx = Ppp_flow.Routine_ctx

type t = {
  init : int;
  incs : int array; (* DAG edge -> increment *)
  chord : bool array;
}

(* Union-find for Kruskal. *)
let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let compute ctx ~hot ~numbering ~weight =
  let g = Routine_ctx.graph ctx in
  let n = Graph.num_nodes g in
  let nedges = Graph.num_edges g in
  let hot_edges =
    Graph.fold_edges g ~init:[] ~f:(fun acc e -> if hot.(e) then e :: acc else acc)
  in
  let sorted = List.stable_sort (fun a b -> compare (weight b) (weight a)) hot_edges in
  let parent = Array.init n (fun i -> i) in
  let in_tree = Array.make (max 1 nedges) false in
  List.iter
    (fun e ->
      let u = find parent (Graph.src g e) and v = find parent (Graph.dst g e) in
      if u <> v then begin
        parent.(u) <- v;
        in_tree.(e) <- true
      end)
    sorted;
  (* Node potentials over the (undirected) spanning forest: crossing a
     tree edge u -> v in its own direction adds Val. *)
  let phi = Array.make n 0 in
  let visited = Array.make n false in
  let tree_adj = Array.make n [] in
  List.iter
    (fun e ->
      if in_tree.(e) then begin
        let u = Graph.src g e and v = Graph.dst g e in
        tree_adj.(u) <- (e, v, true) :: tree_adj.(u);
        tree_adj.(v) <- (e, u, false) :: tree_adj.(v)
      end)
    hot_edges;
  let rec dfs v =
    visited.(v) <- true;
    List.iter
      (fun (e, w, forward) ->
        if not visited.(w) then begin
          let dv = Numbering.value numbering e in
          phi.(w) <- (if forward then phi.(v) + dv else phi.(v) - dv);
          dfs w
        end)
      tree_adj.(v)
  in
  (* Root the potential at the entry so phi(entry) = 0; other components
     (cold islands) get their own zero-based potentials. *)
  dfs (Routine_ctx.entry ctx);
  for v = 0 to n - 1 do
    if not visited.(v) then dfs v
  done;
  let incs = Array.make (max 1 nedges) 0 in
  let chord = Array.make (max 1 nedges) false in
  List.iter
    (fun e ->
      if not in_tree.(e) then begin
        chord.(e) <- true;
        let u = Graph.src g e and v = Graph.dst g e in
        incs.(e) <- Numbering.value numbering e + phi.(u) - phi.(v)
      end)
    hot_edges;
  { init = phi.(Routine_ctx.exit ctx); incs; chord }

let init t = t.init
let inc t e = t.incs.(e)
let is_chord t e = t.chord.(e)
let sum_along t path = List.fold_left (fun acc e -> acc + t.incs.(e)) t.init path
