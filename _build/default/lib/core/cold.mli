(** Cold-edge identification (Sections 3.2, 4.2, 4.3) and obvious-loop
    disconnection.

    The result of {!mark} is a boolean "hot" array over DAG edges. A hot
    edge set is always {e closed}: every hot edge lies on some hot
    entry-to-exit path (edges that fail this cannot receive a unique path
    number and must poison, so they are forced cold). *)

val mark :
  Ppp_flow.Routine_ctx.t ->
  local_ratio:float option ->
  global_cutoff:int option ->
  extra_cold:Ppp_cfg.Graph.edge list ->
  bool array
(** [mark ctx ~local_ratio ~global_cutoff ~extra_cold] marks a DAG edge
    cold when its frequency is below [local_ratio] of its source block's
    flow (the TPP local criterion), or below the absolute [global_cutoff]
    (PPP's global criterion, precomputed as
    [fraction * total program unit flow]), or listed in [extra_cold],
    or stranded off every hot entry-to-exit path. When either frequency
    criterion is active, an edge with zero frequency is always cold; with
    both [None] (TPP's no-removal baseline) only [extra_cold] and closure
    apply. *)

val all_hot : Ppp_flow.Routine_ctx.t -> bool array
(** PP: every DAG edge is hot (no closure needed: well-formed routines
    have every block on an entry-to-exit path). *)

val close_hot : Ppp_flow.Routine_ctx.t -> bool array -> unit
(** Force cold, in place, every edge not on a hot entry-to-exit path.
    Iterates to a fixpoint. *)

val obvious_loop_cold_edges :
  Ppp_flow.Routine_ctx.t -> trip_threshold:float -> Ppp_cfg.Graph.edge list
(** DAG edges to disconnect for every loop whose body paths are all
    obvious and whose average trip count meets the threshold
    (Section 3.2): the loop's entry dummy, its back edges' exit dummies,
    and the loop's entry and exit edges, so no instrumentation survives
    anywhere in the body. *)
