module Graph = Ppp_cfg.Graph
module Dag = Ppp_cfg.Dag
module Loop = Ppp_cfg.Loop
module Routine_ctx = Ppp_flow.Routine_ctx

let all_hot ctx =
  Array.make (max 1 (Graph.num_edges (Routine_ctx.graph ctx))) true

(* Reachability from the entry / co-reachability to the exit restricted to
   hot edges. *)
let close_hot ctx hot =
  let g = Routine_ctx.graph ctx in
  let n = Graph.num_nodes g in
  let changed = ref true in
  while !changed do
    changed := false;
    let fwd = Array.make n false in
    let rec down v =
      if not fwd.(v) then begin
        fwd.(v) <- true;
        List.iter
          (fun e -> if hot.(e) then down (Graph.dst g e))
          (Graph.out_edges g v)
      end
    in
    down (Routine_ctx.entry ctx);
    let bwd = Array.make n false in
    let rec up v =
      if not bwd.(v) then begin
        bwd.(v) <- true;
        List.iter (fun e -> if hot.(e) then up (Graph.src g e)) (Graph.in_edges g v)
      end
    in
    up (Routine_ctx.exit ctx);
    Graph.iter_edges g (fun e ->
        if hot.(e) && not (fwd.(Graph.src g e) && bwd.(Graph.dst g e)) then begin
          hot.(e) <- false;
          changed := true
        end)
  done

let mark ctx ~local_ratio ~global_cutoff ~extra_cold =
  let g = Routine_ctx.graph ctx in
  let hot = Array.make (max 1 (Graph.num_edges g)) true in
  let freq_criteria_active = local_ratio <> None || global_cutoff <> None in
  Graph.iter_edges g (fun e ->
      let f = Routine_ctx.freq ctx e in
      let src_flow = Routine_ctx.node_flow ctx (Graph.src g e) in
      let local_cold =
        match local_ratio with
        | Some ratio -> float_of_int f < ratio *. float_of_int src_flow
        | None -> false
      in
      let global_cold =
        match global_cutoff with Some cut -> f < cut | None -> false
      in
      if local_cold || global_cold || (freq_criteria_active && f = 0) then
        hot.(e) <- false);
  List.iter (fun e -> hot.(e) <- false) extra_cold;
  close_hot ctx hot;
  hot

(* A loop body is "all obvious" when every iteration path (header to a
   back edge) contains a defining edge: an edge on exactly one iteration
   path. Paths here are counted inside the body sub-DAG, with each back
   edge acting as a terminal edge to a virtual sink. *)
let body_all_obvious ctx (l : Loop.loop) =
  let g_cfg = Ppp_ir.Cfg_view.graph (Routine_ctx.view ctx) in
  let in_body = Hashtbl.create 17 in
  List.iter (fun v -> Hashtbl.replace in_body v ()) l.Loop.body;
  let is_back e = List.mem e l.Loop.back_edges in
  let body_edges v =
    List.filter
      (fun e -> (not (is_back e)) && Hashtbl.mem in_body (Graph.dst g_cfg e))
      (Graph.out_edges g_cfg v)
  in
  (* The body minus back edges is acyclic only if the loop has no inner
     loop; with inner loops this traversal would diverge, so detect
     cycles and bail out (such loops are not "obvious"). *)
  let suff = Hashtbl.create 17 in
  let on_stack = Hashtbl.create 17 in
  let exception Cyclic in
  let rec suffixes v =
    match Hashtbl.find_opt suff v with
    | Some s -> s
    | None ->
        if Hashtbl.mem on_stack v then raise Cyclic;
        Hashtbl.replace on_stack v ();
        let from_backs =
          List.length (List.filter is_back (Graph.out_edges g_cfg v))
        in
        let s =
          List.fold_left
            (fun acc e -> acc + suffixes (Graph.dst g_cfg e))
            from_backs (body_edges v)
        in
        Hashtbl.remove on_stack v;
        Hashtbl.replace suff v s;
        s
  in
  let pref = Hashtbl.create 17 in
  let rec prefixes v =
    match Hashtbl.find_opt pref v with
    | Some p -> p
    | None ->
        let p =
          if v = l.Loop.header then 1
          else
            List.fold_left
              (fun acc e ->
                if
                  (not (is_back e))
                  && Hashtbl.mem in_body (Graph.src g_cfg e)
                  && Hashtbl.mem in_body v
                then acc + prefixes (Graph.src g_cfg e)
                else acc)
              0 (Graph.in_edges g_cfg v)
        in
        Hashtbl.replace pref v p;
        p
  in
  try
    let total = suffixes l.Loop.header in
    if total = 0 then false
    else begin
      let defining e =
        if is_back e then prefixes (Graph.src g_cfg e) = 1
        else prefixes (Graph.src g_cfg e) * suffixes (Graph.dst g_cfg e) = 1
      in
      (* Count iteration paths that avoid every defining edge. *)
      let avoid = Hashtbl.create 17 in
      let rec avoiding v =
        match Hashtbl.find_opt avoid v with
        | Some a -> a
        | None ->
            let from_backs =
              List.length
                (List.filter
                   (fun e -> is_back e && not (defining e))
                   (Graph.out_edges g_cfg v))
            in
            let a =
              List.fold_left
                (fun acc e ->
                  if defining e then acc else acc + avoiding (Graph.dst g_cfg e))
                from_backs (body_edges v)
            in
            Hashtbl.replace avoid v a;
            a
      in
      avoiding l.Loop.header = 0
    end
  with Cyclic -> false

let obvious_loop_cold_edges ctx ~trip_threshold =
  let g_cfg = Ppp_ir.Cfg_view.graph (Routine_ctx.view ctx) in
  let dag = Routine_ctx.dag ctx in
  let loops = Routine_ctx.loops ctx in
  let cold = ref [] in
  let add e = cold := e :: !cold in
  List.iter
    (fun (l : Loop.loop) ->
      let trips =
        Loop.avg_trip_count loops l ~freq:(fun e -> Routine_ctx.cfg_freq ctx e)
      in
      if trips >= trip_threshold && body_all_obvious ctx l then begin
        let in_body = Hashtbl.create 17 in
        List.iter (fun v -> Hashtbl.replace in_body v ()) l.Loop.body;
        (* Dummies of the loop's back edges and header. *)
        (match Dag.entry_dummy dag l.Loop.header with Some d -> add d | None -> ());
        List.iter
          (fun b -> match Dag.exit_dummy dag b with Some d -> add d | None -> ())
          l.Loop.back_edges;
        (* Loop-entry edges (into the header from outside) and loop-exit
           edges (from the body to the outside), as DAG edges. *)
        Graph.iter_edges g_cfg (fun e ->
            let u = Graph.src g_cfg e and v = Graph.dst g_cfg e in
            let enters = v = l.Loop.header && not (Hashtbl.mem in_body u) in
            let exits = Hashtbl.mem in_body u && not (Hashtbl.mem in_body v) in
            if enters || exits then
              match Dag.of_original dag e with Some de -> add de | None -> ())
      end)
    (Loop.loops loops);
  List.sort_uniq compare !cold
