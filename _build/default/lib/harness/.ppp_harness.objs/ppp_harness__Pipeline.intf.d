lib/harness/pipeline.mli: Ppp_core Ppp_interp Ppp_ir Ppp_opt Ppp_profile
