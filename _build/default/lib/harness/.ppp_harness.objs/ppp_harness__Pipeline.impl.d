lib/harness/pipeline.ml: Array Hashtbl List Option Ppp_cfg Ppp_core Ppp_flow Ppp_interp Ppp_ir Ppp_opt Ppp_profile
