lib/harness/report.ml: Format Hashtbl List Pipeline Ppp_core Ppp_interp Ppp_opt Ppp_workloads String
