lib/harness/report.mli: Format Pipeline Ppp_workloads
