(** The end-to-end experiment pipeline of Section 7: run the original
    program, apply edge-profile-guided inlining and unrolling (re-profiling
    in between, as a staged optimizer would), then instrument the
    optimized program with PP / TPP / PPP, run it, and score the result.

    All profiles use "self" advice (Section 7.2): the edge profile given
    to the instrumenter comes from the same input the overhead run uses. *)

type prepared = {
  bench_name : string;
  original : Ppp_ir.Ir.program;
  optimized : Ppp_ir.Ir.program;
  orig_outcome : Ppp_interp.Interp.outcome;
  base_outcome : Ppp_interp.Interp.outcome;  (** run of [optimized] *)
  inline_stats : Ppp_opt.Inline.stats;
  unroll_stats : Ppp_opt.Unroll.stats;
}

val prepare : name:string -> Ppp_ir.Ir.program -> prepared
(** @raise Ppp_interp.Interp.Runtime_error if the program faults. *)

val prepare_unoptimized : name:string -> Ppp_ir.Ir.program -> prepared
(** Skip inlining and unrolling (for comparisons on original code). *)

val views : prepared -> string -> Ppp_ir.Cfg_view.t
(** Cached CFG views of the optimized program's routines. *)

val actual_profile : prepared -> Ppp_profile.Path_profile.program
val total_flow : prepared -> Ppp_profile.Metric.t -> int

(** {2 Path-characteristics rows (Tables 1 and 2)} *)

type path_stats = {
  dyn_paths : int;
  avg_branches : float;
  avg_instrs : float;
}

val path_stats_of_outcome :
  Ppp_ir.Ir.program -> Ppp_interp.Interp.outcome -> path_stats

type hot_stats = {
  distinct_paths : int;
  hot_count : int;
  hot_flow_pct : float;
}

val hot_stats : prepared -> threshold:float -> hot_stats

(** {2 Evaluating one profiling method (Figures 9-13)} *)

type evaluation = {
  config_name : string;
  overhead : float;  (** instrumentation cost / base cost (Figure 12) *)
  accuracy : float;  (** Figure 9 *)
  coverage : float;  (** Figure 10 *)
  frac_paths_instrumented : float;  (** Figure 11 *)
  frac_paths_hashed : float;  (** Figure 11, striped portion *)
  static_actions : int;
  routines_instrumented : int;
  routines_total : int;
}

val evaluate : prepared -> Ppp_core.Config.t -> evaluation
(** Instrument with the given configuration, rerun, decode, and score. *)

val evaluate_edge_profile : prepared -> evaluation
(** Edge profiling as the estimator: potential-flow hot paths
    (Section 6.1), definite-flow coverage, zero overhead (Section 2). *)
