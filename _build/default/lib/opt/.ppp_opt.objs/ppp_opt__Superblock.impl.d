lib/opt/superblock.ml: Array List Ppp_ir Ppp_profile Printf
