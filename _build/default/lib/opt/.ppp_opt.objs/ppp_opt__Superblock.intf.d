lib/opt/superblock.mli: Ppp_ir Ppp_profile
