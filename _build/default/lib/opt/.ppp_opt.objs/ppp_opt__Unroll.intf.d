lib/opt/unroll.mli: Ppp_ir Ppp_profile
