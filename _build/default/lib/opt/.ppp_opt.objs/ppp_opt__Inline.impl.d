lib/opt/inline.ml: Array Hashtbl List Option Ppp_ir Printf
