lib/opt/inline.mli: Ppp_ir
