(** A small register-based intermediate representation.

    Routines are arrays of basic blocks over integer registers, with
    global arrays as the only memory. The representation is deliberately
    low level — one instruction per operation — so that the interpreter's
    cost model (see {!Ppp_interp.Cost}) approximates the "IR statements"
    that the paper counts (Table 1), and so that control flow is fully
    explicit for path profiling. *)

type reg = int
(** Register index within a routine; parameters occupy [0..nparams-1]. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncated toward zero; division by zero is a runtime error *)
  | Rem
  | And
  | Or
  | Xor
  | Shl  (** shift count is masked to [0, 62] *)
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne  (** comparisons yield 1 or 0 *)

type operand = Reg of reg | Imm of int

type instr =
  | Mov of reg * operand
  | Binop of reg * binop * operand * operand
  | Load of reg * string * operand  (** [reg := array.(idx)] *)
  | Store of string * operand * operand  (** [array.(idx) := value] *)
  | Call of reg option * string * operand list
  | Out of operand  (** append the value to the program's observable output *)

type terminator =
  | Jump of int  (** target block index *)
  | Branch of operand * int * int  (** nonzero -> first target, else second *)
  | Return of operand option

type block = { label : string; instrs : instr array; term : terminator }

type routine = {
  name : string;
  nparams : int;
  nregs : int;
  blocks : block array;  (** entry is block 0 *)
}

type program = {
  arrays : (string * int) list;  (** global arrays: name and length *)
  routines : routine list;
  main : string;  (** entry routine; must take no parameters *)
}

val routine : program -> string -> routine
(** @raise Not_found if no routine has that name. *)

val find_routine : program -> string -> routine option

val num_instrs : routine -> int
(** Static instruction count including one per terminator (the paper's
    "IR statements" unit used by the inlining and unrolling limits). *)

val program_size : program -> int
(** Sum of {!num_instrs} over all routines. *)

val map_routines : program -> f:(routine -> routine) -> program

val binop_name : binop -> string
(** Surface syntax of the operator, e.g. ["+"], ["<="]. *)

val binop_of_name : string -> binop option
