(** Structured construction of routines and programs.

    The builder keeps a current block open for instruction emission and
    provides structured control flow ([if_], [while_], [for_]) that
    always produces reducible, well-formed CFGs. Unreachable blocks left
    behind by early returns are pruned by {!finish}. *)

type t

val create : name:string -> nparams:int -> t
(** Start a routine; parameters occupy registers [0..nparams-1] and the
    entry block is open for emission. *)

val reg : t -> Ir.reg
(** A fresh register. *)

val param : t -> int -> Ir.operand
(** [param b i] is parameter [i] as an operand. *)

(* {2 Instructions} *)

val mov : t -> Ir.reg -> Ir.operand -> unit
val bin : t -> Ir.reg -> Ir.binop -> Ir.operand -> Ir.operand -> unit

val bin_ : t -> Ir.binop -> Ir.operand -> Ir.operand -> Ir.operand
(** Like {!bin} but allocates and returns a fresh destination. *)

val load : t -> Ir.reg -> string -> Ir.operand -> unit
val load_ : t -> string -> Ir.operand -> Ir.operand
val store : t -> string -> Ir.operand -> Ir.operand -> unit
val call : t -> Ir.reg option -> string -> Ir.operand list -> unit
val call_ : t -> string -> Ir.operand list -> Ir.operand
val out : t -> Ir.operand -> unit

(* {2 Control flow} *)

val if_ : t -> Ir.operand -> then_:(unit -> unit) -> else_:(unit -> unit) -> unit
(** Two-armed conditional; either arm may return early. *)

val when_ : t -> Ir.operand -> (unit -> unit) -> unit
(** One-armed conditional. *)

val while_ : t -> cond:(unit -> Ir.operand) -> body:(unit -> unit) -> unit
(** Top-tested loop; [cond] may emit instructions into the loop header. *)

val for_ : t -> Ir.reg -> from:Ir.operand -> below:Ir.operand -> (unit -> unit) -> unit
(** Counted loop [for r = from; r < below; r++]. The index register must
    not be written by the body. *)

val ret : t -> Ir.operand option -> unit
(** Terminate the current block with a return. Further emission is only
    legal after control flow rejoins (e.g. in the other arm of [if_]). *)

val finish : t -> Ir.routine
(** Seal the routine. An open current block is terminated with
    [Return None].

    @raise Invalid_argument if some structured construct is unclosed. *)

(* {2 Programs} *)

val program :
  ?arrays:(string * int) list -> main:string -> Ir.routine list -> Ir.program
(** Assemble and well-formedness-check a program.
    @raise Invalid_argument on check failure. *)
