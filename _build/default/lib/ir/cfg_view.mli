(** The control-flow graph of a routine.

    Nodes are block indices; one extra virtual exit node collects all
    [Return] terminators, giving every routine the single-entry /
    single-exit shape path profiling requires. Edge identifiers are shared
    between the instrumenter (which attaches actions to them) and the
    interpreter (which looks up the edge taken by each control transfer). *)

type t

val of_routine : Ir.routine -> t

val routine : t -> Ir.routine
val graph : t -> Ppp_cfg.Graph.t
val entry : t -> Ppp_cfg.Graph.node
val exit : t -> Ppp_cfg.Graph.node
(** The virtual exit node (equal to the number of blocks). *)

val jump_edge : t -> int -> Ppp_cfg.Graph.edge
(** Edge taken by the [Jump] terminator of the given block. *)

val branch_edge : t -> int -> taken:bool -> Ppp_cfg.Graph.edge
(** Edge taken by the [Branch] of the given block ([taken] = condition
    was nonzero). *)

val return_edge : t -> int -> Ppp_cfg.Graph.edge
(** Edge from the given block's [Return] to the virtual exit. *)

val block_of_node : t -> Ppp_cfg.Graph.node -> int option
(** [None] for the virtual exit node. *)

val is_branch_edge : t -> Ppp_cfg.Graph.edge -> bool
(** True when the edge's source block has at least one other outgoing
    edge — the paper's definition of a branch (Section 5.1). *)

val num_branch_edges_on : t -> Ppp_cfg.Graph.edge list -> int
(** The [b_p] of a path given as its edge list. *)
