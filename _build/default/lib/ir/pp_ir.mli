(** Pretty-printing of IR to the textual [.pir] format accepted by
    {!Parse}. [Parse.program_of_string (to_string p)] reproduces [p]
    exactly (a property test enforces the round trip). *)

val pp_operand : Format.formatter -> Ir.operand -> unit
val pp_instr : Format.formatter -> Ir.instr -> unit
val pp_routine : Format.formatter -> Ir.routine -> unit
val pp_program : Format.formatter -> Ir.program -> unit
val to_string : Ir.program -> string
