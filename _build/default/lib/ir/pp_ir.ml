let pp_operand ppf = function
  | Ir.Reg r -> Format.fprintf ppf "r%d" r
  | Ir.Imm i -> Format.fprintf ppf "%d" i

let pp_instr ppf = function
  | Ir.Mov (d, v) -> Format.fprintf ppf "r%d = %a" d pp_operand v
  | Ir.Binop (d, op, a, b) ->
      Format.fprintf ppf "r%d = %a %s %a" d pp_operand a (Ir.binop_name op)
        pp_operand b
  | Ir.Load (d, arr, idx) ->
      Format.fprintf ppf "r%d = %s[%a]" d arr pp_operand idx
  | Ir.Store (arr, idx, v) ->
      Format.fprintf ppf "%s[%a] = %a" arr pp_operand idx pp_operand v
  | Ir.Call (dst, callee, args) ->
      let pp_args ppf args =
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
          pp_operand ppf args
      in
      (match dst with
      | Some d -> Format.fprintf ppf "r%d = call %s(%a)" d callee pp_args args
      | None -> Format.fprintf ppf "call %s(%a)" callee pp_args args)
  | Ir.Out v -> Format.fprintf ppf "out %a" pp_operand v

let pp_term blocks ppf = function
  | Ir.Jump l -> Format.fprintf ppf "jump %s" blocks.(l).Ir.label
  | Ir.Branch (c, l1, l2) ->
      Format.fprintf ppf "br %a, %s, %s" pp_operand c blocks.(l1).Ir.label
        blocks.(l2).Ir.label
  | Ir.Return None -> Format.fprintf ppf "ret"
  | Ir.Return (Some v) -> Format.fprintf ppf "ret %a" pp_operand v

let pp_routine ppf (r : Ir.routine) =
  Format.fprintf ppf "@[<v>routine %s(%d) regs %d {" r.name r.nparams r.nregs;
  Array.iter
    (fun (b : Ir.block) ->
      Format.fprintf ppf "@,%s:" b.label;
      Array.iter (fun i -> Format.fprintf ppf "@,  %a" pp_instr i) b.instrs;
      Format.fprintf ppf "@,  %a" (pp_term r.blocks) b.term)
    r.blocks;
  Format.fprintf ppf "@,}@]"

let pp_program ppf (p : Ir.program) =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (name, size) -> Format.fprintf ppf "array %s %d@,@," name size) p.arrays;
  Format.fprintf ppf "main %s@," p.main;
  List.iter (fun r -> Format.fprintf ppf "@,%a@," pp_routine r) p.routines;
  Format.fprintf ppf "@]"

let to_string p = Format.asprintf "%a@." pp_program p
