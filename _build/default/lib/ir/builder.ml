type blk = {
  id : int;
  label : string;
  mutable rev_instrs : Ir.instr list;
  mutable term : Ir.terminator option;
}

type t = {
  name : string;
  nparams : int;
  mutable nregs : int;
  mutable rev_blocks : blk list;
  mutable current : blk option;
  mutable next_label : int;
}

let create ~name ~nparams =
  let entry = { id = 0; label = "entry"; rev_instrs = []; term = None } in
  {
    name;
    nparams;
    nregs = nparams;
    rev_blocks = [ entry ];
    current = Some entry;
    next_label = 0;
  }

let reg b =
  let r = b.nregs in
  b.nregs <- r + 1;
  r

let param b i =
  if i < 0 || i >= b.nparams then invalid_arg "Builder.param: out of range";
  Ir.Reg i

let new_block b prefix =
  let id = List.length b.rev_blocks in
  b.next_label <- b.next_label + 1;
  let label = Printf.sprintf "%s%d" prefix b.next_label in
  let blk = { id; label; rev_instrs = []; term = None } in
  b.rev_blocks <- blk :: b.rev_blocks;
  blk

let emit b ins =
  match b.current with
  | Some blk -> blk.rev_instrs <- ins :: blk.rev_instrs
  | None ->
      invalid_arg
        (Printf.sprintf
           "Builder(%s): instruction emitted after a terminator (early \
            return inside a for_ body?)"
           b.name)

let seal b term =
  match b.current with
  | Some blk ->
      blk.term <- Some term;
      b.current <- None
  | None -> invalid_arg (Printf.sprintf "Builder(%s): no open block to seal" b.name)

let open_block b blk = b.current <- Some blk

let mov b d v = emit b (Ir.Mov (d, v))
let bin b d op x y = emit b (Ir.Binop (d, op, x, y))

let bin_ b op x y =
  let d = reg b in
  bin b d op x y;
  Ir.Reg d

let load b d arr idx = emit b (Ir.Load (d, arr, idx))

let load_ b arr idx =
  let d = reg b in
  load b d arr idx;
  Ir.Reg d

let store b arr idx v = emit b (Ir.Store (arr, idx, v))
let call b dst callee args = emit b (Ir.Call (dst, callee, args))

let call_ b callee args =
  let d = reg b in
  call b (Some d) callee args;
  Ir.Reg d

let out b v = emit b (Ir.Out v)

let if_ b cond ~then_ ~else_ =
  let bt = new_block b "then" in
  let be = new_block b "else" in
  let bj = new_block b "join" in
  seal b (Ir.Branch (cond, bt.id, be.id));
  open_block b bt;
  then_ ();
  if Option.is_some b.current then seal b (Ir.Jump bj.id);
  open_block b be;
  else_ ();
  if Option.is_some b.current then seal b (Ir.Jump bj.id);
  open_block b bj

let when_ b cond body = if_ b cond ~then_:body ~else_:(fun () -> ())

let while_ b ~cond ~body =
  let bh = new_block b "head" in
  seal b (Ir.Jump bh.id);
  open_block b bh;
  let c = cond () in
  let bb = new_block b "body" in
  let bx = new_block b "break" in
  seal b (Ir.Branch (c, bb.id, bx.id));
  open_block b bb;
  body ();
  if Option.is_some b.current then seal b (Ir.Jump bh.id);
  open_block b bx

let for_ b r ~from ~below body =
  mov b r from;
  let step () =
    body ();
    bin b r Ir.Add (Ir.Reg r) (Ir.Imm 1)
  in
  while_ b ~cond:(fun () -> bin_ b Ir.Lt (Ir.Reg r) below) ~body:step

let ret b v = seal b (Ir.Return v)

let finish b =
  if Option.is_some b.current then seal b (Ir.Return None);
  let blocks = Array.of_list (List.rev b.rev_blocks) in
  Array.iter
    (fun blk ->
      if Option.is_none blk.term then
        invalid_arg
          (Printf.sprintf "Builder(%s): block %s has no terminator" b.name
             blk.label))
    blocks;
  (* Prune blocks unreachable from the entry (dead code after returns in
     both arms of a conditional) and remap targets densely. *)
  let n = Array.length blocks in
  let reached = Array.make n false in
  let targets blk =
    match Option.get blk.term with
    | Ir.Jump l -> [ l ]
    | Ir.Branch (_, l1, l2) -> [ l1; l2 ]
    | Ir.Return _ -> []
  in
  let rec visit i =
    if not reached.(i) then begin
      reached.(i) <- true;
      List.iter visit (targets blocks.(i))
    end
  in
  visit 0;
  let remap = Array.make n (-1) in
  let kept = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun i blk ->
      if reached.(i) then begin
        remap.(i) <- !count;
        incr count;
        kept := blk :: !kept
      end)
    blocks;
  let kept = Array.of_list (List.rev !kept) in
  let remap_term = function
    | Ir.Jump l -> Ir.Jump remap.(l)
    | Ir.Branch (c, l1, l2) -> Ir.Branch (c, remap.(l1), remap.(l2))
    | Ir.Return v -> Ir.Return v
  in
  let ir_blocks =
    Array.map
      (fun blk ->
        {
          Ir.label = blk.label;
          instrs = Array.of_list (List.rev blk.rev_instrs);
          term = remap_term (Option.get blk.term);
        })
      kept
  in
  {
    Ir.name = b.name;
    nparams = b.nparams;
    nregs = max b.nregs 1;
    blocks = ir_blocks;
  }

let program ?(arrays = []) ~main routines =
  let p = { Ir.arrays; routines; main } in
  Check.program_exn p;
  p
