lib/ir/check.ml: Array Cfg_view Format Hashtbl Ir List Option Ppp_cfg Printf String
