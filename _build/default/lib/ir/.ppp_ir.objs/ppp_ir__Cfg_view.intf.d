lib/ir/cfg_view.mli: Ir Ppp_cfg
