lib/ir/pp_ir.ml: Array Format Ir List
