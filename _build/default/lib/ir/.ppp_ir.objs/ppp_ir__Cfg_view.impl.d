lib/ir/cfg_view.ml: Array Ir List Ppp_cfg
