lib/ir/ir.mli:
