lib/ir/pp_ir.mli: Format Ir
