lib/ir/check.mli: Ir
