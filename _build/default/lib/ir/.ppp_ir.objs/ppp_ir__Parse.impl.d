lib/ir/parse.ml: Array Check Either Format Fun Hashtbl Ir List Option Printf String
