lib/ir/builder.ml: Array Check Ir List Option Printf
