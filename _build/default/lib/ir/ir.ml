type reg = int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type operand = Reg of reg | Imm of int

type instr =
  | Mov of reg * operand
  | Binop of reg * binop * operand * operand
  | Load of reg * string * operand
  | Store of string * operand * operand
  | Call of reg option * string * operand list
  | Out of operand

type terminator =
  | Jump of int
  | Branch of operand * int * int
  | Return of operand option

type block = { label : string; instrs : instr array; term : terminator }

type routine = {
  name : string;
  nparams : int;
  nregs : int;
  blocks : block array;
}

type program = {
  arrays : (string * int) list;
  routines : routine list;
  main : string;
}

let find_routine p name = List.find_opt (fun r -> r.name = name) p.routines

let routine p name =
  match find_routine p name with Some r -> r | None -> raise Not_found

let num_instrs r =
  Array.fold_left (fun acc b -> acc + Array.length b.instrs + 1) 0 r.blocks

let program_size p =
  List.fold_left (fun acc r -> acc + num_instrs r) 0 p.routines

let map_routines p ~f = { p with routines = List.map f p.routines }

let binop_table =
  [
    (Add, "+");
    (Sub, "-");
    (Mul, "*");
    (Div, "/");
    (Rem, "%");
    (And, "&");
    (Or, "|");
    (Xor, "^");
    (Shl, "<<");
    (Shr, ">>");
    (Lt, "<");
    (Le, "<=");
    (Gt, ">");
    (Ge, ">=");
    (Eq, "==");
    (Ne, "!=");
  ]

let binop_name op = List.assoc op binop_table

let binop_of_name s =
  List.find_map (fun (op, n) -> if n = s then Some op else None) binop_table
