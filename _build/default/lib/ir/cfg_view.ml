module Graph = Ppp_cfg.Graph

type t = {
  routine : Ir.routine;
  graph : Graph.t;
  exit : Graph.node;
  term_edges : Graph.edge array array;
}

let of_routine (r : Ir.routine) =
  let g = Graph.create () in
  let nblocks = Array.length r.blocks in
  Graph.add_nodes g (nblocks + 1);
  let exit = nblocks in
  let term_edges =
    Array.mapi
      (fun i (b : Ir.block) ->
        match b.term with
        | Ir.Jump l -> [| Graph.add_edge g i l |]
        | Ir.Branch (_, l1, l2) ->
            let e1 = Graph.add_edge g i l1 in
            let e2 = Graph.add_edge g i l2 in
            [| e1; e2 |]
        | Ir.Return _ -> [| Graph.add_edge g i exit |])
      r.blocks
  in
  { routine = r; graph = g; exit; term_edges }

let routine t = t.routine
let graph t = t.graph
let entry (_ : t) = 0
let exit t = t.exit
let jump_edge t b = t.term_edges.(b).(0)
let branch_edge t b ~taken = t.term_edges.(b).(if taken then 0 else 1)
let return_edge t b = t.term_edges.(b).(0)
let block_of_node t v = if v = t.exit then None else Some v

let is_branch_edge t e = Graph.out_degree t.graph (Graph.src t.graph e) >= 2

let num_branch_edges_on t edges =
  List.fold_left (fun acc e -> if is_branch_edge t e then acc + 1 else acc) 0 edges
