(** Well-formedness checking.

    The instrumenter and interpreter both assume these invariants, the
    most important being: every block of a routine is reachable from its
    entry and can reach a [Return] (so the virtual exit is co-reachable,
    which path numbering requires), and [Branch] targets are distinct (so
    a routine's CFG has no parallel edges). *)

val program : Ir.program -> (unit, string list) result
(** All violations found, not just the first. *)

val program_exn : Ir.program -> unit
(** @raise Invalid_argument with all violations joined by newlines. *)
