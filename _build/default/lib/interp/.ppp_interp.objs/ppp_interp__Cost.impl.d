lib/interp/cost.ml: Instr_rt Ppp_ir
