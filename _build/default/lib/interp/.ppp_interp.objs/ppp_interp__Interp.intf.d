lib/interp/interp.mli: Instr_rt Ppp_ir Ppp_profile
