lib/interp/cost.mli: Instr_rt Ppp_ir
