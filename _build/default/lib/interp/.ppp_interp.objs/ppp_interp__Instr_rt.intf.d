lib/interp/instr_rt.mli: Format Hashtbl
