lib/interp/interp.ml: Array Cost Format Hashtbl Instr_rt List Option Ppp_cfg Ppp_ir Ppp_profile
