lib/interp/instr_rt.ml: Array Format Hashtbl
