(** The interpreter: executes IR programs, optionally collecting an edge
    profile, the ground-truth path profile, and/or executing path-profiling
    instrumentation.

    Path semantics follow Section 3.1: a back edge ends the current path
    and starts a new one at the loop header; a call starts a fresh path in
    the callee while the caller's path is deferred across the call; a
    return ends the callee's current path. *)

exception Runtime_error of string
(** Division by zero, array index out of bounds, or fuel exhaustion. *)

type config = {
  fuel : int;  (** maximum dynamic instructions before aborting *)
  collect_edges : bool;
  trace_paths : bool;
  instrumentation : Instr_rt.t option;
}

val default_config : config
(** [fuel = 2_000_000_000], edge collection and path tracing on, no
    instrumentation. *)

type outcome = {
  return_value : int option;  (** of [main] *)
  output : int list;  (** values emitted by [Out], in order *)
  base_cost : int;  (** cycles of the program proper *)
  instr_cost : int;  (** cycles of instrumentation actions *)
  dyn_instrs : int;
  dyn_paths : int;  (** ground-truth path executions (0 unless traced) *)
  edge_profile : Ppp_profile.Edge_profile.program option;
  path_profile : Ppp_profile.Path_profile.program option;
  instr_state : Instr_rt.state option;
}

val overhead : outcome -> float
(** [instr_cost / base_cost]. *)

val run : ?config:config -> Ppp_ir.Ir.program -> outcome
(** @raise Runtime_error on any dynamic error. *)
