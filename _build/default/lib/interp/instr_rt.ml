type action =
  | Set_r of int
  | Add_r of int
  | Count_r
  | Count_r_plus of int
  | Count_const of int
  | Count_checked
  | Count_checked_plus of int

type table_kind = Array_table of int | Hash_table

type routine_instr = {
  edge_actions : action list array;
  table : table_kind;
  num_paths : int;
}

type t = (string, routine_instr) Hashtbl.t

let no_instrumentation () : t = Hashtbl.create 1

module Table = struct
  (* The hash table follows Section 7.4: 701 slots and three tries of
     secondary (double) hashing; a path that misses all three tries bumps
     the lost counter. 701 and 699 are the paper's primary modulus and a
     coprime secondary step base. *)
  let slots = 701
  let secondary = 699

  type t = {
    kind : table_kind;
    arr : int array; (* Array_table: counts; Hash_table: counts per slot *)
    keys : int array; (* Hash_table only: path number per slot, -1 = empty *)
    mutable cold : int;
    mutable lost : int;
  }

  let create kind =
    match kind with
    | Array_table n -> { kind; arr = Array.make (max 1 n) 0; keys = [||]; cold = 0; lost = 0 }
    | Hash_table ->
        { kind; arr = Array.make slots 0; keys = Array.make slots (-1); cold = 0; lost = 0 }

  let bump_cold t = t.cold <- t.cold + 1

  let bump t k =
    if k < 0 then bump_cold t
    else
      match t.kind with
      | Array_table _ ->
          if k < Array.length t.arr then t.arr.(k) <- t.arr.(k) + 1
          else t.lost <- t.lost + 1
      | Hash_table ->
          let step = 1 + (k mod secondary) in
          let rec try_slot i =
            if i >= 3 then t.lost <- t.lost + 1
            else begin
              let s = (k + (i * step)) mod slots in
              if t.keys.(s) = k then t.arr.(s) <- t.arr.(s) + 1
              else if t.keys.(s) = -1 then begin
                t.keys.(s) <- k;
                t.arr.(s) <- 1
              end
              else try_slot (i + 1)
            end
          in
          try_slot 0

  let get t k =
    match t.kind with
    | Array_table _ -> if k >= 0 && k < Array.length t.arr then t.arr.(k) else 0
    | Hash_table ->
        let step = 1 + (k mod secondary) in
        let rec try_slot i =
          if i >= 3 then 0
          else
            let s = (k + (i * step)) mod slots in
            if t.keys.(s) = k then t.arr.(s) else try_slot (i + 1)
        in
        if k < 0 then 0 else try_slot 0

  let cold t = t.cold
  let lost t = t.lost

  let iter_nonzero t f =
    match t.kind with
    | Array_table _ ->
        Array.iteri (fun k c -> if c > 0 then f k c) t.arr
    | Hash_table ->
        Array.iteri (fun s c -> if c > 0 && t.keys.(s) >= 0 then f t.keys.(s) c) t.arr

  let dynamic_total t =
    Array.fold_left ( + ) (t.cold + t.lost) t.arr
end

type state = (string, Table.t) Hashtbl.t

let init_state (t : t) : state =
  let st = Hashtbl.create 17 in
  Hashtbl.iter (fun name ri -> Hashtbl.replace st name (Table.create ri.table)) t;
  st

let pp_action ppf = function
  | Set_r v -> Format.fprintf ppf "r=%d" v
  | Add_r v -> Format.fprintf ppf "r+=%d" v
  | Count_r -> Format.fprintf ppf "count[r]++"
  | Count_r_plus v -> Format.fprintf ppf "count[r+%d]++" v
  | Count_const v -> Format.fprintf ppf "count[%d]++" v
  | Count_checked -> Format.fprintf ppf "if r<0 cold++ else count[r]++"
  | Count_checked_plus v ->
      Format.fprintf ppf "if r+%d<0 cold++ else count[r+%d]++" v v

let pp_table_kind ppf = function
  | Array_table n -> Format.fprintf ppf "array[%d]" n
  | Hash_table -> Format.fprintf ppf "hash(%d slots, 3 tries)" Table.slots
