module Graph = Ppp_cfg.Graph
module Cfg_view = Ppp_ir.Cfg_view

type t = Graph.edge list

let compare = Stdlib.compare

let blocks view p =
  List.map (fun e -> Graph.src (Cfg_view.graph view) e) p

let branches view p = Cfg_view.num_branch_edges_on view p

let pp view ppf p =
  let r = Cfg_view.routine view in
  let labels =
    List.map (fun b -> r.Ppp_ir.Ir.blocks.(b).Ppp_ir.Ir.label) (blocks view p)
  in
  Format.pp_print_string ppf (String.concat ">" labels)
