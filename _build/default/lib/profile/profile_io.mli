(** Textual serialization of profiles, so a profile collected in one run
    can drive instrumentation (or inlining) in a later one — the offline
    half of a staged optimizer.

    Format (one file can hold both sections; [#] comments allowed):
    {v
      edge-profile
      routine NAME
      e<ID> <count>
      ...
      path-profile
      routine NAME
      <count> : <edge id> <edge id> ...
    v}
    Edge ids are the {!Ppp_ir.Cfg_view} edge identifiers of the routine
    they belong to, so a profile is only meaningful for the exact program
    it was collected from. *)

val save_edges :
  Format.formatter -> Ppp_ir.Ir.program -> Edge_profile.program -> unit

val save_paths :
  Format.formatter -> Ppp_ir.Ir.program -> Path_profile.program -> unit

val load :
  Ppp_ir.Ir.program ->
  string ->
  Edge_profile.program * Path_profile.program
(** Parse a profile dump (either or both sections). Routines absent from
    the text have empty profiles.
    @raise Failure on malformed input or unknown routine names. *)
