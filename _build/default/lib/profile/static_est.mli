(** Static edge-frequency heuristics (Section 3.1).

    PP's event-counting step selects its spanning tree from frequencies
    predicted by "simple static heuristics (e.g., loops execute 10 times
    and branch directions are 50/50)". This module implements exactly
    that: flow 1 enters the routine, every block splits its flow evenly
    over its outgoing edges, and each loop header multiplies the flow
    entering it by 10 per nesting level. *)

val edge_freqs : Ppp_ir.Cfg_view.t -> float array
(** Predicted frequency for every CFG edge. *)
