(** Acyclic intraprocedural paths (Section 3.1).

    A path is the ordered list of CFG edges it traverses. Every path has
    at least one edge: a path ending at a return traverses the edge into
    the virtual exit node, and a path ending at a loop back edge includes
    that back edge (the back edge both ends the current path and starts
    the next one at the loop header). The edge list uniquely identifies
    the path within its routine. *)

type t = Ppp_cfg.Graph.edge list

val compare : t -> t -> int

val blocks : Ppp_ir.Cfg_view.t -> t -> int list
(** The block sequence: sources of the edges (the virtual exit never
    appears). *)

val branches : Ppp_ir.Cfg_view.t -> t -> int
(** [b_p]: the number of branch edges on the path (Section 5.1). *)

val pp : Ppp_ir.Cfg_view.t -> Format.formatter -> t -> unit
(** Renders the block-label sequence, e.g. ["entry>head1>body2"]. *)
