module Graph = Ppp_cfg.Graph
module Loop = Ppp_cfg.Loop
module Dag = Ppp_cfg.Dag
module Cfg_view = Ppp_ir.Cfg_view

let loop_trip = 10.0

let edge_freqs view =
  let g = Cfg_view.graph view in
  let entry = Cfg_view.entry view in
  let loops = Loop.compute g ~root:entry in
  let break = Loop.breakable_edges loops in
  let is_broken = Array.make (max 1 (Graph.num_edges g)) false in
  List.iter (fun e -> is_broken.(e) <- true) break;
  let headers = Hashtbl.create 7 in
  List.iter
    (fun (l : Loop.loop) -> Hashtbl.replace headers l.header ())
    (Loop.loops loops);
  (* Propagate in a topological order of the graph minus broken edges. *)
  let dagged = Graph.create () in
  Graph.add_nodes dagged (Graph.num_nodes g);
  let dag_of_cfg = Array.make (max 1 (Graph.num_edges g)) (-1) in
  Graph.iter_edges g (fun e ->
      if not is_broken.(e) then
        dag_of_cfg.(e) <- Graph.add_edge dagged (Graph.src g e) (Graph.dst g e));
  let order =
    match Ppp_cfg.Order.topological dagged with
    | Some o -> o
    | None -> invalid_arg "Static_est: removing retreating edges left a cycle"
  in
  let node_freq = Array.make (Graph.num_nodes g) 0.0 in
  let edge_freq = Array.make (max 1 (Graph.num_edges g)) 0.0 in
  node_freq.(entry) <- 1.0;
  List.iter
    (fun v ->
      let incoming =
        List.fold_left
          (fun acc e -> if is_broken.(e) then acc else acc +. edge_freq.(e))
          0.0 (Graph.in_edges g v)
      in
      let f = node_freq.(v) +. incoming in
      let f = if Hashtbl.mem headers v then f *. loop_trip else f in
      node_freq.(v) <- f;
      let outs = Graph.out_edges g v in
      let share =
        match List.length outs with 0 -> 0.0 | k -> f /. float_of_int k
      in
      List.iter (fun e -> edge_freq.(e) <- share) outs)
    order;
  edge_freq
