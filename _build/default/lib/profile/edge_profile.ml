module Graph = Ppp_cfg.Graph
module Loop = Ppp_cfg.Loop
module Cfg_view = Ppp_ir.Cfg_view
module Ir = Ppp_ir.Ir

type t = int array

let create ~nedges = Array.make (max 1 nedges) 0
let incr t e = t.(e) <- t.(e) + 1
let add t e n = t.(e) <- t.(e) + n
let freq t e = t.(e)
let total t = Array.fold_left ( + ) 0 t

type program = (string, t) Hashtbl.t

let create_program (p : Ir.program) =
  let tbl = Hashtbl.create 17 in
  List.iter
    (fun (r : Ir.routine) ->
      let view = Cfg_view.of_routine r in
      Hashtbl.replace tbl r.name
        (create ~nedges:(Graph.num_edges (Cfg_view.graph view))))
    p.routines;
  tbl

let routine prog name = Hashtbl.find prog name
let routine_freq prog name e = (Hashtbl.find prog name).(e)

let entry_count prog (p : Ir.program) name =
  let r = Ir.routine p name in
  let view = Cfg_view.of_routine r in
  let counts = routine prog name in
  List.fold_left
    (fun acc e -> acc + counts.(e))
    0
    (Graph.in_edges (Cfg_view.graph view) (Cfg_view.exit view))

let program_unit_flow prog (p : Ir.program) =
  List.fold_left
    (fun acc (r : Ir.routine) ->
      let view = Cfg_view.of_routine r in
      let g = Cfg_view.graph view in
      let counts = routine prog r.name in
      let loops = Loop.compute g ~root:(Cfg_view.entry view) in
      let invocations =
        List.fold_left
          (fun a e -> a + counts.(e))
          0
          (Graph.in_edges g (Cfg_view.exit view))
      in
      let back_traversals =
        List.fold_left
          (fun a e -> a + counts.(e))
          0 (Loop.breakable_edges loops)
      in
      acc + invocations + back_traversals)
    0 p.routines
