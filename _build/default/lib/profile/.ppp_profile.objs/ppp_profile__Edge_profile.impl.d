lib/profile/edge_profile.ml: Array Hashtbl List Ppp_cfg Ppp_ir
