lib/profile/path_profile.ml: Hashtbl List Metric Path Ppp_ir
