lib/profile/edge_profile.mli: Ppp_cfg Ppp_ir
