lib/profile/static_est.mli: Ppp_ir
