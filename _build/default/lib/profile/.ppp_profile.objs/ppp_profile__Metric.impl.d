lib/profile/metric.ml:
