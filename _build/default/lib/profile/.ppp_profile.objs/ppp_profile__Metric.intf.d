lib/profile/metric.mli:
