lib/profile/profile_io.ml: Edge_profile Format List Path_profile Ppp_cfg Ppp_ir Printf String
