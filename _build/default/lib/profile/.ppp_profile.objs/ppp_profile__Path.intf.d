lib/profile/path.mli: Format Ppp_cfg Ppp_ir
