lib/profile/path.ml: Array Format List Ppp_cfg Ppp_ir Stdlib String
