lib/profile/static_est.ml: Array Hashtbl List Ppp_cfg Ppp_ir
