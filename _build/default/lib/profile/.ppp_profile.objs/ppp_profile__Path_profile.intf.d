lib/profile/path_profile.mli: Metric Path Ppp_ir
