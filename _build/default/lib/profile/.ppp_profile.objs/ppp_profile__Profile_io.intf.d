lib/profile/profile_io.mli: Edge_profile Format Path_profile Ppp_ir
