type t = Unit_flow | Branch_flow

let flow t ~freq ~branches =
  match t with Unit_flow -> freq | Branch_flow -> freq * branches

let name = function Unit_flow -> "unit-flow" | Branch_flow -> "branch-flow"
