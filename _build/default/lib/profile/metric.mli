(** Flow metrics (Section 5.1).

    Unit flow weights every path equally: [F(p) = freq(p)]. Branch flow —
    the paper's contribution — weights a path by its branch count:
    [F(p) = freq(p) * b_p], which makes flow invariant under inlining
    (Figure 7) and rewards predicting long paths. *)

type t = Unit_flow | Branch_flow

val flow : t -> freq:int -> branches:int -> int
(** Flow of one path. *)

val name : t -> string
