module Ir = Ppp_ir.Ir
module Graph = Ppp_cfg.Graph
module Cfg_view = Ppp_ir.Cfg_view

let save_edges ppf (p : Ir.program) prog =
  Format.fprintf ppf "edge-profile@.";
  List.iter
    (fun (r : Ir.routine) ->
      let t = Edge_profile.routine prog r.Ir.name in
      if Edge_profile.total t > 0 then begin
        Format.fprintf ppf "routine %s@." r.Ir.name;
        let view = Cfg_view.of_routine r in
        Graph.iter_edges (Cfg_view.graph view) (fun e ->
            let c = Edge_profile.freq t e in
            if c > 0 then Format.fprintf ppf "e%d %d@." e c)
      end)
    p.routines

let save_paths ppf (p : Ir.program) prog =
  Format.fprintf ppf "path-profile@.";
  List.iter
    (fun (r : Ir.routine) ->
      let t = Path_profile.routine prog r.Ir.name in
      if Path_profile.num_distinct t > 0 then begin
        Format.fprintf ppf "routine %s@." r.Ir.name;
        Path_profile.iter t (fun path n ->
            Format.fprintf ppf "%d :%s@." n
              (String.concat "" (List.map (fun e -> " " ^ string_of_int e) path)))
      end)
    p.routines

type section = Edges | Paths

let load (p : Ir.program) text =
  let edges = Edge_profile.create_program p in
  let paths = Path_profile.create_program p in
  let section = ref Edges in
  let routine = ref None in
  let fail line msg = failwith (Printf.sprintf "profile line %d: %s" line msg) in
  let current line =
    match !routine with
    | Some r -> r
    | None -> fail line "counter before any 'routine' header"
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else if line = "edge-profile" then section := Edges
      else if line = "path-profile" then section := Paths
      else
        match String.split_on_char ' ' line with
        | [ "routine"; name ] ->
            if Ir.find_routine p name = None then
              fail lineno ("unknown routine " ^ name);
            routine := Some name
        | tokens -> (
            match !section with
            | Edges -> (
                match tokens with
                | [ e; c ] when String.length e > 1 && e.[0] = 'e' -> (
                    try
                      Edge_profile.add
                        (Edge_profile.routine edges (current lineno))
                        (int_of_string (String.sub e 1 (String.length e - 1)))
                        (int_of_string c)
                    with Failure _ | Invalid_argument _ ->
                      fail lineno "malformed edge counter")
                | _ -> fail lineno "expected 'e<ID> <count>'")
            | Paths -> (
                match tokens with
                | count :: ":" :: rest -> (
                    try
                      Path_profile.add
                        (Path_profile.routine paths (current lineno))
                        (List.map int_of_string rest)
                        (int_of_string count)
                    with Failure _ -> fail lineno "malformed path counter")
                | _ -> fail lineno "expected '<count> : <edges>'")))
    (String.split_on_char '\n' text);
  (edges, paths)
