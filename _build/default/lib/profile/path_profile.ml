module Cfg_view = Ppp_ir.Cfg_view
module Ir = Ppp_ir.Ir

type t = (Path.t, int ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let add t p n =
  match Hashtbl.find_opt t p with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t p (ref n)

let record t p = add t p 1
let freq t p = match Hashtbl.find_opt t p with Some r -> !r | None -> 0
let num_distinct t = Hashtbl.length t
let iter t f = Hashtbl.iter (fun p r -> f p !r) t

let fold t ~init ~f =
  Hashtbl.fold (fun p r acc -> f acc p !r) t init

let total_flow t view metric =
  fold t ~init:0 ~f:(fun acc p n ->
      acc + Metric.flow metric ~freq:n ~branches:(Path.branches view p))

type program = (string, t) Hashtbl.t

let create_program (p : Ir.program) =
  let tbl = Hashtbl.create 17 in
  List.iter (fun (r : Ir.routine) -> Hashtbl.replace tbl r.name (create ())) p.routines;
  tbl

let routine prog name = Hashtbl.find prog name
let iter_routines prog f = Hashtbl.iter f prog

let program_flow prog ~views metric =
  Hashtbl.fold (fun name t acc -> acc + total_flow t (views name) metric) prog 0

let program_distinct prog = Hashtbl.fold (fun _ t acc -> acc + num_distinct t) prog 0

let hot_paths prog ~views ~metric ~threshold =
  let total = program_flow prog ~views metric in
  let cutoff = threshold *. float_of_int total in
  let all = ref [] in
  iter_routines prog (fun name t ->
      let view = views name in
      iter t (fun p n ->
          let flow = Metric.flow metric ~freq:n ~branches:(Path.branches view p) in
          if float_of_int flow >= cutoff && flow > 0 then
            all := (name, p, flow) :: !all));
  List.sort (fun (_, _, a) (_, _, b) -> compare b a) !all

let flow_of_set prog ~views ~metric paths =
  List.fold_left
    (fun acc (name, p) ->
      match Hashtbl.find_opt prog name with
      | None -> acc
      | Some t ->
          let n = freq t p in
          acc + Metric.flow metric ~freq:n ~branches:(Path.branches (views name) p))
    0 paths
