(** Edge profiles: execution counts per CFG edge.

    The paper assumes edge profiles are essentially free to collect
    (Section 2 cites 0.5–3% with sampling or hardware support), so the
    interpreter collects them without charging instrumentation cost. *)

type t
(** Edge counts for one routine. *)

val create : nedges:int -> t
val incr : t -> Ppp_cfg.Graph.edge -> unit
val add : t -> Ppp_cfg.Graph.edge -> int -> unit
val freq : t -> Ppp_cfg.Graph.edge -> int
val total : t -> int
(** Sum of all edge counts. *)

type program
(** Edge profiles for every routine of a program, by routine name. *)

val create_program : Ppp_ir.Ir.program -> program
val routine : program -> string -> t
val routine_freq : program -> string -> Ppp_cfg.Graph.edge -> int

val entry_count : program -> Ppp_ir.Ir.program -> string -> int
(** How many times the routine was invoked: the sum of its return-edge
    frequencies (every invocation returns exactly once). *)

val program_unit_flow : program -> Ppp_ir.Ir.program -> int
(** Total program flow under the unit-flow metric: one unit per executed
    acyclic path, i.e. invocations plus back-edge traversals, summed over
    routines. Used by PPP's global cold-edge criterion (Section 4.2). *)
