(** The ten SPEC2000 floating-point workloads (integer arithmetic stands
    in for FP; control shape matches the originals — long counted loops,
    straight bodies, high trip counts). See the registry in {!Spec}. *)

val wupwise : scale:int -> Ppp_ir.Ir.program
(** Straight-line 3x3 matrix-vector products per lattice site. *)

val swim : scale:int -> Ppp_ir.Ir.program
(** Shallow-water stencils; the least path-diverse benchmark — PPP adds
    no instrumentation at all (Section 6.1's special case). *)

val mgrid : scale:int -> Ppp_ir.Ir.program
(** Multigrid V-cycle: restrict, smooth (out-of-line), prolongate. *)

val applu : scale:int -> Ppp_ir.Ir.program
(** SSOR sweeps with a biased clamping branch and a norm loop. *)

val mesa : scale:int -> Ppp_ir.Ir.program
(** Vertex transform, clipping and span rasterization; the shading
    routine's skewed 12-way feature chain exercises the self-adjusting
    criterion (Section 4.3). *)

val art : scale:int -> Ppp_ir.Ir.program
(** Neural-network layer: dot products, winner-take-all, adaptation. *)

val equake : scale:int -> Ppp_ir.Ir.program
(** Sparse matrix-vector products over a random CSR structure. *)

val ammp : scale:int -> Ppp_ir.Ir.program
(** Pairwise forces with a biased cutoff and a Newton square root. *)

val sixtrack : scale:int -> Ppp_ir.Ir.program
(** Particle tracking with a rare aperture-loss path. *)

val apsi : scale:int -> Ppp_ir.Ir.program
(** Pollutant transport: several stencil phases and a tridiagonal
    solve — many separately unrollable loops. *)
