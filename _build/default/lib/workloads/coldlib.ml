module Ir = Ppp_ir.Ir
module B = Ppp_ir.Builder

let checksum ~array_name ~size =
  let b = B.create ~name:"checksum" ~nparams:0 in
  let acc = B.reg b in
  B.mov b acc (Ir.Imm 0);
  let i = B.reg b in
  B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm size) (fun () ->
      let v = B.load_ b array_name (Ir.Reg i) in
      let rot = B.bin_ b Ir.Shl (Ir.Reg acc) (Ir.Imm 1) in
      let hi = B.bin_ b Ir.Shr (Ir.Reg acc) (Ir.Imm 29) in
      B.bin b acc Ir.Or rot hi;
      B.bin b acc Ir.Xor (Ir.Reg acc) v;
      B.bin b acc Ir.And (Ir.Reg acc) (Ir.Imm 0x3fffffff));
  B.ret b (Some (Ir.Reg acc));
  B.finish b

let histogram ~array_name ~size =
  let b = B.create ~name:"histogram" ~nparams:1 in
  let buckets = B.reg b in
  B.mov b buckets (B.param b 0);
  let bad = B.bin_ b Ir.Le (Ir.Reg buckets) (Ir.Imm 0) in
  B.when_ b bad (fun () -> B.mov b buckets (Ir.Imm 1));
  let counts = Array.init 4 (fun _ -> B.reg b) in
  Array.iter (fun c -> B.mov b c (Ir.Imm 0)) counts;
  let i = B.reg b in
  B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm size) (fun () ->
      let v = B.load_ b array_name (Ir.Reg i) in
      let k = B.bin_ b Ir.Rem v (Ir.Reg buckets) in
      let k = B.bin_ b Ir.And k (Ir.Imm 3) in
      let is0 = B.bin_ b Ir.Eq k (Ir.Imm 0) in
      B.if_ b is0
        ~then_:(fun () -> B.bin b counts.(0) Ir.Add (Ir.Reg counts.(0)) (Ir.Imm 1))
        ~else_:(fun () ->
          let is1 = B.bin_ b Ir.Eq k (Ir.Imm 1) in
          B.if_ b is1
            ~then_:(fun () ->
              B.bin b counts.(1) Ir.Add (Ir.Reg counts.(1)) (Ir.Imm 1))
            ~else_:(fun () ->
              let is2 = B.bin_ b Ir.Eq k (Ir.Imm 2) in
              B.if_ b is2
                ~then_:(fun () ->
                  B.bin b counts.(2) Ir.Add (Ir.Reg counts.(2)) (Ir.Imm 1))
                ~else_:(fun () ->
                  B.bin b counts.(3) Ir.Add (Ir.Reg counts.(3)) (Ir.Imm 1)))));
  let r = B.reg b in
  B.mov b r (Ir.Reg counts.(0));
  B.bin b r Ir.Add (Ir.Reg r) (Ir.Reg counts.(2));
  B.ret b (Some (Ir.Reg r));
  B.finish b

let minmax ~array_name ~size =
  let b = B.create ~name:"minmax" ~nparams:0 in
  let lo = B.reg b in
  let hi = B.reg b in
  (* Sentinels stay clear of min_int/max_int so the textual form of the
     program round-trips (a literal's magnitude must fit in an int). *)
  B.mov b lo (Ir.Imm (1 lsl 60));
  B.mov b hi (Ir.Imm (-(1 lsl 60)));
  let i = B.reg b in
  B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm size) (fun () ->
      let v = B.load_ b array_name (Ir.Reg i) in
      let smaller = B.bin_ b Ir.Lt v (Ir.Reg lo) in
      B.when_ b smaller (fun () -> B.mov b lo v);
      let bigger = B.bin_ b Ir.Gt v (Ir.Reg hi) in
      B.when_ b bigger (fun () -> B.mov b hi v));
  let d = B.bin_ b Ir.Sub (Ir.Reg hi) (Ir.Reg lo) in
  B.ret b (Some d);
  B.finish b

let insertion_sort ~array_name ~size =
  let b = B.create ~name:"insertion_sort" ~nparams:1 in
  let n = B.reg b in
  B.mov b n (B.param b 0);
  let too_big = B.bin_ b Ir.Gt (Ir.Reg n) (Ir.Imm size) in
  B.when_ b too_big (fun () -> B.mov b n (Ir.Imm size));
  let i = B.reg b in
  B.for_ b i ~from:(Ir.Imm 1) ~below:(Ir.Reg n) (fun () ->
      let key = B.load_ b array_name (Ir.Reg i) in
      let j = B.reg b in
      B.mov b j (Ir.Reg i);
      B.while_ b
        ~cond:(fun () ->
          let pos = B.bin_ b Ir.Gt (Ir.Reg j) (Ir.Imm 0) in
          let cmp = B.reg b in
          B.mov b cmp (Ir.Imm 0);
          B.when_ b pos (fun () ->
              let prev =
                B.load_ b array_name (B.bin_ b Ir.Sub (Ir.Reg j) (Ir.Imm 1))
              in
              let gt = B.bin_ b Ir.Gt prev key in
              B.mov b cmp gt);
          Ir.Reg cmp)
        ~body:(fun () ->
          let prev = B.load_ b array_name (B.bin_ b Ir.Sub (Ir.Reg j) (Ir.Imm 1)) in
          B.store b array_name (Ir.Reg j) prev;
          B.bin b j Ir.Sub (Ir.Reg j) (Ir.Imm 1));
      B.store b array_name (Ir.Reg j) key);
  B.ret b None;
  B.finish b

let crc ~array_name ~size =
  let b = B.create ~name:"crc" ~nparams:0 in
  let acc = B.reg b in
  B.mov b acc (Ir.Imm 0x1d0f);
  let i = B.reg b in
  B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm size) (fun () ->
      let v = B.load_ b array_name (Ir.Reg i) in
      B.bin b acc Ir.Xor (Ir.Reg acc) v;
      let bit = B.reg b in
      B.for_ b bit ~from:(Ir.Imm 0) ~below:(Ir.Imm 4) (fun () ->
          let low = B.bin_ b Ir.And (Ir.Reg acc) (Ir.Imm 1) in
          let set = B.bin_ b Ir.Eq low (Ir.Imm 1) in
          B.if_ b set
            ~then_:(fun () ->
              B.bin b acc Ir.Shr (Ir.Reg acc) (Ir.Imm 1);
              B.bin b acc Ir.Xor (Ir.Reg acc) (Ir.Imm 0xa001))
            ~else_:(fun () -> B.bin b acc Ir.Shr (Ir.Reg acc) (Ir.Imm 1))));
  B.ret b (Some (Ir.Reg acc));
  B.finish b

let report ~array_name ~size =
  let b = B.create ~name:"report" ~nparams:1 in
  let level = B.param b 0 in
  let quiet = B.bin_ b Ir.Le level (Ir.Imm 0) in
  B.if_ b quiet
    ~then_:(fun () -> B.ret b None)
    ~else_:(fun () ->
      let v0 = B.load_ b array_name (Ir.Imm 0) in
      B.out b v0;
      let verbose = B.bin_ b Ir.Ge level (Ir.Imm 2) in
      B.when_ b verbose (fun () ->
          let i = B.reg b in
          B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm (min 8 size)) (fun () ->
              B.out b (B.load_ b array_name (Ir.Reg i))));
      B.ret b None);
  B.finish b

(* quicksort(lo, hi): recursive — the inliner must refuse it. *)
let quicksort ~array_name ~size =
  let b = B.create ~name:"quicksort" ~nparams:2 in
  let lo = B.reg b in
  let hi = B.reg b in
  B.mov b lo (B.param b 0);
  B.mov b hi (B.param b 1);
  let clamp r =
    let neg = B.bin_ b Ir.Lt (Ir.Reg r) (Ir.Imm 0) in
    B.when_ b neg (fun () -> B.mov b r (Ir.Imm 0));
    let big = B.bin_ b Ir.Ge (Ir.Reg r) (Ir.Imm size) in
    B.when_ b big (fun () -> B.mov b r (Ir.Imm (size - 1)))
  in
  clamp lo;
  clamp hi;
  let small = B.bin_ b Ir.Ge (Ir.Reg lo) (Ir.Reg hi) in
  B.when_ b small (fun () -> B.ret b None);
  let pivot = B.load_ b array_name (Ir.Reg hi) in
  let store_i = B.reg b in
  B.mov b store_i (Ir.Reg lo);
  let j = B.reg b in
  B.for_ b j ~from:(Ir.Reg lo) ~below:(Ir.Reg hi) (fun () ->
      let v = B.load_ b array_name (Ir.Reg j) in
      let lt = B.bin_ b Ir.Lt v pivot in
      B.when_ b lt (fun () ->
          let w = B.load_ b array_name (Ir.Reg store_i) in
          B.store b array_name (Ir.Reg store_i) v;
          B.store b array_name (Ir.Reg j) w;
          B.bin b store_i Ir.Add (Ir.Reg store_i) (Ir.Imm 1)));
  let w = B.load_ b array_name (Ir.Reg store_i) in
  B.store b array_name (Ir.Reg store_i) pivot;
  B.store b array_name (Ir.Reg hi) w;
  B.call b None "quicksort" [ Ir.Reg lo; B.bin_ b Ir.Sub (Ir.Reg store_i) (Ir.Imm 1) ];
  B.call b None "quicksort" [ B.bin_ b Ir.Add (Ir.Reg store_i) (Ir.Imm 1); Ir.Reg hi ];
  B.ret b None;
  B.finish b

(* format_digits(v): decompose into decimal digits and emit them. *)
let format_digits ~array_name ~size =
  ignore (array_name, size);
  let b = B.create ~name:"format_digits" ~nparams:1 in
  let v = B.reg b in
  B.mov b v (B.param b 0);
  let neg = B.bin_ b Ir.Lt (Ir.Reg v) (Ir.Imm 0) in
  B.when_ b neg (fun () ->
      B.out b (Ir.Imm (-1));
      B.bin b v Ir.Sub (Ir.Imm 0) (Ir.Reg v));
  let ndigits = B.reg b in
  B.mov b ndigits (Ir.Imm 0);
  B.while_ b
    ~cond:(fun () -> B.bin_ b Ir.Gt (Ir.Reg v) (Ir.Imm 0))
    ~body:(fun () ->
      let d = B.bin_ b Ir.Rem (Ir.Reg v) (Ir.Imm 10) in
      B.out b d;
      B.bin b v Ir.Div (Ir.Reg v) (Ir.Imm 10);
      B.bin b ndigits Ir.Add (Ir.Reg ndigits) (Ir.Imm 1));
  let none = B.bin_ b Ir.Eq (Ir.Reg ndigits) (Ir.Imm 0) in
  B.when_ b none (fun () -> B.out b (Ir.Imm 0));
  B.ret b (Some (Ir.Reg ndigits));
  B.finish b

(* parse_flags(word): an option-parsing chain — pure cold control flow. *)
let parse_flags ~array_name ~size =
  ignore (array_name, size);
  let b = B.create ~name:"parse_flags" ~nparams:1 in
  let w = B.param b 0 in
  let flags = B.reg b in
  B.mov b flags (Ir.Imm 0);
  List.iteri
    (fun i (mask, value) ->
      ignore i;
      let bit = B.bin_ b Ir.And w (Ir.Imm mask) in
      let set = B.bin_ b Ir.Eq bit (Ir.Imm mask) in
      B.if_ b set
        ~then_:(fun () -> B.bin b flags Ir.Or (Ir.Reg flags) (Ir.Imm value))
        ~else_:(fun () ->
          let partial = B.bin_ b Ir.Ne bit (Ir.Imm 0) in
          B.when_ b partial (fun () ->
              B.bin b flags Ir.Xor (Ir.Reg flags) (Ir.Imm (value * 2)))))
    [ (1, 1); (2, 4); (4, 16); (8, 64); (16, 256); (32, 1024) ];
  B.ret b (Some (Ir.Reg flags));
  B.finish b

(* table_rebuild(seed): reinitialize the array from a seed — a cold
   setup path with a nested loop. *)
let table_rebuild ~array_name ~size =
  let b = B.create ~name:"table_rebuild" ~nparams:1 in
  let s = B.reg b in
  B.mov b s (B.param b 0);
  let zero = B.bin_ b Ir.Le (Ir.Reg s) (Ir.Imm 0) in
  B.when_ b zero (fun () -> B.mov b s (Ir.Imm 1));
  let i = B.reg b in
  B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm size) (fun () ->
      B.bin b s Ir.Mul (Ir.Reg s) (Ir.Imm 75);
      B.bin b s Ir.Rem (Ir.Reg s) (Ir.Imm 65537);
      let k = B.reg b in
      B.for_ b k ~from:(Ir.Imm 0) ~below:(Ir.Imm 2) (fun () ->
          let mixed = B.bin_ b Ir.Xor (Ir.Reg s) (Ir.Reg k) in
          let prev = B.load_ b array_name (Ir.Reg i) in
          B.store b array_name (Ir.Reg i) (B.bin_ b Ir.Add prev mixed)));
  B.ret b (Some (Ir.Reg s));
  B.finish b

(* dump_window(from): bounded hex-ish dump, another cold output path. *)
let dump_window ~array_name ~size =
  let b = B.create ~name:"dump_window" ~nparams:1 in
  let from = B.reg b in
  B.mov b from (B.param b 0);
  let bad = B.bin_ b Ir.Lt (Ir.Reg from) (Ir.Imm 0) in
  B.when_ b bad (fun () -> B.mov b from (Ir.Imm 0));
  let stop = B.reg b in
  B.bin b stop Ir.Add (Ir.Reg from) (Ir.Imm 4);
  let over = B.bin_ b Ir.Gt (Ir.Reg stop) (Ir.Imm size) in
  B.when_ b over (fun () -> B.mov b stop (Ir.Imm size));
  let i = B.reg b in
  B.for_ b i ~from:(Ir.Reg from) ~below:(Ir.Reg stop) (fun () ->
      let v = B.load_ b array_name (Ir.Reg i) in
      let hi = B.bin_ b Ir.Shr v (Ir.Imm 4) in
      let lo = B.bin_ b Ir.And v (Ir.Imm 15) in
      B.out b hi;
      B.out b lo);
  B.ret b None;
  B.finish b

let rename prefix (r : Ir.routine) =
  let rename_instr = function
    | Ir.Call (d, callee, args) when callee = "quicksort" ->
        Ir.Call (d, prefix ^ callee, args)
    | i -> i
  in
  {
    r with
    Ir.name = prefix ^ r.Ir.name;
    blocks =
      Array.map
        (fun (blk : Ir.block) ->
          { blk with Ir.instrs = Array.map rename_instr blk.Ir.instrs })
        r.Ir.blocks;
  }

let standard ~array_name ~size ~prefix =
  List.map (rename prefix)
    [
      checksum ~array_name ~size;
      histogram ~array_name ~size;
      minmax ~array_name ~size;
      insertion_sort ~array_name ~size;
      crc ~array_name ~size;
      report ~array_name ~size;
      quicksort ~array_name ~size;
      format_digits ~array_name ~size;
      parse_flags ~array_name ~size;
      table_rebuild ~array_name ~size;
      dump_window ~array_name ~size;
    ]

let validate b ~prefix =
  let c = B.call_ b (prefix ^ "checksum") [] in
  B.out b c;
  let d = B.call_ b (prefix ^ "minmax") [] in
  B.out b d;
  B.call b None (prefix ^ "report") [ Ir.Imm 1 ]
