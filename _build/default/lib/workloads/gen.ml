module Ir = Ppp_ir.Ir
module B = Ppp_ir.Builder

(* A self-contained splitmix-style PRNG so generation does not depend on
   the global Random state. *)
type rng = { mutable s : int }

let next rng =
  rng.s <- (rng.s + 0x1e3779b97f4a7c15) land max_int;
  let z = rng.s in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb land max_int in
  z lxor (z lsr 31)

let below rng n = if n <= 0 then 0 else next rng mod n

let array_name = "mem"
let array_size = 256

(* Emit an expression over existing registers; returns an operand. The
   [lcg] register carries pseudo-random program state that conditions can
   consume, making branches data-dependent. *)
let step_lcg b lcg =
  B.bin b lcg Ir.Mul (Ir.Reg lcg) (Ir.Imm 1103515245);
  B.bin b lcg Ir.Add (Ir.Reg lcg) (Ir.Imm 12345);
  B.bin b lcg Ir.And (Ir.Reg lcg) (Ir.Imm 0x3fffffff)

(* [regs] are writable work registers; [ro] are additionally readable
   (loop indices), never written. *)
let rand_operand rng regs ro =
  let readable = ro @ regs in
  if below rng 3 = 0 || readable = [] then Ir.Imm (below rng 64)
  else Ir.Reg (List.nth readable (below rng (List.length readable)))

let safe_binop rng =
  match below rng 10 with
  | 0 -> Ir.Add
  | 1 -> Ir.Sub
  | 2 -> Ir.Mul
  | 3 -> Ir.And
  | 4 -> Ir.Or
  | 5 -> Ir.Xor
  | 6 -> Ir.Lt
  | 7 -> Ir.Ge
  | 8 -> Ir.Eq
  | _ -> Ir.Add

let condition b rng lcg regs ro =
  match below rng 3 with
  | 0 ->
      step_lcg b lcg;
      let bit = 1 + below rng 3 in
      let shifted = B.bin_ b Ir.Shr (Ir.Reg lcg) (Ir.Imm bit) in
      B.bin_ b Ir.And shifted (Ir.Imm 1)
  | 1 -> B.bin_ b Ir.Lt (rand_operand rng regs ro) (rand_operand rng regs ro)
  | _ -> B.bin_ b Ir.Ne (rand_operand rng regs ro) (Ir.Imm (below rng 8))

let rec statements b rng lcg regs ro ~depth ~budget ~callees =
  for _ = 1 to budget do
    statement b rng lcg regs ro ~depth ~callees
  done

and statement b rng lcg regs ro ~depth ~callees =
  let choice = below rng (if depth > 0 then 10 else 6) in
  match choice with
  | 0 | 1 ->
      let d = List.nth regs (below rng (List.length regs)) in
      B.bin b d (safe_binop rng) (rand_operand rng regs ro) (rand_operand rng regs ro)
  | 2 ->
      let idx = B.bin_ b Ir.And (rand_operand rng regs ro) (Ir.Imm (array_size - 1)) in
      let d = List.nth regs (below rng (List.length regs)) in
      B.load b d array_name idx
  | 3 ->
      let idx = B.bin_ b Ir.And (rand_operand rng regs ro) (Ir.Imm (array_size - 1)) in
      B.store b array_name idx (rand_operand rng regs ro)
  | 4 -> B.out b (rand_operand rng regs ro)
  | 5 -> (
      match callees with
      | [] ->
          let d = List.nth regs (below rng (List.length regs)) in
          B.mov b d (rand_operand rng regs ro)
      | _ ->
          let callee, nparams =
            List.nth callees (below rng (List.length callees))
          in
          let args = List.init nparams (fun _ -> rand_operand rng regs ro) in
          let d = List.nth regs (below rng (List.length regs)) in
          B.call b (Some d) callee args)
  | 6 | 7 ->
      let c = condition b rng lcg regs ro in
      let sub_budget = 1 + below rng 3 in
      B.if_ b c
        ~then_:(fun () ->
          statements b rng lcg regs ro ~depth:(depth - 1) ~budget:sub_budget
            ~callees)
        ~else_:(fun () ->
          if below rng 3 = 0 then ()
          else
            statements b rng lcg regs ro ~depth:(depth - 1)
              ~budget:(1 + below rng 2) ~callees)
  | 8 ->
      let i = B.reg b in
      let trip = 1 + below rng 6 in
      let sub_budget = 1 + below rng 3 in
      B.for_ b i ~from:(Ir.Imm 0) ~below:(Ir.Imm trip) (fun () ->
          statements b rng lcg regs (i :: ro) ~depth:(depth - 1)
            ~budget:sub_budget ~callees)
  | _ ->
      (* A while loop over a strictly decreasing counter. *)
      let cnt = B.reg b in
      B.mov b cnt (Ir.Imm (1 + below rng 5));
      let sub_budget = 1 + below rng 2 in
      B.while_ b
        ~cond:(fun () -> B.bin_ b Ir.Gt (Ir.Reg cnt) (Ir.Imm 0))
        ~body:(fun () ->
          B.bin b cnt Ir.Sub (Ir.Reg cnt) (Ir.Imm 1);
          statements b rng lcg regs ro ~depth:(depth - 1) ~budget:sub_budget
            ~callees)

let build_routine rng ~name ~nparams ~callees =
  let b = B.create ~name ~nparams in
  let lcg = B.reg b in
  B.mov b lcg (Ir.Imm (1 + below rng 1000));
  (match nparams with
  | 0 -> ()
  | n -> B.bin b lcg Ir.Add (Ir.Reg lcg) (B.param b (below rng n)));
  let work = List.init (2 + below rng 2) (fun _ -> B.reg b) in
  List.iteri (fun i r -> B.mov b r (Ir.Imm (i * 3))) work;
  statements b rng lcg work [] ~depth:(1 + below rng 3) ~budget:(2 + below rng 5)
    ~callees;
  B.ret b (Some (Ir.Reg (List.hd work)));
  B.finish b

let routine ~seed ~name =
  let rng = { s = (seed * 2654435761) lor 1 } in
  build_routine rng ~name ~nparams:0 ~callees:[]

let program ~seed =
  let rng = { s = (seed * 2654435761) lor 1 } in
  let n_helpers = below rng 3 in
  let helpers = ref [] in
  let callees = ref [] in
  for i = 1 to n_helpers do
    let name = Printf.sprintf "helper%d" i in
    let nparams = below rng 3 in
    let r = build_routine rng ~name ~nparams ~callees:!callees in
    helpers := r :: !helpers;
    callees := (name, nparams) :: !callees
  done;
  let main = build_routine rng ~name:"main" ~nparams:0 ~callees:!callees in
  B.program
    ~arrays:[ (array_name, array_size) ]
    ~main:"main"
    (List.rev (main :: !helpers))
