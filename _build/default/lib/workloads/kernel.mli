(** Shared building blocks for the SPEC-shaped workloads: an in-program
    linear congruential generator (so control flow is data-dependent and
    reproducible), array initialization loops, and common reduction
    idioms. Everything is emitted as IR so it costs what it would cost in
    a real program. *)

type lcg
(** A PRNG living in a routine's registers. *)

val lcg_init : Ppp_ir.Builder.t -> seed:int -> lcg

val lcg_next : Ppp_ir.Builder.t -> lcg -> Ppp_ir.Ir.operand
(** Advance the generator; the result is a fresh register holding a
    non-negative 30-bit value. *)

val lcg_bits : Ppp_ir.Builder.t -> lcg -> lo:int -> width:int -> Ppp_ir.Ir.operand
(** Advance and extract [width] bits starting at bit [lo]. *)

val fill_random : Ppp_ir.Builder.t -> lcg -> array_name:string -> size:int -> unit
(** Emit a loop storing pseudo-random values into [0, size). *)

val fill_iota : Ppp_ir.Builder.t -> array_name:string -> size:int -> unit
(** Emit a loop storing [i] at index [i]. *)

val masked : Ppp_ir.Builder.t -> Ppp_ir.Ir.operand -> size:int -> Ppp_ir.Ir.operand
(** Clamp an operand into [0, size) with a bitmask ([size] must be a
    power of two). *)

val isqrt_newton : Ppp_ir.Builder.t -> Ppp_ir.Ir.operand -> Ppp_ir.Ir.operand
(** Integer square root by a few Newton iterations — the workloads'
    stand-in for floating-point math (a data-dependent short loop). *)
